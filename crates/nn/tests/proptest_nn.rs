//! Property-based tests of the NN modules: gradient correctness on
//! random shapes/inputs (finite differences), and structural
//! invariants of the parameter set.

use disttgl_nn::{loss, GruCell, Linear, ParamSet, TemporalAttention};
use disttgl_tensor::{seeded_rng, Matrix};
use proptest::prelude::*;

fn mat(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Linear backward gradient w.r.t. input matches finite differences
    /// for random shapes and inputs.
    #[test]
    fn linear_input_gradient_random(
        seed in 0u64..1000,
        batch in 1usize..5,
        x in mat(4, 3),
        up in mat(4, 2),
    ) {
        let mut rng = seeded_rng(seed);
        let mut ps = ParamSet::new();
        let layer = Linear::new(&mut ps, "l", 3, 2, &mut rng);
        let x = x.slice_rows(0, batch);
        let up = up.slice_rows(0, batch);
        let (_, cache) = layer.forward(&ps, &x);
        let dx = layer.backward(&mut ps, &cache, &up);
        let eps = 1e-2;
        for r in 0..batch {
            for c in 0..3 {
                let mut p = x.clone();
                p.set(r, c, x.get(r, c) + eps);
                let mut m = x.clone();
                m.set(r, c, x.get(r, c) - eps);
                let fp = layer.infer(&ps, &p).dot_flat(&up);
                let fm = layer.infer(&ps, &m).dot_flat(&up);
                let num = (fp - fm) / (2.0 * eps);
                prop_assert!(
                    (num - dx.get(r, c)).abs() < 3e-2 * (1.0 + num.abs()),
                    "dx[{},{}]: numeric {} analytic {}", r, c, num, dx.get(r, c)
                );
            }
        }
    }

    /// GRU output stays bounded by max(|h|, 1) for any input (convex
    /// combination of tanh candidate and previous state).
    #[test]
    fn gru_output_bounded(seed in 0u64..1000, x in mat(3, 4), h in mat(3, 2)) {
        let mut rng = seeded_rng(seed);
        let mut ps = ParamSet::new();
        let cell = GruCell::new(&mut ps, "g", 4, 2, &mut rng);
        let (out, _) = cell.forward(&ps, &x, &h);
        let bound = h.as_slice().iter().fold(1.0f32, |m, v| m.max(v.abs())) + 1e-5;
        prop_assert!(out.as_slice().iter().all(|v| v.abs() <= bound));
        prop_assert!(!out.has_non_finite());
    }

    /// Attention output is a convex combination of V rows: each output
    /// coordinate lies within the min/max of its root's valid V rows.
    #[test]
    fn attention_output_in_value_hull(seed in 0u64..1000, qf in mat(2, 3), kvf in mat(6, 4)) {
        let mut rng = seeded_rng(seed);
        let mut ps = ParamSet::new();
        let att = TemporalAttention::new(&mut ps, "a", 3, 4, 3, 3, &mut rng);
        let counts = vec![3usize, 2];
        let (h, _) = att.forward(&ps, &qf, &kvf, &counts);
        // Recompute V to bound against.
        let wv = ps.index_of("a.wv.w").unwrap();
        let bv = ps.index_of("a.wv.b").unwrap();
        let mut v = kvf.matmul_transpose_b(&ps.get(wv).w);
        v.add_row_broadcast(&ps.get(bv).w);
        for (root, &count) in counts.iter().enumerate() {
            for c in 0..3 {
                let mut lo = f32::INFINITY;
                let mut hi = f32::NEG_INFINITY;
                for s in 0..count {
                    let val = v.get(root * 3 + s, c);
                    lo = lo.min(val);
                    hi = hi.max(val);
                }
                let out = h.get(root, c);
                prop_assert!(
                    out >= lo - 1e-4 && out <= hi + 1e-4,
                    "root {} col {}: {} not in [{}, {}]", root, c, out, lo, hi
                );
            }
        }
    }

    /// BCE loss is non-negative and its gradient has the sign of
    /// (σ(x) − y).
    #[test]
    fn bce_loss_properties(logits in mat(3, 2), bits in proptest::collection::vec(0u8..2, 6)) {
        let targets = Matrix::from_vec(3, 2, bits.iter().map(|&b| b as f32).collect());
        let (l, g) = loss::bce_with_logits(&logits, &targets);
        prop_assert!(l >= 0.0 && l.is_finite());
        for (i, (&x, &y)) in logits.as_slice().iter().zip(targets.as_slice()).enumerate() {
            let gi = g.as_slice()[i];
            if y == 1.0 {
                prop_assert!(gi <= 0.0, "positive target must push logit up");
            } else {
                prop_assert!(gi >= 0.0, "negative target must push logit down");
            }
            let _ = x;
        }
    }

    /// MRR is monotone: raising the positive score never lowers MRR.
    #[test]
    fn mrr_monotone_in_positive_score(
        pos in proptest::collection::vec(-3.0f32..3.0, 4),
        neg in proptest::collection::vec(-3.0f32..3.0, 12),
        bump in 0.0f32..2.0,
    ) {
        let before = loss::mrr(&pos, &neg, 3);
        let bumped: Vec<f32> = pos.iter().map(|p| p + bump).collect();
        let after = loss::mrr(&bumped, &neg, 3);
        prop_assert!(after >= before - 1e-12);
    }

    /// Flatten/unflatten round-trips arbitrary gradient contents.
    #[test]
    fn paramset_flatten_roundtrip(values in proptest::collection::vec(-5.0f32..5.0, 10)) {
        let mut ps = ParamSet::new();
        ps.register("a", Matrix::zeros(2, 3));
        ps.register("b", Matrix::zeros(1, 4));
        ps.unflatten_grads(&values);
        prop_assert_eq!(ps.flatten_grads(), values);
    }

    /// Gradient clipping never increases the norm and preserves
    /// direction (scaled versions of the same vector).
    #[test]
    fn clip_grad_norm_contracts(values in proptest::collection::vec(-5.0f32..5.0, 6), max_norm in 0.1f32..10.0) {
        let mut ps = ParamSet::new();
        ps.register("w", Matrix::zeros(2, 3));
        ps.unflatten_grads(&values);
        let before: f32 = values.iter().map(|v| v * v).sum::<f32>().sqrt();
        let reported = ps.clip_grad_norm(max_norm);
        prop_assert!((reported - before).abs() < 1e-3 * (1.0 + before));
        let after: f32 = ps.flatten_grads().iter().map(|v| v * v).sum::<f32>().sqrt();
        prop_assert!(after <= max_norm + 1e-4);
        prop_assert!(after <= before + 1e-4);
    }
}
