//! Parameter storage shared by all modules.
//!
//! A [`Param`] couples a weight matrix with its gradient accumulator.
//! A [`ParamSet`] provides flat (de)serialization of all gradients and
//! weights into contiguous `Vec<f32>`s — the unit of exchange for the
//! simulated NCCL all-reduce (model sync happens once per iteration in
//! every DistTGL configuration; see paper Table 1, "Synchronization
//! across trainers").

use disttgl_tensor::Matrix;

/// A learnable weight with its gradient accumulator.
#[derive(Clone, Debug)]
pub struct Param {
    /// Current weight values.
    pub w: Matrix,
    /// Gradient accumulated by the module backward passes since the
    /// last optimizer step.
    pub g: Matrix,
}

impl Param {
    /// Wraps an initialized weight matrix with a zeroed gradient.
    pub fn new(w: Matrix) -> Self {
        let g = Matrix::zeros(w.rows(), w.cols());
        Self { w, g }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// True when the parameter is empty (zero-sized layer).
    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }

    /// Clears the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.g.zero();
    }
}

/// A named, ordered collection of parameters.
///
/// Modules register their parameters in a fixed order, which makes the
/// flattened gradient layout identical across trainer replicas — a
/// precondition for all-reduce.
#[derive(Default)]
pub struct ParamSet {
    params: Vec<(String, Param)>,
}

impl ParamSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its index.
    pub fn register(&mut self, name: &str, w: Matrix) -> usize {
        self.params.push((name.to_string(), Param::new(w)));
        self.params.len() - 1
    }

    /// Immutable access by index.
    pub fn get(&self, idx: usize) -> &Param {
        &self.params[idx].1
    }

    /// Mutable access by index.
    pub fn get_mut(&mut self, idx: usize) -> &mut Param {
        &mut self.params[idx].1
    }

    /// Looks up a parameter index by name (test/debug convenience).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|(n, _)| n == name)
    }

    /// Name of the parameter at `idx`.
    pub fn name(&self, idx: usize) -> &str {
        &self.params[idx].0
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total scalar parameter count.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|(_, p)| p.len()).sum()
    }

    /// Zeroes every gradient accumulator.
    pub fn zero_grads(&mut self) {
        for (_, p) in &mut self.params {
            p.zero_grad();
        }
    }

    /// Flattens all gradients into one contiguous vector (all-reduce
    /// payload). Order is registration order.
    pub fn flatten_grads(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_scalars());
        for (_, p) in &self.params {
            out.extend_from_slice(p.g.as_slice());
        }
        out
    }

    /// Overwrites all gradients from a flat vector produced by
    /// [`ParamSet::flatten_grads`] (after all-reduce averaging).
    ///
    /// # Panics
    /// Panics if `flat.len()` doesn't match the scalar count.
    pub fn unflatten_grads(&mut self, flat: &[f32]) {
        assert_eq!(
            flat.len(),
            self.num_scalars(),
            "unflatten_grads: length mismatch"
        );
        let mut offset = 0;
        for (_, p) in &mut self.params {
            let n = p.g.len();
            p.g.as_mut_slice()
                .copy_from_slice(&flat[offset..offset + n]);
            offset += n;
        }
    }

    /// Flattens all weights (used to broadcast the initial model so
    /// every trainer replica starts identical).
    pub fn flatten_weights(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_scalars());
        for (_, p) in &self.params {
            out.extend_from_slice(p.w.as_slice());
        }
        out
    }

    /// Overwrites all weights from a flat vector.
    ///
    /// # Panics
    /// Panics if `flat.len()` doesn't match the scalar count.
    pub fn unflatten_weights(&mut self, flat: &[f32]) {
        assert_eq!(
            flat.len(),
            self.num_scalars(),
            "unflatten_weights: length mismatch"
        );
        let mut offset = 0;
        for (_, p) in &mut self.params {
            let n = p.w.len();
            p.w.as_mut_slice()
                .copy_from_slice(&flat[offset..offset + n]);
            offset += n;
        }
    }

    /// Global gradient-norm clipping (standard TGN training detail).
    /// Returns the pre-clip norm.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let total: f32 = self.params.iter().map(|(_, p)| p.g.norm_sq()).sum();
        let norm = total.sqrt();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for (_, p) in &mut self.params {
                p.g.scale(scale);
            }
        }
        norm
    }

    /// True if any weight or gradient contains NaN/inf.
    pub fn has_non_finite(&self) -> bool {
        self.params
            .iter()
            .any(|(_, p)| p.w.has_non_finite() || p.g.has_non_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set_with_two() -> ParamSet {
        let mut s = ParamSet::new();
        s.register("a", Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        s.register("b", Matrix::from_vec(2, 1, vec![3.0, 4.0]));
        s
    }

    #[test]
    fn registration_order_is_stable() {
        let s = set_with_two();
        assert_eq!(s.index_of("a"), Some(0));
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.name(1), "b");
        assert_eq!(s.num_scalars(), 4);
    }

    #[test]
    fn flatten_roundtrip_weights() {
        let mut s = set_with_two();
        let flat = s.flatten_weights();
        assert_eq!(flat, vec![1.0, 2.0, 3.0, 4.0]);
        let doubled: Vec<f32> = flat.iter().map(|v| v * 2.0).collect();
        s.unflatten_weights(&doubled);
        assert_eq!(s.get(0).w.as_slice(), &[2.0, 4.0]);
        assert_eq!(s.get(1).w.as_slice(), &[6.0, 8.0]);
    }

    #[test]
    fn flatten_roundtrip_grads() {
        let mut s = set_with_two();
        s.get_mut(0).g.as_mut_slice().copy_from_slice(&[0.5, -0.5]);
        s.get_mut(1).g.as_mut_slice().copy_from_slice(&[1.5, -1.5]);
        let flat = s.flatten_grads();
        s.zero_grads();
        assert!(s.flatten_grads().iter().all(|&v| v == 0.0));
        s.unflatten_grads(&flat);
        assert_eq!(s.get(1).g.as_slice(), &[1.5, -1.5]);
    }

    #[test]
    fn clip_grad_norm_scales_down() {
        let mut s = set_with_two();
        s.get_mut(0).g.as_mut_slice().copy_from_slice(&[3.0, 0.0]);
        s.get_mut(1).g.as_mut_slice().copy_from_slice(&[0.0, 4.0]);
        let pre = s.clip_grad_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        let post: f32 = s.flatten_grads().iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((post - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_grad_norm_noop_below_threshold() {
        let mut s = set_with_two();
        s.get_mut(0).g.as_mut_slice().copy_from_slice(&[0.1, 0.0]);
        let pre = s.clip_grad_norm(10.0);
        assert!((pre - 0.1).abs() < 1e-6);
        assert_eq!(s.get(0).g.as_slice(), &[0.1, 0.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn unflatten_wrong_length_panics() {
        set_with_two().unflatten_grads(&[0.0; 3]);
    }
}
