//! # disttgl-nn
//!
//! Neural-network modules for the DistTGL reproduction, each with a
//! **hand-written backward pass** (no autograd engine — the model is
//! small and fixed, so explicit gradients are simpler, faster, and
//! testable against finite differences).
//!
//! The module set is exactly what TGN-attn + DistTGL's enhancements
//! need (paper §2.1, §3.1):
//!
//! * [`Linear`] — affine layer;
//! * [`GruCell`] — the `UPDT` node-memory updater (Eq. 3);
//! * [`TimeEncoding`] — Φ(Δt) = cos(ω·Δt + φ) (Xu et al. 2020);
//! * [`TemporalAttention`] — the one-layer attention aggregator (Eq. 4–7);
//! * [`EdgePredictor`] — MLP link-probability decoder;
//! * [`EdgeClassifier`] — multi-label head for the GDELT-style task;
//! * [`Adam`] — the optimizer used by TGN/TGL/DistTGL;
//! * [`loss`] — BCE-with-logits and multi-label losses.
//!
//! Every parameter lives in a [`ParamSet`] so trainer threads can
//! flatten gradients into a single vector for the simulated NCCL
//! all-reduce in `disttgl-cluster`.

mod adam;
mod attention;
mod gru;
mod linear;
pub mod loss;
mod param;
mod predictor;
mod time_encoding;

pub use adam::Adam;
pub use attention::{AttentionCache, TemporalAttention};
pub use gru::{GruCache, GruCell};
pub use linear::{Linear, LinearCache};
pub use param::{Param, ParamSet};
pub use predictor::{EdgeClassifier, EdgePredictor, PredictorCache};
pub use time_encoding::TimeEncoding;
