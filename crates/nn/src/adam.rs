//! Adam optimizer (Kingma & Ba), the optimizer used by TGN, TGL, and
//! DistTGL. One instance per trainer replica; state is indexed in
//! lock-step with the [`ParamSet`] registration order.

use crate::param::ParamSet;
use disttgl_tensor::Matrix;

/// Adam optimizer state.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    /// First-moment estimates, aligned with the ParamSet.
    m: Vec<Matrix>,
    /// Second-moment estimates.
    v: Vec<Matrix>,
    /// Step counter for bias correction.
    t: u64,
}

impl Adam {
    /// Creates Adam state shaped after `params` with standard defaults
    /// (β₁ = 0.9, β₂ = 0.999, ε = 1e-8, no weight decay).
    pub fn new(params: &ParamSet, lr: f32) -> Self {
        let m = (0..params.len())
            .map(|i| {
                let (r, c) = params.get(i).w.shape();
                Matrix::zeros(r, c)
            })
            .collect::<Vec<_>>();
        let v = m.clone();
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            m,
            v,
            t: 0,
        }
    }

    /// Sets the learning rate (the paper scales LR linearly with the
    /// global batch size, so schedulers adjust it per configuration).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Enables decoupled weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Number of optimizer steps taken.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Total scalar count of the optimizer state (m plus v).
    pub fn num_state_scalars(&self) -> usize {
        2 * self.m.iter().map(|m| m.len()).sum::<usize>()
    }

    /// Flattens the optimizer state — every first-moment matrix in
    /// parameter registration order, then every second-moment matrix —
    /// into one contiguous vector. Together with [`Adam::steps`] this
    /// is the complete state needed to resume training bit-identically
    /// (the hyperparameters are reconstructed from the config).
    pub fn flatten_state(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_state_scalars());
        for m in &self.m {
            out.extend_from_slice(m.as_slice());
        }
        for v in &self.v {
            out.extend_from_slice(v.as_slice());
        }
        out
    }

    /// Restores moments and step counter from a
    /// [`Adam::flatten_state`] vector.
    ///
    /// # Panics
    /// Panics if `flat.len()` doesn't match the state scalar count
    /// (callers deserializing external data validate lengths first).
    pub fn load_state(&mut self, t: u64, flat: &[f32]) {
        assert_eq!(
            flat.len(),
            self.num_state_scalars(),
            "Adam::load_state: length mismatch"
        );
        let mut offset = 0;
        for m in &mut self.m {
            let n = m.len();
            m.as_mut_slice().copy_from_slice(&flat[offset..offset + n]);
            offset += n;
        }
        for v in &mut self.v {
            let n = v.len();
            v.as_mut_slice().copy_from_slice(&flat[offset..offset + n]);
            offset += n;
        }
        self.t = t;
    }

    /// Applies one Adam update from the gradients accumulated in
    /// `params` and leaves the gradients untouched (callers zero them).
    ///
    /// # Panics
    /// Panics if `params` was grown since construction.
    pub fn step(&mut self, params: &mut ParamSet) {
        assert_eq!(params.len(), self.m.len(), "Adam: param count changed");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let p = params.get_mut(i);
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            let lr = self.lr;
            let (b1, b2, eps, wd) = (self.beta1, self.beta2, self.eps, self.weight_decay);
            for (((wv, &gv), mv), vv) in
                p.w.as_mut_slice()
                    .iter_mut()
                    .zip(p.g.as_slice())
                    .zip(m.as_mut_slice())
                    .zip(v.as_mut_slice())
            {
                let g = gv + wd * *wv;
                *mv = b1 * *mv + (1.0 - b1) * g;
                *vv = b2 * *vv + (1.0 - b2) * g * g;
                let m_hat = *mv / bc1;
                let v_hat = *vv / bc2;
                *wv -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disttgl_tensor::seeded_rng;

    /// Minimizes f(w) = (w − 3)² and checks convergence to 3.
    #[test]
    fn converges_on_quadratic() {
        let mut ps = ParamSet::new();
        ps.register("w", Matrix::zeros(1, 1));
        let mut adam = Adam::new(&ps, 0.1);
        for _ in 0..500 {
            let w = ps.get(0).w.get(0, 0);
            ps.zero_grads();
            ps.get_mut(0).g.set(0, 0, 2.0 * (w - 3.0));
            adam.step(&mut ps);
        }
        let w = ps.get(0).w.get(0, 0);
        assert!((w - 3.0).abs() < 1e-2, "w = {}", w);
        assert_eq!(adam.steps(), 500);
    }

    /// First step size equals lr regardless of gradient magnitude
    /// (Adam's scale invariance after bias correction).
    #[test]
    fn first_step_is_lr_sized() {
        for scale in [1e-3, 1.0, 1e3] {
            let mut ps = ParamSet::new();
            ps.register("w", Matrix::zeros(1, 1));
            let mut adam = Adam::new(&ps, 0.05);
            ps.get_mut(0).g.set(0, 0, scale);
            adam.step(&mut ps);
            let w = ps.get(0).w.get(0, 0);
            assert!((w + 0.05).abs() < 1e-4, "scale {}: w {}", scale, w);
        }
    }

    #[test]
    fn zero_gradient_is_noop() {
        let mut rng = seeded_rng(3);
        let mut ps = ParamSet::new();
        ps.register("w", Matrix::uniform(2, 2, 1.0, &mut rng));
        let before = ps.get(0).w.clone();
        let mut adam = Adam::new(&ps, 0.1);
        ps.zero_grads();
        adam.step(&mut ps);
        // With m = v = 0 and g = 0 the update is exactly zero.
        assert_eq!(ps.get(0).w, before);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut ps = ParamSet::new();
        ps.register("w", Matrix::full(1, 1, 5.0));
        let mut adam = Adam::new(&ps, 0.01).with_weight_decay(0.1);
        for _ in 0..200 {
            ps.zero_grads();
            adam.step(&mut ps);
        }
        assert!(ps.get(0).w.get(0, 0) < 5.0);
    }

    #[test]
    fn state_roundtrip_resumes_bit_identically() {
        // Optimize for 5 steps, snapshot, continue 5 more; a fresh
        // optimizer restored from the snapshot and run for the same 5
        // steps must land on identical weights.
        let mut rng = seeded_rng(23);
        let init = Matrix::uniform(2, 3, 1.0, &mut rng);
        let mut ps = ParamSet::new();
        ps.register("w", init.clone());
        let mut adam = Adam::new(&ps, 0.02);
        let grads: Vec<Matrix> = (0..10)
            .map(|_| Matrix::uniform(2, 3, 1.0, &mut rng))
            .collect();
        for g in &grads[..5] {
            ps.get_mut(0).g = g.clone();
            adam.step(&mut ps);
        }
        let (t, state, weights) = (adam.steps(), adam.flatten_state(), ps.flatten_weights());
        for g in &grads[5..] {
            ps.get_mut(0).g = g.clone();
            adam.step(&mut ps);
        }
        let mut ps2 = ParamSet::new();
        ps2.register("w", init);
        ps2.unflatten_weights(&weights);
        let mut adam2 = Adam::new(&ps2, 0.02);
        adam2.load_state(t, &state);
        for g in &grads[5..] {
            ps2.get_mut(0).g = g.clone();
            adam2.step(&mut ps2);
        }
        assert_eq!(ps.get(0).w, ps2.get(0).w);
        assert_eq!(adam.steps(), adam2.steps());
    }

    #[test]
    fn identical_replicas_stay_identical() {
        // Two Adam instances fed identical gradients must produce
        // identical weights — the invariant distributed training
        // relies on after all-reduce.
        let mut rng = seeded_rng(17);
        let init = Matrix::uniform(3, 3, 1.0, &mut rng);
        let grad = Matrix::uniform(3, 3, 1.0, &mut rng);
        let mut ps1 = ParamSet::new();
        ps1.register("w", init.clone());
        let mut ps2 = ParamSet::new();
        ps2.register("w", init);
        let mut a1 = Adam::new(&ps1, 0.01);
        let mut a2 = Adam::new(&ps2, 0.01);
        for _ in 0..10 {
            ps1.get_mut(0).g = grad.clone();
            ps2.get_mut(0).g = grad.clone();
            a1.step(&mut ps1);
            a2.step(&mut ps2);
        }
        assert_eq!(ps1.get(0).w, ps2.get(0).w);
    }
}
