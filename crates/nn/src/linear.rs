//! Affine layer `Y = X·Wᵀ + b` with manual backward.
//!
//! Weights are stored `out × in` (PyTorch convention) so the forward
//! uses the fused `matmul_transpose_b` kernel.

use crate::param::ParamSet;
use disttgl_tensor::Matrix;
use rand::Rng;

/// A linear (affine) layer. Parameters live in an external [`ParamSet`];
/// the struct holds only their indices, so model structs stay `Clone`-free
/// and cheap while the flat gradient layout stays deterministic.
#[derive(Clone, Copy, Debug)]
pub struct Linear {
    w: usize,
    b: usize,
    in_dim: usize,
    out_dim: usize,
}

/// Saved forward activations needed by the backward pass.
pub struct LinearCache {
    /// The forward input `X` (batch × in_dim).
    pub input: Matrix,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weight and zero bias,
    /// registering both in `params` under `name.w` / `name.b`.
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let w = params.register(
            &format!("{name}.w"),
            Matrix::xavier_uniform(out_dim, in_dim, rng),
        );
        let b = params.register(&format!("{name}.b"), Matrix::zeros(1, out_dim));
        Self {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Forward pass: returns `X·Wᵀ + b` and the cache for backward.
    ///
    /// # Panics
    /// Panics if `x.cols() != in_dim`.
    pub fn forward(&self, params: &ParamSet, x: &Matrix) -> (Matrix, LinearCache) {
        assert_eq!(x.cols(), self.in_dim, "Linear::forward: input width");
        let mut y = x.matmul_transpose_b(&params.get(self.w).w);
        y.add_row_broadcast(&params.get(self.b).w);
        (y, LinearCache { input: x.clone() })
    }

    /// Inference-only forward (no cache clone).
    pub fn infer(&self, params: &ParamSet, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.in_dim, "Linear::infer: input width");
        let mut y = x.matmul_transpose_b(&params.get(self.w).w);
        y.add_row_broadcast(&params.get(self.b).w);
        y
    }

    /// Backward pass: accumulates `dW += dYᵀ·X`, `db += Σ_rows dY` and
    /// returns `dX = dY·W`.
    pub fn backward(&self, params: &mut ParamSet, cache: &LinearCache, dy: &Matrix) -> Matrix {
        assert_eq!(dy.cols(), self.out_dim, "Linear::backward: grad width");
        let dw = dy.matmul_transpose_a(&cache.input);
        params.get_mut(self.w).g.add_assign(&dw);
        let db = dy.sum_rows();
        params.get_mut(self.b).g.add_assign(&db);
        dy.matmul(&params.get(self.w).w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disttgl_tensor::seeded_rng;

    /// Finite-difference gradient check of the full layer.
    #[test]
    fn gradient_check_weights_and_input() {
        let mut rng = seeded_rng(11);
        let mut ps = ParamSet::new();
        let layer = Linear::new(&mut ps, "l", 3, 2, &mut rng);
        let x = Matrix::uniform(4, 3, 1.0, &mut rng);
        // Loss = sum of outputs (upstream gradient of ones).
        let (y, cache) = layer.forward(&ps, &x);
        let ones = Matrix::full(y.rows(), y.cols(), 1.0);
        let dx = layer.backward(&mut ps, &cache, &ones);

        let eps = 1e-3;
        // Check dW numerically.
        let widx = ps.index_of("l.w").unwrap();
        for r in 0..2 {
            for c in 0..3 {
                let orig = ps.get(widx).w.get(r, c);
                ps.get_mut(widx).w.set(r, c, orig + eps);
                let fp = layer.infer(&ps, &x).sum();
                ps.get_mut(widx).w.set(r, c, orig - eps);
                let fm = layer.infer(&ps, &x).sum();
                ps.get_mut(widx).w.set(r, c, orig);
                let num = (fp - fm) / (2.0 * eps);
                let ana = ps.get(widx).g.get(r, c);
                assert!((num - ana).abs() < 1e-2, "dW[{r},{c}]: {num} vs {ana}");
            }
        }
        // Check dX numerically.
        for r in 0..4 {
            for c in 0..3 {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + eps);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - eps);
                let num = (layer.infer(&ps, &xp).sum() - layer.infer(&ps, &xm).sum()) / (2.0 * eps);
                let ana = dx.get(r, c);
                assert!((num - ana).abs() < 1e-2, "dX[{r},{c}]: {num} vs {ana}");
            }
        }
    }

    #[test]
    fn bias_gradient_is_row_count() {
        let mut rng = seeded_rng(5);
        let mut ps = ParamSet::new();
        let layer = Linear::new(&mut ps, "l", 2, 2, &mut rng);
        let x = Matrix::zeros(7, 2);
        let (y, cache) = layer.forward(&ps, &x);
        let ones = Matrix::full(y.rows(), y.cols(), 1.0);
        layer.backward(&mut ps, &cache, &ones);
        let bidx = ps.index_of("l.b").unwrap();
        // d(sum)/db_j = batch size.
        assert!(ps
            .get(bidx)
            .g
            .as_slice()
            .iter()
            .all(|&v| (v - 7.0).abs() < 1e-6));
    }

    #[test]
    fn forward_matches_infer() {
        let mut rng = seeded_rng(9);
        let mut ps = ParamSet::new();
        let layer = Linear::new(&mut ps, "l", 5, 3, &mut rng);
        let x = Matrix::uniform(2, 5, 2.0, &mut rng);
        let (y, _) = layer.forward(&ps, &x);
        assert_eq!(y, layer.infer(&ps, &x));
        assert_eq!(y.shape(), (2, 3));
    }

    #[test]
    fn gradients_accumulate_across_calls() {
        let mut rng = seeded_rng(13);
        let mut ps = ParamSet::new();
        let layer = Linear::new(&mut ps, "l", 2, 1, &mut rng);
        let x = Matrix::full(1, 2, 1.0);
        let dy = Matrix::full(1, 1, 1.0);
        let (_, cache) = layer.forward(&ps, &x);
        layer.backward(&mut ps, &cache, &dy);
        let g1 = ps.get(0).g.clone();
        layer.backward(&mut ps, &cache, &dy);
        let g2 = ps.get(0).g.clone();
        assert_eq!(g2, g1.scaled(2.0));
    }
}
