//! GRU cell — the `UPDT` function of Eq. 3 in the paper.
//!
//! `s_u = UPDT(s_u, m_u)` where the mail `m_u` is the input and the node
//! memory `s_u` is the hidden state. Matching TGN-attn, gradients do
//! **not** flow back through time: the backward pass returns the
//! gradient w.r.t. the mail input and (optionally, for tests) w.r.t. the
//! incoming hidden state, but the training loop never chains the latter
//! into a previous step.
//!
//! Gate equations (PyTorch `GRUCell` convention):
//! ```text
//! r  = σ(x·Wirᵀ + bir + h·Whrᵀ + bhr)
//! z  = σ(x·Wizᵀ + biz + h·Whzᵀ + bhz)
//! n  = tanh(x·Winᵀ + bin + r ⊙ (h·Whnᵀ + bhn))
//! h' = (1 − z) ⊙ n + z ⊙ h
//! ```

use crate::param::ParamSet;
use disttgl_tensor::timing::{scope, Kernel};
use disttgl_tensor::{kernels, Matrix};
use rand::Rng;

/// GRU cell parameter indices within a [`ParamSet`].
#[derive(Clone, Copy, Debug)]
pub struct GruCell {
    w_ir: usize,
    w_iz: usize,
    w_in: usize,
    w_hr: usize,
    w_hz: usize,
    w_hn: usize,
    b_ir: usize,
    b_iz: usize,
    b_in: usize,
    b_hr: usize,
    b_hz: usize,
    b_hn: usize,
    input_dim: usize,
    hidden_dim: usize,
}

/// Forward activations saved for the backward pass.
///
/// Reusable: [`GruCell::forward_into`] resizes every buffer in place,
/// so a long-lived cache (the trainer's scratch arena) makes the GRU
/// step allocation-free after warm-up.
#[derive(Default)]
pub struct GruCache {
    x: Matrix,
    h: Matrix,
    r: Matrix,
    z: Matrix,
    n: Matrix,
    /// `a = h·Whnᵀ + bhn`, the candidate's hidden-side pre-activation.
    a: Matrix,
    /// Gate-assembly scratch, not read by the backward pass.
    tmp: Matrix,
}

impl GruCell {
    /// Registers all 6 weight matrices and 6 biases (PyTorch
    /// `1/sqrt(hidden)` uniform init).
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        input_dim: usize,
        hidden_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let mut wi = |p: &mut ParamSet, gate: &str| {
            p.register(
                &format!("{name}.w_i{gate}"),
                Matrix::gru_uniform(hidden_dim, input_dim, hidden_dim, rng),
            )
        };
        let w_ir = wi(params, "r");
        let w_iz = wi(params, "z");
        let w_in = wi(params, "n");
        let mut wh = |p: &mut ParamSet, gate: &str| {
            p.register(
                &format!("{name}.w_h{gate}"),
                Matrix::gru_uniform(hidden_dim, hidden_dim, hidden_dim, rng),
            )
        };
        let w_hr = wh(params, "r");
        let w_hz = wh(params, "z");
        let w_hn = wh(params, "n");
        let b = |p: &mut ParamSet, which: &str| {
            p.register(&format!("{name}.b_{which}"), Matrix::zeros(1, hidden_dim))
        };
        let b_ir = b(params, "ir");
        let b_iz = b(params, "iz");
        let b_in = b(params, "in");
        let b_hr = b(params, "hr");
        let b_hz = b(params, "hz");
        let b_hn = b(params, "hn");
        Self {
            w_ir,
            w_iz,
            w_in,
            w_hr,
            w_hz,
            w_hn,
            b_ir,
            b_iz,
            b_in,
            b_hr,
            b_hz,
            b_hn,
            input_dim,
            hidden_dim,
        }
    }

    /// Mail (input) width.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Node-memory (hidden) width.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Forward step: returns `(h', cache)`.
    ///
    /// # Panics
    /// Panics on input/hidden width mismatch.
    pub fn forward(&self, params: &ParamSet, x: &Matrix, h: &Matrix) -> (Matrix, GruCache) {
        let mut cache = GruCache::default();
        let mut h_new = Matrix::default();
        self.forward_into(params, x, h, &mut cache, &mut h_new);
        (h_new, cache)
    }

    /// Fused forward step writing every gate into the preallocated
    /// `cache` buffers and the output into `h_new` (all resized in
    /// place). With a persistent cache this is allocation-free after
    /// the first call, and it is bit-identical to [`GruCell::forward`]
    /// — the same multiply/add/activation sequence per element, only
    /// the storage is reused.
    ///
    /// # Panics
    /// Panics on input/hidden width mismatch.
    pub fn forward_into(
        &self,
        params: &ParamSet,
        x: &Matrix,
        h: &Matrix,
        cache: &mut GruCache,
        h_new: &mut Matrix,
    ) {
        assert_eq!(x.rows(), h.rows(), "GruCell: batch mismatch");
        cache.x.copy_from(x);
        cache.h.copy_from(h);
        self.compute_from_cache(params, cache, h_new);
    }

    /// [`GruCell::forward_into`] over the contiguous row range `rows`
    /// of larger `x`/`h` blocks — the view-based entry point: the input
    /// copy the cache needs anyway doubles as the readout split, so a
    /// part of a shared gathered block feeds the GRU without an
    /// intermediate per-part readout copy. Bit-identical to slicing
    /// first and calling [`GruCell::forward_into`].
    ///
    /// # Panics
    /// Panics on width mismatch or an out-of-range row span.
    pub fn forward_rows_into(
        &self,
        params: &ParamSet,
        x: &Matrix,
        h: &Matrix,
        rows: std::ops::Range<usize>,
        cache: &mut GruCache,
        h_new: &mut Matrix,
    ) {
        assert_eq!(x.rows(), h.rows(), "GruCell: batch mismatch");
        cache.x.copy_rows_from(x, rows.clone());
        cache.h.copy_rows_from(h, rows);
        self.compute_from_cache(params, cache, h_new);
    }

    /// Shared fused-forward body: gates from the already-filled
    /// `cache.x`/`cache.h` copies (same values as the caller's inputs,
    /// so the arithmetic — and therefore every output bit — matches
    /// the pre-refactor path that read the inputs directly).
    fn compute_from_cache(&self, params: &ParamSet, cache: &mut GruCache, h_new: &mut Matrix) {
        // The GRU scope wraps the whole cell, gate matmuls included,
        // so `gru_secs` is the full memory-update cost (it overlaps
        // `matmul_secs`; the kinds are attributions, not a partition).
        let _t = scope(Kernel::Gru);
        let GruCache {
            x,
            h,
            r,
            z,
            n,
            a,
            tmp,
        } = cache;
        let (x, h) = (&*x, &*h);
        assert_eq!(x.cols(), self.input_dim, "GruCell: input width");
        assert_eq!(h.cols(), self.hidden_dim, "GruCell: hidden width");

        // r = σ(x·Wirᵀ + bir + h·Whrᵀ + bhr), gates assembled in place.
        fn assemble_gate(
            params: &ParamSet,
            x: &Matrix,
            h: &Matrix,
            (wi, bi, wh, bh): (usize, usize, usize, usize),
            tmp: &mut Matrix,
            out: &mut Matrix,
        ) {
            x.matmul_transpose_b_into(&params.get(wi).w, out);
            out.add_row_broadcast(&params.get(bi).w);
            h.matmul_transpose_b_into(&params.get(wh).w, tmp);
            tmp.add_row_broadcast(&params.get(bh).w);
            out.add_assign(tmp);
        }
        let r_ids = (self.w_ir, self.b_ir, self.w_hr, self.b_hr);
        let z_ids = (self.w_iz, self.b_iz, self.w_hz, self.b_hz);
        assemble_gate(params, x, h, r_ids, tmp, r);
        assemble_gate(params, x, h, z_ids, tmp, z);
        r.map_inplace(disttgl_tensor::sigmoid_scalar);
        z.map_inplace(disttgl_tensor::sigmoid_scalar);

        // a = h·Whnᵀ + bhn; n = tanh(x·Winᵀ + bin + r ⊙ a).
        h.matmul_transpose_b_into(&params.get(self.w_hn).w, a);
        a.add_row_broadcast(&params.get(self.b_hn).w);
        x.matmul_transpose_b_into(&params.get(self.w_in).w, n);
        n.add_row_broadcast(&params.get(self.b_in).w);
        kernels::gru_candidate(n.as_mut_slice(), r.as_slice(), a.as_slice());
        n.map_inplace(f32::tanh);

        // h' = (1 − z) ⊙ n + z ⊙ h, fused per element in the same
        // operation order as the allocating path: n − z·n + z·h.
        h_new.resize_for_overwrite(n.rows(), n.cols());
        kernels::gru_combine(
            h_new.as_mut_slice(),
            n.as_slice(),
            z.as_slice(),
            h.as_slice(),
        );
    }

    /// Inference-only forward (drops the cache).
    pub fn infer(&self, params: &ParamSet, x: &Matrix, h: &Matrix) -> Matrix {
        self.forward(params, x, h).0
    }

    /// Backward step. Accumulates weight/bias gradients and returns
    /// `(dx, dh)` — the training loop uses `dx` (mail path) and discards
    /// `dh` per the no-BPTT rule of M-TGNN training.
    pub fn backward(
        &self,
        params: &mut ParamSet,
        cache: &GruCache,
        dh_new: &Matrix,
    ) -> (Matrix, Matrix) {
        let GruCache {
            x, h, r, z, n, a, ..
        } = cache;

        // h' = (1 − z) ⊙ n + z ⊙ h
        let dz = dh_new.hadamard(&h.sub(n));
        let dn = dh_new.hadamard(&z.map(|v| 1.0 - v));
        let mut dh = dh_new.hadamard(z);

        // Through tanh: n = tanh(n_pre)
        let dn_pre = dn.hadamard(&n.tanh_deriv_from_output());
        // n_pre = x·Winᵀ + bin + r ⊙ a
        let dr = dn_pre.hadamard(a);
        let da = dn_pre.hadamard(r);
        // Through sigmoids.
        let dr_pre = dr.hadamard(&r.sigmoid_deriv_from_output());
        let dz_pre = dz.hadamard(&z.sigmoid_deriv_from_output());

        // Weight gradients (dW = dpreᵀ·input) and input gradients.
        let acc = |p: &mut ParamSet, dpre: &Matrix, wi: usize, bi: usize, inp: &Matrix| {
            let dw = dpre.matmul_transpose_a(inp);
            p.get_mut(wi).g.add_assign(&dw);
            let db = dpre.sum_rows();
            p.get_mut(bi).g.add_assign(&db);
            dpre.matmul(&p.get(wi).w)
        };

        let mut dx = acc(params, &dr_pre, self.w_ir, self.b_ir, x);
        dx.add_assign(&acc(params, &dz_pre, self.w_iz, self.b_iz, x));
        dx.add_assign(&acc(params, &dn_pre, self.w_in, self.b_in, x));

        dh.add_assign(&acc(params, &dr_pre, self.w_hr, self.b_hr, h));
        dh.add_assign(&acc(params, &dz_pre, self.w_hz, self.b_hz, h));
        dh.add_assign(&acc(params, &da, self.w_hn, self.b_hn, h));

        (dx, dh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disttgl_tensor::seeded_rng;

    fn setup(input: usize, hidden: usize, batch: usize) -> (ParamSet, GruCell, Matrix, Matrix) {
        let mut rng = seeded_rng(21);
        let mut ps = ParamSet::new();
        let cell = GruCell::new(&mut ps, "gru", input, hidden, &mut rng);
        let x = Matrix::uniform(batch, input, 1.0, &mut rng);
        let h = Matrix::uniform(batch, hidden, 1.0, &mut rng);
        (ps, cell, x, h)
    }

    #[test]
    fn output_shape_and_range() {
        let (ps, cell, x, h) = setup(5, 3, 4);
        let (h2, _) = cell.forward(&ps, &x, &h);
        assert_eq!(h2.shape(), (4, 3));
        // h' is a convex combination of tanh output and previous h, so
        // it is bounded by max(|h|, 1).
        let bound = h.as_slice().iter().fold(1.0f32, |m, v| m.max(v.abs())) + 1e-5;
        assert!(h2.as_slice().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn zero_update_gate_keeps_candidate() {
        // With z forced towards 0 (large negative bias), h' ≈ n.
        let (mut ps, cell, x, h) = setup(4, 3, 2);
        let biz = ps.index_of("gru.b_iz").unwrap();
        ps.get_mut(biz).w.fill(-50.0);
        let (h2, cache) = cell.forward(&ps, &x, &h);
        for (hv, nv) in h2.as_slice().iter().zip(cache.n.as_slice()) {
            assert!((hv - nv).abs() < 1e-4);
        }
    }

    #[test]
    fn full_update_gate_keeps_memory() {
        // With z forced towards 1, h' ≈ h (memory passes through).
        let (mut ps, cell, x, h) = setup(4, 3, 2);
        let biz = ps.index_of("gru.b_iz").unwrap();
        ps.get_mut(biz).w.fill(50.0);
        let (h2, _) = cell.forward(&ps, &x, &h);
        for (h2v, hv) in h2.as_slice().iter().zip(h.as_slice()) {
            assert!((h2v - hv).abs() < 1e-4);
        }
    }

    /// Finite-difference check of every weight gradient plus dx and dh.
    #[test]
    fn gradient_check_full() {
        let (mut ps, cell, x, h) = setup(3, 2, 2);
        let (y, cache) = cell.forward(&ps, &x, &h);
        let ones = Matrix::full(y.rows(), y.cols(), 1.0);
        ps.zero_grads();
        let (dx, dh) = cell.backward(&mut ps, &cache, &ones);

        let eps = 1e-2;
        let loss = |p: &ParamSet, xx: &Matrix, hh: &Matrix| cell.infer(p, xx, hh).sum();

        // All registered parameters.
        for idx in 0..ps.len() {
            let (rows, cols) = ps.get(idx).w.shape();
            for r in 0..rows {
                for c in 0..cols {
                    let orig = ps.get(idx).w.get(r, c);
                    ps.get_mut(idx).w.set(r, c, orig + eps);
                    let fp = loss(&ps, &x, &h);
                    ps.get_mut(idx).w.set(r, c, orig - eps);
                    let fm = loss(&ps, &x, &h);
                    ps.get_mut(idx).w.set(r, c, orig);
                    let num = (fp - fm) / (2.0 * eps);
                    let ana = ps.get(idx).g.get(r, c);
                    assert!(
                        (num - ana).abs() < 2e-2 * (1.0 + ana.abs()),
                        "param {} [{r},{c}]: numeric {num} vs analytic {ana}",
                        ps.name(idx)
                    );
                }
            }
        }
        // dx
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + eps);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - eps);
                let num = (loss(&ps, &xp, &h) - loss(&ps, &xm, &h)) / (2.0 * eps);
                assert!(
                    (num - dx.get(r, c)).abs() < 2e-2 * (1.0 + num.abs()),
                    "dx[{r},{c}]"
                );
            }
        }
        // dh
        for r in 0..h.rows() {
            for c in 0..h.cols() {
                let mut hp = h.clone();
                hp.set(r, c, h.get(r, c) + eps);
                let mut hm = h.clone();
                hm.set(r, c, h.get(r, c) - eps);
                let num = (loss(&ps, &x, &hp) - loss(&ps, &x, &hm)) / (2.0 * eps);
                assert!(
                    (num - dh.get(r, c)).abs() < 2e-2 * (1.0 + num.abs()),
                    "dh[{r},{c}]"
                );
            }
        }
    }

    /// The view-based entry point must equal slicing first — same
    /// bits, since both feed identical values through the same fused
    /// body.
    #[test]
    fn forward_rows_into_matches_sliced_forward() {
        let (ps, cell, x, h) = setup(4, 3, 6);
        let (expect, _) = cell.forward(&ps, &x.slice_rows(1, 5), &h.slice_rows(1, 5));
        let mut cache = GruCache::default();
        let mut out = Matrix::default();
        cell.forward_rows_into(&ps, &x, &h, 1..5, &mut cache, &mut out);
        assert_eq!(out, expect);
    }

    #[test]
    fn deterministic_given_seed() {
        let (ps1, cell1, x1, h1) = setup(4, 3, 2);
        let (ps2, cell2, x2, h2) = setup(4, 3, 2);
        assert_eq!(x1, x2);
        assert_eq!(cell1.infer(&ps1, &x1, &h1), cell2.infer(&ps2, &x2, &h2));
    }
}
