//! Loss functions returning `(mean loss, dlogits)` pairs.
//!
//! The gradient is w.r.t. the *logits* (the numerically stable fused
//! form), already divided by the batch size, so callers feed it
//! straight into the decoder backward pass.

use disttgl_tensor::{sigmoid_scalar, Matrix};

/// Binary cross-entropy with logits.
///
/// `targets` entries must be 0.0 or 1.0. Returns the mean loss and the
/// per-element gradient `(σ(x) − y) / B`.
pub fn bce_with_logits(logits: &Matrix, targets: &Matrix) -> (f32, Matrix) {
    assert_eq!(logits.shape(), targets.shape(), "bce: shape mismatch");
    let n = logits.len() as f32;
    let mut grad = Matrix::zeros(logits.rows(), logits.cols());
    let mut loss = 0.0;
    for ((g, &x), &y) in grad
        .as_mut_slice()
        .iter_mut()
        .zip(logits.as_slice())
        .zip(targets.as_slice())
    {
        // Stable: max(x,0) − x·y + ln(1 + e^{−|x|})
        loss += x.max(0.0) - x * y + (1.0 + (-x.abs()).exp()).ln();
        *g = (sigmoid_scalar(x) - y) / n;
    }
    (loss / n, grad)
}

/// Link-prediction loss on 1 positive + `neg` negative logits per event:
/// positives packed in `pos` (`B × 1`), negatives in `neg` (`B·K × 1`).
/// Returns `(mean loss, dpos, dneg)`.
///
/// This mirrors TGN's self-supervised objective: every temporal edge is
/// a positive example; sampled non-edges at the same timestamp are
/// negatives.
pub fn link_prediction_loss(pos: &Matrix, neg: &Matrix) -> (f32, Matrix, Matrix) {
    let ones = Matrix::full(pos.rows(), pos.cols(), 1.0);
    let zeros = Matrix::zeros(neg.rows(), neg.cols());
    let (lp, mut dp) = bce_with_logits(pos, &ones);
    let (ln, mut dn) = bce_with_logits(neg, &zeros);
    // Weight the two halves equally regardless of the negative count
    // (TGN averages positive and negative terms).
    dp.scale(0.5);
    dn.scale(0.5);
    (0.5 * (lp + ln), dp, dn)
}

/// Multi-label BCE over `B × C` logits with 0/1 targets
/// (the GDELT-style dynamic edge classification objective).
pub fn multi_label_bce(logits: &Matrix, targets: &Matrix) -> (f32, Matrix) {
    bce_with_logits(logits, targets)
}

/// Mean Reciprocal Rank of the positive among `1 + K` candidates.
///
/// `pos[b]` is the positive score for event `b`; `neg[b·K .. (b+1)·K]`
/// are its negatives. Ties count against the positive (pessimistic
/// rank), so a constant scorer gets MRR ≈ 1/(K+1) rather than 1.
pub fn mrr(pos: &[f32], neg: &[f32], k: usize) -> f64 {
    assert!(k > 0, "mrr: need at least one negative");
    assert_eq!(neg.len(), pos.len() * k, "mrr: negative count");
    if pos.is_empty() {
        return 0.0;
    }
    let mut total = 0.0f64;
    for (b, &p) in pos.iter().enumerate() {
        let block = &neg[b * k..(b + 1) * k];
        let rank = 1 + block.iter().filter(|&&n| n >= p).count();
        total += 1.0 / rank as f64;
    }
    total / pos.len() as f64
}

/// Micro-averaged F1 for multi-label predictions: a label is predicted
/// positive when its logit > 0 (σ > 0.5).
pub fn f1_micro(logits: &Matrix, targets: &Matrix) -> f64 {
    assert_eq!(logits.shape(), targets.shape(), "f1: shape mismatch");
    let (mut tp, mut fp, mut fnn) = (0u64, 0u64, 0u64);
    for (&x, &y) in logits.as_slice().iter().zip(targets.as_slice()) {
        let pred = x > 0.0;
        let actual = y > 0.5;
        match (pred, actual) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fnn += 1,
            _ => {}
        }
    }
    if tp == 0 {
        return 0.0;
    }
    let precision = tp as f64 / (tp + fp) as f64;
    let recall = tp as f64 / (tp + fnn) as f64;
    2.0 * precision * recall / (precision + recall)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bce_perfect_predictions_near_zero_loss() {
        let logits = Matrix::from_vec(2, 1, vec![20.0, -20.0]);
        let targets = Matrix::from_vec(2, 1, vec![1.0, 0.0]);
        let (loss, grad) = bce_with_logits(&logits, &targets);
        assert!(loss < 1e-6, "loss {}", loss);
        assert!(grad.as_slice().iter().all(|v| v.abs() < 1e-6));
    }

    #[test]
    fn bce_uncertain_is_ln2() {
        let logits = Matrix::zeros(4, 1);
        let targets = Matrix::from_vec(4, 1, vec![1.0, 0.0, 1.0, 0.0]);
        let (loss, _) = bce_with_logits(&logits, &targets);
        assert!((loss - 2f32.ln()).abs() < 1e-6);
    }

    #[test]
    fn bce_gradient_finite_difference() {
        let logits = Matrix::from_vec(1, 3, vec![0.7, -1.2, 0.1]);
        let targets = Matrix::from_vec(1, 3, vec![1.0, 0.0, 1.0]);
        let (_, grad) = bce_with_logits(&logits, &targets);
        let eps = 1e-3;
        for i in 0..3 {
            let mut lp = logits.clone();
            lp.set(0, i, logits.get(0, i) + eps);
            let mut lm = logits.clone();
            lm.set(0, i, logits.get(0, i) - eps);
            let num =
                (bce_with_logits(&lp, &targets).0 - bce_with_logits(&lm, &targets).0) / (2.0 * eps);
            assert!((num - grad.get(0, i)).abs() < 1e-3, "i={}", i);
        }
    }

    #[test]
    fn bce_extreme_logits_stay_finite() {
        let logits = Matrix::from_vec(1, 2, vec![500.0, -500.0]);
        let targets = Matrix::from_vec(1, 2, vec![0.0, 1.0]);
        let (loss, grad) = bce_with_logits(&logits, &targets);
        assert!(loss.is_finite());
        assert!(!grad.has_non_finite());
    }

    #[test]
    fn mrr_perfect_and_worst() {
        // Positive always highest.
        assert_eq!(mrr(&[5.0, 5.0], &[1.0, 2.0, 1.0, 2.0], 2), 1.0);
        // Positive always lowest among 3 candidates: rank 3.
        let v = mrr(&[0.0], &[1.0, 2.0], 2);
        assert!((v - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mrr_ties_are_pessimistic() {
        let v = mrr(&[1.0], &[1.0, 1.0], 2);
        assert!((v - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mrr_random_scorer_baseline() {
        // With 49 negatives scored identically to the positive, MRR is 1/50.
        let v = mrr(&[0.5], &[0.5; 49], 49);
        assert!((v - 0.02).abs() < 1e-9);
    }

    #[test]
    fn f1_micro_perfect_and_empty() {
        let logits = Matrix::from_vec(2, 2, vec![3.0, -3.0, -3.0, 3.0]);
        let targets = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(f1_micro(&logits, &targets), 1.0);
        let none = Matrix::from_vec(2, 2, vec![-3.0; 4]);
        assert_eq!(f1_micro(&none, &targets), 0.0);
    }

    #[test]
    fn f1_micro_half_right() {
        // Predict both labels positive; only one is.
        let logits = Matrix::from_vec(1, 2, vec![3.0, 3.0]);
        let targets = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        let f1 = f1_micro(&logits, &targets);
        // precision 0.5, recall 1.0 → F1 = 2/3.
        assert!((f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn link_loss_pushes_scores_apart() {
        let pos = Matrix::zeros(2, 1);
        let neg = Matrix::zeros(4, 1);
        let (loss, dp, dn) = link_prediction_loss(&pos, &neg);
        assert!((loss - 2f32.ln()).abs() < 1e-6);
        // Gradient descent direction: positives up (negative grad),
        // negatives down (positive grad).
        assert!(dp.as_slice().iter().all(|&v| v < 0.0));
        assert!(dn.as_slice().iter().all(|&v| v > 0.0));
    }
}
