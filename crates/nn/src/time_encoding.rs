//! Learnable time encoding Φ(Δt) = cos(ω·Δt + φ).
//!
//! From "Inductive representation learning on temporal graphs"
//! (Xu et al., ICLR 2020), used by Eq. 1–2 and 4–6 of the DistTGL
//! paper. Frequencies are initialized to a geometric ladder
//! `ω_j = 1 / 10^(j·9/(d−1))` spanning ~10 decades, the TGAT/TGL
//! default, so short and long time gaps are both resolvable.

use crate::param::ParamSet;
use disttgl_tensor::Matrix;

/// Time encoder. Owns indices of `ω` (frequencies) and `φ` (phases) in
/// the shared [`ParamSet`].
#[derive(Clone, Copy, Debug)]
pub struct TimeEncoding {
    omega: usize,
    phi: usize,
    dim: usize,
    /// When false (the TGL default), the backward pass skips the
    /// frequency/phase gradients — the encoder stays fixed.
    learnable: bool,
}

impl TimeEncoding {
    /// Registers ω, φ in `params` with the TGAT geometric initialization.
    pub fn new(params: &mut ParamSet, name: &str, dim: usize, learnable: bool) -> Self {
        assert!(dim >= 1, "TimeEncoding: dim must be >= 1");
        let omega_init = Matrix::from_fn(1, dim, |_, j| {
            if dim == 1 {
                1.0
            } else {
                let exponent = j as f32 * 9.0 / (dim as f32 - 1.0);
                10f32.powf(-exponent)
            }
        });
        let omega = params.register(&format!("{name}.omega"), omega_init);
        let phi = params.register(&format!("{name}.phi"), Matrix::zeros(1, dim));
        Self {
            omega,
            phi,
            dim,
            learnable,
        }
    }

    /// Encoding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Encodes a column of time deltas (`batch × 1`) into `batch × dim`
    /// features: `out[i][j] = cos(ω_j · dt_i + φ_j)`.
    pub fn forward(&self, params: &ParamSet, dt: &[f32]) -> Matrix {
        let omega = params.get(self.omega).w.as_slice();
        let phi = params.get(self.phi).w.as_slice();
        let mut out = Matrix::zeros(dt.len(), self.dim);
        for (i, &t) in dt.iter().enumerate() {
            for (j, o) in out.row_mut(i).iter_mut().enumerate() {
                *o = (omega[j] * t + phi[j]).cos();
            }
        }
        out
    }

    /// Backward: accumulates dω, dφ from the upstream gradient if the
    /// encoder is learnable. Time deltas are data, so no input gradient
    /// is produced.
    pub fn backward(&self, params: &mut ParamSet, dt: &[f32], upstream: &Matrix) {
        if !self.learnable {
            return;
        }
        assert_eq!(upstream.rows(), dt.len(), "TimeEncoding::backward: batch");
        assert_eq!(upstream.cols(), self.dim, "TimeEncoding::backward: width");
        let omega = params.get(self.omega).w.clone();
        let phi = params.get(self.phi).w.clone();
        let mut domega = Matrix::zeros(1, self.dim);
        let mut dphi = Matrix::zeros(1, self.dim);
        for (i, &t) in dt.iter().enumerate() {
            let up = upstream.row(i);
            for (j, &u) in up.iter().enumerate() {
                let s = -(omega.get(0, j) * t + phi.get(0, j)).sin() * u;
                domega.set(0, j, domega.get(0, j) + s * t);
                dphi.set(0, j, dphi.get(0, j) + s);
            }
        }
        params.get_mut(self.omega).g.add_assign(&domega);
        params.get_mut(self.phi).g.add_assign(&dphi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_delta_encodes_to_cos_phi() {
        let mut ps = ParamSet::new();
        let te = TimeEncoding::new(&mut ps, "t", 4, false);
        let enc = te.forward(&ps, &[0.0, 0.0]);
        // φ = 0 so cos(0) = 1 everywhere.
        assert!(enc.as_slice().iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn frequencies_span_decades() {
        let mut ps = ParamSet::new();
        let te = TimeEncoding::new(&mut ps, "t", 5, false);
        let om = ps.get(te.omega).w.clone();
        assert!((om.get(0, 0) - 1.0).abs() < 1e-6);
        assert!(om.get(0, 4) < 1e-8, "last freq {}", om.get(0, 4));
        // Strictly decreasing ladder.
        for j in 1..5 {
            assert!(om.get(0, j) < om.get(0, j - 1));
        }
    }

    #[test]
    fn encoding_is_bounded() {
        let mut ps = ParamSet::new();
        let te = TimeEncoding::new(&mut ps, "t", 8, false);
        let enc = te.forward(&ps, &[0.0, 1.0, 1e3, 1e6]);
        assert!(enc.as_slice().iter().all(|v| v.abs() <= 1.0 + 1e-6));
        assert_eq!(enc.shape(), (4, 8));
    }

    #[test]
    fn non_learnable_backward_is_noop() {
        let mut ps = ParamSet::new();
        let te = TimeEncoding::new(&mut ps, "t", 3, false);
        let up = Matrix::full(2, 3, 1.0);
        te.backward(&mut ps, &[1.0, 2.0], &up);
        assert!(ps.flatten_grads().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gradient_check_learnable() {
        let mut ps = ParamSet::new();
        let te = TimeEncoding::new(&mut ps, "t", 3, true);
        let dt = [0.5, 2.0];
        let up = Matrix::from_vec(2, 3, vec![1.0, -0.5, 0.3, 0.2, 0.9, -1.1]);
        ps.zero_grads();
        te.backward(&mut ps, &dt, &up);

        let eps = 1e-3;
        for idx in [te.omega, te.phi] {
            for j in 0..3 {
                let orig = ps.get(idx).w.get(0, j);
                ps.get_mut(idx).w.set(0, j, orig + eps);
                let fp = te.forward(&ps, &dt).dot_flat(&up);
                ps.get_mut(idx).w.set(0, j, orig - eps);
                let fm = te.forward(&ps, &dt).dot_flat(&up);
                ps.get_mut(idx).w.set(0, j, orig);
                let num = (fp - fm) / (2.0 * eps);
                let ana = ps.get(idx).g.get(0, j);
                assert!(
                    (num - ana).abs() < 1e-2,
                    "{} [{j}]: {num} vs {ana}",
                    ps.name(idx)
                );
            }
        }
    }
}
