//! Decoder heads.
//!
//! * [`EdgePredictor`] — 2-layer MLP on `{h_src || h_dst}` producing a
//!   link logit; the self-supervised temporal-link-prediction head used
//!   on Wikipedia/Reddit/MOOC/Flights (paper §4).
//! * [`EdgeClassifier`] — 2-layer MLP producing `C` logits for the
//!   multi-label dynamic edge classification task on GDELT (56-class /
//!   6-label, paper §4 dataset list).

use crate::linear::{Linear, LinearCache};
use crate::param::ParamSet;
use disttgl_tensor::Matrix;
use rand::Rng;

/// Two-layer MLP link decoder: `logit = W2·ReLU(W1·{h_src||h_dst}+b1)+b2`.
#[derive(Clone, Copy, Debug)]
pub struct EdgePredictor {
    l1: Linear,
    l2: Linear,
}

/// Saved activations for the decoder backward passes.
pub struct PredictorCache {
    c1: LinearCache,
    c2: LinearCache,
    /// Pre-activation of the hidden layer (for the ReLU mask).
    z1: Matrix,
}

impl EdgePredictor {
    /// `emb_dim` is the width of one node embedding; the input is the
    /// concatenation of two.
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        emb_dim: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let l1 = Linear::new(params, &format!("{name}.l1"), 2 * emb_dim, hidden, rng);
        let l2 = Linear::new(params, &format!("{name}.l2"), hidden, 1, rng);
        Self { l1, l2 }
    }

    /// Forward: `src`/`dst` are `B × emb_dim`; returns `B × 1` logits.
    pub fn forward(
        &self,
        params: &ParamSet,
        src: &Matrix,
        dst: &Matrix,
    ) -> (Matrix, PredictorCache) {
        let x = Matrix::hcat(&[src, dst]);
        let (z1, c1) = self.l1.forward(params, &x);
        let a1 = z1.relu();
        let (logits, c2) = self.l2.forward(params, &a1);
        (logits, PredictorCache { c1, c2, z1 })
    }

    /// Inference-only forward.
    pub fn infer(&self, params: &ParamSet, src: &Matrix, dst: &Matrix) -> Matrix {
        let x = Matrix::hcat(&[src, dst]);
        self.l2.infer(params, &self.l1.infer(params, &x).relu())
    }

    /// Backward from `B × 1` logit gradients; returns `(d_src, d_dst)`.
    pub fn backward(
        &self,
        params: &mut ParamSet,
        cache: &PredictorCache,
        dlogits: &Matrix,
    ) -> (Matrix, Matrix) {
        let da1 = self.l2.backward(params, &cache.c2, dlogits);
        let dz1 = da1.hadamard(&cache.z1.relu_deriv_from_input());
        let dx = self.l1.backward(params, &cache.c1, &dz1);
        let half = dx.cols() / 2;
        (dx.slice_cols(0, half), dx.slice_cols(half, dx.cols()))
    }
}

/// Two-layer MLP multi-label classifier over edge embeddings
/// `{h_src || h_dst}` → `C` logits.
#[derive(Clone, Copy, Debug)]
pub struct EdgeClassifier {
    l1: Linear,
    l2: Linear,
    num_classes: usize,
}

impl EdgeClassifier {
    /// Builds the head; input is `{h_src || h_dst}`.
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        emb_dim: usize,
        hidden: usize,
        num_classes: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let l1 = Linear::new(params, &format!("{name}.l1"), 2 * emb_dim, hidden, rng);
        let l2 = Linear::new(params, &format!("{name}.l2"), hidden, num_classes, rng);
        Self {
            l1,
            l2,
            num_classes,
        }
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Forward: returns `B × C` logits.
    pub fn forward(
        &self,
        params: &ParamSet,
        src: &Matrix,
        dst: &Matrix,
    ) -> (Matrix, PredictorCache) {
        let x = Matrix::hcat(&[src, dst]);
        let (z1, c1) = self.l1.forward(params, &x);
        let a1 = z1.relu();
        let (logits, c2) = self.l2.forward(params, &a1);
        (logits, PredictorCache { c1, c2, z1 })
    }

    /// Inference-only forward.
    pub fn infer(&self, params: &ParamSet, src: &Matrix, dst: &Matrix) -> Matrix {
        let x = Matrix::hcat(&[src, dst]);
        self.l2.infer(params, &self.l1.infer(params, &x).relu())
    }

    /// Backward from `B × C` logit gradients; returns `(d_src, d_dst)`.
    pub fn backward(
        &self,
        params: &mut ParamSet,
        cache: &PredictorCache,
        dlogits: &Matrix,
    ) -> (Matrix, Matrix) {
        let da1 = self.l2.backward(params, &cache.c2, dlogits);
        let dz1 = da1.hadamard(&cache.z1.relu_deriv_from_input());
        let dx = self.l1.backward(params, &cache.c1, &dz1);
        let half = dx.cols() / 2;
        (dx.slice_cols(0, half), dx.slice_cols(half, dx.cols()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disttgl_tensor::seeded_rng;

    #[test]
    fn predictor_shapes() {
        let mut rng = seeded_rng(41);
        let mut ps = ParamSet::new();
        let pred = EdgePredictor::new(&mut ps, "p", 6, 8, &mut rng);
        let src = Matrix::uniform(5, 6, 1.0, &mut rng);
        let dst = Matrix::uniform(5, 6, 1.0, &mut rng);
        let (logits, _) = pred.forward(&ps, &src, &dst);
        assert_eq!(logits.shape(), (5, 1));
        assert_eq!(logits, pred.infer(&ps, &src, &dst));
    }

    #[test]
    fn predictor_gradient_check() {
        let mut rng = seeded_rng(43);
        let mut ps = ParamSet::new();
        let pred = EdgePredictor::new(&mut ps, "p", 3, 4, &mut rng);
        let src = Matrix::uniform(2, 3, 1.0, &mut rng);
        let dst = Matrix::uniform(2, 3, 1.0, &mut rng);
        let (logits, cache) = pred.forward(&ps, &src, &dst);
        let up = Matrix::full(logits.rows(), 1, 1.0);
        ps.zero_grads();
        let (dsrc, ddst) = pred.backward(&mut ps, &cache, &up);

        let eps = 1e-2;
        let loss = |p: &ParamSet, s: &Matrix, d: &Matrix| pred.infer(p, s, d).sum();
        for idx in 0..ps.len() {
            let (rows, cols) = ps.get(idx).w.shape();
            for r in 0..rows {
                for c in 0..cols {
                    let orig = ps.get(idx).w.get(r, c);
                    ps.get_mut(idx).w.set(r, c, orig + eps);
                    let fp = loss(&ps, &src, &dst);
                    ps.get_mut(idx).w.set(r, c, orig - eps);
                    let fm = loss(&ps, &src, &dst);
                    ps.get_mut(idx).w.set(r, c, orig);
                    let num = (fp - fm) / (2.0 * eps);
                    let ana = ps.get(idx).g.get(r, c);
                    assert!(
                        (num - ana).abs() < 3e-2 * (1.0 + ana.abs()),
                        "{} [{r},{c}]: {num} vs {ana}",
                        ps.name(idx)
                    );
                }
            }
        }
        for r in 0..2 {
            for c in 0..3 {
                let mut sp = src.clone();
                sp.set(r, c, src.get(r, c) + eps);
                let mut sm = src.clone();
                sm.set(r, c, src.get(r, c) - eps);
                let num = (loss(&ps, &sp, &dst) - loss(&ps, &sm, &dst)) / (2.0 * eps);
                assert!(
                    (num - dsrc.get(r, c)).abs() < 3e-2 * (1.0 + num.abs()),
                    "dsrc[{r},{c}]"
                );
                let mut dp = dst.clone();
                dp.set(r, c, dst.get(r, c) + eps);
                let mut dm = dst.clone();
                dm.set(r, c, dst.get(r, c) - eps);
                let num = (loss(&ps, &src, &dp) - loss(&ps, &src, &dm)) / (2.0 * eps);
                assert!(
                    (num - ddst.get(r, c)).abs() < 3e-2 * (1.0 + num.abs()),
                    "ddst[{r},{c}]"
                );
            }
        }
    }

    #[test]
    fn classifier_shapes_and_grad_smoke() {
        let mut rng = seeded_rng(47);
        let mut ps = ParamSet::new();
        let clf = EdgeClassifier::new(&mut ps, "c", 4, 8, 7, &mut rng);
        assert_eq!(clf.num_classes(), 7);
        let src = Matrix::uniform(3, 4, 1.0, &mut rng);
        let dst = Matrix::uniform(3, 4, 1.0, &mut rng);
        let (logits, cache) = clf.forward(&ps, &src, &dst);
        assert_eq!(logits.shape(), (3, 7));
        let up = Matrix::full(3, 7, 0.5);
        let (dsrc, ddst) = clf.backward(&mut ps, &cache, &up);
        assert_eq!(dsrc.shape(), (3, 4));
        assert_eq!(ddst.shape(), (3, 4));
        assert!(!ps.flatten_grads().iter().all(|&v| v == 0.0));
    }
}
