//! Single-layer temporal graph attention — Eq. 4–7 of the paper.
//!
//! ```text
//! q  = Wq·{s_v || Φ(0)} + bq                         (per root)
//! K  = Wk·{S_w || E_vw || Φ(Δt)} + bk                (per neighbor)
//! V  = Wv·{S_w || E_vw || Φ(Δt)} + bv
//! h_v = softmax(q·Kᵀ / sqrt(|N_v|)) · V
//! ```
//!
//! The layer is batched with a **fixed neighbor slot count** `N` per
//! root (TGN-attn samples the 10 most recent neighbors); roots with
//! fewer neighbors mask the empty slots (score −1e9 → weight ≈ 0) and
//! the scale factor uses the *actual* neighbor count, matching the
//! paper's `sqrt(|N_v|)`. Roots with zero neighbors output zeros.
//!
//! The slot count is a *shape*, not a parameter: the weights only see
//! `q_dim`/`kv_dim` rows. [`TemporalAttention::forward_slots`] therefore
//! accepts the slot count per call, which is what lets one layer of an
//! L-layer embedding stack attend over every hop depth (whose fanouts
//! differ) with shared weights; [`TemporalAttention::forward`] keeps
//! the fixed-`n_slots` signature for single-hop callers.

use crate::linear::{Linear, LinearCache};
use crate::param::ParamSet;
use disttgl_tensor::timing::{scope, Kernel};
use disttgl_tensor::{kernels, Matrix};
use rand::Rng;

/// Temporal attention layer. `q_dim = d_mem + d_time`,
/// `kv_dim = d_mem + d_edge + d_time`, output width `d_head`.
#[derive(Clone, Copy, Debug)]
pub struct TemporalAttention {
    w_q: Linear,
    w_k: Linear,
    w_v: Linear,
    n_slots: usize,
    d_head: usize,
}

/// Forward state for the backward pass.
pub struct AttentionCache {
    q_cache: LinearCache,
    k_cache: LinearCache,
    v_cache: LinearCache,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    /// Post-softmax attention weights, `B × N`.
    attn: Matrix,
    /// Actual neighbor count per root.
    counts: Vec<usize>,
    /// Slot count of this forward call (may differ from the layer's
    /// default when attending over another hop's frontier).
    n_slots: usize,
}

impl TemporalAttention {
    /// Registers Wq/Wk/Wv (+biases) in `params`.
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        q_dim: usize,
        kv_dim: usize,
        d_head: usize,
        n_slots: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(n_slots >= 1, "attention needs at least one neighbor slot");
        let w_q = Linear::new(params, &format!("{name}.wq"), q_dim, d_head, rng);
        let w_k = Linear::new(params, &format!("{name}.wk"), kv_dim, d_head, rng);
        let w_v = Linear::new(params, &format!("{name}.wv"), kv_dim, d_head, rng);
        Self {
            w_q,
            w_k,
            w_v,
            n_slots,
            d_head,
        }
    }

    /// Neighbor slots per root.
    pub fn n_slots(&self) -> usize {
        self.n_slots
    }

    /// Output width.
    pub fn d_head(&self) -> usize {
        self.d_head
    }

    /// Forward pass.
    ///
    /// * `q_feat` — `B × q_dim` root features `{s_v || Φ(0)}`;
    /// * `kv_feat` — `(B·N) × kv_dim` neighbor features, root-major
    ///   (root b's slots occupy rows `b·N .. (b+1)·N`);
    /// * `counts[b]` — number of valid slots for root `b` (valid slots
    ///   must be the *first* `counts[b]` of the block).
    ///
    /// Returns `B × d_head` embeddings and the backward cache.
    pub fn forward(
        &self,
        params: &ParamSet,
        q_feat: &Matrix,
        kv_feat: &Matrix,
        counts: &[usize],
    ) -> (Matrix, AttentionCache) {
        self.forward_slots(params, q_feat, kv_feat, counts, self.n_slots)
    }

    /// [`TemporalAttention::forward`] with an explicit slot count —
    /// the multi-hop entry point (`kv_feat` has `B · n_slots` rows).
    /// Identical math; the cache remembers the slot count so
    /// [`TemporalAttention::backward`] needs no extra argument.
    pub fn forward_slots(
        &self,
        params: &ParamSet,
        q_feat: &Matrix,
        kv_feat: &Matrix,
        counts: &[usize],
        n_slots: usize,
    ) -> (Matrix, AttentionCache) {
        let b = q_feat.rows();
        assert_eq!(counts.len(), b, "attention: counts length");
        assert_eq!(kv_feat.rows(), b * n_slots, "attention: kv rows");

        let (q, q_cache) = self.w_q.forward(params, q_feat);
        let (k, k_cache) = self.w_k.forward(params, kv_feat);
        let (v, v_cache) = self.w_v.forward(params, kv_feat);

        // Scores with per-root scaling and masking: each score is a
        // laned q·k dot (the masked-slot structure makes this a
        // block-sparse `q · Kᵀ`, attributed to matmul time).
        let mut scores = Matrix::zeros(b, n_slots);
        {
            let _t = scope(Kernel::Matmul);
            for (bi, &count) in counts.iter().enumerate() {
                let cnt = count.min(n_slots);
                let scale = if cnt > 0 {
                    1.0 / (cnt as f32).sqrt()
                } else {
                    0.0
                };
                let q_row = q.row(bi);
                for s in 0..n_slots {
                    let val = if s < cnt {
                        kernels::dot(q_row, k.row(bi * n_slots + s)) * scale
                    } else {
                        -1e9
                    };
                    scores.set(bi, s, val);
                }
            }
        }
        let attn = scores.softmax_rows();

        // h = attn · V (per root block), zeroed for isolated roots.
        let mut h = Matrix::zeros(b, self.d_head);
        {
            let _t = scope(Kernel::Matmul);
            for (bi, &count) in counts.iter().enumerate() {
                let cnt = count.min(n_slots);
                if cnt == 0 {
                    continue;
                }
                let out = h.row_mut(bi);
                for s in 0..cnt {
                    kernels::axpy(out, attn.get(bi, s), v.row(bi * n_slots + s));
                }
            }
        }

        let cache = AttentionCache {
            q_cache,
            k_cache,
            v_cache,
            q,
            k,
            v,
            attn,
            counts: counts.to_vec(),
            n_slots,
        };
        (h, cache)
    }

    /// Inference-only forward.
    pub fn infer(
        &self,
        params: &ParamSet,
        q_feat: &Matrix,
        kv_feat: &Matrix,
        counts: &[usize],
    ) -> Matrix {
        self.forward(params, q_feat, kv_feat, counts).0
    }

    /// Backward pass: accumulates Wq/Wk/Wv gradients and returns
    /// `(dq_feat, dkv_feat)`.
    pub fn backward(
        &self,
        params: &mut ParamSet,
        cache: &AttentionCache,
        dh: &Matrix,
    ) -> (Matrix, Matrix) {
        let b = dh.rows();
        let n = cache.n_slots;
        assert_eq!(dh.cols(), self.d_head, "attention backward: width");

        let mut d_attn = Matrix::zeros(b, n);
        let mut dv = Matrix::zeros(b * n, self.d_head);
        for bi in 0..b {
            let cnt = cache.counts[bi].min(n);
            if cnt == 0 {
                continue;
            }
            let dh_row = dh.row(bi);
            for s in 0..cnt {
                d_attn.set(bi, s, kernels::dot(dh_row, cache.v.row(bi * n + s)));
                let w = cache.attn.get(bi, s);
                kernels::axpy(dv.row_mut(bi * n + s), w, dh_row);
            }
        }

        // Softmax backward then undo the score scaling.
        let d_scores = cache.attn.softmax_rows_backward(&d_attn);
        let mut dq = Matrix::zeros(b, self.d_head);
        let mut dk = Matrix::zeros(b * n, self.d_head);
        for bi in 0..b {
            let cnt = cache.counts[bi].min(n);
            if cnt == 0 {
                continue;
            }
            let scale = 1.0 / (cnt as f32).sqrt();
            for s in 0..cnt {
                let ds = d_scores.get(bi, s) * scale;
                kernels::axpy(dq.row_mut(bi), ds, cache.k.row(bi * n + s));
                kernels::axpy(dk.row_mut(bi * n + s), ds, cache.q.row(bi));
            }
        }

        let dq_feat = self.w_q.backward(params, &cache.q_cache, &dq);
        let dk_feat = self.w_k.backward(params, &cache.k_cache, &dk);
        let mut dkv_feat = self.w_v.backward(params, &cache.v_cache, &dv);
        dkv_feat.add_assign(&dk_feat);
        (dq_feat, dkv_feat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disttgl_tensor::seeded_rng;

    fn setup(
        q_dim: usize,
        kv_dim: usize,
        d_head: usize,
        n: usize,
        b: usize,
    ) -> (ParamSet, TemporalAttention, Matrix, Matrix) {
        let mut rng = seeded_rng(31);
        let mut ps = ParamSet::new();
        let att = TemporalAttention::new(&mut ps, "att", q_dim, kv_dim, d_head, n, &mut rng);
        let qf = Matrix::uniform(b, q_dim, 1.0, &mut rng);
        let kvf = Matrix::uniform(b * n, kv_dim, 1.0, &mut rng);
        (ps, att, qf, kvf)
    }

    #[test]
    fn shapes_and_isolated_roots() {
        let (ps, att, qf, kvf) = setup(4, 6, 5, 3, 3);
        let counts = vec![3, 0, 2];
        let (h, _) = att.forward(&ps, &qf, &kvf, &counts);
        assert_eq!(h.shape(), (3, 5));
        // Isolated root -> zero embedding.
        assert!(h.row(1).iter().all(|&v| v == 0.0));
        assert!(h.row(0).iter().any(|&v| v != 0.0));
    }

    #[test]
    fn attention_weights_ignore_masked_slots() {
        let (ps, att, qf, kvf) = setup(4, 6, 5, 4, 1);
        let (_, cache) = att.forward(&ps, &qf, &kvf, &[2]);
        // Valid slots carry essentially all mass.
        let valid: f32 = cache.attn.row(0)[..2].iter().sum();
        assert!(valid > 0.999, "valid mass {}", valid);
    }

    #[test]
    fn single_neighbor_gets_full_weight() {
        let (ps, att, qf, kvf) = setup(3, 5, 4, 3, 1);
        let (h, cache) = att.forward(&ps, &qf, &kvf, &[1]);
        assert!((cache.attn.get(0, 0) - 1.0).abs() < 1e-5);
        // Output equals V of the single neighbor.
        for (hv, vv) in h.row(0).iter().zip(cache.v.row(0)) {
            assert!((hv - vv).abs() < 1e-5);
        }
    }

    /// Finite-difference check for all weights and both inputs.
    #[test]
    fn gradient_check_full() {
        let (mut ps, att, qf, kvf) = setup(3, 4, 3, 2, 2);
        let counts = vec![2, 1];
        let (h, cache) = att.forward(&ps, &qf, &kvf, &counts);
        let up = Matrix::from_fn(h.rows(), h.cols(), |r, c| 0.3 + 0.1 * (r + c) as f32);
        ps.zero_grads();
        let (dqf, dkvf) = att.backward(&mut ps, &cache, &up);

        let eps = 1e-2;
        let loss =
            |p: &ParamSet, q: &Matrix, kv: &Matrix| att.infer(p, q, kv, &counts).dot_flat(&up);

        for idx in 0..ps.len() {
            let (rows, cols) = ps.get(idx).w.shape();
            for r in 0..rows {
                for c in 0..cols {
                    let orig = ps.get(idx).w.get(r, c);
                    ps.get_mut(idx).w.set(r, c, orig + eps);
                    let fp = loss(&ps, &qf, &kvf);
                    ps.get_mut(idx).w.set(r, c, orig - eps);
                    let fm = loss(&ps, &qf, &kvf);
                    ps.get_mut(idx).w.set(r, c, orig);
                    let num = (fp - fm) / (2.0 * eps);
                    let ana = ps.get(idx).g.get(r, c);
                    assert!(
                        (num - ana).abs() < 3e-2 * (1.0 + ana.abs()),
                        "param {} [{r},{c}]: {num} vs {ana}",
                        ps.name(idx)
                    );
                }
            }
        }
        for r in 0..qf.rows() {
            for c in 0..qf.cols() {
                let mut p = qf.clone();
                p.set(r, c, qf.get(r, c) + eps);
                let mut m = qf.clone();
                m.set(r, c, qf.get(r, c) - eps);
                let num = (loss(&ps, &p, &kvf) - loss(&ps, &m, &kvf)) / (2.0 * eps);
                assert!(
                    (num - dqf.get(r, c)).abs() < 3e-2 * (1.0 + num.abs()),
                    "dqf[{r},{c}]: {num} vs {}",
                    dqf.get(r, c)
                );
            }
        }
        for r in 0..kvf.rows() {
            for c in 0..kvf.cols() {
                let mut p = kvf.clone();
                p.set(r, c, kvf.get(r, c) + eps);
                let mut m = kvf.clone();
                m.set(r, c, kvf.get(r, c) - eps);
                let num = (loss(&ps, &qf, &p) - loss(&ps, &qf, &m)) / (2.0 * eps);
                assert!(
                    (num - dkvf.get(r, c)).abs() < 3e-2 * (1.0 + num.abs()),
                    "dkvf[{r},{c}]: {num} vs {}",
                    dkvf.get(r, c)
                );
            }
        }
    }

    #[test]
    fn masked_slots_get_no_gradient() {
        let (mut ps, att, qf, kvf) = setup(3, 4, 3, 3, 1);
        let (h, cache) = att.forward(&ps, &qf, &kvf, &[1]);
        let up = Matrix::full(h.rows(), h.cols(), 1.0);
        let (_, dkvf) = att.backward(&mut ps, &cache, &up);
        // Slots 1 and 2 are masked; their feature gradients must be ~0.
        assert!(dkvf.row(1).iter().all(|v| v.abs() < 1e-6));
        assert!(dkvf.row(2).iter().all(|v| v.abs() < 1e-6));
        assert!(dkvf.row(0).iter().any(|v| v.abs() > 1e-6));
    }
}
