//! Property-based tests for the tensor substrate's algebraic invariants.

use disttgl_tensor::Matrix;
use proptest::prelude::*;

/// Strategy: a matrix of the given shape with small finite values.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

fn approx_eq(a: &Matrix, b: &Matrix, tol: f32) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    #[test]
    fn add_commutes(a in matrix(3, 5), b in matrix(3, 5)) {
        prop_assert!(approx_eq(&a.add(&b), &b.add(&a), 1e-6));
    }

    #[test]
    fn add_associates(a in matrix(2, 4), b in matrix(2, 4), c in matrix(2, 4)) {
        prop_assert!(approx_eq(&a.add(&b).add(&c), &a.add(&b.add(&c)), 1e-4));
    }

    #[test]
    fn sub_then_add_roundtrips(a in matrix(3, 3), b in matrix(3, 3)) {
        prop_assert!(approx_eq(&a.sub(&b).add(&b), &a, 1e-4));
    }

    #[test]
    fn matmul_distributes_over_add(
        a in matrix(3, 4), b in matrix(4, 2), c in matrix(4, 2)
    ) {
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(approx_eq(&lhs, &rhs, 1e-3));
    }

    #[test]
    fn matmul_associates(a in matrix(2, 3), b in matrix(3, 4), c in matrix(4, 2)) {
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        prop_assert!(approx_eq(&lhs, &rhs, 1e-2));
    }

    #[test]
    fn transpose_fused_kernels_agree(a in matrix(3, 4), b in matrix(5, 4)) {
        // A · Bᵀ computed fused vs. explicitly.
        prop_assert!(approx_eq(
            &a.matmul_transpose_b(&b),
            &a.matmul(&b.transpose()),
            1e-4
        ));
    }

    #[test]
    fn transpose_a_fused_agrees(a in matrix(4, 3), b in matrix(4, 5)) {
        prop_assert!(approx_eq(
            &a.matmul_transpose_a(&b),
            &a.transpose().matmul(&b),
            1e-4
        ));
    }

    #[test]
    fn softmax_rows_are_distributions(a in matrix(4, 6)) {
        let s = a.softmax_rows();
        for r in 0..4 {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
            prop_assert!(s.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn hcat_slice_roundtrip(a in matrix(3, 2), b in matrix(3, 5)) {
        let cat = Matrix::hcat(&[&a, &b]);
        prop_assert_eq!(cat.slice_cols(0, 2), a);
        prop_assert_eq!(cat.slice_cols(2, 7), b);
    }

    #[test]
    fn gather_rows_matches_manual(a in matrix(6, 3), idx in proptest::collection::vec(0usize..6, 1..10)) {
        let g = a.gather_rows(&idx);
        for (r, &i) in idx.iter().enumerate() {
            prop_assert_eq!(g.row(r), a.row(i));
        }
    }

    #[test]
    fn norm_is_scale_homogeneous(a in matrix(3, 3), alpha in -4.0f32..4.0) {
        let scaled = a.scaled(alpha);
        prop_assert!((scaled.norm() - alpha.abs() * a.norm()).abs() < 1e-2 * (1.0 + a.norm()));
    }

    #[test]
    fn sum_rows_matches_total(a in matrix(5, 4)) {
        let by_col = a.sum_rows();
        prop_assert!((by_col.sum() - a.sum()).abs() < 1e-3 * (1.0 + a.sum().abs()));
    }

    /// `expand_rows` is a u32-indexed gather: every occurrence row is a
    /// bit-exact copy of its unique source row.
    #[test]
    fn expand_rows_matches_gather(
        uniq in matrix(5, 3),
        idx in proptest::collection::vec(0u32..5, 1..20)
    ) {
        let mut out = Matrix::default();
        uniq.expand_rows(&idx, &mut out);
        prop_assert_eq!(out.shape(), (idx.len(), 3));
        for (r, &u) in idx.iter().enumerate() {
            prop_assert_eq!(out.row(r), uniq.row(u as usize));
        }
    }

    /// Fold ∘ expand sums each unique row once per occurrence, in
    /// ascending occurrence order — bit-equal to the naive sequential
    /// reference (the summation-order contract of `core::batch`).
    #[test]
    fn expand_then_fold_matches_sequential_reference(
        uniq in matrix(4, 3),
        idx in proptest::collection::vec(0u32..4, 1..24)
    ) {
        let mut occ = Matrix::default();
        uniq.expand_rows(&idx, &mut occ);
        let mut folded = Matrix::default();
        occ.fold_rows_by_index(&idx, 4, &mut folded);
        // Reference: accumulate occurrences in ascending index, f32.
        let mut reference = Matrix::zeros(4, 3);
        for (r, &u) in idx.iter().enumerate() {
            for (o, &v) in reference.row_mut(u as usize).iter_mut().zip(occ.row(r)) {
                *o += v;
            }
        }
        prop_assert_eq!(folded, reference);
    }

    /// Folding is deterministic: repeated invocations over the same
    /// inputs produce bit-identical sums (no order dependence on the
    /// output buffer's prior shape either).
    #[test]
    fn fold_rows_is_deterministic(
        occ in matrix(8, 2),
        idx in proptest::collection::vec(0u32..3, 8..=8)
    ) {
        let mut a = Matrix::default();
        occ.fold_rows_by_index(&idx, 3, &mut a);
        let mut b = Matrix::full(7, 7, 9.0); // stale buffer on purpose
        occ.fold_rows_by_index(&idx, 3, &mut b);
        prop_assert_eq!(a, b);
    }

    /// Fold of a permutation index is a pure row shuffle: expanding
    /// back recovers the original occurrences exactly.
    #[test]
    fn fold_expand_roundtrip_on_permutation(occ in matrix(6, 4), seed in 0u64..1000) {
        let mut perm: Vec<u32> = (0..6).collect();
        // Deterministic Fisher–Yates from the seed.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for i in (1..6usize).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let mut folded = Matrix::default();
        occ.fold_rows_by_index(&perm, 6, &mut folded);
        let mut back = Matrix::default();
        folded.expand_rows(&perm, &mut back);
        prop_assert_eq!(back, occ);
    }

    /// `scatter_add_rows` accumulates in ascending source-row order —
    /// deterministic and bit-equal to the naive reference, duplicates
    /// included.
    #[test]
    fn scatter_add_rows_is_deterministic(
        src in matrix(7, 3),
        idx in proptest::collection::vec(0usize..4, 7..=7)
    ) {
        let mut a = Matrix::zeros(4, 3);
        a.scatter_add_rows(&idx, &src);
        let mut b = Matrix::zeros(4, 3);
        b.scatter_add_rows(&idx, &src);
        prop_assert_eq!(&a, &b);
        let mut reference = Matrix::zeros(4, 3);
        for (r, &dst) in idx.iter().enumerate() {
            for (o, &v) in reference.row_mut(dst).iter_mut().zip(src.row(r)) {
                *o += v;
            }
        }
        prop_assert_eq!(a, reference);
    }
}
