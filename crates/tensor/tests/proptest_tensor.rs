//! Property-based tests for the tensor substrate's algebraic invariants.

use disttgl_tensor::Matrix;
use proptest::prelude::*;

/// Strategy: a matrix of the given shape with small finite values.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

fn approx_eq(a: &Matrix, b: &Matrix, tol: f32) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    #[test]
    fn add_commutes(a in matrix(3, 5), b in matrix(3, 5)) {
        prop_assert!(approx_eq(&a.add(&b), &b.add(&a), 1e-6));
    }

    #[test]
    fn add_associates(a in matrix(2, 4), b in matrix(2, 4), c in matrix(2, 4)) {
        prop_assert!(approx_eq(&a.add(&b).add(&c), &a.add(&b.add(&c)), 1e-4));
    }

    #[test]
    fn sub_then_add_roundtrips(a in matrix(3, 3), b in matrix(3, 3)) {
        prop_assert!(approx_eq(&a.sub(&b).add(&b), &a, 1e-4));
    }

    #[test]
    fn matmul_distributes_over_add(
        a in matrix(3, 4), b in matrix(4, 2), c in matrix(4, 2)
    ) {
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(approx_eq(&lhs, &rhs, 1e-3));
    }

    #[test]
    fn matmul_associates(a in matrix(2, 3), b in matrix(3, 4), c in matrix(4, 2)) {
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        prop_assert!(approx_eq(&lhs, &rhs, 1e-2));
    }

    #[test]
    fn transpose_fused_kernels_agree(a in matrix(3, 4), b in matrix(5, 4)) {
        // A · Bᵀ computed fused vs. explicitly.
        prop_assert!(approx_eq(
            &a.matmul_transpose_b(&b),
            &a.matmul(&b.transpose()),
            1e-4
        ));
    }

    #[test]
    fn transpose_a_fused_agrees(a in matrix(4, 3), b in matrix(4, 5)) {
        prop_assert!(approx_eq(
            &a.matmul_transpose_a(&b),
            &a.transpose().matmul(&b),
            1e-4
        ));
    }

    #[test]
    fn softmax_rows_are_distributions(a in matrix(4, 6)) {
        let s = a.softmax_rows();
        for r in 0..4 {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
            prop_assert!(s.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn hcat_slice_roundtrip(a in matrix(3, 2), b in matrix(3, 5)) {
        let cat = Matrix::hcat(&[&a, &b]);
        prop_assert_eq!(cat.slice_cols(0, 2), a);
        prop_assert_eq!(cat.slice_cols(2, 7), b);
    }

    #[test]
    fn gather_rows_matches_manual(a in matrix(6, 3), idx in proptest::collection::vec(0usize..6, 1..10)) {
        let g = a.gather_rows(&idx);
        for (r, &i) in idx.iter().enumerate() {
            prop_assert_eq!(g.row(r), a.row(i));
        }
    }

    #[test]
    fn norm_is_scale_homogeneous(a in matrix(3, 3), alpha in -4.0f32..4.0) {
        let scaled = a.scaled(alpha);
        prop_assert!((scaled.norm() - alpha.abs() * a.norm()).abs() < 1e-2 * (1.0 + a.norm()));
    }

    #[test]
    fn sum_rows_matches_total(a in matrix(5, 4)) {
        let by_col = a.sum_rows();
        prop_assert!((by_col.sum() - a.sum()).abs() < 1e-3 * (1.0 + a.sum().abs()));
    }
}
