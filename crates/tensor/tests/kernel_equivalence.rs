//! Property-based bit-identity suite for the hardware-width kernels.
//!
//! The `simd` dispatchers promise bit-identical results to their laned
//! scalar references for *any* input — including remainder lanes
//! (lengths not divisible by 8). These tests compare the dispatched
//! path (AVX2 when compiled + detected, scalar otherwise) against the
//! always-scalar reference directly, so they are meaningful in every
//! build configuration: with `--no-default-features` both sides take
//! the same path and the suite degenerates to a tautology, with SIMD
//! on it is the real cross-path check.
//!
//! The references for the elementwise kernels are written out as plain
//! loops here (not calls back into the crate) so a reordering bug in
//! the shared scalar body cannot hide itself.

use disttgl_tensor::bf16::{bf16_decode, bf16_encode};
use disttgl_tensor::{kernels, Matrix};
use proptest::prelude::*;

/// Strategy: a vector whose length lands on interesting lane
/// boundaries — empty, sub-lane, exact multiples, and remainders.
fn lanes_vec() -> impl Strategy<Value = Vec<f32>> {
    (0usize..70).prop_flat_map(|len| proptest::collection::vec(-100.0f32..100.0, len))
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dispatched dot ≡ laned scalar dot, bit for bit, any length.
    #[test]
    fn dot_matches_scalar_reference(a in lanes_vec()) {
        let b: Vec<f32> = a.iter().map(|&x| x * 0.731 - 2.0).collect();
        prop_assert_eq!(
            kernels::dot(&a, &b).to_bits(),
            kernels::dot_scalar(&a, &b).to_bits()
        );
    }

    /// Each register-blocked dot4 column ≡ the lone dot of that pair.
    #[test]
    fn dot4_columns_match_scalar_dot(a in lanes_vec()) {
        let rows: Vec<Vec<f32>> = (0..4)
            .map(|s| a.iter().map(|&x| x * (0.3 + s as f32) - 1.0).collect())
            .collect();
        let quad = kernels::dot4(&a, &rows[0], &rows[1], &rows[2], &rows[3]);
        for (c, row) in rows.iter().enumerate() {
            prop_assert_eq!(
                quad[c].to_bits(),
                kernels::dot_scalar(&a, row).to_bits(),
                "column {}", c
            );
        }
    }

    /// Laned sum and row max match their scalar references.
    #[test]
    fn reductions_match_scalar_reference(a in lanes_vec()) {
        prop_assert_eq!(
            kernels::laned_sum(&a).to_bits(),
            kernels::laned_sum_scalar(&a).to_bits()
        );
        prop_assert_eq!(
            kernels::row_max(&a).to_bits(),
            kernels::row_max_scalar(&a).to_bits()
        );
    }

    /// Elementwise kernels ≡ plain per-element loops (no cross-element
    /// data flow ⇒ bit-identical at any vector width).
    #[test]
    fn elementwise_match_plain_loops(x in lanes_vec(), alpha in -4.0f32..4.0) {
        let y: Vec<f32> = x.iter().map(|&v| v * 0.517 + 1.0).collect();

        let mut out = y.clone();
        kernels::axpy(&mut out, alpha, &x);
        let mut reference = y.clone();
        for (o, &v) in reference.iter_mut().zip(&x) {
            *o += alpha * v;
        }
        prop_assert_eq!(bits(&out), bits(&reference), "axpy");

        let mut out = y.clone();
        kernels::add(&mut out, &x);
        let mut reference = y.clone();
        for (o, &v) in reference.iter_mut().zip(&x) {
            *o += v;
        }
        prop_assert_eq!(bits(&out), bits(&reference), "add");

        let mut out = y.clone();
        kernels::scale(&mut out, alpha);
        let mut reference = y.clone();
        for o in reference.iter_mut() {
            *o *= alpha;
        }
        prop_assert_eq!(bits(&out), bits(&reference), "scale");

        let mut out = y.clone();
        kernels::gru_candidate(&mut out, &x, &y);
        let mut reference = y.clone();
        for ((n, &r), &a) in reference.iter_mut().zip(&x).zip(&y) {
            *n += r * a;
        }
        prop_assert_eq!(bits(&out), bits(&reference), "gru_candidate");

        let z: Vec<f32> = x.iter().map(|&v| 1.0 / (1.0 + (-v).exp())).collect();
        let mut out = vec![0.0f32; x.len()];
        kernels::gru_combine(&mut out, &y, &z, &x);
        let mut reference = vec![0.0f32; x.len()];
        for (((o, &n), &zv), &h) in reference.iter_mut().zip(&y).zip(&z).zip(&x) {
            *o = (n - zv * n) + zv * h;
        }
        prop_assert_eq!(bits(&out), bits(&reference), "gru_combine");
    }

    /// The blocked/tiled matmul is bit-equal to the naive ascending-k
    /// triple loop for arbitrary (m, k, n) — the tiling only reorders
    /// *which rows* are computed when, never the per-element
    /// accumulation order.
    #[test]
    fn blocked_matmul_matches_ascending_k(
        m in 1usize..6, k in 1usize..80, n in 1usize..70, seed in 0u32..1000
    ) {
        let gen = |r: usize, c: usize, salt: u32| {
            let v: Vec<f32> = (0..r * c)
                .map(|i| {
                    let h = (i as u32)
                        .wrapping_mul(2654435761)
                        .wrapping_add(seed ^ salt);
                    ((h >> 8) as f32 / 8388608.0) - 1.0
                })
                .collect();
            Matrix::from_vec(r, c, v)
        };
        let a = gen(m, k, 0xa);
        let b = gen(k, n, 0xb);
        let fast = a.matmul(&b);
        let mut reference = Matrix::zeros(m, n);
        for i in 0..m {
            for kk in 0..k {
                let av = a.get(i, kk);
                if av != 0.0 {
                    for j in 0..n {
                        let cur = reference.get(i, j);
                        reference.set(i, j, cur + av * b.get(kk, j));
                    }
                }
            }
        }
        for i in 0..m {
            prop_assert_eq!(bits(fast.row(i)), bits(reference.row(i)), "row {}", i);
        }
    }

    /// `A · Bᵀ` (register-blocked dot4 path) ≡ scalar dot per element.
    #[test]
    fn matmul_transpose_b_matches_scalar_dots(
        m in 1usize..6, k in 1usize..80, n in 1usize..10
    ) {
        let gen = |r: usize, c: usize, salt: f32| {
            let v: Vec<f32> = (0..r * c).map(|i| ((i as f32) * salt).sin()).collect();
            Matrix::from_vec(r, c, v)
        };
        let a = gen(m, k, 0.37);
        let b = gen(n, k, 0.71);
        let fast = a.matmul_transpose_b(&b);
        for i in 0..m {
            for j in 0..n {
                prop_assert_eq!(
                    fast.get(i, j).to_bits(),
                    kernels::dot_scalar(a.row(i), b.row(j)).to_bits(),
                    "({}, {})", i, j
                );
            }
        }
    }

    /// bf16 round-trip keeps every normal value within 2⁻⁸ relative
    /// error (half a bf16 ULP with round-to-nearest-even).
    #[test]
    fn bf16_round_trip_error_bounded(v in -1.0e30f32..1.0e30) {
        let rt = bf16_decode(bf16_encode(v));
        if v != 0.0 && v.is_normal() {
            let rel = ((rt - v) / v).abs();
            prop_assert!(rel <= 2.0f32.powi(-8), "{} -> {} rel {}", v, rt, rel);
        }
    }

    /// Re-quantizing a quantized value is the identity (the property
    /// that makes f32 checkpoints of bf16 stores lossless).
    #[test]
    fn bf16_double_round_trip_stable(b in 0u16..=u16::MAX) {
        let v = bf16_decode(b);
        if !v.is_nan() {
            prop_assert_eq!(bf16_encode(v), b);
        }
    }
}
