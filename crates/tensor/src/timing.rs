//! Per-kernel timing attribution (thread-local, zero contention).
//!
//! Every trainer "GPU" in this workspace is a thread, so kernel time
//! is accounted in thread-local counters: a trainer thread reads back
//! exactly the kernel time *it* spent, with no atomics on the hot
//! path. Callers snapshot the counters before and after a region
//! (`snapshot()` is cumulative per thread) and record the delta —
//! the same pattern the embed stack uses for its per-layer timers.
//!
//! Scopes may nest across *kinds*: the GRU scope wraps the whole cell
//! including its gate matmuls, so `gru` time includes the matmul time
//! spent inside it and the kinds do not sum to wall-clock. Same-kind
//! nesting is guarded — only the outermost scope of a kind counts.

use std::cell::Cell;
use std::time::Instant;

/// The instrumented kernel families.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kernel {
    /// Dense matmul variants + attention score/value contractions.
    Matmul,
    /// The fused GRU memory-update cell (includes its gate matmuls).
    Gru,
    /// Row-wise softmax forward.
    Softmax,
    /// Row gather / gathered-accumulate batch assembly.
    Gather,
}

const N_KERNELS: usize = 4;

thread_local! {
    static NANOS: [Cell<u64>; N_KERNELS] =
        const { [const { Cell::new(0) }; N_KERNELS] };
    static DEPTH: [Cell<u32>; N_KERNELS] =
        const { [const { Cell::new(0) }; N_KERNELS] };
}

/// Cumulative per-thread kernel seconds. Subtract two snapshots to
/// attribute a region; `Sub` is implemented for exactly that.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct KernelTimings {
    pub matmul_secs: f64,
    pub gru_secs: f64,
    pub softmax_secs: f64,
    pub gather_secs: f64,
}

impl std::ops::Add for KernelTimings {
    type Output = KernelTimings;
    fn add(self, rhs: KernelTimings) -> KernelTimings {
        KernelTimings {
            matmul_secs: self.matmul_secs + rhs.matmul_secs,
            gru_secs: self.gru_secs + rhs.gru_secs,
            softmax_secs: self.softmax_secs + rhs.softmax_secs,
            gather_secs: self.gather_secs + rhs.gather_secs,
        }
    }
}

impl std::ops::Sub for KernelTimings {
    type Output = KernelTimings;
    fn sub(self, rhs: KernelTimings) -> KernelTimings {
        KernelTimings {
            matmul_secs: self.matmul_secs - rhs.matmul_secs,
            gru_secs: self.gru_secs - rhs.gru_secs,
            softmax_secs: self.softmax_secs - rhs.softmax_secs,
            gather_secs: self.gather_secs - rhs.gather_secs,
        }
    }
}

/// Reads this thread's cumulative kernel timers.
pub fn snapshot() -> KernelTimings {
    NANOS.with(|n| KernelTimings {
        matmul_secs: n[Kernel::Matmul as usize].get() as f64 * 1e-9,
        gru_secs: n[Kernel::Gru as usize].get() as f64 * 1e-9,
        softmax_secs: n[Kernel::Softmax as usize].get() as f64 * 1e-9,
        gather_secs: n[Kernel::Gather as usize].get() as f64 * 1e-9,
    })
}

/// RAII guard: charges the enclosed span to `kernel` on this thread.
/// Returned by [`scope`]; keep it alive for the duration of the
/// kernel body.
pub struct Scope {
    kernel: Kernel,
    start: Option<Instant>,
}

/// Opens a timing scope for `kernel`. Nested scopes of the *same*
/// kind are no-ops (only the outermost counts), so helpers built on
/// instrumented primitives don't double-charge.
#[inline]
pub fn scope(kernel: Kernel) -> Scope {
    let outermost = DEPTH.with(|d| {
        let cell = &d[kernel as usize];
        let depth = cell.get();
        cell.set(depth + 1);
        depth == 0
    });
    Scope {
        kernel,
        start: outermost.then(Instant::now),
    }
}

impl Drop for Scope {
    fn drop(&mut self) {
        DEPTH.with(|d| {
            let cell = &d[self.kernel as usize];
            cell.set(cell.get() - 1);
        });
        if let Some(start) = self.start {
            let elapsed = start.elapsed().as_nanos() as u64;
            NANOS.with(|n| {
                let cell = &n[self.kernel as usize];
                cell.set(cell.get() + elapsed);
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_accumulate_per_kind() {
        let before = snapshot();
        {
            let _s = scope(Kernel::Softmax);
            std::hint::black_box((0..10_000).sum::<u64>());
        }
        let after = snapshot();
        let d = after - before;
        assert!(d.softmax_secs > 0.0);
        assert_eq!(d.matmul_secs, 0.0);
        assert_eq!(d.gru_secs, 0.0);
        assert_eq!(d.gather_secs, 0.0);
    }

    #[test]
    fn same_kind_nesting_counts_once() {
        let before = snapshot();
        {
            let _outer = scope(Kernel::Gather);
            let inner_elapsed = {
                let _inner = scope(Kernel::Gather);
                let t = Instant::now();
                std::hint::black_box((0..100_000).sum::<u64>());
                t.elapsed().as_secs_f64()
            };
            // Inner scope must not have charged anything yet (it is
            // swallowed by the outer one).
            let mid = snapshot() - before;
            assert_eq!(mid.gather_secs, 0.0);
            assert!(inner_elapsed >= 0.0);
        }
        let d = snapshot() - before;
        assert!(d.gather_secs > 0.0);
    }

    #[test]
    fn cross_kind_nesting_charges_both() {
        let before = snapshot();
        {
            let _g = scope(Kernel::Gru);
            let _m = scope(Kernel::Matmul);
            std::hint::black_box((0..10_000).sum::<u64>());
        }
        let d = snapshot() - before;
        assert!(d.gru_secs > 0.0);
        assert!(d.matmul_secs > 0.0);
    }
}
