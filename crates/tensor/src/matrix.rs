//! Core dense row-major matrix type.

use serde::{Deserialize, Serialize};

/// A dense, row-major `f32` matrix.
///
/// This is the only tensor type in the workspace: vectors are `1 × n`
/// or `n × 1` matrices, and batched node states are `batch × dim`
/// matrices. Storage is one contiguous allocation, so row slices are
/// plain `&[f32]` and kernels can use `chunks_exact` / rayon
/// `par_chunks_mut` without indirection.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix where entry `(r, c)` is `f(r, c)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair, convenient for shape assertions.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows, "row {} out of {}", r, self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows, "row {} out of {}", r, self.rows);
        let c = self.cols;
        &mut self.data[r * c..(r + 1) * c]
    }

    /// Iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Overwrites every element with `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// Resets to all zeros (buffer-reuse idiom for gradient accumulators).
    pub fn zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Reshapes the buffer in place to `rows × cols` and zeroes every
    /// element, keeping the allocation when capacity suffices (the
    /// scratch-arena idiom: hot loops `resize` a persistent buffer
    /// instead of re-running `Matrix::zeros`).
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// [`Matrix::resize`] without the zero-fill: element values are
    /// **unspecified** (stale or zero) and the caller must overwrite
    /// every one. For kernels that write the full output — matmuls,
    /// gathers — this skips a redundant memset on the hot path.
    pub fn resize_for_overwrite(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Overwrites `self` with `src`'s shape and contents, reusing the
    /// existing allocation when possible (a non-allocating `clone_from`
    /// for scratch buffers).
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Overwrites `self` with the contiguous row range
    /// `rows.start..rows.end` of `src`, reusing the allocation — the
    /// view-materialization primitive for kernels that consume a
    /// sub-block of a larger gathered matrix without an intermediate
    /// per-part copy.
    ///
    /// # Panics
    /// Panics if the range exceeds `src`'s rows.
    pub fn copy_rows_from(&mut self, src: &Matrix, rows: std::ops::Range<usize>) {
        assert!(
            rows.start <= rows.end && rows.end <= src.rows,
            "copy_rows_from: range {}..{} out of {}",
            rows.start,
            rows.end,
            src.rows
        );
        let c = src.cols;
        self.rows = rows.end - rows.start;
        self.cols = c;
        self.data.clear();
        self.data
            .extend_from_slice(&src.data[rows.start * c..rows.end * c]);
    }

    /// Reinterprets the matrix with a new shape without copying.
    ///
    /// # Panics
    /// Panics if `rows * cols` differs from the current element count.
    pub fn reshape(self, rows: usize, cols: usize) -> Self {
        assert_eq!(self.data.len(), rows * cols, "reshape: size mismatch");
        Self {
            rows,
            cols,
            data: self.data,
        }
    }

    /// True if any element is NaN or infinite — used by training-loop
    /// invariant checks and failure-injection tests.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_fn_layout_is_row_major() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m.get(1, 2), 12.0);
    }

    #[test]
    fn row_accessors() {
        let mut m = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        assert_eq!(m.row(1), &[2.0, 3.0]);
        m.row_mut(1)[0] = 9.0;
        assert_eq!(m.get(1, 0), 9.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let r = m.reshape(3, 2);
        assert_eq!(r.shape(), (3, 2));
        assert_eq!(r.get(2, 1), 6.0);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn reshape_size_mismatch_panics() {
        Matrix::zeros(2, 3).reshape(4, 2);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_wrong_len_panics() {
        Matrix::from_vec(2, 2, vec![0.0; 5]);
    }

    #[test]
    fn non_finite_detection() {
        let mut m = Matrix::zeros(2, 2);
        assert!(!m.has_non_finite());
        m.set(1, 1, f32::NAN);
        assert!(m.has_non_finite());
    }

    #[test]
    fn resize_zeroes_and_reshapes_in_place() {
        let mut m = Matrix::full(2, 3, 7.0);
        let cap = m.as_slice().len();
        m.resize(3, 2);
        assert_eq!(m.shape(), (3, 2));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(m.len(), cap);
        m.resize(1, 1);
        assert_eq!(m.shape(), (1, 1));
        m.resize(4, 4);
        assert_eq!(m.shape(), (4, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn resize_for_overwrite_sets_shape_without_clearing() {
        let mut m = Matrix::full(2, 3, 7.0);
        m.resize_for_overwrite(3, 2);
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m.len(), 6);
        // Contents are unspecified; only shape and length are promised.
        m.resize_for_overwrite(4, 4);
        assert_eq!(m.shape(), (4, 4));
        assert_eq!(m.len(), 16);
    }

    #[test]
    fn copy_from_matches_clone() {
        let src = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        let mut dst = Matrix::full(1, 9, 5.0);
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn zero_resets_in_place() {
        let mut m = Matrix::full(2, 2, 3.5);
        m.zero();
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }
}
