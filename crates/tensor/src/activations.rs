//! Activation functions and their derivatives, plus row-wise softmax.
//!
//! Derivatives are expressed in terms of the *activation output* (the
//! usual trick: σ' = σ(1−σ), tanh' = 1−tanh²) so backward passes can
//! reuse the forward buffers.

use crate::timing::{scope, Kernel};
use crate::{kernels, Matrix};

/// Numerically-safe logistic sigmoid.
#[inline]
pub fn sigmoid_scalar(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

impl Matrix {
    /// Elementwise sigmoid, allocating.
    pub fn sigmoid(&self) -> Matrix {
        self.map(sigmoid_scalar)
    }

    /// Elementwise tanh, allocating.
    pub fn tanh(&self) -> Matrix {
        self.map(f32::tanh)
    }

    /// Elementwise ReLU, allocating.
    pub fn relu(&self) -> Matrix {
        self.map(|v| v.max(0.0))
    }

    /// Derivative of sigmoid given its *output* `s`: `s ⊙ (1 − s)`.
    pub fn sigmoid_deriv_from_output(&self) -> Matrix {
        self.map(|s| s * (1.0 - s))
    }

    /// Derivative of tanh given its *output* `t`: `1 − t²`.
    pub fn tanh_deriv_from_output(&self) -> Matrix {
        self.map(|t| 1.0 - t * t)
    }

    /// Derivative mask of ReLU given its *input* `x`: `1[x > 0]`.
    pub fn relu_deriv_from_input(&self) -> Matrix {
        self.map(|x| if x > 0.0 { 1.0 } else { 0.0 })
    }

    /// Row-wise softmax with the max-subtraction trick.
    ///
    /// Each row of the result sums to 1 (rows of all `-inf` are not
    /// supported; masked attention uses a large negative finite value).
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        out.softmax_rows_inplace();
        out
    }

    /// In-place row-wise softmax.
    ///
    /// Per row: a laned max reduction ([`kernels::row_max`]; the
    /// `±0.0` lane ambiguity is output-safe since `x − (+0.0)` and
    /// `x − (−0.0)` are bit-equal), a scalar exp pass accumulating
    /// the normalizer in the fixed 8-lane structure, then a
    /// vectorized scale. The exp stays scalar in every build — there
    /// is no bit-exact vector exp — so SIMD-on and SIMD-off outputs
    /// are identical.
    pub fn softmax_rows_inplace(&mut self) {
        let c = self.cols();
        if c == 0 {
            return;
        }
        let _t = scope(Kernel::Softmax);
        for row in self.as_mut_slice().chunks_exact_mut(c) {
            let max = kernels::row_max(row);
            let mut acc = [0.0f32; 8];
            let main = c - c % 8;
            for chunk in row[..main].chunks_exact_mut(8) {
                for (l, v) in chunk.iter_mut().enumerate() {
                    *v = (*v - max).exp();
                    acc[l] += *v;
                }
            }
            let mut tail = 0.0;
            for v in row[main..].iter_mut() {
                *v = (*v - max).exp();
                tail += *v;
            }
            let lanes =
                ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]));
            let inv = 1.0 / (lanes + tail);
            kernels::scale(row, inv);
        }
    }

    /// Backward of row-wise softmax: given softmax output `y` (= self)
    /// and upstream gradient `dy`, returns
    /// `dx = y ⊙ (dy − rowsum(dy ⊙ y))`.
    pub fn softmax_rows_backward(&self, upstream: &Matrix) -> Matrix {
        assert_eq!(self.shape(), upstream.shape(), "softmax backward shape");
        let c = self.cols();
        let mut out = Matrix::zeros(self.rows(), c);
        for r in 0..self.rows() {
            let y = self.row(r);
            let dy = upstream.row(r);
            let dot: f32 = y.iter().zip(dy).map(|(a, b)| a * b).sum();
            for (o, (yv, dyv)) in out.row_mut(r).iter_mut().zip(y.iter().zip(dy)) {
                *o = yv * (dyv - dot);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_symmetry_and_extremes() {
        assert!((sigmoid_scalar(0.0) - 0.5).abs() < 1e-7);
        assert!((sigmoid_scalar(10.0) + sigmoid_scalar(-10.0) - 1.0).abs() < 1e-6);
        // Large magnitudes must not produce NaN.
        assert!(sigmoid_scalar(100.0).is_finite());
        assert!(sigmoid_scalar(-100.0).is_finite());
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., -1., 0., 1.]);
        let s = m.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Larger logits get larger probability.
        assert!(s.get(0, 2) > s.get(0, 1));
        assert!(s.get(0, 1) > s.get(0, 0));
    }

    #[test]
    fn softmax_shift_invariance() {
        let a = Matrix::from_vec(1, 3, vec![1., 2., 3.]);
        let b = Matrix::from_vec(1, 3, vec![1001., 1002., 1003.]);
        let sa = a.softmax_rows();
        let sb = b.softmax_rows();
        for (x, y) in sa.as_slice().iter().zip(sb.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_backward_finite_difference() {
        // Check the analytic Jacobian-vector product against finite
        // differences at a random-ish point.
        let x = Matrix::from_vec(1, 4, vec![0.3, -0.7, 1.1, 0.0]);
        let dy = Matrix::from_vec(1, 4, vec![0.5, -0.2, 0.1, 0.9]);
        let y = x.softmax_rows();
        let dx = y.softmax_rows_backward(&dy);
        let eps = 1e-3;
        for i in 0..4 {
            let mut xp = x.clone();
            xp.set(0, i, x.get(0, i) + eps);
            let mut xm = x.clone();
            xm.set(0, i, x.get(0, i) - eps);
            let fp = xp.softmax_rows().dot_flat(&dy);
            let fm = xm.softmax_rows().dot_flat(&dy);
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - dx.get(0, i)).abs() < 1e-3,
                "component {}: numeric {} analytic {}",
                i,
                num,
                dx.get(0, i)
            );
        }
    }

    #[test]
    fn derivative_helpers() {
        let x = Matrix::from_vec(1, 3, vec![-1.0, 0.0, 2.0]);
        let s = x.sigmoid();
        let ds = s.sigmoid_deriv_from_output();
        for i in 0..3 {
            let sv = s.get(0, i);
            assert!((ds.get(0, i) - sv * (1.0 - sv)).abs() < 1e-7);
        }
        let t = x.tanh();
        let dt = t.tanh_deriv_from_output();
        for i in 0..3 {
            let tv = t.get(0, i);
            assert!((dt.get(0, i) - (1.0 - tv * tv)).abs() < 1e-7);
        }
        assert_eq!(x.relu().as_slice(), &[0.0, 0.0, 2.0]);
        assert_eq!(x.relu_deriv_from_input().as_slice(), &[0.0, 0.0, 1.0]);
    }
}
