//! Row-level structural ops: gather, scatter, concatenation, slicing.
//!
//! These are the mini-batch assembly primitives: a training iteration
//! gathers node-memory rows for the batch's nodes, concatenates them
//! with time encodings and edge features column-wise, and scatters
//! updated memory rows back.

use crate::timing::{scope, Kernel};
use crate::{kernels, Matrix};

impl Matrix {
    /// Gathers the given rows into a new `indices.len() × cols` matrix.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let c = self.cols();
        let mut out = Matrix::zeros(indices.len(), c);
        for (dst, &src) in indices.iter().enumerate() {
            assert!(
                src < self.rows(),
                "gather_rows: index {} out of {}",
                src,
                self.rows()
            );
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// [`Matrix::gather_rows`] into a caller-owned buffer (resized in
    /// place) — the batch-assembly primitive for scratch arenas: hot
    /// loops keep one gather target alive instead of allocating a new
    /// matrix per iteration.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    ///
    /// Row copies are `memcpy`-bound (no arithmetic to vectorize);
    /// the kernel tier's contribution here is the timing attribution
    /// and — under `quantized_memory` — the halved source bytes.
    pub fn gather_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        let _t = scope(Kernel::Gather);
        let c = self.cols();
        out.resize_for_overwrite(indices.len(), c);
        for (dst, &src) in indices.iter().enumerate() {
            assert!(
                src < self.rows(),
                "gather_rows_into: index {} out of {}",
                src,
                self.rows()
            );
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
    }

    /// Adds `source.row(indices[i])` into `self.row(offset + i)` for
    /// every `i` — a fused gather + accumulate that never materializes
    /// the gathered block (the static-memory combine of the model's
    /// embed path).
    ///
    /// # Panics
    /// Panics on width mismatch or out-of-bounds rows on either side.
    pub fn add_gathered_rows(&mut self, offset: usize, source: &Matrix, indices: &[u32]) {
        assert_eq!(
            self.cols(),
            source.cols(),
            "add_gathered_rows: width mismatch"
        );
        assert!(
            offset + indices.len() <= self.rows(),
            "add_gathered_rows: {} rows at offset {} exceed {}",
            indices.len(),
            offset,
            self.rows()
        );
        let _t = scope(Kernel::Gather);
        for (i, &src) in indices.iter().enumerate() {
            let src = src as usize;
            assert!(
                src < source.rows(),
                "add_gathered_rows: index {} out of {}",
                src,
                source.rows()
            );
            kernels::add(self.row_mut(offset + i), source.row(src));
        }
    }

    /// Overwrites rows `indices[r]` of `self` with row `r` of `source`.
    ///
    /// Later duplicates win, matching the "most recent mail" COMB
    /// semantics when indices are in chronological order.
    ///
    /// # Panics
    /// Panics on index out of bounds or column mismatch.
    pub fn scatter_rows(&mut self, indices: &[usize], source: &Matrix) {
        assert_eq!(indices.len(), source.rows(), "scatter_rows: count mismatch");
        assert_eq!(self.cols(), source.cols(), "scatter_rows: width mismatch");
        for (src, &dst) in indices.iter().enumerate() {
            assert!(
                dst < self.rows(),
                "scatter_rows: index {} out of {}",
                dst,
                self.rows()
            );
            self.row_mut(dst).copy_from_slice(source.row(src));
        }
    }

    /// Adds row `r` of `source` into row `indices[r]` of `self`
    /// (scatter-add, used to accumulate gradients into shared
    /// embedding tables).
    ///
    /// **Determinism contract:** source rows are accumulated in
    /// ascending source-row order, so duplicate destinations always sum
    /// in the same order and the result is bit-reproducible across
    /// runs. The deduplicated readout path relies on this for its
    /// per-unique-node gradient reduction.
    pub fn scatter_add_rows(&mut self, indices: &[usize], source: &Matrix) {
        assert_eq!(
            indices.len(),
            source.rows(),
            "scatter_add_rows: count mismatch"
        );
        assert_eq!(
            self.cols(),
            source.cols(),
            "scatter_add_rows: width mismatch"
        );
        for (src, &dst) in indices.iter().enumerate() {
            for (d, &s) in self.row_mut(dst).iter_mut().zip(source.row(src)) {
                *d += s;
            }
        }
    }

    /// Expands a per-unique-row block to occurrence order:
    /// `out.row(i) = self.row(index[i])` for every occurrence `i`.
    ///
    /// The inverse direction of [`Matrix::fold_rows_by_index`]: after a
    /// kernel ran once per unique row, `expand_rows` replicates each
    /// unique result to all of its occurrences. `out` is resized in
    /// place (scratch-arena friendly).
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn expand_rows(&self, index: &[u32], out: &mut Matrix) {
        let c = self.cols();
        out.resize_for_overwrite(index.len(), c);
        for (dst, &src) in index.iter().enumerate() {
            let src = src as usize;
            assert!(
                src < self.rows(),
                "expand_rows: index {} out of {}",
                src,
                self.rows()
            );
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
    }

    /// Folds occurrence rows down to unique rows by summation:
    /// `out.row(index[i]) += self.row(i)` over a zeroed
    /// `n_unique × cols` output.
    ///
    /// **Determinism contract:** occurrences are accumulated in
    /// ascending occurrence index (`i = 0, 1, …`), so every unique
    /// row's sum is formed in one fixed order and the result is
    /// bit-reproducible — the summation-order guarantee the
    /// deduplicated GRU backward depends on (see `core::batch` module
    /// docs).
    ///
    /// # Panics
    /// Panics if any index is `>= n_unique`.
    pub fn fold_rows_by_index(&self, index: &[u32], n_unique: usize, out: &mut Matrix) {
        assert_eq!(
            index.len(),
            self.rows(),
            "fold_rows_by_index: occurrence count mismatch"
        );
        out.resize(n_unique, self.cols());
        for (occ, &dst) in index.iter().enumerate() {
            let dst = dst as usize;
            assert!(
                dst < n_unique,
                "fold_rows_by_index: index {dst} out of {n_unique}"
            );
            for (o, &s) in out.row_mut(dst).iter_mut().zip(self.row(occ)) {
                *o += s;
            }
        }
    }

    /// Column-wise concatenation `{self || others…}` (the paper's
    /// `{x || y}` notation): all inputs must have the same row count.
    pub fn hcat(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "hcat: empty input");
        let rows = parts[0].rows();
        for p in parts {
            assert_eq!(p.rows(), rows, "hcat: row count mismatch");
        }
        let total_cols: usize = parts.iter().map(|p| p.cols()).sum();
        let mut out = Matrix::zeros(rows, total_cols);
        for r in 0..rows {
            let mut offset = 0;
            let out_row = out.row_mut(r);
            for p in parts {
                let pc = p.cols();
                out_row[offset..offset + pc].copy_from_slice(p.row(r));
                offset += pc;
            }
        }
        out
    }

    /// Row-wise concatenation (stacking).
    pub fn vcat(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "vcat: empty input");
        let cols = parts[0].cols();
        for p in parts {
            assert_eq!(p.cols(), cols, "vcat: column count mismatch");
        }
        let total_rows: usize = parts.iter().map(|p| p.rows()).sum();
        let mut data = Vec::with_capacity(total_rows * cols);
        for p in parts {
            data.extend_from_slice(p.as_slice());
        }
        Matrix::from_vec(total_rows, cols, data)
    }

    /// Copies a contiguous column range into a new matrix
    /// (inverse of `hcat`; used to split concatenated gradients).
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.cols(),
            "slice_cols out of range"
        );
        let w = end - start;
        let mut out = Matrix::zeros(self.rows(), w);
        for r in 0..self.rows() {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..end]);
        }
        out
    }

    /// Copies a contiguous row range into a new matrix.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.rows(),
            "slice_rows out of range"
        );
        let c = self.cols();
        let data = self.as_slice()[start * c..end * c].to_vec();
        Matrix::from_vec(end - start, c, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn gather_then_scatter_roundtrip() {
        let src = m(4, 2, &[0., 0., 1., 1., 2., 2., 3., 3.]);
        let g = src.gather_rows(&[3, 1]);
        assert_eq!(g.as_slice(), &[3., 3., 1., 1.]);
        let mut dst = Matrix::zeros(4, 2);
        dst.scatter_rows(&[3, 1], &g);
        assert_eq!(dst.row(3), &[3., 3.]);
        assert_eq!(dst.row(1), &[1., 1.]);
        assert_eq!(dst.row(0), &[0., 0.]);
    }

    #[test]
    fn scatter_duplicate_last_wins() {
        let mut dst = Matrix::zeros(2, 1);
        let src = m(3, 1, &[10., 20., 30.]);
        dst.scatter_rows(&[0, 0, 1], &src);
        // Row 0 written twice; chronological order means the later
        // mail (20) survives — the TGN-attn COMB semantics.
        assert_eq!(dst.as_slice(), &[20., 30.]);
    }

    #[test]
    fn scatter_add_accumulates() {
        let mut dst = Matrix::zeros(2, 1);
        let src = m(3, 1, &[1., 2., 4.]);
        dst.scatter_add_rows(&[0, 0, 1], &src);
        assert_eq!(dst.as_slice(), &[3., 4.]);
    }

    #[test]
    fn hcat_and_slice_cols_inverse() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let b = m(2, 1, &[5., 6.]);
        let c = m(2, 3, &[7., 8., 9., 10., 11., 12.]);
        let cat = Matrix::hcat(&[&a, &b, &c]);
        assert_eq!(cat.shape(), (2, 6));
        assert_eq!(cat.row(0), &[1., 2., 5., 7., 8., 9.]);
        assert_eq!(cat.slice_cols(0, 2), a);
        assert_eq!(cat.slice_cols(2, 3), b);
        assert_eq!(cat.slice_cols(3, 6), c);
    }

    #[test]
    fn vcat_and_slice_rows_inverse() {
        let a = m(1, 2, &[1., 2.]);
        let b = m(2, 2, &[3., 4., 5., 6.]);
        let cat = Matrix::vcat(&[&a, &b]);
        assert_eq!(cat.shape(), (3, 2));
        assert_eq!(cat.slice_rows(0, 1), a);
        assert_eq!(cat.slice_rows(1, 3), b);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn gather_oob_panics() {
        Matrix::zeros(2, 2).gather_rows(&[5]);
    }

    #[test]
    fn gather_rows_into_matches_allocating_and_reuses_buffer() {
        let src = m(4, 2, &[0., 0., 1., 1., 2., 2., 3., 3.]);
        let mut out = Matrix::zeros(1, 7); // wrong shape on purpose
        src.gather_rows_into(&[3, 1, 3], &mut out);
        assert_eq!(out, src.gather_rows(&[3, 1, 3]));
        // Shrinking reuse keeps working.
        src.gather_rows_into(&[0], &mut out);
        assert_eq!(out, src.gather_rows(&[0]));
    }

    #[test]
    fn add_gathered_rows_accumulates_at_offset() {
        let table = m(3, 2, &[10., 10., 20., 20., 30., 30.]);
        let mut acc = Matrix::full(4, 2, 1.0);
        acc.add_gathered_rows(1, &table, &[2, 0]);
        assert_eq!(acc.row(0), &[1., 1.]);
        assert_eq!(acc.row(1), &[31., 31.]);
        assert_eq!(acc.row(2), &[11., 11.]);
        assert_eq!(acc.row(3), &[1., 1.]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn add_gathered_rows_width_mismatch_panics() {
        Matrix::zeros(2, 3).add_gathered_rows(0, &Matrix::zeros(2, 2), &[0]);
    }

    #[test]
    fn expand_rows_replicates_unique_rows() {
        let uniq = m(3, 2, &[1., 1., 2., 2., 3., 3.]);
        let mut out = Matrix::zeros(1, 9); // wrong shape on purpose
        uniq.expand_rows(&[2, 0, 2, 1, 0], &mut out);
        assert_eq!(out.shape(), (5, 2));
        assert_eq!(out.row(0), &[3., 3.]);
        assert_eq!(out.row(1), &[1., 1.]);
        assert_eq!(out.row(2), &[3., 3.]);
        assert_eq!(out.row(3), &[2., 2.]);
        assert_eq!(out.row(4), &[1., 1.]);
    }

    #[test]
    fn fold_rows_by_index_sums_in_occurrence_order() {
        let occ = m(4, 1, &[1., 2., 4., 8.]);
        let mut out = Matrix::default();
        occ.fold_rows_by_index(&[0, 1, 0, 1], 2, &mut out);
        assert_eq!(out.as_slice(), &[5., 10.]);
        // Unreferenced unique rows stay zero.
        occ.fold_rows_by_index(&[0, 0, 0, 0], 3, &mut out);
        assert_eq!(out.as_slice(), &[15., 0., 0.]);
    }

    #[test]
    fn fold_then_expand_roundtrips_on_permutation() {
        let occ = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let perm = [2u32, 0, 1];
        let mut folded = Matrix::default();
        occ.fold_rows_by_index(&perm, 3, &mut folded);
        let mut back = Matrix::default();
        folded.expand_rows(&perm, &mut back);
        assert_eq!(back, occ);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn expand_rows_oob_panics() {
        let mut out = Matrix::default();
        Matrix::zeros(2, 2).expand_rows(&[2], &mut out);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn fold_rows_oob_panics() {
        let mut out = Matrix::default();
        Matrix::zeros(2, 2).fold_rows_by_index(&[0, 2], 2, &mut out);
    }
}
