//! Deterministic random initialization.
//!
//! Every experiment in the reproduction harness must be re-runnable
//! bit-for-bit, so all initializers take an explicit seeded RNG
//! (ChaCha8 — fast, portable, identical across platforms).

use crate::Matrix;
use rand::distributions::{Distribution, Uniform};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Creates the workspace-standard deterministic RNG for a given seed.
pub fn seeded_rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

impl Matrix {
    /// Uniform init over `[-bound, bound]`.
    pub fn uniform(rows: usize, cols: usize, bound: f32, rng: &mut impl Rng) -> Matrix {
        let dist = Uniform::new_inclusive(-bound, bound);
        let data = (0..rows * cols).map(|_| dist.sample(rng)).collect();
        Matrix::from_vec(rows, cols, data)
    }

    /// Xavier/Glorot uniform init: `bound = sqrt(6 / (fan_in + fan_out))`.
    ///
    /// This is the PyTorch default for linear layers, which keeps the
    /// reproduction's initial loss scale comparable to the paper's.
    pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        Matrix::uniform(rows, cols, bound, rng)
    }

    /// Kaiming-style uniform init for GRU gates:
    /// `bound = 1 / sqrt(hidden_size)` (the PyTorch `GRUCell` default).
    pub fn gru_uniform(rows: usize, cols: usize, hidden: usize, rng: &mut impl Rng) -> Matrix {
        let bound = 1.0 / (hidden as f32).sqrt();
        Matrix::uniform(rows, cols, bound, rng)
    }

    /// Standard-normal init scaled by `std`.
    pub fn normal(rows: usize, cols: usize, std: f32, rng: &mut impl Rng) -> Matrix {
        // Box-Muller; avoids pulling in rand_distr.
        let mut data = Vec::with_capacity(rows * cols);
        while data.len() < rows * cols {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < rows * cols {
                data.push(r * theta.sin() * std);
            }
        }
        Matrix::from_vec(rows, cols, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut r1 = seeded_rng(42);
        let mut r2 = seeded_rng(42);
        let a = Matrix::xavier_uniform(4, 4, &mut r1);
        let b = Matrix::xavier_uniform(4, 4, &mut r2);
        assert_eq!(a, b);
        let c = Matrix::xavier_uniform(4, 4, &mut r1);
        assert_ne!(a, c, "stream must advance");
    }

    #[test]
    fn xavier_bound_respected() {
        let mut rng = seeded_rng(7);
        let m = Matrix::xavier_uniform(50, 30, &mut rng);
        let bound = (6.0 / 80.0_f32).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= bound + 1e-6));
        // Not degenerate: should have spread.
        assert!(m.as_slice().iter().any(|v| v.abs() > bound * 0.5));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = seeded_rng(3);
        let m = Matrix::normal(100, 100, 2.0, &mut rng);
        let mean = m.mean();
        let var = m
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / (m.len() - 1) as f32;
        assert!(mean.abs() < 0.1, "mean {}", mean);
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }
}
