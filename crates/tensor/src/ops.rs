//! Elementwise arithmetic, scaling, and reduction kernels.
//!
//! All binary ops assert shape equality; the `_into`/`_assign` variants
//! reuse buffers (the training loop calls these once per iteration, so
//! avoiding reallocation matters — see the perf-book guidance on
//! workhorse collections).

use crate::{kernels, Matrix};

impl Matrix {
    /// `self + other`, allocating the result.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a + b)
    }

    /// `self - other`, allocating the result.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a - b)
    }

    /// Hadamard (elementwise) product, allocating the result.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a * b)
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "elementwise shape mismatch");
        kernels::add(self.as_mut_slice(), other.as_slice());
    }

    /// In-place `self -= other`.
    pub fn sub_assign(&mut self, other: &Matrix) {
        self.zip_assign(other, |a, b| *a -= b);
    }

    /// In-place `self *= other` (elementwise).
    pub fn mul_assign(&mut self, other: &Matrix) {
        self.zip_assign(other, |a, b| *a *= b);
    }

    /// In-place axpy: `self += alpha * other`. The workhorse of the
    /// optimizer and of gradient accumulation across local batches.
    pub fn add_scaled(&mut self, other: &Matrix, alpha: f32) {
        assert_eq!(self.shape(), other.shape(), "elementwise shape mismatch");
        kernels::axpy(self.as_mut_slice(), alpha, other.as_slice());
    }

    /// In-place scalar multiply.
    pub fn scale(&mut self, alpha: f32) {
        kernels::scale(self.as_mut_slice(), alpha);
    }

    /// Allocating scalar multiply.
    pub fn scaled(&self, alpha: f32) -> Matrix {
        let mut out = self.clone();
        out.scale(alpha);
        out
    }

    /// Applies `f` to every element, allocating the result.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let data = self.as_slice().iter().map(|&v| f(v)).collect();
        Matrix::from_vec(self.rows(), self.cols(), data)
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in self.as_mut_slice() {
            *v = f(*v);
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Column-wise sum, producing a `1 × cols` matrix. This is the bias
    /// gradient reduction in every layer's backward pass.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols());
        for row in self.rows_iter() {
            for (o, &v) in out.as_mut_slice().iter_mut().zip(row) {
                *o += v;
            }
        }
        out
    }

    /// Adds a `1 × cols` row vector to every row (bias broadcast).
    ///
    /// # Panics
    /// Panics if `bias` is not `1 × self.cols()`.
    pub fn add_row_broadcast(&mut self, bias: &Matrix) {
        assert_eq!(bias.rows(), 1, "bias must be a row vector");
        assert_eq!(bias.cols(), self.cols(), "bias width mismatch");
        let b = bias.as_slice();
        let c = self.cols();
        for row in self.as_mut_slice().chunks_exact_mut(c) {
            kernels::add(row, b);
        }
    }

    /// Squared Frobenius norm.
    pub fn norm_sq(&self) -> f32 {
        self.as_slice().iter().map(|v| v * v).sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Dot product treating both matrices as flat vectors.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn dot_flat(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape(), "dot_flat shape mismatch");
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Per-row dot products of two equal-shape matrices: returns an
    /// `rows × 1` matrix whose entry `r` is `self.row(r) · other.row(r)`.
    /// Used by the dot-product link decoder.
    pub fn rowwise_dot(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "rowwise_dot shape mismatch");
        let mut out = Matrix::zeros(self.rows(), 1);
        for r in 0..self.rows() {
            out.set(
                r,
                0,
                self.row(r)
                    .iter()
                    .zip(other.row(r))
                    .map(|(a, b)| a * b)
                    .sum(),
            );
        }
        out
    }

    fn zip_map(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "elementwise shape mismatch");
        let data = self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Matrix::from_vec(self.rows(), self.cols(), data)
    }

    fn zip_assign(&mut self, other: &Matrix, f: impl Fn(&mut f32, f32)) {
        assert_eq!(self.shape(), other.shape(), "elementwise shape mismatch");
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            f(a, b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn add_sub_hadamard() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let b = m(2, 2, &[10., 20., 30., 40.]);
        assert_eq!(a.add(&b).as_slice(), &[11., 22., 33., 44.]);
        assert_eq!(b.sub(&a).as_slice(), &[9., 18., 27., 36.]);
        assert_eq!(a.hadamard(&b).as_slice(), &[10., 40., 90., 160.]);
    }

    #[test]
    fn assign_variants_match_allocating() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let b = m(2, 2, &[5., 6., 7., 8.]);
        let mut c = a.clone();
        c.add_assign(&b);
        assert_eq!(c, a.add(&b));
        let mut d = a.clone();
        d.mul_assign(&b);
        assert_eq!(d, a.hadamard(&b));
    }

    #[test]
    fn add_scaled_is_axpy() {
        let mut a = m(1, 3, &[1., 1., 1.]);
        let g = m(1, 3, &[2., 4., 6.]);
        a.add_scaled(&g, -0.5);
        assert_eq!(a.as_slice(), &[0., -1., -2.]);
    }

    #[test]
    fn sum_rows_reduces_columns() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let s = a.sum_rows();
        assert_eq!(s.shape(), (1, 2));
        assert_eq!(s.as_slice(), &[9., 12.]);
    }

    #[test]
    fn row_broadcast_adds_bias() {
        let mut a = Matrix::zeros(2, 3);
        let b = m(1, 3, &[1., 2., 3.]);
        a.add_row_broadcast(&b);
        assert_eq!(a.as_slice(), &[1., 2., 3., 1., 2., 3.]);
    }

    #[test]
    fn norms_and_dot() {
        let a = m(1, 4, &[3., 4., 0., 0.]);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(a.norm(), 5.0);
        let b = m(1, 4, &[1., 1., 1., 1.]);
        assert_eq!(a.dot_flat(&b), 7.0);
    }

    #[test]
    fn rowwise_dot_per_row() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let b = m(2, 2, &[5., 6., 7., 8.]);
        let d = a.rowwise_dot(&b);
        assert_eq!(d.shape(), (2, 1));
        assert_eq!(d.as_slice(), &[17., 53.]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        m(1, 2, &[1., 2.]).add(&m(2, 1, &[1., 2.]));
    }
}
