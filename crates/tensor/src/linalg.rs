//! Matrix multiplication and transposition kernels.
//!
//! Three matmul variants cover everything the hand-written backward
//! passes need without materializing transposes:
//!
//! * `matmul` — `C = A · B` (forward)
//! * `matmul_transpose_b` — `C = A · Bᵀ` (forward attention scores,
//!   backward w.r.t. inputs)
//! * `matmul_transpose_a` — `C = Aᵀ · B` (backward w.r.t. weights)
//!
//! Each switches to a rayon-parallel loop over output rows once the
//! multiply-add count crosses [`crate::PAR_THRESHOLD`]; mini-batch sized
//! calls stay sequential so trainer *threads* (the outer parallelism of
//! the simulated cluster) don't fight over the rayon pool.

use crate::{Matrix, PAR_THRESHOLD};
use rayon::prelude::*;

/// Dot product with eight independent accumulator lanes.
///
/// A plain `zip().map().sum()` reduction is a single serial FP-add
/// chain that LLVM must not reorder, so it runs at add-latency speed.
/// Splitting the sum across eight fixed lanes breaks the dependency
/// chain (and vectorizes) while staying fully deterministic — the
/// lane structure, not the data, decides the summation order. This is
/// the workhorse of every `x·Wᵀ` in the model, which dominates
/// training compute.
#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 8];
    let main = a.len() - a.len() % 8;
    for (ca, cb) in a[..main].chunks_exact(8).zip(b[..main].chunks_exact(8)) {
        for (l, acc_l) in acc.iter_mut().enumerate() {
            *acc_l += ca[l] * cb[l];
        }
    }
    let tail: f32 = a[main..].iter().zip(&b[main..]).map(|(x, y)| x * y).sum();
    let lanes = ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]));
    lanes + tail
}

impl Matrix {
    /// `self · other`.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.rows(),
            "matmul: {}x{} · {}x{}",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let (m, k, n) = (self.rows(), self.cols(), other.cols());
        let mut out = Matrix::zeros(m, n);
        let work = m * k * n;
        let a = self.as_slice();
        let b = other.as_slice();

        let kernel = |row_idx: usize, out_row: &mut [f32]| {
            let a_row = &a[row_idx * k..(row_idx + 1) * k];
            // ikj loop order: streams through b rows, vectorizes the inner axpy.
            for (ai, b_row) in a_row.iter().zip(b.chunks_exact(n)) {
                if *ai != 0.0 {
                    for (o, bv) in out_row.iter_mut().zip(b_row) {
                        *o += ai * bv;
                    }
                }
            }
        };

        if work >= PAR_THRESHOLD {
            out.as_mut_slice()
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(r, out_row)| kernel(r, out_row));
        } else {
            for (r, out_row) in out.as_mut_slice().chunks_exact_mut(n).enumerate() {
                kernel(r, out_row);
            }
        }
        out
    }

    /// `self · otherᵀ` without materializing the transpose.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_transpose_b(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.cols(),
            "matmul_transpose_b: inner dims {} vs {}",
            self.cols(),
            other.cols()
        );
        let (m, k, n) = (self.rows(), self.cols(), other.rows());
        let mut out = Matrix::zeros(m, n);
        let work = m * k * n;
        let a = self.as_slice();
        let b = other.as_slice();

        let kernel = |row_idx: usize, out_row: &mut [f32]| {
            let a_row = &a[row_idx * k..(row_idx + 1) * k];
            for (o, b_row) in out_row.iter_mut().zip(b.chunks_exact(k)) {
                *o = dot(a_row, b_row);
            }
        };

        if work >= PAR_THRESHOLD {
            out.as_mut_slice()
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(r, out_row)| kernel(r, out_row));
        } else {
            for (r, out_row) in out.as_mut_slice().chunks_exact_mut(n).enumerate() {
                kernel(r, out_row);
            }
        }
        out
    }

    /// `self · otherᵀ` with the plain serial-reduction dot product —
    /// the pre-optimization kernel, kept as the correctness reference
    /// for the laned [`Matrix::matmul_transpose_b`] and for
    /// kernel-level A/B benchmarks. Results differ from the laned
    /// kernel only by f32 summation order.
    pub fn matmul_transpose_b_serial(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.cols(),
            "matmul_transpose_b_serial: inner dims {} vs {}",
            self.cols(),
            other.cols()
        );
        let (m, k, n) = (self.rows(), self.cols(), other.rows());
        let mut out = Matrix::zeros(m, n);
        let a = self.as_slice();
        let b = other.as_slice();
        for (row_idx, out_row) in out.as_mut_slice().chunks_exact_mut(n.max(1)).enumerate() {
            let a_row = &a[row_idx * k..(row_idx + 1) * k];
            for (o, b_row) in out_row.iter_mut().zip(b.chunks_exact(k)) {
                *o = a_row.iter().zip(b_row).map(|(x, y)| x * y).sum();
            }
        }
        out
    }

    /// `self · otherᵀ` written into a caller-owned buffer (resized in
    /// place) — the fused-GRU path uses this to keep gate
    /// pre-activations in persistent scratch instead of allocating six
    /// fresh matrices per step. Numerically identical to
    /// [`Matrix::matmul_transpose_b`].
    ///
    /// # Panics
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_transpose_b_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols(),
            other.cols(),
            "matmul_transpose_b_into: inner dims {} vs {}",
            self.cols(),
            other.cols()
        );
        let (m, k, n) = (self.rows(), self.cols(), other.rows());
        out.resize_for_overwrite(m, n);
        let a = self.as_slice();
        let b = other.as_slice();
        for (row_idx, out_row) in out.as_mut_slice().chunks_exact_mut(n.max(1)).enumerate() {
            let a_row = &a[row_idx * k..(row_idx + 1) * k];
            for (o, b_row) in out_row.iter_mut().zip(b.chunks_exact(k)) {
                *o = dot(a_row, b_row);
            }
        }
    }

    /// `selfᵀ · other` without materializing the transpose.
    ///
    /// # Panics
    /// Panics if `self.rows() != other.rows()`.
    pub fn matmul_transpose_a(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows(),
            other.rows(),
            "matmul_transpose_a: inner dims {} vs {}",
            self.rows(),
            other.rows()
        );
        let (k, m, n) = (self.rows(), self.cols(), other.cols());
        // Accumulate outer products sequentially; the output is weight-shaped
        // (small), so contention-free accumulation beats parallelizing here
        // unless the batch is very large.
        let mut out = Matrix::zeros(m, n);
        let a = self.as_slice();
        let b = other.as_slice();
        if k * m * n >= PAR_THRESHOLD && m >= 8 {
            let o = out.as_mut_slice();
            o.par_chunks_mut(n).enumerate().for_each(|(mi, out_row)| {
                for ki in 0..k {
                    let av = a[ki * m + mi];
                    if av != 0.0 {
                        let b_row = &b[ki * n..(ki + 1) * n];
                        for (ov, bv) in out_row.iter_mut().zip(b_row) {
                            *ov += av * bv;
                        }
                    }
                }
            });
        } else {
            for ki in 0..k {
                let a_row = &a[ki * m..(ki + 1) * m];
                let b_row = &b[ki * n..(ki + 1) * n];
                for (mi, &av) in a_row.iter().enumerate() {
                    if av != 0.0 {
                        let out_row = &mut out.as_mut_slice()[mi * n..(mi + 1) * n];
                        for (ov, &bv) in out_row.iter_mut().zip(b_row) {
                            *ov += av * bv;
                        }
                    }
                }
            }
        }
        out
    }

    /// Materialized transpose. Rarely needed — prefer the fused
    /// `matmul_transpose_*` kernels.
    pub fn transpose(&self) -> Matrix {
        let (r, c) = self.shape();
        let mut out = Matrix::zeros(c, r);
        for i in 0..r {
            for j in 0..c {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_2x3_3x2() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let i = Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn transpose_b_matches_explicit() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(4, 3, &[1., 0., 1., 0., 1., 0., 2., 2., 2., 1., 1., 1.]);
        assert_eq!(a.matmul_transpose_b(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn transpose_a_matches_explicit() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 4, &[1., 0., 1., 0., 0., 1., 0., 1., 2., 2., 2., 2.]);
        assert_eq!(a.matmul_transpose_a(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn large_matmul_parallel_path_matches_sequential() {
        // 1024 × 512 · 512 × 600 = 314M mult-adds — crosses
        // PAR_THRESHOLD, so this exercises the rayon path; sparse
        // sampling against a scalar reference keeps the check cheap.
        let (m, k, n) = (1024, 512, 600);
        assert!(m * k * n >= crate::PAR_THRESHOLD);
        let a = Matrix::from_fn(m, k, |r, c| ((r * 31 + c * 7) % 13) as f32 - 6.0);
        let b = Matrix::from_fn(k, n, |r, c| ((r * 17 + c * 5) % 11) as f32 - 5.0);
        let fast = a.matmul(&b);
        for (i, j) in [(0, 0), (7, 599), (511, 300), (1023, 0), (1000, 599)] {
            let mut s = 0.0;
            for kk in 0..k {
                s += a.get(i, kk) * b.get(kk, j);
            }
            assert!(
                (fast.get(i, j) - s).abs() < 1e-2 * (1.0 + s.abs()),
                "({i},{j}): {} vs {}",
                fast.get(i, j),
                s
            );
        }
    }

    #[test]
    fn laned_dot_matches_serial_sum() {
        // Exercise every tail length around the 8-lane boundary with
        // integer-valued data (exact in f32 regardless of order).
        for len in 0..40 {
            let a: Vec<f32> = (0..len).map(|i| (i % 7) as f32 - 3.0).collect();
            let b: Vec<f32> = (0..len).map(|i| (i % 5) as f32 - 2.0).collect();
            let serial: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert_eq!(super::dot(&a, &b), serial, "len {len}");
        }
    }

    #[test]
    fn laned_kernel_matches_serial_reference() {
        // Integer-valued data: exact in f32 under any summation order.
        let a = Matrix::from_fn(7, 37, |r, c| ((r * 13 + c * 5) % 9) as f32 - 4.0);
        let b = Matrix::from_fn(5, 37, |r, c| ((r * 11 + c * 3) % 7) as f32 - 3.0);
        assert_eq!(a.matmul_transpose_b(&b), a.matmul_transpose_b_serial(&b));
    }

    #[test]
    fn transpose_b_into_matches_allocating() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(4, 3, &[1., 0., 1., 0., 1., 0., 2., 2., 2., 1., 1., 1.]);
        let mut out = Matrix::full(1, 1, 9.0); // wrong shape on purpose
        a.matmul_transpose_b_into(&b, &mut out);
        assert_eq!(out, a.matmul_transpose_b(&b));
        // Buffer reuse across differently shaped calls.
        let c = m(1, 3, &[1., 1., 1.]);
        c.matmul_transpose_b_into(&b, &mut out);
        assert_eq!(out, c.matmul_transpose_b(&b));
    }

    #[test]
    fn transpose_involution() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_dim_mismatch_panics() {
        m(2, 3, &[0.; 6]).matmul(&m(2, 2, &[0.; 4]));
    }
}
