//! Matrix multiplication and transposition kernels.
//!
//! Three matmul variants cover everything the hand-written backward
//! passes need without materializing transposes:
//!
//! * `matmul` — `C = A · B` (forward)
//! * `matmul_transpose_b` — `C = A · Bᵀ` (forward attention scores,
//!   backward w.r.t. inputs)
//! * `matmul_transpose_a` — `C = Aᵀ · B` (backward w.r.t. weights)
//!
//! There are exactly **two inner kernels**, both living in
//! [`crate::kernels`] with scalar + AVX2 twins: the laned dot
//! (register-blocked four-wide as `dot4`) drives the `Bᵀ` family, and
//! the axpy row-update drives `matmul`/`matmul_transpose_a`. The
//! cache-tiled sequential `matmul` and its rayon-parallel row loop
//! accumulate every output element in ascending inner-index order, so
//! blocking and dispatch never change a bit of the result (see the
//! crate-level determinism contract).
//!
//! Each variant switches to a rayon-parallel loop over output rows
//! once the multiply-add count crosses [`crate::PAR_THRESHOLD`];
//! mini-batch sized calls stay sequential so trainer *threads* (the
//! outer parallelism of the simulated cluster) don't fight over the
//! rayon pool.

use crate::timing::{scope, Kernel};
use crate::{kernels, Matrix, PAR_THRESHOLD};
use rayon::prelude::*;

/// k-block of the cache-tiled `matmul`: a `KC × JC` panel of B
/// (64 × 512 f32 = 128 KiB) is re-streamed from L2 across all output
/// rows instead of re-reading the whole of B from DRAM per row.
const KC: usize = 64;
/// j-panel width: the output row slice touched inside a k-block
/// (512 f32 = 2 KiB) stays resident in L1.
const JC: usize = 512;

/// One row-panel of `A · Bᵀ`: `out_row[j] = a_row · b.row(j)`.
///
/// `SERIAL` selects the plain serial-reduction dot (the
/// pre-optimization reference numerics); the default path uses the
/// laned [`kernels::dot4`] four columns at a time (shared `a_row`
/// loads, independent accumulator chains) with [`kernels::dot`] for
/// the remainder columns — every column bit-identical to a lone
/// `dot`.
#[inline]
fn tb_row<const SERIAL: bool>(a_row: &[f32], b: &[f32], k: usize, out_row: &mut [f32]) {
    if SERIAL {
        for (o, b_row) in out_row.iter_mut().zip(b.chunks_exact(k)) {
            *o = kernels::dot_serial(a_row, b_row);
        }
        return;
    }
    let n = out_row.len();
    let quads = n - n % 4;
    let mut j = 0;
    while j < quads {
        let q = kernels::dot4(
            a_row,
            &b[j * k..(j + 1) * k],
            &b[(j + 1) * k..(j + 2) * k],
            &b[(j + 2) * k..(j + 3) * k],
            &b[(j + 3) * k..(j + 4) * k],
        );
        out_row[j..j + 4].copy_from_slice(&q);
        j += 4;
    }
    for jj in j..n {
        out_row[jj] = kernels::dot(a_row, &b[jj * k..(jj + 1) * k]);
    }
}

/// One output row of `A · B` as ascending-k axpy updates
/// (zero-skipped) — the row body shared by the parallel path and, in
/// k-block slices, by the cache-tiled sequential path. Per output
/// element both walk k in the same ascending order, so they are
/// bit-identical.
#[inline]
fn mm_row(a_row: &[f32], b: &[f32], n: usize, out_row: &mut [f32]) {
    for (kk, &av) in a_row.iter().enumerate() {
        if av != 0.0 {
            kernels::axpy(out_row, av, &b[kk * n..(kk + 1) * n]);
        }
    }
}

impl Matrix {
    /// `self · other`.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.rows(),
            "matmul: {}x{} · {}x{}",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let _t = scope(Kernel::Matmul);
        let (m, k, n) = (self.rows(), self.cols(), other.cols());
        let mut out = Matrix::zeros(m, n);
        let work = m * k * n;
        let a = self.as_slice();
        let b = other.as_slice();

        if work >= PAR_THRESHOLD {
            out.as_mut_slice()
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(r, out_row)| mm_row(&a[r * k..(r + 1) * k], b, n, out_row));
        } else {
            // Cache-tiled: fix a KC×JC panel of B, sweep all rows.
            let o = out.as_mut_slice();
            for jb in (0..n).step_by(JC) {
                let jw = JC.min(n - jb);
                for kb in (0..k).step_by(KC) {
                    let kw = KC.min(k - kb);
                    for i in 0..m {
                        let a_blk = &a[i * k + kb..i * k + kb + kw];
                        let out_row = &mut o[i * n + jb..i * n + jb + jw];
                        for (kk, &av) in a_blk.iter().enumerate() {
                            if av != 0.0 {
                                let b_row = &b[(kb + kk) * n + jb..(kb + kk) * n + jb + jw];
                                kernels::axpy(out_row, av, b_row);
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// `self · otherᵀ` without materializing the transpose.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_transpose_b(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.cols(),
            "matmul_transpose_b: inner dims {} vs {}",
            self.cols(),
            other.cols()
        );
        let _t = scope(Kernel::Matmul);
        let (m, k, n) = (self.rows(), self.cols(), other.rows());
        let mut out = Matrix::zeros(m, n);
        let work = m * k * n;
        let a = self.as_slice();
        let b = other.as_slice();

        if work >= PAR_THRESHOLD {
            out.as_mut_slice()
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(r, out_row)| tb_row::<false>(&a[r * k..(r + 1) * k], b, k, out_row));
        } else {
            for (r, out_row) in out.as_mut_slice().chunks_exact_mut(n.max(1)).enumerate() {
                tb_row::<false>(&a[r * k..(r + 1) * k], b, k, out_row);
            }
        }
        out
    }

    /// `self · otherᵀ` with the plain serial-reduction dot product —
    /// the pre-optimization kernel, kept as the correctness reference
    /// for the laned [`Matrix::matmul_transpose_b`] and for
    /// kernel-level A/B benchmarks. Shares the row-panel body with the
    /// fast variant (only the reduction differs); results differ from
    /// the laned kernel only by f32 summation order.
    pub fn matmul_transpose_b_serial(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.cols(),
            "matmul_transpose_b_serial: inner dims {} vs {}",
            self.cols(),
            other.cols()
        );
        let (m, k, n) = (self.rows(), self.cols(), other.rows());
        let mut out = Matrix::zeros(m, n);
        let a = self.as_slice();
        let b = other.as_slice();
        for (r, out_row) in out.as_mut_slice().chunks_exact_mut(n.max(1)).enumerate() {
            tb_row::<true>(&a[r * k..(r + 1) * k], b, k, out_row);
        }
        out
    }

    /// `self · otherᵀ` written into a caller-owned buffer (resized in
    /// place) — the fused-GRU path uses this to keep gate
    /// pre-activations in persistent scratch instead of allocating six
    /// fresh matrices per step. Numerically identical to
    /// [`Matrix::matmul_transpose_b`].
    ///
    /// # Panics
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_transpose_b_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols(),
            other.cols(),
            "matmul_transpose_b_into: inner dims {} vs {}",
            self.cols(),
            other.cols()
        );
        let _t = scope(Kernel::Matmul);
        let (m, k, n) = (self.rows(), self.cols(), other.rows());
        out.resize_for_overwrite(m, n);
        let a = self.as_slice();
        let b = other.as_slice();
        for (r, out_row) in out.as_mut_slice().chunks_exact_mut(n.max(1)).enumerate() {
            tb_row::<false>(&a[r * k..(r + 1) * k], b, k, out_row);
        }
    }

    /// `selfᵀ · other` without materializing the transpose.
    ///
    /// # Panics
    /// Panics if `self.rows() != other.rows()`.
    pub fn matmul_transpose_a(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows(),
            other.rows(),
            "matmul_transpose_a: inner dims {} vs {}",
            self.rows(),
            other.rows()
        );
        let _t = scope(Kernel::Matmul);
        let (k, m, n) = (self.rows(), self.cols(), other.cols());
        // Accumulate outer products sequentially; the output is
        // weight-shaped (small — it stays cache-resident across the
        // whole ki sweep), so contention-free accumulation beats
        // parallelizing here unless the batch is very large. Both
        // paths walk ki ascending per output element via the shared
        // axpy kernel.
        let mut out = Matrix::zeros(m, n);
        let a = self.as_slice();
        let b = other.as_slice();
        if k * m * n >= PAR_THRESHOLD && m >= 8 {
            let o = out.as_mut_slice();
            o.par_chunks_mut(n).enumerate().for_each(|(mi, out_row)| {
                for ki in 0..k {
                    let av = a[ki * m + mi];
                    if av != 0.0 {
                        kernels::axpy(out_row, av, &b[ki * n..(ki + 1) * n]);
                    }
                }
            });
        } else {
            let o = out.as_mut_slice();
            for ki in 0..k {
                let a_row = &a[ki * m..(ki + 1) * m];
                let b_row = &b[ki * n..(ki + 1) * n];
                for (mi, &av) in a_row.iter().enumerate() {
                    if av != 0.0 {
                        kernels::axpy(&mut o[mi * n..(mi + 1) * n], av, b_row);
                    }
                }
            }
        }
        out
    }

    /// Materialized transpose. Rarely needed — prefer the fused
    /// `matmul_transpose_*` kernels.
    pub fn transpose(&self) -> Matrix {
        let (r, c) = self.shape();
        let mut out = Matrix::zeros(c, r);
        for i in 0..r {
            for j in 0..c {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_2x3_3x2() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let i = Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn transpose_b_matches_explicit() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(4, 3, &[1., 0., 1., 0., 1., 0., 2., 2., 2., 1., 1., 1.]);
        assert_eq!(a.matmul_transpose_b(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn transpose_a_matches_explicit() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 4, &[1., 0., 1., 0., 0., 1., 0., 1., 2., 2., 2., 2.]);
        assert_eq!(a.matmul_transpose_a(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn blocked_matmul_bit_matches_ascending_k_reference() {
        // Shapes that straddle the KC/JC tile boundaries with
        // non-integer data: cache tiling and SIMD dispatch must not
        // move a single bit relative to the plain ascending-k loop.
        for (mm, kk, nn) in [(3, 5, 7), (17, 70, 130), (9, 64, 512), (33, 129, 520)] {
            let a = Matrix::from_fn(mm, kk, |r, c| ((r * 31 + c * 7) % 13) as f32 * 0.731 - 4.4);
            let b = Matrix::from_fn(kk, nn, |r, c| ((r * 17 + c * 5) % 11) as f32 * 0.573 - 2.9);
            let fast = a.matmul(&b);
            let mut reference = Matrix::zeros(mm, nn);
            for i in 0..mm {
                for k2 in 0..kk {
                    let av = a.get(i, k2);
                    if av != 0.0 {
                        for j in 0..nn {
                            let cur = reference.get(i, j);
                            reference.set(i, j, cur + av * b.get(k2, j));
                        }
                    }
                }
            }
            for (x, y) in fast.as_slice().iter().zip(reference.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{mm}x{kk}x{nn}");
            }
        }
    }

    #[test]
    fn large_matmul_parallel_path_matches_sequential() {
        // 1024 × 512 · 512 × 600 = 314M mult-adds — crosses
        // PAR_THRESHOLD, so this exercises the rayon path; sparse
        // sampling against a scalar reference keeps the check cheap.
        let (m, k, n) = (1024, 512, 600);
        assert!(m * k * n >= crate::PAR_THRESHOLD);
        let a = Matrix::from_fn(m, k, |r, c| ((r * 31 + c * 7) % 13) as f32 - 6.0);
        let b = Matrix::from_fn(k, n, |r, c| ((r * 17 + c * 5) % 11) as f32 - 5.0);
        let fast = a.matmul(&b);
        for (i, j) in [(0, 0), (7, 599), (511, 300), (1023, 0), (1000, 599)] {
            let mut s = 0.0;
            for kk in 0..k {
                s += a.get(i, kk) * b.get(kk, j);
            }
            assert!(
                (fast.get(i, j) - s).abs() < 1e-2 * (1.0 + s.abs()),
                "({i},{j}): {} vs {}",
                fast.get(i, j),
                s
            );
        }
    }

    #[test]
    fn laned_dot_matches_serial_sum() {
        // Exercise every tail length around the 8-lane boundary with
        // integer-valued data (exact in f32 regardless of order).
        for len in 0..40 {
            let a: Vec<f32> = (0..len).map(|i| (i % 7) as f32 - 3.0).collect();
            let b: Vec<f32> = (0..len).map(|i| (i % 5) as f32 - 2.0).collect();
            let serial: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert_eq!(kernels::dot(&a, &b), serial, "len {len}");
        }
    }

    #[test]
    fn laned_kernel_matches_serial_reference() {
        // Integer-valued data: exact in f32 under any summation order.
        let a = Matrix::from_fn(7, 37, |r, c| ((r * 13 + c * 5) % 9) as f32 - 4.0);
        let b = Matrix::from_fn(5, 37, |r, c| ((r * 11 + c * 3) % 7) as f32 - 3.0);
        assert_eq!(a.matmul_transpose_b(&b), a.matmul_transpose_b_serial(&b));
    }

    #[test]
    fn transpose_b_into_matches_allocating() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(4, 3, &[1., 0., 1., 0., 1., 0., 2., 2., 2., 1., 1., 1.]);
        let mut out = Matrix::full(1, 1, 9.0); // wrong shape on purpose
        a.matmul_transpose_b_into(&b, &mut out);
        assert_eq!(out, a.matmul_transpose_b(&b));
        // Buffer reuse across differently shaped calls.
        let c = m(1, 3, &[1., 1., 1.]);
        c.matmul_transpose_b_into(&b, &mut out);
        assert_eq!(out, c.matmul_transpose_b(&b));
    }

    #[test]
    fn transpose_involution() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_dim_mismatch_panics() {
        m(2, 3, &[0.; 6]).matmul(&m(2, 2, &[0.; 4]));
    }
}
