//! Matrix multiplication and transposition kernels.
//!
//! Three matmul variants cover everything the hand-written backward
//! passes need without materializing transposes:
//!
//! * `matmul`            — `C = A · B`        (forward)
//! * `matmul_transpose_b`— `C = A · Bᵀ`       (forward attention scores,
//!                          backward w.r.t. inputs)
//! * `matmul_transpose_a`— `C = Aᵀ · B`       (backward w.r.t. weights)
//!
//! Each switches to a rayon-parallel loop over output rows once the
//! multiply-add count crosses [`crate::PAR_THRESHOLD`]; mini-batch sized
//! calls stay sequential so trainer *threads* (the outer parallelism of
//! the simulated cluster) don't fight over the rayon pool.

use crate::{Matrix, PAR_THRESHOLD};
use rayon::prelude::*;

impl Matrix {
    /// `self · other`.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.rows(),
            "matmul: {}x{} · {}x{}",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let (m, k, n) = (self.rows(), self.cols(), other.cols());
        let mut out = Matrix::zeros(m, n);
        let work = m * k * n;
        let a = self.as_slice();
        let b = other.as_slice();

        let kernel = |row_idx: usize, out_row: &mut [f32]| {
            let a_row = &a[row_idx * k..(row_idx + 1) * k];
            // ikj loop order: streams through b rows, vectorizes the inner axpy.
            for (ai, b_row) in a_row.iter().zip(b.chunks_exact(n)) {
                if *ai != 0.0 {
                    for (o, bv) in out_row.iter_mut().zip(b_row) {
                        *o += ai * bv;
                    }
                }
            }
        };

        if work >= PAR_THRESHOLD {
            out.as_mut_slice()
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(r, out_row)| kernel(r, out_row));
        } else {
            for (r, out_row) in out.as_mut_slice().chunks_exact_mut(n).enumerate() {
                kernel(r, out_row);
            }
        }
        out
    }

    /// `self · otherᵀ` without materializing the transpose.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_transpose_b(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.cols(),
            "matmul_transpose_b: inner dims {} vs {}",
            self.cols(),
            other.cols()
        );
        let (m, k, n) = (self.rows(), self.cols(), other.rows());
        let mut out = Matrix::zeros(m, n);
        let work = m * k * n;
        let a = self.as_slice();
        let b = other.as_slice();

        let kernel = |row_idx: usize, out_row: &mut [f32]| {
            let a_row = &a[row_idx * k..(row_idx + 1) * k];
            for (o, b_row) in out_row.iter_mut().zip(b.chunks_exact(k)) {
                *o = a_row.iter().zip(b_row).map(|(x, y)| x * y).sum();
            }
        };

        if work >= PAR_THRESHOLD {
            out.as_mut_slice()
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(r, out_row)| kernel(r, out_row));
        } else {
            for (r, out_row) in out.as_mut_slice().chunks_exact_mut(n).enumerate() {
                kernel(r, out_row);
            }
        }
        out
    }

    /// `selfᵀ · other` without materializing the transpose.
    ///
    /// # Panics
    /// Panics if `self.rows() != other.rows()`.
    pub fn matmul_transpose_a(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows(),
            other.rows(),
            "matmul_transpose_a: inner dims {} vs {}",
            self.rows(),
            other.rows()
        );
        let (k, m, n) = (self.rows(), self.cols(), other.cols());
        // Accumulate outer products sequentially; the output is weight-shaped
        // (small), so contention-free accumulation beats parallelizing here
        // unless the batch is very large.
        let mut out = Matrix::zeros(m, n);
        let a = self.as_slice();
        let b = other.as_slice();
        if k * m * n >= PAR_THRESHOLD && m >= 8 {
            let o = out.as_mut_slice();
            o.par_chunks_mut(n).enumerate().for_each(|(mi, out_row)| {
                for ki in 0..k {
                    let av = a[ki * m + mi];
                    if av != 0.0 {
                        let b_row = &b[ki * n..(ki + 1) * n];
                        for (ov, bv) in out_row.iter_mut().zip(b_row) {
                            *ov += av * bv;
                        }
                    }
                }
            });
        } else {
            for ki in 0..k {
                let a_row = &a[ki * m..(ki + 1) * m];
                let b_row = &b[ki * n..(ki + 1) * n];
                for (mi, &av) in a_row.iter().enumerate() {
                    if av != 0.0 {
                        let out_row = &mut out.as_mut_slice()[mi * n..(mi + 1) * n];
                        for (ov, &bv) in out_row.iter_mut().zip(b_row) {
                            *ov += av * bv;
                        }
                    }
                }
            }
        }
        out
    }

    /// Materialized transpose. Rarely needed — prefer the fused
    /// `matmul_transpose_*` kernels.
    pub fn transpose(&self) -> Matrix {
        let (r, c) = self.shape();
        let mut out = Matrix::zeros(c, r);
        for i in 0..r {
            for j in 0..c {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_2x3_3x2() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let i = Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn transpose_b_matches_explicit() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(4, 3, &[1., 0., 1., 0., 1., 0., 2., 2., 2., 1., 1., 1.]);
        assert_eq!(a.matmul_transpose_b(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn transpose_a_matches_explicit() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 4, &[1., 0., 1., 0., 0., 1., 0., 1., 2., 2., 2., 2.]);
        assert_eq!(a.matmul_transpose_a(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn large_matmul_parallel_path_matches_sequential() {
        // 1024 × 512 · 512 × 600 = 314M mult-adds — crosses
        // PAR_THRESHOLD, so this exercises the rayon path; sparse
        // sampling against a scalar reference keeps the check cheap.
        let (m, k, n) = (1024, 512, 600);
        assert!(m * k * n >= crate::PAR_THRESHOLD);
        let a = Matrix::from_fn(m, k, |r, c| ((r * 31 + c * 7) % 13) as f32 - 6.0);
        let b = Matrix::from_fn(k, n, |r, c| ((r * 17 + c * 5) % 11) as f32 - 5.0);
        let fast = a.matmul(&b);
        for (i, j) in [(0, 0), (7, 599), (511, 300), (1023, 0), (1000, 599)] {
            let mut s = 0.0;
            for kk in 0..k {
                s += a.get(i, kk) * b.get(kk, j);
            }
            assert!(
                (fast.get(i, j) - s).abs() < 1e-2 * (1.0 + s.abs()),
                "({i},{j}): {} vs {}",
                fast.get(i, j),
                s
            );
        }
    }

    #[test]
    fn transpose_involution() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_dim_mismatch_panics() {
        m(2, 3, &[0.; 6]).matmul(&m(2, 2, &[0.; 4]));
    }
}
