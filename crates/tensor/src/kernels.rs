//! Hardware-width inner kernels with a fixed-reduction-order contract.
//!
//! Every function here has two implementations: a **laned scalar**
//! path (the always-available fallback, and the definition of the
//! numerics) and an **AVX2** path compiled behind the `simd` cargo
//! feature and selected at runtime via CPU-feature detection. The two
//! paths are **bit-identical by construction**:
//!
//! * reductions use eight fixed accumulator lanes — lane `l` of the
//!   AVX2 `__m256` accumulator holds exactly the partial sum the
//!   scalar path keeps in `acc[l]`, chunks are consumed in the same
//!   order, the remainder tail is the same serial loop, and the final
//!   lane fold is the same fixed tree
//!   `((l0+l4)+(l1+l5)) + ((l2+l6)+(l3+l7))`;
//! * the AVX2 path multiplies then adds (`vmulps` + `vaddps`), never
//!   `vfmaddps` — a fused multiply-add rounds once where the scalar
//!   path rounds twice, which would break bit-identity;
//! * elementwise kernels (`axpy`, `add`, `scale`, the fused GRU maps)
//!   have no cross-element data flow, so any vector width gives the
//!   same bits per element.
//!
//! Because of this, flipping SIMD on or off (feature flag, missing
//! CPU support, [`force_scalar`], or `DISTTGL_SIMD=0`) never changes
//! a training trajectory — the equivalence suites that compare
//! executors bit-for-bit hold under every dispatch outcome.

/// Runtime override: when `true`, every kernel takes the scalar path
/// even if AVX2 is compiled in and supported. Used by benchmarks and
/// the bit-identity proptests to A/B the two paths in one process.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
static FORCE_SCALAR: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Forces (or un-forces) the scalar kernel path at runtime.
///
/// A no-op when the `simd` feature is off or the target is not
/// x86-64 (the scalar path is all there is). Takes effect for kernel
/// calls that start after this call returns; intended for A/B
/// benchmarking and tests, not for concurrent toggling mid-kernel.
pub fn force_scalar(on: bool) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    FORCE_SCALAR.store(on, std::sync::atomic::Ordering::Relaxed);
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    let _ = on;
}

/// Whether the next kernel call will take the AVX2 path.
///
/// Requires all of: the `simd` cargo feature, an x86-64 target, a CPU
/// with AVX2 (detected once at first use), `DISTTGL_SIMD` not set to
/// `0`/`off`/`false` (read once), and no [`force_scalar`] override.
#[inline]
pub fn simd_active() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        use std::sync::atomic::Ordering;
        static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        let compiled = *ENABLED.get_or_init(|| {
            let env_off = std::env::var("DISTTGL_SIMD")
                .map(|v| matches!(v.trim(), "0" | "off" | "false"))
                .unwrap_or(false);
            !env_off && std::arch::is_x86_feature_detected!("avx2")
        });
        compiled && !FORCE_SCALAR.load(Ordering::Relaxed)
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

// ---------------------------------------------------------------------------
// Reduction kernels (fixed 8-lane order)
// ---------------------------------------------------------------------------

/// Dot product with eight independent accumulator lanes.
///
/// A plain `zip().map().sum()` reduction is a single serial FP-add
/// chain that LLVM must not reorder, so it runs at add-latency speed.
/// Splitting the sum across eight fixed lanes breaks the dependency
/// chain (and maps 1:1 onto a `__m256` register) while staying fully
/// deterministic — the lane structure, not the data, decides the
/// summation order. This is the workhorse of every `x·Wᵀ` in the
/// model, which dominates training compute.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: `simd_active()` verified AVX2 support at runtime.
        return unsafe { avx2::dot(a, b) };
    }
    dot_scalar(a, b)
}

/// The laned scalar dot — public so benchmarks and equivalence tests
/// can pin the reference path regardless of dispatch state.
#[inline]
pub fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 8];
    let main = a.len() - a.len() % 8;
    for (ca, cb) in a[..main].chunks_exact(8).zip(b[..main].chunks_exact(8)) {
        for (l, acc_l) in acc.iter_mut().enumerate() {
            *acc_l += ca[l] * cb[l];
        }
    }
    fold8(acc) + dot_serial(&a[main..], &b[main..])
}

/// Four simultaneous dot products of one shared `a` against four `b`
/// rows — the register-blocked inner kernel of `A · Bᵀ`. Each output
/// is bit-identical to [`dot`] of the same pair: the blocking shares
/// *loads* of `a`, not accumulators. A single-accumulator dot is
/// latency-bound on the FP add chain; four independent chains saturate
/// the FMA ports and quadruple throughput at identical numerics.
#[inline]
pub fn dot4(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: `simd_active()` verified AVX2 support at runtime.
        return unsafe { avx2::dot4(a, b0, b1, b2, b3) };
    }
    [
        dot_scalar(a, b0),
        dot_scalar(a, b1),
        dot_scalar(a, b2),
        dot_scalar(a, b3),
    ]
}

/// Plain serial-reduction dot — the pre-optimization numerics, kept
/// as the correctness reference for kernel A/B tests and for the
/// scalar remainder tails (both paths share this exact loop).
#[inline]
pub fn dot_serial(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Sum with the same fixed 8-lane structure as [`dot`].
#[inline]
pub fn laned_sum(a: &[f32]) -> f32 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: `simd_active()` verified AVX2 support at runtime.
        return unsafe { avx2::laned_sum(a) };
    }
    laned_sum_scalar(a)
}

/// Scalar reference for [`laned_sum`].
#[inline]
pub fn laned_sum_scalar(a: &[f32]) -> f32 {
    let mut acc = [0.0f32; 8];
    let main = a.len() - a.len() % 8;
    for ca in a[..main].chunks_exact(8) {
        for (l, acc_l) in acc.iter_mut().enumerate() {
            *acc_l += ca[l];
        }
    }
    let tail: f32 = a[main..].iter().sum();
    fold8(acc) + tail
}

/// Maximum element, 8-lane structure (`f32::max` per lane, serial
/// tail, fixed lane fold). Returns `f32::NEG_INFINITY` for an empty
/// slice.
///
/// The lane structure can pick a different *sign of zero* than a
/// serial fold when a row mixes `+0.0`/`-0.0`, and `vmaxps` differs
/// from `f32::max` on those too — both are output-safe in softmax,
/// the only caller: `x - (+0.0)` and `x - (-0.0)` are bit-equal for
/// every finite `x`, so the subtracted row (and thus the softmax
/// output) is unchanged. NaN inputs are unsupported (callers mask
/// with large negative finite values, never NaN).
#[inline]
pub fn row_max(a: &[f32]) -> f32 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: `simd_active()` verified AVX2 support at runtime.
        return unsafe { avx2::row_max(a) };
    }
    row_max_scalar(a)
}

/// Scalar reference for [`row_max`].
#[inline]
pub fn row_max_scalar(a: &[f32]) -> f32 {
    let mut acc = [f32::NEG_INFINITY; 8];
    let main = a.len() - a.len() % 8;
    for ca in a[..main].chunks_exact(8) {
        for (l, acc_l) in acc.iter_mut().enumerate() {
            *acc_l = acc_l.max(ca[l]);
        }
    }
    let lanes = ((acc[0].max(acc[4])).max(acc[1].max(acc[5])))
        .max((acc[2].max(acc[6])).max(acc[3].max(acc[7])));
    a[main..].iter().fold(lanes, |m, &v| m.max(v))
}

// ---------------------------------------------------------------------------
// Elementwise kernels (bit-identical at any vector width)
// ---------------------------------------------------------------------------

/// `out[i] += alpha * x[i]` — the axpy inner kernel shared by the
/// blocked `matmul` / `matmul_transpose_a` bodies and the optimizer.
#[inline]
pub fn axpy(out: &mut [f32], alpha: f32, x: &[f32]) {
    debug_assert_eq!(out.len(), x.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: `simd_active()` verified AVX2 support at runtime.
        unsafe { avx2::axpy(out, alpha, x) };
        return;
    }
    for (o, &v) in out.iter_mut().zip(x) {
        *o += alpha * v;
    }
}

/// `out[i] += x[i]`.
#[inline]
pub fn add(out: &mut [f32], x: &[f32]) {
    debug_assert_eq!(out.len(), x.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: `simd_active()` verified AVX2 support at runtime.
        unsafe { avx2::add(out, x) };
        return;
    }
    for (o, &v) in out.iter_mut().zip(x) {
        *o += v;
    }
}

/// `out[i] *= alpha`.
#[inline]
pub fn scale(out: &mut [f32], alpha: f32) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: `simd_active()` verified AVX2 support at runtime.
        unsafe { avx2::scale(out, alpha) };
        return;
    }
    for o in out.iter_mut() {
        *o *= alpha;
    }
}

/// Fused GRU candidate pre-activation: `n[i] += r[i] * a[i]`
/// (reset gate ⊙ recurrent contribution).
#[inline]
pub fn gru_candidate(n: &mut [f32], r: &[f32], a: &[f32]) {
    debug_assert_eq!(n.len(), r.len());
    debug_assert_eq!(n.len(), a.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: `simd_active()` verified AVX2 support at runtime.
        unsafe { avx2::gru_candidate(n, r, a) };
        return;
    }
    for ((nv, &rv), &av) in n.iter_mut().zip(r).zip(a) {
        *nv += rv * av;
    }
}

/// Fused GRU output combine: `o[i] = (n[i] - z[i]*n[i]) + z[i]*h[i]`.
/// The operation order matches the scalar expression exactly so both
/// paths round identically.
#[inline]
pub fn gru_combine(o: &mut [f32], n: &[f32], z: &[f32], h: &[f32]) {
    debug_assert_eq!(o.len(), n.len());
    debug_assert_eq!(o.len(), z.len());
    debug_assert_eq!(o.len(), h.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: `simd_active()` verified AVX2 support at runtime.
        unsafe { avx2::gru_combine(o, n, z, h) };
        return;
    }
    for (((ov, &nv), &zv), &hv) in o.iter_mut().zip(n).zip(z).zip(h) {
        *ov = (nv - zv * nv) + zv * hv;
    }
}

/// The fixed lane-fold tree shared by every 8-lane reduction:
/// `((l0+l4)+(l1+l5)) + ((l2+l6)+(l3+l7))`. This exact shape is what
/// the AVX2 horizontal reduction reproduces with one 128-bit add and
/// two shuffles.
#[inline]
fn fold8(acc: [f32; 8]) -> f32 {
    ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]))
}

// ---------------------------------------------------------------------------
// AVX2 path
// ---------------------------------------------------------------------------

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2 {
    //! AVX2 twins of the scalar kernels. Each function mirrors its
    //! scalar reference lane-for-lane; see the module docs for the
    //! bit-identity argument. All functions require AVX2 (checked by
    //! the dispatchers before calling).

    use std::arch::x86_64::*;

    /// Folds a `__m256` of 8 lanes with the exact scalar tree
    /// `((l0+l4)+(l1+l5)) + ((l2+l6)+(l3+l7))`.
    ///
    /// # Safety
    /// Requires AVX2.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn fold8_avx(acc: __m256) -> f32 {
        // s = [l0+l4, l1+l5, l2+l6, l3+l7]
        let s = _mm_add_ps(_mm256_castps256_ps128(acc), _mm256_extractf128_ps(acc, 1));
        // t = [s0+s1, _, s2+s3, _]
        let t = _mm_add_ps(s, _mm_movehdup_ps(s));
        // (s0+s1) + (s2+s3)
        _mm_cvtss_f32(_mm_add_ss(t, _mm_movehl_ps(t, t)))
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        let main = a.len() - a.len() % 8;
        let mut acc = _mm256_setzero_ps();
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut i = 0;
        while i < main {
            let va = _mm256_loadu_ps(pa.add(i));
            let vb = _mm256_loadu_ps(pb.add(i));
            // mul + add, NOT fmadd: fused rounding would diverge from
            // the scalar lanes.
            acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
            i += 8;
        }
        fold8_avx(acc) + super::dot_serial(&a[main..], &b[main..])
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot4(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
        let main = a.len() - a.len() % 8;
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let pa = a.as_ptr();
        let (p0, p1, p2, p3) = (b0.as_ptr(), b1.as_ptr(), b2.as_ptr(), b3.as_ptr());
        let mut i = 0;
        while i < main {
            let va = _mm256_loadu_ps(pa.add(i));
            acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(va, _mm256_loadu_ps(p0.add(i))));
            acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(va, _mm256_loadu_ps(p1.add(i))));
            acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(va, _mm256_loadu_ps(p2.add(i))));
            acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(va, _mm256_loadu_ps(p3.add(i))));
            i += 8;
        }
        let ta = &a[main..];
        [
            fold8_avx(acc0) + super::dot_serial(ta, &b0[main..]),
            fold8_avx(acc1) + super::dot_serial(ta, &b1[main..]),
            fold8_avx(acc2) + super::dot_serial(ta, &b2[main..]),
            fold8_avx(acc3) + super::dot_serial(ta, &b3[main..]),
        ]
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn laned_sum(a: &[f32]) -> f32 {
        let main = a.len() - a.len() % 8;
        let mut acc = _mm256_setzero_ps();
        let pa = a.as_ptr();
        let mut i = 0;
        while i < main {
            acc = _mm256_add_ps(acc, _mm256_loadu_ps(pa.add(i)));
            i += 8;
        }
        let tail: f32 = a[main..].iter().sum();
        fold8_avx(acc) + tail
    }

    /// # Safety
    /// Requires AVX2. See [`super::row_max`] for the ±0.0 argument.
    #[target_feature(enable = "avx2")]
    pub unsafe fn row_max(a: &[f32]) -> f32 {
        let main = a.len() - a.len() % 8;
        let mut acc = _mm256_set1_ps(f32::NEG_INFINITY);
        let pa = a.as_ptr();
        let mut i = 0;
        while i < main {
            acc = _mm256_max_ps(acc, _mm256_loadu_ps(pa.add(i)));
            i += 8;
        }
        let s = _mm_max_ps(_mm256_castps256_ps128(acc), _mm256_extractf128_ps(acc, 1));
        let t = _mm_max_ps(s, _mm_movehdup_ps(s));
        let lanes = _mm_cvtss_f32(_mm_max_ss(t, _mm_movehl_ps(t, t)));
        a[main..].iter().fold(lanes, |m, &v| m.max(v))
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy(out: &mut [f32], alpha: f32, x: &[f32]) {
        let main = out.len() - out.len() % 8;
        let va = _mm256_set1_ps(alpha);
        let (po, px) = (out.as_mut_ptr(), x.as_ptr());
        let mut i = 0;
        while i < main {
            let vo = _mm256_loadu_ps(po.add(i));
            let vx = _mm256_loadu_ps(px.add(i));
            _mm256_storeu_ps(po.add(i), _mm256_add_ps(vo, _mm256_mul_ps(va, vx)));
            i += 8;
        }
        for (o, &v) in out[main..].iter_mut().zip(&x[main..]) {
            *o += alpha * v;
        }
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn add(out: &mut [f32], x: &[f32]) {
        let main = out.len() - out.len() % 8;
        let (po, px) = (out.as_mut_ptr(), x.as_ptr());
        let mut i = 0;
        while i < main {
            let vo = _mm256_loadu_ps(po.add(i));
            let vx = _mm256_loadu_ps(px.add(i));
            _mm256_storeu_ps(po.add(i), _mm256_add_ps(vo, vx));
            i += 8;
        }
        for (o, &v) in out[main..].iter_mut().zip(&x[main..]) {
            *o += v;
        }
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn scale(out: &mut [f32], alpha: f32) {
        let main = out.len() - out.len() % 8;
        let va = _mm256_set1_ps(alpha);
        let po = out.as_mut_ptr();
        let mut i = 0;
        while i < main {
            _mm256_storeu_ps(po.add(i), _mm256_mul_ps(_mm256_loadu_ps(po.add(i)), va));
            i += 8;
        }
        for o in out[main..].iter_mut() {
            *o *= alpha;
        }
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn gru_candidate(n: &mut [f32], r: &[f32], a: &[f32]) {
        let main = n.len() - n.len() % 8;
        let (pn, pr, pa) = (n.as_mut_ptr(), r.as_ptr(), a.as_ptr());
        let mut i = 0;
        while i < main {
            let vn = _mm256_loadu_ps(pn.add(i));
            let vr = _mm256_loadu_ps(pr.add(i));
            let va = _mm256_loadu_ps(pa.add(i));
            _mm256_storeu_ps(pn.add(i), _mm256_add_ps(vn, _mm256_mul_ps(vr, va)));
            i += 8;
        }
        for ((nv, &rv), &av) in n[main..].iter_mut().zip(&r[main..]).zip(&a[main..]) {
            *nv += rv * av;
        }
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn gru_combine(o: &mut [f32], n: &[f32], z: &[f32], h: &[f32]) {
        let main = o.len() - o.len() % 8;
        let (po, pn, pz, ph) = (o.as_mut_ptr(), n.as_ptr(), z.as_ptr(), h.as_ptr());
        let mut i = 0;
        while i < main {
            let vn = _mm256_loadu_ps(pn.add(i));
            let vz = _mm256_loadu_ps(pz.add(i));
            let vh = _mm256_loadu_ps(ph.add(i));
            // (n - z*n) + z*h, same association as the scalar map.
            let v = _mm256_add_ps(
                _mm256_sub_ps(vn, _mm256_mul_ps(vz, vn)),
                _mm256_mul_ps(vz, vh),
            );
            _mm256_storeu_ps(po.add(i), v);
            i += 8;
        }
        for (((ov, &nv), &zv), &hv) in o[main..]
            .iter_mut()
            .zip(&n[main..])
            .zip(&z[main..])
            .zip(&h[main..])
        {
            *ov = (nv - zv * nv) + zv * hv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(len: usize, salt: u32) -> Vec<f32> {
        // Deterministic non-integer data with varied magnitudes.
        (0..len)
            .map(|i| {
                let x = ((i as u32).wrapping_mul(2654435761).wrapping_add(salt) >> 8) as f32;
                (x / 65536.0 - 128.0) * 1.001
            })
            .collect()
    }

    /// Runs `f` with SIMD forced off, then (if available) on, and
    /// checks both results agree bit-for-bit.
    fn both_paths<T: PartialEq + std::fmt::Debug>(f: impl Fn() -> T) {
        force_scalar(true);
        let scalar = f();
        force_scalar(false);
        let dispatched = f();
        assert_eq!(scalar, dispatched, "scalar vs dispatched mismatch");
    }

    #[test]
    fn dot_bit_identical_across_paths_and_tails() {
        for len in [0, 1, 5, 7, 8, 9, 15, 16, 17, 48, 60, 200, 211, 212] {
            let a = vals(len, 1);
            let b = vals(len, 2);
            both_paths(|| dot(&a, &b).to_bits());
        }
    }

    #[test]
    fn dot4_columns_match_dot() {
        for len in [3, 8, 13, 48, 61, 212] {
            let a = vals(len, 3);
            let bs: Vec<Vec<f32>> = (0..4).map(|s| vals(len, 10 + s)).collect();
            force_scalar(false);
            let quad = dot4(&a, &bs[0], &bs[1], &bs[2], &bs[3]);
            for (c, b) in bs.iter().enumerate() {
                assert_eq!(quad[c].to_bits(), dot(&a, b).to_bits(), "len {len} col {c}");
            }
        }
    }

    #[test]
    fn reductions_bit_identical_across_paths() {
        for len in [0, 1, 7, 8, 9, 31, 100] {
            let a = vals(len, 5);
            both_paths(|| laned_sum(&a).to_bits());
            if len > 0 {
                both_paths(|| row_max(&a).to_bits());
            }
        }
    }

    #[test]
    fn elementwise_bit_identical_across_paths() {
        for len in [0, 1, 7, 8, 9, 31, 100] {
            let x = vals(len, 6);
            let y = vals(len, 7);
            let z = vals(len, 8);
            both_paths(|| {
                let mut o = vals(len, 9);
                axpy(&mut o, 0.37, &x);
                add(&mut o, &y);
                scale(&mut o, 1.25);
                gru_candidate(&mut o, &x, &y);
                let mut c = vec![0.0f32; len];
                // Sigmoid-squash one operand so z is in gate range.
                let zg: Vec<f32> = z.iter().map(|&v| crate::sigmoid_scalar(v)).collect();
                gru_combine(&mut c, &o, &zg, &x);
                (
                    o.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    c.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                )
            });
        }
    }

    #[test]
    fn row_max_finds_maximum() {
        let mut a = vals(37, 11);
        a[19] = 1.0e9;
        force_scalar(false);
        assert_eq!(row_max(&a), 1.0e9);
        assert_eq!(row_max_scalar(&a), 1.0e9);
        assert_eq!(row_max(&[]), f32::NEG_INFINITY);
    }

    #[test]
    fn laned_sum_matches_integer_serial() {
        for len in 0..40 {
            let a: Vec<f32> = (0..len).map(|i| (i % 9) as f32 - 4.0).collect();
            let serial: f32 = a.iter().sum();
            force_scalar(false);
            assert_eq!(laned_sum(&a), serial, "len {len}");
        }
    }
}
