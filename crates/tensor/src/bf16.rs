//! bfloat16 codec for the quantized memory/mailbox representation.
//!
//! bf16 is the top 16 bits of an f32 (1 sign, 8 exponent, 7 mantissa):
//! decoding is a lossless shift, encoding rounds the mantissa to
//! nearest-even. The format keeps f32's full exponent range, so node
//! memory never overflows under quantization — only precision drops,
//! bounded by **2⁻⁸ relative error** for normal values (half a bf16
//! ULP). Crucially, `encode(decode(b)) == b` for every non-NaN `b`:
//! values already on the bf16 grid survive arbitrarily many
//! round-trips, which is what makes checkpointing a quantized store
//! through the exact f32 format bit-faithful.

/// Encodes an `f32` to bf16 bits with round-to-nearest-even.
///
/// NaNs are quieted (mantissa forced non-zero) so they can never
/// round to infinity; ±inf and ±0 are exact.
#[inline]
pub fn bf16_encode(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        // Preserve sign + quiet-NaN payload top bits; force non-zero
        // mantissa so the result stays a NaN.
        return ((bits >> 16) as u16) | 0x0040;
    }
    // Round-to-nearest-even on the truncated 16 bits: add 0x7fff plus
    // the lowest kept bit, then shift.
    let round_bit = (bits >> 16) & 1;
    (bits.wrapping_add(0x7fff + round_bit) >> 16) as u16
}

/// Decodes bf16 bits to `f32` (exact: a left shift).
#[inline]
pub fn bf16_decode(b: u16) -> f32 {
    f32::from_bits((b as u32) << 16)
}

/// Encodes a slice of f32s into bf16 words, appending to `out`.
#[inline]
pub fn bf16_encode_slice(src: &[f32], out: &mut [u16]) {
    debug_assert_eq!(src.len(), out.len());
    for (o, &v) in out.iter_mut().zip(src) {
        *o = bf16_encode(v);
    }
}

/// Decodes a slice of bf16 words into f32s.
#[inline]
pub fn bf16_decode_slice(src: &[u16], out: &mut [f32]) {
    debug_assert_eq!(src.len(), out.len());
    for (o, &v) in out.iter_mut().zip(src) {
        *o = bf16_decode(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_round_trip() {
        for &v in &[
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            0.5,
            2.0,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MIN_POSITIVE,
            1.7014118e38, // 2^127
        ] {
            let rt = bf16_decode(bf16_encode(v));
            assert_eq!(rt.to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn relative_error_bounded_by_2_pow_neg_8() {
        // Dense deterministic sweep over magnitudes and mantissas.
        for i in 0..10_000u32 {
            let m = 1.0 + (i as f32) / 10_000.0; // mantissa in [1, 2)
            for e in [-20i32, -5, -1, 0, 1, 7, 19] {
                for s in [1.0f32, -1.0] {
                    let v = s * m * (e as f32).exp2();
                    let rt = bf16_decode(bf16_encode(v));
                    let rel = ((rt - v) / v).abs();
                    assert!(rel <= 2.0f32.powi(-8), "{v} -> {rt} rel {rel}");
                }
            }
        }
    }

    #[test]
    fn double_round_trip_is_stable() {
        // bf16 -> f32 -> bf16 is the identity: re-quantizing a
        // quantized value never drifts.
        for b in 0..=u16::MAX {
            let v = bf16_decode(b);
            if v.is_nan() {
                continue;
            }
            assert_eq!(bf16_encode(v), b, "bits {b:#06x}");
        }
    }

    #[test]
    fn rounding_is_to_nearest_even() {
        // 1.0 + 2^-8 is exactly halfway between bf16(1.0) and the next
        // representable value 1.0078125; RNE must pick the even
        // mantissa (1.0).
        let halfway = f32::from_bits(0x3f80_8000);
        assert_eq!(bf16_decode(bf16_encode(halfway)), 1.0);
        // Just above halfway rounds up.
        let above = f32::from_bits(0x3f80_8001);
        assert_eq!(bf16_decode(bf16_encode(above)), 1.0078125);
        // Odd-mantissa halfway rounds up to even.
        let halfway_odd = f32::from_bits(0x3f81_8000);
        assert_eq!(bf16_decode(bf16_encode(halfway_odd)), 1.015625);
    }

    #[test]
    fn nan_stays_nan() {
        assert!(bf16_decode(bf16_encode(f32::NAN)).is_nan());
    }

    #[test]
    fn slice_helpers_match_scalar() {
        let src: Vec<f32> = (0..37).map(|i| (i as f32 - 18.0) * 0.317).collect();
        let mut enc = vec![0u16; src.len()];
        bf16_encode_slice(&src, &mut enc);
        let mut dec = vec![0f32; src.len()];
        bf16_decode_slice(&enc, &mut dec);
        for (i, (&e, &d)) in enc.iter().zip(&dec).enumerate() {
            assert_eq!(e, bf16_encode(src[i]));
            assert_eq!(d.to_bits(), bf16_decode(e).to_bits());
        }
    }
}
