//! # disttgl-tensor
//!
//! Dense `f32` tensor substrate for the DistTGL reproduction.
//!
//! The DistTGL paper runs on PyTorch; this crate is the minimal
//! replacement needed by a memory-based temporal GNN: a row-major 2-D
//! [`Matrix`] with the kernels the model's forward *and hand-written
//! backward* passes need — matmul (rayon-parallel above a size
//! threshold), elementwise arithmetic, activations, row-wise softmax,
//! row gather/scatter, and column concatenation.
//!
//! Design notes (following the hpc-parallel guides):
//! * storage is a single contiguous `Vec<f32>` — no per-row allocation;
//! * hot kernels take `&mut` outputs so callers can reuse buffers;
//! * parallelism is intra-op via `rayon::par_chunks_mut` over output
//!   rows, which composes with the *inter*-trainer parallelism of
//!   `disttgl-cluster` (each trainer thread drives its own ops);
//! * all random initialization is seeded (`rand_chacha`) so every
//!   experiment in the paper-reproduction harness is deterministic.
//!
//! ## The fixed-reduction-order determinism contract
//!
//! Every floating-point reduction in this crate sums in an order
//! decided by the *kernel structure*, never by the data, thread
//! schedule, or instruction set: dots and sums use eight fixed
//! accumulator lanes with a fixed fold tree and a serial remainder
//! tail; matmul variants accumulate each output element in ascending
//! inner-index order regardless of cache blocking. The AVX2 tier in
//! [`kernels`] maps those lanes 1:1 onto `__m256` registers (multiply
//! then add, never fused), so **SIMD-on and SIMD-off runs are
//! bit-identical** — toggling the `simd` feature, running on a CPU
//! without AVX2, or setting `DISTTGL_SIMD=0` reproduces the exact
//! same training trajectory. The cross-executor equivalence suites in
//! `disttgl-core` rely on this contract.
//!
//! ## Quantized memory: recoverable, not exact
//!
//! The [`bf16`] module backs the opt-in `quantized_memory` mode of
//! the model config: node-memory and mailbox rows are *stored* as
//! bfloat16 (half the bytes, ≤ 2⁻⁸ relative rounding per write) while
//! all compute stays f32. This trades bounded, measured accuracy
//! deltas for ~2× less gather/daemon traffic — a *recoverable*
//! approximation in the same spirit as the paper's staleness
//! tolerance, unlike the f32 default which is part of the bit-exact
//! determinism contract above.

mod activations;
pub mod bf16;
mod init;
pub mod kernels;
mod linalg;
mod matrix;
mod ops;
mod rows;
pub mod timing;

pub use activations::sigmoid_scalar;
pub use init::seeded_rng;
pub use matrix::Matrix;

/// Minimum number of f32 multiply-adds before a kernel switches from the
/// sequential loop to the rayon-parallel path.
///
/// The threshold is deliberately high: in this workspace a "GPU" is a
/// single trainer *thread*, so everyday mini-batch kernels must stay on
/// that thread or the multi-trainer scaling experiments (paper Fig 12)
/// would be contaminated by intra-op parallelism stealing the other
/// trainers' cores. Only genuinely huge one-off kernels (whole-table
/// operations) cross this threshold and fan out via rayon.
pub const PAR_THRESHOLD: usize = 1 << 28;
