//! # disttgl-tensor
//!
//! Dense `f32` tensor substrate for the DistTGL reproduction.
//!
//! The DistTGL paper runs on PyTorch; this crate is the minimal
//! replacement needed by a memory-based temporal GNN: a row-major 2-D
//! [`Matrix`] with the kernels the model's forward *and hand-written
//! backward* passes need — matmul (rayon-parallel above a size
//! threshold), elementwise arithmetic, activations, row-wise softmax,
//! row gather/scatter, and column concatenation.
//!
//! Design notes (following the hpc-parallel guides):
//! * storage is a single contiguous `Vec<f32>` — no per-row allocation;
//! * hot kernels take `&mut` outputs so callers can reuse buffers;
//! * parallelism is intra-op via `rayon::par_chunks_mut` over output
//!   rows, which composes with the *inter*-trainer parallelism of
//!   `disttgl-cluster` (each trainer thread drives its own ops);
//! * all random initialization is seeded (`rand_chacha`) so every
//!   experiment in the paper-reproduction harness is deterministic.

mod activations;
mod init;
mod linalg;
mod matrix;
mod ops;
mod rows;

pub use activations::sigmoid_scalar;
pub use init::seeded_rng;
pub use matrix::Matrix;

/// Minimum number of f32 multiply-adds before a kernel switches from the
/// sequential loop to the rayon-parallel path.
///
/// The threshold is deliberately high: in this workspace a "GPU" is a
/// single trainer *thread*, so everyday mini-batch kernels must stay on
/// that thread or the multi-trainer scaling experiments (paper Fig 12)
/// would be contaminated by intra-op parallelism stealing the other
/// trainers' cores. Only genuinely huge one-off kernels (whole-table
/// operations) cross this threshold and fan out via rayon.
pub const PAR_THRESHOLD: usize = 1 << 28;
