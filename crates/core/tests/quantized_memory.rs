//! End-to-end contract of `ModelConfig::quantized_memory`: the bf16
//! store must be deterministic, must halve the daemon's payload
//! traffic, and must land within a recoverable metric band of the f32
//! oracle — while the f32 default stays bit-exact (checked by every
//! pre-existing equivalence suite, which this file deliberately does
//! not weaken).

use disttgl_cluster::ClusterSpec;
use disttgl_core::{train_single, ModelConfig, ParallelConfig, TrainConfig};
use disttgl_data::generators;

fn small_cfg(parallel: ParallelConfig) -> TrainConfig {
    let mut cfg = TrainConfig::new(parallel);
    cfg.local_batch = 100;
    cfg.epochs = 2;
    cfg.base_lr = 6e-3;
    cfg.eval_negs = 9;
    cfg.eval_every_epoch = false;
    cfg
}

#[test]
fn quantized_training_is_deterministic() {
    let d = generators::wikipedia(0.005, 17);
    let model_cfg = ModelConfig::compact(d.edge_features.cols()).with_quantized_memory();
    let cfg = small_cfg(ParallelConfig::single());
    let a = train_single(&d, &model_cfg, &cfg);
    let b = train_single(&d, &model_cfg, &cfg);
    let bits = |h: &[f32]| h.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&a.loss_history), bits(&b.loss_history));
    assert_eq!(a.test_metric.to_bits(), b.test_metric.to_bits());
}

#[test]
fn quantized_metric_stays_in_recoverable_band() {
    let d = generators::wikipedia(0.005, 17);
    let exact_cfg = ModelConfig::compact(d.edge_features.cols());
    let quant_cfg = exact_cfg.clone().with_quantized_memory();
    let cfg = small_cfg(ParallelConfig::single());
    let exact = train_single(&d, &exact_cfg, &cfg);
    let quant = train_single(&d, &quant_cfg, &cfg);
    // bf16 perturbs the trajectory, so the runs differ — but the model
    // must still train: the metric may not collapse relative to the
    // oracle. (The precise per-seed deltas are measured and published
    // by the kernels benchmark, not asserted here.)
    assert!(
        (exact.test_metric - quant.test_metric).abs() < 0.15,
        "exact {} vs quantized {}",
        exact.test_metric,
        quant.test_metric
    );
    assert!(
        quant.test_metric > 0.1,
        "quantized collapsed: {}",
        quant.test_metric
    );
}

#[test]
fn quantized_daemon_payload_is_halved() {
    let d = generators::wikipedia(0.005, 23);
    let exact_cfg = ModelConfig::compact(d.edge_features.cols());
    let quant_cfg = exact_cfg.clone().with_quantized_memory();
    // Serialized reads only: speculation's delta traffic depends on
    // thread timing, which would make the payload totals racy.
    let mut cfg = small_cfg(ParallelConfig::new(1, 1, 2));
    cfg.pipeline_prefetch = false;
    cfg.speculative_gather = false;
    let spec = ClusterSpec::new(1, 2);
    let exact = disttgl_core::train_distributed(&d, &exact_cfg, &cfg, spec);
    let quant = disttgl_core::train_distributed(&d, &quant_cfg, &cfg, spec);

    // The schedule (and thus the row counts) is value-independent.
    assert_eq!(exact.daemon_rows_read, quant.daemon_rows_read);
    assert_eq!(exact.daemon_rows_written, quant.daemon_rows_written);
    assert!(exact.daemon_payload_bytes > 0);

    // Per-row payload: (d_mem + mail_dim) elems at 4 vs 2 bytes, plus
    // two f32 timestamps in both representations.
    let elems = (exact_cfg.d_mem + exact_cfg.mail_dim()) as u64;
    let rows = exact.daemon_rows_read + exact.daemon_rows_written;
    assert_eq!(exact.daemon_payload_bytes, rows * (elems * 4 + 8));
    assert_eq!(quant.daemon_payload_bytes, rows * (elems * 2 + 8));
    assert!(
        (quant.daemon_payload_bytes as f64) < 0.6 * exact.daemon_payload_bytes as f64,
        "quantized payload {} vs exact {}",
        quant.daemon_payload_bytes,
        exact.daemon_payload_bytes
    );
}

#[test]
fn exact_default_is_unchanged_by_the_flag_plumbing() {
    // `quantized_memory: false` must be the bit-exact baseline: the
    // config helper builds the same f32 store `MemoryState::new` does.
    let cfg = ModelConfig::compact(7);
    let mem = cfg.new_memory(64);
    assert!(!mem.quantized());
    assert_eq!(mem.elem_bytes(), 4);
    let quant = cfg.clone().with_quantized_memory().new_memory(64);
    assert!(quant.quantized());
    assert_eq!(quant.elem_bytes(), 2);
    assert_eq!(
        quant.row_payload_bytes() - 8,
        (mem.row_payload_bytes() - 8) / 2
    );
}
