//! Property-based invariants of the i×j×k scheduler and the planner —
//! the properties the daemon protocol's liveness and the training
//! semantics depend on.

use disttgl_cluster::ClusterSpec;
use disttgl_core::{plan, GroupSchedule, ParallelConfig, PlannerInput, StepPlan};
use proptest::prelude::*;

fn config() -> impl Strategy<Value = ParallelConfig> {
    (1usize..=4, 1usize..=4, 1usize..=4).prop_map(|(i, j, k)| ParallelConfig::new(i, j, k))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exactly one sub-group acquires at every ownership step, and the
    /// acquirer is step % j — the invariant the memory daemon's turn
    /// order relies on (violations deadlock the serialized protocol).
    #[test]
    fn exactly_one_acquirer_per_ownership_step(
        cfg in config(),
        events in 50usize..400,
        batch in 5usize..40,
        group_sel in 0usize..4,
        sweeps in 1usize..4,
    ) {
        let group = group_sel % cfg.k;
        let s = GroupSchedule::new(0..events, batch * cfg.i, &cfg, group, sweeps);
        for step in 0..s.total_turns() {
            let acquirers: Vec<usize> = (0..cfg.j)
                .filter(|&jg| matches!(s.plan(jg, step), StepPlan::Acquire { .. }))
                .collect();
            prop_assert_eq!(acquirers.len(), 1, "step {}", step);
            prop_assert_eq!(acquirers[0], step % cfg.j);
        }
        // Drain steps have no acquirer.
        for step in s.total_turns()..s.total_steps() {
            let acquirers = (0..cfg.j)
                .filter(|&jg| matches!(s.plan(jg, step), StepPlan::Acquire { .. }))
                .count();
            prop_assert_eq!(acquirers, 0, "drain step {}", step);
        }
    }

    /// Every sub-group's plans follow the pass pattern: Acquire then
    /// exactly j−1 Continues with ascending pass numbers.
    #[test]
    fn passes_follow_acquire(
        cfg in config(),
        events in 50usize..300,
        batch in 5usize..30,
        sweeps in 1usize..3,
    ) {
        let s = GroupSchedule::new(0..events, batch * cfg.i, &cfg, 0, sweeps);
        for jg in 0..cfg.j {
            let mut last_acquire: Option<usize> = None;
            for step in 0..s.total_steps() {
                match s.plan(jg, step) {
                    StepPlan::Acquire { .. } => last_acquire = Some(step),
                    StepPlan::Continue { pass, .. } => {
                        let a = last_acquire.expect("continue before acquire");
                        prop_assert_eq!(step - a, pass, "step {} jg {}", step, jg);
                        prop_assert!(pass < cfg.j);
                    }
                    StepPlan::Idle => {}
                }
            }
        }
    }

    /// Each sweep covers every training event exactly once through the
    /// acquired batches (cyclic order is a permutation).
    #[test]
    fn sweep_covers_all_events_once(
        cfg in config(),
        events in 50usize..300,
        batch in 5usize..30,
        group_sel in 0usize..4,
    ) {
        let group = group_sel % cfg.k;
        let s = GroupSchedule::new(0..events, batch * cfg.i, &cfg, group, 1);
        let mut covered = vec![0u32; events];
        for step in 0..s.total_turns() {
            let jg = step % cfg.j;
            if let StepPlan::Acquire { batch, .. } = s.plan(jg, step) {
                for e in batch {
                    covered[e] += 1;
                }
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1), "coverage {:?}", &covered[..10.min(events)]);
    }

    /// Daemon epoch lengths always sum to the total turn count and
    /// reset exactly at the wrap.
    #[test]
    fn daemon_epochs_partition_turns(
        cfg in config(),
        events in 50usize..300,
        batch in 5usize..30,
        group_sel in 0usize..4,
        sweeps in 1usize..4,
    ) {
        let group = group_sel % cfg.k;
        let s = GroupSchedule::new(0..events, batch * cfg.i, &cfg, group, sweeps);
        let lens = s.daemon_epoch_lengths();
        prop_assert_eq!(lens.iter().sum::<usize>(), s.total_turns());
        prop_assert!(lens.iter().all(|&l| l > 0), "zero-length epoch: {:?}", lens);
    }

    /// The planner always returns a configuration that exactly fills
    /// the cluster and respects k ≥ p whenever feasible.
    #[test]
    fn planner_fills_world(
        machines in 1usize..=4,
        gpus in 1usize..=8,
        max_batch in 100usize..10_000,
        saturation in 100usize..2_000,
        replicas in 1usize..=8,
    ) {
        let spec = ClusterSpec::new(machines, gpus);
        let cfg = plan(&PlannerInput {
            spec,
            max_global_batch: max_batch,
            gpu_saturation_batch: saturation,
            replicas_per_machine: replicas,
        });
        prop_assert_eq!(cfg.world(), machines * gpus);
        // k ≥ p whenever the per-group trainer count allows it.
        let per_group = machines * gpus / cfg.i;
        if per_group >= machines && per_group.is_multiple_of(machines) && replicas >= 1 {
            prop_assert!(
                cfg.k >= machines || cfg.k == per_group,
                "k {} < machines {} (cfg {:?})", cfg.k, machines, cfg
            );
        }
    }

    /// Rank decomposition is a bijection onto (group, jg, ig).
    #[test]
    fn rank_decomposition_bijective(cfg in config()) {
        let mut seen = std::collections::HashSet::new();
        for rank in 0..cfg.world() {
            let (g, jg, ig) = cfg.decompose(rank);
            prop_assert!(g < cfg.k && jg < cfg.j && ig < cfg.i);
            prop_assert!(seen.insert((g, jg, ig)), "duplicate for rank {}", rank);
        }
        prop_assert_eq!(seen.len(), cfg.world());
    }
}
