//! Property-based recovery-store tests: for ANY population of
//! checkpoint files and ANY subset of them torn at arbitrary byte
//! offsets, `CheckpointStore::load_latest` recovers exactly the newest
//! intact checkpoint, and retention GC never deletes the last good one
//! — the two invariants the supervised-rollback loop leans on.

use disttgl_core::{CheckpointStore, ConvergencePoint, TrainCheckpoint};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn case_dir(tag: &str) -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!(
        "disttgl_proptest_recover_{tag}_{}_{n}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn ckpt_of(units: usize) -> TrainCheckpoint {
    TrainCheckpoint {
        fingerprint: "prop\nrecover".into(),
        units_done: units,
        iteration: units * 7,
        events_trained: units as u64 * 64,
        weights: vec![units as f32 * 0.25; 5],
        adam_t: units as u64,
        adam_state: vec![0.125; 10],
        loss_history: vec![0.5; units],
        convergence: vec![ConvergencePoint {
            iteration: units,
            wall_secs: units as f64,
            metric: 0.6,
        }],
        static_table: None,
        memories: Vec::new(),
        start_turns: Vec::new(),
    }
}

/// Per-file damage: `None` leaves the file intact, `Some(frac)` keeps
/// only that fraction of its bytes (always a strict prefix, so the
/// framed digest/length checks must reject it). Encoded as a raw draw
/// in `0.0..2.0` — values at or above 1.0 mean "intact", below it the
/// tear fraction — because the shim has no `option::of` combinator.
fn damage_plan(n: usize) -> impl Strategy<Value = Vec<Option<f64>>> {
    proptest::collection::vec(0.0f64..2.0, n..=n).prop_map(|raw| {
        raw.into_iter()
            .map(|f| (f < 1.0).then_some(f * 0.98))
            .collect()
    })
}

fn tear(path: &PathBuf, frac: f64) {
    let bytes = std::fs::read(path).unwrap();
    let keep = ((bytes.len() as f64 * frac) as usize).min(bytes.len() - 1);
    std::fs::write(path, &bytes[..keep]).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tearing ANY subset of the files (possibly all of them) leaves
    /// `load_latest` returning exactly the newest intact checkpoint —
    /// or `Ok(None)` when nothing survives — never an error or a stale
    /// pick.
    #[test]
    fn load_latest_recovers_newest_valid_under_truncation(
        n in 1usize..6,
        plan in damage_plan(6),
    ) {
        let dir = case_dir("load");
        let store = CheckpointStore::open(&dir, None).unwrap();
        for units in 1..=n {
            store.save_train(&ckpt_of(units)).unwrap();
        }
        for units in 1..=n {
            if let Some(frac) = plan[units - 1] {
                tear(&store.train_path(units), frac);
            }
        }
        let expect = (1..=n).rev().find(|u| plan[u - 1].is_none());
        match store.load_latest().unwrap() {
            Some((ckpt, path)) => {
                prop_assert_eq!(Some(ckpt.units_done), expect);
                prop_assert_eq!(path, store.train_path(ckpt.units_done));
                prop_assert_eq!(ckpt.iteration, ckpt.units_done * 7);
            }
            None => prop_assert_eq!(expect, None),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// For ANY damage pattern and ANY retention bound, a GC sweep
    /// never deletes the newest valid checkpoint: whatever
    /// `load_latest` answered before the sweep, it answers after.
    #[test]
    fn gc_never_deletes_the_newest_valid_checkpoint(
        n in 1usize..6,
        plan in damage_plan(6),
        retain in 1usize..4,
    ) {
        let dir = case_dir("gc");
        // Populate without retention so every unit exists, then damage.
        let full = CheckpointStore::open(&dir, None).unwrap();
        for units in 1..=n {
            full.save_train(&ckpt_of(units)).unwrap();
        }
        for units in 1..=n {
            if let Some(frac) = plan[units - 1] {
                tear(&full.train_path(units), frac);
            }
        }
        let store = CheckpointStore::open(&dir, Some(retain)).unwrap();
        let before = store.load_latest().unwrap().map(|(c, _)| c.units_done);
        store.gc().unwrap();
        let after = store.load_latest().unwrap().map(|(c, _)| c.units_done);
        prop_assert_eq!(before, after, "GC changed the recovery point");
        // And the bound is honored up to that one rescue file.
        let kept = store.list_train().unwrap().len();
        prop_assert!(kept <= retain + 1, "kept {} files with retain {}", kept, retain);
        // Repeated sweeps are stable (idempotent once over budget).
        store.gc().unwrap();
        prop_assert_eq!(store.load_latest().unwrap().map(|(c, _)| c.units_done), after);
        std::fs::remove_dir_all(&dir).ok();
    }
}
