//! Property-based invariants of the union-frontier occurrence layout:
//! the multi-hop [`ReadoutIndex`] fold and the `Matrix`
//! expand/fold-by-index round-trips it drives. These are the
//! structural guarantees the L-layer embedding stack's "one memory
//! gather per batch" contract rests on (see `core::batch`).

use disttgl_core::{occurrence_nodes, occurrence_rows, ReadoutIndex};
use disttgl_graph::{Event, RecentNeighborSampler, TCsr, TemporalGraph};
use disttgl_tensor::Matrix;
use proptest::prelude::*;

/// A random small temporal graph: `n` nodes, `m` events with arbitrary
/// endpoints and strictly increasing times.
fn graph_strategy() -> impl Strategy<Value = TemporalGraph> {
    (2usize..24, 1usize..80).prop_flat_map(|(n, m)| {
        proptest::collection::vec((0u64..n as u64, 0u64..n as u64), m..=m).prop_map(move |pairs| {
            let events: Vec<Event> = pairs
                .iter()
                .enumerate()
                .map(|(i, &(s, d))| Event {
                    src: s as u32,
                    dst: d as u32,
                    t: (i + 1) as f32,
                    eid: i as u32,
                })
                .collect();
            TemporalGraph::new(n, events)
        })
    })
}

/// Random per-hop fanout vectors, explicitly including fanout 0 — a
/// zero-width hop collapses every deeper frontier to nothing and the
/// index must stay consistent through it.
fn fanouts_strategy() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..4, 1usize..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every occurrence row at every hop maps back to exactly its own
    /// node's unique row, unique ids are first-occurrence-ordered and
    /// duplicate-free, and the map covers the whole union frontier.
    #[test]
    fn union_readout_index_maps_every_hop_occurrence(
        g in graph_strategy(),
        fanouts in fanouts_strategy(),
        n_roots in 1usize..12,
        seed in 0u64..1000,
    ) {
        let csr = TCsr::build(&g);
        let sampler = RecentNeighborSampler::with_fanouts(fanouts.clone());
        let m = g.num_events();
        let roots: Vec<u32> = (0..n_roots)
            .map(|i| g.events()[(seed as usize + i) % m].src)
            .collect();
        let times: Vec<f32> = (0..n_roots)
            .map(|i| ((seed as usize + 3 * i) % (m + 2)) as f32 + 0.5)
            .collect();

        let hops = sampler.sample_hops(&csr, &roots, &times);
        prop_assert_eq!(hops.len(), fanouts.len());
        // Frontier sizes multiply: |F_{d+1}| = |F_d| · k_d.
        let mut f = n_roots;
        for (d, hop) in hops.iter().enumerate() {
            prop_assert_eq!(hop.num_roots(), f, "hop {} roots", d);
            f *= fanouts[d];
            prop_assert_eq!(hop.num_slots(), f, "hop {} slots", d);
        }

        let occ = occurrence_nodes(&roots, &hops);
        prop_assert_eq!(occ.len(), occurrence_rows(n_roots, &hops));
        let idx = ReadoutIndex::build(&occ);
        prop_assert_eq!(idx.occ_to_unique.len(), occ.len());
        prop_assert!(idx.num_unique() <= occ.len());

        // Round trip: occurrence → unique row → the same node.
        for (i, &node) in occ.iter().enumerate() {
            let u = idx.occ_to_unique[i] as usize;
            prop_assert!(u < idx.num_unique());
            prop_assert_eq!(idx.unique_nodes[u], node, "occurrence {}", i);
        }
        // First-occurrence order, no duplicates.
        let mut seen = std::collections::HashSet::new();
        let mut next = 0u32;
        for (i, &node) in occ.iter().enumerate() {
            if seen.insert(node) {
                prop_assert_eq!(idx.occ_to_unique[i], next, "first occurrence {}", i);
                next += 1;
            }
        }
        prop_assert_eq!(next as usize, idx.num_unique());
    }

    /// `expand_rows` then `fold_rows_by_index` over the union map is
    /// exact multiplicity accumulation: each unique row comes back as
    /// (occurrence count) × itself, and expansion replicates rows
    /// bit-identically. Integer-valued rows keep the float sums exact.
    #[test]
    fn union_fold_expand_round_trip(
        g in graph_strategy(),
        fanouts in fanouts_strategy(),
        n_roots in 1usize..10,
        cols in 1usize..5,
        seed in 0u64..1000,
    ) {
        let csr = TCsr::build(&g);
        let sampler = RecentNeighborSampler::with_fanouts(fanouts);
        let m = g.num_events();
        let roots: Vec<u32> = (0..n_roots)
            .map(|i| g.events()[(seed as usize + 2 * i) % m].dst)
            .collect();
        let times: Vec<f32> = (0..n_roots).map(|i| (i + 1) as f32 * 1.5).collect();
        let hops = sampler.sample_hops(&csr, &roots, &times);
        let occ = occurrence_nodes(&roots, &hops);
        let idx = ReadoutIndex::build(&occ);

        // Unique-row matrix with distinctive integer rows.
        let uniq_rows = Matrix::from_fn(idx.num_unique(), cols, |r, c| (r * 7 + c + 1) as f32);
        let mut expanded = Matrix::default();
        uniq_rows.expand_rows(&idx.occ_to_unique, &mut expanded);
        prop_assert_eq!(expanded.rows(), occ.len());
        for (i, &u) in idx.occ_to_unique.iter().enumerate() {
            prop_assert_eq!(expanded.row(i), uniq_rows.row(u as usize), "occurrence {}", i);
        }

        // Fold the expansion back: multiplicity × original, exactly.
        let mut counts = vec![0usize; idx.num_unique()];
        for &u in &idx.occ_to_unique {
            counts[u as usize] += 1;
        }
        let mut folded = Matrix::default();
        expanded.fold_rows_by_index(&idx.occ_to_unique, idx.num_unique(), &mut folded);
        prop_assert_eq!(folded.rows(), idx.num_unique());
        for (u, &count) in counts.iter().enumerate() {
            for c in 0..cols {
                let expect = count as f32 * uniq_rows.get(u, c);
                prop_assert_eq!(folded.get(u, c), expect, "unique {} col {}", u, c);
            }
        }
    }
}
