//! Property-based checkpoint tests: the framed binary format must
//! round-trip arbitrary training/serving state exactly — node-memory
//! contents, checksums, and version vectors survive save → load bit
//! for bit — and the dynamic T-CSR rebuilt from checkpointed parts is
//! indistinguishable from the stream that produced it, for any event
//! stream and any slab chunking.

use disttgl_core::{ServeCheckpoint, TrainCheckpoint};
use disttgl_graph::{DynamicTCsr, Event, TemporalAdjacency};
use disttgl_mem::{MemoryState, MemoryWrite};
use disttgl_tensor::Matrix;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn case_path(tag: &str) -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "disttgl_proptest_{tag}_{}_{n}.bin",
        std::process::id()
    ))
}

#[derive(Clone, Debug)]
struct Step {
    node: u32,
    value: f32,
    ts: f32,
}

fn steps(max: usize, nodes: u32) -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        (0..nodes, -10.0f32..10.0, 0.0f32..100.0).prop_map(|(node, value, ts)| Step {
            node,
            value,
            ts,
        }),
        1..=max,
    )
}

fn memory_of(script: &[Step], nodes: usize, d_mem: usize, mail_dim: usize) -> MemoryState {
    let mut m = MemoryState::new(nodes, d_mem, mail_dim);
    for s in script {
        m.write(&MemoryWrite {
            nodes: vec![s.node],
            mem: Matrix::full(1, d_mem, s.value),
            mem_ts: vec![s.ts],
            mail: Matrix::full(1, mail_dim, s.value * 0.5),
            mail_ts: vec![s.ts],
        });
    }
    m
}

/// A chronological event stream over `nodes` nodes: sorted timestamps,
/// arbitrary endpoints and eids.
fn event_stream(max: usize, nodes: u32) -> impl Strategy<Value = Vec<Event>> {
    proptest::collection::vec((0..nodes, 0..nodes, 0.0f32..1000.0), 0..=max).prop_map(|raw| {
        let mut ts: Vec<f32> = raw.iter().map(|&(_, _, t)| t).collect();
        ts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        raw.iter()
            .zip(ts)
            .enumerate()
            .map(|(i, (&(src, dst, _), t))| Event {
                src,
                dst,
                t,
                eid: i as u32,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// TrainCheckpoint save → load preserves every captured memory
    /// replica exactly: content checksum AND per-node version vector
    /// (the speculative protocol's correctness hinges on versions).
    #[test]
    fn train_checkpoint_roundtrip_preserves_memory_and_versions(
        script_a in steps(24, 8),
        script_b in steps(24, 8),
        weights in proptest::collection::vec(-1.0f32..1.0, 1..32),
    ) {
        let (nodes, d_mem, mail_dim) = (8usize, 3usize, 2usize);
        let memories = vec![
            memory_of(&script_a, nodes, d_mem, mail_dim),
            memory_of(&script_b, nodes, d_mem, mail_dim),
        ];
        let ckpt = TrainCheckpoint {
            fingerprint: "proptest".into(),
            units_done: script_a.len(),
            iteration: script_a.len() * 3,
            events_trained: script_b.len() as u64,
            weights: weights.clone(),
            adam_t: 7,
            adam_state: weights.iter().map(|w| w * 2.0).collect(),
            loss_history: weights.clone(),
            convergence: Vec::new(),
            static_table: None,
            memories,
            start_turns: vec![script_a.len() as u64; 2],
        };
        let path = case_path("train");
        ckpt.save(&path).unwrap();
        let loaded = TrainCheckpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        prop_assert_eq!(&loaded.fingerprint, &ckpt.fingerprint);
        prop_assert_eq!(&loaded.weights, &ckpt.weights);
        prop_assert_eq!(&loaded.adam_state, &ckpt.adam_state);
        prop_assert_eq!(&loaded.start_turns, &ckpt.start_turns);
        prop_assert_eq!(loaded.memories.len(), ckpt.memories.len());
        let all: Vec<u32> = (0..nodes as u32).collect();
        for (l, o) in loaded.memories.iter().zip(&ckpt.memories) {
            prop_assert_eq!(l.checksum(), o.checksum(), "content digest diverged");
            let lv = l.read_versioned(&all);
            let ov = o.read_versioned(&all);
            prop_assert_eq!(lv.versions, ov.versions, "version vector diverged");
            prop_assert_eq!(lv.readout.mem, ov.readout.mem);
            prop_assert_eq!(lv.readout.mail_ts, ov.readout.mail_ts);
        }
    }

    /// ServeCheckpoint save → load → `DynamicTCsr::from_parts` rebuilds
    /// an adjacency indistinguishable from the live stream that
    /// produced it, for any chronological event stream and any slab
    /// chunking (the chunk boundaries must leave no trace).
    #[test]
    fn serve_checkpoint_rebuilds_adjacency_exactly(
        events in event_stream(40, 6),
        chunk in 1usize..9,
        script in steps(12, 6),
    ) {
        let nodes = 6usize;
        let mut adj = DynamicTCsr::new(nodes);
        for slab in events.chunks(chunk) {
            adj.append_events(slab);
        }
        let memory = memory_of(&script, nodes, 2, 3);
        let ckpt = ServeCheckpoint {
            fingerprint: "proptest".into(),
            memory,
            adj: (0..nodes as u32).map(|v| adj.neighbors(v).to_vec()).collect(),
            num_events: adj.num_events(),
            stream_head: adj.stream_head(),
            ingested: events.len() as u64,
        };
        let path = case_path("serve");
        ckpt.save(&path).unwrap();
        let loaded = ServeCheckpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        prop_assert_eq!(loaded.memory.checksum(), ckpt.memory.checksum());
        let rebuilt = DynamicTCsr::from_parts(
            loaded.adj, loaded.num_events, loaded.stream_head,
        ).unwrap();
        prop_assert_eq!(rebuilt.num_events(), adj.num_events());
        prop_assert_eq!(rebuilt.stream_head(), adj.stream_head());
        for v in 0..nodes as u32 {
            prop_assert_eq!(rebuilt.neighbors(v), adj.neighbors(v), "node {}", v);
        }
    }

    /// `from_parts` validation: lying about the event count is caught
    /// (every entry is accounted, so restore can't silently drop or
    /// invent graph structure).
    #[test]
    fn from_parts_rejects_inconsistent_event_count(
        events in event_stream(20, 5),
        lie in 1usize..5,
    ) {
        if events.is_empty() {
            return Ok(()); // the lie needs at least one real entry
        }
        let nodes = 5usize;
        let mut adj = DynamicTCsr::new(nodes);
        adj.append_events(&events);
        let parts: Vec<_> = (0..nodes as u32).map(|v| adj.neighbors(v).to_vec()).collect();
        let wrong = adj.num_events() + lie;
        prop_assert!(DynamicTCsr::from_parts(parts, wrong, adj.stream_head()).is_err());
    }
}
