//! # disttgl-core
//!
//! The DistTGL training system (paper §3): the TGN-attn model enhanced
//! with static node memory, the three parallel training strategies
//! (mini-batch × epoch × memory parallelism), the optimal-configuration
//! planner, and the distributed training loop that wires them to the
//! memory daemon (`disttgl-mem`) and the simulated cluster
//! (`disttgl-cluster`).
//!
//! Entry points:
//! * [`TrainConfig`] / [`ParallelConfig`] / [`plan`] — configure a run;
//! * [`train_distributed`] — the DistTGL trainer (any `i × j × k`);
//! * [`train_single`] — the sequential reference trainer (exact
//!   single-GPU semantics, also the correctness oracle for schedules);
//! * [`baseline`] — TGN- and TGL-style baselines for Figures 1 and 12;
//! * [`evaluate`] — MRR / F1-micro evaluation.

mod batch;
pub mod baseline;
mod config;
mod dist;
mod eval;
mod metrics;
mod model;
mod sched;
mod single;
mod static_mem;

pub use batch::{BatchPreparer, MemoryAccess, NegativePart, PositivePart, PreparedBatch};
pub use config::{
    plan, plan_from_graph, CombPolicy, ModelConfig, ParallelConfig, PlannerInput, TrainConfig,
};
pub use dist::train_distributed;
pub use eval::{evaluate, replay_memory, EvalResult};
pub use metrics::{ConvergencePoint, RunResult, TimingBreakdown};
pub use model::{StepOutput, TgnModel};
pub use sched::{GroupSchedule, StepPlan};
pub use single::train_single;
pub use static_mem::StaticMemory;
