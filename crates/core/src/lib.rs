//! # disttgl-core
//!
//! The DistTGL training system (paper §3): the TGN-attn model enhanced
//! with static node memory, the three parallel training strategies
//! (mini-batch × epoch × memory parallelism), the optimal-configuration
//! planner, and the distributed training loop that wires them to the
//! memory daemon (`disttgl-mem`) and the simulated cluster
//! (`disttgl-cluster`).
//!
//! Entry points:
//! * [`TrainConfig`] / [`ParallelConfig`] / [`plan`] — configure a run;
//! * [`train_distributed`] — the DistTGL trainer (any `i × j × k`),
//!   with pipelined batch prefetch on by default
//!   (`TrainConfig::pipeline_prefetch`);
//! * [`train_single`] — the sequential reference trainer (exact
//!   single-GPU semantics, also the correctness oracle for schedules
//!   and for the pipelined executor);
//! * [`train_single_pipelined`] — the same semantics with mini-batch
//!   preparation overlapped behind compute;
//! * [`baseline`] — TGN- and TGL-style baselines for Figures 1 and 12;
//! * [`evaluate`] — MRR / F1-micro evaluation;
//! * [`InferenceEngine`] — the task-agnostic, gradient-free forward
//!   walk (memory gather → folded GRU → L-layer attention → decoder)
//!   shared by evaluation and serving;
//! * [`serve`] — the streaming serving plane: a [`serve::ServeSession`]
//!   ingests live events into an appendable adjacency + live node
//!   memory and answers micro-batched link-score/embedding queries,
//!   bit-identical to [`evaluate`]'s offline replay.
//!
//! ## The pipelined batch-prefetch executor
//!
//! Mini-batch preparation decomposes into a **memory-independent phase
//! 1** (neighbor sampling over the immutable T-CSR, negative slicing,
//! edge-feature and label gathers — [`BatchPreparer::prepare_static`])
//! and a **memory-dependent phase 2** (the single serialized
//! node-memory row gather — [`BatchPreparer::finish`]). Phase 1 of
//! batch *t + 1* runs on a [`BatchPrefetcher`] worker thread while the
//! trainer computes batch *t* (double buffering: exactly one request
//! in flight). Phase 2 must observe batch *t*'s `MemoryWrite`; the
//! single-GPU executor satisfies that *and* still overlaps the gather
//! through **eager-write scheduling** — the write exists right after
//! the forward pass ([`TgnModel::train_step_eager_write`]), is applied
//! immediately (nothing reads memory in between), and the worker then
//! gathers batch *t + 1*'s rows during the backward pass, exactly. The
//! distributed trainer prefetches phase 1 per lane and overlaps phase
//! 2 through the memory daemon's **versioned service**
//! (`TrainConfig::speculative_gather`, default on): the moment phase 1
//! lands a lane posts a speculative out-of-turn gather, and its
//! serialized Acquire slot only pays the fused delta repair of rows
//! written since — bit-identical by the version contract (see
//! `disttgl_mem::daemon` and `tests/daemon_overlap_equivalence.rs`).
//! See [`pipeline`] for the full architecture notes and
//! `tests/pipeline_equivalence.rs` for the bit-identity proof against
//! the sequential oracle.

pub mod baseline;
mod batch;
pub mod checkpoint;
mod config;
mod dist;
mod engine;
mod eval;
mod metrics;
mod model;
pub mod pipeline;
pub mod recover;
mod sched;
pub mod serve;
mod single;
mod static_mem;

pub use checkpoint::{CheckpointError, ServeCheckpoint, TrainCheckpoint};
pub use serve::{
    ConcurrentOptions, ConcurrentServe, ConcurrentStats, EventFault, IngestError, ReaderContext,
    ServeError, SnapshotAnswer, SnapshotDrift,
};

pub use batch::{
    frontier_sizes, occurrence_nodes, occurrence_rows, patch_readout, BatchPreparer, MemoryAccess,
    NegativePart, PositivePart, PreparedBatch, ReadoutIndex, ReadoutView, StaticBatch,
};
pub use config::{
    plan, plan_from_graph, CombPolicy, ConfigError, ModelConfig, ParallelConfig, PlannerInput,
    StalenessCompensation, TrainConfig,
};
pub use dist::train_distributed;
pub use engine::{InferenceEngine, PartEmbedding, PartRef};
pub use eval::{evaluate, replay_memory, EvalResult};
pub use metrics::{
    AbortCause, AbortReport, ConvergencePoint, LatencyHistogram, LatencySummary, RunResult,
    TimingBreakdown,
};
pub use model::{StepOutput, TgnModel};
pub use pipeline::{BatchPrefetcher, PrefetchRequest, PrefetchedBatch, SharedMemory};
pub use recover::{
    train_supervised, CheckpointStore, RecoveryReport, RetryPolicy, SuperviseError, SupervisedRun,
};
pub use sched::{GroupSchedule, StepPlan};
pub use single::{
    train_single, train_single_pipelined, train_single_pipelined_traced, train_single_traced,
};
pub use static_mem::StaticMemory;
