//! Self-healing training: the durable checkpoint store and the
//! supervised rollback-and-resume driver.
//!
//! PR 6 made failure *visible* — seeded fault plans, completion-wins
//! barriers, typed daemon errors, bit-identical checkpoint/resume.
//! This module makes the system *act* on failure, in two layers.
//!
//! # [`CheckpointStore`]: durability + fallback
//!
//! A directory of framed checkpoint files (`ckpt_XXXX.bin` training,
//! `serve_XXXXXXXX.bin` serving) with three guarantees:
//!
//! * **Atomic writes** — every save goes through the `.tmp` +
//!   rename dance of `core::checkpoint`, so a crash mid-save never
//!   clobbers an existing file.
//! * **Validated fallback** — [`CheckpointStore::load_latest`] scans
//!   newest-first and checksum-validates each candidate (header magic,
//!   version, length, FNV-1a payload digest), skipping torn or
//!   bit-rotted files until it finds the newest *good* checkpoint.
//!   A directory full of garbage yields `Ok(None)` — fresh start —
//!   never a panic.
//! * **Safe retention** — [`CheckpointStore::gc`] keeps the newest
//!   `retain` files, but **never deletes the newest file that
//!   validates**: if every file inside the retention window is
//!   corrupt, the newest good one outside it survives the sweep
//!   (`crates/core/tests/proptest_recover.rs` pins both properties
//!   under arbitrary truncation).
//!
//! # [`train_supervised`]: detect → classify → roll back → resume
//!
//! A driver loop around [`train_distributed`]. When an attempt aborts
//! (lane crash via `CommError::Aborted`, daemon shutdown/timeout via
//! `DaemonError`, or a torn checkpoint write), the supervisor:
//!
//! 1. **classifies** the failure from the run's per-rank
//!    [`AbortReport`]s — injected crash, daemon death, torn write —
//!    all transient (the simulated lanes and daemons are
//!    re-formable); store-level I/O or fingerprint failures are fatal;
//! 2. **rolls back** to the store's newest good checkpoint (or a
//!    fresh start when none exists yet);
//! 3. **strips fired faults** from the plan: an aborted attempt died
//!    at the *earliest* remaining trigger (completion-wins barriers
//!    make the abort point deterministic), so exactly the faults at
//!    or before that trigger are spent — later ones stay live for
//!    later attempts (multi-crash plans recover one incident at a
//!    time);
//! 4. **re-forms the group and resumes**: a fresh communicator group,
//!    fresh daemons restored from the checkpoint's captured replicas,
//!    every rank's weights/optimizer rolled back together.
//!
//! The loop runs until completion or until the
//! [`RetryPolicy::max_restarts`] budget is spent, recording one
//! [`RecoveryReport`] per incident. Exhaustion returns the typed
//! [`SuperviseError::RestartBudgetExhausted`] — never a panic.
//!
//! **The recovery contract**: because checkpoints land only at
//! crash-consistent schedule boundaries and every random stream is
//! re-derived from the seed, recovery is pure replay. A supervised run
//! under any seeded fault plan that completes is **bit-identical to
//! the fault-free oracle** — same losses, same metrics, same final
//! memory digests (`tests/integration_failure_injection.rs`).

use crate::checkpoint::{validate_file, CheckpointError, ServeCheckpoint, TrainCheckpoint};
use crate::config::{ModelConfig, TrainConfig};
use crate::dist::train_distributed;
use crate::metrics::{AbortCause, AbortReport, RunResult};
use crate::sched::GroupSchedule;
use disttgl_cluster::{ClusterSpec, FaultKind, FaultPlan};
use disttgl_data::Dataset;
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const TRAIN_PREFIX: &str = "ckpt_";
const SERVE_PREFIX: &str = "serve_";

/// A durable directory of checkpoints: atomic saves, last-k retention
/// that never deletes the last good file, and a checksum-validating
/// newest-first load scan. See the module docs for the contract.
#[derive(Clone, Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    retain: Option<usize>,
}

impl CheckpointStore {
    /// Opens (creating if needed) the store at `dir`. `retain` bounds
    /// the file count per kind (`None` keeps everything).
    pub fn open(dir: impl Into<PathBuf>, retain: Option<usize>) -> Result<Self, CheckpointError> {
        if let Some(k) = retain {
            assert!(k >= 1, "retention must keep at least one checkpoint");
        }
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir, retain })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the training checkpoint for `units` completed units
    /// (same naming as `checkpoint::checkpoint_path`).
    pub fn train_path(&self, units: usize) -> PathBuf {
        self.dir.join(format!("{TRAIN_PREFIX}{units:04}.bin"))
    }

    /// Path of the serving checkpoint at ingest sequence `seq`.
    pub fn serve_path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("{SERVE_PREFIX}{seq:08}.bin"))
    }

    /// Training checkpoint files present, oldest → newest by unit.
    pub fn list_train(&self) -> Result<Vec<(u64, PathBuf)>, CheckpointError> {
        self.list_with(TRAIN_PREFIX)
    }

    /// Serving checkpoint files present, oldest → newest by sequence.
    pub fn list_serve(&self) -> Result<Vec<(u64, PathBuf)>, CheckpointError> {
        self.list_with(SERVE_PREFIX)
    }

    fn list_with(&self, prefix: &str) -> Result<Vec<(u64, PathBuf)>, CheckpointError> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(seq) = name
                .strip_prefix(prefix)
                .and_then(|rest| rest.strip_suffix(".bin"))
                .and_then(|digits| digits.parse::<u64>().ok())
            else {
                continue;
            };
            out.push((seq, entry.path()));
        }
        out.sort();
        Ok(out)
    }

    /// Saves a training checkpoint atomically under its unit-derived
    /// name, then runs retention GC. Returns the published path.
    pub fn save_train(&self, ckpt: &TrainCheckpoint) -> Result<PathBuf, CheckpointError> {
        let path = self.train_path(ckpt.units_done);
        ckpt.save(&path)?;
        self.gc()?;
        Ok(path)
    }

    /// Saves a serving checkpoint atomically under its ingest-sequence
    /// name, then runs retention GC. Returns the published path.
    pub fn save_serve(&self, ckpt: &ServeCheckpoint) -> Result<PathBuf, CheckpointError> {
        let path = self.serve_path(ckpt.ingested);
        ckpt.save(&path)?;
        self.gc()?;
        Ok(path)
    }

    /// The newest training checkpoint that fully validates, scanning
    /// newest-first past torn/corrupt/unreadable files. `Ok(None)`
    /// when no good checkpoint exists (fresh start).
    pub fn load_latest(&self) -> Result<Option<(TrainCheckpoint, PathBuf)>, CheckpointError> {
        for (_, path) in self.list_train()?.into_iter().rev() {
            if let Ok(ckpt) = TrainCheckpoint::load(&path) {
                return Ok(Some((ckpt, path)));
            }
        }
        Ok(None)
    }

    /// The newest serving checkpoint that fully validates (same scan
    /// semantics as [`CheckpointStore::load_latest`]).
    pub fn load_latest_serve(&self) -> Result<Option<(ServeCheckpoint, PathBuf)>, CheckpointError> {
        for (_, path) in self.list_serve()?.into_iter().rev() {
            if let Ok(ckpt) = ServeCheckpoint::load(&path) {
                return Ok(Some((ckpt, path)));
            }
        }
        Ok(None)
    }

    /// Retention GC over both kinds: deletes files beyond the newest
    /// `retain` of each prefix — except the newest file that
    /// *validates*, which always survives (deleting the last good
    /// checkpoint to honor a retention count would be self-defeating).
    /// No-op when retention is unbounded. Returns the number of files
    /// deleted.
    pub fn gc(&self) -> Result<usize, CheckpointError> {
        let Some(keep) = self.retain else {
            return Ok(0);
        };
        let mut deleted = 0;
        for prefix in [TRAIN_PREFIX, SERVE_PREFIX] {
            let files = self.list_with(prefix)?;
            if files.len() <= keep {
                continue;
            }
            let newest_first: Vec<&PathBuf> = files.iter().rev().map(|(_, p)| p).collect();
            let newest_valid = newest_first.iter().position(|p| validate_file(p).is_ok());
            for (idx, path) in newest_first.iter().enumerate() {
                if idx < keep || Some(idx) == newest_valid {
                    continue;
                }
                std::fs::remove_file(path)?;
                deleted += 1;
            }
        }
        Ok(deleted)
    }
}

/// Restart budget and pacing for [`train_supervised`].
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Maximum restarts after the initial attempt; the supervisor
    /// makes at most `max_restarts + 1` attempts total.
    pub max_restarts: usize,
    /// Sleep between detecting an abort and launching the resumed
    /// attempt (rate-limits tight crash loops; zero in tests).
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_restarts: 3,
            backoff: Duration::ZERO,
        }
    }
}

/// One recovery incident: what failed, where the supervisor rolled
/// back to, and what the crash cost.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// 1-based incident index (equals the restart count so far).
    pub restart: usize,
    /// Root-cause classification from the aborted run's reports.
    pub cause: AbortCause,
    /// Rank the root cause surfaced on, when known.
    pub rank: Option<usize>,
    /// Checkpoint unit rolled back to; `None` means fresh start (no
    /// good checkpoint existed yet).
    pub resumed_from_unit: Option<usize>,
    /// Steps the aborted attempt had completed beyond the rollback
    /// point — the replay cost of this incident, bounded by the
    /// checkpoint cadence.
    pub steps_lost: usize,
    /// Supervisor bookkeeping time for this incident: abort detection
    /// → store scan → plan stripping → resumed attempt launched.
    pub rollback_secs: f64,
}

/// A completed supervised run: the (oracle-bit-identical) result plus
/// every recovery incident survived along the way.
#[derive(Clone, Debug)]
pub struct SupervisedRun {
    /// The final run result, bit-identical to a fault-free run.
    pub result: RunResult,
    /// One report per restart, in incident order (empty when the first
    /// attempt completed).
    pub incidents: Vec<RecoveryReport>,
}

/// Why [`train_supervised`] gave up. Structured — the supervisor never
/// panics on failures it is supposed to manage.
#[derive(Debug)]
pub enum SuperviseError {
    /// Every restart in the budget was spent and the run still
    /// aborted. Carries the incident history and the last attempt's
    /// partial result.
    RestartBudgetExhausted {
        /// Incidents recovered from before the budget ran out.
        incidents: Vec<RecoveryReport>,
        /// The final aborted attempt's partial result.
        last: Box<RunResult>,
    },
    /// A non-transient failure: the checkpoint store is unusable
    /// (directory I/O) or its newest good checkpoint belongs to a
    /// different configuration. Retrying cannot help.
    Fatal {
        /// Incidents recovered from before the fatal failure.
        incidents: Vec<RecoveryReport>,
        /// The underlying store/fingerprint error.
        error: CheckpointError,
    },
}

impl fmt::Display for SuperviseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuperviseError::RestartBudgetExhausted { incidents, .. } => write!(
                f,
                "restart budget exhausted after {} recovery attempt(s)",
                incidents.len()
            ),
            SuperviseError::Fatal { error, .. } => {
                write!(f, "fatal (non-transient) recovery failure: {error}")
            }
        }
    }
}

impl std::error::Error for SuperviseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SuperviseError::Fatal { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// Picks the root cause out of a run's abort reports: any non-peer
/// cause beats the bystander [`AbortCause::PeerAbort`] entries.
fn classify(reports: &[AbortReport]) -> (AbortCause, Option<usize>) {
    reports
        .iter()
        .find(|r| r.cause != AbortCause::PeerAbort)
        .or_else(|| reports.first())
        .map(|r| (r.cause, Some(r.rank)))
        .unwrap_or((AbortCause::PeerAbort, None))
}

/// Global step at which a fault deterministically aborts a run, on a
/// scale where step `s`'s boundary events sit between `s - 1` and `s`:
/// a daemon with `fail_after_turns = t` dies before any step-`t`
/// memory request is served (`t - 0.5`), a torn checkpoint at unit `u`
/// fires at the boundary after step `u·b - 1` but still before a
/// daemon death scheduled for the same boundary (`u·b - 0.25`), and a
/// lane crash at step `s` fires at the top of step `s` (`s`).
/// `DelaySpeculation` never aborts (`None`).
fn abort_trigger(fault: &FaultKind, steps_per_unit: usize) -> Option<f64> {
    match *fault {
        FaultKind::LaneCrash { step, .. } => Some(step as f64),
        FaultKind::DaemonShutdown { after_turns, .. } => Some(after_turns as f64 - 0.5),
        FaultKind::TornCheckpoint { at } => Some((at * steps_per_unit) as f64 - 0.25),
        FaultKind::DelaySpeculation { .. } => None,
    }
}

/// Removes the faults that fired in an aborted attempt: the abort
/// happened at the earliest remaining trigger (completion-wins
/// barriers make the abort point deterministic), so every fault at or
/// before that trigger is spent. Later faults stay live for later
/// attempts.
fn strip_fired(plan: &mut FaultPlan, steps_per_unit: usize) {
    let t_min = plan
        .faults
        .iter()
        .filter_map(|f| abort_trigger(f, steps_per_unit))
        .fold(f64::INFINITY, f64::min);
    if t_min.is_finite() {
        plan.faults
            .retain(|f| abort_trigger(f, steps_per_unit).is_none_or(|t| t > t_min));
    }
}

/// Runs [`train_distributed`] under supervision: on abort, classify,
/// roll back to the newest good checkpoint, strip fired faults, and
/// resume — until completion or restart-budget exhaustion. See the
/// module docs for the full recovery contract.
///
/// Requirements mirror [`train_distributed`]'s: `spec.world()` must
/// equal `cfg.parallel.world()`, and rollback needs
/// `cfg.checkpoint_every`/`checkpoint_dir` set (without them every
/// restart replays from scratch — still correct, just expensive).
/// `cfg.resume_from` seeds the *first* attempt and is superseded by
/// the store's newest good checkpoint on every restart.
pub fn train_supervised(
    dataset: &Dataset,
    model_cfg: &ModelConfig,
    cfg: &TrainConfig,
    spec: ClusterSpec,
    policy: &RetryPolicy,
) -> Result<SupervisedRun, SuperviseError> {
    let mut incidents: Vec<RecoveryReport> = Vec::new();
    let store = match &cfg.checkpoint_dir {
        Some(dir) => match CheckpointStore::open(dir, cfg.checkpoint_retain) {
            Ok(s) => Some(s),
            Err(error) => {
                return Err(SuperviseError::Fatal { incidents, error });
            }
        },
        None => None,
    };

    // Steps per schedule unit (= one sweep), for torn-checkpoint
    // triggers and steps-lost accounting — derived exactly as the
    // trainer derives it.
    let (train_end, _) = dataset.graph.chronological_split(0.70, 0.15);
    let steps_per_unit = GroupSchedule::new(
        0..train_end,
        cfg.local_batch * cfg.parallel.i,
        &cfg.parallel,
        0,
        cfg.sweeps(),
    )
    .num_batches();

    let mut plan = cfg.faults.clone().unwrap_or_default();
    let mut attempt_cfg = cfg.clone();
    loop {
        attempt_cfg.faults = (!plan.is_empty()).then(|| plan.clone());
        let result = train_distributed(dataset, model_cfg, &attempt_cfg, spec);
        if !result.aborted {
            return Ok(SupervisedRun { result, incidents });
        }
        if incidents.len() >= policy.max_restarts {
            return Err(SuperviseError::RestartBudgetExhausted {
                incidents,
                last: Box::new(result),
            });
        }

        // Detect → classify → roll back → strip → resume.
        let t0 = Instant::now();
        let (cause, rank) = classify(&result.abort_reports);
        let resume = match &store {
            Some(s) => match s.load_latest() {
                Ok(r) => r,
                Err(error) => return Err(SuperviseError::Fatal { incidents, error }),
            },
            None => None,
        };
        if let Some((ckpt, _)) = &resume {
            // A checkpoint that validates but fingerprints differently
            // is foreign to this run — resuming would silently diverge.
            if let Err(error) = ckpt.check_fingerprint(model_cfg, cfg) {
                return Err(SuperviseError::Fatal { incidents, error });
            }
        }
        let resume_step = resume
            .as_ref()
            .map_or(0, |(c, _)| c.units_done * steps_per_unit);
        let steps_lost = result.loss_history.len().saturating_sub(resume_step);
        strip_fired(&mut plan, steps_per_unit);
        attempt_cfg.resume_from = resume
            .as_ref()
            .map(|(_, path)| path.to_string_lossy().into_owned());
        incidents.push(RecoveryReport {
            restart: incidents.len() + 1,
            cause,
            rank,
            resumed_from_unit: resume.as_ref().map(|(c, _)| c.units_done),
            steps_lost,
            rollback_secs: t0.elapsed().as_secs_f64(),
        });
        if !policy.backoff.is_zero() {
            std::thread::sleep(policy.backoff);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::fingerprint;
    use crate::config::ParallelConfig;
    use crate::metrics::ConvergencePoint;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("disttgl_store_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn tiny_ckpt(units: usize) -> TrainCheckpoint {
        TrainCheckpoint {
            fingerprint: "model\ntrain".into(),
            units_done: units,
            iteration: units * 4,
            events_trained: units as u64 * 100,
            weights: vec![units as f32; 3],
            adam_t: units as u64,
            adam_state: vec![0.5; 6],
            loss_history: vec![0.1; units],
            convergence: vec![ConvergencePoint {
                iteration: units,
                wall_secs: 0.5,
                metric: 0.7,
            }],
            static_table: None,
            memories: Vec::new(),
            start_turns: Vec::new(),
        }
    }

    #[test]
    fn load_latest_returns_newest_and_none_when_empty() {
        let dir = tmpdir("latest");
        let store = CheckpointStore::open(&dir, None).unwrap();
        assert!(store.load_latest().unwrap().is_none());
        for u in [1, 3, 2] {
            store.save_train(&tiny_ckpt(u)).unwrap();
        }
        let (ckpt, path) = store.load_latest().unwrap().unwrap();
        assert_eq!(ckpt.units_done, 3);
        assert_eq!(path, store.train_path(3));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_latest_skips_torn_files() {
        let dir = tmpdir("torn");
        let store = CheckpointStore::open(&dir, None).unwrap();
        for u in 1..=3 {
            store.save_train(&tiny_ckpt(u)).unwrap();
        }
        // Tear the newest file mid-write.
        let bytes = std::fs::read(store.train_path(3)).unwrap();
        std::fs::write(store.train_path(3), &bytes[..bytes.len() / 2]).unwrap();
        let (ckpt, _) = store.load_latest().unwrap().unwrap();
        assert_eq!(ckpt.units_done, 2, "falls back past the torn newest");
        // Tear everything → fresh start, not an error.
        for u in 1..=2 {
            let b = std::fs::read(store.train_path(u)).unwrap();
            std::fs::write(store.train_path(u), &b[..10]).unwrap();
        }
        assert!(store.load_latest().unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_keeps_newest_k_but_never_the_last_good() {
        let dir = tmpdir("gc");
        let store = CheckpointStore::open(&dir, Some(2)).unwrap();
        for u in 1..=5 {
            store.save_train(&tiny_ckpt(u)).unwrap();
        }
        // save_train GC'd along the way: only the newest 2 remain.
        let files = store.list_train().unwrap();
        assert_eq!(
            files.iter().map(|(u, _)| *u).collect::<Vec<_>>(),
            vec![4, 5]
        );
        // Corrupt both retained files; an older good one must survive
        // the next sweep.
        let keeper = CheckpointStore::open(&dir, None).unwrap();
        keeper.save_train(&tiny_ckpt(6)).unwrap();
        for u in [5, 6] {
            let b = std::fs::read(store.train_path(u)).unwrap();
            std::fs::write(store.train_path(u), &b[..b.len() / 3]).unwrap();
        }
        store.gc().unwrap();
        let remaining: Vec<u64> = store
            .list_train()
            .unwrap()
            .iter()
            .map(|(u, _)| *u)
            .collect();
        assert!(
            remaining.contains(&4),
            "last good checkpoint survived: {remaining:?}"
        );
        let (ckpt, _) = store.load_latest().unwrap().unwrap();
        assert_eq!(ckpt.units_done, 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_files_are_ignored_by_the_scan() {
        let dir = tmpdir("foreign");
        let store = CheckpointStore::open(&dir, Some(1)).unwrap();
        std::fs::write(dir.join("notes.txt"), b"not a checkpoint").unwrap();
        std::fs::write(dir.join("ckpt_abcd.bin"), b"unparsable unit").unwrap();
        store.save_train(&tiny_ckpt(1)).unwrap();
        let (ckpt, _) = store.load_latest().unwrap().unwrap();
        assert_eq!(ckpt.units_done, 1);
        assert!(
            dir.join("notes.txt").exists(),
            "GC only touches its own files"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn strip_fired_removes_exactly_the_spent_faults() {
        let mut plan = FaultPlan::new(vec![
            FaultKind::LaneCrash { rank: 0, step: 6 },
            FaultKind::LaneCrash { rank: 1, step: 10 },
            FaultKind::DelaySpeculation { rank: 1, steps: 2 },
        ]);
        strip_fired(&mut plan, 4);
        assert_eq!(
            plan.faults,
            vec![
                FaultKind::LaneCrash { rank: 1, step: 10 },
                FaultKind::DelaySpeculation { rank: 1, steps: 2 },
            ]
        );
        strip_fired(&mut plan, 4);
        assert_eq!(
            plan.faults,
            vec![FaultKind::DelaySpeculation { rank: 1, steps: 2 }],
            "non-aborting faults are never stripped"
        );
        strip_fired(&mut plan, 4);
        assert_eq!(plan.faults.len(), 1);
    }

    #[test]
    fn strip_order_daemon_then_torn_then_crash_at_one_boundary() {
        // All three sit at the step-8 boundary of a 4-step unit; the
        // daemon death pre-empts the torn write, which pre-empts the
        // step-8 crash, so each attempt spends exactly one.
        let mut plan = FaultPlan::new(vec![
            FaultKind::LaneCrash { rank: 0, step: 8 },
            FaultKind::TornCheckpoint { at: 2 },
            FaultKind::DaemonShutdown {
                group: 0,
                after_turns: 8,
            },
        ]);
        strip_fired(&mut plan, 4);
        assert_eq!(plan.faults.len(), 2, "daemon death stripped first");
        strip_fired(&mut plan, 4);
        assert_eq!(
            plan.faults,
            vec![FaultKind::LaneCrash { rank: 0, step: 8 }],
            "torn checkpoint stripped second"
        );
    }

    #[test]
    fn classify_prefers_root_cause_over_bystanders() {
        let reports = vec![
            AbortReport {
                rank: 0,
                cause: AbortCause::PeerAbort,
            },
            AbortReport {
                rank: 1,
                cause: AbortCause::InjectedCrash,
            },
        ];
        assert_eq!(classify(&reports), (AbortCause::InjectedCrash, Some(1)));
        assert_eq!(classify(&[]), (AbortCause::PeerAbort, None));
        assert_eq!(
            classify(&reports[..1]),
            (AbortCause::PeerAbort, Some(0)),
            "all-bystander reports fall back to the first entry"
        );
    }

    #[test]
    fn fatal_on_foreign_fingerprint() {
        // A store whose newest good checkpoint belongs to some other
        // run must fail fatally, not resume into divergence.
        let dir = tmpdir("fatal_fp");
        let store = CheckpointStore::open(&dir, None).unwrap();
        let mc = ModelConfig::compact(0);
        let cfg = TrainConfig::new(ParallelConfig::single());
        let mut foreign = tiny_ckpt(1);
        foreign.fingerprint = "someone\nelse".into();
        store.save_train(&foreign).unwrap();
        let live = fingerprint(&mc, &cfg);
        let (ckpt, _) = store.load_latest().unwrap().unwrap();
        assert_ne!(ckpt.fingerprint, live);
        assert!(matches!(
            ckpt.check_fingerprint(&mc, &cfg),
            Err(CheckpointError::Mismatch(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
