//! Run-result records: convergence curves, timing breakdowns, and
//! communication accounting — the raw material for every figure.

use disttgl_cluster::CommStats;
use disttgl_mem::DaemonStats;
use serde::{Deserialize, Serialize};

/// Latency recorder for the serving plane: collects per-call wall
/// times and reports exact (nearest-rank) percentiles — the p50/p95/p99
/// quantities `BENCH_serve.json` publishes. Sample storage is exact
/// rather than bucketed: a serving benchmark records thousands of
/// calls, not billions, and exact tails beat approximation error at
/// that scale.
#[derive(Clone, Debug, Default)]
pub struct LatencyHistogram {
    samples: Vec<f64>,
    /// Running sum (mean without a pass over the samples).
    sum: f64,
    /// Prefix of `samples` already in sorted order; the suffix beyond
    /// it is unsorted new arrivals. Sorting is paid once per
    /// record-then-probe cycle, in place, not per percentile probe —
    /// `summary()` between records is O(1) after the first call.
    sorted_len: usize,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one call's latency in seconds.
    pub fn record(&mut self, secs: f64) {
        self.samples.push(secs);
        self.sum += secs;
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sorts in place if records arrived since the last probe (pattern
    /// defeat: an already-sorted prefix makes the re-sort near-linear,
    /// and a fully probed histogram costs nothing to probe again).
    fn ensure_sorted(&mut self) {
        if self.sorted_len < self.samples.len() {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
            self.sorted_len = self.samples.len();
        }
    }

    /// Exact nearest-rank percentile (`p` in `[0, 100]`); 0.0 on an
    /// empty histogram.
    pub fn percentile(&mut self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        self.samples[nearest_rank_index(self.samples.len(), p)]
    }

    /// Summarizes into the serializable record. Cheap to call under
    /// load: one in-place sort amortized over everything recorded
    /// since the previous call, no allocation, running-sum mean.
    pub fn summary(&mut self) -> LatencySummary {
        if self.samples.is_empty() {
            return LatencySummary::default();
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = |p: f64| self.samples[nearest_rank_index(n, p)];
        LatencySummary {
            count: n,
            mean_secs: self.sum / n as f64,
            p50_secs: rank(50.0),
            p95_secs: rank(95.0),
            p99_secs: rank(99.0),
            p999_secs: rank(99.9),
            max_secs: self.samples[n - 1],
        }
    }
}

/// Zero-based index of the nearest-rank percentile sample: clamp(⌈p/100
/// · n⌉, 1, n) − 1. The epsilon keeps an exact-integer rank (e.g. p99.9
/// of 1000 samples = rank 999) from ceiling up a float ulp to the next
/// sample.
fn nearest_rank_index(n: usize, p: f64) -> usize {
    let rank = ((p / 100.0) * n as f64 - 1e-9).ceil() as usize;
    rank.clamp(1, n) - 1
}

/// Serializable summary of a [`LatencyHistogram`].
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: usize,
    /// Mean latency (seconds).
    pub mean_secs: f64,
    /// Median (nearest-rank), seconds.
    pub p50_secs: f64,
    /// 95th percentile, seconds.
    pub p95_secs: f64,
    /// 99th percentile, seconds.
    pub p99_secs: f64,
    /// 99.9th percentile (nearest-rank — equals `max_secs` until the
    /// histogram holds ≥1000 samples), seconds.
    pub p999_secs: f64,
    /// Worst observed call, seconds.
    pub max_secs: f64,
}

/// One point on a convergence curve (Figures 1, 6, 9, 11).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ConvergencePoint {
    /// Training iterations completed (per trainer; global since
    /// trainers step in lock-step).
    pub iteration: usize,
    /// Wall-clock seconds since training start.
    pub wall_secs: f64,
    /// Validation metric (MRR or F1-micro).
    pub metric: f64,
}

/// Per-trainer wall-time breakdown (averaged over trainers), the basis
/// of the throughput analysis (Figure 12) and Table 1's overhead rows.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TimingBreakdown {
    /// Mini-batch preparation (sampling + feature slicing).
    pub prep_secs: f64,
    /// Waiting on the memory daemon (reads).
    pub mem_wait_secs: f64,
    /// Forward + backward compute.
    pub compute_secs: f64,
    /// Per-attention-layer share of `compute_secs` spent in the embed
    /// stack's forward (entry ℓ = layer ℓ across all frontier depths,
    /// positive + negative embeds). One entry for the classic 1-layer
    /// model; the multi-layer bench reads the split from here.
    pub embed_layer_secs: Vec<f64>,
    /// Gradient all-reduce (includes barrier wait).
    pub allreduce_secs: f64,
    /// Matmul-family kernel time inside `compute_secs` (all
    /// `disttgl_tensor::linalg` entry points plus the attention
    /// score/context loops). Measured by the thread-local
    /// `disttgl_tensor::timing` scopes; outermost-scope-only, so
    /// nested matmul calls are not double counted.
    pub matmul_secs: f64,
    /// GRU memory-update time (`GruCell` forward/backward). Overlaps
    /// `matmul_secs` — the GRU's gate matmuls count in both — so the
    /// kernel fields are an attribution, not a partition of
    /// `compute_secs`.
    pub gru_secs: f64,
    /// Softmax kernel time (attention probability rows).
    pub softmax_secs: f64,
    /// Row gather/scatter-add kernel time (embedding table reads,
    /// gradient row accumulation) — the memcpy-bound share.
    pub gather_secs: f64,
}

impl TimingBreakdown {
    /// Adds `secs[ℓ] * scale` into `embed_layer_secs[ℓ]`, growing the
    /// vector as needed (trainers of a world average with
    /// `scale = 1/world`, matching the other breakdown fields).
    pub fn absorb_layer_secs(&mut self, secs: &[f64], scale: f64) {
        if self.embed_layer_secs.len() < secs.len() {
            self.embed_layer_secs.resize(secs.len(), 0.0);
        }
        for (acc, &s) in self.embed_layer_secs.iter_mut().zip(secs) {
            *acc += s * scale;
        }
    }

    /// Folds one thread's kernel-timing delta (see
    /// `disttgl_tensor::timing::KernelTimings`) into the breakdown,
    /// scaled like every other field (`1/world` when averaging).
    pub fn absorb_kernels(&mut self, k: &disttgl_tensor::timing::KernelTimings, scale: f64) {
        self.matmul_secs += k.matmul_secs * scale;
        self.gru_secs += k.gru_secs * scale;
        self.softmax_secs += k.softmax_secs * scale;
        self.gather_secs += k.gather_secs * scale;
    }
}

/// Why a trainer lane unwound early. Carried per rank in
/// [`RunResult::abort_reports`] so a recovery driver (see
/// `core::recover`) classifies failures from data instead of guessing
/// from which rank went quiet first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AbortCause {
    /// The fault plan crashed this lane at its scheduled step.
    InjectedCrash,
    /// This lane's memory daemon shut down mid-schedule.
    DaemonShutdown,
    /// This lane's memory-daemon wait exceeded the configured deadline.
    DaemonTimeout,
    /// A collective failed because some *other* rank aborted the group;
    /// this lane is a healthy bystander.
    PeerAbort,
    /// The fault plan tore this rank's checkpoint write mid-save.
    TornCheckpoint,
}

/// One rank's abort record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AbortReport {
    /// Global trainer rank.
    pub rank: usize,
    /// Why that rank unwound.
    pub cause: AbortCause,
}

/// Complete record of one training run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RunResult {
    /// Mean training loss per iteration (trainer 0's view).
    pub loss_history: Vec<f32>,
    /// Validation metric at every epoch/sweep boundary.
    pub convergence: Vec<ConvergencePoint>,
    /// Final test metric.
    pub test_metric: f64,
    /// Best validation metric reached.
    pub best_val_metric: f64,
    /// Iterations until the best validation metric (the Figure 10(b)
    /// quantity).
    pub iters_to_best: usize,
    /// Total training wall time.
    pub wall_secs: f64,
    /// Events trained per second, aggregated over trainers (the
    /// Figure 12 y-axis).
    pub throughput_events_per_sec: f64,
    /// Mean per-trainer timing breakdown.
    pub timing: TimingBreakdown,
    /// Modeled communication (weight all-reduce) volume/time.
    pub comm_bytes: u64,
    /// Modeled wire nanoseconds for all collectives.
    pub comm_modeled_nanos: u64,
    /// Memory-daemon counters summed over the k daemons. `rows_read`
    /// counts *logical* rows served at serialized read turns, so it is
    /// invariant under the speculative protocol.
    pub daemon_rows_read: u64,
    /// Rows written through the daemons.
    pub daemon_rows_written: u64,
    /// Speculative out-of-turn reads served by the daemons.
    pub daemon_spec_reads: u64,
    /// Rows gathered speculatively (off the serialized critical path).
    pub daemon_spec_rows: u64,
    /// Delta reads served at serialized turns.
    pub daemon_delta_reads: u64,
    /// Rows the deltas shipped = stale rows the trainers patched.
    /// `daemon_delta_rows / daemon_spec_rows` is the measured stale
    /// fraction of the unique-row speculative protocol.
    pub daemon_delta_rows: u64,
    /// Modeled wire bytes of the row payloads that actually moved
    /// through the daemons, at the store's element width — the figure
    /// `ModelConfig::quantized_memory` halves (2 bytes/elem bf16 vs 4
    /// exact).
    pub daemon_payload_bytes: u64,
    /// Bounded-staleness repair turns served (0 unless
    /// `TrainConfig::staleness_bound` is set; each also counts in
    /// `daemon_delta_reads`).
    pub daemon_bounded_reads: u64,
    /// Stale rows admitted within the staleness bound — repairs
    /// *skipped*; `daemon_delta_rows` remains the repairs *paid*.
    pub daemon_stale_rows_admitted: u64,
    /// Sum of version lags over admitted rows (mean lag = sum /
    /// admitted).
    pub daemon_stale_lag_sum: u64,
    /// Largest version lag admitted anywhere in the run — the realized
    /// staleness, always ≤ the configured bound.
    pub daemon_stale_lag_max: u64,
    /// Per-replica content digest of the final node memory (one per
    /// daemon, group order) — lets equivalence tests pin bit-identical
    /// final memory across executor variants without shipping states.
    pub memory_checksums: Vec<u64>,
    /// Gradient-variance probe: mean squared deviation of per-trainer
    /// gradients from the all-reduced mean, sampled over iterations
    /// (Table 1's "gradient descent variance" row).
    pub grad_variance: f64,
    /// True when the run unwound early from a fault (lane crash, daemon
    /// shutdown, deadline expiry) instead of completing its schedule;
    /// histories up to the abort point are retained.
    pub aborted: bool,
    /// Per-rank abort causes when `aborted` (empty otherwise). Ranks
    /// that observed only the group abort report [`AbortCause::PeerAbort`];
    /// the root cause is any non-peer entry.
    pub abort_reports: Vec<AbortReport>,
}

impl RunResult {
    /// Folds daemon counters into the record.
    pub fn absorb_daemon(&mut self, stats: &DaemonStats) {
        self.daemon_rows_read += stats.rows_read;
        self.daemon_rows_written += stats.rows_written;
        self.daemon_spec_reads += stats.spec_reads_served;
        self.daemon_spec_rows += stats.spec_rows_read;
        self.daemon_delta_reads += stats.delta_reads_served;
        self.daemon_delta_rows += stats.delta_rows_sent;
        self.daemon_payload_bytes += stats.payload_bytes;
        self.daemon_bounded_reads += stats.bounded_reads_served;
        self.daemon_stale_rows_admitted += stats.stale_rows_admitted;
        self.daemon_stale_lag_sum += stats.stale_lag_sum;
        self.daemon_stale_lag_max = self.daemon_stale_lag_max.max(stats.stale_lag_max);
    }

    /// Folds communicator counters into the record.
    pub fn absorb_comm(&mut self, stats: &CommStats) {
        self.comm_bytes += stats.allreduce_bytes;
        self.comm_modeled_nanos += stats.modeled_comm_nanos;
    }

    /// Updates best/iters-to-best from the convergence curve.
    pub fn finalize_convergence(&mut self) {
        let mut best = f64::MIN;
        let mut iters = 0;
        for p in &self.convergence {
            if p.metric > best {
                best = p.metric;
                iters = p.iteration;
            }
        }
        if !self.convergence.is_empty() {
            self.best_val_metric = best;
            self.iters_to_best = iters;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finalize_tracks_best_point() {
        let mut r = RunResult {
            convergence: vec![
                ConvergencePoint {
                    iteration: 10,
                    wall_secs: 1.0,
                    metric: 0.5,
                },
                ConvergencePoint {
                    iteration: 20,
                    wall_secs: 2.0,
                    metric: 0.8,
                },
                ConvergencePoint {
                    iteration: 30,
                    wall_secs: 3.0,
                    metric: 0.7,
                },
            ],
            ..RunResult::default()
        };
        r.finalize_convergence();
        assert_eq!(r.best_val_metric, 0.8);
        assert_eq!(r.iters_to_best, 20);
    }

    #[test]
    fn empty_convergence_is_noop() {
        let mut r = RunResult::default();
        r.finalize_convergence();
        assert_eq!(r.best_val_metric, 0.0);
        assert_eq!(r.iters_to_best, 0);
    }

    #[test]
    fn latency_percentiles_are_exact_nearest_rank() {
        let mut h = LatencyHistogram::new();
        // 1..=100 ms, shuffled insertion order.
        for i in (1..=100u32).rev() {
            h.record(i as f64 * 1e-3);
        }
        assert_eq!(h.len(), 100);
        assert!((h.percentile(50.0) - 0.050).abs() < 1e-12);
        assert!((h.percentile(95.0) - 0.095).abs() < 1e-12);
        assert!((h.percentile(99.0) - 0.099).abs() < 1e-12);
        assert!((h.percentile(100.0) - 0.100).abs() < 1e-12);
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert!((s.mean_secs - 0.0505).abs() < 1e-12);
        assert!((s.p50_secs - 0.050).abs() < 1e-12);
        // 100 samples: nearest-rank p99.9 = ceil(99.9) = sample 100.
        assert!((s.p999_secs - 0.100).abs() < 1e-12);
        assert!((s.max_secs - 0.100).abs() < 1e-12);
    }

    /// Interleaving records and probes never desynchronizes the sorted
    /// prefix: every probe sees exactly the samples recorded so far.
    #[test]
    fn latency_probe_record_interleaving_stays_exact() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u32 {
            h.record((1001 - i) as f64 * 1e-3);
            if i % 97 == 0 {
                let s = h.summary();
                assert_eq!(s.count, i as usize);
                assert!((s.max_secs - 1.000).abs() < 1e-12, "max after {i}");
            }
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert!((s.mean_secs - 0.5005).abs() < 1e-9);
        assert!((s.p999_secs - 0.999).abs() < 1e-12);
        assert!((h.percentile(99.9) - 0.999).abs() < 1e-12);
        // Identical to a from-scratch histogram over the same samples.
        let mut fresh = LatencyHistogram::new();
        for i in 1..=1000u32 {
            fresh.record(i as f64 * 1e-3);
        }
        let f = fresh.summary();
        assert_eq!(s.p50_secs, f.p50_secs);
        assert_eq!(s.p99_secs, f.p99_secs);
        assert_eq!(s.p999_secs, f.p999_secs);
    }

    #[test]
    fn latency_single_sample_and_empty() {
        let mut h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(99.0), 0.0);
        assert_eq!(h.summary().count, 0);
        h.record(0.25);
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), 0.25);
        }
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.p99_secs, 0.25);
        assert_eq!(s.max_secs, 0.25);
    }
}
