//! Run-result records: convergence curves, timing breakdowns, and
//! communication accounting — the raw material for every figure.

use disttgl_cluster::CommStats;
use disttgl_mem::DaemonStats;
use serde::{Deserialize, Serialize};

/// One point on a convergence curve (Figures 1, 6, 9, 11).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ConvergencePoint {
    /// Training iterations completed (per trainer; global since
    /// trainers step in lock-step).
    pub iteration: usize,
    /// Wall-clock seconds since training start.
    pub wall_secs: f64,
    /// Validation metric (MRR or F1-micro).
    pub metric: f64,
}

/// Per-trainer wall-time breakdown (averaged over trainers), the basis
/// of the throughput analysis (Figure 12) and Table 1's overhead rows.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TimingBreakdown {
    /// Mini-batch preparation (sampling + feature slicing).
    pub prep_secs: f64,
    /// Waiting on the memory daemon (reads).
    pub mem_wait_secs: f64,
    /// Forward + backward compute.
    pub compute_secs: f64,
    /// Per-attention-layer share of `compute_secs` spent in the embed
    /// stack's forward (entry ℓ = layer ℓ across all frontier depths,
    /// positive + negative embeds). One entry for the classic 1-layer
    /// model; the multi-layer bench reads the split from here.
    pub embed_layer_secs: Vec<f64>,
    /// Gradient all-reduce (includes barrier wait).
    pub allreduce_secs: f64,
}

impl TimingBreakdown {
    /// Adds `secs[ℓ] * scale` into `embed_layer_secs[ℓ]`, growing the
    /// vector as needed (trainers of a world average with
    /// `scale = 1/world`, matching the other breakdown fields).
    pub fn absorb_layer_secs(&mut self, secs: &[f64], scale: f64) {
        if self.embed_layer_secs.len() < secs.len() {
            self.embed_layer_secs.resize(secs.len(), 0.0);
        }
        for (acc, &s) in self.embed_layer_secs.iter_mut().zip(secs) {
            *acc += s * scale;
        }
    }
}

/// Complete record of one training run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RunResult {
    /// Mean training loss per iteration (trainer 0's view).
    pub loss_history: Vec<f32>,
    /// Validation metric at every epoch/sweep boundary.
    pub convergence: Vec<ConvergencePoint>,
    /// Final test metric.
    pub test_metric: f64,
    /// Best validation metric reached.
    pub best_val_metric: f64,
    /// Iterations until the best validation metric (the Figure 10(b)
    /// quantity).
    pub iters_to_best: usize,
    /// Total training wall time.
    pub wall_secs: f64,
    /// Events trained per second, aggregated over trainers (the
    /// Figure 12 y-axis).
    pub throughput_events_per_sec: f64,
    /// Mean per-trainer timing breakdown.
    pub timing: TimingBreakdown,
    /// Modeled communication (weight all-reduce) volume/time.
    pub comm_bytes: u64,
    /// Modeled wire nanoseconds for all collectives.
    pub comm_modeled_nanos: u64,
    /// Memory-daemon counters summed over the k daemons. `rows_read`
    /// counts *logical* rows served at serialized read turns, so it is
    /// invariant under the speculative protocol.
    pub daemon_rows_read: u64,
    /// Rows written through the daemons.
    pub daemon_rows_written: u64,
    /// Speculative out-of-turn reads served by the daemons.
    pub daemon_spec_reads: u64,
    /// Rows gathered speculatively (off the serialized critical path).
    pub daemon_spec_rows: u64,
    /// Delta reads served at serialized turns.
    pub daemon_delta_reads: u64,
    /// Rows the deltas shipped = stale rows the trainers patched.
    /// `daemon_delta_rows / daemon_spec_rows` is the measured stale
    /// fraction of the unique-row speculative protocol.
    pub daemon_delta_rows: u64,
    /// Per-replica content digest of the final node memory (one per
    /// daemon, group order) — lets equivalence tests pin bit-identical
    /// final memory across executor variants without shipping states.
    pub memory_checksums: Vec<u64>,
    /// Gradient-variance probe: mean squared deviation of per-trainer
    /// gradients from the all-reduced mean, sampled over iterations
    /// (Table 1's "gradient descent variance" row).
    pub grad_variance: f64,
}

impl RunResult {
    /// Folds daemon counters into the record.
    pub fn absorb_daemon(&mut self, stats: &DaemonStats) {
        self.daemon_rows_read += stats.rows_read;
        self.daemon_rows_written += stats.rows_written;
        self.daemon_spec_reads += stats.spec_reads_served;
        self.daemon_spec_rows += stats.spec_rows_read;
        self.daemon_delta_reads += stats.delta_reads_served;
        self.daemon_delta_rows += stats.delta_rows_sent;
    }

    /// Folds communicator counters into the record.
    pub fn absorb_comm(&mut self, stats: &CommStats) {
        self.comm_bytes += stats.allreduce_bytes;
        self.comm_modeled_nanos += stats.modeled_comm_nanos;
    }

    /// Updates best/iters-to-best from the convergence curve.
    pub fn finalize_convergence(&mut self) {
        let mut best = f64::MIN;
        let mut iters = 0;
        for p in &self.convergence {
            if p.metric > best {
                best = p.metric;
                iters = p.iteration;
            }
        }
        if !self.convergence.is_empty() {
            self.best_val_metric = best;
            self.iters_to_best = iters;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finalize_tracks_best_point() {
        let mut r = RunResult {
            convergence: vec![
                ConvergencePoint {
                    iteration: 10,
                    wall_secs: 1.0,
                    metric: 0.5,
                },
                ConvergencePoint {
                    iteration: 20,
                    wall_secs: 2.0,
                    metric: 0.8,
                },
                ConvergencePoint {
                    iteration: 30,
                    wall_secs: 3.0,
                    metric: 0.7,
                },
            ],
            ..RunResult::default()
        };
        r.finalize_convergence();
        assert_eq!(r.best_val_metric, 0.8);
        assert_eq!(r.iters_to_best, 20);
    }

    #[test]
    fn empty_convergence_is_noop() {
        let mut r = RunResult::default();
        r.finalize_convergence();
        assert_eq!(r.best_val_metric, 0.0);
        assert_eq!(r.iters_to_best, 0);
    }
}
