//! Mini-batch preparation.
//!
//! A training iteration needs, for every root node (positive sources,
//! positive destinations, and sampled negative destinations): its node
//! memory + cached mail, its k most recent supporting neighbors, and
//! their memory/mails/edge features. Epoch parallelism (§3.2.2)
//! prepares **one positive input and `j` negative inputs** in a single
//! serialized memory read so the same batch can be retrained `j` times
//! with different negatives without touching the memory daemon again.

use crate::config::ModelConfig;
use disttgl_data::Dataset;
use disttgl_graph::{NeighborBlock, RecentNeighborSampler, TCsr};
use disttgl_mem::{MemoryClient, MemoryReadout, MemoryState, MemoryWrite};
use disttgl_tensor::Matrix;
use std::ops::Range;

/// Uniform interface over the two ways a trainer reaches node memory:
/// directly (single-process baselines, evaluation) or through the
/// memory daemon (distributed training).
pub trait MemoryAccess {
    /// Gathers memory/mail rows for `nodes`.
    fn read(&mut self, nodes: &[u32]) -> MemoryReadout;
    /// Applies a write in serialized order.
    fn write(&mut self, w: MemoryWrite);
}

impl MemoryAccess for MemoryState {
    fn read(&mut self, nodes: &[u32]) -> MemoryReadout {
        MemoryState::read(self, nodes)
    }
    fn write(&mut self, w: MemoryWrite) {
        MemoryState::write(self, &w);
    }
}

impl MemoryAccess for MemoryClient {
    fn read(&mut self, nodes: &[u32]) -> MemoryReadout {
        MemoryClient::read(self, nodes)
    }
    fn write(&mut self, w: MemoryWrite) {
        MemoryClient::write(self, w);
    }
}

/// The positive half of a prepared batch: `B` chronological events.
///
/// Readout layout: rows `0..2B` are the roots (`srcs` then `dsts`),
/// rows `2B..2B(1+k)` the flattened neighbor slots.
#[derive(Clone, Debug)]
pub struct PositivePart {
    /// Event sources.
    pub srcs: Vec<u32>,
    /// Event destinations.
    pub dsts: Vec<u32>,
    /// Event timestamps.
    pub times: Vec<f32>,
    /// Event ids (edge-feature rows).
    pub eids: Vec<u32>,
    /// The `2B` roots `srcs ++ dsts`, in readout row order (built once
    /// in phase 1; the model reads it every pass instead of cloning).
    pub roots: Vec<u32>,
    /// Query times of `roots` (`times ++ times`).
    pub root_times: Vec<f32>,
    /// Supporting neighbors of the `2B` roots.
    pub nbrs: NeighborBlock,
    /// Memory/mail rows for roots then slots.
    pub readout: MemoryReadout,
    /// Edge features of the events, `B × d_e`.
    pub event_feats: Matrix,
    /// Edge features of the neighbor slots, `2B·k × d_e`.
    pub nbr_feats: Matrix,
    /// Multi-label targets for classification datasets.
    pub labels: Option<Matrix>,
}

impl PositivePart {
    /// Number of events `B`.
    pub fn len(&self) -> usize {
        self.srcs.len()
    }

    /// True for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.srcs.is_empty()
    }
}

/// One negative set: `B·K` sampled destinations with the same
/// per-event timestamps.
#[derive(Clone, Debug)]
pub struct NegativePart {
    /// Negative destination ids, `B·K`.
    pub negs: Vec<u32>,
    /// Query times (event time repeated `K×`).
    pub times: Vec<f32>,
    /// Supporting neighbors of the negatives.
    pub nbrs: NeighborBlock,
    /// Memory/mail rows for negative roots then their slots.
    pub readout: MemoryReadout,
    /// Edge features of the negative neighbor slots.
    pub nbr_feats: Matrix,
}

/// A fully prepared batch: positives plus `j ≥ 0` negative sets.
#[derive(Clone, Debug)]
pub struct PreparedBatch {
    /// The shared positive input.
    pub pos: PositivePart,
    /// Independent negative sets (one per epoch-parallel pass).
    pub negs: Vec<NegativePart>,
}

/// Builds prepared batches from a dataset + T-CSR index.
pub struct BatchPreparer<'a> {
    dataset: &'a Dataset,
    csr: &'a TCsr,
    sampler: RecentNeighborSampler,
}

impl<'a> BatchPreparer<'a> {
    /// Creates a preparer sampling `cfg.n_neighbors` supporting nodes.
    pub fn new(dataset: &'a Dataset, csr: &'a TCsr, cfg: &ModelConfig) -> Self {
        Self {
            dataset,
            csr,
            sampler: RecentNeighborSampler::new(cfg.n_neighbors),
        }
    }

    /// Gathers edge features for arbitrary eids (zero-width safe).
    fn edge_rows(&self, eids: &[u32]) -> Matrix {
        let d_e = self.dataset.edge_features.cols();
        if d_e == 0 {
            return Matrix::zeros(eids.len(), 0);
        }
        let idx: Vec<usize> = eids.iter().map(|&e| e as usize).collect();
        self.dataset.edge_features.gather_rows(&idx)
    }

    /// **Phase 1** of batch preparation: everything that does *not*
    /// touch node memory — neighbor sampling over the static T-CSR,
    /// negative slicing, edge-feature and label gathers, and the node
    /// list of the upcoming serialized memory read.
    ///
    /// Because nothing here depends on mutable training state, this
    /// phase is safe to run arbitrarily far ahead of the training loop
    /// (the pipelined executor runs it one batch ahead on a prefetch
    /// thread).
    pub fn prepare_static(
        &self,
        range: Range<usize>,
        neg_sets: &[&[u32]],
        negs_per_event: usize,
    ) -> StaticBatch {
        let events = &self.dataset.graph.events()[range];
        let b = events.len();
        let srcs: Vec<u32> = events.iter().map(|e| e.src).collect();
        let dsts: Vec<u32> = events.iter().map(|e| e.dst).collect();
        let times: Vec<f32> = events.iter().map(|e| e.t).collect();
        let eids: Vec<u32> = events.iter().map(|e| e.eid).collect();

        // Roots of the positive part: sources then destinations, each
        // queried at its event time.
        let mut pos_roots = srcs.clone();
        pos_roots.extend_from_slice(&dsts);
        let mut pos_times = times.clone();
        pos_times.extend_from_slice(&times);
        let pos_nbrs = self.sampler.sample(self.csr, &pos_roots, &pos_times);

        // Negative roots per set.
        let mut negs = Vec::with_capacity(neg_sets.len());
        for set in neg_sets {
            assert_eq!(set.len(), b * negs_per_event, "negative set length");
            let neg_times: Vec<f32> = times
                .iter()
                .flat_map(|&t| std::iter::repeat_n(t, negs_per_event))
                .collect();
            let nbrs = self.sampler.sample(self.csr, set, &neg_times);
            negs.push(StaticNegative {
                nbr_feats: self.edge_rows(&nbrs.eids),
                set: set.to_vec(),
                times: neg_times,
                nbrs,
            });
        }

        // The one serialized read's node list, in a fixed layout:
        // positive roots, positive slots, then per-set negative roots
        // and slots.
        let mut all_nodes = Vec::new();
        all_nodes.extend_from_slice(&pos_roots);
        all_nodes.extend_from_slice(&pos_nbrs.nbrs);
        for n in &negs {
            all_nodes.extend_from_slice(&n.set);
            all_nodes.extend_from_slice(&n.nbrs.nbrs);
        }

        let labels = self.dataset.labels.as_ref().map(|l| {
            let idx: Vec<usize> = eids.iter().map(|&e| e as usize).collect();
            l.gather_rows(&idx)
        });

        StaticBatch {
            event_feats: self.edge_rows(&eids),
            pos_nbr_feats: self.edge_rows(&pos_nbrs.eids),
            srcs,
            dsts,
            times,
            eids,
            pos_roots,
            pos_times,
            pos_nbrs,
            labels,
            negs,
            all_nodes,
        }
    }

    /// **Phase 2** of batch preparation: the memory-dependent gather.
    /// Issues the single serialized read for `sb.all_nodes` and splits
    /// the readout into positive/negative parts.
    ///
    /// Must run *after* the previous batch's `MemoryWrite` in the
    /// trainer's serialized memory order (the daemon's turn protocol,
    /// or program order on a direct [`MemoryState`]).
    pub fn finish(&self, sb: StaticBatch, mem: &mut dyn MemoryAccess) -> PreparedBatch {
        let full = mem.read(&sb.all_nodes);
        self.complete(sb, full)
    }

    /// Completes a batch from an already-gathered full readout (rows
    /// in `sb.all_nodes` order). Used by the speculative phase-2 path:
    /// the prefetch worker gathers from a possibly one-write-stale
    /// memory view, [`patch_readout`] repairs the written rows, then
    /// this split produces the final batch.
    pub fn complete(&self, sb: StaticBatch, full: MemoryReadout) -> PreparedBatch {
        assert_eq!(full.mem.rows(), sb.all_nodes.len(), "readout rows");

        // Split the readout back into parts.
        let mut cursor = 0usize;
        let mut take = |n: usize| {
            let r = cursor..cursor + n;
            cursor += n;
            r
        };
        let slice_readout = |r: Range<usize>| MemoryReadout {
            mem: full.mem.slice_rows(r.start, r.end),
            mem_ts: full.mem_ts[r.clone()].to_vec(),
            mail: full.mail.slice_rows(r.start, r.end),
            mail_ts: full.mail_ts[r].to_vec(),
        };

        let pos_rows = take(2 * sb.srcs.len() + sb.pos_nbrs.nbrs.len());
        let pos_readout = slice_readout(pos_rows);
        let pos = PositivePart {
            event_feats: sb.event_feats,
            nbr_feats: sb.pos_nbr_feats,
            srcs: sb.srcs,
            dsts: sb.dsts,
            times: sb.times,
            eids: sb.eids,
            roots: sb.pos_roots,
            root_times: sb.pos_times,
            nbrs: sb.pos_nbrs,
            readout: pos_readout,
            labels: sb.labels,
        };

        let mut negs = Vec::with_capacity(sb.negs.len());
        for n in sb.negs {
            let rows = take(n.set.len() + n.nbrs.nbrs.len());
            let readout = slice_readout(rows);
            negs.push(NegativePart {
                nbr_feats: n.nbr_feats,
                negs: n.set,
                times: n.times,
                nbrs: n.nbrs,
                readout,
            });
        }
        debug_assert_eq!(cursor, sb.all_nodes.len());
        PreparedBatch { pos, negs }
    }

    /// Prepares events `range` with the given negative sets
    /// (`neg_sets[g]` is a flat `range.len() · K` destination list)
    /// using **one** serialized memory read.
    ///
    /// Exactly `finish(prepare_static(..))` — the sequential
    /// composition of the two pipeline phases, kept as the reference
    /// path (and correctness oracle) for the pipelined executor.
    pub fn prepare(
        &self,
        range: Range<usize>,
        neg_sets: &[&[u32]],
        negs_per_event: usize,
        mem: &mut dyn MemoryAccess,
    ) -> PreparedBatch {
        self.finish(self.prepare_static(range, neg_sets, negs_per_event), mem)
    }
}

/// One negative set's memory-independent pieces.
#[derive(Clone, Debug)]
struct StaticNegative {
    set: Vec<u32>,
    times: Vec<f32>,
    nbrs: NeighborBlock,
    nbr_feats: Matrix,
}

/// Output of [`BatchPreparer::prepare_static`]: a batch minus its
/// node-memory rows. Produced on the prefetch thread, completed into a
/// [`PreparedBatch`] by [`BatchPreparer::finish`] on the trainer's
/// serialized memory turn.
#[derive(Clone, Debug)]
pub struct StaticBatch {
    srcs: Vec<u32>,
    dsts: Vec<u32>,
    times: Vec<f32>,
    eids: Vec<u32>,
    pos_roots: Vec<u32>,
    pos_times: Vec<f32>,
    pos_nbrs: NeighborBlock,
    event_feats: Matrix,
    pos_nbr_feats: Matrix,
    labels: Option<Matrix>,
    negs: Vec<StaticNegative>,
    all_nodes: Vec<u32>,
}

impl StaticBatch {
    /// Number of events `B`.
    pub fn len(&self) -> usize {
        self.srcs.len()
    }

    /// True for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.srcs.is_empty()
    }

    /// Rows the serialized memory read will gather.
    pub fn read_rows(&self) -> usize {
        self.all_nodes.len()
    }

    /// The node of every readout row, in gather order.
    pub fn nodes(&self) -> &[u32] {
        &self.all_nodes
    }
}

/// Repairs a speculatively gathered full readout: every row whose node
/// is in `stale` (any order, duplicates allowed — e.g. a
/// `MemoryWrite::nodes` list straight from the write) is re-read from
/// `mem` (the post-write state). Rows of nodes outside the stale set
/// were, by construction, untouched by the intervening write, so after
/// patching the readout is *bit-identical* to a serialized read — this
/// is the memory-dependency rule that lets phase 2 of batch `t + 1`
/// overlap the compute of batch `t`. Membership is a binary search
/// over a locally sorted copy: the stale set is one batch's root nodes
/// (small), the row scan is long, and hashing per row would dominate
/// the patch.
pub fn patch_readout(
    full: &mut MemoryReadout,
    all_nodes: &[u32],
    stale: &[u32],
    mem: &MemoryState,
) -> usize {
    if stale.is_empty() {
        return 0;
    }
    let sorted: Vec<u32> = if stale.windows(2).all(|w| w[0] < w[1]) {
        stale.to_vec()
    } else {
        let mut s = stale.to_vec();
        s.sort_unstable();
        s.dedup();
        s
    };
    let mut rows = Vec::new();
    let mut nodes = Vec::new();
    for (row, &n) in all_nodes.iter().enumerate() {
        if sorted.binary_search(&n).is_ok() {
            rows.push(row);
            nodes.push(n);
        }
    }
    if nodes.is_empty() {
        return 0;
    }
    let fresh = MemoryState::read(mem, &nodes);
    for (i, &row) in rows.iter().enumerate() {
        full.mem.row_mut(row).copy_from_slice(fresh.mem.row(i));
        full.mail.row_mut(row).copy_from_slice(fresh.mail.row(i));
        full.mem_ts[row] = fresh.mem_ts[i];
        full.mail_ts[row] = fresh.mail_ts[i];
    }
    rows.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use disttgl_data::generators;

    fn small_setup() -> (Dataset, TCsr, ModelConfig) {
        let d = generators::wikipedia(0.005, 3);
        let csr = TCsr::build(&d.graph);
        let cfg = ModelConfig::compact(d.edge_features.cols());
        (d, csr, cfg)
    }

    #[test]
    fn prepared_layout_is_consistent() {
        let (d, csr, cfg) = small_setup();
        let prep = BatchPreparer::new(&d, &csr, &cfg);
        let mut mem = MemoryState::new(d.graph.num_nodes(), cfg.d_mem, cfg.mail_dim());
        let b = 16;
        let negs: Vec<u32> = (0..b).map(|i| d.graph.events()[i].dst).collect();
        let batch = prep.prepare(0..b, &[&negs], 1, &mut mem);

        assert_eq!(batch.pos.len(), b);
        let k = cfg.n_neighbors;
        // Roots: 2B; slots: 2B·k.
        assert_eq!(batch.pos.readout.mem.rows(), 2 * b + 2 * b * k);
        assert_eq!(batch.pos.nbr_feats.rows(), 2 * b * k);
        assert_eq!(batch.pos.event_feats.shape(), (b, 172));
        assert_eq!(batch.negs.len(), 1);
        assert_eq!(batch.negs[0].readout.mem.rows(), b + b * k);
    }

    #[test]
    fn multiple_negative_sets_share_one_positive() {
        let (d, csr, cfg) = small_setup();
        let prep = BatchPreparer::new(&d, &csr, &cfg);
        let mut mem = MemoryState::new(d.graph.num_nodes(), cfg.d_mem, cfg.mail_dim());
        let b = 8;
        let n1: Vec<u32> = (0..b).map(|i| d.graph.events()[i].dst).collect();
        let n2: Vec<u32> = (0..b).map(|i| d.graph.events()[i + b].dst).collect();
        let batch = prep.prepare(0..b, &[&n1, &n2], 1, &mut mem);
        assert_eq!(batch.negs.len(), 2);
        assert_eq!(batch.negs[0].negs, n1);
        assert_eq!(batch.negs[1].negs, n2);
        // Negative query times repeat the event times.
        assert_eq!(batch.negs[0].times, batch.pos.times);
    }

    #[test]
    fn neighbor_queries_respect_event_times() {
        let (d, csr, cfg) = small_setup();
        let prep = BatchPreparer::new(&d, &csr, &cfg);
        let mut mem = MemoryState::new(d.graph.num_nodes(), cfg.d_mem, cfg.mail_dim());
        // Mid-stream batch: neighbors must all precede the event time.
        let batch = prep.prepare(100..116, &[], 1, &mut mem);
        let b = batch.pos.len();
        for r in 0..2 * b {
            let t_query = batch.pos.times[r % b];
            for s in 0..batch.pos.nbrs.counts[r] {
                let dt = batch.pos.nbrs.dts[batch.pos.nbrs.slot(r, s)];
                assert!(
                    dt >= 0.0,
                    "negative Δt at root {r} slot {s}: {dt} (query {t_query})"
                );
            }
        }
    }

    #[test]
    fn zero_edge_dim_dataset_prepares_empty_features() {
        let d = generators::mooc(0.002, 5);
        let csr = TCsr::build(&d.graph);
        let cfg = ModelConfig::compact(0);
        let prep = BatchPreparer::new(&d, &csr, &cfg);
        let mut mem = MemoryState::new(d.graph.num_nodes(), cfg.d_mem, cfg.mail_dim());
        let batch = prep.prepare(0..8, &[], 1, &mut mem);
        assert_eq!(batch.pos.event_feats.cols(), 0);
        assert_eq!(batch.pos.nbr_feats.cols(), 0);
        assert_eq!(batch.pos.nbr_feats.rows(), 16 * cfg.n_neighbors);
    }
}
