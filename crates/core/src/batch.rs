//! Mini-batch preparation.
//!
//! A training iteration needs, for every root node (positive sources,
//! positive destinations, and sampled negative destinations): its node
//! memory + cached mail, its k most recent supporting neighbors, and
//! their memory/mails/edge features. Epoch parallelism (§3.2.2)
//! prepares **one positive input and `j` negative inputs** in a single
//! serialized memory read so the same batch can be retrained `j` times
//! with different negatives without touching the memory daemon again.
//!
//! # The union-frontier occurrence layout
//!
//! With an `L`-layer embedding stack a part's occurrence list is the
//! concatenation of **all hop frontiers**: the `R` roots, then hop 0's
//! `R·k₀` slots, then hop 1's `R·k₀·k₁` slots, and so on
//! ([`occurrence_nodes`]). Every per-part row structure — the
//! per-occurrence readout, the [`ReadoutIndex`] fold, the gathered
//! block's part ranges — is defined over this one flat layout, so the
//! phase-1/phase-2 split, the daemon protocol, and the speculative
//! gather are *layer-count-agnostic*: one serialized memory read per
//! batch covers every layer's inputs, whatever `L` is. For `L = 1` the
//! layout degenerates to the historical `R·(1+k)` rows bit-for-bit.
//!
//! # The deduplicated readout path
//!
//! With most-recent-k sampling a part's readout occurrences
//! (roots + all hops' neighbor slots) cover far fewer *distinct* nodes
//! — the same `(mem, mail)` pair would be pushed through the GRU many
//! times. When [`ModelConfig::dedup_readout`] is on (the default),
//! [`BatchPreparer::prepare_static`] builds a [`ReadoutIndex`] per
//! part — the unique node list in **first-occurrence order** over the
//! union of all hop frontiers, plus the `occurrence → unique`
//! expansion map — and the serialized phase-2 read gathers **one
//! memory row per unique node**. The model runs the GRU over the
//! folded block and expands `ŝ` to occurrence order only where the
//! attention layers consume it. Since the memory update is a pure
//! per-row function of `(mem, mail)`, which are identical across a
//! node's occurrences (all read at batch start), the folded forward
//! is **bit-identical** to the per-occurrence oracle.
//!
//! ## Summation-order contract (backward determinism)
//!
//! Folding changes *gradient* summation: the backward pass must reduce
//! occurrence gradients into per-unique-node rows before the GRU
//! backward. The contract, relied on for run-to-run reproducibility
//! and enforced by `Matrix::fold_rows_by_index`:
//!
//! 1. unique ids are assigned in **first-occurrence order** over the
//!    part's occurrence list (`roots ++ hop₀ slots ++ hop₁ slots ++ …`,
//!    ascending row index);
//! 2. each unique node's gradient row accumulates its occurrences in
//!    **ascending occurrence index** (row 0, 1, 2, … of the part);
//! 3. the GRU backward then consumes the folded rows in unique order.
//!
//! Every sum is therefore formed in one fixed order, so folded runs
//! are bit-reproducible. Relative to the per-occurrence oracle the
//! per-unique pre-activation gradients are summed *before* the
//! weight-gradient contractions instead of inside them — identical in
//! exact arithmetic, equal within float tolerance in practice
//! (`tests/dedup_equivalence.rs` pins both properties).

use crate::config::ModelConfig;
use disttgl_data::Dataset;
use disttgl_graph::{NeighborBlock, RecentNeighborSampler, TemporalAdjacency};
use disttgl_mem::{MemoryClient, MemoryReadout, MemoryState, MemoryWrite};
use disttgl_tensor::Matrix;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

/// Uniform interface over the two ways a trainer reaches node memory:
/// directly (single-process baselines, evaluation) or through the
/// memory daemon (distributed training).
pub trait MemoryAccess {
    /// Gathers memory/mail rows for `nodes`.
    fn read(&mut self, nodes: &[u32]) -> MemoryReadout {
        let mut out = MemoryReadout::default();
        self.read_into(nodes, &mut out);
        out
    }
    /// [`MemoryAccess::read`] into a caller-owned readout, reusing its
    /// buffers (the scratch-arena pattern — hot loops keep one readout
    /// alive instead of allocating per turn).
    fn read_into(&mut self, nodes: &[u32], out: &mut MemoryReadout);
    /// Applies a write in serialized order.
    fn write(&mut self, w: MemoryWrite);
}

impl MemoryAccess for MemoryState {
    fn read_into(&mut self, nodes: &[u32], out: &mut MemoryReadout) {
        MemoryState::read_into(self, nodes, out);
    }
    fn write(&mut self, w: MemoryWrite) {
        MemoryState::write(self, &w);
    }
}

impl MemoryAccess for MemoryClient {
    fn read_into(&mut self, nodes: &[u32], out: &mut MemoryReadout) {
        MemoryClient::read_into(self, nodes, out);
    }
    fn write(&mut self, w: MemoryWrite) {
        MemoryClient::write(self, w);
    }
}

/// The flat occurrence list of a part: its roots followed by every
/// hop's padded neighbor slots, in hop order. This is the row layout
/// of the per-occurrence readout and the domain of the
/// [`ReadoutIndex`] fold — one list regardless of the stack depth.
pub fn occurrence_nodes(roots: &[u32], hops: &[NeighborBlock]) -> Vec<u32> {
    let mut occ = Vec::new();
    occurrence_nodes_into(roots, hops, &mut occ);
    occ
}

/// [`occurrence_nodes`] into a caller-owned buffer (cleared and
/// refilled in place — the serving plane's per-reader scratch path).
pub fn occurrence_nodes_into(roots: &[u32], hops: &[NeighborBlock], occ: &mut Vec<u32>) {
    let total = roots.len() + hops.iter().map(NeighborBlock::num_slots).sum::<usize>();
    occ.clear();
    occ.reserve(total);
    occ.extend_from_slice(roots);
    for hop in hops {
        occ.extend_from_slice(&hop.nbrs);
    }
}

/// Per-frontier row counts of a part's occurrence layout:
/// `[R, R·k₀, R·k₀·k₁, …]` — `1 + hops.len()` entries (the roots are
/// frontier 0).
pub fn frontier_sizes(num_roots: usize, hops: &[NeighborBlock]) -> Vec<usize> {
    let mut sizes = Vec::with_capacity(1 + hops.len());
    sizes.push(num_roots);
    sizes.extend(hops.iter().map(NeighborBlock::num_slots));
    sizes
}

/// Total occurrence rows of a part (all frontiers).
pub fn occurrence_rows(num_roots: usize, hops: &[NeighborBlock]) -> usize {
    num_roots + hops.iter().map(NeighborBlock::num_slots).sum::<usize>()
}

/// Gathers the dataset's edge-feature rows for arbitrary eids
/// (zero-width safe) — shared by batch preparation, the engine's
/// replay fast path, and the serving plane.
pub(crate) fn edge_feature_rows(dataset: &Dataset, eids: &[u32]) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    let mut idx = Vec::new();
    edge_feature_rows_into(dataset, eids, &mut out, &mut idx);
    out
}

/// [`edge_feature_rows`] into a caller-owned matrix, reusing its
/// buffer (and an index scratch) — the serving plane's per-reader
/// scratch path.
pub(crate) fn edge_feature_rows_into(
    dataset: &Dataset,
    eids: &[u32],
    out: &mut Matrix,
    idx: &mut Vec<usize>,
) {
    if dataset.edge_features.cols() == 0 {
        out.resize_for_overwrite(eids.len(), 0);
        return;
    }
    idx.clear();
    idx.extend(eids.iter().map(|&e| e as usize));
    dataset.edge_features.gather_rows_into(idx, out);
}

/// The unique-node index of one batch part: the distinct nodes of the
/// part's occurrence list (`roots ++ hop slots`, see
/// [`occurrence_nodes`]) and the expansion map back to occurrence
/// order.
///
/// Built in phase 1 (memory-independent, so it rides the prefetch
/// thread); phase 2 gathers one memory row per entry of
/// `unique_nodes`. See the module docs for the summation-order
/// contract the index pins down.
#[derive(Clone, Debug, Default)]
pub struct ReadoutIndex {
    /// Distinct nodes in first-occurrence order; row `u` of the part's
    /// folded readout belongs to `unique_nodes[u]`.
    pub unique_nodes: Vec<u32>,
    /// For every occurrence row `i` of the per-occurrence layout,
    /// the folded row holding its node: `occ_to_unique[i] < U`.
    pub occ_to_unique: Vec<u32>,
}

impl ReadoutIndex {
    /// Builds the index over an occurrence list, assigning unique ids
    /// in first-occurrence order (deterministic — no hash iteration).
    pub fn build(occurrences: &[u32]) -> Self {
        let mut slot_of: HashMap<u32, u32> = HashMap::with_capacity(occurrences.len());
        let mut unique_nodes = Vec::new();
        let mut occ_to_unique = Vec::with_capacity(occurrences.len());
        for &node in occurrences {
            let next = unique_nodes.len() as u32;
            let id = *slot_of.entry(node).or_insert_with(|| {
                unique_nodes.push(node);
                next
            });
            occ_to_unique.push(id);
        }
        Self {
            unique_nodes,
            occ_to_unique,
        }
    }

    /// Number of distinct nodes `U`.
    pub fn num_unique(&self) -> usize {
        self.unique_nodes.len()
    }

    /// Rebuilds the index in place over a new occurrence list, reusing
    /// this index's vectors and a caller-owned hash-map scratch (the
    /// serving plane's per-reader scratch path). Bit-identical to
    /// [`ReadoutIndex::build`]: unique ids still assign in
    /// first-occurrence order.
    pub fn rebuild(&mut self, occurrences: &[u32], slot_of: &mut HashMap<u32, u32>) {
        slot_of.clear();
        self.unique_nodes.clear();
        self.occ_to_unique.clear();
        self.occ_to_unique.reserve(occurrences.len());
        for &node in occurrences {
            let next = self.unique_nodes.len() as u32;
            let id = *slot_of.entry(node).or_insert_with(|| {
                self.unique_nodes.push(node);
                next
            });
            self.occ_to_unique.push(id);
        }
    }
}

/// A row-range view into a batch's shared gathered readout block.
///
/// [`BatchPreparer::complete`] gathers **one** block for the whole
/// batch and hands every part an index-range view instead of copying
/// per-part [`MemoryReadout`]s (the copies were ~1/3 of phase-2
/// bytes). Rows of a part are contiguous in the block, so consumers
/// that need a dense matrix (the GRU) copy the range straight into
/// their scratch cache — one copy total, where the split used to add
/// another.
#[derive(Clone, Debug)]
pub struct ReadoutView {
    full: Arc<MemoryReadout>,
    start: usize,
    end: usize,
}

impl ReadoutView {
    /// Views rows `range` of `full`.
    ///
    /// # Panics
    /// Panics if the range exceeds the block.
    pub fn new(full: Arc<MemoryReadout>, range: Range<usize>) -> Self {
        assert!(
            range.start <= range.end && range.end <= full.mem.rows(),
            "ReadoutView: rows {}..{} out of {}",
            range.start,
            range.end,
            full.mem.rows()
        );
        Self {
            full,
            start: range.start,
            end: range.end,
        }
    }

    /// Wraps an owned readout as a whole-block view (the
    /// baseline/naive preparation path).
    pub fn whole(readout: MemoryReadout) -> Self {
        let rows = readout.mem.rows();
        Self::new(Arc::new(readout), 0..rows)
    }

    /// Number of rows in the view.
    pub fn rows(&self) -> usize {
        self.end - self.start
    }

    /// The shared underlying block (all parts of the batch).
    pub fn block(&self) -> &MemoryReadout {
        &self.full
    }

    /// This view's row range within [`ReadoutView::block`].
    pub fn range(&self) -> Range<usize> {
        self.start..self.end
    }

    /// Memory row `r` of the view.
    pub fn mem_row(&self, r: usize) -> &[f32] {
        self.full.mem.row(self.start + r)
    }

    /// Memory timestamp of view row `r`.
    pub fn mem_ts(&self, r: usize) -> f32 {
        self.full.mem_ts[self.start + r]
    }

    /// Mail timestamp of view row `r` (0 when no mail arrived yet).
    pub fn mail_ts(&self, r: usize) -> f32 {
        self.full.mail_ts[self.start + r]
    }

    /// True if any memory element in the view is NaN/∞.
    pub fn mem_has_non_finite(&self) -> bool {
        (0..self.rows()).any(|r| self.mem_row(r).iter().any(|v| !v.is_finite()))
    }

    /// Materializes the view as an owned per-part readout (tests and
    /// diagnostic paths; the hot path never copies).
    pub fn to_readout(&self) -> MemoryReadout {
        MemoryReadout {
            mem: self.full.mem.slice_rows(self.start, self.end),
            mem_ts: self.full.mem_ts[self.start..self.end].to_vec(),
            mail: self.full.mail.slice_rows(self.start, self.end),
            mail_ts: self.full.mail_ts[self.start..self.end].to_vec(),
        }
    }

    /// Recovers the underlying block for buffer reuse if this view
    /// holds the last reference to it (scratch-arena recycling: the
    /// trainer reclaims a retired batch's gathered block as the next
    /// serialized read's target).
    pub fn into_block(self) -> Option<MemoryReadout> {
        Arc::try_unwrap(self.full).ok()
    }
}

/// The positive half of a prepared batch: `B` chronological events.
///
/// Readout layout (per-occurrence oracle): rows `0..2B` are the roots
/// (`srcs` then `dsts`), followed by each hop's flattened neighbor
/// slots in hop order — `2B(1+k)` rows total for the 1-layer stack.
/// With `dedup_readout` the view instead holds one row per entry of
/// `uniq.unique_nodes`, and `uniq.occ_to_unique` maps the occurrence
/// layout onto it.
#[derive(Clone, Debug)]
pub struct PositivePart {
    /// Event sources.
    pub srcs: Vec<u32>,
    /// Event destinations.
    pub dsts: Vec<u32>,
    /// Event timestamps.
    pub times: Vec<f32>,
    /// Event ids (edge-feature rows).
    pub eids: Vec<u32>,
    /// The `2B` roots `srcs ++ dsts`, in readout row order (built once
    /// in phase 1; the model reads it every pass instead of cloning).
    pub roots: Vec<u32>,
    /// Query times of `roots` (`times ++ times`).
    pub root_times: Vec<f32>,
    /// Per-hop supporting-neighbor blocks: `hops[0]` covers the `2B`
    /// roots, `hops[d]` the slots of `hops[d − 1]` (padded slots stay
    /// padded — see `disttgl_graph::RecentNeighborSampler::sample_hops`).
    pub hops: Vec<NeighborBlock>,
    /// View of this part's memory/mail rows within the batch's shared
    /// gathered block: per-occurrence (roots then hop slots), or one
    /// row per unique node when `uniq` is set.
    pub readout: ReadoutView,
    /// Unique-node index of the folded readout (`None` on the
    /// per-occurrence oracle path).
    pub uniq: Option<ReadoutIndex>,
    /// Edge features of the events, `B × d_e`.
    pub event_feats: Matrix,
    /// Per-hop edge features of the neighbor slots
    /// (`nbr_feats[d].rows() == hops[d].num_slots()`).
    pub nbr_feats: Vec<Matrix>,
    /// Multi-label targets for classification datasets.
    pub labels: Option<Matrix>,
}

impl PositivePart {
    /// Number of events `B`.
    pub fn len(&self) -> usize {
        self.srcs.len()
    }

    /// True for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.srcs.is_empty()
    }

    /// The hop-0 neighbor block (every stack has at least one hop).
    pub fn nbrs(&self) -> &NeighborBlock {
        &self.hops[0]
    }
}

/// One negative set: `B·K` sampled destinations with the same
/// per-event timestamps.
#[derive(Clone, Debug)]
pub struct NegativePart {
    /// Negative destination ids, `B·K`.
    pub negs: Vec<u32>,
    /// Query times (event time repeated `K×`).
    pub times: Vec<f32>,
    /// Per-hop supporting-neighbor blocks of the negatives.
    pub hops: Vec<NeighborBlock>,
    /// View of this part's memory/mail rows (negative roots then hop
    /// slots, or unique rows when `uniq` is set).
    pub readout: ReadoutView,
    /// Unique-node index of the folded readout (`None` on the
    /// per-occurrence oracle path).
    pub uniq: Option<ReadoutIndex>,
    /// Per-hop edge features of the negative neighbor slots.
    pub nbr_feats: Vec<Matrix>,
}

impl NegativePart {
    /// The hop-0 neighbor block.
    pub fn nbrs(&self) -> &NeighborBlock {
        &self.hops[0]
    }
}

/// A fully prepared batch: positives plus `j ≥ 0` negative sets.
#[derive(Clone, Debug)]
pub struct PreparedBatch {
    /// The shared positive input.
    pub pos: PositivePart,
    /// Independent negative sets (one per epoch-parallel pass).
    pub negs: Vec<NegativePart>,
}

impl PreparedBatch {
    /// Consumes the batch and recovers its shared gathered block for
    /// buffer reuse, if no clones of the batch (or its views) are
    /// alive. Hot trainer loops recycle the retired batch's block as
    /// the next turn's read scratch instead of allocating.
    pub fn recycle_block(self) -> Option<MemoryReadout> {
        // All parts view the same block; drop the negatives' handles
        // first, then unwrap through the positive part's view.
        let PreparedBatch { pos, negs } = self;
        drop(negs);
        pos.readout.into_block()
    }
}

/// Builds prepared batches from a dataset + a time-sorted adjacency
/// index (the frozen `TCsr` for training/offline evaluation, or the
/// appendable `DynamicTCsr` when preparing over an evolving graph).
pub struct BatchPreparer<'a> {
    dataset: &'a Dataset,
    adj: &'a dyn TemporalAdjacency,
    sampler: RecentNeighborSampler,
    dedup: bool,
}

impl<'a> BatchPreparer<'a> {
    /// Creates a preparer sampling `cfg.fanouts()` supporting nodes
    /// per hop (`cfg.n_neighbors` at every hop unless
    /// `cfg.neighbor_fanouts` overrides it). `cfg.dedup_readout`
    /// selects between the folded (unique-row) and per-occurrence
    /// readout layouts.
    pub fn new(dataset: &'a Dataset, adj: &'a dyn TemporalAdjacency, cfg: &ModelConfig) -> Self {
        Self {
            dataset,
            adj,
            sampler: RecentNeighborSampler::with_fanouts(cfg.fanouts()),
            dedup: cfg.dedup_readout,
        }
    }

    /// Gathers edge features for arbitrary eids (zero-width safe).
    fn edge_rows(&self, eids: &[u32]) -> Matrix {
        edge_feature_rows(self.dataset, eids)
    }

    /// **Phase 1** of batch preparation: everything that does *not*
    /// touch node memory — neighbor sampling over the static T-CSR,
    /// negative slicing, edge-feature and label gathers, and the node
    /// list of the upcoming serialized memory read.
    ///
    /// Because nothing here depends on mutable training state, this
    /// phase is safe to run arbitrarily far ahead of the training loop
    /// (the pipelined executor runs it one batch ahead on a prefetch
    /// thread).
    pub fn prepare_static(
        &self,
        range: Range<usize>,
        neg_sets: &[&[u32]],
        negs_per_event: usize,
    ) -> StaticBatch {
        let events = &self.dataset.graph.events()[range];
        let b = events.len();
        let srcs: Vec<u32> = events.iter().map(|e| e.src).collect();
        let dsts: Vec<u32> = events.iter().map(|e| e.dst).collect();
        let times: Vec<f32> = events.iter().map(|e| e.t).collect();
        let eids: Vec<u32> = events.iter().map(|e| e.eid).collect();

        // Roots of the positive part: sources then destinations, each
        // queried at its event time. The sampler expands the full
        // multi-hop frontier (one padded block per hop).
        let mut pos_roots = srcs.clone();
        pos_roots.extend_from_slice(&dsts);
        let mut pos_times = times.clone();
        pos_times.extend_from_slice(&times);
        let pos_hops = self.sampler.sample_hops(self.adj, &pos_roots, &pos_times);

        // Negative roots per set.
        let mut negs = Vec::with_capacity(neg_sets.len());
        for set in neg_sets {
            assert_eq!(set.len(), b * negs_per_event, "negative set length");
            let neg_times: Vec<f32> = times
                .iter()
                .flat_map(|&t| std::iter::repeat_n(t, negs_per_event))
                .collect();
            let hops = self.sampler.sample_hops(self.adj, set, &neg_times);
            let uniq = self
                .dedup
                .then(|| ReadoutIndex::build(&occurrence_nodes(set, &hops)));
            negs.push(StaticNegative {
                nbr_feats: hops.iter().map(|h| self.edge_rows(&h.eids)).collect(),
                set: set.to_vec(),
                times: neg_times,
                hops,
                uniq,
            });
        }

        // Unique-node index of the positive part over its occurrence
        // list `roots ++ hop slots` — the union of every hop frontier,
        // so one folded gather covers every layer's inputs
        // (memory-independent, so it is built here in phase 1 and
        // rides the prefetch thread).
        let pos_uniq = self
            .dedup
            .then(|| ReadoutIndex::build(&occurrence_nodes(&pos_roots, &pos_hops)));

        // The one serialized read's node list, in a fixed layout:
        // positive part, then the negative sets in order. Per part the
        // layout is roots-then-hop-slots (per-occurrence), or the
        // part's unique nodes in first-occurrence order when
        // deduplicating — either way each part's rows are one
        // contiguous range of the gathered block.
        let mut all_nodes = Vec::new();
        match &pos_uniq {
            Some(u) => all_nodes.extend_from_slice(&u.unique_nodes),
            None => all_nodes.extend(occurrence_nodes(&pos_roots, &pos_hops)),
        }
        for n in &negs {
            match &n.uniq {
                Some(u) => all_nodes.extend_from_slice(&u.unique_nodes),
                None => all_nodes.extend(occurrence_nodes(&n.set, &n.hops)),
            }
        }

        let labels = self.dataset.labels.as_ref().map(|l| {
            let idx: Vec<usize> = eids.iter().map(|&e| e as usize).collect();
            l.gather_rows(&idx)
        });

        StaticBatch {
            event_feats: self.edge_rows(&eids),
            pos_nbr_feats: pos_hops.iter().map(|h| self.edge_rows(&h.eids)).collect(),
            srcs,
            dsts,
            times,
            eids,
            pos_roots,
            pos_times,
            pos_hops,
            pos_uniq,
            labels,
            negs,
            all_nodes,
        }
    }

    /// **Phase 2** of batch preparation: the memory-dependent gather.
    /// Issues the single serialized read for `sb.all_nodes` and splits
    /// the readout into positive/negative parts.
    ///
    /// Must run *after* the previous batch's `MemoryWrite` in the
    /// trainer's serialized memory order (the daemon's turn protocol,
    /// or program order on a direct [`MemoryState`]).
    pub fn finish(&self, sb: StaticBatch, mem: &mut dyn MemoryAccess) -> PreparedBatch {
        self.finish_with(sb, mem, MemoryReadout::default())
    }

    /// [`BatchPreparer::finish`] gathering into `scratch` (typically a
    /// retired batch's block recovered via
    /// [`PreparedBatch::recycle_block`]) so steady-state turns reuse
    /// one allocation instead of creating a readout per turn.
    pub fn finish_with(
        &self,
        sb: StaticBatch,
        mem: &mut dyn MemoryAccess,
        mut scratch: MemoryReadout,
    ) -> PreparedBatch {
        mem.read_into(&sb.all_nodes, &mut scratch);
        self.complete(sb, scratch)
    }

    /// Completes a batch from an already-gathered full readout (rows
    /// in `sb.all_nodes` order). Used by the speculative phase-2 path:
    /// the prefetch worker gathers from a possibly one-write-stale
    /// memory view, [`patch_readout`] repairs the written rows, then
    /// this split produces the final batch.
    pub fn complete(&self, sb: StaticBatch, full: MemoryReadout) -> PreparedBatch {
        assert_eq!(full.mem.rows(), sb.all_nodes.len(), "readout rows");

        // Hand each part an index-range view into the one shared block
        // — no per-part row copies (ROADMAP's readout-split item).
        let full = Arc::new(full);
        let mut cursor = 0usize;
        let mut take = |n: usize| {
            let r = cursor..cursor + n;
            cursor += n;
            r
        };

        let pos_rows = match &sb.pos_uniq {
            Some(u) => take(u.num_unique()),
            None => take(occurrence_rows(sb.pos_roots.len(), &sb.pos_hops)),
        };
        let pos = PositivePart {
            event_feats: sb.event_feats,
            nbr_feats: sb.pos_nbr_feats,
            srcs: sb.srcs,
            dsts: sb.dsts,
            times: sb.times,
            eids: sb.eids,
            roots: sb.pos_roots,
            root_times: sb.pos_times,
            hops: sb.pos_hops,
            readout: ReadoutView::new(Arc::clone(&full), pos_rows),
            uniq: sb.pos_uniq,
            labels: sb.labels,
        };

        let mut negs = Vec::with_capacity(sb.negs.len());
        for n in sb.negs {
            let rows = match &n.uniq {
                Some(u) => take(u.num_unique()),
                None => take(occurrence_rows(n.set.len(), &n.hops)),
            };
            negs.push(NegativePart {
                nbr_feats: n.nbr_feats,
                negs: n.set,
                times: n.times,
                hops: n.hops,
                readout: ReadoutView::new(Arc::clone(&full), rows),
                uniq: n.uniq,
            });
        }
        debug_assert_eq!(cursor, sb.all_nodes.len());
        PreparedBatch { pos, negs }
    }

    /// Prepares events `range` with the given negative sets
    /// (`neg_sets[g]` is a flat `range.len() · K` destination list)
    /// using **one** serialized memory read.
    ///
    /// Exactly `finish(prepare_static(..))` — the sequential
    /// composition of the two pipeline phases, kept as the reference
    /// path (and correctness oracle) for the pipelined executor.
    pub fn prepare(
        &self,
        range: Range<usize>,
        neg_sets: &[&[u32]],
        negs_per_event: usize,
        mem: &mut dyn MemoryAccess,
    ) -> PreparedBatch {
        self.finish(self.prepare_static(range, neg_sets, negs_per_event), mem)
    }
}

/// One negative set's memory-independent pieces.
#[derive(Clone, Debug)]
struct StaticNegative {
    set: Vec<u32>,
    times: Vec<f32>,
    hops: Vec<NeighborBlock>,
    nbr_feats: Vec<Matrix>,
    uniq: Option<ReadoutIndex>,
}

/// Output of [`BatchPreparer::prepare_static`]: a batch minus its
/// node-memory rows. Produced on the prefetch thread, completed into a
/// [`PreparedBatch`] by [`BatchPreparer::finish`] on the trainer's
/// serialized memory turn.
#[derive(Clone, Debug)]
pub struct StaticBatch {
    srcs: Vec<u32>,
    dsts: Vec<u32>,
    times: Vec<f32>,
    eids: Vec<u32>,
    pos_roots: Vec<u32>,
    pos_times: Vec<f32>,
    pos_hops: Vec<NeighborBlock>,
    pos_uniq: Option<ReadoutIndex>,
    event_feats: Matrix,
    pos_nbr_feats: Vec<Matrix>,
    labels: Option<Matrix>,
    negs: Vec<StaticNegative>,
    all_nodes: Vec<u32>,
}

impl StaticBatch {
    /// Number of events `B`.
    pub fn len(&self) -> usize {
        self.srcs.len()
    }

    /// True for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.srcs.is_empty()
    }

    /// Rows the serialized memory read will gather.
    pub fn read_rows(&self) -> usize {
        self.all_nodes.len()
    }

    /// The node of every readout row, in gather order.
    pub fn nodes(&self) -> &[u32] {
        &self.all_nodes
    }
}

/// Repairs a speculatively gathered full readout: every row whose node
/// is in `stale` (any order, duplicates allowed — e.g. a
/// `MemoryWrite::nodes` list straight from the write) is re-read from
/// `mem` (the post-write state). Rows of nodes outside the stale set
/// were, by construction, untouched by the intervening write, so after
/// patching the readout is *bit-identical* to a serialized read — this
/// is the memory-dependency rule that lets phase 2 of batch `t + 1`
/// overlap the compute of batch `t`. Membership is a binary search
/// over a locally sorted copy: the stale set is one batch's root nodes
/// (small), the row scan is long, and hashing per row would dominate
/// the patch.
pub fn patch_readout(
    full: &mut MemoryReadout,
    all_nodes: &[u32],
    stale: &[u32],
    mem: &MemoryState,
) -> usize {
    if stale.is_empty() {
        return 0;
    }
    let sorted: Vec<u32> = if stale.windows(2).all(|w| w[0] < w[1]) {
        stale.to_vec()
    } else {
        let mut s = stale.to_vec();
        s.sort_unstable();
        s.dedup();
        s
    };
    let mut rows = Vec::new();
    let mut nodes = Vec::new();
    for (row, &n) in all_nodes.iter().enumerate() {
        if sorted.binary_search(&n).is_ok() {
            rows.push(row);
            nodes.push(n);
        }
    }
    if nodes.is_empty() {
        return 0;
    }
    let fresh = MemoryState::read(mem, &nodes);
    for (i, &row) in rows.iter().enumerate() {
        full.mem.row_mut(row).copy_from_slice(fresh.mem.row(i));
        full.mail.row_mut(row).copy_from_slice(fresh.mail.row(i));
        full.mem_ts[row] = fresh.mem_ts[i];
        full.mail_ts[row] = fresh.mail_ts[i];
    }
    rows.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use disttgl_data::generators;
    use disttgl_graph::TCsr;

    fn small_setup() -> (Dataset, TCsr, ModelConfig) {
        let d = generators::wikipedia(0.005, 3);
        let csr = TCsr::build(&d.graph);
        let cfg = ModelConfig::compact(d.edge_features.cols());
        (d, csr, cfg)
    }

    #[test]
    fn prepared_layout_is_consistent() {
        let (d, csr, cfg) = small_setup();
        let cfg = cfg.without_dedup_readout();
        let prep = BatchPreparer::new(&d, &csr, &cfg);
        let mut mem = MemoryState::new(d.graph.num_nodes(), cfg.d_mem, cfg.mail_dim());
        let b = 16;
        let negs: Vec<u32> = (0..b).map(|i| d.graph.events()[i].dst).collect();
        let batch = prep.prepare(0..b, &[&negs], 1, &mut mem);

        assert_eq!(batch.pos.len(), b);
        let k = cfg.n_neighbors;
        // Roots: 2B; slots: 2B·k.
        assert_eq!(batch.pos.readout.rows(), 2 * b + 2 * b * k);
        assert!(batch.pos.uniq.is_none());
        assert_eq!(batch.pos.hops.len(), 1);
        assert_eq!(batch.pos.nbr_feats[0].rows(), 2 * b * k);
        assert_eq!(batch.pos.event_feats.shape(), (b, 172));
        assert_eq!(batch.negs.len(), 1);
        assert_eq!(batch.negs[0].readout.rows(), b + b * k);
    }

    #[test]
    fn dedup_layout_gathers_one_row_per_unique_node() {
        let (d, csr, cfg) = small_setup();
        assert!(cfg.dedup_readout, "dedup is the default");
        let prep = BatchPreparer::new(&d, &csr, &cfg);
        let mut mem = MemoryState::new(d.graph.num_nodes(), cfg.d_mem, cfg.mail_dim());
        let b = 16;
        let negs: Vec<u32> = (0..b).map(|i| d.graph.events()[i].dst).collect();
        let batch = prep.prepare(0..b, &[&negs], 1, &mut mem);

        let k = cfg.n_neighbors;
        let uniq = batch.pos.uniq.as_ref().expect("dedup index");
        assert_eq!(uniq.occ_to_unique.len(), 2 * b + 2 * b * k);
        assert_eq!(batch.pos.readout.rows(), uniq.num_unique());
        assert!(uniq.num_unique() <= 2 * b + 2 * b * k);
        // First-occurrence order, and every occurrence maps to its own
        // node's unique row.
        let occ_nodes = occurrence_nodes(&batch.pos.roots, &batch.pos.hops);
        let mut seen = std::collections::HashSet::new();
        let mut expect_next = 0u32;
        for (i, &node) in occ_nodes.iter().enumerate() {
            let u = uniq.occ_to_unique[i];
            assert_eq!(uniq.unique_nodes[u as usize], node, "occurrence {i}");
            if seen.insert(node) {
                assert_eq!(u, expect_next, "first-occurrence order");
                expect_next += 1;
            }
        }
        // The gathered rows are the unique nodes' rows (zeros here, but
        // shape/range must line up).
        assert_eq!(
            batch.pos.readout.block().mem.rows(),
            uniq.num_unique() + batch.negs[0].uniq.as_ref().unwrap().num_unique()
        );
    }

    /// Folded and per-occurrence layouts must expand to the same
    /// per-occurrence memory rows — the gather-level equivalence the
    /// model's bit-identical forward builds on.
    #[test]
    fn dedup_rows_expand_to_oracle_rows() {
        let (d, csr, cfg) = small_setup();
        let oracle_cfg = cfg.clone().without_dedup_readout();
        let mut mem = MemoryState::new(d.graph.num_nodes(), cfg.d_mem, cfg.mail_dim());
        // Seed some rows so the comparison is non-trivial.
        let seed: Vec<u32> = (0..12).map(|i| d.graph.events()[i].src).collect();
        let n = seed.len();
        MemoryAccess::write(
            &mut mem,
            MemoryWrite {
                nodes: seed,
                mem: Matrix::from_fn(n, cfg.d_mem, |r, c| (r * 7 + c) as f32),
                mem_ts: (0..n).map(|i| i as f32 + 1.0).collect(),
                mail: Matrix::from_fn(n, cfg.mail_dim(), |r, c| (r + c) as f32 * 0.5),
                mail_ts: (0..n).map(|i| i as f32 + 1.5).collect(),
            },
        );
        let folded = BatchPreparer::new(&d, &csr, &cfg).prepare(0..24, &[], 1, &mut mem.clone());
        let oracle = BatchPreparer::new(&d, &csr, &oracle_cfg).prepare(0..24, &[], 1, &mut mem);
        let uniq = folded.pos.uniq.as_ref().unwrap();
        let occ_rows = oracle.pos.readout.rows();
        assert_eq!(uniq.occ_to_unique.len(), occ_rows);
        for occ in 0..occ_rows {
            let u = uniq.occ_to_unique[occ] as usize;
            assert_eq!(
                folded.pos.readout.mem_row(u),
                oracle.pos.readout.mem_row(occ)
            );
            assert_eq!(folded.pos.readout.mem_ts(u), oracle.pos.readout.mem_ts(occ));
            assert_eq!(
                folded.pos.readout.mail_ts(u),
                oracle.pos.readout.mail_ts(occ)
            );
        }
    }

    /// Two-hop preparation: per-hop blocks multiply, the occurrence
    /// layout concatenates frontiers, and one gathered range per part
    /// still covers everything (the union contract).
    #[test]
    fn two_hop_layout_and_union_fold() {
        let (d, csr, cfg) = small_setup();
        let cfg = cfg.with_fanouts(vec![4, 2]);
        let prep = BatchPreparer::new(&d, &csr, &cfg);
        let mut mem = MemoryState::new(d.graph.num_nodes(), cfg.d_mem, cfg.mail_dim());
        let b = 12;
        let batch = prep.prepare(0..b, &[], 1, &mut mem);

        assert_eq!(batch.pos.hops.len(), 2);
        assert_eq!(batch.pos.hops[0].num_roots(), 2 * b);
        assert_eq!(batch.pos.hops[0].num_slots(), 2 * b * 4);
        assert_eq!(batch.pos.hops[1].num_roots(), 2 * b * 4);
        assert_eq!(batch.pos.hops[1].num_slots(), 2 * b * 4 * 2);
        assert_eq!(
            frontier_sizes(2 * b, &batch.pos.hops),
            vec![2 * b, 2 * b * 4, 2 * b * 4 * 2]
        );
        let occ = occurrence_nodes(&batch.pos.roots, &batch.pos.hops);
        assert_eq!(occ.len(), occurrence_rows(2 * b, &batch.pos.hops));
        // Per-hop features line up with each hop's slot count.
        assert_eq!(batch.pos.nbr_feats.len(), 2);
        assert_eq!(batch.pos.nbr_feats[0].rows(), 2 * b * 4);
        assert_eq!(batch.pos.nbr_feats[1].rows(), 2 * b * 4 * 2);
        // The fold covers the union: every occurrence of every hop
        // maps to a gathered row, and the gather is strictly smaller.
        let uniq = batch.pos.uniq.as_ref().expect("dedup default");
        assert_eq!(uniq.occ_to_unique.len(), occ.len());
        assert!(batch.pos.readout.rows() < occ.len());
        for (i, &node) in occ.iter().enumerate() {
            assert_eq!(uniq.unique_nodes[uniq.occ_to_unique[i] as usize], node);
        }
        // Padded hop-1 slots never expand (sentinel-node rule).
        let (h0, h1) = (&batch.pos.hops[0], &batch.pos.hops[1]);
        for idx in 0..h0.num_slots() {
            if !h0.is_valid_slot(idx) {
                assert_eq!(h1.counts[idx], 0, "padded slot {idx} expanded");
            }
        }
    }

    #[test]
    fn multiple_negative_sets_share_one_positive() {
        let (d, csr, cfg) = small_setup();
        let prep = BatchPreparer::new(&d, &csr, &cfg);
        let mut mem = MemoryState::new(d.graph.num_nodes(), cfg.d_mem, cfg.mail_dim());
        let b = 8;
        let n1: Vec<u32> = (0..b).map(|i| d.graph.events()[i].dst).collect();
        let n2: Vec<u32> = (0..b).map(|i| d.graph.events()[i + b].dst).collect();
        let batch = prep.prepare(0..b, &[&n1, &n2], 1, &mut mem);
        assert_eq!(batch.negs.len(), 2);
        assert_eq!(batch.negs[0].negs, n1);
        assert_eq!(batch.negs[1].negs, n2);
        // Negative query times repeat the event times.
        assert_eq!(batch.negs[0].times, batch.pos.times);
    }

    #[test]
    fn neighbor_queries_respect_event_times() {
        let (d, csr, cfg) = small_setup();
        let prep = BatchPreparer::new(&d, &csr, &cfg);
        let mut mem = MemoryState::new(d.graph.num_nodes(), cfg.d_mem, cfg.mail_dim());
        // Mid-stream batch: neighbors must all precede the event time.
        let batch = prep.prepare(100..116, &[], 1, &mut mem);
        let b = batch.pos.len();
        let nbrs = batch.pos.nbrs();
        for r in 0..2 * b {
            let t_query = batch.pos.times[r % b];
            for s in 0..nbrs.counts[r] {
                let dt = nbrs.dts[nbrs.slot(r, s)];
                assert!(
                    dt >= 0.0,
                    "negative Δt at root {r} slot {s}: {dt} (query {t_query})"
                );
            }
        }
    }

    #[test]
    fn zero_edge_dim_dataset_prepares_empty_features() {
        let d = generators::mooc(0.002, 5);
        let csr = TCsr::build(&d.graph);
        let cfg = ModelConfig::compact(0);
        let prep = BatchPreparer::new(&d, &csr, &cfg);
        let mut mem = MemoryState::new(d.graph.num_nodes(), cfg.d_mem, cfg.mail_dim());
        let batch = prep.prepare(0..8, &[], 1, &mut mem);
        assert_eq!(batch.pos.event_feats.cols(), 0);
        assert_eq!(batch.pos.nbr_feats[0].cols(), 0);
        assert_eq!(batch.pos.nbr_feats[0].rows(), 16 * cfg.n_neighbors);
    }
}
