//! The TGN-attn model with DistTGL's static-node-memory enhancement.
//!
//! Forward data flow per batch (paper Eq. 1–8, §3.1):
//!
//! 1. **Memory update** (Eq. 3/8): for every fetched node with a
//!    pending mail, `ŝ = GRU(s, mail)`; nodes without mail history keep
//!    `s` (zero until first event). With `dedup_readout` (default) the
//!    GRU runs once per *unique* node of the part and `ŝ` is expanded
//!    to occurrence order — bit-identical to the per-occurrence
//!    computation because the update is a pure per-row function of the
//!    `(mem, mail)` pair, which is shared by all of a node's
//!    occurrences. Gradients still reach the GRU from every usage
//!    (occurrence gradients are folded per unique node in ascending
//!    occurrence order — see `core::batch`), but never across events
//!    (no BPTT).
//! 2. **Static combine** (§3.1): `c = ŝ + s_static` when static node
//!    memory is enabled — the time-irrelevant information enters every
//!    read of the node state, at every hop of the frontier.
//! 3. **Temporal attention stack** (Eq. 4–7, generalized to `L`
//!    layers à la TGL): layer ℓ attends from every frontier node at
//!    depth `d < L − ℓ + 1` over its hop-`d` neighbors, with `Φ(Δt)`
//!    computed against the *memory update time* of each neighbor and
//!    the parent's own query time (the root's event time at depth 0,
//!    the connecting edge's time deeper). Each layer ends in its own
//!    combine MLP `ReLU(W_o·{h_in || h_att})`; after `L` layers only
//!    the roots remain. DistTGL's model is the `L = 1` instance, and
//!    that path is bit-identical to the historical single-layer code.
//! 4. **Memory I/O is depth-independent**: whatever `L` is, the stack
//!    consumes one readout over the *union* of all hop frontiers (see
//!    `core::batch`), so phases 1/2, the daemon protocol, and
//!    speculation never see the layer count — only a wider unique-node
//!    list.
//! 5. **Decoder**: link MLP on `{emb_src || emb_dst}` (1 positive + K
//!    sampled negatives per event), or the multi-label classifier.
//! 6. **Write-back** (delayed update, §2.1): the batch's root nodes
//!    get `mem ← ŝ` (detached) and a fresh mail
//!    `{ŝ_u || ŝ_v || Φ(t − t⁻) || e_uv}` applied at their *next*
//!    occurrence — the reversed computation order that avoids the
//!    information leak.

use crate::batch::{frontier_sizes, NegativePart, PositivePart, ReadoutIndex, ReadoutView};
use crate::config::{CombPolicy, ModelConfig};
use crate::static_mem::StaticMemory;
use disttgl_graph::NeighborBlock;
use disttgl_mem::MemoryWrite;
use disttgl_nn::{
    loss, Adam, AttentionCache, EdgeClassifier, EdgePredictor, GruCache, GruCell, Linear,
    LinearCache, ParamSet, TemporalAttention, TimeEncoding,
};
use disttgl_tensor::Matrix;
use rand::Rng;
use std::time::Instant;

/// Decoder head selected by the dataset task.
pub(crate) enum Head {
    Link(EdgePredictor),
    Class(EdgeClassifier),
}

/// One layer of the temporal-attention stack: attention plus its
/// combine MLP. Layer 0 reads `d_mem`-wide memory states; deeper
/// layers read the previous layer's `d_emb`-wide outputs. Weights are
/// shared across the frontier depths a layer processes (standard GNN
/// weight tying), which is why the attention slot count travels with
/// each call instead of the module.
#[derive(Clone, Copy)]
struct AttnLayer {
    attn: TemporalAttention,
    combine: Linear,
}

/// The model: module handles plus the shared [`ParamSet`].
pub struct TgnModel {
    /// Model hyper-parameters.
    pub cfg: ModelConfig,
    /// All learnable parameters (flat layout shared across replicas).
    pub params: ParamSet,
    time_enc: TimeEncoding,
    gru: GruCell,
    /// The `cfg.n_layers` attention layers, applied shallowest-input
    /// first (layer 0 consumes memory states at every depth).
    layers: Vec<AttnLayer>,
    head: Head,
    /// Per-trainer scratch arena reused across [`TgnModel::train_step`]
    /// calls: the GRU caches, masks, and memory-update buffers of both
    /// root sets live here, so the largest per-step matrices are
    /// allocated once and resized in place thereafter.
    scratch: StepScratch,
}

/// Reusable buffers for one embed pass (the memory-update stage, whose
/// matrices — union-frontier rows × mail_dim-adjacent — dominate
/// per-step allocation).
#[derive(Default)]
pub(crate) struct EmbedScratch {
    /// Fused-GRU gate buffers (see [`GruCell::forward_into`]).
    gru: GruCache,
    /// `ŝ`: GRU output where a mail was pending, prior memory
    /// elsewhere.
    s_hat: Matrix,
    /// 1.0 where the GRU output was selected (node had a mail).
    mask: Matrix,
    /// `ŝ + s_static` when static node memory is enabled.
    combined: Matrix,
    /// Per-depth occurrence-order rows of the memory-combined state —
    /// the layer stack's `h⁰` inputs (`states[d]` holds frontier `d`,
    /// so `states[0]`/`states[1]` are the historical
    /// `c_roots`/`c_slots`).
    states: Vec<Matrix>,
    /// Folded per-unique-node gradient accumulator (backward, dedup
    /// path).
    fold: Matrix,
    /// Cumulative wall seconds per attention layer's forward (all
    /// depths), the per-layer attribution
    /// [`TgnModel::layer_embed_secs`] reports.
    layer_secs: Vec<f64>,
}

/// Scratch for a whole training step: one arena per root set, since
/// the positive and negative embeds are both alive until backward.
#[derive(Default)]
pub(crate) struct StepScratch {
    pub(crate) pos: EmbedScratch,
    pub(crate) neg: EmbedScratch,
}

/// Forward state of one (layer, depth) attention+combine application.
struct DepthCache {
    attn_cache: AttentionCache,
    combine_cache: LinearCache,
    /// Pre-ReLU combine output.
    z: Matrix,
}

/// Per-root-set forward state kept for the backward pass (the parts
/// not already held by [`EmbedScratch`]).
pub(crate) struct EmbedCache {
    /// Per-hop Δt lists (shared by every layer attending over that
    /// hop).
    slot_dts: Vec<Vec<f32>>,
    /// `caches[ℓ][d]`: layer ℓ's application at frontier depth `d`.
    layers: Vec<Vec<DepthCache>>,
    /// Per-frontier row counts `[R, R·k₀, …]`.
    sizes: Vec<usize>,
}

/// Result of one training step.
#[derive(Clone, Debug)]
pub struct StepOutput {
    /// Mean loss of the step.
    pub loss: f32,
    /// Positive decoder scores (link task).
    pub pos_scores: Vec<f32>,
    /// Negative decoder scores, `B·K` (link task).
    pub neg_scores: Vec<f32>,
    /// The node-memory write-back for this batch's root nodes; the
    /// scheduler decides whether this trainer applies it.
    pub write: MemoryWrite,
}

impl TgnModel {
    /// Builds the model with seeded initialization.
    ///
    /// Parameter registration (and therefore RNG consumption) for
    /// `n_layers = 1` is identical to the historical single-layer
    /// model — `time, gru, attn, combine, head` in that order — so
    /// 1-layer checkpoints and seeded runs stay bit-compatible;
    /// deeper stacks append `attn1/combine1, attn2/combine2, …`
    /// between the first combine and the head.
    pub fn new(cfg: ModelConfig, rng: &mut impl Rng) -> Self {
        let fanouts = cfg.fanouts();
        let mut params = ParamSet::new();
        let time_enc = TimeEncoding::new(&mut params, "time", cfg.d_time, cfg.learnable_time);
        let gru = GruCell::new(&mut params, "gru", cfg.mail_dim(), cfg.d_mem, rng);
        let mut layers = Vec::with_capacity(cfg.n_layers);
        for (l, &fanout) in fanouts.iter().enumerate() {
            // Layer 0 consumes d_mem-wide memory states; deeper layers
            // consume the previous layer's d_emb-wide outputs.
            let in_dim = if l == 0 { cfg.d_mem } else { cfg.d_emb };
            let q_dim = in_dim + cfg.d_time;
            let kv_dim = in_dim + cfg.d_edge + cfg.d_time;
            let (attn_name, combine_name) = if l == 0 {
                ("attn".to_string(), "combine".to_string())
            } else {
                (format!("attn{l}"), format!("combine{l}"))
            };
            let attn = TemporalAttention::new(
                &mut params,
                &attn_name,
                q_dim,
                kv_dim,
                cfg.d_emb,
                fanout,
                rng,
            );
            let combine = Linear::new(
                &mut params,
                &combine_name,
                in_dim + cfg.d_emb,
                cfg.d_emb,
                rng,
            );
            layers.push(AttnLayer { attn, combine });
        }
        let head = if cfg.num_classes > 0 {
            Head::Class(EdgeClassifier::new(
                &mut params,
                "head",
                cfg.d_emb,
                cfg.d_emb,
                cfg.num_classes,
                rng,
            ))
        } else {
            Head::Link(EdgePredictor::new(
                &mut params,
                "head",
                cfg.d_emb,
                cfg.d_emb,
                rng,
            ))
        };
        Self {
            cfg,
            params,
            time_enc,
            gru,
            layers,
            head,
            scratch: StepScratch::default(),
        }
    }

    /// Creates an Adam optimizer shaped for this model.
    pub fn optimizer(&self, lr: f32) -> Adam {
        Adam::new(&self.params, lr)
    }

    /// Cumulative wall seconds spent in each attention layer's forward
    /// across every training step so far (positive + negative embeds)
    /// — the per-layer embed attribution surfaced in
    /// [`crate::TimingBreakdown::embed_layer_secs`]. Inference-path
    /// embeds use throwaway scratch and are not counted.
    pub fn layer_embed_secs(&self) -> Vec<f64> {
        (0..self.layers.len())
            .map(|l| {
                self.scratch.pos.layer_secs.get(l).copied().unwrap_or(0.0)
                    + self.scratch.neg.layer_secs.get(l).copied().unwrap_or(0.0)
            })
            .collect()
    }

    /// Updated memory `ŝ` (into `scratch.s_hat`), its selection mask
    /// (into `scratch.mask`), and effective update timestamps for a
    /// readout view (Eq. 3 with the has-mail guard). Rows are whatever
    /// the view holds — per-occurrence on the oracle path, one per
    /// unique node on the folded path; the math per row is identical.
    ///
    /// The fused GRU reads the view's row range of the shared gathered
    /// block straight into its cache (the only copy) and writes into
    /// the scratch buffers; rows without a pending mail are then
    /// overwritten with the prior memory in place — no per-part
    /// readout clone, no per-step GRU allocations.
    fn update_memory(&self, readout: &ReadoutView, scratch: &mut EmbedScratch) -> Vec<f32> {
        let block = readout.block();
        self.gru.forward_rows_into(
            &self.params,
            &block.mail,
            &block.mem,
            readout.range(),
            &mut scratch.gru,
            &mut scratch.s_hat,
        );
        let rows = readout.rows();
        scratch.mask.resize(rows, self.cfg.d_mem);
        let mut ts = vec![0.0f32; rows];
        for (r, t_out) in ts.iter_mut().enumerate() {
            if readout.mail_ts(r) > 0.0 {
                scratch.mask.row_mut(r).fill(1.0);
                *t_out = readout.mail_ts(r);
            } else {
                scratch.s_hat.row_mut(r).copy_from_slice(readout.mem_row(r));
                *t_out = readout.mem_ts(r);
            }
        }
        ts
    }

    /// Embeds a root set through the `L`-layer attention stack.
    /// `readout` rows follow the union-frontier occurrence layout of
    /// `core::batch` (`R` roots then each hop's slots) on the
    /// per-occurrence path, or one per unique node with `uniq` set
    /// (the folded path, bit-identical forward — expansion happens
    /// here, at the attention boundary).
    /// Returns `(embeddings, ŝ_roots, root update ts, cache)`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn embed(
        &self,
        roots: &[u32],
        times: &[f32],
        hops: &[NeighborBlock],
        readout: &ReadoutView,
        uniq: Option<&ReadoutIndex>,
        nbr_feats: &[Matrix],
        static_mem: Option<&StaticMemory>,
        scratch: &mut EmbedScratch,
    ) -> (Matrix, Matrix, Vec<f32>, EmbedCache) {
        let r = roots.len();
        let n_layers = self.layers.len();
        debug_assert_eq!(hops.len(), n_layers, "one hop block per layer");
        debug_assert_eq!(nbr_feats.len(), n_layers, "one feature block per hop");
        let sizes = frontier_sizes(r, hops);
        let occ_rows: usize = sizes.iter().sum();
        // offsets[d] = first occurrence row of frontier d.
        let mut offsets = Vec::with_capacity(sizes.len());
        let mut acc = 0usize;
        for &s in &sizes {
            offsets.push(acc);
            acc += s;
        }
        match uniq {
            Some(u) => {
                debug_assert_eq!(u.occ_to_unique.len(), occ_rows, "occurrence map");
                debug_assert_eq!(readout.rows(), u.num_unique(), "folded readout rows");
            }
            None => debug_assert_eq!(readout.rows(), occ_rows, "readout rows"),
        }

        // One fused GRU pass over the view's rows — once per unique
        // node on the folded path, once per occurrence on the oracle —
        // covering every frontier of every layer in a single stage.
        let ts = self.update_memory(readout, scratch);

        // Static combine: `ŝ + s_static`, accumulated straight from the
        // embedding table (no gathered block, no `ŝ` clone); without
        // static memory, `ŝ` is used as-is. On the folded path each
        // unique row gets its node's static row once — expansion below
        // replicates the identical sum to every occurrence. All
        // destinations are arena buffers, so the occurrence-size
        // matrices are allocated once per trainer, not per step.
        let EmbedScratch {
            s_hat,
            combined,
            states,
            layer_secs,
            ..
        } = scratch;
        let sel: &Matrix = match static_mem {
            Some(sm) if self.cfg.static_memory => {
                combined.copy_from(s_hat);
                match uniq {
                    Some(u) => {
                        combined.add_gathered_rows(0, sm.table(), &u.unique_nodes);
                    }
                    None => {
                        combined.add_gathered_rows(0, sm.table(), roots);
                        for (d, hop) in hops.iter().enumerate() {
                            combined.add_gathered_rows(offsets[d + 1], sm.table(), &hop.nbrs);
                        }
                    }
                }
                combined
            }
            _ => s_hat,
        };
        // h⁰ per depth: occurrence-order rows of the combined state
        // (states[0] = the historical c_roots, states[1] = c_slots).
        states.resize_with(sizes.len(), Matrix::default);
        for d in 0..sizes.len() {
            let range = offsets[d]..offsets[d] + sizes[d];
            match uniq {
                Some(u) => sel.expand_rows(&u.occ_to_unique[range], &mut states[d]),
                None => states[d].copy_rows_from(sel, range),
            }
        }

        // Per-hop Δt against each slot's memory-update time (Eq. 5);
        // the parent's query time is the event time at depth 0 and the
        // connecting edge's time deeper. Shared by every layer that
        // attends over the hop, so Φ(Δt) is encoded once per hop.
        let mut slot_dts: Vec<Vec<f32>> = Vec::with_capacity(n_layers);
        for (d, hop) in hops.iter().enumerate() {
            let k = hop.k;
            let parent_times: &[f32] = if d == 0 { times } else { &hops[d - 1].ts };
            debug_assert_eq!(parent_times.len(), sizes[d]);
            let mut dts = vec![0.0f32; sizes[d + 1]];
            for (parent, &t_query) in parent_times.iter().enumerate() {
                for s in 0..k {
                    let idx = parent * k + s;
                    let occ = offsets[d + 1] + idx;
                    let t_upd = match uniq {
                        Some(u) => ts[u.occ_to_unique[occ] as usize],
                        None => ts[occ],
                    };
                    dts[idx] = (t_query - t_upd).max(0.0);
                }
            }
            slot_dts.push(dts);
        }
        let phi_dts: Vec<Matrix> = slot_dts
            .iter()
            .map(|dts| self.time_enc.forward(&self.params, dts))
            .collect();
        // Φ(0) per query depth (layer ℓ queries depths `0..L − ℓ`, all
        // within `0..L`).
        let phi0: Vec<Matrix> = (0..n_layers)
            .map(|d| {
                let zeros = vec![0.0f32; sizes[d]];
                self.time_enc.forward(&self.params, &zeros)
            })
            .collect();

        // The layer stack: layer ℓ produces new states for depths
        // `0..L − ℓ`, each from its own state (query) and its hop's
        // slot states (keys/values). After L layers only depth 0 — the
        // roots — remains.
        layer_secs.resize(n_layers, 0.0);
        let mut caches: Vec<Vec<DepthCache>> = Vec::with_capacity(n_layers);
        let mut cur: Vec<Matrix> = Vec::new();
        for (l, layer) in self.layers.iter().enumerate() {
            let t_layer = Instant::now();
            let active = n_layers - l;
            let mut next = Vec::with_capacity(active);
            let mut layer_caches = Vec::with_capacity(active);
            for d in 0..active {
                let h_d: &Matrix = if l == 0 { &states[d] } else { &cur[d] };
                let h_d1: &Matrix = if l == 0 { &states[d + 1] } else { &cur[d + 1] };
                // Query features {h_d || Φ(0)}; key/value features
                // {h_{d+1} || E || Φ(Δt)}.
                let q_feat = Matrix::hcat(&[h_d, &phi0[d]]);
                let kv_feat = Matrix::hcat(&[h_d1, &nbr_feats[d], &phi_dts[d]]);
                let (h_att, attn_cache) = layer.attn.forward_slots(
                    &self.params,
                    &q_feat,
                    &kv_feat,
                    &hops[d].counts,
                    hops[d].k,
                );
                // Combine layer with ReLU.
                let x = Matrix::hcat(&[h_d, &h_att]);
                let (z, combine_cache) = layer.combine.forward(&self.params, &x);
                next.push(z.relu());
                layer_caches.push(DepthCache {
                    attn_cache,
                    combine_cache,
                    z,
                });
            }
            caches.push(layer_caches);
            cur = next;
            layer_secs[l] += t_layer.elapsed().as_secs_f64();
        }
        let emb = cur.pop().expect("stack leaves the root embeddings");

        let (s_hat_roots, root_ts) = match uniq {
            Some(u) => {
                // Returned to the caller (kept alive through
                // `build_write`), so this one is a fresh matrix — same
                // R x d_mem allocation class as the oracle's
                // `slice_rows`.
                let mut sh = Matrix::default();
                s_hat.expand_rows(&u.occ_to_unique[..r], &mut sh);
                let rts = (0..r).map(|e| ts[u.occ_to_unique[e] as usize]).collect();
                (sh, rts)
            }
            None => (s_hat.slice_rows(0, r), ts[0..r].to_vec()),
        };
        let cache = EmbedCache {
            slot_dts,
            layers: caches,
            sizes,
        };
        (emb, s_hat_roots, root_ts, cache)
    }

    /// Backward through one embed: accumulates all parameter gradients,
    /// unwinding the layer stack top-down. `scratch` must be the arena
    /// the matching [`TgnModel::embed`] call filled (GRU cache +
    /// selection mask), and `uniq` the same index that call was given:
    /// with it, occurrence gradients are folded per unique node — in
    /// ascending occurrence order, the summation contract of
    /// `core::batch` — before the single GRU backward over the folded
    /// rows.
    ///
    /// A depth-`d` state feeds layer ℓ twice — as depth `d`'s query /
    /// combine input and as depth `d − 1`'s keys/values — so its
    /// gradient merges both, in ascending-depth order (combine part,
    /// then query part, then the kv part arriving from depth `d − 1`'s
    /// earlier iteration): a fixed order, so stacked backward stays
    /// bit-reproducible.
    fn embed_backward(
        &mut self,
        cache: &EmbedCache,
        scratch: &mut EmbedScratch,
        uniq: Option<&ReadoutIndex>,
        demb: &Matrix,
    ) {
        let n_layers = self.layers.len();
        let sizes = &cache.sizes;

        // Gradients w.r.t. the current layer's *output* states, one
        // matrix per still-active depth; seeded with the embedding
        // gradient (only depth 0 survives the full stack).
        let mut g: Vec<Matrix> = Vec::new();
        for l in (0..n_layers).rev() {
            let layer = self.layers[l];
            let active = n_layers - l;
            let in_dim = if l == 0 {
                self.cfg.d_mem
            } else {
                self.cfg.d_emb
            };
            let mut g_prev: Vec<Option<Matrix>> = (0..=active).map(|_| None).collect();
            for d in 0..active {
                let gd: &Matrix = if l == n_layers - 1 { demb } else { &g[d] };
                let dc = &cache.layers[l][d];
                let dz = gd.hadamard(&dc.z.relu_deriv_from_input());
                let dx = layer
                    .combine
                    .backward(&mut self.params, &dc.combine_cache, &dz);
                let mut d_state = dx.slice_cols(0, in_dim);
                let d_h = dx.slice_cols(in_dim, dx.cols());

                let (dq_feat, dkv_feat) =
                    layer.attn.backward(&mut self.params, &dc.attn_cache, &d_h);
                d_state.add_assign(&dq_feat.slice_cols(0, in_dim));
                if self.cfg.learnable_time {
                    let zeros = vec![0.0f32; sizes[d]];
                    let dphi0 = dq_feat.slice_cols(in_dim, in_dim + self.cfg.d_time);
                    self.time_enc.backward(&mut self.params, &zeros, &dphi0);
                }
                match &mut g_prev[d] {
                    Some(m) => m.add_assign(&d_state),
                    None => g_prev[d] = Some(d_state),
                }

                let d_kv_state = dkv_feat.slice_cols(0, in_dim);
                if self.cfg.learnable_time {
                    let start = in_dim + self.cfg.d_edge;
                    let dphi = dkv_feat.slice_cols(start, start + self.cfg.d_time);
                    self.time_enc
                        .backward(&mut self.params, &cache.slot_dts[d], &dphi);
                }
                debug_assert_eq!(d_kv_state.rows(), sizes[d + 1]);
                match &mut g_prev[d + 1] {
                    Some(m) => m.add_assign(&d_kv_state),
                    None => g_prev[d + 1] = Some(d_kv_state),
                }
            }
            g = g_prev
                .into_iter()
                .map(|m| m.expect("every active depth receives a gradient"))
                .collect();
        }

        // d(ŝ) over the whole union frontier, in occurrence order
        // (depth 0 rows first — for L = 1 this is exactly the
        // historical `vcat(d_c_roots, d_c_slots)`); on the folded path
        // the occurrence gradients first reduce into per-unique rows
        // (ascending occurrence order — deterministic); GRU gradient
        // only where the mail was applied (the mask), per the
        // selection in `update_memory`.
        let parts: Vec<&Matrix> = g.iter().collect();
        let d_s_hat = Matrix::vcat(&parts);
        let d_gru_out = match uniq {
            Some(u) => {
                d_s_hat.fold_rows_by_index(&u.occ_to_unique, u.num_unique(), &mut scratch.fold);
                scratch.fold.hadamard(&scratch.mask)
            }
            None => d_s_hat.hadamard(&scratch.mask),
        };
        let (_dmail, _dmem) = self
            .gru
            .backward(&mut self.params, &scratch.gru, &d_gru_out);
        // No BPTT: gradients stop at the fetched memory and mails.
    }

    /// The decoder head (crate-internal: the inference engine scores
    /// through it).
    pub(crate) fn head(&self) -> &Head {
        &self.head
    }

    /// The **memory-update half** of an embed, without the attention
    /// stack: runs the folded GRU over `readout`'s unique rows and
    /// expands the first `num_roots` occurrences (Eq. 3 + the has-mail
    /// guard). Because the memory write-back reads nothing but `ŝ` of
    /// the roots, this is bit-identical to the root rows a full
    /// [`TgnModel::embed`] would produce — the GRU is a pure per-row
    /// function of `(mem, mail)`, whatever else shares the gather.
    /// Returns `(ŝ_roots, root update ts)`.
    pub(crate) fn fold_memory_update(
        &self,
        readout: &ReadoutView,
        uniq: &ReadoutIndex,
        num_roots: usize,
        scratch: &mut EmbedScratch,
    ) -> (Matrix, Vec<f32>) {
        debug_assert_eq!(readout.rows(), uniq.num_unique(), "folded readout rows");
        let ts = self.update_memory(readout, scratch);
        let mut s_hat_roots = Matrix::default();
        scratch
            .s_hat
            .expand_rows(&uniq.occ_to_unique[..num_roots], &mut s_hat_roots);
        let root_ts = (0..num_roots)
            .map(|e| ts[uniq.occ_to_unique[e] as usize])
            .collect();
        (s_hat_roots, root_ts)
    }

    /// Builds the delayed-update write-back for a batch's root nodes
    /// (`srcs`/`dsts`/`times`/`event_feats` are the batch's events,
    /// `s_hat_roots`/`root_ts` the updated memory of `srcs ++ dsts`).
    ///
    /// Write order is `u₀, v₀, u₁, v₁, …` (chronological), so the
    /// last-write-wins scatter realizes the most-recent-mail `COMB`.
    pub(crate) fn build_write(
        &self,
        srcs: &[u32],
        dsts: &[u32],
        times: &[f32],
        event_feats: &Matrix,
        s_hat_roots: &Matrix,
        root_ts: &[f32],
    ) -> MemoryWrite {
        let b = srcs.len();
        let d_mem = self.cfg.d_mem;
        let mail_dim = self.cfg.mail_dim();
        let mut nodes = Vec::with_capacity(2 * b);
        let mut mem = Matrix::zeros(2 * b, d_mem);
        let mut mem_ts = Vec::with_capacity(2 * b);
        let mut mail = Matrix::zeros(2 * b, mail_dim);
        let mut mail_ts = Vec::with_capacity(2 * b);

        // Time encodings of the mail deltas Φ(t − t⁻) for both
        // endpoints of every event.
        let mut deltas = Vec::with_capacity(2 * b);
        for e in 0..b {
            deltas.push((times[e] - root_ts[e]).max(0.0));
            deltas.push((times[e] - root_ts[b + e]).max(0.0));
        }
        let phi = self.time_enc.forward(&self.params, &deltas);

        for e in 0..b {
            let (u, v, t) = (srcs[e], dsts[e], times[e]);
            let su = s_hat_roots.row(e);
            let sv = s_hat_roots.row(b + e);
            let feats = event_feats.row(e);

            let row = 2 * e;
            nodes.push(u);
            mem.row_mut(row).copy_from_slice(su);
            mem_ts.push(root_ts[e]);
            {
                let m = mail.row_mut(row);
                m[0..d_mem].copy_from_slice(su);
                m[d_mem..2 * d_mem].copy_from_slice(sv);
                m[2 * d_mem..2 * d_mem + self.cfg.d_time].copy_from_slice(phi.row(row));
                m[2 * d_mem + self.cfg.d_time..].copy_from_slice(feats);
            }
            mail_ts.push(t);

            let row = 2 * e + 1;
            nodes.push(v);
            mem.row_mut(row).copy_from_slice(sv);
            mem_ts.push(root_ts[b + e]);
            {
                let m = mail.row_mut(row);
                m[0..d_mem].copy_from_slice(sv);
                m[d_mem..2 * d_mem].copy_from_slice(su);
                m[2 * d_mem..2 * d_mem + self.cfg.d_time].copy_from_slice(phi.row(row));
                m[2 * d_mem + self.cfg.d_time..].copy_from_slice(feats);
            }
            mail_ts.push(t);
        }
        match self.cfg.comb {
            CombPolicy::MostRecent => MemoryWrite {
                nodes,
                mem,
                mem_ts,
                mail,
                mail_ts,
            },
            CombPolicy::Mean => combine_mean(MemoryWrite {
                nodes,
                mem,
                mem_ts,
                mail,
                mail_ts,
            }),
        }
    }

    /// Replicates each source-embedding row `K×` to pair with the
    /// negatives.
    fn repeat_rows(m: &Matrix, k: usize) -> Matrix {
        let idx: Vec<usize> = (0..m.rows() * k).map(|i| i / k).collect();
        m.gather_rows(&idx)
    }

    /// Folds `B·K` row gradients back to `B` by summing each K-block.
    fn fold_rows(m: &Matrix, k: usize) -> Matrix {
        let b = m.rows() / k;
        let mut out = Matrix::zeros(b, m.cols());
        for r in 0..m.rows() {
            let dst = r / k;
            for (o, &v) in out.row_mut(dst).iter_mut().zip(m.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// One **training** step: forward + loss + full backward, gradient
    /// accumulation into `self.params`. Link-prediction datasets need
    /// `neg`; classification datasets need `pos.labels`.
    pub fn train_step(
        &mut self,
        pos: &PositivePart,
        neg: Option<&NegativePart>,
        static_mem: Option<&StaticMemory>,
    ) -> StepOutput {
        self.train_step_impl(pos, neg, static_mem, &mut |w| w)
    }

    /// [`TgnModel::train_step`] that hands the batch's `MemoryWrite` to
    /// `sink` as soon as it exists — right after the forward pass,
    /// before the decoder/backward (the majority of step compute).
    /// Nothing in the remainder of the step reads node memory, so a
    /// sink that applies the write immediately is semantically
    /// identical to applying `StepOutput::write` afterwards — and it
    /// opens the backward pass as an overlap window for the next
    /// batch's memory gather (the pipelined executor's phase 2). The
    /// returned `StepOutput.write` is empty.
    pub fn train_step_eager_write(
        &mut self,
        pos: &PositivePart,
        neg: Option<&NegativePart>,
        static_mem: Option<&StaticMemory>,
        sink: impl FnOnce(MemoryWrite),
    ) -> StepOutput {
        let mut sink = Some(sink);
        self.train_step_impl(pos, neg, static_mem, &mut |w| {
            (sink.take().expect("write produced once"))(w);
            MemoryWrite::default()
        })
    }

    fn train_step_impl(
        &mut self,
        pos: &PositivePart,
        neg: Option<&NegativePart>,
        static_mem: Option<&StaticMemory>,
        write_sink: &mut dyn FnMut(MemoryWrite) -> MemoryWrite,
    ) -> StepOutput {
        let b = pos.len();
        // Detach the arena so `self` stays borrowable; returned below.
        let mut scratch = std::mem::take(&mut self.scratch);
        let (pos_emb, s_hat_roots, root_ts, pos_cache) = self.embed(
            pos_roots(pos),
            pos_times(pos),
            &pos.hops,
            &pos.readout,
            pos.uniq.as_ref(),
            &pos.nbr_feats,
            static_mem,
            &mut scratch.pos,
        );
        let write = write_sink(self.build_write(
            &pos.srcs,
            &pos.dsts,
            &pos.times,
            &pos.event_feats,
            &s_hat_roots,
            &root_ts,
        ));
        let src_emb = pos_emb.slice_rows(0, b);
        let dst_emb = pos_emb.slice_rows(b, 2 * b);

        let out = match (&self.head, neg) {
            (Head::Link(pred), Some(neg)) => {
                let pred = *pred;
                let kneg = neg.negs.len() / b;
                let (neg_emb, _, _, neg_cache) = self.embed(
                    &neg.negs,
                    &neg.times,
                    &neg.hops,
                    &neg.readout,
                    neg.uniq.as_ref(),
                    &neg.nbr_feats,
                    static_mem,
                    &mut scratch.neg,
                );
                let (pos_logits, pc) = pred.forward(&self.params, &src_emb, &dst_emb);
                let src_rep = Self::repeat_rows(&src_emb, kneg);
                let (neg_logits, nc) = pred.forward(&self.params, &src_rep, &neg_emb);
                let (l, dp, dn) = loss::link_prediction_loss(&pos_logits, &neg_logits);

                let (dsrc1, ddst) = pred.backward(&mut self.params, &pc, &dp);
                let (dsrc_rep, dneg) = pred.backward(&mut self.params, &nc, &dn);
                let mut dsrc = dsrc1;
                dsrc.add_assign(&Self::fold_rows(&dsrc_rep, kneg));
                let dpos_emb = Matrix::vcat(&[&dsrc, &ddst]);
                self.embed_backward(&pos_cache, &mut scratch.pos, pos.uniq.as_ref(), &dpos_emb);
                self.embed_backward(&neg_cache, &mut scratch.neg, neg.uniq.as_ref(), &dneg);

                StepOutput {
                    loss: l,
                    pos_scores: pos_logits.into_vec(),
                    neg_scores: neg_logits.into_vec(),
                    write,
                }
            }
            (Head::Class(clf), _) => {
                let clf = *clf;
                let labels = pos.labels.as_ref().expect("classification needs labels");
                let (logits, pc) = clf.forward(&self.params, &src_emb, &dst_emb);
                let (l, dl) = loss::multi_label_bce(&logits, labels);
                let (dsrc, ddst) = clf.backward(&mut self.params, &pc, &dl);
                let dpos_emb = Matrix::vcat(&[&dsrc, &ddst]);
                self.embed_backward(&pos_cache, &mut scratch.pos, pos.uniq.as_ref(), &dpos_emb);
                StepOutput {
                    loss: l,
                    pos_scores: logits.into_vec(),
                    neg_scores: Vec::new(),
                    write,
                }
            }
            (Head::Link(_), None) => panic!("link prediction training needs a negative part"),
        };
        self.scratch = scratch;
        out
    }

    /// Inference-only step: scores + write-back, no gradients. Used by
    /// evaluation (which must keep updating node memory as it walks
    /// the stream) and by throughput measurements of the baselines.
    pub fn infer_step(
        &self,
        pos: &PositivePart,
        neg: Option<&NegativePart>,
        static_mem: Option<&StaticMemory>,
    ) -> StepOutput {
        // `&self` receiver → per-call engine scratch (evaluation and
        // serving hot loops hold their own long-lived
        // [`crate::InferenceEngine`] instead).
        crate::engine::InferenceEngine::new().infer_step(self, pos, neg, static_mem)
    }

    /// `repeat_rows` for the engine (crate-internal).
    pub(crate) fn repeat_rows_for(m: &Matrix, k: usize) -> Matrix {
        Self::repeat_rows(m, k)
    }
}

/// Mean-`COMB` post-processing: collapse duplicate nodes by averaging
/// their mails; memory rows and timestamps keep the latest occurrence
/// (the memory itself is identical across a node's occurrences — all
/// were read at batch start).
fn combine_mean(w: MemoryWrite) -> MemoryWrite {
    use std::collections::HashMap;
    let mut index: HashMap<u32, usize> = HashMap::new();
    let mut order: Vec<u32> = Vec::new();
    let mut counts: Vec<f32> = Vec::new();
    let d_mem = w.mem.cols();
    let mail_dim = w.mail.cols();
    let mut mem_rows: Vec<Vec<f32>> = Vec::new();
    let mut mail_sums: Vec<Vec<f32>> = Vec::new();
    let mut mem_ts = Vec::new();
    let mut mail_ts = Vec::new();
    for (row, &node) in w.nodes.iter().enumerate() {
        match index.get(&node) {
            Some(&slot) => {
                counts[slot] += 1.0;
                for (a, &b) in mail_sums[slot].iter_mut().zip(w.mail.row(row)) {
                    *a += b;
                }
                // Latest occurrence wins for memory and timestamps.
                mem_rows[slot].copy_from_slice(w.mem.row(row));
                mem_ts[slot] = w.mem_ts[row];
                mail_ts[slot] = w.mail_ts[row];
            }
            None => {
                index.insert(node, order.len());
                order.push(node);
                counts.push(1.0);
                mem_rows.push(w.mem.row(row).to_vec());
                mail_sums.push(w.mail.row(row).to_vec());
                mem_ts.push(w.mem_ts[row]);
                mail_ts.push(w.mail_ts[row]);
            }
        }
    }
    let n = order.len();
    let mut mem = Matrix::zeros(n, d_mem);
    let mut mail = Matrix::zeros(n, mail_dim);
    for slot in 0..n {
        mem.row_mut(slot).copy_from_slice(&mem_rows[slot]);
        let inv = 1.0 / counts[slot];
        for (o, &s) in mail.row_mut(slot).iter_mut().zip(&mail_sums[slot]) {
            *o = s * inv;
        }
    }
    MemoryWrite {
        nodes: order,
        mem,
        mem_ts,
        mail,
        mail_ts,
    }
}

/// The positive roots `srcs ++ dsts`, materialized once at batch
/// preparation (phase 1) instead of cloned on every training pass.
pub(crate) fn pos_roots(pos: &PositivePart) -> &[u32] {
    &pos.roots
}

/// Query times of [`pos_roots`] (`times ++ times`).
pub(crate) fn pos_times(pos: &PositivePart) -> &[f32] {
    &pos.root_times
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{BatchPreparer, MemoryAccess};
    use disttgl_data::{generators, NegativeStore};
    use disttgl_graph::TCsr;
    use disttgl_mem::MemoryState;
    use disttgl_tensor::seeded_rng;

    fn setup() -> (disttgl_data::Dataset, TCsr, ModelConfig) {
        let d = generators::wikipedia(0.005, 11);
        let csr = TCsr::build(&d.graph);
        let mut cfg = ModelConfig::compact(d.edge_features.cols());
        cfg.n_neighbors = 5;
        (d, csr, cfg)
    }

    #[test]
    fn train_step_produces_finite_loss_and_write() {
        let (d, csr, cfg) = setup();
        let mut rng = seeded_rng(1);
        let mut model = TgnModel::new(cfg.clone(), &mut rng);
        let prep = BatchPreparer::new(&d, &csr, &cfg);
        let mut mem = MemoryState::new(d.graph.num_nodes(), cfg.d_mem, cfg.mail_dim());
        let store = NegativeStore::generate(&d.graph, 64, 2, 1, 3);

        let batch = prep.prepare(0..32, &[store.slice(0, 0..32)], 1, &mut mem);
        let out = model.train_step(&batch.pos, Some(&batch.negs[0]), None);
        assert!(out.loss.is_finite() && out.loss > 0.0);
        assert_eq!(out.pos_scores.len(), 32);
        assert_eq!(out.neg_scores.len(), 32);
        assert_eq!(out.write.nodes.len(), 64);
        assert!(!out.write.mem.has_non_finite());
        // Gradients were accumulated.
        assert!(model.params.flatten_grads().iter().any(|&g| g != 0.0));
        assert!(!model.params.has_non_finite());
    }

    #[test]
    fn memory_write_feeds_next_batch() {
        let (d, csr, cfg) = setup();
        let mut rng = seeded_rng(2);
        let mut model = TgnModel::new(cfg.clone(), &mut rng);
        let prep = BatchPreparer::new(&d, &csr, &cfg);
        let mut mem = MemoryState::new(d.graph.num_nodes(), cfg.d_mem, cfg.mail_dim());
        let store = NegativeStore::generate(&d.graph, 128, 1, 1, 3);

        let b0 = prep.prepare(0..32, &[store.slice(0, 0..32)], 1, &mut mem);
        let out0 = model.train_step(&b0.pos, Some(&b0.negs[0]), None);
        MemoryAccess::write(&mut mem, out0.write);

        // Second batch: roots that appeared in batch 0 now carry
        // non-zero memory and mails.
        let b1 = prep.prepare(32..64, &[store.slice(0, 32..64)], 1, &mut mem);
        let touched: std::collections::HashSet<u32> =
            b0.pos.srcs.iter().chain(&b0.pos.dsts).copied().collect();
        let roots = pos_roots(&b1.pos);
        let mut saw_nonzero = false;
        for (r, node) in roots.iter().enumerate() {
            if touched.contains(node) {
                let row = b1
                    .pos
                    .uniq
                    .as_ref()
                    .map_or(r, |u| u.occ_to_unique[r] as usize);
                saw_nonzero |= b1.pos.readout.mail_ts(row) > 0.0;
            }
        }
        assert!(
            saw_nonzero,
            "batch-0 writes never surfaced in batch 1 reads"
        );
        let out1 = model.train_step(&b1.pos, Some(&b1.negs[0]), None);
        assert!(out1.loss.is_finite());
    }

    /// Training on repeated batches must reduce the loss — the
    /// end-to-end learning sanity check for the full manual backward.
    #[test]
    fn loss_decreases_with_training() {
        let (d, csr, cfg) = setup();
        let mut rng = seeded_rng(3);
        let mut model = TgnModel::new(cfg.clone(), &mut rng);
        let mut adam = model.optimizer(5e-3);
        let prep = BatchPreparer::new(&d, &csr, &cfg);
        let store = NegativeStore::generate(&d.graph, 64, 1, 1, 7);

        let mut first = 0.0;
        let mut last = 0.0;
        for iter in 0..30 {
            // Fresh memory each pass: isolates weight learning.
            let mut mem = MemoryState::new(d.graph.num_nodes(), cfg.d_mem, cfg.mail_dim());
            let batch = prep.prepare(0..64, &[store.slice(0, 0..64)], 1, &mut mem);
            model.params.zero_grads();
            let out = model.train_step(&batch.pos, Some(&batch.negs[0]), None);
            model.params.clip_grad_norm(5.0);
            adam.step(&mut model.params);
            if iter == 0 {
                first = out.loss;
            }
            last = out.loss;
        }
        assert!(
            last < first * 0.8,
            "loss failed to decrease: first {first}, last {last}"
        );
    }

    #[test]
    fn static_memory_changes_predictions() {
        let (d, csr, cfg) = setup();
        let mut rng = seeded_rng(4);
        let model = TgnModel::new(cfg.clone(), &mut rng);
        let prep = BatchPreparer::new(&d, &csr, &cfg);
        let mut mem = MemoryState::new(d.graph.num_nodes(), cfg.d_mem, cfg.mail_dim());
        let store = NegativeStore::generate(&d.graph, 32, 1, 1, 3);
        let batch = prep.prepare(0..16, &[store.slice(0, 0..16)], 1, &mut mem);

        let plain = model.infer_step(&batch.pos, Some(&batch.negs[0]), None);
        let sm = StaticMemory::random(d.graph.num_nodes(), cfg.d_mem, 5);
        let with_static = model.infer_step(&batch.pos, Some(&batch.negs[0]), Some(&sm));
        assert_ne!(plain.pos_scores, with_static.pos_scores);
    }

    #[test]
    fn classification_head_trains() {
        let d = generators::gdelt(2e-5, 9);
        let csr = TCsr::build(&d.graph);
        let mut cfg = ModelConfig::compact(d.edge_features.cols()).with_classes(56);
        cfg.n_neighbors = 5;
        let mut rng = seeded_rng(5);
        let mut model = TgnModel::new(cfg.clone(), &mut rng);
        let mut adam = model.optimizer(5e-3);
        let prep = BatchPreparer::new(&d, &csr, &cfg);

        let mut first = 0.0;
        let mut last = 0.0;
        for iter in 0..25 {
            let mut mem = MemoryState::new(d.graph.num_nodes(), cfg.d_mem, cfg.mail_dim());
            let batch = prep.prepare(0..64, &[], 1, &mut mem);
            model.params.zero_grads();
            let out = model.train_step(&batch.pos, None, None);
            model.params.clip_grad_norm(5.0);
            adam.step(&mut model.params);
            if iter == 0 {
                first = out.loss;
            }
            last = out.loss;
        }
        assert!(
            last < first,
            "classification loss: first {first}, last {last}"
        );
    }

    #[test]
    fn write_respects_comb_most_recent() {
        // If a node appears in two events of the batch, the write must
        // leave the *later* event's mail.
        let (d, csr, cfg) = setup();
        let mut rng = seeded_rng(6);
        let model = TgnModel::new(cfg.clone(), &mut rng);
        let prep = BatchPreparer::new(&d, &csr, &cfg);
        let mut mem = MemoryState::new(d.graph.num_nodes(), cfg.d_mem, cfg.mail_dim());
        let batch = prep.prepare(0..64, &[], 1, &mut mem);
        let out = model.infer_step(&batch.pos, None, None);
        MemoryAccess::write(&mut mem, out.write);
        // For every node, stored mail_ts must equal its *last* event
        // time within the batch.
        let mut expect: std::collections::HashMap<u32, f32> = Default::default();
        for e in 0..batch.pos.len() {
            expect.insert(batch.pos.srcs[e], batch.pos.times[e]);
            expect.insert(batch.pos.dsts[e], batch.pos.times[e]);
        }
        for (&node, &t) in &expect {
            let r = MemoryState::read(&mem, &[node]);
            assert_eq!(r.mail_ts[0], t, "node {node}");
        }
    }

    #[test]
    fn mean_comb_averages_duplicate_mails() {
        let (d, csr, mut cfg) = setup();
        cfg.comb = crate::config::CombPolicy::Mean;
        let mut rng = seeded_rng(8);
        let model = TgnModel::new(cfg.clone(), &mut rng);
        let prep = BatchPreparer::new(&d, &csr, &cfg);
        let mut mem = MemoryState::new(d.graph.num_nodes(), cfg.d_mem, cfg.mail_dim());
        let batch = prep.prepare(0..64, &[], 1, &mut mem);
        let out = model.infer_step(&batch.pos, None, None);
        // Nodes are unique after mean combination.
        let mut sorted = out.write.nodes.clone();
        sorted.sort_unstable();
        let len_before = sorted.len();
        sorted.dedup();
        assert_eq!(sorted.len(), len_before, "mean COMB must dedup nodes");
        // Timestamps still carry the node's latest event.
        let mut expect: std::collections::HashMap<u32, f32> = Default::default();
        for e in 0..batch.pos.len() {
            expect.insert(batch.pos.srcs[e], batch.pos.times[e]);
            expect.insert(batch.pos.dsts[e], batch.pos.times[e]);
        }
        for (node, &ts) in out.write.nodes.iter().zip(&out.write.mail_ts) {
            assert_eq!(ts, expect[node], "node {node}");
        }
        assert!(!out.write.mail.has_non_finite());
    }

    #[test]
    fn mean_and_most_recent_agree_when_no_duplicates() {
        let (d, csr, cfg) = setup();
        let mut cfg_mean = cfg.clone();
        cfg_mean.comb = crate::config::CombPolicy::Mean;
        let mut rng = seeded_rng(9);
        let model_a = TgnModel::new(cfg.clone(), &mut rng);
        let mut rng = seeded_rng(9);
        let model_b = TgnModel::new(cfg_mean, &mut rng);
        let prep = BatchPreparer::new(&d, &csr, &cfg);
        let mut mem = MemoryState::new(d.graph.num_nodes(), cfg.d_mem, cfg.mail_dim());
        // Find a small prefix without duplicate endpoints.
        let mut end = 0;
        let mut seen = std::collections::HashSet::new();
        for (idx, e) in d.graph.events().iter().enumerate().take(64) {
            if !seen.insert(e.src) || !seen.insert(e.dst) {
                break;
            }
            end = idx + 1;
        }
        assert!(end >= 2, "need a duplicate-free prefix");
        let batch = prep.prepare(0..end, &[], 1, &mut mem);
        let wa = model_a.infer_step(&batch.pos, None, None).write;
        let wb = model_b.infer_step(&batch.pos, None, None).write;
        assert_eq!(wa.nodes, wb.nodes);
        assert_eq!(wa.mail, wb.mail);
        assert_eq!(wa.mem, wb.mem);
    }

    #[test]
    fn infer_step_has_no_gradient_side_effects() {
        let (d, csr, cfg) = setup();
        let mut rng = seeded_rng(7);
        let model = TgnModel::new(cfg.clone(), &mut rng);
        let prep = BatchPreparer::new(&d, &csr, &cfg);
        let mut mem = MemoryState::new(d.graph.num_nodes(), cfg.d_mem, cfg.mail_dim());
        let store = NegativeStore::generate(&d.graph, 16, 1, 1, 3);
        let batch = prep.prepare(0..16, &[store.slice(0, 0..16)], 1, &mut mem);
        let _ = model.infer_step(&batch.pos, Some(&batch.negs[0]), None);
        assert!(model.params.flatten_grads().iter().all(|&g| g == 0.0));
    }
}
