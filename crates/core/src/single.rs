//! The sequential reference trainer: exact single-GPU (1×1×1) M-TGNN
//! training semantics. This is both the accuracy baseline of every
//! convergence figure and the correctness oracle the distributed
//! schedules are tested against.

use crate::batch::BatchPreparer;
use crate::checkpoint::{fingerprint, TrainCheckpoint};
use crate::config::{ModelConfig, TrainConfig};
use crate::eval::evaluate;
use crate::metrics::{ConvergencePoint, RunResult};
use crate::model::TgnModel;
use crate::pipeline::{read_lock, write_lock, BatchPrefetcher, PrefetchRequest, SharedMemory};
use crate::static_mem::StaticMemory;
use disttgl_data::{Dataset, NegativeStore, Task};
use disttgl_graph::{batching, TCsr};
use disttgl_mem::MemoryState;
use disttgl_tensor::seeded_rng;
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Trains on a single simulated GPU. `cfg.parallel` must be `1×1×1`.
///
/// Protocol (paper §4): chronological 70/15/15 split, pre-trained
/// static memory, node memory reset per epoch, LR scaled with batch
/// size, validation after every epoch using the live memory, final
/// test with the best... the paper reports the final model; we report
/// the final model's test metric plus the best-validation bookkeeping.
pub fn train_single(dataset: &Dataset, model_cfg: &ModelConfig, cfg: &TrainConfig) -> RunResult {
    run_single(dataset, model_cfg, cfg, false).0
}

/// [`train_single`] plus the final training-time [`MemoryState`]
/// (after the last epoch, before the validation/test replay) — the
/// state the equivalence tests compare.
pub fn train_single_traced(
    dataset: &Dataset,
    model_cfg: &ModelConfig,
    cfg: &TrainConfig,
) -> (RunResult, MemoryState) {
    run_single(dataset, model_cfg, cfg, false)
}

/// The pipelined single-GPU trainer: identical semantics to
/// [`train_single`], with batch *t + 1*'s preparation overlapped with
/// the compute of batch *t* on a prefetch thread — phase 1 (neighbor
/// sampling, negative slicing, feature gathers) unconditionally, and
/// the phase-2 memory gather during the backward pass via eager-write
/// scheduling. See [`crate::pipeline`] for the phase split and the
/// memory-dependency rule; results are bit-identical to the
/// sequential oracle.
pub fn train_single_pipelined(
    dataset: &Dataset,
    model_cfg: &ModelConfig,
    cfg: &TrainConfig,
) -> RunResult {
    run_single(dataset, model_cfg, cfg, true).0
}

/// [`train_single_pipelined`] plus the final training-time memory.
pub fn train_single_pipelined_traced(
    dataset: &Dataset,
    model_cfg: &ModelConfig,
    cfg: &TrainConfig,
) -> (RunResult, MemoryState) {
    run_single(dataset, model_cfg, cfg, true)
}

fn run_single(
    dataset: &Dataset,
    model_cfg: &ModelConfig,
    cfg: &TrainConfig,
    pipelined: bool,
) -> (RunResult, MemoryState) {
    assert_eq!(cfg.parallel.world(), 1, "train_single requires 1×1×1");
    let csr = Arc::new(TCsr::build(&dataset.graph));
    let (train_end, val_end) = dataset.graph.chronological_split(0.70, 0.15);

    // Resume: load + validate before touching anything expensive. A
    // bad checkpoint (corrupt file, different config) fails loudly
    // here — silently diverging from the oracle would be worse.
    let resume = cfg.resume_from.as_ref().map(|path| {
        let ckpt = TrainCheckpoint::load(std::path::Path::new(path))
            .unwrap_or_else(|e| panic!("resume from {path}: {e}"));
        ckpt.check_fingerprint(model_cfg, cfg)
            .unwrap_or_else(|e| panic!("resume from {path}: {e}"));
        ckpt
    });

    let mut rng = seeded_rng(cfg.seed);
    let mut model = TgnModel::new(model_cfg.clone(), &mut rng);
    let mut adam = model.optimizer(cfg.scaled_lr());

    let static_mem = if model_cfg.static_memory {
        // The saved table is bit-identical to re-running the pretrain
        // (both derive from cfg.seed); reusing it just skips the pass.
        match resume.as_ref().and_then(|c| c.static_table.clone()) {
            Some(t) => Some(StaticMemory::from_table(t)),
            None => Some(StaticMemory::pretrain(
                dataset,
                model_cfg.d_mem,
                train_end,
                10,
                cfg.seed ^ 0x5747,
            )),
        }
    } else {
        None
    };

    let store = match dataset.task {
        Task::LinkPrediction => Some(NegativeStore::generate(
            &dataset.graph,
            train_end,
            cfg.neg_groups,
            cfg.train_negs,
            cfg.seed ^ 0x4e45,
        )),
        Task::EdgeClassification => None,
    };

    let prep = BatchPreparer::new(dataset, csr.as_ref(), model_cfg);
    let memory: SharedMemory =
        Arc::new(RwLock::new(model_cfg.new_memory(dataset.graph.num_nodes())));
    let batches = batching::chronological_batches(0..train_end, cfg.local_batch);

    // Resume restarts at the checkpoint's epoch boundary; the
    // epoch-start memory reset means nothing mid-epoch needs replay.
    let start_epoch = resume.as_ref().map(|c| c.units_done).unwrap_or(0);
    assert!(
        start_epoch < cfg.epochs.max(1),
        "checkpoint already covers all {} epochs",
        cfg.epochs
    );

    // Flat (epoch, range) execution order, the prefetch schedule —
    // only the epochs this (possibly resumed) process will run.
    let plan: Vec<(usize, std::ops::Range<usize>)> = (start_epoch..cfg.epochs)
        .flat_map(|e| batches.iter().cloned().map(move |r| (e, r)))
        .collect();
    let request_for = |epoch: usize, range: std::ops::Range<usize>, gather: bool| {
        let mut req = PrefetchRequest::for_epoch(store.as_ref(), epoch, 1, range, cfg.train_negs);
        req.gather_memory = gather;
        req
    };
    let mut prefetcher = if pipelined && !plan.is_empty() {
        let mut p = BatchPrefetcher::spawn_with_memory(
            Arc::new(dataset.clone()),
            Arc::clone(&csr),
            model_cfg.clone(),
            Arc::clone(&memory),
        );
        // The first gather would race the initial epoch reset, so the
        // priming request is phase-1 only.
        p.request(request_for(plan[0].0, plan[0].1.clone(), false));
        Some(p)
    } else {
        None
    };
    let mut result = RunResult::default();
    let start = Instant::now();
    // Kernel-share attribution: the trainer thread's cumulative kernel
    // timers, differenced at the end of the run. Prefetch-worker
    // gathers land on the worker thread and are deliberately excluded —
    // they are off the critical path by construction.
    let kernels0 = disttgl_tensor::timing::snapshot();
    // Absolute iteration count (includes checkpointed work) vs. index
    // into this process's `plan` (remaining work only) — distinct on
    // a resumed run.
    let mut iteration = 0usize;
    let mut plan_idx = 0usize;
    let mut events_trained = 0u64;
    let mut eval_secs = 0.0f64;
    let mut eval_kernels = disttgl_tensor::timing::KernelTimings::default();

    if let Some(c) = &resume {
        model.params.unflatten_weights(&c.weights);
        adam.load_state(c.adam_t, &c.adam_state);
        result.loss_history = c.loss_history.clone();
        result.convergence = c.convergence.clone();
        iteration = c.iteration;
        events_trained = c.events_trained;
    }

    for epoch in start_epoch..cfg.epochs {
        write_lock(&memory).reset();
        for range in &batches {
            let t_prep = Instant::now();
            let out = match &mut prefetcher {
                Some(p) => {
                    // This batch's phase 1 — and, except after an epoch
                    // reset, its exact phase-2 gather — ran on the
                    // worker during the previous batch's backward pass
                    // (eager-write scheduling: the gather was issued
                    // only after the previous write landed, so it is
                    // never stale).
                    let resp = p.recv();
                    let full = match resp.readout {
                        Some(full) => full,
                        None => read_lock(&memory).read(resp.sb.nodes()),
                    };
                    let prepared = prep.complete(resp.sb, full);
                    result.timing.prep_secs += t_prep.elapsed().as_secs_f64();

                    let t_compute = Instant::now();
                    model.params.zero_grads();
                    let next = (plan_idx + 1 < plan.len()).then(|| plan[plan_idx + 1].clone());
                    let memory_ref = &memory;
                    let request_for_ref = &request_for;
                    let out = model.train_step_eager_write(
                        &prepared.pos,
                        prepared.negs.first(),
                        static_mem.as_ref(),
                        |w| {
                            // The write exists right after the forward
                            // pass; apply it now (nothing else reads
                            // memory before the next gather) and let
                            // the worker gather the next batch during
                            // this batch's backward pass.
                            write_lock(memory_ref).write(&w);
                            if let Some((e, r)) = next {
                                p.request(request_for_ref(e, r, e == epoch));
                            }
                        },
                    );
                    model.params.clip_grad_norm(5.0);
                    adam.step(&mut model.params);
                    result.timing.compute_secs += t_compute.elapsed().as_secs_f64();
                    out
                }
                None => {
                    let prepared = {
                        let mut guard = write_lock(&memory);
                        match (&store, dataset.task) {
                            (Some(store), Task::LinkPrediction) => {
                                let group = store.group_for_epoch(epoch);
                                let negs = store.slice(group, range.clone());
                                prep.prepare(range.clone(), &[negs], cfg.train_negs, &mut *guard)
                            }
                            _ => prep.prepare(range.clone(), &[], 1, &mut *guard),
                        }
                    };
                    result.timing.prep_secs += t_prep.elapsed().as_secs_f64();

                    let t_compute = Instant::now();
                    model.params.zero_grads();
                    let out =
                        model.train_step(&prepared.pos, prepared.negs.first(), static_mem.as_ref());
                    model.params.clip_grad_norm(5.0);
                    adam.step(&mut model.params);
                    result.timing.compute_secs += t_compute.elapsed().as_secs_f64();

                    write_lock(&memory).write(&out.write);
                    out
                }
            };
            result.loss_history.push(out.loss);
            iteration += 1;
            plan_idx += 1;
            events_trained += range.len() as u64;
        }

        if cfg.eval_every_epoch && val_end > train_end {
            let t_eval = Instant::now();
            let k_eval = disttgl_tensor::timing::snapshot();
            let mut val_mem = read_lock(&memory).clone();
            let eval_end = val_end.min(train_end.saturating_add(cfg.eval_max_events));
            let res = evaluate(
                &model,
                model_cfg,
                dataset,
                csr.as_ref(),
                &mut val_mem,
                static_mem.as_ref(),
                train_end..eval_end,
                cfg.local_batch,
                cfg.eval_negs,
                cfg.seed ^ epoch as u64,
            );
            eval_secs += t_eval.elapsed().as_secs_f64();
            eval_kernels = eval_kernels + (disttgl_tensor::timing::snapshot() - k_eval);
            result.convergence.push(ConvergencePoint {
                iteration,
                wall_secs: start.elapsed().as_secs_f64(),
                metric: res.metric,
            });
        }

        // Periodic checkpoint at the epoch boundary — the sequential
        // trainer's crash-consistent point. Saving is pure
        // observation (no training state is touched), so checkpointed
        // and plain runs stay bit-identical. The memory itself is not
        // saved: the next epoch starts with a reset, so resume
        // re-derives it. Boundaries at the final epoch are skipped —
        // there is nothing left to resume into.
        if let (Some(n), Some(dir)) = (cfg.checkpoint_every, cfg.checkpoint_dir.as_ref()) {
            let units = epoch + 1;
            if units % n == 0 && units < cfg.epochs {
                let store = crate::recover::CheckpointStore::open(dir, cfg.checkpoint_retain)
                    .unwrap_or_else(|e| panic!("checkpoint dir {dir}: {e}"));
                let ckpt = TrainCheckpoint {
                    fingerprint: fingerprint(model_cfg, cfg),
                    units_done: units,
                    iteration,
                    events_trained,
                    weights: model.params.flatten_weights(),
                    adam_t: adam.steps(),
                    adam_state: adam.flatten_state(),
                    loss_history: result.loss_history.clone(),
                    convergence: result.convergence.clone(),
                    static_table: static_mem.as_ref().map(|s| s.table().clone()),
                    memories: Vec::new(),
                    start_turns: Vec::new(),
                };
                store
                    .save_train(&ckpt)
                    .unwrap_or_else(|e| panic!("checkpoint save unit {units}: {e}"));
            }
        }
    }

    result.wall_secs = start.elapsed().as_secs_f64();
    // Per-layer share of the embed stack inside compute_secs.
    result
        .timing
        .absorb_layer_secs(&model.layer_embed_secs(), 1.0);
    result.timing.absorb_kernels(
        &(disttgl_tensor::timing::snapshot() - kernels0 - eval_kernels),
        1.0,
    );
    // Throughput counts training time only — "DistTGL only accelerates
    // training" (§4.0.1), so evaluation passes are excluded.
    result.throughput_events_per_sec =
        events_trained as f64 / (result.wall_secs - eval_secs).max(1e-9);

    // The prefetch worker holds a handle to the shared memory; retire
    // it before reclaiming sole ownership.
    drop(prefetcher);
    let memory = Arc::try_unwrap(memory)
        .unwrap_or_else(|arc| panic!("{} live memory handles", Arc::strong_count(&arc)))
        .into_inner()
        .unwrap_or_else(|e| e.into_inner());

    // Final test: continue memory through validation, then test.
    let mut test_mem = memory.clone();
    if val_end > train_end {
        crate::eval::replay_memory(
            &model,
            model_cfg,
            dataset,
            csr.as_ref(),
            &mut test_mem,
            static_mem.as_ref(),
            train_end..val_end,
            cfg.local_batch,
        );
    }
    let test_end = dataset
        .graph
        .num_events()
        .min(val_end.saturating_add(cfg.eval_max_events));
    let test = evaluate(
        &model,
        model_cfg,
        dataset,
        csr.as_ref(),
        &mut test_mem,
        static_mem.as_ref(),
        val_end..test_end,
        cfg.local_batch,
        cfg.eval_negs,
        cfg.seed ^ 0x7e57,
    );
    result.test_metric = test.metric;
    result.finalize_convergence();
    (result, memory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ParallelConfig;
    use disttgl_data::generators;

    fn quick_cfg(epochs: usize) -> TrainConfig {
        let mut cfg = TrainConfig::new(ParallelConfig::single());
        cfg.local_batch = 100;
        cfg.epochs = epochs;
        cfg.eval_negs = 9;
        cfg.seed = 1;
        // Tiny batches → the paper's linear LR scaling would starve
        // the run; bump the base so the effective LR stays ~2e-3.
        cfg.base_lr = 1.2e-2;
        cfg
    }

    /// End-to-end: training must beat the untrained model decisively.
    /// This is the repo's central learning test.
    #[test]
    fn training_improves_mrr_over_untrained() {
        let d = generators::wikipedia(0.008, 77);
        let mut mc = ModelConfig::compact(d.edge_features.cols());
        mc.n_neighbors = 5;
        mc.static_memory = false;

        let untrained = train_single(&d, &mc, &quick_cfg(0));
        let trained = train_single(&d, &mc, &quick_cfg(8));
        assert!(
            trained.test_metric > untrained.test_metric + 0.1,
            "trained {} vs untrained {}",
            trained.test_metric,
            untrained.test_metric
        );
        assert!(
            trained.test_metric > 0.5,
            "test MRR {}",
            trained.test_metric
        );
    }

    /// Determinism: identical seeds → identical histories.
    #[test]
    fn run_is_deterministic() {
        let d = generators::mooc(0.0015, 5);
        let mut mc = ModelConfig::compact(0);
        mc.n_neighbors = 5;
        mc.static_memory = false;
        let a = train_single(&d, &mc, &quick_cfg(2));
        let b = train_single(&d, &mc, &quick_cfg(2));
        assert_eq!(a.loss_history, b.loss_history);
        assert_eq!(a.test_metric, b.test_metric);
    }
}
