//! Model/training configuration and the optimal-configuration planner
//! of paper §3.2.4.

use disttgl_cluster::ClusterSpec;
use disttgl_graph::{capture, TemporalGraph};
use serde::{Deserialize, Serialize};

/// The `COMB` function of Eq. 8: how multiple mails generated for the
/// same node within one batch collapse into the single stored mail.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum CombPolicy {
    /// Keep the most recent mail (the TGN-attn choice the paper uses).
    #[default]
    MostRecent,
    /// Average the batch's mails per node, timestamped at the latest
    /// event (the TGN paper's "mean" message aggregator — kept here as
    /// an ablation of the information-loss trade-off).
    Mean,
}

/// TGN-attn hyper-parameters (§4.0.1 defaults, scaled down by the
/// experiment harness where noted).
///
/// No longer `Copy`: `neighbor_fanouts` is a per-hop vector, so
/// configs are `Clone`d explicitly where they used to be copied.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Node-memory width `d_mem` (paper: 100).
    pub d_mem: usize,
    /// Time-encoding width (paper follows TGAT: 100).
    pub d_time: usize,
    /// Edge-feature width (dataset-dependent).
    pub d_edge: usize,
    /// Embedding width out of the attention combine layer.
    pub d_emb: usize,
    /// Supporting neighbors per root (paper: 10) — the hop-0 fanout
    /// when `neighbor_fanouts` is empty.
    pub n_neighbors: usize,
    /// Temporal-attention layers in the embedding stack (DistTGL fixes
    /// this to 1; TGL-style multi-layer models use ≥ 2). Layer 1
    /// attends over the hop-0 frontier, layer ℓ folds hop ℓ − 1 in.
    pub n_layers: usize,
    /// Per-hop neighbor fanouts, `neighbor_fanouts[d]` supporting
    /// nodes per hop-`d` frontier node. Empty (the default) means
    /// `[n_neighbors; n_layers]`. When non-empty its length must equal
    /// `n_layers`.
    pub neighbor_fanouts: Vec<usize>,
    /// Whether the time encoder's ω/φ are trained.
    pub learnable_time: bool,
    /// Enables the static node memory of §3.1.
    pub static_memory: bool,
    /// Output classes for edge classification (0 = link prediction).
    pub num_classes: usize,
    /// The batched-mail combination policy (Eq. 8).
    pub comb: CombPolicy,
    /// Deduplicate memory-readout rows before the GRU update: phase 2
    /// gathers one row per *unique* node of each batch part, the GRU
    /// runs over the folded block, and `ŝ` is expanded back to
    /// occurrence order only where the attention layer consumes it.
    /// Forward outputs are bit-identical to the per-occurrence path
    /// (the GRU is a pure per-row function); backward sums occurrence
    /// gradients per unique node in ascending occurrence order before
    /// the GRU backward, so parameter gradients match the
    /// per-occurrence oracle up to float summation order (see
    /// `core::batch` module docs and `tests/dedup_equivalence.rs`).
    /// On by default; disable to run the per-occurrence correctness
    /// oracle.
    pub dedup_readout: bool,
    /// Store node memory and mails as bf16 instead of f32: halves the
    /// resident store and the daemon's read/write payload bytes at a
    /// bounded ≤2⁻⁸ relative precision cost per element (see
    /// `disttgl_mem::state` and `disttgl_tensor::bf16`). **Recoverable,
    /// not exact**: training curves and eval metrics shift slightly
    /// (BENCH_kernels.json measures the MRR/F1 deltas vs the f32
    /// oracle across seeds); the f32 default stays bit-exact against
    /// every equivalence suite. Off by default.
    pub quantized_memory: bool,
}

impl ModelConfig {
    /// Paper-default shapes for a link-prediction dataset with
    /// `d_edge`-wide edge features.
    pub fn paper_default(d_edge: usize) -> Self {
        Self {
            d_mem: 100,
            d_time: 100,
            d_edge,
            d_emb: 100,
            n_neighbors: 10,
            n_layers: 1,
            neighbor_fanouts: Vec::new(),
            learnable_time: false,
            static_memory: true,
            num_classes: 0,
            comb: CombPolicy::default(),
            dedup_readout: true,
            quantized_memory: false,
        }
    }

    /// CPU-friendly shapes for the experiment harness (≈1/4 width;
    /// keeps curve shapes while cutting FLOPs ~16×).
    pub fn compact(d_edge: usize) -> Self {
        Self {
            d_mem: 32,
            d_time: 16,
            d_edge,
            d_emb: 32,
            n_neighbors: 10,
            n_layers: 1,
            neighbor_fanouts: Vec::new(),
            learnable_time: false,
            static_memory: true,
            num_classes: 0,
            comb: CombPolicy::default(),
            dedup_readout: true,
            quantized_memory: false,
        }
    }

    /// Switches the head to `classes`-way multi-label classification.
    pub fn with_classes(mut self, classes: usize) -> Self {
        self.num_classes = classes;
        self
    }

    /// Disables static node memory (the §3.1 ablation).
    pub fn without_static_memory(mut self) -> Self {
        self.static_memory = false;
        self
    }

    /// Disables readout deduplication — the per-occurrence correctness
    /// oracle the folded path is tested against.
    pub fn without_dedup_readout(mut self) -> Self {
        self.dedup_readout = false;
        self
    }

    /// Sets the embedding stack depth, keeping `n_neighbors` as the
    /// fanout of every hop (the TGL-style default).
    pub fn with_layers(mut self, n_layers: usize) -> Self {
        assert!(n_layers >= 1, "the model needs at least one layer");
        self.n_layers = n_layers;
        self.neighbor_fanouts = Vec::new();
        self
    }

    /// Sets both the stack depth and the per-hop fanouts
    /// (`n_layers = fanouts.len()`).
    pub fn with_fanouts(mut self, fanouts: Vec<usize>) -> Self {
        assert!(!fanouts.is_empty(), "the model needs at least one hop");
        self.n_layers = fanouts.len();
        self.neighbor_fanouts = fanouts;
        self
    }

    /// The effective per-hop fanouts: `neighbor_fanouts` when set,
    /// otherwise `n_neighbors` repeated for every layer.
    ///
    /// # Panics
    /// Panics if `neighbor_fanouts` is non-empty with a length other
    /// than `n_layers`, or if any entry (or `n_neighbors`) is 0.
    pub fn fanouts(&self) -> Vec<usize> {
        assert!(self.n_layers >= 1, "the model needs at least one layer");
        let fanouts = if self.neighbor_fanouts.is_empty() {
            vec![self.n_neighbors; self.n_layers]
        } else {
            assert_eq!(
                self.neighbor_fanouts.len(),
                self.n_layers,
                "neighbor_fanouts length must equal n_layers"
            );
            self.neighbor_fanouts.clone()
        };
        assert!(
            fanouts.iter().all(|&k| k >= 1),
            "every hop fanout must be >= 1"
        );
        fanouts
    }

    /// Enables the bf16 memory/mail representation (halved store and
    /// daemon payload bytes; recoverable-precision trade-off).
    pub fn with_quantized_memory(mut self) -> Self {
        self.quantized_memory = true;
        self
    }

    /// Builds the node-memory state in the representation this config
    /// selects — the single construction point every trainer, server,
    /// and evaluator routes through so `quantized_memory` takes effect
    /// everywhere at once.
    pub fn new_memory(&self, num_nodes: usize) -> disttgl_mem::MemoryState {
        if self.quantized_memory {
            disttgl_mem::MemoryState::new_quantized(num_nodes, self.d_mem, self.mail_dim())
        } else {
            disttgl_mem::MemoryState::new(num_nodes, self.d_mem, self.mail_dim())
        }
    }

    /// Mail width: `{s_u || s_v || Φ || e_uv}` (Eq. 1).
    pub fn mail_dim(&self) -> usize {
        2 * self.d_mem + self.d_time + self.d_edge
    }
}

/// The `i × j × k` parallel training configuration (§3.2.4):
/// `i` mini-batch × `j` epoch × `k` memory parallelism,
/// `i·j·k = p·q` trainers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelConfig {
    /// GPUs computing each global mini-batch together.
    pub i: usize,
    /// Epochs trained in parallel per memory replica.
    pub j: usize,
    /// Node-memory replicas.
    pub k: usize,
}

impl ParallelConfig {
    /// Creates a config; `1×1×1` is the single-GPU baseline.
    pub fn new(i: usize, j: usize, k: usize) -> Self {
        assert!(
            i >= 1 && j >= 1 && k >= 1,
            "parallelism factors must be >= 1"
        );
        Self { i, j, k }
    }

    /// Single-GPU baseline.
    pub fn single() -> Self {
        Self::new(1, 1, 1)
    }

    /// Total trainer count.
    pub fn world(&self) -> usize {
        self.i * self.j * self.k
    }

    /// Decomposes a global rank into `(k-group, j-subgroup, i-lane)`;
    /// ranks are laid out k-major so that each memory group's trainers
    /// are contiguous (and therefore land on as few machines as
    /// possible — the `k ≥ p` placement rule).
    pub fn decompose(&self, rank: usize) -> (usize, usize, usize) {
        assert!(rank < self.world());
        let group = rank / (self.i * self.j);
        let within = rank % (self.i * self.j);
        (group, within / self.i, within % self.i)
    }
}

/// Hardware/task inputs to the planner (§3.2.4).
#[derive(Clone, Copy, Debug)]
pub struct PlannerInput {
    /// The cluster (`p` machines × `q` GPUs).
    pub spec: ClusterSpec,
    /// Largest global batch size the task tolerates (from the
    /// missing-information threshold; see [`plan_from_graph`]).
    pub max_global_batch: usize,
    /// Batch size at which one GPU saturates (hardware property).
    pub gpu_saturation_batch: usize,
    /// Node-memory replicas each machine's main memory can hold.
    pub replicas_per_machine: usize,
}

/// Chooses `(i, j, k)` per the paper's heuristic: `i` from batch-size
/// limits, then `k` as large as the memory budget allows (memory
/// parallelism is always preferred, §3.2.4), then `j` fills the rest.
///
/// Reproduces the worked example: 4×8 GPUs, max batch 3200, saturation
/// 1600, 2 replicas/machine → `2 × 2 × 8`.
pub fn plan(input: &PlannerInput) -> ParallelConfig {
    let world = input.spec.world();
    let p = input.spec.machines;

    // i: enough GPUs per global batch to keep each local batch at the
    // saturation point, capped by what divides the world.
    let want_i = (input.max_global_batch / input.gpu_saturation_batch).max(1);
    let mut i = want_i.min(world);
    while !world.is_multiple_of(i) {
        i -= 1;
    }

    // k: as many replicas as memory allows, at least p (the only
    // strategy with no cross-machine node-memory sync), dividing the
    // remaining world.
    let per_group = world / i;
    let budget = (p * input.replicas_per_machine).min(per_group);
    let mut k = budget.max(1);
    while !per_group.is_multiple_of(k) {
        k -= 1;
    }
    if k < p && per_group >= p {
        // Memory constraint conflicts with the k ≥ p placement rule;
        // prefer placement (the paper's hard constraint) if divisible.
        let mut k2 = p;
        while !per_group.is_multiple_of(k2) && k2 < per_group {
            k2 += 1;
        }
        if per_group.is_multiple_of(k2) {
            k = k2;
        }
    }

    let j = per_group / k;
    ParallelConfig::new(i, j, k)
}

/// Planner front-end that derives `max_global_batch` from the dataset
/// itself via the captured-events threshold (Fig 8 analysis): the
/// largest power-of-two batch whose missing-information fraction stays
/// within `missing_threshold`.
pub fn plan_from_graph(
    graph: &TemporalGraph,
    spec: ClusterSpec,
    missing_threshold: f64,
    gpu_saturation_batch: usize,
    replicas_per_machine: usize,
) -> (ParallelConfig, usize) {
    let candidates: Vec<usize> = (6..=14).map(|e| 1usize << e).collect();
    let max_batch = capture::max_batch_size_for_threshold(graph, missing_threshold, &candidates);
    let cfg = plan(&PlannerInput {
        spec,
        max_global_batch: max_batch,
        gpu_saturation_batch,
        replicas_per_machine,
    });
    (cfg, max_batch)
}

/// Full training-run configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Parallelism layout.
    pub parallel: ParallelConfig,
    /// Events per *local* batch (per trainer lane; the global batch is
    /// `i ×` this — paper §4.0.1 uses 600 local on the small datasets).
    pub local_batch: usize,
    /// Single-GPU-equivalent epochs: total traversals of the training
    /// events (paper: 100 small / 10 GDELT). The per-trainer sweep
    /// count is `epochs / (j·k)`, matching "the number of training
    /// iterations for x GPUs will be 1/x compared to a single GPU".
    pub epochs: usize,
    /// Base learning rate at local batch 600; scaled linearly with the
    /// global batch size (§4.0.1).
    pub base_lr: f32,
    /// Negatives per positive during training.
    pub train_negs: usize,
    /// Pre-sampled negative groups (paper: 10).
    pub neg_groups: usize,
    /// Negatives per positive at evaluation (paper: 49).
    pub eval_negs: usize,
    /// Run validation at every sweep boundary (costs one forward pass
    /// over the validation split).
    pub eval_every_epoch: bool,
    /// Cap on validation/test events per evaluation pass. The paper
    /// uses the same trick on GDELT ("a randomly selected chunk of
    /// 1000 consecutive mini-batches") because evaluation is not what
    /// DistTGL accelerates.
    pub eval_max_events: usize,
    /// RNG seed for weights, negatives, and schedules.
    pub seed: u64,
    /// Overlap phase-1 batch preparation (sampling, negative slicing,
    /// feature gathers) with compute on a per-trainer prefetch thread
    /// in `train_distributed`. Bit-identical results either way — the
    /// memory-dependent gather stays in the serialized turn order —
    /// so this is on by default; disable to measure the overlap or to
    /// halve the thread count.
    pub pipeline_prefetch: bool,
    /// Overlap the distributed trainer's **phase-2 memory gather**
    /// with compute: as soon as a lane's phase-1 prefetch lands
    /// (during its epoch-parallel continue passes), it posts a
    /// speculative out-of-turn gather to the memory daemon; at its
    /// Acquire turn it fetches only the delta of rows written since
    /// (version-vector protocol, see `disttgl_mem::daemon`) and
    /// repairs the block in place. Bit-identical to the serialized
    /// read by the version contract (`tests/daemon_overlap_equivalence.rs`),
    /// so on by default; requires `pipeline_prefetch` (no early node
    /// list otherwise) and falls back to the serialized read whenever
    /// the speculation window didn't open.
    pub speculative_gather: bool,
    /// Save a training checkpoint every `n` single-GPU-equivalent
    /// epochs (sequential) / every `n` schedule units = `j·k` epochs
    /// (distributed). `None` disables checkpointing. Checkpoints land
    /// at serialized-memory-epoch boundaries — the crash-consistent
    /// points of the DistTGL schedule — so a resumed run replays
    /// bit-identically (see `core::checkpoint`).
    pub checkpoint_every: Option<usize>,
    /// Directory for periodic checkpoints (`ckpt_XXXX.bin` files).
    /// Required when `checkpoint_every` is set.
    pub checkpoint_dir: Option<String>,
    /// Keep at most this many checkpoint files in `checkpoint_dir`
    /// (last-k retention, GC'd by `core::recover::CheckpointStore`
    /// after every save — though never past the newest *valid* file).
    /// `None` keeps every checkpoint.
    pub checkpoint_retain: Option<usize>,
    /// Resume training from this checkpoint file instead of starting
    /// fresh. The checkpoint's config fingerprint must match (same
    /// model shapes, parallel layout, seed, batch — everything that
    /// shapes the training trajectory).
    pub resume_from: Option<String>,
    /// Deadline (milliseconds) for distributed trainers' memory-daemon
    /// waits; expiry surfaces as a structured timeout error instead of
    /// hanging the lane forever on a crashed daemon. `None` waits
    /// until daemon shutdown.
    pub daemon_deadline_ms: Option<u64>,
    /// Deterministic fault-injection plan (tests / chaos runs). `None`
    /// or an empty plan injects nothing.
    pub faults: Option<disttgl_cluster::FaultPlan>,
    /// **Bounded-staleness training** (MSPipe-style, the repo's first
    /// intentional exactness/speed trade — opt-in, `None` = exact):
    /// when a lane's speculative readout comes back at its Acquire
    /// turn, rows whose version lag is within `k` pending writes keep
    /// their stale value instead of paying the fused delta repair;
    /// rows beyond `k` (or tagged before an epoch reset) still repair
    /// exactly, so staleness is bounded by construction. `Some(0)`
    /// runs the bounded machinery but admits nothing — bit-identical
    /// to the exact oracle (pinned by `tests/staleness_equivalence.rs`).
    /// Requires `speculative_gather` (validated by
    /// [`TrainConfig::validate`]). Admission at `k > 0` depends on
    /// daemon service timing and is **not** run-deterministic; the
    /// contract is per-row: every admitted value is within `k` writes
    /// of the serialized read.
    pub staleness_bound: Option<u64>,
    /// Mitigation applied to rows admitted stale (only meaningful with
    /// `staleness_bound > 0`).
    pub staleness_compensation: StalenessCompensation,
}

/// Staleness-aware mitigation for rows admitted under
/// [`TrainConfig::staleness_bound`] (MSPipe §"staleness mitigation").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum StalenessCompensation {
    /// Use the stale row as-is.
    #[default]
    None,
    /// Blend the stale memory vector toward the node's own freshest
    /// mailbox snapshot (the first `d_mem` chunk of its mail row —
    /// the ŝ captured at its last event): `s ← (s + ŝ_mail) / 2`.
    /// Zero extra daemon traffic; timestamps untouched.
    SimilarityBlend,
}

/// Typed rejection of an invalid [`TrainConfig`] (surfaced by the CLI
/// and asserted by the trainers before any thread spawns).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `staleness_bound` set while `speculative_gather` (or its
    /// prerequisite `pipeline_prefetch`) is off — there is no
    /// speculative readout to admit stale rows from.
    StalenessRequiresSpeculation,
    /// A compensation variant other than `None` set without a
    /// `staleness_bound` — there are no admitted-stale rows to
    /// compensate.
    CompensationRequiresStalenessBound,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::StalenessRequiresSpeculation => write!(
                f,
                "staleness_bound requires speculative_gather (and pipeline_prefetch): \
                 bounded staleness admits rows from the speculative readout"
            ),
            ConfigError::CompensationRequiresStalenessBound => write!(
                f,
                "staleness_compensation requires staleness_bound: \
                 there are no admitted-stale rows to compensate without a bound"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

impl TrainConfig {
    /// Paper-like defaults for a given parallel layout.
    pub fn new(parallel: ParallelConfig) -> Self {
        Self {
            parallel,
            local_batch: 600,
            epochs: 100,
            base_lr: 1e-3,
            train_negs: 1,
            neg_groups: 10,
            eval_negs: 49,
            eval_every_epoch: true,
            eval_max_events: usize::MAX,
            seed: 42,
            pipeline_prefetch: true,
            speculative_gather: true,
            checkpoint_every: None,
            checkpoint_dir: None,
            checkpoint_retain: None,
            resume_from: None,
            daemon_deadline_ms: None,
            faults: None,
            staleness_bound: None,
            staleness_compensation: StalenessCompensation::None,
        }
    }

    /// Opts into bounded-staleness training: skip the Acquire-slot
    /// delta repair for rows within `k` pending writes. `k = 0` keeps
    /// the run bit-identical to the exact oracle (see the
    /// `staleness_bound` field docs for the contract).
    pub fn staleness_bound(mut self, k: u64) -> Self {
        self.staleness_bound = Some(k);
        self
    }

    /// Selects the mitigation for admitted-stale rows; requires
    /// [`TrainConfig::staleness_bound`].
    pub fn with_staleness_compensation(mut self, c: StalenessCompensation) -> Self {
        self.staleness_compensation = c;
        self
    }

    /// Validates cross-field constraints, returning the typed
    /// [`ConfigError`] the CLI surfaces. The trainers call this before
    /// spawning anything.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.staleness_bound.is_some() && !(self.speculative_gather && self.pipeline_prefetch) {
            return Err(ConfigError::StalenessRequiresSpeculation);
        }
        if self.staleness_compensation != StalenessCompensation::None
            && self.staleness_bound.is_none()
        {
            return Err(ConfigError::CompensationRequiresStalenessBound);
        }
        Ok(())
    }

    /// Enables periodic checkpoints: one every `n` epochs, written
    /// into `dir`.
    pub fn checkpoint_every(mut self, n: usize, dir: &str) -> Self {
        assert!(n >= 1, "checkpoint period must be >= 1");
        self.checkpoint_every = Some(n);
        self.checkpoint_dir = Some(dir.to_string());
        self
    }

    /// Bounds the checkpoint directory to the newest `k` files
    /// (retention GC; see `core::recover::CheckpointStore`).
    pub fn retain_checkpoints(mut self, k: usize) -> Self {
        assert!(k >= 1, "retention must keep at least one checkpoint");
        self.checkpoint_retain = Some(k);
        self
    }

    /// Resumes from a checkpoint file.
    pub fn resume_from(mut self, path: &str) -> Self {
        self.resume_from = Some(path.to_string());
        self
    }

    /// Bounds memory-daemon waits (fault tolerance).
    pub fn with_daemon_deadline_ms(mut self, ms: u64) -> Self {
        self.daemon_deadline_ms = Some(ms);
        self
    }

    /// Injects a deterministic fault plan.
    pub fn with_faults(mut self, plan: disttgl_cluster::FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The configuration fingerprint recorded in checkpoints: the
    /// config with the checkpoint/resume bookkeeping *and* the fault
    /// plane cleared. Checkpoint placement never blocks "may this run
    /// resume", and neither does fault scaffolding: a checkpoint only
    /// exists when no fault fired at or before its boundary, the
    /// trajectory up to that boundary is bit-identical with or without
    /// later faults, and delayed speculation is bit-identical by the
    /// version contract — so a crashed run's checkpoint legitimately
    /// resumes under a fault-free config (the recovery story).
    pub fn fingerprint_config(&self) -> TrainConfig {
        let mut c = self.clone();
        c.checkpoint_every = None;
        c.checkpoint_dir = None;
        c.checkpoint_retain = None;
        c.resume_from = None;
        c.daemon_deadline_ms = None;
        c.faults = None;
        c
    }

    /// Learning rate scaled linearly with the global batch size
    /// (relative to the paper's 600-event reference batch).
    pub fn scaled_lr(&self) -> f32 {
        let global = (self.parallel.i * self.local_batch) as f32;
        self.base_lr * global / 600.0
    }

    /// Number of full sweeps each trainer performs:
    /// `epochs / (j·k)`, at least 1. One sweep of one memory group
    /// traverses every training event `j` times, and there are `k`
    /// groups, so one round of all trainers = `j·k` single-GPU epochs.
    pub fn sweeps(&self) -> usize {
        (self.epochs / (self.parallel.j * self.parallel.k)).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_staleness_requires_speculation() {
        let mut cfg = TrainConfig::new(ParallelConfig::new(1, 1, 2)).staleness_bound(2);
        assert_eq!(cfg.validate(), Ok(()));
        cfg.speculative_gather = false;
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::StalenessRequiresSpeculation)
        );
        cfg.speculative_gather = true;
        cfg.pipeline_prefetch = false;
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::StalenessRequiresSpeculation)
        );
    }

    #[test]
    fn validate_compensation_requires_bound() {
        let cfg = TrainConfig::new(ParallelConfig::new(1, 1, 2))
            .with_staleness_compensation(StalenessCompensation::SimilarityBlend);
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::CompensationRequiresStalenessBound)
        );
        let cfg = cfg.staleness_bound(1);
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn fingerprint_keeps_staleness_fields() {
        // Staleness shapes the training trajectory, so unlike fault
        // scaffolding it must stay in the checkpoint fingerprint.
        let cfg = TrainConfig::new(ParallelConfig::new(1, 1, 2))
            .staleness_bound(3)
            .with_staleness_compensation(StalenessCompensation::SimilarityBlend);
        let fp = cfg.fingerprint_config();
        assert_eq!(fp.staleness_bound, Some(3));
        assert_eq!(
            fp.staleness_compensation,
            StalenessCompensation::SimilarityBlend
        );
    }

    #[test]
    fn paper_worked_example() {
        // §3.2.4: 4 machines × 8 GPUs, max batch 3200, saturation 1600,
        // 2 replicas per machine → i=2, k=8, j=2.
        let cfg = plan(&PlannerInput {
            spec: ClusterSpec::new(4, 8),
            max_global_batch: 3200,
            gpu_saturation_batch: 1600,
            replicas_per_machine: 2,
        });
        assert_eq!(cfg, ParallelConfig::new(2, 2, 8));
        assert_eq!(cfg.world(), 32);
    }

    #[test]
    fn small_dataset_prefers_memory_parallelism() {
        // Single machine, 8 GPUs, batch must stay tiny (600), plenty of
        // memory → pure memory parallelism 1×1×8 (the Fig 9(b) winner).
        let cfg = plan(&PlannerInput {
            spec: ClusterSpec::new(1, 8),
            max_global_batch: 600,
            gpu_saturation_batch: 600,
            replicas_per_machine: 8,
        });
        assert_eq!(cfg, ParallelConfig::new(1, 1, 8));
    }

    #[test]
    fn memory_constrained_falls_back_to_epoch_parallelism() {
        // Only 1 replica fits per machine on 1 machine → k = 1, j = 8.
        let cfg = plan(&PlannerInput {
            spec: ClusterSpec::new(1, 8),
            max_global_batch: 600,
            gpu_saturation_batch: 600,
            replicas_per_machine: 1,
        });
        assert_eq!(cfg, ParallelConfig::new(1, 8, 1));
    }

    #[test]
    fn gdelt_style_prefers_minibatch_parallelism() {
        // Huge tolerable batch → i covers the whole machine (Fig 11's
        // 8×1×1 choice on one machine).
        let cfg = plan(&PlannerInput {
            spec: ClusterSpec::new(1, 8),
            max_global_batch: 25600,
            gpu_saturation_batch: 3200,
            replicas_per_machine: 8,
        });
        assert_eq!(cfg, ParallelConfig::new(8, 1, 1));
    }

    #[test]
    fn rank_decomposition_is_k_major() {
        let p = ParallelConfig::new(2, 3, 4);
        assert_eq!(p.world(), 24);
        assert_eq!(p.decompose(0), (0, 0, 0));
        assert_eq!(p.decompose(1), (0, 0, 1));
        assert_eq!(p.decompose(2), (0, 1, 0));
        assert_eq!(p.decompose(6), (1, 0, 0));
        assert_eq!(p.decompose(23), (3, 2, 1));
    }

    #[test]
    fn world_always_preserved_by_planner() {
        for machines in [1, 2, 4] {
            for q in [1, 2, 4, 8] {
                for max_b in [600, 1200, 4800] {
                    for reps in [1, 2, 8] {
                        let cfg = plan(&PlannerInput {
                            spec: ClusterSpec::new(machines, q),
                            max_global_batch: max_b,
                            gpu_saturation_batch: 600,
                            replicas_per_machine: reps,
                        });
                        assert_eq!(
                            cfg.world(),
                            machines * q,
                            "cfg {:?} for {}x{} max_b {} reps {}",
                            cfg,
                            machines,
                            q,
                            max_b,
                            reps
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lr_scales_with_global_batch() {
        let mut tc = TrainConfig::new(ParallelConfig::new(2, 1, 1));
        tc.local_batch = 600;
        assert!((tc.scaled_lr() - 2e-3).abs() < 1e-9);
        tc.local_batch = 300;
        assert!((tc.scaled_lr() - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn sweeps_keep_total_traversals_fixed() {
        let mut tc = TrainConfig::new(ParallelConfig::new(1, 2, 4));
        tc.epochs = 96;
        // j·k = 8 → 12 sweeps; each sweep = 8 single-GPU epochs of
        // traversals.
        assert_eq!(tc.sweeps(), 12);
        tc.parallel = ParallelConfig::single();
        assert_eq!(tc.sweeps(), 96);
    }

    #[test]
    fn mail_dim_formula() {
        let mc = ModelConfig::compact(12);
        assert_eq!(mc.mail_dim(), 2 * 32 + 16 + 12);
    }

    #[test]
    fn fanouts_default_to_n_neighbors_per_layer() {
        let mc = ModelConfig::compact(0);
        assert_eq!(mc.n_layers, 1);
        assert_eq!(mc.fanouts(), vec![10]);
        let deep = mc.clone().with_layers(3);
        assert_eq!(deep.fanouts(), vec![10, 10, 10]);
        let explicit = mc.with_fanouts(vec![10, 5, 2]);
        assert_eq!(explicit.n_layers, 3);
        assert_eq!(explicit.fanouts(), vec![10, 5, 2]);
    }

    #[test]
    #[should_panic(expected = "neighbor_fanouts length")]
    fn mismatched_fanout_length_panics() {
        let mut mc = ModelConfig::compact(0);
        mc.n_layers = 2;
        mc.neighbor_fanouts = vec![10];
        let _ = mc.fanouts();
    }

    #[test]
    #[should_panic(expected = "every hop fanout")]
    fn zero_fanout_rejected_by_model_config() {
        let mc = ModelConfig::compact(0).with_fanouts(vec![10, 0]);
        let _ = mc.fanouts();
    }
}
