//! **Concurrent snapshot-read serving**: many reader threads answer
//! queries while a single writer thread advances the live graph +
//! memory — the multi-threaded form of [`ServeSession`], built on the
//! PR 3 MVCC version vector instead of a global serial lock.
//!
//! # Architecture
//!
//! * One [`ConcurrentServe`] owns the live state
//!   ([`DynamicTCsr`] + [`MemoryState`]) behind an `RwLock`, plus a
//!   bounded ingest queue with typed admission control
//!   ([`ServeError::Overloaded`]).
//! * **The writer** is whichever thread holds the writer mutex —
//!   typically one thread looping [`ConcurrentServe::run_writer`] over
//!   the queue. Validation and the GRU fold run *outside* the write
//!   lock (the mutex makes the writer the sole mutator, so rows read
//!   under a read lock cannot change before the apply); only the
//!   adjacency append + memory write + watermark bump hold the write
//!   lock, atomically. Readers therefore only ever observe
//!   slab-boundary states — never a half-applied slab.
//! * **Readers** ([`ConcurrentServe::query`]) run the optimistic
//!   gather → compute → validate protocol below, each with a private
//!   [`ReaderContext`] scratch arena (zero steady-state allocation on
//!   the gather path).
//!
//! # The reader protocol
//!
//! 1. **Gather** (read lock): sample the multi-hop frontier and take a
//!    version-tagged memory readout — a consistent snapshot at
//!    watermark `w₁`.
//! 2. **Compute** (no lock): edge features, attention stack, decoder —
//!    the dominant cost, fully overlapped with ingest.
//! 3. **Validate** (read lock): if the watermark is still `w₁` the
//!    answer is already serialized *now*. Otherwise resample the
//!    frontier and diff the gathered rows through
//!    [`MemoryState::repair_since`] — exactly the distributed
//!    trainer's speculative-gather repair. Untouched support set ⇒ the
//!    stage-2 answer is still exact at the new watermark (`Clean`).
//!    Stale rows only ⇒ repair them in place and recompute once
//!    ([`SnapshotDrift::Repaired`]). Frontier drift ⇒ take a full
//!    fresh snapshot under the same lock hold and recompute once
//!    ([`SnapshotDrift::Resampled`]).
//!
//! The retry snapshot is taken atomically, so its recomputed answer is
//! exact for that serialization point regardless of later writes — at
//! most one recompute, no livelock. Every answer is therefore
//! bit-identical to what a serialized [`ServeSession`] replaying the
//! same admitted slabs would answer at the reported
//! [`SnapshotAnswer::watermark`] (the snapshot-read contract in the
//! parent module docs; pinned by `tests/concurrent_serve_equivalence.rs`).

use super::{
    compute_responses, flatten_requests, fold_and_read, gather_snapshot, validate_event,
    validate_request, IngestError, IngestStats, QueryRequest, QueryResponse, QueryScratch,
    ServeError, ServeSession,
};
use crate::batch::MemoryAccess;
use crate::engine::InferenceEngine;
use crate::model::TgnModel;
use crate::static_mem::StaticMemory;
use disttgl_data::Dataset;
use disttgl_graph::{DynamicTCsr, Event, NeighborBlock, RecentNeighborSampler};
use disttgl_mem::{MemoryReadout, MemoryState};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, RwLock};
use std::time::Duration;

/// Tuning knobs for [`ConcurrentServe`].
#[derive(Clone, Copy, Debug)]
pub struct ConcurrentOptions {
    /// Capacity of the bounded ingest queue, in *events* (not slabs):
    /// an [`ConcurrentServe::enqueue_ingest`] that would push the
    /// queued-event count past this refuses with
    /// [`ServeError::Overloaded`].
    pub ingest_queue_capacity: usize,
}

impl Default for ConcurrentOptions {
    fn default() -> Self {
        Self {
            ingest_queue_capacity: 4096,
        }
    }
}

/// How a reader's speculative snapshot fared at validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotDrift {
    /// The support set was untouched — the speculative answer was
    /// returned as-is (no recompute). Either nothing was ingested
    /// in-flight, or the ingested slabs missed this query's frontier
    /// and rows entirely.
    Clean,
    /// The frontier was intact but some gathered memory rows were
    /// rewritten in-flight; they were repaired in place
    /// ([`MemoryState::repair_since`]) and the answer recomputed once.
    Repaired {
        /// Stale rows patched.
        rows: usize,
    },
    /// The ingested events changed this query's sampled frontier; a
    /// full fresh snapshot was taken and the answer recomputed once.
    Resampled,
}

/// One answered query micro-batch, tagged with its serialization
/// point.
#[derive(Clone, Debug)]
pub struct SnapshotAnswer {
    /// Responses in request order — bit-identical to a serialized
    /// [`ServeSession`]'s answer at `watermark`.
    pub responses: Vec<QueryResponse>,
    /// The applied-slab count this answer is serialized at: replaying
    /// the first `watermark` admitted slabs into a fresh session and
    /// querying reproduces `responses` exactly.
    pub watermark: u64,
    /// Events in the adjacency at the serialization point.
    pub events_seen: usize,
    /// What validation observed and did.
    pub drift: SnapshotDrift,
}

/// Point-in-time counters of a [`ConcurrentServe`] (monotone since
/// construction).
#[derive(Clone, Copy, Debug, Default)]
pub struct ConcurrentStats {
    /// Query micro-batches answered.
    pub queries_answered: u64,
    /// Answers validated clean (no recompute paid).
    pub clean_queries: u64,
    /// Answers that repaired stale rows and recomputed once.
    pub repaired_queries: u64,
    /// Total stale rows repaired across all queries.
    pub repaired_rows: u64,
    /// Answers that took a full second snapshot (frontier drift).
    pub resampled_queries: u64,
    /// Slabs applied to the live state (the current watermark).
    pub slabs_applied: u64,
    /// Events applied to the live state.
    pub events_applied: u64,
    /// Events refused by per-event validation (stream-order etc.).
    pub events_rejected: u64,
    /// Enqueue attempts refused by admission control.
    pub backpressure_rejections: u64,
    /// High-water mark of queued events.
    pub max_queue_depth: u64,
}

#[derive(Default)]
struct Counters {
    queries_answered: AtomicU64,
    clean_queries: AtomicU64,
    repaired_queries: AtomicU64,
    repaired_rows: AtomicU64,
    resampled_queries: AtomicU64,
    slabs_applied: AtomicU64,
    events_applied: AtomicU64,
    events_rejected: AtomicU64,
    backpressure_rejections: AtomicU64,
    max_queue_depth: AtomicU64,
}

/// Per-reader-thread state: the inference engine (attention scratch)
/// plus the query scratch arena. One per thread, reused across calls —
/// the steady-state query path allocates only its responses.
#[derive(Default)]
pub struct ReaderContext {
    engine: InferenceEngine,
    scratch: QueryScratch,
    /// Revalidation resample target (compared against the speculative
    /// frontier before deciding to repair or resample).
    check_hops: Vec<NeighborBlock>,
}

impl ReaderContext {
    /// A fresh context (buffers grow to the working set on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// The live mutable state, guarded as one unit so slabs apply
/// atomically from any reader's point of view.
struct LiveState {
    adj: DynamicTCsr,
    memory: MemoryState,
    ingested: usize,
    /// Applied-slab count — the serialization watermark readers report.
    watermark: u64,
}

struct IngestQueue {
    slabs: VecDeque<Vec<Event>>,
    /// Events currently queued (admission-control quantity).
    pending_events: usize,
}

/// Read-only [`MemoryAccess`] view for the writer's out-of-lock GRU
/// fold: `memory_write_events` only reads (it returns its write), so
/// the write arm is unreachable by construction.
struct SnapshotMem<'g>(&'g MemoryState);

impl MemoryAccess for SnapshotMem<'_> {
    fn read_into(&mut self, nodes: &[u32], out: &mut MemoryReadout) {
        self.0.read_into(nodes, out);
    }
    fn write(&mut self, _w: disttgl_mem::MemoryWrite) {
        unreachable!("ingest computes its write outside the write lock and applies it under it");
    }
}

/// Multi-threaded serving plane (see the module docs): `Sync`, shared
/// by reference across scoped reader/writer threads.
pub struct ConcurrentServe<'a> {
    model: &'a TgnModel,
    dataset: &'a Dataset,
    static_mem: Option<&'a StaticMemory>,
    sampler: RecentNeighborSampler,
    dedup: bool,
    live: RwLock<LiveState>,
    /// Serializes writers and owns the ingest engine scratch.
    writer: Mutex<InferenceEngine>,
    queue: Mutex<IngestQueue>,
    queue_cv: Condvar,
    capacity: usize,
    counters: Counters,
}

impl<'a> ConcurrentServe<'a> {
    /// Opens a concurrent plane with an empty graph and zeroed memory.
    pub fn new(
        model: &'a TgnModel,
        dataset: &'a Dataset,
        static_mem: Option<&'a StaticMemory>,
        opts: ConcurrentOptions,
    ) -> Self {
        Self::from_session(ServeSession::new(model, dataset, static_mem), opts)
    }

    /// Warm-starts from a single-threaded session (its ingested
    /// history, memory, and engine scratch carry over; the watermark
    /// restarts at 0 — pre-existing history is the replay prefix, not
    /// an admitted slab).
    pub fn from_session(session: ServeSession<'a>, opts: ConcurrentOptions) -> Self {
        let ServeSession {
            model,
            dataset,
            static_mem,
            adj,
            memory,
            engine,
            sampler,
            dedup,
            ingested,
            scratch: _,
        } = session;
        Self {
            model,
            dataset,
            static_mem,
            sampler,
            dedup,
            live: RwLock::new(LiveState {
                adj,
                memory,
                ingested,
                watermark: 0,
            }),
            writer: Mutex::new(engine),
            queue: Mutex::new(IngestQueue {
                slabs: VecDeque::new(),
                pending_events: 0,
            }),
            queue_cv: Condvar::new(),
            capacity: opts.ingest_queue_capacity.max(1),
            counters: Counters::default(),
        }
    }

    /// Collapses back into a single-threaded session (checkpointing,
    /// serialized replay tooling). Drains any queued slabs first, so
    /// no admitted work is lost.
    pub fn into_session(self) -> ServeSession<'a> {
        self.drain_queue();
        let live = self.live.into_inner().expect("live state poisoned");
        let engine = self.writer.into_inner().expect("writer engine poisoned");
        ServeSession {
            model: self.model,
            dataset: self.dataset,
            static_mem: self.static_mem,
            adj: live.adj,
            memory: live.memory,
            engine,
            sampler: self.sampler,
            dedup: self.dedup,
            ingested: live.ingested,
            scratch: QueryScratch::default(),
        }
    }

    /// The applied-slab count (the current serialization watermark).
    pub fn watermark(&self) -> u64 {
        self.live.read().expect("live state poisoned").watermark
    }

    /// Events absorbed into the live state so far.
    pub fn events_ingested(&self) -> usize {
        self.live.read().expect("live state poisoned").ingested
    }

    /// Events in the live adjacency.
    pub fn num_events(&self) -> usize {
        self.live
            .read()
            .expect("live state poisoned")
            .adj
            .num_events()
    }

    /// Content digest of the live node memory (the equivalence-suite
    /// quantity).
    pub fn memory_checksum(&self) -> u64 {
        self.live
            .read()
            .expect("live state poisoned")
            .memory
            .checksum()
    }

    /// One atomic observation of `(watermark, adjacency events, memory
    /// checksum)` under a single read-lock hold — the probe the
    /// mid-slab-atomicity test sweeps: every observation must land
    /// exactly on a slab boundary of the serialized replay.
    pub fn consistency_probe(&self) -> (u64, usize, u64) {
        let live = self.live.read().expect("live state poisoned");
        (
            live.watermark,
            live.adj.num_events(),
            live.memory.checksum(),
        )
    }

    /// Events currently waiting in the ingest queue.
    pub fn queued_events(&self) -> usize {
        self.queue.lock().expect("queue poisoned").pending_events
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> ConcurrentStats {
        let c = &self.counters;
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ConcurrentStats {
            queries_answered: ld(&c.queries_answered),
            clean_queries: ld(&c.clean_queries),
            repaired_queries: ld(&c.repaired_queries),
            repaired_rows: ld(&c.repaired_rows),
            resampled_queries: ld(&c.resampled_queries),
            slabs_applied: ld(&c.slabs_applied),
            events_applied: ld(&c.events_applied),
            events_rejected: ld(&c.events_rejected),
            backpressure_rejections: ld(&c.backpressure_rejections),
            max_queue_depth: ld(&c.max_queue_depth),
        }
    }

    /// Submits a slab to the bounded ingest queue (the request
    /// router's ingest side). Admission control is typed: a queue past
    /// capacity refuses with [`ServeError::Overloaded`] and queues
    /// nothing — the caller sheds or retries after the writer drains.
    pub fn enqueue_ingest(&self, slab: Vec<Event>) -> Result<(), ServeError> {
        if slab.is_empty() {
            return Ok(());
        }
        let mut q = self.queue.lock().expect("queue poisoned");
        if q.pending_events + slab.len() > self.capacity {
            self.counters
                .backpressure_rejections
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded {
                queued_events: q.pending_events,
                capacity: self.capacity,
            });
        }
        q.pending_events += slab.len();
        q.slabs.push_back(slab);
        let depth = q.pending_events as u64;
        drop(q);
        self.counters
            .max_queue_depth
            .fetch_max(depth, Ordering::Relaxed);
        self.queue_cv.notify_one();
        Ok(())
    }

    /// Applies every currently queued slab in admission (FIFO) order;
    /// returns the slab count applied. Per-event rejects are absorbed
    /// into [`ConcurrentStats::events_rejected`] — the queue admitted
    /// the slab, so the valid chronological subsequence still lands
    /// (the batch-partial ingest contract).
    pub fn drain_queue(&self) -> usize {
        let mut applied = 0usize;
        loop {
            let slab = {
                let mut q = self.queue.lock().expect("queue poisoned");
                match q.slabs.pop_front() {
                    Some(s) => {
                        q.pending_events -= s.len();
                        Some(s)
                    }
                    None => None,
                }
            };
            let Some(slab) = slab else { return applied };
            let _ = self.ingest(&slab);
            applied += 1;
        }
    }

    /// The writer thread's body: drain the queue, sleep on the
    /// condvar, repeat — until `stop` is raised *and* the queue is
    /// empty (a clean shutdown applies everything that was admitted).
    pub fn run_writer(&self, stop: &AtomicBool) {
        loop {
            self.drain_queue();
            let q = self.queue.lock().expect("queue poisoned");
            if !q.slabs.is_empty() {
                continue;
            }
            if stop.load(Ordering::Acquire) {
                return;
            }
            // Timed wait so a raised stop flag is observed promptly
            // even when no producer ever signals again.
            let _ = self
                .queue_cv
                .wait_timeout(q, Duration::from_millis(2))
                .expect("queue poisoned");
        }
    }

    /// Synchronous ingest of one slab — the writer-side primitive
    /// behind [`ConcurrentServe::drain_queue`], also callable directly
    /// when the caller *is* the writer thread. Batch-partial with the
    /// exact semantics (and arithmetic) of [`ServeSession::ingest`].
    ///
    /// Concurrency: writers serialize on the writer mutex; validation
    /// and the GRU fold run outside the write lock (sole-mutator
    /// argument — see the module docs), and the adjacency append +
    /// memory write + watermark bump apply under one write-lock hold,
    /// so readers only ever observe slab boundaries.
    pub fn ingest(&self, events: &[Event]) -> Result<IngestStats, IngestError> {
        let mut engine = self.writer.lock().expect("writer engine poisoned");
        let mut head = self
            .live
            .read()
            .expect("live state poisoned")
            .adj
            .stream_head();
        let mut accepted: Vec<Event> = Vec::with_capacity(events.len());
        let mut rejected: Vec<(usize, super::EventFault)> = Vec::new();
        for (i, e) in events.iter().enumerate() {
            match validate_event(self.dataset, e, head) {
                Some(fault) => rejected.push((i, fault)),
                None => {
                    head = e.t;
                    accepted.push(*e);
                }
            }
        }
        let applied = if accepted.is_empty() {
            IngestStats::default()
        } else {
            let (w, rows_read) = {
                let live = self.live.read().expect("live state poisoned");
                let mut snapshot = SnapshotMem(&live.memory);
                engine.memory_write_events(self.model, self.dataset, &accepted, &mut snapshot)
            };
            let stats = IngestStats {
                events: accepted.len(),
                rows_written: w.nodes.len(),
                rows_read,
            };
            {
                let mut live = self.live.write().expect("live state poisoned");
                live.adj.append_events(&accepted);
                live.memory.write(&w);
                live.ingested += accepted.len();
                live.watermark += 1;
            }
            self.counters.slabs_applied.fetch_add(1, Ordering::Relaxed);
            self.counters
                .events_applied
                .fetch_add(accepted.len() as u64, Ordering::Relaxed);
            stats
        };
        drop(engine);
        if rejected.is_empty() {
            Ok(applied)
        } else {
            self.counters
                .events_rejected
                .fetch_add(rejected.len() as u64, Ordering::Relaxed);
            Err(IngestError::Rejected { applied, rejected })
        }
    }

    /// Answers one query micro-batch through the optimistic MVCC
    /// protocol (see the module docs). Atomic and read-only like
    /// [`ServeSession::query`]: invalid operands come back as typed
    /// errors before any work, and the live state is never touched.
    pub fn query(
        &self,
        requests: &[QueryRequest],
        cx: &mut ReaderContext,
    ) -> Result<SnapshotAnswer, ServeError> {
        if requests.is_empty() {
            let (watermark, events_seen, _) = self.consistency_probe();
            return Ok(SnapshotAnswer {
                responses: Vec::new(),
                watermark,
                events_seen,
                drift: SnapshotDrift::Clean,
            });
        }
        for (i, r) in requests.iter().enumerate() {
            if let Some(fault) = validate_request(self.dataset, r) {
                return Err(ServeError::InvalidRequest { request: i, fault });
            }
        }
        flatten_requests(requests, &mut cx.scratch);

        // Stage 1 — speculative snapshot at watermark w1.
        let (w1, ev1) = {
            let live = self.live.read().expect("live state poisoned");
            gather_snapshot(
                &self.sampler,
                self.dedup,
                &live.adj,
                &live.memory,
                &mut cx.scratch,
            );
            (live.watermark, live.adj.num_events())
        };

        // Stage 2 — lock-free compute (the dominant cost).
        let responses = compute_responses(
            self.model,
            self.dataset,
            self.static_mem,
            &mut cx.engine,
            self.dedup,
            requests,
            &mut cx.scratch,
        );

        // Stage 3 — validate at the serialization point; repair or
        // retake the snapshot under the lock if the support set
        // drifted. A snapshot fixed under this lock hold is exact for
        // that point, so one recompute suffices — no revalidation.
        enum Post {
            Done(SnapshotDrift, u64, usize),
            Recompute(SnapshotDrift, u64, usize),
        }
        let post = {
            let live = self.live.read().expect("live state poisoned");
            if live.watermark == w1 {
                Post::Done(SnapshotDrift::Clean, w1, ev1)
            } else {
                let (w2, ev2) = (live.watermark, live.adj.num_events());
                self.sampler.sample_hops_into(
                    &live.adj,
                    &cx.scratch.roots,
                    &cx.scratch.times,
                    &mut cx.check_hops,
                );
                if hops_equal(&cx.scratch.hops, &cx.check_hops) {
                    let nodes: &[u32] = if self.dedup {
                        &cx.scratch.uniq.unique_nodes
                    } else {
                        &cx.scratch.occ
                    };
                    let patched = live.memory.repair_since(
                        nodes,
                        &cx.scratch.readout.versions,
                        &mut cx.scratch.readout.readout,
                    );
                    if patched == 0 {
                        Post::Done(SnapshotDrift::Clean, w2, ev2)
                    } else {
                        Post::Recompute(SnapshotDrift::Repaired { rows: patched }, w2, ev2)
                    }
                } else {
                    std::mem::swap(&mut cx.scratch.hops, &mut cx.check_hops);
                    fold_and_read(self.dedup, &live.memory, &mut cx.scratch);
                    Post::Recompute(SnapshotDrift::Resampled, w2, ev2)
                }
            }
        };
        let (responses, drift, watermark, events_seen) = match post {
            Post::Done(d, w, ev) => (responses, d, w, ev),
            Post::Recompute(d, w, ev) => {
                let responses = compute_responses(
                    self.model,
                    self.dataset,
                    self.static_mem,
                    &mut cx.engine,
                    self.dedup,
                    requests,
                    &mut cx.scratch,
                );
                (responses, d, w, ev)
            }
        };

        self.counters
            .queries_answered
            .fetch_add(1, Ordering::Relaxed);
        match drift {
            SnapshotDrift::Clean => {
                self.counters.clean_queries.fetch_add(1, Ordering::Relaxed);
            }
            SnapshotDrift::Repaired { rows } => {
                self.counters
                    .repaired_queries
                    .fetch_add(1, Ordering::Relaxed);
                self.counters
                    .repaired_rows
                    .fetch_add(rows as u64, Ordering::Relaxed);
            }
            SnapshotDrift::Resampled => {
                self.counters
                    .resampled_queries
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(SnapshotAnswer {
            responses,
            watermark,
            events_seen,
            drift,
        })
    }

    /// The reader pool: answers `jobs` across `readers` scoped
    /// threads, each with its own [`ReaderContext`], pulling work off
    /// a shared cursor. Results come back in job order.
    pub fn answer_all(
        &self,
        jobs: &[Vec<QueryRequest>],
        readers: usize,
    ) -> Vec<Result<SnapshotAnswer, ServeError>> {
        assert!(readers >= 1, "reader pool needs at least one thread");
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<SnapshotAnswer, ServeError>>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..readers {
                s.spawn(|| {
                    let mut cx = ReaderContext::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        let out = self.query(&jobs[i], &mut cx);
                        *slots[i].lock().expect("result slot poisoned") = Some(out);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("every job answered")
            })
            .collect()
    }
}

/// Bit-exact frontier comparison: two sampled multi-hop frontiers are
/// interchangeable iff every hop's shape, slots, and times agree.
fn hops_equal(a: &[NeighborBlock], b: &[NeighborBlock]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.k == y.k
                && x.counts == y.counts
                && x.nbrs == y.nbrs
                && x.eids == y.eids
                && x.ts == y.ts
                && x.dts == y.dts
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use disttgl_data::generators;
    use disttgl_tensor::seeded_rng;

    fn setup(n_layers: usize) -> (disttgl_data::Dataset, TgnModel) {
        let d = generators::wikipedia(0.005, 21);
        let mut cfg = ModelConfig::compact(d.edge_features.cols()).with_layers(n_layers);
        cfg.n_neighbors = 5;
        let mut rng = seeded_rng(4);
        let model = TgnModel::new(cfg, &mut rng);
        (d, model)
    }

    fn jobs_from(ev: &[Event], t: f32, n: usize) -> Vec<Vec<QueryRequest>> {
        (0..n)
            .map(|i| {
                vec![
                    QueryRequest::LinkScore {
                        src: ev[(i * 7) % ev.len()].src,
                        dst: ev[(i * 11 + 3) % ev.len()].dst,
                        t,
                    },
                    QueryRequest::Embed {
                        node: ev[(i * 5) % ev.len()].src,
                        t,
                    },
                ]
            })
            .collect()
    }

    /// A quiescent concurrent plane answers exactly like the
    /// single-threaded session it was warm-started from, and reports
    /// clean snapshots.
    #[test]
    fn quiescent_queries_match_session_bit_for_bit() {
        let (d, model) = setup(2);
        let ev = d.graph.events();
        let mut session = ServeSession::new(&model, &d, None);
        session.ingest(&ev[0..300]).unwrap();
        let mut oracle = ServeSession::new(&model, &d, None);
        oracle.ingest(&ev[0..300]).unwrap();

        let serve = ConcurrentServe::from_session(session, ConcurrentOptions::default());
        let t = ev[299].t + 1.0;
        let jobs = jobs_from(ev, t, 6);
        let answers = serve.answer_all(&jobs, 2);
        for (job, ans) in jobs.iter().zip(&answers) {
            let ans = ans.as_ref().unwrap();
            assert_eq!(ans.drift, SnapshotDrift::Clean);
            assert_eq!(ans.watermark, 0);
            assert_eq!(ans.responses, oracle.query(job).unwrap());
        }
        let stats = serve.stats();
        assert_eq!(stats.queries_answered, 6);
        assert_eq!(stats.clean_queries, 6);
    }

    /// Ingest through the concurrent plane advances state bit-identically
    /// to the serialized session, and the roundtrip back to a session
    /// preserves everything.
    #[test]
    fn ingest_and_roundtrip_match_serialized_session() {
        let (d, model) = setup(1);
        let ev = d.graph.events();
        let serve = ConcurrentServe::new(&model, &d, None, ConcurrentOptions::default());
        let mut oracle = ServeSession::new(&model, &d, None);
        for slab in ev[0..240].chunks(40) {
            serve.ingest(slab).unwrap();
            oracle.ingest(slab).unwrap();
        }
        assert_eq!(serve.watermark(), 6);
        assert_eq!(serve.events_ingested(), 240);
        assert_eq!(serve.memory_checksum(), oracle.memory_checksum());

        let mut back = serve.into_session();
        assert_eq!(back.events_ingested(), 240);
        assert_eq!(back.memory_checksum(), oracle.memory_checksum());
        let reqs = vec![QueryRequest::LinkScore {
            src: ev[10].src,
            dst: ev[20].dst,
            t: ev[239].t + 1.0,
        }];
        assert_eq!(back.query(&reqs).unwrap(), oracle.query(&reqs).unwrap());
    }

    /// Admission control: a full queue refuses with the typed
    /// `Overloaded` error and queues nothing; draining frees capacity
    /// and the drained slabs land in FIFO order.
    #[test]
    fn bounded_queue_backpressure_and_fifo_drain() {
        let (d, model) = setup(1);
        let ev = d.graph.events();
        let serve = ConcurrentServe::new(
            &model,
            &d,
            None,
            ConcurrentOptions {
                ingest_queue_capacity: 50,
            },
        );
        serve.enqueue_ingest(ev[0..30].to_vec()).unwrap();
        serve.enqueue_ingest(ev[30..50].to_vec()).unwrap();
        let err = serve.enqueue_ingest(ev[50..60].to_vec()).unwrap_err();
        assert_eq!(
            err,
            ServeError::Overloaded {
                queued_events: 50,
                capacity: 50
            }
        );
        assert_eq!(serve.queued_events(), 50, "refused slab queued nothing");
        assert_eq!(serve.drain_queue(), 2);
        assert_eq!(serve.queued_events(), 0);
        serve.enqueue_ingest(ev[50..60].to_vec()).unwrap();
        assert_eq!(serve.drain_queue(), 1);

        // Replay with the same slab boundaries — the GRU fold reads
        // memory at slab start, so slab partitioning is part of state.
        let mut oracle = ServeSession::new(&model, &d, None);
        oracle.ingest(&ev[0..30]).unwrap();
        oracle.ingest(&ev[30..50]).unwrap();
        oracle.ingest(&ev[50..60]).unwrap();
        assert_eq!(serve.memory_checksum(), oracle.memory_checksum());
        assert_eq!(serve.stats().backpressure_rejections, 1);
        assert_eq!(serve.stats().max_queue_depth, 50);
    }

    /// The batch-partial ingest contract carries over: rejects are
    /// indexed, the valid subsequence lands, and the reject counter
    /// advances.
    #[test]
    fn concurrent_ingest_is_batch_partial() {
        let (d, model) = setup(1);
        let ev = d.graph.events();
        let serve = ConcurrentServe::new(&model, &d, None, ConcurrentOptions::default());
        serve.ingest(&ev[10..20]).unwrap();
        let err = serve.ingest(&ev[0..5]).unwrap_err();
        let IngestError::Rejected { applied, rejected } = err;
        assert_eq!(applied.events + rejected.len(), 5);
        assert_eq!(serve.stats().events_rejected, rejected.len() as u64);
        // Still fully usable.
        serve.ingest(&ev[20..30]).unwrap();
        assert_eq!(serve.num_events(), 20);
    }

    /// An invalid query is typed and touches nothing — even while the
    /// plane holds live state behind locks.
    #[test]
    fn invalid_query_is_typed_and_atomic() {
        let (d, model) = setup(1);
        let ev = d.graph.events();
        let serve = ConcurrentServe::new(&model, &d, None, ConcurrentOptions::default());
        serve.ingest(&ev[0..100]).unwrap();
        let before = serve.memory_checksum();
        let n = d.graph.num_nodes() as u32;
        let mut cx = ReaderContext::new();
        let err = serve
            .query(
                &[QueryRequest::LinkScore {
                    src: ev[0].src,
                    dst: n + 3,
                    t: 1e9,
                }],
                &mut cx,
            )
            .unwrap_err();
        assert!(matches!(err, ServeError::InvalidRequest { request: 0, .. }));
        assert_eq!(serve.memory_checksum(), before);
        assert_eq!(serve.stats().queries_answered, 0);
    }
}
