//! The **streaming serving plane**: answer live embedding / link-score
//! queries over an evolving temporal graph with the exact arithmetic
//! of offline evaluation.
//!
//! A [`ServeSession`] owns the three pieces of live state a deployed
//! memory-based TGNN needs — the node [`MemoryState`] + mailbox, the
//! appendable adjacency ([`DynamicTCsr`]), and the static node memory
//! — and exposes two entry points:
//!
//! * [`ServeSession::ingest`] — absorb a chronological slab of
//!   observed events: the adjacency is extended first (an appended
//!   event is invisible to any query at or before its own time —
//!   strictly-before sampling — so the append is always safe to run
//!   early), then the batched mailbox/GRU memory update runs with the
//!   identical arithmetic of [`crate::replay_memory`] at the same
//!   batch boundaries, on the engine's sampling-free fast path.
//! * [`ServeSession::query`] — score link candidates or return node
//!   embeddings at arbitrary query times. Concurrent requests
//!   micro-batch through **one** frontier expansion and one
//!   unique-node memory gather (the PR 2/PR 4 union-fold contract);
//!   per-row purity of every model stage means a request's answer
//!   never depends on what else shares the micro-batch.
//!
//! [`ServeSession::ingest_scored`] composes the two in the
//! score-before-write order of evaluation (and of real traffic
//! scoring): extend adjacency → query the slab's own events (plus any
//! extra candidates) against **pre-slab memory** → apply the memory
//! update.
//!
//! # The bit-identity contract
//!
//! Serving is a *re-ordering* of offline evaluation's arithmetic,
//! never a new approximation. Concretely: seed a session with an event
//! prefix via [`ServeSession::ingest`], then walk a range with
//! [`ServeSession::ingest_scored`] at the oracle's batch boundaries —
//! the produced scores, task metrics, and the final node-memory
//! checksum are **bit-identical** to [`crate::evaluate`] replaying the
//! same events offline over a frozen [`disttgl_graph::TCsr`]. Pinned
//! for both tasks and 1-/2-layer stacks by
//! `tests/serve_equivalence.rs`.
//!
//! # Failure semantics
//!
//! The serving plane is **panic-free on external input**: malformed
//! requests and events come back as typed errors and the session stays
//! fully usable afterwards. The recoverable/fatal split:
//!
//! * **Recoverable (typed errors).** [`ServeSession::ingest`] is
//!   *batch-partial*: each event is validated against a running stream
//!   head, the valid chronological subsequence is applied, and the
//!   rejects come back as `(slab index, `[`EventFault`]`)` pairs inside
//!   [`IngestError::Rejected`] — a stale or corrupt event never
//!   poisons the events around it. [`ServeSession::query`] and
//!   [`ServeSession::ingest_scored`] are *atomic*: they validate
//!   everything up front and touch no state on [`ServeError`] (scored
//!   responses align positionally with the slab, so partial application
//!   would mis-align them). Checkpoint restore validates framing,
//!   digest, fingerprint, and adjacency invariants, returning
//!   [`CheckpointError`] instead of panicking on corrupt bytes.
//! * **Fatal (panics).** Programming errors on the session's own side:
//!   response-accessor misuse ([`QueryResponse::scores`] on an
//!   embedding) and internal invariant violations. These are bugs, not
//!   inputs, and are deliberately loud.
//!
//! # The snapshot-read contract (concurrent serving)
//!
//! [`concurrent::ConcurrentServe`] scales this plane across threads: a
//! single writer owns ingest while N reader threads answer queries
//! against MVCC snapshots of the live state, validating their gathered
//! rows through the PR 3 version vector
//! ([`MemoryState::delta_since`] / `repair_since`) before responding.
//!
//! **Guaranteed**: every answer is *linearizable per request* — bit
//! identical to what a serialized [`ServeSession`] replaying the same
//! admitted slabs would answer at the watermark the response reports
//! (`tests/concurrent_serve_equivalence.rs` pins this for both tasks
//! at 1- and 2-layer depth). Ingest slabs apply atomically: a reader
//! never observes an adjacency/memory state between slab boundaries.
//!
//! **Not guaranteed**: inter-request ordering under load — two
//! in-flight queries may serialize in either order relative to each
//! other and to concurrently admitted slabs, so answers across
//! requests need not reflect one global request order. Admission
//! control is typed, not silent: a full ingest queue refuses with
//! [`ServeError::Overloaded`] and nothing is queued.

use crate::batch::{edge_feature_rows_into, occurrence_nodes_into, ReadoutIndex, ReadoutView};
use crate::checkpoint::{CheckpointError, ServeCheckpoint};
use crate::engine::{InferenceEngine, PartRef};
use crate::model::TgnModel;
use crate::static_mem::StaticMemory;
use disttgl_data::Dataset;
use disttgl_graph::{DynamicTCsr, Event, NeighborBlock, RecentNeighborSampler, TemporalAdjacency};
use disttgl_mem::{MemoryState, VersionedReadout};
use disttgl_tensor::Matrix;
use std::collections::HashMap;
use std::fmt;

#[path = "serve_concurrent.rs"]
pub mod concurrent;
pub use concurrent::{
    ConcurrentOptions, ConcurrentServe, ConcurrentStats, ReaderContext, SnapshotAnswer,
    SnapshotDrift,
};

/// Why one event or request operand was rejected.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EventFault {
    /// The timestamp precedes the stream head it would be appended at
    /// (out-of-order delivery), or is NaN.
    OutOfOrder {
        /// The offending timestamp.
        t: f32,
        /// The stream head it failed against.
        head: f32,
    },
    /// A non-finite timestamp (±∞ would wedge the stream head; NaN
    /// out-of-order checks are vacuous).
    NonFiniteTime {
        /// The offending timestamp.
        t: f32,
    },
    /// A node id outside the session's node range.
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// The session's node count.
        num_nodes: u32,
    },
    /// An edge id with no row in the edge-feature table.
    UnknownEdgeId {
        /// The offending edge id.
        eid: u32,
        /// Rows in the edge-feature table.
        table_rows: u32,
    },
}

impl fmt::Display for EventFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EventFault::OutOfOrder { t, head } => {
                write!(f, "t = {t} precedes the stream head t = {head}")
            }
            EventFault::NonFiniteTime { t } => write!(f, "non-finite timestamp {t}"),
            EventFault::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} outside the session's {num_nodes} nodes")
            }
            EventFault::UnknownEdgeId { eid, table_rows } => {
                write!(
                    f,
                    "eid {eid} outside the edge-feature table ({table_rows} rows)"
                )
            }
        }
    }
}

/// [`ServeSession::ingest`] failure: batch-partial semantics — the
/// valid events **were** applied; only the listed ones were rejected.
#[derive(Clone, Debug, PartialEq)]
pub enum IngestError {
    /// Some events were rejected. `applied` accounts for the valid
    /// chronological subsequence that was ingested; `rejected` pairs
    /// each refused event's slab index with its fault. The session
    /// remains fully usable.
    Rejected {
        /// Accounting for the applied subsequence.
        applied: IngestStats,
        /// `(slab index, fault)` for every rejected event, ascending.
        rejected: Vec<(usize, EventFault)>,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Rejected { applied, rejected } => write!(
                f,
                "ingest rejected {} of {} events (first: event {}: {})",
                rejected.len(),
                applied.events + rejected.len(),
                rejected[0].0,
                rejected[0].1
            ),
        }
    }
}

impl std::error::Error for IngestError {}

/// [`ServeSession::query`] / [`ServeSession::ingest_scored`] failure:
/// atomic semantics — nothing was applied and no state changed.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// A query request referenced an invalid operand; `request` indexes
    /// the offending entry of the request slice.
    InvalidRequest {
        /// Index of the offending request.
        request: usize,
        /// What was wrong with it.
        fault: EventFault,
    },
    /// An [`ServeSession::ingest_scored`] slab contained invalid
    /// events; nothing was appended, scored, or written.
    InvalidSlab {
        /// `(slab index, fault)` for every invalid event, ascending.
        rejected: Vec<(usize, EventFault)>,
    },
    /// Admission control refused the submission: the concurrent
    /// serving plane's bounded ingest queue is full
    /// ([`ConcurrentServe::enqueue_ingest`]). Typed backpressure —
    /// nothing was queued; retry after the writer drains or shed the
    /// slab.
    Overloaded {
        /// Events already waiting in the ingest queue.
        queued_events: usize,
        /// The queue's capacity, in events.
        capacity: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidRequest { request, fault } => {
                write!(f, "request {request}: {fault}")
            }
            ServeError::InvalidSlab { rejected } => write!(
                f,
                "scored slab has {} invalid events (first: event {}: {})",
                rejected.len(),
                rejected[0].0,
                rejected[0].1
            ),
            ServeError::Overloaded {
                queued_events,
                capacity,
            } => write!(
                f,
                "ingest queue full ({queued_events} events queued, capacity {capacity})"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

/// One serving request, timestamped by the client.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QueryRequest {
    /// Score the candidate link `(src, dst)` as of time `t`: the link
    /// predictor's logit on a link-prediction model, the per-class
    /// logits on an edge-classification model.
    LinkScore {
        /// Candidate source node.
        src: u32,
        /// Candidate destination node.
        dst: u32,
        /// Query time (only events strictly before `t` support it).
        t: f32,
    },
    /// Return `node`'s temporal embedding as of time `t`.
    Embed {
        /// Node to embed.
        node: u32,
        /// Query time.
        t: f32,
    },
}

/// Answer to one [`QueryRequest`], in request order.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryResponse {
    /// Decoder output of a [`QueryRequest::LinkScore`]: one logit for
    /// link prediction, `num_classes` logits for classification.
    Scores(Vec<f32>),
    /// The `d_emb`-wide embedding of a [`QueryRequest::Embed`].
    Embedding(Vec<f32>),
}

impl QueryResponse {
    /// The scores of a [`QueryResponse::Scores`] answer.
    ///
    /// # Panics
    /// Panics on an embedding response.
    pub fn scores(&self) -> &[f32] {
        match self {
            QueryResponse::Scores(s) => s,
            QueryResponse::Embedding(_) => panic!("embedding response has no scores"),
        }
    }

    /// The vector of a [`QueryResponse::Embedding`] answer.
    ///
    /// # Panics
    /// Panics on a scores response.
    pub fn embedding(&self) -> &[f32] {
        match self {
            QueryResponse::Embedding(e) => e,
            QueryResponse::Scores(_) => panic!("scores response has no embedding"),
        }
    }
}

/// Accounting for one [`ServeSession::ingest`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IngestStats {
    /// Events absorbed.
    pub events: usize,
    /// Rows in the applied write request: `2 · events` under the
    /// most-recent `COMB` (duplicate nodes resolve last-write-wins at
    /// apply time), fewer under mean `COMB`, which pre-collapses.
    pub rows_written: usize,
    /// Unique memory rows gathered for the GRU update.
    pub rows_read: usize,
}

/// Result of [`ServeSession::ingest_scored`].
#[derive(Clone, Debug)]
pub struct ScoredIngest {
    /// Score of each ingested event `(src, dst, t)` in slab order —
    /// computed against pre-slab memory, exactly as offline evaluation
    /// scores a batch before its write-back.
    pub event_scores: Vec<QueryResponse>,
    /// Answers to the `extra` candidate requests, same memory point.
    pub extra: Vec<QueryResponse>,
    /// The slab's ingest accounting.
    pub stats: IngestStats,
}

/// Reusable buffers for the micro-batched query read path — the
/// serving plane's `StepScratch` analog. A session (or a concurrent
/// reader) keeps one arena alive for its whole lifetime; every stage
/// of the pipeline clears and refills these vectors in place, so a
/// steady-state query loop stops growing them after the first few
/// calls.
#[derive(Default)]
pub(crate) struct QueryScratch {
    /// Flattened request roots (a link candidate contributes both
    /// endpoints back-to-back).
    pub(crate) roots: Vec<u32>,
    /// Query time of each root.
    pub(crate) times: Vec<f32>,
    /// Multi-hop frontier blocks, one per layer.
    pub(crate) hops: Vec<NeighborBlock>,
    /// The flat occurrence list (`roots ++ hop slots`).
    pub(crate) occ: Vec<u32>,
    /// Unique-node fold of `occ` (when `dedup_readout` is on).
    pub(crate) uniq: ReadoutIndex,
    /// Hash scratch for [`ReadoutIndex::rebuild`].
    pub(crate) uniq_map: HashMap<u32, u32>,
    /// Gathered memory rows + the version vector they were read at —
    /// the MVCC tag the concurrent plane validates against.
    pub(crate) readout: VersionedReadout,
    /// Per-hop edge-feature gathers.
    pub(crate) nbr_feats: Vec<Matrix>,
    /// Index scratch for the edge-feature gathers.
    pub(crate) eid_idx: Vec<usize>,
    /// Embedding-row indices of link-candidate sources.
    pub(crate) src_rows: Vec<usize>,
    /// Embedding-row indices of link-candidate destinations.
    pub(crate) dst_rows: Vec<usize>,
    /// Gathered source embeddings for the decoder call.
    pub(crate) src_emb: Matrix,
    /// Gathered destination embeddings for the decoder call.
    pub(crate) dst_emb: Matrix,
}

/// Checks one event against the serving invariants at stream head
/// `head`. `None` means acceptable; the checks mirror exactly the
/// panics [`DynamicTCsr::append_events`] and the edge-feature gather
/// would otherwise hit, making those panics unreachable from external
/// input.
pub(crate) fn validate_event(dataset: &Dataset, e: &Event, head: f32) -> Option<EventFault> {
    if !e.t.is_finite() {
        return Some(EventFault::NonFiniteTime { t: e.t });
    }
    let n = dataset.graph.num_nodes() as u32;
    for node in [e.src, e.dst] {
        if node >= n {
            return Some(EventFault::NodeOutOfRange { node, num_nodes: n });
        }
    }
    let table_rows = dataset.edge_features.rows();
    if dataset.edge_features.cols() > 0 && e.eid as usize >= table_rows {
        return Some(EventFault::UnknownEdgeId {
            eid: e.eid,
            table_rows: table_rows as u32,
        });
    }
    if e.t < head {
        return Some(EventFault::OutOfOrder { t: e.t, head });
    }
    None
}

/// Checks one query request's operands (same faults as
/// [`validate_event`], minus stream ordering — a query may name any
/// time).
pub(crate) fn validate_request(dataset: &Dataset, r: &QueryRequest) -> Option<EventFault> {
    let n = dataset.graph.num_nodes() as u32;
    let (nodes, t) = match *r {
        QueryRequest::LinkScore { src, dst, t } => ([src, dst], t),
        QueryRequest::Embed { node, t } => ([node, node], t),
    };
    if !t.is_finite() {
        return Some(EventFault::NonFiniteTime { t });
    }
    nodes
        .into_iter()
        .find(|&node| node >= n)
        .map(|node| EventFault::NodeOutOfRange { node, num_nodes: n })
}

/// Stage 1 of the shared query pipeline: flatten validated requests
/// into one root list (a link candidate contributes its two endpoints
/// back-to-back).
pub(crate) fn flatten_requests(requests: &[QueryRequest], scratch: &mut QueryScratch) {
    scratch.roots.clear();
    scratch.times.clear();
    for r in requests {
        match *r {
            QueryRequest::LinkScore { src, dst, t } => {
                scratch.roots.push(src);
                scratch.roots.push(dst);
                scratch.times.push(t);
                scratch.times.push(t);
            }
            QueryRequest::Embed { node, t } => {
                scratch.roots.push(node);
                scratch.times.push(t);
            }
        }
    }
}

/// Stage 2 of the shared query pipeline: the **snapshot gather** — one
/// multi-hop frontier expansion plus one folded, version-tagged memory
/// read. Everything the compute stage needs from mutable state lands
/// in the scratch, so a concurrent reader can release its read lock
/// the moment this returns.
pub(crate) fn gather_snapshot(
    sampler: &RecentNeighborSampler,
    dedup: bool,
    adj: &DynamicTCsr,
    memory: &MemoryState,
    scratch: &mut QueryScratch,
) {
    sampler.sample_hops_into(adj, &scratch.roots, &scratch.times, &mut scratch.hops);
    fold_and_read(dedup, memory, scratch);
}

/// The tail of [`gather_snapshot`] after `scratch.hops` is in place:
/// occurrence fold + version-tagged unique-row gather. Split out so
/// the concurrent plane's revalidation path can resample into a check
/// buffer first and only redo the fold when the frontier truly
/// drifted.
pub(crate) fn fold_and_read(dedup: bool, memory: &MemoryState, scratch: &mut QueryScratch) {
    occurrence_nodes_into(&scratch.roots, &scratch.hops, &mut scratch.occ);
    if dedup {
        scratch.uniq.rebuild(&scratch.occ, &mut scratch.uniq_map);
    }
    let nodes: &[u32] = if dedup {
        &scratch.uniq.unique_nodes
    } else {
        &scratch.occ
    };
    memory.read_versioned_into(nodes, &mut scratch.readout);
}

/// Stage 3 of the shared query pipeline: the **lock-free compute** —
/// edge-feature gathers from the immutable dataset table, the
/// attention stack, one decoder call over all link candidates, and
/// response assembly in request order. Reads only the snapshot in
/// `scratch` (plus immutable model/dataset state), so a concurrent
/// reader runs it with no lock held. Bit-identical to the historical
/// single-threaded query path: same gathers, same folded readout, same
/// engine calls.
pub(crate) fn compute_responses(
    model: &TgnModel,
    dataset: &Dataset,
    static_mem: Option<&StaticMemory>,
    engine: &mut InferenceEngine,
    dedup: bool,
    requests: &[QueryRequest],
    scratch: &mut QueryScratch,
) -> Vec<QueryResponse> {
    scratch.nbr_feats.truncate(scratch.hops.len());
    while scratch.nbr_feats.len() < scratch.hops.len() {
        scratch.nbr_feats.push(Matrix::zeros(0, 0));
    }
    for (h, feats) in scratch.hops.iter().zip(scratch.nbr_feats.iter_mut()) {
        edge_feature_rows_into(dataset, &h.eids, feats, &mut scratch.eid_idx);
    }

    // Move the gathered rows into a shareable view for the embed, then
    // recycle the buffer (the trainer's recycle_block pattern).
    let view = ReadoutView::whole(std::mem::take(&mut scratch.readout.readout));
    let pe = {
        let part = PartRef {
            roots: &scratch.roots,
            times: &scratch.times,
            hops: &scratch.hops,
            readout: &view,
            uniq: dedup.then_some(&scratch.uniq),
            nbr_feats: &scratch.nbr_feats,
        };
        engine.embed_part(model, part, static_mem)
    };
    scratch.readout.readout = view
        .into_block()
        .expect("query view is the gathered block's only reference");

    // One decoder call over every link candidate.
    scratch.src_rows.clear();
    scratch.dst_rows.clear();
    let mut row = 0usize;
    for r in requests {
        if let QueryRequest::LinkScore { .. } = r {
            scratch.src_rows.push(row);
            scratch.dst_rows.push(row + 1);
        }
        row += match r {
            QueryRequest::LinkScore { .. } => 2,
            QueryRequest::Embed { .. } => 1,
        };
    }
    let scores = (!scratch.src_rows.is_empty()).then(|| {
        pe.emb
            .gather_rows_into(&scratch.src_rows, &mut scratch.src_emb);
        pe.emb
            .gather_rows_into(&scratch.dst_rows, &mut scratch.dst_emb);
        engine.score_pairs(model, &scratch.src_emb, &scratch.dst_emb)
    });

    let mut out = Vec::with_capacity(requests.len());
    let mut row = 0usize;
    let mut pair = 0usize;
    for r in requests {
        match r {
            QueryRequest::LinkScore { .. } => {
                let s = scores.as_ref().expect("scored above");
                out.push(QueryResponse::Scores(s.row(pair).to_vec()));
                pair += 1;
                row += 2;
            }
            QueryRequest::Embed { .. } => {
                out.push(QueryResponse::Embedding(pe.emb.row(row).to_vec()));
                row += 1;
            }
        }
    }
    out
}

/// An online inference session over an evolving temporal graph (see
/// the module docs). Borrows the trained model and the dataset's
/// edge-feature table; owns the live memory and adjacency.
pub struct ServeSession<'a> {
    model: &'a TgnModel,
    dataset: &'a Dataset,
    static_mem: Option<&'a StaticMemory>,
    adj: DynamicTCsr,
    memory: MemoryState,
    engine: InferenceEngine,
    sampler: RecentNeighborSampler,
    dedup: bool,
    ingested: usize,
    scratch: QueryScratch,
}

impl<'a> ServeSession<'a> {
    /// Opens a session with an empty graph and zeroed node memory.
    /// Feed history through [`ServeSession::ingest`] to warm-start —
    /// at the same batch boundaries as an offline replay if
    /// bit-identical positioning matters.
    pub fn new(
        model: &'a TgnModel,
        dataset: &'a Dataset,
        static_mem: Option<&'a StaticMemory>,
    ) -> Self {
        let cfg = &model.cfg;
        Self {
            model,
            dataset,
            static_mem,
            adj: DynamicTCsr::new(dataset.graph.num_nodes()),
            memory: cfg.new_memory(dataset.graph.num_nodes()),
            engine: InferenceEngine::new(),
            sampler: RecentNeighborSampler::with_fanouts(cfg.fanouts()),
            dedup: cfg.dedup_readout,
            ingested: 0,
            scratch: QueryScratch::default(),
        }
    }

    /// Events absorbed so far.
    pub fn events_ingested(&self) -> usize {
        self.ingested
    }

    /// The live adjacency (read access).
    pub fn adjacency(&self) -> &DynamicTCsr {
        &self.adj
    }

    /// The live node memory (read access).
    pub fn memory(&self) -> &MemoryState {
        &self.memory
    }

    /// Content digest of the live node memory — what the equivalence
    /// suite compares against the offline replay's state.
    pub fn memory_checksum(&self) -> u64 {
        self.memory.checksum()
    }

    /// Absorbs a chronological slab of observed events: extends the
    /// live adjacency, then applies the batched mailbox/GRU memory
    /// update (one folded GRU pass over the slab's unique root rows,
    /// one write — the identical arithmetic of [`crate::replay_memory`]
    /// at these batch boundaries).
    ///
    /// **Batch-partial**: each event is validated against a running
    /// stream head (time order, finite timestamp, node range, edge-id
    /// range); the valid chronological subsequence is applied even when
    /// some events are refused. On `Err`, [`IngestError::Rejected`]
    /// carries both the accounting for what *was* applied and the
    /// `(slab index, fault)` of every reject — the session stays fully
    /// usable either way.
    pub fn ingest(&mut self, events: &[Event]) -> Result<IngestStats, IngestError> {
        let mut head = self.adj.stream_head();
        let mut accepted: Vec<Event> = Vec::with_capacity(events.len());
        let mut rejected: Vec<(usize, EventFault)> = Vec::new();
        for (i, e) in events.iter().enumerate() {
            match self.validate_event(e, head) {
                Some(fault) => rejected.push((i, fault)),
                None => {
                    head = e.t;
                    accepted.push(*e);
                }
            }
        }
        self.extend_adjacency(&accepted);
        let applied = self.apply_memory(&accepted);
        if rejected.is_empty() {
            Ok(applied)
        } else {
            Err(IngestError::Rejected { applied, rejected })
        }
    }

    /// Checks one event against the session's invariants at stream
    /// head `head` (see the module-level [`validate_event`]).
    fn validate_event(&self, e: &Event, head: f32) -> Option<EventFault> {
        validate_event(self.dataset, e, head)
    }

    /// Checks one query request's operands (see the module-level
    /// [`validate_request`]).
    fn validate_request(&self, r: &QueryRequest) -> Option<EventFault> {
        validate_request(self.dataset, r)
    }

    /// Phase A of [`ServeSession::ingest`]: the adjacency append.
    /// Callers have already validated `events`; the asserts below are
    /// internal-invariant backstops, not input checks.
    fn extend_adjacency(&mut self, events: &[Event]) {
        let feat_rows = self.dataset.edge_features.rows();
        if self.dataset.edge_features.cols() > 0 {
            for e in events {
                assert!(
                    (e.eid as usize) < feat_rows,
                    "ingest: eid {} outside the edge-feature table ({feat_rows} rows)",
                    e.eid
                );
            }
        }
        self.adj.append_events(events);
    }

    /// Phase B of [`ServeSession::ingest`]: the batched memory update.
    fn apply_memory(&mut self, events: &[Event]) -> IngestStats {
        if events.is_empty() {
            return IngestStats::default();
        }
        let (w, rows_read) =
            self.engine
                .memory_write_events(self.model, self.dataset, events, &mut self.memory);
        let stats = IngestStats {
            events: events.len(),
            rows_written: w.nodes.len(),
            rows_read,
        };
        self.memory.write(&w);
        self.ingested += events.len();
        stats
    }

    /// Answers a micro-batch of concurrent requests against the
    /// current graph + memory, read-only: one multi-hop frontier
    /// expansion over all requested roots, one unique-node memory
    /// gather across the union of every hop frontier, one pass through
    /// the attention stack, one decoder call over all link candidates.
    /// Responses are in request order, and each is bit-identical to
    /// what the request would get in a micro-batch of its own (per-row
    /// purity — see `core::engine`).
    ///
    /// **Atomic**: every request is validated before any work; on
    /// [`ServeError::InvalidRequest`] nothing was sampled, gathered, or
    /// scored, and the session is untouched (queries are read-only
    /// regardless).
    pub fn query(&mut self, requests: &[QueryRequest]) -> Result<Vec<QueryResponse>, ServeError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        for (i, r) in requests.iter().enumerate() {
            if let Some(fault) = self.validate_request(r) {
                return Err(ServeError::InvalidRequest { request: i, fault });
            }
        }
        // The shared three-stage pipeline over the session's own scratch
        // arena: flatten → snapshot gather (one frontier expansion + one
        // folded gather — the union contract) → lock-free compute. The
        // concurrent plane runs the same stages against a locked
        // snapshot; both are bit-identical to the historical
        // allocate-per-call path.
        flatten_requests(requests, &mut self.scratch);
        gather_snapshot(
            &self.sampler,
            self.dedup,
            &self.adj,
            &self.memory,
            &mut self.scratch,
        );
        Ok(compute_responses(
            self.model,
            self.dataset,
            self.static_mem,
            &mut self.engine,
            self.dedup,
            requests,
            &mut self.scratch,
        ))
    }

    /// Score-then-ingest, the streaming form of evaluation's
    /// score-before-write order: extends the adjacency with `events`,
    /// answers one micro-batched query for the slab's own `(src, dst,
    /// t)` candidates plus any `extra` requests — all against
    /// **pre-slab memory** — then applies the slab's memory update.
    /// Driving a range through this call at an offline oracle's batch
    /// boundaries reproduces [`crate::evaluate`] bit for bit (the
    /// module-level contract).
    ///
    /// **Atomic**, unlike [`ServeSession::ingest`]: the scores align
    /// positionally with the slab, so applying a partial subsequence
    /// would mis-align them. The whole slab plus every `extra` request
    /// is validated up front; on `Err` nothing was appended, scored, or
    /// written.
    pub fn ingest_scored(
        &mut self,
        events: &[Event],
        extra: &[QueryRequest],
    ) -> Result<ScoredIngest, ServeError> {
        let mut head = self.adj.stream_head();
        let mut rejected: Vec<(usize, EventFault)> = Vec::new();
        for (i, e) in events.iter().enumerate() {
            match self.validate_event(e, head) {
                Some(fault) => rejected.push((i, fault)),
                None => head = e.t,
            }
        }
        if !rejected.is_empty() {
            return Err(ServeError::InvalidSlab { rejected });
        }
        for (i, r) in extra.iter().enumerate() {
            if let Some(fault) = self.validate_request(r) {
                return Err(ServeError::InvalidRequest { request: i, fault });
            }
        }
        self.extend_adjacency(events);
        let mut requests: Vec<QueryRequest> = events
            .iter()
            .map(|e| QueryRequest::LinkScore {
                src: e.src,
                dst: e.dst,
                t: e.t,
            })
            .collect();
        requests.extend_from_slice(extra);
        let mut event_scores = self.query(&requests).expect("requests validated above");
        let extra_resp = event_scores.split_off(events.len());
        let stats = self.apply_memory(events);
        Ok(ScoredIngest {
            event_scores,
            extra: extra_resp,
            stats,
        })
    }

    /// Captures the session's full live state — node memory, dynamic
    /// adjacency, stream head, ingest counter — as a
    /// [`ServeCheckpoint`]. Pure observation: the session is untouched
    /// and a session restored from the capture answers every query
    /// bit-identically to this one.
    pub fn checkpoint(&self) -> ServeCheckpoint {
        let n = self.dataset.graph.num_nodes();
        ServeCheckpoint {
            fingerprint: serve_fingerprint(self.model, self.dataset),
            memory: self.memory.clone(),
            adj: (0..n as u32)
                .map(|v| self.adj.neighbors(v).to_vec())
                .collect(),
            num_events: self.adj.num_events(),
            stream_head: self.adj.stream_head(),
            ingested: self.ingested as u64,
        }
    }

    /// Reopens a session from a [`ServeCheckpoint`] against the same
    /// trained model and dataset. Refuses a capture taken under a
    /// different model configuration or node count
    /// ([`CheckpointError::Mismatch`]) and one whose adjacency violates
    /// the dynamic T-CSR's invariants ([`CheckpointError::Corrupt`]) —
    /// restore never panics on a hostile file.
    pub fn restore(
        model: &'a TgnModel,
        dataset: &'a Dataset,
        static_mem: Option<&'a StaticMemory>,
        ckpt: ServeCheckpoint,
    ) -> Result<Self, CheckpointError> {
        let live = serve_fingerprint(model, dataset);
        if ckpt.fingerprint != live {
            return Err(CheckpointError::Mismatch(format!(
                "serve checkpoint was taken under a different configuration\n  saved: {}\n  live:  {}",
                ckpt.fingerprint.replace('\n', " | "),
                live.replace('\n', " | ")
            )));
        }
        if ckpt.memory.num_nodes() != dataset.graph.num_nodes() {
            return Err(CheckpointError::Corrupt(format!(
                "{} memory nodes vs {} dataset nodes",
                ckpt.memory.num_nodes(),
                dataset.graph.num_nodes()
            )));
        }
        let adj = DynamicTCsr::from_parts(ckpt.adj, ckpt.num_events, ckpt.stream_head)
            .map_err(CheckpointError::Corrupt)?;
        let cfg = &model.cfg;
        Ok(Self {
            model,
            dataset,
            static_mem,
            adj,
            memory: ckpt.memory,
            engine: InferenceEngine::new(),
            sampler: RecentNeighborSampler::with_fanouts(cfg.fanouts()),
            dedup: cfg.dedup_readout,
            ingested: ckpt.ingested as usize,
            scratch: QueryScratch::default(),
        })
    }

    /// Captures and persists into a [`CheckpointStore`] (atomic write,
    /// ingest-sequence naming, retention GC). Returns the published
    /// path.
    pub fn checkpoint_to(
        &self,
        store: &crate::recover::CheckpointStore,
    ) -> Result<std::path::PathBuf, CheckpointError> {
        store.save_serve(&self.checkpoint())
    }

    /// Reopens from the store's newest serving checkpoint that fully
    /// validates, scanning past torn/corrupt files. `Ok(None)` when
    /// the store holds no good serving checkpoint.
    pub fn restore_latest(
        model: &'a TgnModel,
        dataset: &'a Dataset,
        static_mem: Option<&'a StaticMemory>,
        store: &crate::recover::CheckpointStore,
    ) -> Result<Option<Self>, CheckpointError> {
        match store.load_latest_serve()? {
            Some((ckpt, _)) => Self::restore(model, dataset, static_mem, ckpt).map(Some),
            None => Ok(None),
        }
    }
}

/// Serving-plane fingerprint: the model configuration plus the
/// dataset's node count — everything a restored session must agree on
/// before its answers can be meaningful.
fn serve_fingerprint(model: &TgnModel, dataset: &Dataset) -> String {
    format!(
        "{}\nnodes={}",
        serde_json::to_string(&model.cfg).expect("model config serializes"),
        dataset.graph.num_nodes()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use disttgl_data::generators;
    use disttgl_tensor::seeded_rng;

    fn link_setup(n_layers: usize) -> (disttgl_data::Dataset, TgnModel) {
        let d = generators::wikipedia(0.005, 21);
        let mut cfg = ModelConfig::compact(d.edge_features.cols()).with_layers(n_layers);
        cfg.n_neighbors = 5;
        let mut rng = seeded_rng(4);
        let model = TgnModel::new(cfg, &mut rng);
        (d, model)
    }

    #[test]
    fn query_is_read_only() {
        let (d, model) = link_setup(1);
        let mut s = ServeSession::new(&model, &d, None);
        s.ingest(&d.graph.events()[0..200]).unwrap();
        let before = s.memory_checksum();
        let reqs = vec![
            QueryRequest::LinkScore {
                src: d.graph.events()[10].src,
                dst: d.graph.events()[10].dst,
                t: 1e9,
            },
            QueryRequest::Embed {
                node: d.graph.events()[0].src,
                t: 1e9,
            },
        ];
        let resp = s.query(&reqs).unwrap();
        assert_eq!(resp.len(), 2);
        assert_eq!(resp[0].scores().len(), 1);
        assert_eq!(resp[1].embedding().len(), model.cfg.d_emb);
        assert_eq!(s.memory_checksum(), before, "query must not mutate memory");
        assert_eq!(
            s.adjacency().num_events(),
            200,
            "query must not mutate adjacency"
        );
    }

    /// Micro-batching must not change any request's answer: a batch of
    /// requests answers exactly as the same requests issued one by one
    /// (per-row purity through the whole stack).
    #[test]
    fn micro_batched_queries_equal_single_queries() {
        let (d, model) = link_setup(2);
        let mut s = ServeSession::new(&model, &d, None);
        s.ingest(&d.graph.events()[0..300]).unwrap();
        let ev = d.graph.events();
        let reqs: Vec<QueryRequest> = (0..8)
            .map(|i| QueryRequest::LinkScore {
                src: ev[i * 7].src,
                dst: ev[i * 11 + 3].dst,
                t: ev[299].t + 1.0,
            })
            .chain([QueryRequest::Embed {
                node: ev[5].src,
                t: ev[299].t + 1.0,
            }])
            .collect();
        let batched = s.query(&reqs).unwrap();
        for (i, r) in reqs.iter().enumerate() {
            let single = s.query(std::slice::from_ref(r)).unwrap();
            assert_eq!(single[0], batched[i], "request {i}");
        }
    }

    #[test]
    fn ingest_advances_stream_state() {
        let (d, model) = link_setup(1);
        let mut s = ServeSession::new(&model, &d, None);
        let stats = s.ingest(&d.graph.events()[0..64]).unwrap();
        assert_eq!(stats.events, 64);
        assert!(stats.rows_written > 0 && stats.rows_written <= 128);
        assert!(stats.rows_read > 0);
        assert_eq!(s.events_ingested(), 64);
        let more = s.ingest(&d.graph.events()[64..96]).unwrap();
        assert_eq!(more.events, 32);
        assert_eq!(s.events_ingested(), 96);
        assert_eq!(s.adjacency().num_events(), 96);
    }

    #[test]
    fn classification_queries_return_class_logits() {
        let d = generators::gdelt(2e-5, 13);
        let mut cfg = ModelConfig::compact(d.edge_features.cols()).with_classes(56);
        cfg.n_neighbors = 5;
        let mut rng = seeded_rng(6);
        let model = TgnModel::new(cfg, &mut rng);
        let mut s = ServeSession::new(&model, &d, None);
        s.ingest(&d.graph.events()[0..100]).unwrap();
        let e = &d.graph.events()[50];
        let resp = s
            .query(&[QueryRequest::LinkScore {
                src: e.src,
                dst: e.dst,
                t: 1e12,
            }])
            .unwrap();
        assert_eq!(resp[0].scores().len(), 56);
    }

    #[test]
    fn ingest_scored_scores_before_write() {
        let (d, model) = link_setup(1);
        let mut s = ServeSession::new(&model, &d, None);
        s.ingest(&d.graph.events()[0..100]).unwrap();
        let pre = s.memory_checksum();
        let slab: Vec<Event> = d.graph.events()[100..140].to_vec();
        let out = s.ingest_scored(&slab, &[]).unwrap();
        assert_eq!(out.event_scores.len(), 40);
        assert_eq!(out.stats.events, 40);
        assert_ne!(s.memory_checksum(), pre, "ingest applied the write");

        // Re-scoring the same candidates now (post-write) differs —
        // proof the scores were taken at the pre-slab memory point.
        let reqs: Vec<QueryRequest> = slab
            .iter()
            .map(|e| QueryRequest::LinkScore {
                src: e.src,
                dst: e.dst,
                t: e.t,
            })
            .collect();
        let post = s.query(&reqs).unwrap();
        assert_ne!(
            out.event_scores, post,
            "pre- and post-write scores should differ on a recurrent stream"
        );
    }

    /// Out-of-order delivery is a structured, recoverable error, not a
    /// panic: the stale events come back as indexed rejects and the
    /// session keeps serving.
    #[test]
    fn out_of_order_ingest_rejects_and_stays_usable() {
        let (d, model) = link_setup(1);
        let mut s = ServeSession::new(&model, &d, None);
        let ev = d.graph.events();
        s.ingest(&ev[10..20]).unwrap();
        let head = s.adjacency().stream_head();

        let err = s.ingest(&ev[0..5]).unwrap_err();
        let IngestError::Rejected { applied, rejected } = err;
        assert!(!rejected.is_empty());
        assert_eq!(applied.events + rejected.len(), 5);
        for &(i, fault) in &rejected {
            assert!(i < 5);
            assert!(
                matches!(fault, EventFault::OutOfOrder { t, head: h }
                    if t == ev[i].t && h == head),
                "event {i}: unexpected fault {fault}"
            );
        }

        // The session is fully usable afterwards: fresh events land and
        // queries answer.
        s.ingest(&ev[20..30]).unwrap();
        assert_eq!(s.adjacency().stream_head(), ev[29].t);
        s.query(&[QueryRequest::Embed {
            node: ev[25].src,
            t: ev[29].t + 1.0,
        }])
        .unwrap();
    }

    /// Batch-partial contract: a slab mixing valid and invalid events
    /// applies exactly the valid chronological subsequence and indexes
    /// each reject with its fault.
    #[test]
    fn mixed_slab_applies_valid_subsequence() {
        let (d, model) = link_setup(1);
        let mut s = ServeSession::new(&model, &d, None);
        let ev = d.graph.events();
        s.ingest(&ev[0..50]).unwrap();
        let n = d.graph.num_nodes() as u32;
        let head = s.adjacency().stream_head();

        let good_a = ev[50];
        let bad_node = Event { src: n, ..ev[51] };
        let bad_time = Event {
            t: head - 1.0,
            ..ev[52]
        };
        let bad_nan = Event {
            t: f32::NAN,
            ..ev[53]
        };
        let good_b = ev[54];
        let slab = [good_a, bad_node, bad_time, bad_nan, good_b];

        let err = s.ingest(&slab).unwrap_err();
        let IngestError::Rejected { applied, rejected } = err;
        assert_eq!(applied.events, 2, "both valid events applied");
        assert_eq!(rejected.len(), 3);
        assert!(matches!(
            rejected[0],
            (1, EventFault::NodeOutOfRange { node, num_nodes })
                if node == n && num_nodes == n
        ));
        assert!(matches!(rejected[1], (2, EventFault::OutOfOrder { .. })));
        assert!(matches!(rejected[2], (3, EventFault::NonFiniteTime { t }) if t.is_nan()));
        assert_eq!(s.adjacency().num_events(), 52);
        assert_eq!(s.events_ingested(), 52);
        assert_eq!(s.adjacency().stream_head(), good_b.t);

        // The applied subsequence is bit-identical to ingesting only
        // the valid events on a parallel session.
        let mut oracle = ServeSession::new(&model, &d, None);
        oracle.ingest(&ev[0..50]).unwrap();
        oracle.ingest(&[good_a, good_b]).unwrap();
        assert_eq!(s.memory_checksum(), oracle.memory_checksum());
    }

    /// Queries are atomic: an invalid operand reports a typed error,
    /// no state changes, and the session keeps answering.
    #[test]
    fn invalid_query_is_typed_and_atomic() {
        let (d, model) = link_setup(1);
        let mut s = ServeSession::new(&model, &d, None);
        let ev = d.graph.events();
        s.ingest(&ev[0..100]).unwrap();
        let before = s.memory_checksum();
        let n = d.graph.num_nodes() as u32;

        let err = s
            .query(&[
                QueryRequest::Embed {
                    node: ev[0].src,
                    t: 1e9,
                },
                QueryRequest::LinkScore {
                    src: ev[1].src,
                    dst: n + 7,
                    t: 1e9,
                },
            ])
            .unwrap_err();
        assert_eq!(
            err,
            ServeError::InvalidRequest {
                request: 1,
                fault: EventFault::NodeOutOfRange {
                    node: n + 7,
                    num_nodes: n
                }
            }
        );
        let err = s
            .query(&[QueryRequest::Embed {
                node: ev[0].src,
                t: f32::INFINITY,
            }])
            .unwrap_err();
        assert!(matches!(
            err,
            ServeError::InvalidRequest {
                request: 0,
                fault: EventFault::NonFiniteTime { .. }
            }
        ));
        assert_eq!(s.memory_checksum(), before);
        s.query(&[QueryRequest::Embed {
            node: ev[0].src,
            t: 1e9,
        }])
        .unwrap();
    }

    /// `ingest_scored` is all-or-nothing: one bad event anywhere in the
    /// slab and nothing is appended, scored, or written.
    #[test]
    fn invalid_scored_slab_applies_nothing() {
        let (d, model) = link_setup(1);
        let mut s = ServeSession::new(&model, &d, None);
        let ev = d.graph.events();
        s.ingest(&ev[0..100]).unwrap();
        let before = s.memory_checksum();
        let n = d.graph.num_nodes() as u32;

        let mut slab: Vec<Event> = ev[100..110].to_vec();
        slab[7].dst = n + 1;
        let err = s.ingest_scored(&slab, &[]).unwrap_err();
        assert!(matches!(
            &err,
            ServeError::InvalidSlab { rejected }
                if rejected.len() == 1 && rejected[0].0 == 7
        ));
        assert_eq!(s.adjacency().num_events(), 100, "nothing appended");
        assert_eq!(s.memory_checksum(), before, "nothing written");

        // The untouched slab then scores bit-identically to a session
        // that never saw the bad event.
        let good: Vec<Event> = ev[100..110].to_vec();
        let out = s.ingest_scored(&good, &[]).unwrap();
        assert_eq!(out.stats.events, 10);
    }

    /// Checkpoint → restore answers queries bit-identically and keeps
    /// absorbing the stream exactly where the captured session left
    /// off.
    #[test]
    fn checkpoint_restore_roundtrips_bit_identically() {
        let (d, model) = link_setup(2);
        let ev = d.graph.events();
        let mut s = ServeSession::new(&model, &d, None);
        s.ingest(&ev[0..200]).unwrap();

        // Through the on-disk format, not just the in-memory struct.
        let dir = std::env::temp_dir().join("disttgl_serve_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("serve.bin");
        s.checkpoint().save(&path).unwrap();
        let loaded = ServeCheckpoint::load(&path).unwrap();
        let mut r = ServeSession::restore(&model, &d, None, loaded).unwrap();
        std::fs::remove_dir_all(&dir).ok();

        assert_eq!(r.memory_checksum(), s.memory_checksum());
        assert_eq!(r.events_ingested(), s.events_ingested());
        assert_eq!(r.adjacency().num_events(), s.adjacency().num_events());
        assert_eq!(r.adjacency().stream_head(), s.adjacency().stream_head());

        let reqs: Vec<QueryRequest> = (0..6)
            .map(|i| QueryRequest::LinkScore {
                src: ev[i * 13].src,
                dst: ev[i * 17 + 1].dst,
                t: ev[199].t + 1.0,
            })
            .collect();
        assert_eq!(s.query(&reqs).unwrap(), r.query(&reqs).unwrap());

        // Continued ingest tracks the original bit for bit.
        s.ingest(&ev[200..260]).unwrap();
        r.ingest(&ev[200..260]).unwrap();
        assert_eq!(s.memory_checksum(), r.memory_checksum());
        assert_eq!(s.query(&reqs).unwrap(), r.query(&reqs).unwrap());
    }

    /// Restore refuses a capture from a different model configuration.
    #[test]
    fn restore_refuses_mismatched_model() {
        let (d, model) = link_setup(1);
        let mut s = ServeSession::new(&model, &d, None);
        s.ingest(&d.graph.events()[0..50]).unwrap();
        let ckpt = s.checkpoint();

        let (_, other) = link_setup(2);
        assert!(matches!(
            ServeSession::restore(&other, &d, None, ckpt),
            Err(CheckpointError::Mismatch(_))
        ));
    }

    /// Store-routed serving checkpoints: `restore_latest` reopens the
    /// newest capture, falls back past a torn newest file, and
    /// retention GC trims older captures.
    #[test]
    fn store_restore_latest_falls_back_past_torn_capture() {
        let (d, model) = link_setup(1);
        let ev = d.graph.events();
        let dir =
            std::env::temp_dir().join(format!("disttgl_serve_store_test_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = crate::recover::CheckpointStore::open(&dir, Some(3)).unwrap();

        let mut s = ServeSession::new(&model, &d, None);
        s.ingest(&ev[0..100]).unwrap();
        s.checkpoint_to(&store).unwrap();
        let good_checksum = s.memory_checksum();
        s.ingest(&ev[100..160]).unwrap();
        let newest = s.checkpoint_to(&store).unwrap();

        // Tear the newest capture: restore falls back to the 100-event
        // one instead of failing.
        let bytes = std::fs::read(&newest).unwrap();
        std::fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();
        let r = ServeSession::restore_latest(&model, &d, None, &store)
            .unwrap()
            .expect("older good capture exists");
        assert_eq!(r.events_ingested(), 100);
        assert_eq!(r.memory_checksum(), good_checksum);

        // Empty store → Ok(None), not an error.
        std::fs::remove_dir_all(&dir).ok();
        let empty = crate::recover::CheckpointStore::open(&dir, None).unwrap();
        assert!(ServeSession::restore_latest(&model, &d, None, &empty)
            .unwrap()
            .is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
