//! The **streaming serving plane**: answer live embedding / link-score
//! queries over an evolving temporal graph with the exact arithmetic
//! of offline evaluation.
//!
//! A [`ServeSession`] owns the three pieces of live state a deployed
//! memory-based TGNN needs — the node [`MemoryState`] + mailbox, the
//! appendable adjacency ([`DynamicTCsr`]), and the static node memory
//! — and exposes two entry points:
//!
//! * [`ServeSession::ingest`] — absorb a chronological slab of
//!   observed events: the adjacency is extended first (an appended
//!   event is invisible to any query at or before its own time —
//!   strictly-before sampling — so the append is always safe to run
//!   early), then the batched mailbox/GRU memory update runs with the
//!   identical arithmetic of [`crate::replay_memory`] at the same
//!   batch boundaries, on the engine's sampling-free fast path.
//! * [`ServeSession::query`] — score link candidates or return node
//!   embeddings at arbitrary query times. Concurrent requests
//!   micro-batch through **one** frontier expansion and one
//!   unique-node memory gather (the PR 2/PR 4 union-fold contract);
//!   per-row purity of every model stage means a request's answer
//!   never depends on what else shares the micro-batch.
//!
//! [`ServeSession::ingest_scored`] composes the two in the
//! score-before-write order of evaluation (and of real traffic
//! scoring): extend adjacency → query the slab's own events (plus any
//! extra candidates) against **pre-slab memory** → apply the memory
//! update.
//!
//! # The bit-identity contract
//!
//! Serving is a *re-ordering* of offline evaluation's arithmetic,
//! never a new approximation. Concretely: seed a session with an event
//! prefix via [`ServeSession::ingest`], then walk a range with
//! [`ServeSession::ingest_scored`] at the oracle's batch boundaries —
//! the produced scores, task metrics, and the final node-memory
//! checksum are **bit-identical** to [`crate::evaluate`] replaying the
//! same events offline over a frozen [`disttgl_graph::TCsr`]. Pinned
//! for both tasks and 1-/2-layer stacks by
//! `tests/serve_equivalence.rs`.

use crate::batch::{edge_feature_rows, occurrence_nodes, ReadoutIndex, ReadoutView};
use crate::engine::{InferenceEngine, PartRef};
use crate::model::TgnModel;
use crate::static_mem::StaticMemory;
use disttgl_data::Dataset;
use disttgl_graph::{DynamicTCsr, Event, RecentNeighborSampler};
use disttgl_mem::MemoryState;
use disttgl_tensor::Matrix;

/// One serving request, timestamped by the client.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QueryRequest {
    /// Score the candidate link `(src, dst)` as of time `t`: the link
    /// predictor's logit on a link-prediction model, the per-class
    /// logits on an edge-classification model.
    LinkScore {
        /// Candidate source node.
        src: u32,
        /// Candidate destination node.
        dst: u32,
        /// Query time (only events strictly before `t` support it).
        t: f32,
    },
    /// Return `node`'s temporal embedding as of time `t`.
    Embed {
        /// Node to embed.
        node: u32,
        /// Query time.
        t: f32,
    },
}

/// Answer to one [`QueryRequest`], in request order.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryResponse {
    /// Decoder output of a [`QueryRequest::LinkScore`]: one logit for
    /// link prediction, `num_classes` logits for classification.
    Scores(Vec<f32>),
    /// The `d_emb`-wide embedding of a [`QueryRequest::Embed`].
    Embedding(Vec<f32>),
}

impl QueryResponse {
    /// The scores of a [`QueryResponse::Scores`] answer.
    ///
    /// # Panics
    /// Panics on an embedding response.
    pub fn scores(&self) -> &[f32] {
        match self {
            QueryResponse::Scores(s) => s,
            QueryResponse::Embedding(_) => panic!("embedding response has no scores"),
        }
    }

    /// The vector of a [`QueryResponse::Embedding`] answer.
    ///
    /// # Panics
    /// Panics on a scores response.
    pub fn embedding(&self) -> &[f32] {
        match self {
            QueryResponse::Embedding(e) => e,
            QueryResponse::Scores(_) => panic!("scores response has no embedding"),
        }
    }
}

/// Accounting for one [`ServeSession::ingest`] call.
#[derive(Clone, Copy, Debug, Default)]
pub struct IngestStats {
    /// Events absorbed.
    pub events: usize,
    /// Rows in the applied write request: `2 · events` under the
    /// most-recent `COMB` (duplicate nodes resolve last-write-wins at
    /// apply time), fewer under mean `COMB`, which pre-collapses.
    pub rows_written: usize,
    /// Unique memory rows gathered for the GRU update.
    pub rows_read: usize,
}

/// Result of [`ServeSession::ingest_scored`].
#[derive(Clone, Debug)]
pub struct ScoredIngest {
    /// Score of each ingested event `(src, dst, t)` in slab order —
    /// computed against pre-slab memory, exactly as offline evaluation
    /// scores a batch before its write-back.
    pub event_scores: Vec<QueryResponse>,
    /// Answers to the `extra` candidate requests, same memory point.
    pub extra: Vec<QueryResponse>,
    /// The slab's ingest accounting.
    pub stats: IngestStats,
}

/// An online inference session over an evolving temporal graph (see
/// the module docs). Borrows the trained model and the dataset's
/// edge-feature table; owns the live memory and adjacency.
pub struct ServeSession<'a> {
    model: &'a TgnModel,
    dataset: &'a Dataset,
    static_mem: Option<&'a StaticMemory>,
    adj: DynamicTCsr,
    memory: MemoryState,
    engine: InferenceEngine,
    sampler: RecentNeighborSampler,
    dedup: bool,
    ingested: usize,
}

impl<'a> ServeSession<'a> {
    /// Opens a session with an empty graph and zeroed node memory.
    /// Feed history through [`ServeSession::ingest`] to warm-start —
    /// at the same batch boundaries as an offline replay if
    /// bit-identical positioning matters.
    pub fn new(
        model: &'a TgnModel,
        dataset: &'a Dataset,
        static_mem: Option<&'a StaticMemory>,
    ) -> Self {
        let cfg = &model.cfg;
        Self {
            model,
            dataset,
            static_mem,
            adj: DynamicTCsr::new(dataset.graph.num_nodes()),
            memory: MemoryState::new(dataset.graph.num_nodes(), cfg.d_mem, cfg.mail_dim()),
            engine: InferenceEngine::new(),
            sampler: RecentNeighborSampler::with_fanouts(cfg.fanouts()),
            dedup: cfg.dedup_readout,
            ingested: 0,
        }
    }

    /// Events absorbed so far.
    pub fn events_ingested(&self) -> usize {
        self.ingested
    }

    /// The live adjacency (read access).
    pub fn adjacency(&self) -> &DynamicTCsr {
        &self.adj
    }

    /// The live node memory (read access).
    pub fn memory(&self) -> &MemoryState {
        &self.memory
    }

    /// Content digest of the live node memory — what the equivalence
    /// suite compares against the offline replay's state.
    pub fn memory_checksum(&self) -> u64 {
        self.memory.checksum()
    }

    /// Absorbs a chronological slab of observed events: extends the
    /// live adjacency, then applies the batched mailbox/GRU memory
    /// update (one folded GRU pass over the slab's unique root rows,
    /// one write — the identical arithmetic of [`crate::replay_memory`]
    /// at these batch boundaries).
    ///
    /// # Panics
    /// Panics if an event precedes the stream head, names a node
    /// outside the session's range, or carries an `eid` outside the
    /// edge-feature table.
    pub fn ingest(&mut self, events: &[Event]) -> IngestStats {
        self.extend_adjacency(events);
        self.apply_memory(events)
    }

    /// Phase A of [`ServeSession::ingest`]: the adjacency append.
    fn extend_adjacency(&mut self, events: &[Event]) {
        let feat_rows = self.dataset.edge_features.rows();
        if self.dataset.edge_features.cols() > 0 {
            for e in events {
                assert!(
                    (e.eid as usize) < feat_rows,
                    "ingest: eid {} outside the edge-feature table ({feat_rows} rows)",
                    e.eid
                );
            }
        }
        self.adj.append_events(events);
    }

    /// Phase B of [`ServeSession::ingest`]: the batched memory update.
    fn apply_memory(&mut self, events: &[Event]) -> IngestStats {
        if events.is_empty() {
            return IngestStats::default();
        }
        let (w, rows_read) =
            self.engine
                .memory_write_events(self.model, self.dataset, events, &mut self.memory);
        let stats = IngestStats {
            events: events.len(),
            rows_written: w.nodes.len(),
            rows_read,
        };
        self.memory.write(&w);
        self.ingested += events.len();
        stats
    }

    /// Answers a micro-batch of concurrent requests against the
    /// current graph + memory, read-only: one multi-hop frontier
    /// expansion over all requested roots, one unique-node memory
    /// gather across the union of every hop frontier, one pass through
    /// the attention stack, one decoder call over all link candidates.
    /// Responses are in request order, and each is bit-identical to
    /// what the request would get in a micro-batch of its own (per-row
    /// purity — see `core::engine`).
    pub fn query(&mut self, requests: &[QueryRequest]) -> Vec<QueryResponse> {
        if requests.is_empty() {
            return Vec::new();
        }
        // Flatten requests into one root list (a link candidate
        // contributes its two endpoints back-to-back).
        let mut roots = Vec::new();
        let mut times = Vec::new();
        for r in requests {
            match *r {
                QueryRequest::LinkScore { src, dst, t } => {
                    roots.push(src);
                    roots.push(dst);
                    times.push(t);
                    times.push(t);
                }
                QueryRequest::Embed { node, t } => {
                    roots.push(node);
                    times.push(t);
                }
            }
        }
        let n = self.dataset.graph.num_nodes() as u32;
        for &r in &roots {
            assert!(r < n, "query: node {r} outside the session's range");
        }

        // One frontier expansion + one folded gather for the whole
        // micro-batch (the union contract: every hop's rows fold into
        // one unique-node read).
        let hops = self.sampler.sample_hops(&self.adj, &roots, &times);
        let occ = occurrence_nodes(&roots, &hops);
        let uniq = self.dedup.then(|| ReadoutIndex::build(&occ));
        let nodes: &[u32] = match &uniq {
            Some(u) => &u.unique_nodes,
            None => &occ,
        };
        let readout = ReadoutView::whole(MemoryState::read(&self.memory, nodes));
        let nbr_feats: Vec<Matrix> = hops
            .iter()
            .map(|h| edge_feature_rows(self.dataset, &h.eids))
            .collect();
        let part = PartRef {
            roots: &roots,
            times: &times,
            hops: &hops,
            readout: &readout,
            uniq: uniq.as_ref(),
            nbr_feats: &nbr_feats,
        };
        let pe = self.engine.embed_part(self.model, part, self.static_mem);

        // One decoder call over every link candidate.
        let mut src_rows = Vec::new();
        let mut dst_rows = Vec::new();
        let mut row = 0usize;
        for r in requests {
            if let QueryRequest::LinkScore { .. } = r {
                src_rows.push(row);
                dst_rows.push(row + 1);
            }
            row += match r {
                QueryRequest::LinkScore { .. } => 2,
                QueryRequest::Embed { .. } => 1,
            };
        }
        let scores = (!src_rows.is_empty()).then(|| {
            self.engine.score_pairs(
                self.model,
                &pe.emb.gather_rows(&src_rows),
                &pe.emb.gather_rows(&dst_rows),
            )
        });

        let mut out = Vec::with_capacity(requests.len());
        let mut row = 0usize;
        let mut pair = 0usize;
        for r in requests {
            match r {
                QueryRequest::LinkScore { .. } => {
                    let s = scores.as_ref().expect("scored above");
                    out.push(QueryResponse::Scores(s.row(pair).to_vec()));
                    pair += 1;
                    row += 2;
                }
                QueryRequest::Embed { .. } => {
                    out.push(QueryResponse::Embedding(pe.emb.row(row).to_vec()));
                    row += 1;
                }
            }
        }
        out
    }

    /// Score-then-ingest, the streaming form of evaluation's
    /// score-before-write order: extends the adjacency with `events`,
    /// answers one micro-batched query for the slab's own `(src, dst,
    /// t)` candidates plus any `extra` requests — all against
    /// **pre-slab memory** — then applies the slab's memory update.
    /// Driving a range through this call at an offline oracle's batch
    /// boundaries reproduces [`crate::evaluate`] bit for bit (the
    /// module-level contract).
    pub fn ingest_scored(&mut self, events: &[Event], extra: &[QueryRequest]) -> ScoredIngest {
        self.extend_adjacency(events);
        let mut requests: Vec<QueryRequest> = events
            .iter()
            .map(|e| QueryRequest::LinkScore {
                src: e.src,
                dst: e.dst,
                t: e.t,
            })
            .collect();
        requests.extend_from_slice(extra);
        let mut event_scores = self.query(&requests);
        let extra_resp = event_scores.split_off(events.len());
        let stats = self.apply_memory(events);
        ScoredIngest {
            event_scores,
            extra: extra_resp,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use disttgl_data::generators;
    use disttgl_tensor::seeded_rng;

    fn link_setup(n_layers: usize) -> (disttgl_data::Dataset, TgnModel) {
        let d = generators::wikipedia(0.005, 21);
        let mut cfg = ModelConfig::compact(d.edge_features.cols()).with_layers(n_layers);
        cfg.n_neighbors = 5;
        let mut rng = seeded_rng(4);
        let model = TgnModel::new(cfg, &mut rng);
        (d, model)
    }

    #[test]
    fn query_is_read_only() {
        let (d, model) = link_setup(1);
        let mut s = ServeSession::new(&model, &d, None);
        s.ingest(&d.graph.events()[0..200]);
        let before = s.memory_checksum();
        let reqs = vec![
            QueryRequest::LinkScore {
                src: d.graph.events()[10].src,
                dst: d.graph.events()[10].dst,
                t: 1e9,
            },
            QueryRequest::Embed {
                node: d.graph.events()[0].src,
                t: 1e9,
            },
        ];
        let resp = s.query(&reqs);
        assert_eq!(resp.len(), 2);
        assert_eq!(resp[0].scores().len(), 1);
        assert_eq!(resp[1].embedding().len(), model.cfg.d_emb);
        assert_eq!(s.memory_checksum(), before, "query must not mutate memory");
        assert_eq!(
            s.adjacency().num_events(),
            200,
            "query must not mutate adjacency"
        );
    }

    /// Micro-batching must not change any request's answer: a batch of
    /// requests answers exactly as the same requests issued one by one
    /// (per-row purity through the whole stack).
    #[test]
    fn micro_batched_queries_equal_single_queries() {
        let (d, model) = link_setup(2);
        let mut s = ServeSession::new(&model, &d, None);
        s.ingest(&d.graph.events()[0..300]);
        let ev = d.graph.events();
        let reqs: Vec<QueryRequest> = (0..8)
            .map(|i| QueryRequest::LinkScore {
                src: ev[i * 7].src,
                dst: ev[i * 11 + 3].dst,
                t: ev[299].t + 1.0,
            })
            .chain([QueryRequest::Embed {
                node: ev[5].src,
                t: ev[299].t + 1.0,
            }])
            .collect();
        let batched = s.query(&reqs);
        for (i, r) in reqs.iter().enumerate() {
            let single = s.query(std::slice::from_ref(r));
            assert_eq!(single[0], batched[i], "request {i}");
        }
    }

    #[test]
    fn ingest_advances_stream_state() {
        let (d, model) = link_setup(1);
        let mut s = ServeSession::new(&model, &d, None);
        let stats = s.ingest(&d.graph.events()[0..64]);
        assert_eq!(stats.events, 64);
        assert!(stats.rows_written > 0 && stats.rows_written <= 128);
        assert!(stats.rows_read > 0);
        assert_eq!(s.events_ingested(), 64);
        let more = s.ingest(&d.graph.events()[64..96]);
        assert_eq!(more.events, 32);
        assert_eq!(s.events_ingested(), 96);
        assert_eq!(s.adjacency().num_events(), 96);
    }

    #[test]
    fn classification_queries_return_class_logits() {
        let d = generators::gdelt(2e-5, 13);
        let mut cfg = ModelConfig::compact(d.edge_features.cols()).with_classes(56);
        cfg.n_neighbors = 5;
        let mut rng = seeded_rng(6);
        let model = TgnModel::new(cfg, &mut rng);
        let mut s = ServeSession::new(&model, &d, None);
        s.ingest(&d.graph.events()[0..100]);
        let e = &d.graph.events()[50];
        let resp = s.query(&[QueryRequest::LinkScore {
            src: e.src,
            dst: e.dst,
            t: 1e12,
        }]);
        assert_eq!(resp[0].scores().len(), 56);
    }

    #[test]
    fn ingest_scored_scores_before_write() {
        let (d, model) = link_setup(1);
        let mut s = ServeSession::new(&model, &d, None);
        s.ingest(&d.graph.events()[0..100]);
        let pre = s.memory_checksum();
        let slab: Vec<Event> = d.graph.events()[100..140].to_vec();
        let out = s.ingest_scored(&slab, &[]);
        assert_eq!(out.event_scores.len(), 40);
        assert_eq!(out.stats.events, 40);
        assert_ne!(s.memory_checksum(), pre, "ingest applied the write");

        // Re-scoring the same candidates now (post-write) differs —
        // proof the scores were taken at the pre-slab memory point.
        let reqs: Vec<QueryRequest> = slab
            .iter()
            .map(|e| QueryRequest::LinkScore {
                src: e.src,
                dst: e.dst,
                t: e.t,
            })
            .collect();
        let post = s.query(&reqs);
        assert_ne!(
            out.event_scores, post,
            "pre- and post-write scores should differ on a recurrent stream"
        );
    }

    #[test]
    #[should_panic(expected = "precedes the stream head")]
    fn out_of_order_ingest_panics() {
        let (d, model) = link_setup(1);
        let mut s = ServeSession::new(&model, &d, None);
        s.ingest(&d.graph.events()[10..20]);
        s.ingest(&d.graph.events()[0..5]);
    }
}
