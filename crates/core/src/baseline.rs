//! Baseline trainers for the comparison figures.
//!
//! * [`train_tgn`] — the original-TGN-style single-GPU pipeline: the
//!   same math as `train_single`, but with the **unoptimized data
//!   layer** the TGL paper measured against — per-root neighbor
//!   sampling with fresh allocations, one node-memory access per root
//!   instead of one batched gather, and negatives re-sampled from
//!   scratch every epoch. (TGN's published implementation loses its
//!   time in exactly this per-element host-side work, not in the
//!   model math.)
//! * [`train_tgl`] — TGL-style single-machine multi-GPU training:
//!   mini-batch parallelism only, node memory shared behind a lock
//!   with barrier-separated read/write phases (the WAR-hazard
//!   protocol), no memory daemon, and no overlap between mini-batch
//!   generation and compute. This is the "2–3× speedup on 8 GPUs"
//!   baseline of the paper's introduction.
//!
//! Both baselines share the model/evaluation code with DistTGL, so
//! accuracy-vs-iteration matches by construction; what differs is the
//! system behaviour (throughput, scaling) — exactly the paper's claim
//! decomposition.

use crate::batch::{
    BatchPreparer, MemoryAccess, NegativePart, PositivePart, PreparedBatch, ReadoutView,
};
use crate::config::{ModelConfig, TrainConfig};
use crate::eval::evaluate;
use crate::metrics::{ConvergencePoint, RunResult};
use crate::model::TgnModel;
use crate::static_mem::StaticMemory;
use disttgl_cluster::CommunicatorGroup;
use disttgl_data::{negative_range, Dataset, Task};
use disttgl_graph::{batching, NeighborBlock, RecentNeighborSampler, TCsr};
use disttgl_mem::{MemoryReadout, MemoryState};
use disttgl_tensor::{seeded_rng, Matrix};
use parking_lot::Mutex;
use rand::Rng;
use std::ops::Range;
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// Per-root (unbatched) batch preparation: identical output to
/// [`BatchPreparer::prepare`], produced the slow way — one sampler
/// call, one memory read, and fresh feature allocations **per root**.
fn naive_prepare(
    dataset: &Dataset,
    csr: &TCsr,
    cfg: &ModelConfig,
    range: Range<usize>,
    negs: &[u32],
    mem: &mut MemoryState,
) -> PreparedBatch {
    let events = &dataset.graph.events()[range];
    let b = events.len();
    assert_eq!(
        cfg.n_layers, 1,
        "the TGN baseline emulates the original single-layer pipeline"
    );
    let k = cfg.fanouts()[0];
    let sampler = RecentNeighborSampler::new(k);
    let d_e = dataset.edge_features.cols();

    let mut roots: Vec<u32> = events.iter().map(|e| e.src).collect();
    roots.extend(events.iter().map(|e| e.dst));
    let mut times: Vec<f32> = events.iter().map(|e| e.t).collect();
    let times2: Vec<f32> = times.clone();
    times.extend(times2);

    // Per-root loops with per-root allocations (the emulated
    // unoptimized pipeline).
    let mut nbrs = NeighborBlock {
        k,
        nbrs: vec![0; roots.len() * k],
        eids: vec![0; roots.len() * k],
        dts: vec![0.0; roots.len() * k],
        ts: vec![0.0; roots.len() * k],
        counts: vec![0; roots.len()],
    };
    let mut readouts: Vec<MemoryReadout> = Vec::with_capacity(roots.len());
    for (r, (&root, &t)) in roots.iter().zip(&times).enumerate() {
        let block = sampler.sample(csr, &[root], &[t]);
        nbrs.counts[r] = block.counts[0];
        for s in 0..k {
            nbrs.nbrs[r * k + s] = block.nbrs[s];
            nbrs.eids[r * k + s] = block.eids[s];
            nbrs.dts[r * k + s] = block.dts[s];
            nbrs.ts[r * k + s] = block.ts[s];
        }
        // One memory access per root + its slots (vs one global read).
        let mut wanted = vec![root];
        wanted.extend_from_slice(&block.nbrs);
        readouts.push(mem.read(&wanted));
    }
    // Negatives, also per root.
    let mut neg_readouts: Vec<MemoryReadout> = Vec::with_capacity(negs.len());
    let mut neg_nbrs = NeighborBlock {
        k,
        nbrs: vec![0; negs.len() * k],
        eids: vec![0; negs.len() * k],
        dts: vec![0.0; negs.len() * k],
        ts: vec![0.0; negs.len() * k],
        counts: vec![0; negs.len()],
    };
    for (r, &neg) in negs.iter().enumerate() {
        let t = events[r % b].t;
        let block = sampler.sample(csr, &[neg], &[t]);
        neg_nbrs.counts[r] = block.counts[0];
        for s in 0..k {
            neg_nbrs.nbrs[r * k + s] = block.nbrs[s];
            neg_nbrs.eids[r * k + s] = block.eids[s];
            neg_nbrs.dts[r * k + s] = block.dts[s];
            neg_nbrs.ts[r * k + s] = block.ts[s];
        }
        let mut wanted = vec![neg];
        wanted.extend_from_slice(&block.nbrs);
        neg_readouts.push(mem.read(&wanted));
    }

    // Reassemble the batched layout row by row.
    let stitch = |readouts: &[MemoryReadout], roots_n: usize| {
        let mut out = MemoryReadout {
            mem: Matrix::zeros(roots_n + roots_n * k, cfg.d_mem),
            mem_ts: vec![0.0; roots_n + roots_n * k],
            mail: Matrix::zeros(roots_n + roots_n * k, cfg.mail_dim()),
            mail_ts: vec![0.0; roots_n + roots_n * k],
        };
        for (r, ro) in readouts.iter().enumerate() {
            out.mem.row_mut(r).copy_from_slice(ro.mem.row(0));
            out.mail.row_mut(r).copy_from_slice(ro.mail.row(0));
            out.mem_ts[r] = ro.mem_ts[0];
            out.mail_ts[r] = ro.mail_ts[0];
            for s in 0..k {
                let dst = roots_n + r * k + s;
                out.mem.row_mut(dst).copy_from_slice(ro.mem.row(1 + s));
                out.mail.row_mut(dst).copy_from_slice(ro.mail.row(1 + s));
                out.mem_ts[dst] = ro.mem_ts[1 + s];
                out.mail_ts[dst] = ro.mail_ts[1 + s];
            }
        }
        out
    };

    let edge_rows = |eids: &[u32]| {
        if d_e == 0 {
            Matrix::zeros(eids.len(), 0)
        } else {
            let mut out = Matrix::zeros(eids.len(), d_e);
            for (r, &e) in eids.iter().enumerate() {
                out.row_mut(r)
                    .copy_from_slice(dataset.edge_features.row(e as usize));
            }
            out
        }
    };

    let eids: Vec<u32> = events.iter().map(|e| e.eid).collect();
    let labels = dataset.labels.as_ref().map(|l| {
        let idx: Vec<usize> = eids.iter().map(|&e| e as usize).collect();
        l.gather_rows(&idx)
    });
    let pos = PositivePart {
        event_feats: edge_rows(&eids),
        nbr_feats: vec![edge_rows(&nbrs.eids)],
        srcs: events.iter().map(|e| e.src).collect(),
        dsts: events.iter().map(|e| e.dst).collect(),
        times: events.iter().map(|e| e.t).collect(),
        eids,
        // The unoptimized baseline keeps the per-occurrence layout
        // (no dedup, no shared block — that's the point).
        readout: ReadoutView::whole(stitch(&readouts, roots.len())),
        uniq: None,
        roots,
        root_times: times,
        hops: vec![nbrs],
        labels,
    };
    let neg_part = if negs.is_empty() {
        Vec::new()
    } else {
        let neg_times: Vec<f32> = (0..negs.len()).map(|r| events[r % b].t).collect();
        vec![NegativePart {
            nbr_feats: vec![edge_rows(&neg_nbrs.eids)],
            negs: negs.to_vec(),
            times: neg_times,
            readout: ReadoutView::whole(stitch(&neg_readouts, negs.len())),
            uniq: None,
            hops: vec![neg_nbrs],
        }]
    };
    PreparedBatch {
        pos,
        negs: neg_part,
    }
}

/// Original-TGN-style single-GPU training (see module docs).
pub fn train_tgn(dataset: &Dataset, model_cfg: &ModelConfig, cfg: &TrainConfig) -> RunResult {
    assert_eq!(cfg.parallel.world(), 1, "train_tgn is single-GPU");
    let csr = TCsr::build(&dataset.graph);
    let (train_end, val_end) = dataset.graph.chronological_split(0.70, 0.15);
    let mut rng = seeded_rng(cfg.seed);
    let mut model = TgnModel::new(model_cfg.clone(), &mut rng);
    let mut adam = model.optimizer(cfg.scaled_lr());
    let static_mem: Option<StaticMemory> = None; // vanilla TGN has none
    let neg_rng_range = negative_range(&dataset.graph);

    let mut memory = MemoryState::new(
        dataset.graph.num_nodes(),
        model_cfg.d_mem,
        model_cfg.mail_dim(),
    );
    let batches = batching::chronological_batches(0..train_end, cfg.local_batch);
    let mut result = RunResult::default();
    let start = Instant::now();
    let mut iteration = 0usize;
    let mut events_trained = 0u64;

    for epoch in 0..cfg.epochs {
        memory.reset();
        let mut neg_rng = seeded_rng(cfg.seed ^ (0xbeef + epoch as u64));
        for range in &batches {
            let t_prep = Instant::now();
            // Fresh negatives every epoch (no pre-sampling).
            let negs: Vec<u32> = (0..range.len() * cfg.train_negs)
                .map(|_| neg_rng.gen_range(neg_rng_range.clone()))
                .collect();
            let negs_opt = if dataset.task == Task::LinkPrediction {
                negs
            } else {
                Vec::new()
            };
            let prepared = naive_prepare(
                dataset,
                &csr,
                model_cfg,
                range.clone(),
                &negs_opt,
                &mut memory,
            );
            result.timing.prep_secs += t_prep.elapsed().as_secs_f64();

            let t_compute = Instant::now();
            model.params.zero_grads();
            let out = model.train_step(&prepared.pos, prepared.negs.first(), static_mem.as_ref());
            model.params.clip_grad_norm(5.0);
            adam.step(&mut model.params);
            result.timing.compute_secs += t_compute.elapsed().as_secs_f64();
            memory.write(&out.write);
            result.loss_history.push(out.loss);
            iteration += 1;
            events_trained += range.len() as u64;
        }
        if cfg.eval_every_epoch && val_end > train_end {
            let mut val_mem = memory.clone();
            let res = evaluate(
                &model,
                model_cfg,
                dataset,
                &csr,
                &mut val_mem,
                None,
                train_end..val_end,
                cfg.local_batch,
                cfg.eval_negs,
                cfg.seed ^ epoch as u64,
            );
            result.convergence.push(ConvergencePoint {
                iteration,
                wall_secs: start.elapsed().as_secs_f64(),
                metric: res.metric,
            });
        }
    }
    result.wall_secs = start.elapsed().as_secs_f64();
    result.throughput_events_per_sec = events_trained as f64 / result.wall_secs.max(1e-9);
    let test = evaluate(
        &model,
        model_cfg,
        dataset,
        &csr,
        &mut memory.clone(),
        None,
        val_end..dataset.graph.num_events(),
        cfg.local_batch,
        cfg.eval_negs,
        cfg.seed ^ 0x7e57,
    );
    result.test_metric = test.metric;
    result.finalize_convergence();
    result
}

/// TGL-style single-machine multi-GPU training: `n` trainers run
/// mini-batch parallelism over a lock-guarded shared node memory with
/// barrier-separated read/write phases. No daemon, no overlap.
pub fn train_tgl(
    dataset: &Dataset,
    model_cfg: &ModelConfig,
    cfg: &TrainConfig,
    n_gpus: usize,
) -> RunResult {
    assert!(n_gpus >= 1);
    let csr = Arc::new(TCsr::build(&dataset.graph));
    let (train_end, _val_end) = dataset.graph.chronological_split(0.70, 0.15);
    let dataset = Arc::new(dataset.clone());
    let memory = Arc::new(Mutex::new(MemoryState::new(
        dataset.graph.num_nodes(),
        model_cfg.d_mem,
        model_cfg.mail_dim(),
    )));
    let store = Arc::new(disttgl_data::NegativeStore::generate(
        &dataset.graph,
        train_end,
        cfg.neg_groups,
        cfg.train_negs,
        cfg.seed ^ 0x4e45,
    ));
    // Global batch = n local batches (the TGL multi-GPU scheme).
    let global_batch = cfg.local_batch * n_gpus;
    let batches = batching::chronological_batches(0..train_end, global_batch);
    let epochs = (cfg.epochs / n_gpus).max(1); // iterations scale 1/x
    let comm_group = CommunicatorGroup::single_machine(n_gpus);
    let barrier = Arc::new(Barrier::new(n_gpus));

    let start = Instant::now();
    let mut handles = Vec::new();
    for rank in 0..n_gpus {
        let csr = Arc::clone(&csr);
        let dataset = Arc::clone(&dataset);
        let memory = Arc::clone(&memory);
        let store = Arc::clone(&store);
        let barrier = Arc::clone(&barrier);
        let comm = comm_group.communicator(rank);
        let batches = batches.clone();
        let model_cfg = model_cfg.clone();
        let cfg = cfg.clone();
        handles.push(std::thread::spawn(move || {
            let mut rng = seeded_rng(cfg.seed);
            let mut model = TgnModel::new(model_cfg.clone(), &mut rng);
            let mut adam = model.optimizer(cfg.scaled_lr());
            let prep = BatchPreparer::new(&dataset, csr.as_ref(), &model_cfg);
            let mut losses = Vec::new();
            let mut events = 0u64;

            for epoch in 0..epochs {
                if rank == 0 {
                    memory.lock().reset();
                }
                barrier.wait();
                for range in &batches {
                    let local = batching::split_local(range.clone(), n_gpus)[rank].clone();
                    // Read phase: every trainer fetches under the lock
                    // (serialized — the TGL contention point).
                    let group = store.group_for_epoch(epoch);
                    let negs = store.slice(group, local.clone());
                    let prepared = {
                        let mut guard = memory.lock();
                        prep.prepare(local.clone(), &[negs], cfg.train_negs, &mut *guard)
                    };
                    // WAR hazard: all reads complete before any write.
                    barrier.wait();
                    model.params.zero_grads();
                    let out = model.train_step(&prepared.pos, prepared.negs.first(), None);
                    losses.push(out.loss);
                    events += local.len() as u64;
                    {
                        let mut guard = memory.lock();
                        MemoryAccess::write(&mut *guard, out.write);
                    }
                    let mut grads = model.params.flatten_grads();
                    comm.allreduce_mean(&mut grads);
                    model.params.unflatten_grads(&grads);
                    model.params.clip_grad_norm(5.0);
                    adam.step(&mut model.params);
                    barrier.wait();
                }
            }
            (losses, events)
        }));
    }
    let mut total_events = 0u64;
    let mut rank0_losses = Vec::new();
    for (rank, h) in handles.into_iter().enumerate() {
        let (losses, events) = h.join().expect("tgl trainer panicked");
        total_events += events;
        if rank == 0 {
            rank0_losses = losses;
        }
    }
    let mut result = RunResult::default();
    result.wall_secs = start.elapsed().as_secs_f64();
    result.loss_history = rank0_losses;
    result.throughput_events_per_sec = total_events as f64 / result.wall_secs.max(1e-9);
    result.absorb_comm(&comm_group.stats());
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ParallelConfig;
    use disttgl_data::generators;

    fn tiny(d_edge: usize) -> ModelConfig {
        let mut mc = ModelConfig::compact(d_edge);
        mc.d_mem = 16;
        mc.d_time = 8;
        mc.d_emb = 16;
        mc.n_neighbors = 5;
        mc.static_memory = false;
        mc
    }

    fn quick(epochs: usize) -> TrainConfig {
        let mut cfg = TrainConfig::new(ParallelConfig::single());
        cfg.local_batch = 64;
        cfg.epochs = epochs;
        cfg.eval_negs = 9;
        cfg.seed = 5;
        cfg
    }

    #[test]
    fn naive_prepare_matches_batched_prepare() {
        // The TGN baseline's slow path must produce *identical* inputs
        // to the optimized path — the baselines differ in system, not
        // semantics.
        let d = generators::wikipedia(0.004, 61);
        let csr = TCsr::build(&d.graph);
        let mc = tiny(d.edge_features.cols());
        let mut mem = MemoryState::new(d.graph.num_nodes(), mc.d_mem, mc.mail_dim());
        let negs: Vec<u32> = (0..32).map(|i| d.graph.events()[i].dst).collect();

        // Compare against the per-occurrence layout (the naive path
        // emulates the pre-dedup pipeline).
        let mc_occ = mc.clone().without_dedup_readout();
        let fast =
            BatchPreparer::new(&d, &csr, &mc_occ).prepare(64..96, &[&negs], 1, &mut mem.clone());
        let slow = naive_prepare(&d, &csr, &mc, 64..96, &negs, &mut mem);
        let (fast_pos, slow_pos) = (fast.pos.readout.to_readout(), slow.pos.readout.to_readout());
        assert_eq!(fast_pos.mem, slow_pos.mem);
        assert_eq!(fast_pos.mail_ts, slow_pos.mail_ts);
        assert_eq!(fast.pos.nbrs().nbrs, slow.pos.nbrs().nbrs);
        assert_eq!(fast.pos.nbrs().counts, slow.pos.nbrs().counts);
        assert_eq!(fast.pos.nbr_feats, slow.pos.nbr_feats);
        assert_eq!(
            fast.negs[0].readout.to_readout().mem,
            slow.negs[0].readout.to_readout().mem
        );
        assert_eq!(fast.negs[0].nbrs().nbrs, slow.negs[0].nbrs().nbrs);
    }

    #[test]
    fn tgn_baseline_trains() {
        let d = generators::wikipedia(0.003, 62);
        let res = train_tgn(&d, &tiny(d.edge_features.cols()), &quick(2));
        assert!(res.test_metric > 0.0);
        assert!(res.throughput_events_per_sec > 0.0);
        assert_eq!(res.convergence.len(), 2);
    }

    #[test]
    fn tgl_baseline_scales_events_across_gpus() {
        let d = generators::wikipedia(0.003, 63);
        let res = train_tgl(&d, &tiny(d.edge_features.cols()), &quick(4), 2);
        assert!(res.throughput_events_per_sec > 0.0);
        assert!(!res.loss_history.is_empty());
        assert!(res.comm_bytes > 0);
    }
}
