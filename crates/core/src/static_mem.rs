//! Static node memory (paper §3.1).
//!
//! DistTGL keeps the GRU dynamic node memory and adds a per-node
//! **static** vector capturing time-irrelevant information. Following
//! the paper we realize it as "learnable node embeddings pre-trained
//! with the same task" — a structure-only link predictor trained on
//! stochastically selected mini-batches (order does not matter since
//! no memory is involved), then frozen for the main M-TGNN training.
//!
//! Because the static memory is trained on *static* information only,
//! it contains nothing from the test period (the paper's information-
//! leak argument for why this is safe), and because it is batch-size
//! independent it recovers the high-frequency information that the
//! `COMB` batching filters out of the dynamic memory.

use disttgl_data::{negative_range, Dataset};
use disttgl_tensor::{seeded_rng, Matrix};
use rand::Rng;

/// Frozen per-node static embeddings.
#[derive(Clone, Debug)]
pub struct StaticMemory {
    emb: Matrix,
}

impl StaticMemory {
    /// All-zero static memory (neutral element for the combine).
    pub fn zeros(num_nodes: usize, dim: usize) -> Self {
        Self {
            emb: Matrix::zeros(num_nodes, dim),
        }
    }

    /// Random static memory (tests / ablation control).
    pub fn random(num_nodes: usize, dim: usize, seed: u64) -> Self {
        let mut rng = seeded_rng(seed);
        Self {
            emb: Matrix::normal(num_nodes, dim, 0.1, &mut rng),
        }
    }

    /// Wraps a pre-built table (checkpoint restore): resuming reuses
    /// the saved embeddings instead of re-running the pretrain pass.
    pub fn from_table(table: Matrix) -> Self {
        Self { emb: table }
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.emb.cols()
    }

    /// Gathers rows for a node list.
    pub fn rows(&self, nodes: &[u32]) -> Matrix {
        let idx: Vec<usize> = nodes.iter().map(|&n| n as usize).collect();
        self.emb.gather_rows(&idx)
    }

    /// Full embedding table.
    pub fn table(&self) -> &Matrix {
        &self.emb
    }

    /// Pre-trains static embeddings on the dataset's *training* events
    /// (`train_end` bounds the usable stream) with the same
    /// link-prediction objective but no temporal state:
    /// `score(u, v) = e_u · e_v`, BCE against uniformly sampled
    /// negatives, stochastic batches (order-free since there is no
    /// memory). The paper pre-trains 10 epochs in under 30 seconds;
    /// this is the same recipe at reproduction scale.
    pub fn pretrain(
        dataset: &Dataset,
        dim: usize,
        train_end: usize,
        epochs: usize,
        seed: u64,
    ) -> Self {
        let n = dataset.graph.num_nodes();
        let mut rng = seeded_rng(seed);
        let mut emb = Matrix::normal(n, dim, 0.1, &mut rng);

        let events = &dataset.graph.events()[..train_end];
        if events.is_empty() {
            return Self { emb };
        }
        let neg_range = negative_range(&dataset.graph);
        let bs = 512.min(events.len()).max(1);
        let batches_per_epoch = events.len().div_ceil(bs);
        let lr = 0.5 / bs as f32;

        for _epoch in 0..epochs {
            for _ in 0..batches_per_epoch {
                // Accumulate (σ(e_u·e_v) − y) gradients for the batch.
                let mut updates: Vec<(usize, Vec<f32>)> = Vec::with_capacity(4 * bs);
                for _ in 0..bs {
                    let ev = &events[rng.gen_range(0..events.len())];
                    let (u, v) = (ev.src as usize, ev.dst as usize);
                    let w = rng.gen_range(neg_range.clone()) as usize;
                    let eu = emb.row(u).to_vec();
                    let evv = emb.row(v).to_vec();
                    let ew = emb.row(w).to_vec();
                    let s_pos: f32 = eu.iter().zip(&evv).map(|(a, b)| a * b).sum();
                    let s_neg: f32 = eu.iter().zip(&ew).map(|(a, b)| a * b).sum();
                    let g_pos = disttgl_tensor::sigmoid_scalar(s_pos) - 1.0;
                    let g_neg = disttgl_tensor::sigmoid_scalar(s_neg);
                    updates.push((u, evv.iter().map(|x| g_pos * x).collect()));
                    updates.push((v, eu.iter().map(|x| g_pos * x).collect()));
                    updates.push((u, ew.iter().map(|x| g_neg * x).collect()));
                    updates.push((w, eu.iter().map(|x| g_neg * x).collect()));
                }
                for (node, grad) in updates {
                    for (e, g) in emb.row_mut(node).iter_mut().zip(grad) {
                        *e -= lr * g;
                    }
                }
            }
        }
        Self { emb }
    }

    /// Pre-training quality probe: mean score margin (positive −
    /// negative logit) of a fresh decoder trained jointly — used by
    /// tests and the Fig 5/6 harness to confirm the embeddings carry
    /// signal.
    pub fn holdout_margin(
        &self,
        dataset: &Dataset,
        range: std::ops::Range<usize>,
        seed: u64,
    ) -> f32 {
        let events = &dataset.graph.events()[range];
        if events.is_empty() {
            return 0.0;
        }
        let mut rng = seeded_rng(seed);
        let neg_range = negative_range(&dataset.graph);
        let mut pos_sim = 0.0f32;
        let mut neg_sim = 0.0f32;
        for e in events {
            let u = self.emb.row(e.src as usize);
            let v = self.emb.row(e.dst as usize);
            let w = rng.gen_range(neg_range.clone()) as usize;
            let wv = self.emb.row(w);
            pos_sim += u.iter().zip(v).map(|(a, b)| a * b).sum::<f32>();
            neg_sim += u.iter().zip(wv).map(|(a, b)| a * b).sum::<f32>();
        }
        (pos_sim - neg_sim) / events.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disttgl_data::generators;

    #[test]
    fn zeros_are_neutral() {
        let sm = StaticMemory::zeros(10, 4);
        let rows = sm.rows(&[0, 5, 9]);
        assert_eq!(rows.shape(), (3, 4));
        assert!(rows.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn pretraining_learns_structure() {
        let d = generators::wikipedia(0.02, 21);
        let (train_end, _) = d.graph.chronological_split(0.7, 0.15);
        let sm = StaticMemory::pretrain(&d, 16, train_end, 20, 1);
        // Embedding similarity of true pairs must beat random pairs on
        // held-out (later) events — the static structure generalizes
        // because the generator's preference sets are stable in time.
        let margin = sm.holdout_margin(&d, train_end..d.graph.num_events(), 2);
        assert!(
            margin > 0.05,
            "static pre-training margin too small: {margin}"
        );
    }

    #[test]
    fn pretrain_is_deterministic() {
        let d = generators::mooc(0.002, 3);
        let (train_end, _) = d.graph.chronological_split(0.7, 0.15);
        let a = StaticMemory::pretrain(&d, 8, train_end, 2, 7);
        let b = StaticMemory::pretrain(&d, 8, train_end, 2, 7);
        assert_eq!(a.table(), b.table());
    }

    #[test]
    fn pretrain_handles_empty_training_range() {
        let d = generators::mooc(0.002, 3);
        let sm = StaticMemory::pretrain(&d, 8, 0, 3, 1);
        assert_eq!(sm.table().rows(), d.graph.num_nodes());
    }
}
