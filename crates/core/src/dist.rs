//! The DistTGL distributed trainer (paper Figure 4).
//!
//! `train_distributed` runs any `i × j × k` configuration on the
//! simulated cluster: it spawns `k` memory daemons (one node-memory
//! replica each), `i·j·k` trainer threads (the "GPUs"), and a global
//! NCCL-style communicator for weight synchronization. All replicas
//! start from the same seeded initialization and stay bit-identical
//! through the deterministic all-reduce, mirroring NCCL's behaviour.
//!
//! Every trainer executes the same step loop in lock-step:
//!
//! 1. consult its [`GroupSchedule`] — acquire a batch (serialized
//!    memory read → pass-0 training → serialized write), continue a
//!    previously acquired batch with a fresh negative set, or idle;
//! 2. all-reduce gradients across **all** trainers;
//! 3. Adam step.
//!
//! Rank 0 additionally evaluates the validation split at each sweep
//! boundary from the epoch snapshot of memory replica 0 — "using the
//! node memory in the first memory process" (§4.0.1).
//!
//! # Exact, recoverable, and bounded-stale: the relaxation taxonomy
//!
//! Every mode of this trainer sits in one of three rigor classes:
//!
//! * **Exact** (the default): the serialized memory order is observed
//!   bit for bit. Speculation (`speculative_gather`) stays in this
//!   class — its Acquire-slot delta repair reproduces the serialized
//!   read exactly, per the version contract — as do pipelining,
//!   checkpoint/resume, and fault recovery (pure replay).
//! * **Recoverable**: a fault (lane crash, daemon shutdown, deadline
//!   expiry) unwinds the run with typed `AbortReport`s; a supervisor
//!   resumes from a checkpoint onto the *same* exact trajectory. The
//!   relaxation is in availability, never in arithmetic.
//! * **Bounded-stale** (`TrainConfig::staleness_bound(k)`, opt-in):
//!   the first *intentional* arithmetic relaxation. A speculative row
//!   within `k` pending writes of the serialized read may keep its
//!   stale value — the Acquire-slot repair is skipped for it — so the
//!   result is no longer bit-identical to the exact oracle at `k > 0`.
//!   The guarantees that remain are structural, not empirical: every
//!   admitted row is within `k` writes of the serialized value (the
//!   proptested per-row bound), rows tagged before an epoch reset
//!   always repair, and `k = 0` degenerates to the exact class bit
//!   for bit (`tests/staleness_equivalence.rs`). *Which* rows are
//!   admitted at `k > 0` depends on daemon service timing, so runs
//!   are not replay-deterministic — accuracy is reported as measured
//!   MRR/F1 deltas across seeds (`BENCH_staleness.json`), never
//!   assumed.

use crate::batch::{BatchPreparer, MemoryAccess, PreparedBatch};
use crate::checkpoint::{fingerprint, TrainCheckpoint};
use crate::config::{ModelConfig, TrainConfig};
use crate::eval::evaluate;
use crate::metrics::{AbortCause, AbortReport, ConvergencePoint, RunResult, TimingBreakdown};
use crate::model::TgnModel;
use crate::pipeline::{BatchPrefetcher, PrefetchRequest, PrefetchedBatch};
use crate::recover::CheckpointStore;
use crate::sched::{GroupSchedule, StepPlan};
use crate::static_mem::StaticMemory;
use disttgl_cluster::{ClusterSpec, CommunicatorGroup, NetworkModel};
use disttgl_data::{Dataset, NegativeStore, Task};
use disttgl_graph::TCsr;
use disttgl_mem::{
    DaemonError, DaemonOptions, MemoryDaemon, MemoryReadout, MemoryWrite, VersionedReadout,
};
use disttgl_tensor::{seeded_rng, Matrix};
use std::sync::Arc;
use std::time::Instant;

/// Wraps the daemon client to meter read-wait time (the daemon overlap
/// measurement in the timing breakdown) and to convert wait failures —
/// daemon shutdown, deadline expiry — into a recorded fault instead of
/// a panic. After a failed read the readout is zero-shaped so phase-2
/// batch assembly stays well-formed; the trainer checks the fault slot
/// before training on it and unwinds.
struct TimedAccess<'a> {
    client: &'a mut disttgl_mem::MemoryClient,
    wait_secs: &'a mut f64,
    fault: &'a mut Option<DaemonError>,
    d_mem: usize,
    d_mail: usize,
}

impl MemoryAccess for TimedAccess<'_> {
    fn read_into(&mut self, nodes: &[u32], out: &mut MemoryReadout) {
        let t0 = Instant::now();
        if let Err(e) = self.client.try_read_into(nodes, out) {
            *out = MemoryReadout {
                mem: Matrix::zeros(nodes.len(), self.d_mem),
                mem_ts: vec![0.0; nodes.len()],
                mail: Matrix::zeros(nodes.len(), self.d_mail),
                mail_ts: vec![0.0; nodes.len()],
            };
            *self.fault = Some(e);
        }
        *self.wait_secs += t0.elapsed().as_secs_f64();
    }
    fn write(&mut self, w: MemoryWrite) {
        if let Err(e) = self.client.try_write(w) {
            *self.fault = Some(e);
        }
    }
}

/// MSPipe-style similarity blend for rows admitted stale under the
/// staleness bound: pull each admitted memory vector halfway toward the
/// node's own freshest mailbox snapshot — the first `d_mem` chunk of
/// its mail row, the ŝ captured at the node's last event (see
/// `TgnModel::build_write`'s mail layout). Trainer-side and
/// allocation-free; mail content and timestamps are untouched.
fn blend_admitted_rows(readout: &mut MemoryReadout, rows: &[u32], d_mem: usize) {
    for &r in rows {
        let r = r as usize;
        let snapshot = &readout.mail.row(r)[..d_mem];
        for (m, &s) in readout.mem.row_mut(r).iter_mut().zip(snapshot) {
            *m = 0.5 * (*m + s);
        }
    }
}

struct TrainerReturn {
    timing: TimingBreakdown,
    loss_history: Vec<f32>,
    convergence: Vec<ConvergencePoint>,
    grad_sq_dev_sum: f64,
    grad_probes: u64,
    /// Rank 0's time spent evaluating (excluded from throughput).
    eval_secs: f64,
    /// The trainer unwound early (injected crash, daemon fault, or a
    /// peer's abort observed through the communicator).
    aborted: bool,
    /// Why this rank unwound, when it did. [`AbortCause::PeerAbort`]
    /// marks a bystander; any other value is a root cause. Collected
    /// into `RunResult::abort_reports` so supervisors can classify
    /// incidents without string-matching.
    cause: Option<AbortCause>,
}

/// How often trainers probe gradient variance (Table 1's variance row).
const VARIANCE_PROBE_EVERY: usize = 16;

/// Trains `dataset` with the full DistTGL system. `spec.world()` must
/// equal `cfg.parallel.world()`.
pub fn train_distributed(
    dataset: &Dataset,
    model_cfg: &ModelConfig,
    cfg: &TrainConfig,
    spec: ClusterSpec,
) -> RunResult {
    let parallel = cfg.parallel;
    assert_eq!(
        spec.world(),
        parallel.world(),
        "cluster world {} != parallel world {}",
        spec.world(),
        parallel.world()
    );
    let (i, j, k) = (parallel.i, parallel.j, parallel.k);
    let world = parallel.world();
    cfg.validate()
        .unwrap_or_else(|e| panic!("invalid TrainConfig: {e}"));

    let csr = Arc::new(TCsr::build(&dataset.graph));
    let (train_end, val_end) = dataset.graph.chronological_split(0.70, 0.15);
    assert!(train_end > 0, "empty training split");

    // Checkpoint/resume is defined at sweep boundaries, where no
    // epoch-parallel sub-group holds an in-flight batch; that requires
    // j == 1 (fold epochs into k instead, or use the sequential
    // trainer, which checkpoints any shape).
    if cfg.checkpoint_every.is_some() || cfg.resume_from.is_some() {
        assert!(
            j == 1,
            "distributed checkpoint/resume requires j == 1: epoch-parallel \
             sub-groups hold un-capturable in-flight batches at every boundary"
        );
    }
    let resume: Option<Arc<TrainCheckpoint>> = cfg.resume_from.as_ref().map(|path| {
        let ckpt = TrainCheckpoint::load(std::path::Path::new(path))
            .unwrap_or_else(|e| panic!("resume from {path}: {e}"));
        ckpt.check_fingerprint(model_cfg, cfg)
            .unwrap_or_else(|e| panic!("resume from {path}: {e}"));
        assert_eq!(
            ckpt.memories.len(),
            k,
            "checkpoint carries {} memory replicas for a k = {} run",
            ckpt.memories.len(),
            k
        );
        Arc::new(ckpt)
    });

    // Static memory pre-training happens once, before the timed run
    // (the paper pre-trains separately; <30 s on its datasets). A
    // resumed run restores the table instead.
    let static_mem = Arc::new(if model_cfg.static_memory {
        Some(match resume.as_ref().and_then(|c| c.static_table.clone()) {
            Some(t) => StaticMemory::from_table(t),
            None => {
                StaticMemory::pretrain(dataset, model_cfg.d_mem, train_end, 10, cfg.seed ^ 0x5747)
            }
        })
    } else {
        None
    });

    let store = Arc::new(match dataset.task {
        Task::LinkPrediction => Some(NegativeStore::generate(
            &dataset.graph,
            train_end,
            cfg.neg_groups,
            cfg.train_negs,
            cfg.seed ^ 0x4e45,
        )),
        Task::EdgeClassification => None,
    });

    let sweeps = cfg.sweeps();
    let global_batch = cfg.local_batch * i;
    // One schedule per group (clones are cheap; built per thread too).
    let schedules: Vec<GroupSchedule> = (0..k)
        .map(|g| GroupSchedule::new(0..train_end, global_batch, &parallel, g, sweeps))
        .collect();

    // Memory daemons: one per group, with wrap-aligned epoch
    // schedules. A resumed run restores each replica's captured state
    // and fast-forwards its turn counter to the checkpoint boundary; a
    // fault plan may schedule a mid-epoch daemon death.
    let daemons: Arc<Vec<MemoryDaemon>> = Arc::new(
        schedules
            .iter()
            .enumerate()
            .map(|(g, s)| {
                let (state, start_turn) = match resume.as_ref() {
                    // Checkpoints decode to f32 (see `core::checkpoint`);
                    // re-quantizing bf16-grid contents is lossless, so a
                    // resumed quantized run continues bit-identically.
                    Some(c) => {
                        let mut state = c.memories[g].clone();
                        if model_cfg.quantized_memory {
                            state = state.into_quantized();
                        }
                        (state, c.start_turns[g] as usize)
                    }
                    None => (model_cfg.new_memory(dataset.graph.num_nodes()), 0),
                };
                MemoryDaemon::spawn_with(
                    state,
                    i,
                    j,
                    s.daemon_epoch_lengths(),
                    DaemonOptions {
                        start_turn,
                        fail_after_turns: cfg.faults.as_ref().and_then(|f| f.daemon_fail_after(g)),
                    },
                )
            })
            .collect(),
    );

    let comm_group = CommunicatorGroup::new(spec, NetworkModel::t4_testbed());
    let dataset_arc: Arc<Dataset> = Arc::new(dataset.clone());

    let start = Instant::now();
    let mut handles = Vec::with_capacity(world);
    for rank in 0..world {
        let (group, jg, ig) = parallel.decompose(rank);
        let comm = comm_group.communicator(rank);
        let daemons = Arc::clone(&daemons);
        let dataset = Arc::clone(&dataset_arc);
        let csr = Arc::clone(&csr);
        let static_mem = Arc::clone(&static_mem);
        let store = Arc::clone(&store);
        let schedule = schedules[group].clone();
        let model_cfg = model_cfg.clone();
        let cfg = cfg.clone();
        let resume = resume.clone();

        handles.push(
            std::thread::Builder::new()
                .name(format!("disttgl-trainer-{rank}"))
                .spawn(move || {
                    trainer_main(TrainerCtx {
                        rank,
                        group,
                        jg,
                        ig,
                        comm,
                        daemons,
                        dataset,
                        csr,
                        static_mem,
                        store,
                        schedule,
                        model_cfg,
                        cfg,
                        train_end,
                        val_end,
                        start,
                        resume,
                    })
                })
                .expect("spawn trainer"),
        );
    }

    let returns: Vec<TrainerReturn> = handles
        .into_iter()
        .map(|h| h.join().expect("trainer thread panicked"))
        .collect();
    let wall = start.elapsed().as_secs_f64();

    let (mut result, eval_secs) = assemble_results(returns, wall);
    result.absorb_comm(&comm_group.stats());

    // Fault unwinding: daemons of a crashed group may still be waiting
    // for turns that will never come — release them before joining so
    // teardown cannot hang.
    if result.aborted {
        for d in daemons.iter() {
            d.shutdown();
        }
    }

    // Throughput counts training time only (evaluation excluded, as in
    // the paper): total traversed events / (wall − rank-0 eval time).
    let traversed: usize = schedules
        .iter()
        .map(|s| s.events_traversed_per_group())
        .sum();
    result.throughput_events_per_sec = traversed as f64 / (wall - eval_secs).max(1e-9);
    result.finalize_convergence();

    // Tear down daemons (their schedules are complete), folding their
    // final counters and per-replica memory digests into the record.
    match Arc::try_unwrap(daemons) {
        Ok(daemons) => {
            for d in daemons {
                let (state, stats) = d.join();
                result.absorb_daemon(&stats);
                result.memory_checksums.push(state.checksum());
            }
        }
        Err(daemons) => {
            for d in daemons.iter() {
                result.absorb_daemon(&d.stats());
            }
        }
    }
    result
}

struct TrainerCtx {
    rank: usize,
    group: usize,
    jg: usize,
    ig: usize,
    comm: disttgl_cluster::Communicator,
    daemons: Arc<Vec<MemoryDaemon>>,
    dataset: Arc<Dataset>,
    csr: Arc<TCsr>,
    static_mem: Arc<Option<StaticMemory>>,
    store: Arc<Option<NegativeStore>>,
    schedule: GroupSchedule,
    model_cfg: ModelConfig,
    cfg: TrainConfig,
    train_end: usize,
    val_end: usize,
    start: Instant,
    resume: Option<Arc<TrainCheckpoint>>,
}

fn empty_write(model_cfg: &ModelConfig) -> MemoryWrite {
    MemoryWrite {
        nodes: Vec::new(),
        mem: Matrix::zeros(0, model_cfg.d_mem),
        mem_ts: Vec::new(),
        mail: Matrix::zeros(0, model_cfg.mail_dim()),
        mail_ts: Vec::new(),
    }
}

fn trainer_main(ctx: TrainerCtx) -> TrainerReturn {
    let TrainerCtx {
        rank,
        group,
        jg,
        ig,
        comm,
        daemons,
        dataset,
        csr,
        static_mem,
        store,
        schedule,
        model_cfg,
        cfg,
        train_end,
        val_end,
        start,
        resume,
    } = ctx;
    let parallel = cfg.parallel;
    let (i, j) = (parallel.i, parallel.j);
    let mut client = daemons[group].client(jg * i + ig);

    // Fault plane: an optional per-wait deadline turns a wedged daemon
    // protocol into `DaemonError::Timeout`; any injected fault implies
    // a default deadline so survivors can always unwind.
    let faults = cfg.faults.clone().unwrap_or_default();
    let deadline = cfg
        .daemon_deadline_ms
        .map(std::time::Duration::from_millis)
        .or_else(|| (!faults.is_empty()).then(|| std::time::Duration::from_secs(5)));
    client.set_deadline(deadline);
    let my_crash = faults.lane_crash_at(rank);
    let spec_delay = faults.speculation_delay(rank).unwrap_or(0);

    let prep = BatchPreparer::new(&dataset, csr.as_ref(), &model_cfg);

    // Identical seeded init on every replica (equivalent to broadcast).
    let mut rng = seeded_rng(cfg.seed);
    let mut model = TgnModel::new(model_cfg.clone(), &mut rng);
    let mut adam = model.optimizer(cfg.scaled_lr());

    // Kernel-share attribution for this lane: thread-local cumulative
    // timers, differenced at the end of the schedule (mid-run eval
    // kernel time is subtracted so the shares describe training
    // compute, matching the sequential trainer).
    let kernels0 = disttgl_tensor::timing::snapshot();
    let mut eval_kernels = disttgl_tensor::timing::KernelTimings::default();
    let mut ret = TrainerReturn {
        timing: TimingBreakdown::default(),
        loss_history: Vec::new(),
        convergence: Vec::new(),
        grad_sq_dev_sum: 0.0,
        grad_probes: 0,
        eval_secs: 0.0,
        aborted: false,
        cause: None,
    };

    let b = schedule.num_batches();
    let total_steps = schedule.total_steps();
    let ownership_steps = cfg.sweeps() * b;
    let mut cached: Option<PreparedBatch> = None;
    let mut sweep_done = 0usize;

    // Checkpoint resume: every rank restores the identical weights and
    // optimizer moments (equivalent to a broadcast of the restored
    // replica); rank 0 additionally re-seeds its histories so the
    // assembled RunResult matches an uninterrupted run.
    let start_step = match resume.as_deref() {
        Some(c) => {
            assert!(
                c.units_done * b < total_steps,
                "checkpoint already covers the full schedule"
            );
            model.params.unflatten_weights(&c.weights);
            adam.load_state(c.adam_t, &c.adam_state);
            if rank == 0 {
                ret.loss_history = c.loss_history.clone();
                ret.convergence = c.convergence.clone();
            }
            c.units_done * b
        }
        None => 0,
    };

    // Pipelined prefetch: phase 1 (sampling, negative slicing, feature
    // gathers) of this lane's *next* non-empty Acquire runs on a
    // worker thread while the current step computes. With
    // `speculative_gather` (default) phase 2 overlaps too: the moment
    // phase 1 lands — typically during a continue pass — the lane
    // posts a speculative out-of-turn gather to the daemon; its
    // serialized Acquire slot then only fetches the delta of rows
    // written since and repairs the block in place. The daemon turn
    // order and all training results are unchanged either way (the
    // version contract makes the patched block bit-identical to a
    // serialized read; see `disttgl_mem::daemon`).
    let acquire_plan: Vec<(usize, std::ops::Range<usize>, usize)> = (0..total_steps)
        .filter_map(|step| match schedule.plan(jg, step) {
            StepPlan::Acquire { batch, epoch_equiv } => {
                let local = schedule.local_slice(&batch, ig);
                (!local.is_empty()).then_some((step, local, epoch_equiv))
            }
            _ => None,
        })
        .collect();
    let request_for = |idx: usize| {
        let (_, local, epoch_equiv) = acquire_plan[idx].clone();
        PrefetchRequest::for_epoch(
            store.as_ref().as_ref(),
            epoch_equiv,
            j,
            local,
            cfg.train_negs,
        )
    };
    // First plan entry at or after the resume point.
    let resume_idx = acquire_plan
        .iter()
        .position(|(s, _, _)| *s >= start_step)
        .unwrap_or(acquire_plan.len());
    let mut next_acquire = resume_idx; // next acquire_plan entry to execute
    let mut next_request = resume_idx; // next entry whose phase 1 is unrequested
    let mut prefetcher = if cfg.pipeline_prefetch && resume_idx < acquire_plan.len() {
        let mut p =
            BatchPrefetcher::spawn(Arc::clone(&dataset), Arc::clone(&csr), model_cfg.clone());
        p.request(request_for(resume_idx));
        next_request = resume_idx + 1;
        Some(p)
    } else {
        None
    };
    let use_speculation = cfg.speculative_gather && prefetcher.is_some();
    // Phase-1 result for acquire_plan[next_acquire], grabbed early
    // (continue/idle steps) so its speculative gather is in flight.
    let mut staged: Option<PrefetchedBatch> = None;
    let mut spec_posted = false;
    // Scratch buffers cycled through the daemon: the retired batch's
    // gathered block becomes the next read/speculation target.
    let mut read_scratch = MemoryReadout::default();
    let mut spec_scratch = VersionedReadout::default();

    // Checkpoint cadence: a distributed unit is one sweep (= j·k
    // epoch-equivalents); a sweep boundary is a quiescent point where
    // every daemon has served exactly `step + 1` turns. The final
    // boundary is never checkpointed.
    let ckpt_every = match (cfg.checkpoint_every, &cfg.checkpoint_dir) {
        (Some(n), Some(_)) => Some(n),
        _ => None,
    };
    let mut aborted = false;
    let mut cause: Option<AbortCause> = None;
    let mut mem_fault: Option<DaemonError> = None;

    for step in start_step..total_steps {
        if my_crash == Some(step) {
            // Injected lane crash: tear down the collective so every
            // survivor unwinds from its next all-reduce instead of
            // waiting forever for this rank.
            comm.abort();
            aborted = true;
            cause = Some(AbortCause::InjectedCrash);
            break;
        }
        let plan = schedule.plan(jg, step);
        model.params.zero_grads();
        let mut loss = 0.0f32;
        let mut did_work = false;

        match plan {
            StepPlan::Acquire { batch, epoch_equiv } => {
                let local = schedule.local_slice(&batch, ig);
                let t_prep = Instant::now();
                let mut via_speculation = false;
                let prepared = if local.is_empty() {
                    // Still take the serialized memory turn with an
                    // empty request to keep the daemon protocol moving.
                    let mut timed = TimedAccess {
                        client: &mut client,
                        wait_secs: &mut ret.timing.mem_wait_secs,
                        fault: &mut mem_fault,
                        d_mem: model_cfg.d_mem,
                        d_mail: model_cfg.mail_dim(),
                    };
                    let _ = timed.read(&[]);
                    timed.write(empty_write(&model_cfg));
                    None
                } else {
                    let prepared_opt: Option<PreparedBatch> = match &mut prefetcher {
                        Some(p) => {
                            // Phase 1 was prefetched (and usually
                            // already staged with its speculative
                            // gather in flight); queue the next
                            // Acquire's phase 1, then take the one
                            // serialized memory slot here — as a
                            // delta request when speculating, a full
                            // read otherwise.
                            debug_assert_eq!(acquire_plan[next_acquire].0, step);
                            via_speculation = spec_posted;
                            let mut resp = match staged.take() {
                                Some(resp) => resp,
                                None => {
                                    let resp = p.recv();
                                    if next_request < acquire_plan.len() {
                                        p.request(request_for(next_request));
                                        next_request += 1;
                                    }
                                    resp
                                }
                            };
                            next_acquire += 1;
                            if spec_posted {
                                // Collect the out-of-turn gather and
                                // spend the serialized slot on the
                                // fused delta: the daemon repairs the
                                // rows written since directly in the
                                // gathered block. The per-row version
                                // check inside the delta is the exact
                                // guard;
                                // `GroupSchedule::intervening_writers`
                                // names the sub-groups whose writes
                                // such a delta can carry.
                                spec_posted = false;
                                let t_mem = Instant::now();
                                let collected =
                                    client.try_take_speculation().and_then(|mut tagged| {
                                        match cfg.staleness_bound {
                                            // Bounded-staleness mode:
                                            // rows within the bound
                                            // keep their speculative
                                            // value (repair skipped);
                                            // the rest repair exactly.
                                            Some(bound) => client
                                                .try_read_delta_bounded_into(
                                                    resp.sb.nodes(),
                                                    &tagged.versions,
                                                    &mut tagged.readout,
                                                    bound,
                                                )
                                                .map(|outcome| {
                                                    if cfg.staleness_compensation
                                                        == crate::config::StalenessCompensation::SimilarityBlend
                                                    {
                                                        blend_admitted_rows(
                                                            &mut tagged.readout,
                                                            &outcome.admitted_rows,
                                                            model_cfg.d_mem,
                                                        );
                                                    }
                                                    tagged
                                                }),
                                            None => client
                                                .try_read_delta_into(
                                                    resp.sb.nodes(),
                                                    &tagged.versions,
                                                    &mut tagged.readout,
                                                )
                                                .map(|_patched| tagged),
                                        }
                                    });
                                ret.timing.mem_wait_secs += t_mem.elapsed().as_secs_f64();
                                match collected {
                                    Ok(tagged) => {
                                        resp.attach_speculation(tagged);
                                        let full = resp.take_readout().expect("attached readout");
                                        Some(prep.complete(resp.sb, full))
                                    }
                                    Err(e) => {
                                        mem_fault = Some(e);
                                        None
                                    }
                                }
                            } else {
                                let prepared = {
                                    let mut timed = TimedAccess {
                                        client: &mut client,
                                        wait_secs: &mut ret.timing.mem_wait_secs,
                                        fault: &mut mem_fault,
                                        d_mem: model_cfg.d_mem,
                                        d_mail: model_cfg.mail_dim(),
                                    };
                                    prep.finish_with(
                                        resp.sb,
                                        &mut timed,
                                        std::mem::take(&mut read_scratch),
                                    )
                                };
                                if mem_fault.is_none() {
                                    Some(prepared)
                                } else {
                                    None
                                }
                            }
                        }
                        None => {
                            // Sequential oracle: one read covering the
                            // positives and all j negative sets
                            // (epoch-parallel prefetch).
                            let prepared = {
                                let mut timed = TimedAccess {
                                    client: &mut client,
                                    wait_secs: &mut ret.timing.mem_wait_secs,
                                    fault: &mut mem_fault,
                                    d_mem: model_cfg.d_mem,
                                    d_mail: model_cfg.mail_dim(),
                                };
                                let mut neg_slices: Vec<&[u32]> = Vec::new();
                                let storage;
                                if let Some(store) = store.as_ref() {
                                    storage = (0..j)
                                        .map(|p| {
                                            let g = store.group_for_epoch(epoch_equiv + p);
                                            store.slice(g, local.clone())
                                        })
                                        .collect::<Vec<_>>();
                                    neg_slices = storage.to_vec();
                                }
                                prep.prepare(local.clone(), &neg_slices, cfg.train_negs, &mut timed)
                            };
                            if mem_fault.is_none() {
                                Some(prepared)
                            } else {
                                None
                            }
                        }
                    };
                    ret.timing.prep_secs += t_prep.elapsed().as_secs_f64();

                    prepared_opt.inspect(|prepared| {
                        let t_compute = Instant::now();
                        let out = model.train_step(
                            &prepared.pos,
                            prepared.negs.first(),
                            static_mem.as_ref().as_ref(),
                        );
                        ret.timing.compute_secs += t_compute.elapsed().as_secs_f64();
                        loss = out.loss;
                        did_work = true;
                        if let Err(e) = client.try_write(out.write) {
                            mem_fault = Some(e);
                        }
                    })
                };
                // Recycle the retired batch's gathered block into the
                // scratch this turn drained (no per-turn readout
                // allocation in steady state, whichever path served
                // the read).
                if let Some(old) = cached.take() {
                    if let Some(block) = old.recycle_block() {
                        if via_speculation {
                            spec_scratch.readout = block;
                        } else {
                            read_scratch = block;
                        }
                    }
                }
                cached = prepared;
            }
            StepPlan::Continue { pass, .. } => {
                if let Some(prepared) = &cached {
                    let t_compute = Instant::now();
                    let neg = if prepared.negs.is_empty() {
                        None
                    } else {
                        Some(&prepared.negs[pass.min(prepared.negs.len() - 1)])
                    };
                    let out = model.train_step(&prepared.pos, neg, static_mem.as_ref().as_ref());
                    ret.timing.compute_secs += t_compute.elapsed().as_secs_f64();
                    loss = out.loss;
                    did_work = true;
                    // Non-owner passes never write (RAW hazard, §3.2.2).
                }
            }
            StepPlan::Idle => {}
        }

        if let Some(fault) = &mem_fault {
            // A daemon wait failed (injected shutdown, deadline expiry,
            // or a peer's crash wedging the turn order): abort the
            // collective and unwind; peers blocked in the all-reduce
            // observe the abort instead of hanging.
            cause = Some(match fault {
                DaemonError::Shutdown => AbortCause::DaemonShutdown,
                DaemonError::Timeout => AbortCause::DaemonTimeout,
            });
            comm.abort();
            aborted = true;
            break;
        }

        // Open the next speculation window: the moment the next
        // Acquire's phase 1 is done (typically during a continue
        // pass), post its unique-node gather out of turn so the
        // daemon fills it while this lane computes/synchronizes. Any
        // write that lands in between is repaired by the Acquire
        // turn's delta — bit-identically, per the version contract. An
        // injected `DelaySpeculation` fault holds the first posts back
        // (the Acquire slot then pays a full read — results unchanged,
        // which is exactly what the fault harness asserts).
        if let Some(p) = &mut prefetcher {
            if staged.is_none() && next_acquire < acquire_plan.len() {
                if let Some(resp) = p.try_recv() {
                    if next_request < acquire_plan.len() {
                        p.request(request_for(next_request));
                        next_request += 1;
                    }
                    if use_speculation && step >= start_step + spec_delay {
                        client.speculate_read(resp.sb.nodes(), std::mem::take(&mut spec_scratch));
                        spec_posted = true;
                    }
                    staged = Some(resp);
                }
            }
        }

        // Global weight synchronization (the only cross-group and
        // cross-machine traffic, Table 1).
        let t_comm = Instant::now();
        let mut grads = model.params.flatten_grads();
        let probe = step % VARIANCE_PROBE_EVERY == 0 && did_work;
        let pre = if probe { Some(grads.clone()) } else { None };
        if comm.try_allreduce_mean(&mut grads).is_err() {
            // A peer crashed and aborted the communicator: unwind with
            // whatever history is already banked.
            aborted = true;
            cause = Some(AbortCause::PeerAbort);
            break;
        }
        if let Some(pre) = pre {
            let n = grads.len().max(1);
            let dev: f64 = pre
                .iter()
                .zip(&grads)
                .map(|(&a, &b)| ((a - b) as f64).powi(2))
                .sum::<f64>()
                / n as f64;
            ret.grad_sq_dev_sum += dev;
            ret.grad_probes += 1;
        }
        model.params.unflatten_grads(&grads);
        model.params.clip_grad_norm(5.0);
        adam.step(&mut model.params);
        ret.timing.allreduce_secs += t_comm.elapsed().as_secs_f64();

        if rank == 0 {
            ret.loss_history.push(loss);
        }

        // Sweep boundary: rank 0 evaluates from replica 0's snapshot.
        if rank == 0
            && cfg.eval_every_epoch
            && val_end > train_end
            && step < ownership_steps
            && (step + 1) % b == 0
        {
            let t_eval = Instant::now();
            let k_eval = disttgl_tensor::timing::snapshot();
            let sweep_idx = (step + 1) / b - 1;
            let mut snap = match daemons[0].try_epoch_snapshot(sweep_idx as u64) {
                Ok(snap) => snap,
                Err(e) => {
                    // Replica 0's daemon died before finishing the
                    // sweep (fault injection): unwind everyone.
                    cause = Some(match e {
                        DaemonError::Shutdown => AbortCause::DaemonShutdown,
                        DaemonError::Timeout => AbortCause::DaemonTimeout,
                    });
                    comm.abort();
                    aborted = true;
                    break;
                }
            };
            let eval_end = val_end.min(train_end.saturating_add(cfg.eval_max_events));
            let res = evaluate(
                &model,
                &model_cfg,
                &dataset,
                csr.as_ref(),
                &mut snap,
                static_mem.as_ref().as_ref(),
                train_end..eval_end,
                cfg.local_batch,
                cfg.eval_negs,
                cfg.seed ^ sweep_idx as u64,
            );
            ret.eval_secs += t_eval.elapsed().as_secs_f64();
            eval_kernels = eval_kernels + (disttgl_tensor::timing::snapshot() - k_eval);
            ret.convergence.push(ConvergencePoint {
                iteration: step + 1,
                wall_secs: start.elapsed().as_secs_f64(),
                metric: res.metric,
            });
            sweep_done = sweep_idx + 1;
        }

        // Sweep-boundary checkpoint: rank 0 captures every replica's
        // exact state at turn `step + 1` and persists it together with
        // the (replica-identical) weights and optimizer moments. The
        // trailing zero-length all-reduce is a quiescence barrier — no
        // rank may post a turn-`step + 1` memory request until every
        // capture is collected, which is exactly the precondition of
        // `MemoryDaemon::capture_at`. Saving is pure observation: the
        // training trajectory is bit-identical with or without it.
        let units = (step + 1) / b;
        if ckpt_every
            .is_some_and(|n| (step + 1) % b == 0 && step + 1 < ownership_steps && units % n == 0)
        {
            if rank == 0 {
                let turn = (step + 1) as u64;
                for d in daemons.iter() {
                    d.capture_at(turn);
                }
                let capture_deadline = Some(deadline.unwrap_or(std::time::Duration::from_secs(30)));
                let mut memories = Vec::with_capacity(daemons.len());
                let mut capture_err: Option<DaemonError> = None;
                for d in daemons.iter() {
                    match d.take_capture(capture_deadline) {
                        Ok(m) => memories.push(m),
                        Err(e) => {
                            capture_err = Some(e);
                            break;
                        }
                    }
                }
                if memories.len() == daemons.len() {
                    let dir = cfg
                        .checkpoint_dir
                        .as_deref()
                        .expect("gated on checkpoint_dir");
                    let ckpt_store = CheckpointStore::open(dir, cfg.checkpoint_retain)
                        .unwrap_or_else(|e| panic!("checkpoint dir {dir}: {e}"));
                    let start_turns = vec![turn; memories.len()];
                    let ckpt = TrainCheckpoint {
                        fingerprint: fingerprint(&model_cfg, &cfg),
                        units_done: units,
                        iteration: step + 1,
                        events_trained: (units * train_end * j * parallel.k) as u64,
                        weights: model.params.flatten_weights(),
                        adam_t: adam.steps(),
                        adam_state: adam.flatten_state(),
                        loss_history: ret.loss_history.clone(),
                        convergence: ret.convergence.clone(),
                        static_table: static_mem.as_ref().as_ref().map(|s| s.table().clone()),
                        memories,
                        start_turns,
                    };
                    if faults.torn_checkpoint_at(units) {
                        // Injected torn write: persist a truncated
                        // prefix of the frame at the *final* path
                        // (modeling a crash mid-write without the
                        // atomic-rename shield) and bring the run
                        // down. Recovery must see the bad digest and
                        // fall back to the previous good checkpoint.
                        let bytes = ckpt.to_framed_bytes();
                        let path = ckpt_store.train_path(units);
                        std::fs::write(&path, &bytes[..bytes.len() / 2])
                            .unwrap_or_else(|e| panic!("torn write {}: {e}", path.display()));
                        comm.abort();
                        aborted = true;
                        cause = Some(AbortCause::TornCheckpoint);
                    } else {
                        ckpt_store
                            .save_train(&ckpt)
                            .unwrap_or_else(|e| panic!("checkpoint save unit {units}: {e}"));
                    }
                } else {
                    // A capture resolved as shutdown/timeout — a
                    // replica died at the boundary. Abort rather than
                    // persist a partial checkpoint.
                    cause = Some(match capture_err {
                        Some(DaemonError::Timeout) => AbortCause::DaemonTimeout,
                        _ => AbortCause::DaemonShutdown,
                    });
                    comm.abort();
                    aborted = true;
                }
            }
            if aborted {
                break;
            }
            if comm.try_allreduce_mean(&mut [0.0f32]).is_err() {
                aborted = true;
                cause = Some(AbortCause::PeerAbort);
                break;
            }
        }
    }
    let _ = sweep_done;
    // Per-layer share of the embed stack inside compute_secs.
    ret.timing.absorb_layer_secs(&model.layer_embed_secs(), 1.0);
    ret.timing.absorb_kernels(
        &(disttgl_tensor::timing::snapshot() - kernels0 - eval_kernels),
        1.0,
    );

    // Rank 0 computes the final test metric: replay val then test from
    // the final snapshot of replica 0. An aborted run has no final
    // state to score — its partial histories stand as-is.
    if rank == 0 && !aborted {
        let t_eval = Instant::now();
        let final_sweep = cfg.sweeps() as u64 - 1;
        let mut mem = daemons[0].epoch_snapshot(final_sweep);
        if val_end > train_end {
            crate::eval::replay_memory(
                &model,
                &model_cfg,
                &dataset,
                csr.as_ref(),
                &mut mem,
                static_mem.as_ref().as_ref(),
                train_end..val_end,
                cfg.local_batch,
            );
        }
        let test_end = dataset
            .graph
            .num_events()
            .min(val_end.saturating_add(cfg.eval_max_events));
        let test = evaluate(
            &model,
            &model_cfg,
            &dataset,
            csr.as_ref(),
            &mut mem,
            static_mem.as_ref().as_ref(),
            val_end..test_end,
            cfg.local_batch,
            cfg.eval_negs,
            cfg.seed ^ 0x7e57,
        );
        ret.eval_secs += t_eval.elapsed().as_secs_f64();
        // Smuggle the test metric through a sentinel convergence point
        // consumed by `assemble_results`.
        ret.convergence.push(ConvergencePoint {
            iteration: usize::MAX,
            wall_secs: start.elapsed().as_secs_f64(),
            metric: test.metric,
        });
    }
    ret.aborted = aborted;
    // Every aborted rank reports a cause; a rank that unwound without
    // observing its own failure is a bystander.
    ret.cause = aborted.then(|| cause.unwrap_or(AbortCause::PeerAbort));
    ret
}

fn assemble_results(returns: Vec<TrainerReturn>, wall: f64) -> (RunResult, f64) {
    let world = returns.len() as f64;
    let mut result = RunResult {
        aborted: returns.iter().any(|r| r.aborted),
        abort_reports: returns
            .iter()
            .enumerate()
            .filter_map(|(rank, r)| r.cause.map(|cause| AbortReport { rank, cause }))
            .collect(),
        ..Default::default()
    };
    let mut dev_sum = 0.0;
    let mut probes = 0u64;
    for r in &returns {
        result.timing.prep_secs += r.timing.prep_secs / world;
        result.timing.mem_wait_secs += r.timing.mem_wait_secs / world;
        result.timing.compute_secs += r.timing.compute_secs / world;
        result
            .timing
            .absorb_layer_secs(&r.timing.embed_layer_secs, 1.0 / world);
        result.timing.allreduce_secs += r.timing.allreduce_secs / world;
        result.timing.matmul_secs += r.timing.matmul_secs / world;
        result.timing.gru_secs += r.timing.gru_secs / world;
        result.timing.softmax_secs += r.timing.softmax_secs / world;
        result.timing.gather_secs += r.timing.gather_secs / world;
        dev_sum += r.grad_sq_dev_sum;
        probes += r.grad_probes;
    }
    result.grad_variance = if probes > 0 {
        dev_sum / probes as f64
    } else {
        0.0
    };

    let rank0 = returns.into_iter().next().expect("at least one trainer");
    result.loss_history = rank0.loss_history;
    let mut convergence = rank0.convergence;
    if let Some(last) = convergence.last() {
        if last.iteration == usize::MAX {
            let sentinel = convergence.pop().expect("sentinel");
            result.test_metric = sentinel.metric;
        }
    }
    result.convergence = convergence;
    result.wall_secs = wall;
    (result, rank0.eval_secs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ParallelConfig;
    use disttgl_data::generators;

    fn quick_cfg(parallel: ParallelConfig, epochs: usize) -> TrainConfig {
        let mut cfg = TrainConfig::new(parallel);
        cfg.local_batch = 64;
        cfg.epochs = epochs;
        cfg.eval_negs = 9;
        cfg.eval_every_epoch = true;
        cfg.seed = 3;
        cfg.base_lr = 2e-2; // keep effective LR ≈ 2e-3 at bs 64
        cfg
    }

    fn tiny_model(d_edge: usize) -> ModelConfig {
        let mut mc = ModelConfig::compact(d_edge);
        mc.d_mem = 16;
        mc.d_time = 8;
        mc.d_emb = 16;
        mc.n_neighbors = 5;
        mc.static_memory = false;
        mc
    }

    #[test]
    fn one_by_one_by_one_matches_single_reference_shape() {
        let d = generators::wikipedia(0.004, 51);
        let mc = tiny_model(d.edge_features.cols());
        let cfg = quick_cfg(ParallelConfig::single(), 2);
        let res = train_distributed(&d, &mc, &cfg, ClusterSpec::new(1, 1));
        assert_eq!(res.convergence.len(), 2);
        assert!(res.test_metric > 0.0);
        assert!(res.loss_history.iter().all(|l| l.is_finite()));
        assert!(res.daemon_rows_written > 0);
    }

    #[test]
    fn memory_parallelism_runs_and_learns() {
        let d = generators::wikipedia(0.008, 52);
        let mc = tiny_model(d.edge_features.cols());
        // k = 4 trainers, epochs = 16 → 4 sweeps.
        let cfg = quick_cfg(ParallelConfig::new(1, 1, 4), 16);
        let res = train_distributed(&d, &mc, &cfg, ClusterSpec::new(1, 4));
        assert_eq!(res.convergence.len(), 4);
        assert!(res.test_metric > 0.3, "test MRR {}", res.test_metric);
        // Memory parallelism: no node-memory sync across groups, only
        // weights — comm bytes > 0, and 4 daemons saw writes.
        assert!(res.comm_bytes > 0);
        assert!(res.daemon_rows_written > 0);
    }

    #[test]
    fn epoch_parallelism_runs() {
        let d = generators::wikipedia(0.004, 53);
        let mc = tiny_model(d.edge_features.cols());
        let cfg = quick_cfg(ParallelConfig::new(1, 2, 1), 4);
        let res = train_distributed(&d, &mc, &cfg, ClusterSpec::new(1, 2));
        assert_eq!(res.convergence.len(), 2);
        assert!(res.test_metric > 0.0);
    }

    #[test]
    fn minibatch_parallelism_runs() {
        let d = generators::wikipedia(0.004, 54);
        let mc = tiny_model(d.edge_features.cols());
        let cfg = quick_cfg(ParallelConfig::new(2, 1, 1), 2);
        let res = train_distributed(&d, &mc, &cfg, ClusterSpec::new(1, 2));
        assert_eq!(res.convergence.len(), 2);
        assert!(res.test_metric > 0.0);
    }

    #[test]
    fn full_ijk_combination_runs() {
        let d = generators::wikipedia(0.004, 55);
        let mc = tiny_model(d.edge_features.cols());
        let cfg = quick_cfg(ParallelConfig::new(2, 2, 2), 8);
        let res = train_distributed(&d, &mc, &cfg, ClusterSpec::new(2, 4));
        assert!(res.test_metric > 0.0);
        assert!(res.grad_variance >= 0.0);
        assert!(res.throughput_events_per_sec > 0.0);
    }

    #[test]
    fn distributed_run_is_deterministic() {
        let d = generators::mooc(0.0015, 56);
        let mc = tiny_model(0);
        let cfg = quick_cfg(ParallelConfig::new(1, 1, 2), 4);
        let a = train_distributed(&d, &mc, &cfg, ClusterSpec::new(1, 2));
        let b = train_distributed(&d, &mc, &cfg, ClusterSpec::new(1, 2));
        assert_eq!(a.loss_history, b.loss_history);
        assert_eq!(a.test_metric, b.test_metric);
    }
}
