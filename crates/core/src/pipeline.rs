//! The two-stage, double-buffered **pipelined batch-prefetch
//! executor** (the overlap the paper's throughput figures assume —
//! "we sample the mini-batch in advance", §4.0.2 — generalized to the
//! whole preparation phase).
//!
//! # Phase split
//!
//! [`BatchPreparer::prepare`](crate::BatchPreparer::prepare) decomposes
//! into:
//!
//! 1. **Phase 1 — memory-independent**
//!    ([`BatchPreparer::prepare_static`](crate::BatchPreparer::prepare_static)):
//!    most-recent-k neighbor sampling over the immutable T-CSR,
//!    negative slicing, edge-feature/label gathers, and assembly of the
//!    serialized read's node list. Depends only on the dataset and the
//!    schedule, so it may run arbitrarily far ahead.
//! 2. **Phase 2 — memory-dependent**
//!    ([`BatchPreparer::finish`](crate::BatchPreparer::finish)): the
//!    single node-memory row gather plus readout splitting. Must
//!    observe the previous batch's [`MemoryWrite`](disttgl_mem::MemoryWrite)
//!    — on the daemon path this is the trainer's serialized
//!    `(R…)(W…)` turn (see `disttgl_mem::daemon`), on the direct path
//!    it is plain program order.
//!
//! # Double buffering
//!
//! A [`BatchPrefetcher`] owns one worker thread running phase 1. The
//! trainer keeps exactly one request in flight: while it computes
//! batch *t*, the worker samples batch *t + 1*; at the top of the next
//! iteration the trainer receives the finished [`StaticBatch`],
//! immediately issues the request for *t + 2*, runs phase 2 in its
//! serialized memory turn, and trains. Prep latency is hidden behind
//! compute without ever reordering a memory read past a pending write.
//!
//! # Overlapping the memory gather (phase 2)
//!
//! With [`BatchPrefetcher::spawn_with_memory`] the worker also gathers
//! batch *t + 1*'s memory rows concurrently with compute of batch *t*,
//! through a [`SharedMemory`] read lock. Two protocols make that exact:
//!
//! * **Eager-write scheduling** (what the single-GPU executor uses):
//!   the trainer applies batch *t*'s `MemoryWrite` the moment the
//!   forward pass produces it
//!   ([`TgnModel::train_step_eager_write`](crate::TgnModel::train_step_eager_write))
//!   and only then issues the gather request, so the worker reads a
//!   fully up-to-date state during the backward pass — the bulk of
//!   step compute — with zero staleness.
//! * **Speculative gather + patch** (the general mechanism; the
//!   distributed trainer runs it against the daemon as the
//!   version-vector protocol — speculative `read_versioned` out of
//!   turn, then a [`MemoryDelta`] in the serialized slot repairs the
//!   block via [`PrefetchedBatch::repair`], see `disttgl_mem::daemon`):
//!   a gather issued before the pending write lands is stale by
//!   exactly that write, whose node set is known, so the consumer
//!   repairs just those rows with
//!   [`patch_readout`](crate::batch::patch_readout).
//!   Note that with most-recent-k sampling on recurrence-heavy
//!   streams, the written nodes can dominate the next readout (~90%
//!   of readout rows measured on the Table 2 analogs), making
//!   eager-write scheduling the profitable protocol whenever the
//!   write is available early. With the deduplicated readout
//!   (`ModelConfig::dedup_readout`, default) the gathered block holds
//!   one row per unique node per part, so `patch_readout` repairs each
//!   stale node once per part instead of once per occurrence — the
//!   repair *volume* shrinks by the batch's occurrence/unique row
//!   ratio, though the stale *fraction* of rows stays high (most
//!   unique nodes of batch `t + 1` were just written by batch `t`), so
//!   the eager-write preference stands.
//!
//! Requests whose use would cross an epoch reset leave `gather_memory`
//! off and fall back to the serialized gather.
//!
//! # Correctness
//!
//! Phase 1 is a pure function of `(dataset, csr, range, negatives)`,
//! and phase 2 — serialized or speculative-plus-patch — yields the
//! identical readout in the identical serialized slot as the
//! sequential path, so the pipelined executor is *bit-identical* to
//! [`train_single`](crate::train_single) / the non-prefetching
//! distributed trainer — enforced by the equivalence tests in
//! `tests/pipeline_equivalence.rs` and by `train_distributed`'s
//! determinism tests running with prefetch on.

use crate::batch::{BatchPreparer, StaticBatch};
use crate::config::ModelConfig;
use disttgl_data::{Dataset, NegativeStore};
use disttgl_graph::TCsr;
use disttgl_mem::{MemoryDelta, MemoryReadout, MemoryState, VersionedReadout};
use std::ops::Range;
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;

/// Node memory shared between a trainer and its prefetch worker for
/// the overlapped phase-2 gather. The trainer takes the write lock
/// for `MemoryWrite`s and epoch resets; the worker takes the read lock
/// only while gathering.
pub type SharedMemory = Arc<RwLock<MemoryState>>;

/// Ignores lock poisoning: the guarded [`MemoryState`] has no
/// invariant a panicking reader could have broken mid-update, and a
/// poisoned trainer panic already aborts the run.
pub(crate) fn read_lock(mem: &SharedMemory) -> std::sync::RwLockReadGuard<'_, MemoryState> {
    mem.read().unwrap_or_else(|e| e.into_inner())
}

/// Write-side counterpart of [`read_lock`].
pub(crate) fn write_lock(mem: &SharedMemory) -> std::sync::RwLockWriteGuard<'_, MemoryState> {
    mem.write().unwrap_or_else(|e| e.into_inner())
}

/// One phase-1 work order: prepare the memory-independent part of the
/// batch covering `range` with the given pre-sliced negative sets.
#[derive(Clone, Debug)]
pub struct PrefetchRequest {
    /// Event range of the (local) batch.
    pub range: Range<usize>,
    /// Flat negative destination sets, one per epoch-parallel pass
    /// (empty for classification tasks).
    pub negs: Vec<Vec<u32>>,
    /// Negatives per event within each set.
    pub negs_per_event: usize,
    /// Also gather the node-memory rows from the shared memory (only
    /// honored by workers spawned with
    /// [`BatchPrefetcher::spawn_with_memory`]). The consumer must
    /// repair any rows written between the gather and use with
    /// [`crate::batch::patch_readout`] (none under eager-write
    /// scheduling); requests whose use crosses an epoch reset must
    /// leave this `false`.
    pub gather_memory: bool,
}

/// A prefetched batch: phase-1 output plus, when requested or attached
/// later, the full memory readout (exact under eager-write scheduling,
/// possibly stale under speculation — then tagged with the version
/// vector that lets a [`MemoryDelta`] repair it).
pub struct PrefetchedBatch {
    /// The memory-independent batch parts.
    pub sb: StaticBatch,
    /// Full readout in `sb.nodes()` row order.
    pub readout: Option<MemoryReadout>,
    /// Per-row write versions of the gather — set by
    /// [`PrefetchedBatch::attach_speculation`] on the daemon path
    /// (`None` for worker gathers, which are exact under eager-write
    /// scheduling and never repaired).
    pub versions: Option<Vec<u64>>,
}

impl PrefetchedBatch {
    /// Attaches a speculatively gathered, version-tagged readout (the
    /// distributed daemon path: the gather came from
    /// `MemoryClient::take_speculation`, not the prefetch worker).
    pub fn attach_speculation(&mut self, vr: VersionedReadout) {
        assert_eq!(
            vr.readout.mem.rows(),
            self.sb.read_rows(),
            "speculative readout rows"
        );
        self.versions = Some(vr.versions);
        self.readout = Some(vr.readout);
    }

    /// Repairs the attached readout in place with the rows a
    /// [`MemoryDelta`] reports as rewritten since the speculative
    /// gather; afterwards the readout equals a serialized read at the
    /// delta's point in the write order, bit for bit. Returns the
    /// patched row count.
    ///
    /// # Panics
    /// Panics if no readout is attached.
    pub fn repair(&mut self, delta: &MemoryDelta) -> usize {
        let readout = self
            .readout
            .as_mut()
            .expect("repair: no speculative readout attached");
        delta.apply(readout)
    }

    /// Takes the repaired (or exact) readout out of the batch.
    pub fn take_readout(&mut self) -> Option<MemoryReadout> {
        self.versions = None;
        self.readout.take()
    }
}

impl PrefetchRequest {
    /// Builds the request for `range` at epoch-equivalent `epoch`,
    /// slicing `passes` negative sets from the store (none for
    /// classification datasets, which have no store).
    pub fn for_epoch(
        store: Option<&NegativeStore>,
        epoch: usize,
        passes: usize,
        range: Range<usize>,
        negs_per_event: usize,
    ) -> Self {
        let negs = match store {
            Some(store) => (0..passes)
                .map(|p| {
                    let group = store.group_for_epoch(epoch + p);
                    store.slice(group, range.clone()).to_vec()
                })
                .collect(),
            None => Vec::new(),
        };
        Self {
            range,
            negs,
            negs_per_event,
            gather_memory: false,
        }
    }
}

/// A phase-1 prefetch worker bound to one trainer.
///
/// Keeps at most a small number of requests in flight (the executor
/// uses exactly one — double buffering); requests complete in FIFO
/// order, so responses match requests positionally.
pub struct BatchPrefetcher {
    req_tx: Option<Sender<PrefetchRequest>>,
    resp_rx: Receiver<PrefetchedBatch>,
    handle: Option<JoinHandle<()>>,
    in_flight: usize,
}

impl BatchPrefetcher {
    /// Spawns a phase-1-only worker. The worker owns shared handles to
    /// the immutable dataset and T-CSR — it never touches node memory,
    /// so responses carry `readout: None`.
    pub fn spawn(dataset: Arc<Dataset>, csr: Arc<TCsr>, model_cfg: ModelConfig) -> Self {
        Self::spawn_inner(dataset, csr, model_cfg, None)
    }

    /// Spawns a worker that additionally serves phase-2 gathers from
    /// `memory` for requests with `gather_memory: true`. The gather
    /// runs under the read lock concurrently with trainer compute;
    /// under eager-write scheduling it is exact, otherwise it may be
    /// at most one `MemoryWrite` stale, which the trainer repairs with
    /// [`crate::batch::patch_readout`].
    pub fn spawn_with_memory(
        dataset: Arc<Dataset>,
        csr: Arc<TCsr>,
        model_cfg: ModelConfig,
        memory: SharedMemory,
    ) -> Self {
        Self::spawn_inner(dataset, csr, model_cfg, Some(memory))
    }

    fn spawn_inner(
        dataset: Arc<Dataset>,
        csr: Arc<TCsr>,
        model_cfg: ModelConfig,
        memory: Option<SharedMemory>,
    ) -> Self {
        let (req_tx, req_rx) = std::sync::mpsc::channel::<PrefetchRequest>();
        let (resp_tx, resp_rx) = std::sync::mpsc::channel::<PrefetchedBatch>();
        let handle = std::thread::Builder::new()
            .name("disttgl-prefetch".into())
            .spawn(move || {
                let prep = BatchPreparer::new(&dataset, csr.as_ref(), &model_cfg);
                while let Ok(req) = req_rx.recv() {
                    let wants_readout = req.gather_memory;
                    let neg_refs: Vec<&[u32]> = req.negs.iter().map(Vec::as_slice).collect();
                    let sb = prep.prepare_static(req.range, &neg_refs, req.negs_per_event);
                    // The eager-write consumer never repairs this
                    // gather (it is exact by scheduling), so skip the
                    // version tagging; daemon-path speculation attaches
                    // its own tagged readout later.
                    let readout = match (&memory, wants_readout) {
                        (Some(mem), true) => Some(read_lock(mem).read(sb.nodes())),
                        _ => None,
                    };
                    if resp_tx
                        .send(PrefetchedBatch {
                            sb,
                            readout,
                            versions: None,
                        })
                        .is_err()
                    {
                        // Trainer hung up; drain and exit.
                        break;
                    }
                }
            })
            .expect("spawn prefetch worker");
        Self {
            req_tx: Some(req_tx),
            resp_rx,
            handle: Some(handle),
            in_flight: 0,
        }
    }

    /// Enqueues a phase-1 request.
    pub fn request(&mut self, req: PrefetchRequest) {
        self.req_tx
            .as_ref()
            .expect("prefetcher closed")
            .send(req)
            .expect("prefetch worker died");
        self.in_flight += 1;
    }

    /// Blocks for the oldest in-flight request's result.
    ///
    /// # Panics
    /// Panics if no request is in flight or the worker died.
    pub fn recv(&mut self) -> PrefetchedBatch {
        assert!(self.in_flight > 0, "recv without a pending prefetch");
        let resp = self.resp_rx.recv().expect("prefetch worker died");
        self.in_flight -= 1;
        resp
    }

    /// Non-blocking [`BatchPrefetcher::recv`]: returns the oldest
    /// in-flight result if it is already finished, `None` otherwise
    /// (or when nothing is in flight). The distributed trainer polls
    /// this during continue/idle steps to start a speculative memory
    /// gather the moment the next batch's node list exists.
    ///
    /// # Panics
    /// Panics if the worker died.
    pub fn try_recv(&mut self) -> Option<PrefetchedBatch> {
        if self.in_flight == 0 {
            return None;
        }
        match self.resp_rx.try_recv() {
            Ok(resp) => {
                self.in_flight -= 1;
                Some(resp)
            }
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => panic!("prefetch worker died"),
        }
    }

    /// Number of requests issued but not yet received.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }
}

impl Drop for BatchPrefetcher {
    fn drop(&mut self) {
        // Closing the request channel stops the worker loop.
        drop(self.req_tx.take());
        // Drain pending responses so the worker's sends don't block
        // (unbounded channel — sends never block, but be tidy).
        while self.in_flight > 0 {
            let _ = self.resp_rx.recv();
            self.in_flight -= 1;
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::MemoryAccess;
    use disttgl_data::generators;
    use disttgl_mem::MemoryState;

    fn setup() -> (Arc<Dataset>, Arc<TCsr>, ModelConfig) {
        let d = generators::wikipedia(0.005, 3);
        let csr = TCsr::build(&d.graph);
        let cfg = ModelConfig::compact(d.edge_features.cols());
        (Arc::new(d), Arc::new(csr), cfg)
    }

    /// Phase-split composition must equal the one-shot path exactly.
    #[test]
    fn split_prepare_matches_one_shot() {
        let (d, csr, cfg) = setup();
        let prep = BatchPreparer::new(&d, csr.as_ref(), &cfg);
        let negs: Vec<u32> = (0..32).map(|i| d.graph.events()[i].dst).collect();

        let mut mem_a = MemoryState::new(d.graph.num_nodes(), cfg.d_mem, cfg.mail_dim());
        let one_shot = prep.prepare(0..32, &[&negs], 1, &mut mem_a);

        let mut mem_b = MemoryState::new(d.graph.num_nodes(), cfg.d_mem, cfg.mail_dim());
        let sb = prep.prepare_static(0..32, &[&negs], 1);
        assert_eq!(sb.len(), 32);
        assert!(sb.read_rows() > 0);
        let split = prep.finish(sb, &mut mem_b);

        assert_eq!(one_shot.pos.srcs, split.pos.srcs);
        let (a, b) = (
            one_shot.pos.readout.to_readout(),
            split.pos.readout.to_readout(),
        );
        assert_eq!(a.mem, b.mem);
        assert_eq!(a.mail_ts, b.mail_ts);
        assert_eq!(one_shot.pos.nbr_feats, split.pos.nbr_feats);
        assert_eq!(one_shot.negs[0].negs, split.negs[0].negs);
        assert_eq!(
            one_shot.negs[0].readout.to_readout().mem,
            split.negs[0].readout.to_readout().mem
        );
    }

    /// The worker produces the same phase-1 output as an inline call,
    /// in FIFO order, one request ahead.
    #[test]
    fn prefetcher_is_fifo_and_exact() {
        let (d, csr, cfg) = setup();
        let prep = BatchPreparer::new(&d, csr.as_ref(), &cfg);
        let mut prefetcher = BatchPrefetcher::spawn(Arc::clone(&d), Arc::clone(&csr), cfg.clone());

        let ranges = [0usize..16, 16..48, 48..50];
        prefetcher.request(PrefetchRequest {
            range: ranges[0].clone(),
            negs: Vec::new(),
            negs_per_event: 1,
            gather_memory: false,
        });
        for (idx, range) in ranges.iter().enumerate() {
            let resp = prefetcher.recv();
            assert!(resp.readout.is_none(), "phase-1-only worker");
            if idx + 1 < ranges.len() {
                prefetcher.request(PrefetchRequest {
                    range: ranges[idx + 1].clone(),
                    negs: Vec::new(),
                    negs_per_event: 1,
                    gather_memory: false,
                });
            }
            let inline = prep.prepare_static(range.clone(), &[], 1);
            let mut mem_a = MemoryState::new(d.graph.num_nodes(), cfg.d_mem, cfg.mail_dim());
            let mut mem_b = MemoryState::new(d.graph.num_nodes(), cfg.d_mem, cfg.mail_dim());
            let a = prep.finish(resp.sb, &mut mem_a);
            let b = prep.finish(inline, &mut mem_b);
            assert_eq!(a.pos.srcs, b.pos.srcs, "range {range:?}");
            assert_eq!(
                a.pos.readout.to_readout().mem,
                b.pos.readout.to_readout().mem
            );
            assert_eq!(a.pos.event_feats, b.pos.event_feats);
        }
        assert_eq!(prefetcher.in_flight(), 0);
    }

    /// Reads served through `finish` observe writes applied after the
    /// phase-1 prefetch was issued — the memory-dependency rule.
    #[test]
    fn finish_sees_writes_issued_after_prefetch() {
        let (d, csr, cfg) = setup();
        let prep = BatchPreparer::new(&d, csr.as_ref(), &cfg);
        let mut prefetcher = BatchPrefetcher::spawn(Arc::clone(&d), Arc::clone(&csr), cfg.clone());
        let mut mem = MemoryState::new(d.graph.num_nodes(), cfg.d_mem, cfg.mail_dim());

        prefetcher.request(PrefetchRequest {
            range: 0..8,
            negs: Vec::new(),
            negs_per_event: 1,
            gather_memory: false,
        });
        // A write lands *after* the prefetch was issued…
        let node = d.graph.events()[0].src;
        let w = disttgl_mem::MemoryWrite {
            nodes: vec![node],
            mem: disttgl_tensor::Matrix::full(1, cfg.d_mem, 0.5),
            mem_ts: vec![1.0],
            mail: disttgl_tensor::Matrix::full(1, cfg.mail_dim(), 0.25),
            mail_ts: vec![1.0],
        };
        MemoryAccess::write(&mut mem, w);
        // …and phase 2 must observe it.
        let batch = prep.finish(prefetcher.recv().sb, &mut mem);
        let row = batch
            .pos
            .srcs
            .iter()
            .position(|&n| n == node)
            .expect("event 0's src is a root");
        // Dedup is on by default: map the occurrence row to its
        // unique readout row.
        let vrow = batch
            .pos
            .uniq
            .as_ref()
            .map_or(row, |u| u.occ_to_unique[row] as usize);
        assert_eq!(batch.pos.readout.mem_row(vrow)[0], 0.5);
        assert_eq!(batch.pos.readout.mail_ts(vrow), 1.0);
    }

    /// Dropping with requests in flight must not deadlock or leak the
    /// worker.
    #[test]
    fn drop_with_in_flight_requests_is_clean() {
        let (d, csr, cfg) = setup();
        let mut prefetcher = BatchPrefetcher::spawn(d, csr, cfg);
        for start in [0usize, 32, 64] {
            prefetcher.request(PrefetchRequest {
                range: start..start + 32,
                negs: Vec::new(),
                negs_per_event: 1,
                gather_memory: false,
            });
        }
        drop(prefetcher);
    }

    /// The version-tagged repair path on `PrefetchedBatch`: a stale
    /// attached gather plus the store's delta equals a serialized
    /// read, via `attach_speculation` + `repair`.
    #[test]
    fn attach_and_repair_with_delta_matches_serialized() {
        let (d, csr, cfg) = setup();
        let prep = BatchPreparer::new(&d, csr.as_ref(), &cfg);
        let mut mem = MemoryState::new(d.graph.num_nodes(), cfg.d_mem, cfg.mail_dim());
        let sb = prep.prepare_static(0..16, &[], 1);
        let mut batch = PrefetchedBatch {
            sb,
            readout: None,
            versions: None,
        };
        // Speculative gather, then a racing write.
        let tagged = mem.read_versioned(batch.sb.nodes());
        let node = d.graph.events()[0].src;
        mem.write(&disttgl_mem::MemoryWrite {
            nodes: vec![node],
            mem: disttgl_tensor::Matrix::full(1, cfg.d_mem, 0.75),
            mem_ts: vec![2.0],
            mail: disttgl_tensor::Matrix::full(1, cfg.mail_dim(), 1.5),
            mail_ts: vec![2.0],
        });
        let versions = tagged.versions.clone();
        batch.attach_speculation(tagged);
        let delta = mem.delta_since(batch.sb.nodes(), &versions);
        let patched = batch.repair(&delta);
        assert!(patched > 0, "event 0's src is in the batch");
        let repaired = batch.take_readout().expect("attached");
        let serialized = mem.read(batch.sb.nodes());
        assert_eq!(repaired.mem, serialized.mem);
        assert_eq!(repaired.mail_ts, serialized.mail_ts);
        assert!(batch.versions.is_none(), "take_readout clears the tag");
    }

    /// A speculative gather raced by a write, then patched, must equal
    /// a serialized read performed entirely after the write.
    #[test]
    fn stale_gather_plus_patch_equals_serialized_read() {
        let (d, csr, cfg) = setup();
        let shared: SharedMemory = Arc::new(RwLock::new(MemoryState::new(
            d.graph.num_nodes(),
            cfg.d_mem,
            cfg.mail_dim(),
        )));
        // Pre-populate a few rows so unwritten rows are non-trivial.
        let seed_nodes: Vec<u32> = (0..8).map(|i| d.graph.events()[i].dst).collect();
        {
            let mut guard = crate::pipeline::write_lock(&shared);
            let n = seed_nodes.len();
            guard.write(&disttgl_mem::MemoryWrite {
                nodes: seed_nodes,
                mem: disttgl_tensor::Matrix::full(n, cfg.d_mem, 0.125),
                mem_ts: vec![0.5; n],
                mail: disttgl_tensor::Matrix::full(n, cfg.mail_dim(), 0.25),
                mail_ts: vec![0.5; n],
            });
        }

        let mut prefetcher = BatchPrefetcher::spawn_with_memory(
            Arc::clone(&d),
            Arc::clone(&csr),
            cfg.clone(),
            Arc::clone(&shared),
        );
        prefetcher.request(PrefetchRequest {
            range: 0..24,
            negs: Vec::new(),
            negs_per_event: 1,
            gather_memory: true,
        });
        let mut resp = prefetcher.recv();
        // The racing write: batch-0-style roots updated after (or
        // during) the speculative gather.
        // Raw write-order node list: unsorted, possibly with
        // duplicates — exactly what `MemoryWrite::nodes` looks like
        // (`patch_readout` must cope without a sortedness contract).
        let written: Vec<u32> = (0..6)
            .flat_map(|i| [d.graph.events()[i].src, d.graph.events()[i].src])
            .collect();
        let stale = written.clone();
        {
            let mut guard = crate::pipeline::write_lock(&shared);
            let n = written.len();
            guard.write(&disttgl_mem::MemoryWrite {
                nodes: written,
                mem: disttgl_tensor::Matrix::full(n, cfg.d_mem, 0.75),
                mem_ts: vec![2.0; n],
                mail: disttgl_tensor::Matrix::full(n, cfg.mail_dim(), 1.5),
                mail_ts: vec![2.0; n],
            });
        }

        let mut full = resp.readout.take().expect("gathered readout");
        let guard = crate::pipeline::read_lock(&shared);
        let patched_rows = crate::batch::patch_readout(&mut full, resp.sb.nodes(), &stale, &guard);
        assert!(patched_rows > 0, "write set must intersect the batch");
        let serialized = guard.read(resp.sb.nodes());
        drop(guard);
        assert_eq!(full.mem, serialized.mem);
        assert_eq!(full.mail, serialized.mail);
        assert_eq!(full.mem_ts, serialized.mem_ts);
        assert_eq!(full.mail_ts, serialized.mail_ts);
    }
}
