//! Evaluation: MRR for temporal link prediction (49 sampled negatives,
//! paper §4) and F1-micro for dynamic edge classification.
//!
//! Evaluation walks the given event range chronologically, scoring each
//! batch **before** applying its memory write-back (the same reversed
//! order as training — predictions never see their own events), and
//! keeps updating a private copy of the node memory as it goes.
//!
//! Both entry points run on one [`InferenceEngine`]:
//! [`evaluate`] walks the range through the full scored forward
//! (engine `infer_step`), while [`replay_memory`] advances memory on
//! the engine's sampling-free `memory_write` fast path — the write is
//! a pure function of the roots' memory rows, so skipping the neighbor
//! expansion and attention stack leaves the memory trajectory
//! bit-identical (the `core::engine` contract) at a fraction of the
//! replay cost.

use crate::batch::BatchPreparer;
use crate::config::ModelConfig;
use crate::engine::InferenceEngine;
use crate::model::TgnModel;
use crate::static_mem::StaticMemory;
use disttgl_data::{Dataset, EvalNegatives, Task};
use disttgl_graph::TemporalAdjacency;
use disttgl_mem::MemoryState;
use disttgl_nn::loss;
use disttgl_tensor::Matrix;
use std::ops::Range;

/// Evaluation outcome: MRR for link tasks, F1-micro for classification.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EvalResult {
    /// The task metric (MRR or F1-micro).
    pub metric: f64,
    /// Mean model loss over the range.
    pub loss: f64,
    /// Events evaluated.
    pub events: usize,
}

/// Evaluates `model` over `range`, starting from `memory` (typically a
/// snapshot of the training memory, or a fresh zero state replayed to
/// the range start). `memory` is advanced in place.
#[allow(clippy::too_many_arguments)]
pub fn evaluate(
    model: &TgnModel,
    cfg: &ModelConfig,
    dataset: &Dataset,
    adj: &dyn TemporalAdjacency,
    memory: &mut MemoryState,
    static_mem: Option<&StaticMemory>,
    range: Range<usize>,
    batch_size: usize,
    eval_negs: usize,
    seed: u64,
) -> EvalResult {
    let prep = BatchPreparer::new(dataset, adj, cfg);
    let mut engine = InferenceEngine::new();
    let mut sampler = EvalNegatives::new(&dataset.graph, seed);
    let mut total_loss = 0.0f64;
    let mut batches = 0usize;
    let mut pos_all = Vec::new();
    let mut neg_all = Vec::new();
    let mut f1_logits: Vec<Matrix> = Vec::new();
    let mut f1_labels: Vec<Matrix> = Vec::new();

    for batch_range in disttgl_graph::batching::chronological_batches(range.clone(), batch_size) {
        let b = batch_range.len();
        match dataset.task {
            Task::LinkPrediction => {
                // Exclude each event's true destination from its
                // negatives (collisions matter at reproduction scale).
                let events = &dataset.graph.events()[batch_range.clone()];
                let negs: Vec<u32> = events
                    .iter()
                    .flat_map(|e| sampler.draw_excluding(eval_negs, e.dst))
                    .collect();
                let prepared = prep.prepare(batch_range, &[&negs], eval_negs, memory);
                let out =
                    engine.infer_step(model, &prepared.pos, Some(&prepared.negs[0]), static_mem);
                total_loss += out.loss as f64;
                pos_all.extend_from_slice(&out.pos_scores);
                neg_all.extend_from_slice(&out.neg_scores);
                memory.write(&out.write);
            }
            Task::EdgeClassification => {
                let prepared = prep.prepare(batch_range, &[], 1, memory);
                let out = engine.infer_step(model, &prepared.pos, None, static_mem);
                total_loss += out.loss as f64;
                let logits = Matrix::from_vec(b, cfg.num_classes, out.pos_scores.clone());
                f1_logits.push(logits);
                f1_labels.push(prepared.pos.labels.clone().expect("labels"));
                memory.write(&out.write);
            }
        }
        batches += 1;
    }

    let metric = match dataset.task {
        Task::LinkPrediction => loss::mrr(&pos_all, &neg_all, eval_negs),
        Task::EdgeClassification => {
            let logits_refs: Vec<&Matrix> = f1_logits.iter().collect();
            let labels_refs: Vec<&Matrix> = f1_labels.iter().collect();
            if logits_refs.is_empty() {
                0.0
            } else {
                loss::f1_micro(&Matrix::vcat(&logits_refs), &Matrix::vcat(&labels_refs))
            }
        }
    };
    EvalResult {
        metric,
        loss: if batches > 0 {
            total_loss / batches as f64
        } else {
            0.0
        },
        events: range.len(),
    }
}

/// Replays `range` through the model (no scoring) purely to advance
/// `memory` — used to position a fresh memory at a split boundary.
///
/// Runs the engine's sampling-free memory path: the write-back never
/// reads the attention stack, so the produced memory trajectory is
/// bit-identical to a full forward replay at the same batch
/// boundaries while skipping neighbor expansion entirely (`adj` and
/// `static_mem` are accepted for signature compatibility but never
/// consulted).
#[allow(clippy::too_many_arguments)]
pub fn replay_memory(
    model: &TgnModel,
    _cfg: &ModelConfig,
    dataset: &Dataset,
    _adj: &dyn TemporalAdjacency,
    memory: &mut MemoryState,
    _static_mem: Option<&StaticMemory>,
    range: Range<usize>,
    batch_size: usize,
) {
    let mut engine = InferenceEngine::new();
    for batch_range in disttgl_graph::batching::chronological_batches(range, batch_size) {
        let events = &dataset.graph.events()[batch_range];
        let (w, _) = engine.memory_write_events(model, dataset, events, memory);
        memory.write(&w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disttgl_data::generators;
    use disttgl_graph::TCsr;
    use disttgl_tensor::seeded_rng;

    #[test]
    fn untrained_model_scores_near_chance() {
        let d = generators::wikipedia(0.005, 31);
        let csr = TCsr::build(&d.graph);
        let mut cfg = ModelConfig::compact(d.edge_features.cols());
        cfg.n_neighbors = 5;
        let mut rng = seeded_rng(1);
        let model = TgnModel::new(cfg.clone(), &mut rng);
        let mut mem = MemoryState::new(d.graph.num_nodes(), cfg.d_mem, cfg.mail_dim());
        let res = evaluate(&model, &cfg, &d, &csr, &mut mem, None, 0..256, 64, 9, 5);
        // With 9 negatives, chance MRR ≈ Σ(1/r)/10 ≈ 0.29; an untrained
        // model should land in a broad band around it, far from 1.0.
        assert!(
            res.metric > 0.05 && res.metric < 0.7,
            "metric {}",
            res.metric
        );
        assert_eq!(res.events, 256);
        assert!(res.loss > 0.0);
    }

    #[test]
    fn replay_then_evaluate_is_deterministic() {
        let d = generators::mooc(0.002, 13);
        let csr = TCsr::build(&d.graph);
        let mut cfg = ModelConfig::compact(0);
        cfg.n_neighbors = 5;
        let mut rng = seeded_rng(2);
        let model = TgnModel::new(cfg.clone(), &mut rng);

        let run = || {
            let mut mem = MemoryState::new(d.graph.num_nodes(), cfg.d_mem, cfg.mail_dim());
            replay_memory(&model, &cfg, &d, &csr, &mut mem, None, 0..200, 50);
            evaluate(&model, &cfg, &d, &csr, &mut mem, None, 200..400, 50, 9, 7)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn classification_eval_produces_f1() {
        let d = generators::gdelt(2e-5, 17);
        let csr = TCsr::build(&d.graph);
        let mut cfg = ModelConfig::compact(d.edge_features.cols()).with_classes(56);
        cfg.n_neighbors = 5;
        let mut rng = seeded_rng(3);
        let model = TgnModel::new(cfg.clone(), &mut rng);
        let mut mem = MemoryState::new(d.graph.num_nodes(), cfg.d_mem, cfg.mail_dim());
        let res = evaluate(&model, &cfg, &d, &csr, &mut mem, None, 0..128, 32, 1, 9);
        assert!((0.0..=1.0).contains(&res.metric));
        assert_eq!(res.events, 128);
    }
}
