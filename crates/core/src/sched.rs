//! The `i × j × k` training schedule (paper §3.2, Figure 7).
//!
//! Each of the `k` memory groups owns one node-memory replica and
//! `i·j` trainers. Within a group:
//!
//! * **Memory parallelism** (Fig 7(c), reordered): group `g` trains
//!   the global batch sequence *cyclically*, starting at its own time
//!   segment — every group sweeps all of the data on its own replica,
//!   so replicas never synchronize; the only cross-group traffic is
//!   the weight all-reduce.
//! * **Epoch parallelism** (Fig 7(b), reordered): the group's `j`
//!   sub-groups take turns acquiring batches. Sub-group `jg` owns the
//!   batches at steps `s ≡ jg (mod j)`; it reads the memory and writes
//!   the update at its ownership step (pass 0) and re-trains the same
//!   positives with fresh negative sets for the next `j−1` steps
//!   without touching memory — "each trainer works on the same
//!   positive samples for n consecutive iterations".
//! * **Mini-batch parallelism** (Fig 7(a)): the `i` lanes of a
//!   sub-group split each global batch chronologically.
//!
//! The node memory resets whenever a group's cyclic order wraps past
//! the end of the data (= that group's epoch boundary), which the
//! memory daemon realizes through its epoch-length schedule.

use crate::config::ParallelConfig;
use disttgl_graph::batching;
use std::ops::Range;

/// What one sub-group does at one step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepPlan {
    /// Nothing this step (pipeline warm-up/drain); the trainer still
    /// participates in the gradient all-reduce with zero gradients.
    Idle,
    /// Acquire a new global batch: read memory, train pass 0, write.
    Acquire {
        /// Event range of the global batch.
        batch: Range<usize>,
        /// Index used to pick the negative group.
        epoch_equiv: usize,
    },
    /// Re-train the previously acquired batch with negative set `pass`.
    Continue {
        /// Pass number in `1..j`.
        pass: usize,
        /// Index used to pick the negative group.
        epoch_equiv: usize,
    },
}

/// The complete schedule of one memory group.
#[derive(Clone, Debug)]
pub struct GroupSchedule {
    /// Global batches in this group's cyclic order (first entry is the
    /// start of the group's own time segment).
    cyclic: Vec<Range<usize>>,
    /// Batches until this group's order wraps to batch 0 (`B − offset`).
    until_wrap: usize,
    i: usize,
    j: usize,
    k: usize,
    group: usize,
    sweeps: usize,
}

impl GroupSchedule {
    /// Builds the schedule for `group ∈ 0..k` over `train_range` with
    /// the given global batch size.
    pub fn new(
        train_range: Range<usize>,
        global_batch: usize,
        parallel: &ParallelConfig,
        group: usize,
        sweeps: usize,
    ) -> Self {
        assert!(group < parallel.k, "group out of range");
        assert!(!train_range.is_empty(), "empty training range");
        let batches = batching::chronological_batches(train_range, global_batch);
        let b = batches.len();
        let segments = batching::time_segments(b, parallel.k);
        // With more groups than batches a segment can be empty with
        // start == b; that group's cyclic order coincides with offset 0.
        let offset = segments[group].start % b.max(1);
        let mut cyclic = Vec::with_capacity(b);
        cyclic.extend_from_slice(&batches[offset..]);
        cyclic.extend_from_slice(&batches[..offset]);
        Self {
            cyclic,
            until_wrap: b - offset,
            i: parallel.i,
            j: parallel.j,
            k: parallel.k,
            group,
            sweeps,
        }
    }

    /// Number of global batches `B`.
    pub fn num_batches(&self) -> usize {
        self.cyclic.len()
    }

    /// Steps every trainer executes: `sweeps·B` ownership steps plus
    /// `j − 1` drain steps for the last acquisitions.
    pub fn total_steps(&self) -> usize {
        self.sweeps * self.cyclic.len() + (self.j - 1)
    }

    /// Memory-daemon turn count (ownership steps only).
    pub fn total_turns(&self) -> usize {
        self.sweeps * self.cyclic.len()
    }

    /// Epoch lengths for the memory daemon: the state must reset
    /// whenever the cyclic order wraps past the end of the data, so
    /// the first epoch is the partial `B − offset`, then `sweeps − 1`
    /// full passes, then the trailing partial (groups at offset 0 get
    /// exactly `sweeps` full epochs).
    pub fn daemon_epoch_lengths(&self) -> Vec<usize> {
        let b = self.cyclic.len();
        let mut lens = Vec::new();
        if self.until_wrap == b {
            lens.extend(std::iter::repeat_n(b, self.sweeps));
        } else {
            lens.push(self.until_wrap);
            lens.extend(std::iter::repeat_n(b, self.sweeps.saturating_sub(1)));
            lens.push(b - self.until_wrap);
        }
        lens.retain(|&l| l > 0);
        debug_assert_eq!(lens.iter().sum::<usize>(), self.total_turns());
        lens
    }

    /// The plan for sub-group `jg` at step `s`.
    pub fn plan(&self, jg: usize, s: usize) -> StepPlan {
        assert!(jg < self.j, "sub-group out of range");
        let b = self.cyclic.len();
        let pass = (s + self.j - (jg % self.j)) % self.j;
        let own = match s.checked_sub(pass) {
            Some(own) if own < self.sweeps * b => own,
            _ => return StepPlan::Idle,
        };
        // Ownership steps rotate sub-groups: owner of step s is s % j.
        debug_assert_eq!(own % self.j, jg % self.j);
        let sweep = own / b;
        let epoch_equiv = sweep * self.j * self.k + self.group * self.j + pass;
        if pass == 0 {
            StepPlan::Acquire {
                batch: self.cyclic[own % b].clone(),
                epoch_equiv,
            }
        } else {
            StepPlan::Continue { pass, epoch_equiv }
        }
    }

    /// The local slice of a global batch handled by lane `ig`.
    pub fn local_slice(&self, batch: &Range<usize>, ig: usize) -> Range<usize> {
        batching::split_local(batch.clone(), self.i)[ig].clone()
    }

    /// Annotates a speculative memory read: the sub-groups whose
    /// serialized writes **can land between** a gather posted during
    /// step `posted_at` and its use at the Acquire turn of step
    /// `acquire` (exclusive), in daemon turn order.
    ///
    /// Conservative on the posting side: a speculation posted while
    /// step `posted_at` runs can still precede that turn's writes in
    /// the daemon's serialized order (write application lags write
    /// posting), so turn `posted_at` itself is included. If the result
    /// is empty, no write can intervene and the delta of that
    /// speculation is provably empty; otherwise only rows written by
    /// these sub-groups' batches (or an epoch reset) can need repair.
    pub fn intervening_writers(&self, posted_at: usize, acquire: usize) -> Vec<usize> {
        let turns = self.sweeps * self.cyclic.len();
        let mut owners = Vec::new();
        for s in posted_at..acquire.min(turns) {
            let owner = s % self.j;
            if !owners.contains(&owner) {
                owners.push(owner);
            }
        }
        owners
    }

    /// Events each trainer lane touches per full run (bookkeeping for
    /// throughput accounting): every batch is trained `j` times by its
    /// owning sub-group.
    pub fn events_traversed_per_group(&self) -> usize {
        let per_sweep: usize = self.cyclic.iter().map(|r| r.len()).sum();
        per_sweep * self.j * self.sweeps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(b_events: usize, bs: usize, i: usize, j: usize, k: usize, g: usize) -> GroupSchedule {
        GroupSchedule::new(0..b_events, bs, &ParallelConfig::new(i, j, k), g, 2)
    }

    #[test]
    fn single_gpu_schedule_is_sequential() {
        let s = sched(100, 10, 1, 1, 1, 0);
        assert_eq!(s.num_batches(), 10);
        assert_eq!(s.total_steps(), 20);
        for step in 0..20 {
            match s.plan(0, step) {
                StepPlan::Acquire { batch, .. } => {
                    assert_eq!(batch.start, (step % 10) * 10);
                }
                other => panic!("unexpected {:?}", other),
            }
        }
    }

    #[test]
    fn epoch_parallel_passes_rotate() {
        // j = 3: sub-group 1 acquires at steps 1, 4, 7, … and continues
        // for two steps after each acquisition.
        let s = sched(90, 10, 1, 3, 1, 0);
        assert_eq!(s.plan(1, 0), StepPlan::Idle);
        assert!(matches!(s.plan(1, 1), StepPlan::Acquire { .. }));
        assert!(matches!(s.plan(1, 2), StepPlan::Continue { pass: 1, .. }));
        assert!(matches!(s.plan(1, 3), StepPlan::Continue { pass: 2, .. }));
        assert!(matches!(s.plan(1, 4), StepPlan::Acquire { .. }));
        // Exactly one sub-group acquires at each ownership step.
        for step in 0..s.total_turns() {
            let acquires = (0..3)
                .filter(|&jg| matches!(s.plan(jg, step), StepPlan::Acquire { .. }))
                .count();
            assert_eq!(acquires, 1, "step {}", step);
        }
    }

    #[test]
    fn acquire_owner_matches_daemon_turn_order() {
        // The daemon serves sub-group (turn % j); the schedule must
        // agree or the serialized protocol deadlocks.
        let s = sched(80, 10, 2, 2, 1, 0);
        for step in 0..s.total_turns() {
            let owner = step % 2;
            assert!(
                matches!(s.plan(owner, step), StepPlan::Acquire { .. }),
                "step {} owner {}",
                step,
                owner
            );
            assert!(!matches!(s.plan(1 - owner, step), StepPlan::Acquire { .. }));
        }
    }

    #[test]
    fn memory_groups_rotate_segments() {
        // k = 2 over 10 batches: group 1 starts at batch 5.
        let s0 = sched(100, 10, 1, 1, 2, 0);
        let s1 = sched(100, 10, 1, 1, 2, 1);
        match (s0.plan(0, 0), s1.plan(0, 0)) {
            (StepPlan::Acquire { batch: b0, .. }, StepPlan::Acquire { batch: b1, .. }) => {
                assert_eq!(b0.start, 0);
                assert_eq!(b1.start, 50);
            }
            other => panic!("unexpected {:?}", other),
        }
        // Both groups cover every batch each sweep.
        let covered: Vec<usize> = (0..10)
            .map(|step| match s1.plan(0, step) {
                StepPlan::Acquire { batch, .. } => batch.start,
                _ => unreachable!(),
            })
            .collect();
        let mut sorted = covered.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).map(|b| b * 10).collect::<Vec<_>>());
        // And in cyclic (wrapped) order.
        assert_eq!(covered, vec![50, 60, 70, 80, 90, 0, 10, 20, 30, 40]);
    }

    #[test]
    fn daemon_epochs_reset_at_wrap() {
        let s = sched(100, 10, 1, 1, 4, 1);
        // Offset for group 1 of 4 over 10 batches: segments are
        // [0..3), [3..6)… wait — balanced: 3,3,2,2 → offset 3.
        assert_eq!(s.daemon_epoch_lengths(), vec![7, 10, 3]);
        let s0 = sched(100, 10, 1, 1, 4, 0);
        assert_eq!(s0.daemon_epoch_lengths(), vec![10, 10]);
        // All variants serve the same total turn count.
        assert_eq!(
            s.daemon_epoch_lengths().iter().sum::<usize>(),
            s0.daemon_epoch_lengths().iter().sum::<usize>()
        );
    }

    #[test]
    fn local_slices_partition_each_batch() {
        let s = sched(100, 20, 4, 1, 1, 0);
        if let StepPlan::Acquire { batch, .. } = s.plan(0, 0) {
            let slices: Vec<_> = (0..4).map(|ig| s.local_slice(&batch, ig)).collect();
            let total: usize = slices.iter().map(|r| r.len()).sum();
            assert_eq!(total, batch.len());
            for w in slices.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
        } else {
            panic!("expected acquire");
        }
    }

    #[test]
    fn epoch_equiv_distinct_across_passes_and_groups() {
        let mut seen = std::collections::HashSet::new();
        for g in 0..2 {
            let s = sched(40, 10, 1, 2, 2, g);
            for jg in 0..2 {
                for step in 0..s.total_steps() {
                    match s.plan(jg, step) {
                        StepPlan::Acquire { epoch_equiv, .. }
                        | StepPlan::Continue { epoch_equiv, .. } => {
                            seen.insert((g, jg, step, epoch_equiv));
                        }
                        StepPlan::Idle => {}
                    }
                }
            }
        }
        // Smoke: epoch_equiv values span more than one value.
        let values: std::collections::HashSet<usize> = seen.iter().map(|&(_, _, _, e)| e).collect();
        assert!(values.len() >= 4, "epoch_equiv too uniform: {:?}", values);
    }

    #[test]
    fn intervening_writers_cover_the_speculation_window() {
        // j = 3: a speculation posted at step 1 for the Acquire at
        // step 4 races turns 1, 2, 3 → owners {1, 2, 0}.
        let s = sched(90, 10, 1, 3, 1, 0);
        assert_eq!(s.intervening_writers(1, 4), vec![1, 2, 0]);
        // Adjacent acquires (j = 1): only the posting turn's own write
        // can race.
        let s1 = sched(90, 10, 1, 1, 1, 0);
        assert_eq!(s1.intervening_writers(3, 4), vec![0]);
        // Past the last ownership turn nothing can write.
        let turns = s1.total_turns();
        assert!(s1.intervening_writers(turns, turns + 1).is_empty());
        // Empty window.
        assert!(s.intervening_writers(4, 4).is_empty());
    }

    #[test]
    fn traversal_accounting() {
        let s = sched(100, 10, 1, 2, 1, 0);
        // 2 sweeps × (100 events × j=2) = 400.
        assert_eq!(s.events_traversed_per_group(), 400);
    }
}
