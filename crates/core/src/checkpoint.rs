//! Crash-safe checkpoint/restore.
//!
//! # Crash-consistency contract
//!
//! DistTGL's serialized memory epochs give the training loop natural
//! crash-consistent boundaries: at an epoch (sequential) or schedule
//! unit (distributed — one step boundary `S·b`, where every memory
//! daemon has served exactly `S·b` turns) the model replicas, optimizer
//! state, and every node-memory replica are simultaneously quiescent.
//! Checkpoints are taken **only** at those boundaries, so a restored
//! run replays the remaining schedule **bit-identically** to an
//! uninterrupted one: same losses, same validation metrics, same final
//! memory digests (`tests/checkpoint_equivalence.rs` pins this).
//!
//! What makes bit-identical resume possible without serializing live
//! RNG state: every random stream in the trainer is derived afresh
//! from `cfg.seed` xor a per-use constant (weights, static-memory
//! pretrain, negative store, per-epoch eval), so the checkpoint only
//! needs the *seed* — which travels inside the config fingerprint —
//! plus the consumed-work counters (`units_done`, `iteration`).
//!
//! # Format
//!
//! A fixed header followed by one checksummed payload:
//!
//! ```text
//! magic    8 B   b"DTGLCKP1"
//! version  4 B   u32 LE (currently 1)
//! kind     1 B   1 = training, 2 = serving
//! length   8 B   u64 LE payload byte count
//! digest   8 B   u64 LE FNV-1a over the payload bytes
//! payload  ...   kind-specific sections (see below)
//! ```
//!
//! Payload sections reuse the length-prefixed binary frames of
//! `disttgl_data::persist` (the dataset-snapshot plumbing), so every
//! decode path reports *which* section was truncated. `f64` values are
//! stored as `to_bits()` u64 — exact round-trip, no text formatting.
//!
//! # Failure semantics
//!
//! Everything here returns [`CheckpointError`]; nothing panics on
//! malformed input. A truncated, bit-flipped, or wrong-magic file is
//! **recoverable** ([`CheckpointError::Io`] / [`CheckpointError::Corrupt`]
//! — fall back to an older checkpoint or a fresh start). Resuming
//! under a different configuration is **operator error**
//! ([`CheckpointError::Mismatch`] — the trajectory would silently
//! diverge, so it is refused). Writes go through a `.tmp` +
//! atomic-rename dance: a crash mid-save never clobbers the previous
//! checkpoint.

use crate::config::{ModelConfig, TrainConfig};
use crate::metrics::ConvergencePoint;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use disttgl_data::persist::{
    get_f32s, get_matrix, get_u64s, put_f32s, put_matrix, put_u64s, truncated,
};
use disttgl_graph::TCsrEntry;
use disttgl_mem::MemoryState;
use disttgl_tensor::Matrix;
use std::fmt;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// File magic: "DisTGL CheckPoint v1".
pub const MAGIC: &[u8; 8] = b"DTGLCKP1";
/// Current format version.
pub const VERSION: u32 = 1;

const KIND_TRAIN: u8 = 1;
const KIND_SERVE: u8 = 2;

/// Why a checkpoint could not be saved, loaded, or applied.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem-level failure (also wraps section truncation from
    /// the frame decoders).
    Io(io::Error),
    /// The bytes are not a valid checkpoint: bad magic, unsupported
    /// version, wrong kind, digest mismatch, or an internally
    /// inconsistent payload. Recoverable — try an older checkpoint.
    Corrupt(String),
    /// The checkpoint is valid but belongs to a different run
    /// configuration; resuming would silently diverge, so it is
    /// refused. Operator error, not data loss.
    Mismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O: {e}"),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint/config mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// FNV-1a over the payload — the same cheap content digest the memory
/// checksums use; catches torn writes and bit rot, not adversaries.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// The JSON fingerprint stored in training checkpoints: model shapes +
/// the trajectory-shaping subset of the train config (see
/// [`TrainConfig::fingerprint_config`]).
pub fn fingerprint(model_cfg: &ModelConfig, cfg: &TrainConfig) -> String {
    let model = serde_json::to_string(model_cfg).expect("model config serializes");
    let train = serde_json::to_string(&cfg.fingerprint_config()).expect("train config serializes");
    format!("{model}\n{train}")
}

/// Checkpoint filename for the checkpoint taken after `units_done`
/// completed units inside `dir`.
pub fn checkpoint_path(dir: &str, units_done: usize) -> PathBuf {
    Path::new(dir).join(format!("ckpt_{units_done:04}.bin"))
}

// ---------------------------------------------------------------------
// Shared sub-frames.

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u64_le(s.len() as u64);
    buf.put_slice(s.as_bytes());
}

fn get_string(buf: &mut Bytes, what: &str) -> io::Result<String> {
    if buf.remaining() < 8 {
        return Err(truncated(what));
    }
    let n = buf.get_u64_le() as usize;
    if buf.remaining() < n {
        return Err(truncated(what));
    }
    let raw = buf.take_bytes(n).to_vec();
    String::from_utf8(raw)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, format!("{what}: not UTF-8")))
}

fn put_f64(buf: &mut BytesMut, v: f64) {
    buf.put_u64_le(v.to_bits());
}

fn get_f64(buf: &mut Bytes, what: &str) -> io::Result<f64> {
    if buf.remaining() < 8 {
        return Err(truncated(what));
    }
    Ok(f64::from_bits(buf.get_u64_le()))
}

fn get_u64(buf: &mut Bytes, what: &str) -> io::Result<u64> {
    if buf.remaining() < 8 {
        return Err(truncated(what));
    }
    Ok(buf.get_u64_le())
}

/// Serializes one [`MemoryState`] replica: matrices, timestamp
/// vectors, write sequence, per-node versions.
fn put_memory(buf: &mut BytesMut, state: &MemoryState) {
    put_matrix(buf, &state.mem_matrix());
    put_f32s(buf, state.mem_ts_all());
    put_matrix(buf, &state.mail_matrix());
    put_f32s(buf, state.mail_ts_all());
    buf.put_u64_le(state.version());
    put_u64s(buf, state.node_versions());
}

fn get_memory(buf: &mut Bytes) -> Result<MemoryState, CheckpointError> {
    let mem = get_matrix(buf)?;
    let mem_ts = get_f32s(buf, "memory mem_ts")?;
    let mail = get_matrix(buf)?;
    let mail_ts = get_f32s(buf, "memory mail_ts")?;
    let write_seq = get_u64(buf, "memory write_seq")?;
    let node_version = get_u64s(buf, "memory node versions")?;
    let n = mem.rows();
    if mail.rows() != n || mem_ts.len() != n || mail_ts.len() != n || node_version.len() != n {
        return Err(CheckpointError::Corrupt(format!(
            "memory part shapes disagree ({} mem rows, {} mail rows, {} mem_ts, {} mail_ts, {} versions)",
            n,
            mail.rows(),
            mem_ts.len(),
            mail_ts.len(),
            node_version.len()
        )));
    }
    Ok(MemoryState::from_parts(
        mem,
        mem_ts,
        mail,
        mail_ts,
        write_seq,
        node_version,
    ))
}

// ---------------------------------------------------------------------
// Training checkpoints.

/// Everything a crashed training run needs to resume bit-identically.
#[derive(Clone, Debug)]
pub struct TrainCheckpoint {
    /// Config fingerprint (see [`fingerprint`]); resume refuses a
    /// checkpoint whose fingerprint disagrees with the live config.
    pub fingerprint: String,
    /// Completed checkpoint units: single-GPU epochs (sequential) or
    /// schedule units = step-boundary multiples (distributed).
    pub units_done: usize,
    /// Training iterations completed (rank 0's count).
    pub iteration: usize,
    /// Events trained so far (throughput accounting).
    pub events_trained: u64,
    /// Flattened model weights (registration order).
    pub weights: Vec<f32>,
    /// Adam step counter.
    pub adam_t: u64,
    /// Flattened Adam state (first moments, then second moments).
    pub adam_state: Vec<f32>,
    /// Loss history up to the boundary.
    pub loss_history: Vec<f32>,
    /// Convergence points up to the boundary.
    pub convergence: Vec<ConvergencePoint>,
    /// Pre-trained static memory table, when the model uses one —
    /// saved so resume skips the pretrain pass (and stays exact even
    /// if the pretrain recipe evolves across code versions).
    pub static_table: Option<Matrix>,
    /// One captured node-memory replica per memory group (`k` entries;
    /// sequential runs save none — the epoch-start reset makes the
    /// memory derivable).
    pub memories: Vec<MemoryState>,
    /// Per-group daemon resume turn (`start_turn` for
    /// `MemoryDaemon::spawn_with`), parallel to `memories`.
    pub start_turns: Vec<u64>,
}

impl TrainCheckpoint {
    /// Serializes into the framed format and writes via `.tmp` +
    /// rename so a crash mid-save never corrupts an existing file.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        write_framed(path, KIND_TRAIN, &self.payload())
    }

    /// The exact framed bytes [`TrainCheckpoint::save`] persists.
    /// Fault injection uses this to model a torn write: a truncated
    /// prefix of these bytes fails the digest check on load.
    pub fn to_framed_bytes(&self) -> Vec<u8> {
        frame(KIND_TRAIN, &self.payload())
    }

    fn payload(&self) -> BytesMut {
        let mut payload = BytesMut::new();
        put_string(&mut payload, &self.fingerprint);
        payload.put_u64_le(self.units_done as u64);
        payload.put_u64_le(self.iteration as u64);
        payload.put_u64_le(self.events_trained);
        put_f32s(&mut payload, &self.weights);
        payload.put_u64_le(self.adam_t);
        put_f32s(&mut payload, &self.adam_state);
        put_f32s(&mut payload, &self.loss_history);
        payload.put_u64_le(self.convergence.len() as u64);
        for p in &self.convergence {
            payload.put_u64_le(p.iteration as u64);
            put_f64(&mut payload, p.wall_secs);
            put_f64(&mut payload, p.metric);
        }
        match &self.static_table {
            Some(t) => {
                payload.put_u8(1);
                put_matrix(&mut payload, t);
            }
            None => payload.put_u8(0),
        }
        payload.put_u64_le(self.memories.len() as u64);
        for m in &self.memories {
            put_memory(&mut payload, m);
        }
        put_u64s(&mut payload, &self.start_turns);
        payload
    }

    /// Loads and validates a [`TrainCheckpoint::save`] file.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let mut buf = read_framed(path, KIND_TRAIN)?;
        let fingerprint = get_string(&mut buf, "fingerprint")?;
        let units_done = get_u64(&mut buf, "units_done")? as usize;
        let iteration = get_u64(&mut buf, "iteration")? as usize;
        let events_trained = get_u64(&mut buf, "events_trained")?;
        let weights = get_f32s(&mut buf, "weights")?;
        let adam_t = get_u64(&mut buf, "adam_t")?;
        let adam_state = get_f32s(&mut buf, "adam state")?;
        let loss_history = get_f32s(&mut buf, "loss history")?;
        let n_conv = get_u64(&mut buf, "convergence count")? as usize;
        if n_conv > buf.remaining() / 24 {
            return Err(CheckpointError::Corrupt(format!(
                "convergence count {n_conv} exceeds remaining payload"
            )));
        }
        let mut convergence = Vec::with_capacity(n_conv);
        for _ in 0..n_conv {
            convergence.push(ConvergencePoint {
                iteration: get_u64(&mut buf, "convergence iteration")? as usize,
                wall_secs: get_f64(&mut buf, "convergence wall")?,
                metric: get_f64(&mut buf, "convergence metric")?,
            });
        }
        if buf.remaining() < 1 {
            return Err(truncated("static table flag").into());
        }
        let static_table = if buf.get_u8() == 1 {
            Some(get_matrix(&mut buf)?)
        } else {
            None
        };
        let n_mem = get_u64(&mut buf, "memory count")? as usize;
        if n_mem > 4096 {
            return Err(CheckpointError::Corrupt(format!(
                "implausible memory replica count {n_mem}"
            )));
        }
        let mut memories = Vec::with_capacity(n_mem);
        for _ in 0..n_mem {
            memories.push(get_memory(&mut buf)?);
        }
        let start_turns = get_u64s(&mut buf, "daemon start turns")?;
        if start_turns.len() != memories.len() {
            return Err(CheckpointError::Corrupt(format!(
                "{} start turns for {} memory replicas",
                start_turns.len(),
                memories.len()
            )));
        }
        if buf.remaining() != 0 {
            return Err(CheckpointError::Corrupt(format!(
                "{} trailing bytes after payload",
                buf.remaining()
            )));
        }
        Ok(Self {
            fingerprint,
            units_done,
            iteration,
            events_trained,
            weights,
            adam_t,
            adam_state,
            loss_history,
            convergence,
            static_table,
            memories,
            start_turns,
        })
    }

    /// Refuses resume under a configuration whose fingerprint differs.
    pub fn check_fingerprint(
        &self,
        model_cfg: &ModelConfig,
        cfg: &TrainConfig,
    ) -> Result<(), CheckpointError> {
        let live = fingerprint(model_cfg, cfg);
        if self.fingerprint != live {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint was taken under a different configuration\n  saved: {}\n  live:  {}",
                self.fingerprint.replace('\n', " | "),
                live.replace('\n', " | ")
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Serving checkpoints.

/// The mutable state of a `ServeSession`: everything the ingest path
/// has accumulated beyond the constructor inputs. Restore rebuilds the
/// session from the same training artifacts and grafts this back in;
/// queries then answer bit-identically to the pre-crash session.
#[derive(Clone, Debug)]
pub struct ServeCheckpoint {
    /// Model-config fingerprint (serving has no train config).
    pub fingerprint: String,
    /// Live node memory (post all applied ingests).
    pub memory: MemoryState,
    /// Per-node adjacency slices of the dynamic T-CSR.
    pub adj: Vec<Vec<TCsrEntry>>,
    /// Events appended to the adjacency.
    pub num_events: usize,
    /// Stream head (newest appended timestamp; −∞ when empty).
    pub stream_head: f32,
    /// Events ingested through the session (monotone counter).
    pub ingested: u64,
}

impl ServeCheckpoint {
    /// Serializes and writes via `.tmp` + rename.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let mut payload = BytesMut::new();
        put_string(&mut payload, &self.fingerprint);
        put_memory(&mut payload, &self.memory);
        payload.put_u64_le(self.adj.len() as u64);
        for slice in &self.adj {
            payload.put_u64_le(slice.len() as u64);
            for e in slice {
                payload.put_u32_le(e.nbr);
                payload.put_f32_le(e.t);
                payload.put_u32_le(e.eid);
            }
        }
        payload.put_u64_le(self.num_events as u64);
        payload.put_f32_le(self.stream_head);
        payload.put_u64_le(self.ingested);
        write_framed(path, KIND_SERVE, &payload)
    }

    /// Loads and validates a [`ServeCheckpoint::save`] file. The
    /// adjacency invariants (time-sorted slices, entries behind the
    /// stream head, endpoint ranges, entry/event count consistency)
    /// are re-validated by `DynamicTCsr::from_parts` at restore.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let mut buf = read_framed(path, KIND_SERVE)?;
        let fingerprint = get_string(&mut buf, "fingerprint")?;
        let memory = get_memory(&mut buf)?;
        let n_nodes = get_u64(&mut buf, "adjacency node count")? as usize;
        if n_nodes != memory.num_nodes() {
            return Err(CheckpointError::Corrupt(format!(
                "{} adjacency nodes vs {} memory nodes",
                n_nodes,
                memory.num_nodes()
            )));
        }
        let mut adj = Vec::with_capacity(n_nodes);
        for node in 0..n_nodes {
            let len = get_u64(&mut buf, "adjacency slice length")? as usize;
            if buf.remaining() < len * 12 {
                return Err(truncated(&format!("adjacency slice of node {node}")).into());
            }
            let mut slice = Vec::with_capacity(len);
            for _ in 0..len {
                slice.push(TCsrEntry {
                    nbr: buf.get_u32_le(),
                    t: buf.get_f32_le(),
                    eid: buf.get_u32_le(),
                });
            }
            adj.push(slice);
        }
        let num_events = get_u64(&mut buf, "event count")? as usize;
        if buf.remaining() < 4 {
            return Err(truncated("stream head").into());
        }
        let stream_head = buf.get_f32_le();
        let ingested = get_u64(&mut buf, "ingested counter")?;
        if buf.remaining() != 0 {
            return Err(CheckpointError::Corrupt(format!(
                "{} trailing bytes after payload",
                buf.remaining()
            )));
        }
        Ok(Self {
            fingerprint,
            memory,
            adj,
            num_events,
            stream_head,
            ingested,
        })
    }
}

// ---------------------------------------------------------------------
// Framing.

fn frame(kind: u8, payload: &BytesMut) -> Vec<u8> {
    let mut out = Vec::with_capacity(29 + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn write_framed(path: &Path, kind: u8, payload: &BytesMut) -> Result<(), CheckpointError> {
    let out = frame(kind, payload);
    // Atomic publish: write the sibling .tmp, then rename over the
    // target. A crash at any point leaves either the old file or
    // nothing — never a torn checkpoint under the real name.
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&out)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Parses the frame header and verifies the payload digest, returning
/// `(kind, payload)`.
fn read_any(path: &Path) -> Result<(u8, Bytes), CheckpointError> {
    let mut raw = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut raw)?;
    if raw.len() < 29 {
        return Err(CheckpointError::Corrupt(format!(
            "file too short for a header ({} bytes)",
            raw.len()
        )));
    }
    if &raw[..8] != MAGIC {
        return Err(CheckpointError::Corrupt("bad magic".into()));
    }
    let version = u32::from_le_bytes(raw[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(CheckpointError::Corrupt(format!(
            "unsupported format version {version} (this build reads {VERSION})"
        )));
    }
    let kind = raw[12];
    let len = u64::from_le_bytes(raw[13..21].try_into().unwrap()) as usize;
    let digest = u64::from_le_bytes(raw[21..29].try_into().unwrap());
    let payload = &raw[29..];
    if payload.len() != len {
        return Err(CheckpointError::Corrupt(format!(
            "payload length {} does not match header {}",
            payload.len(),
            len
        )));
    }
    if fnv1a(payload) != digest {
        return Err(CheckpointError::Corrupt(
            "payload digest mismatch (torn write or bit rot)".into(),
        ));
    }
    Ok((kind, Bytes::from(payload.to_vec())))
}

/// Structural validation without decoding the payload: magic, version,
/// length, and digest must all check out. Returns the kind byte
/// (1 = training, 2 = serving). `core::recover::CheckpointStore` uses
/// this to skip torn/corrupt files cheaply during its newest-first
/// scan and retention GC.
pub fn validate_file(path: &Path) -> Result<u8, CheckpointError> {
    read_any(path).map(|(kind, _)| kind)
}

fn read_framed(path: &Path, want_kind: u8) -> Result<Bytes, CheckpointError> {
    let (kind, payload) = read_any(path)?;
    if kind != want_kind {
        return Err(CheckpointError::Corrupt(format!(
            "wrong checkpoint kind {kind} (wanted {want_kind})"
        )));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use disttgl_mem::MemoryWrite;

    fn sample_memory(seed: u32) -> MemoryState {
        let mut m = MemoryState::new(6, 3, 4);
        m.reset();
        for s in 0..3u32 {
            let nodes = vec![(s + seed) % 6, (s + seed + 2) % 6];
            let n = nodes.len();
            m.write(&MemoryWrite {
                nodes,
                mem: Matrix::full(n, 3, s as f32 + 0.5),
                mem_ts: vec![s as f32; n],
                mail: Matrix::full(n, 4, s as f32 * 2.0),
                mail_ts: vec![s as f32 + 0.25; n],
            });
        }
        m
    }

    fn sample_train_ckpt(dir: &Path) -> (TrainCheckpoint, PathBuf) {
        let ckpt = TrainCheckpoint {
            fingerprint: "model\ntrain".into(),
            units_done: 3,
            iteration: 42,
            events_trained: 4200,
            weights: vec![0.25, -1.5, 3.0],
            adam_t: 42,
            adam_state: vec![0.1; 6],
            loss_history: vec![0.9, 0.7, 0.5],
            convergence: vec![ConvergencePoint {
                iteration: 14,
                wall_secs: 1.25,
                metric: 0.61,
            }],
            static_table: Some(Matrix::full(6, 2, 0.125)),
            memories: vec![sample_memory(0), sample_memory(1)],
            start_turns: vec![12, 12],
        };
        let path = dir.join("ckpt.bin");
        (ckpt, path)
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("disttgl_ckpt_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn train_checkpoint_roundtrips_exactly() {
        let dir = tmpdir("train_rt");
        let (ckpt, path) = sample_train_ckpt(&dir);
        ckpt.save(&path).unwrap();
        let back = TrainCheckpoint::load(&path).unwrap();
        assert_eq!(back.fingerprint, ckpt.fingerprint);
        assert_eq!(back.units_done, 3);
        assert_eq!(back.iteration, 42);
        assert_eq!(back.events_trained, 4200);
        assert_eq!(back.weights, ckpt.weights);
        assert_eq!(back.adam_t, 42);
        assert_eq!(back.adam_state, ckpt.adam_state);
        assert_eq!(back.loss_history, ckpt.loss_history);
        assert_eq!(back.convergence.len(), 1);
        assert_eq!(back.convergence[0].wall_secs, 1.25);
        assert_eq!(back.convergence[0].metric, 0.61);
        assert_eq!(back.static_table, ckpt.static_table);
        assert_eq!(back.memories.len(), 2);
        for (a, b) in back.memories.iter().zip(&ckpt.memories) {
            assert_eq!(a.checksum(), b.checksum());
            assert_eq!(a.node_versions(), b.node_versions());
            assert_eq!(a.version(), b.version());
        }
        assert_eq!(back.start_turns, vec![12, 12]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_is_detected_not_panicked() {
        let dir = tmpdir("corrupt");
        let (ckpt, path) = sample_train_ckpt(&dir);
        ckpt.save(&path).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Bit flip in the payload → digest mismatch.
        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        assert!(matches!(
            TrainCheckpoint::load(&path),
            Err(CheckpointError::Corrupt(_))
        ));

        // Truncation → length mismatch.
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert!(matches!(
            TrainCheckpoint::load(&path),
            Err(CheckpointError::Corrupt(_))
        ));

        // Wrong magic.
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        std::fs::write(&path, &bad_magic).unwrap();
        assert!(matches!(
            TrainCheckpoint::load(&path),
            Err(CheckpointError::Corrupt(_))
        ));

        // Wrong kind: a serve loader refuses a train checkpoint.
        std::fs::write(&path, &good).unwrap();
        assert!(matches!(
            ServeCheckpoint::load(&path),
            Err(CheckpointError::Corrupt(_))
        ));

        // Missing file → Io.
        assert!(matches!(
            TrainCheckpoint::load(&dir.join("absent.bin")),
            Err(CheckpointError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_checkpoint_roundtrips_including_empty_stream() {
        let dir = tmpdir("serve_rt");
        let path = dir.join("serve.bin");
        let ckpt = ServeCheckpoint {
            fingerprint: "model".into(),
            memory: sample_memory(2),
            adj: vec![
                vec![TCsrEntry {
                    nbr: 1,
                    t: 0.5,
                    eid: 0,
                }],
                vec![TCsrEntry {
                    nbr: 0,
                    t: 0.5,
                    eid: 0,
                }],
                Vec::new(),
                Vec::new(),
                Vec::new(),
                Vec::new(),
            ],
            num_events: 1,
            stream_head: 0.5,
            ingested: 7,
        };
        ckpt.save(&path).unwrap();
        let back = ServeCheckpoint::load(&path).unwrap();
        assert_eq!(back.adj, ckpt.adj);
        assert_eq!(back.num_events, 1);
        assert_eq!(back.stream_head, 0.5);
        assert_eq!(back.ingested, 7);
        assert_eq!(back.memory.checksum(), ckpt.memory.checksum());

        // −∞ stream head (virgin session) survives the f32 framing.
        let empty = ServeCheckpoint {
            fingerprint: "model".into(),
            memory: sample_memory(0),
            adj: vec![Vec::new(); 6],
            num_events: 0,
            stream_head: f32::NEG_INFINITY,
            ingested: 0,
        };
        empty.save(&path).unwrap();
        let back = ServeCheckpoint::load(&path).unwrap();
        assert_eq!(back.stream_head, f32::NEG_INFINITY);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_mismatch_is_refused() {
        let mc = ModelConfig::compact(4);
        let cfg = TrainConfig::new(crate::config::ParallelConfig::single());
        let ckpt = TrainCheckpoint {
            fingerprint: fingerprint(&mc, &cfg),
            units_done: 0,
            iteration: 0,
            events_trained: 0,
            weights: Vec::new(),
            adam_t: 0,
            adam_state: Vec::new(),
            loss_history: Vec::new(),
            convergence: Vec::new(),
            static_table: None,
            memories: Vec::new(),
            start_turns: Vec::new(),
        };
        assert!(ckpt.check_fingerprint(&mc, &cfg).is_ok());
        // Checkpoint bookkeeping fields do NOT fingerprint.
        let relocated = cfg.clone().checkpoint_every(5, "/elsewhere");
        assert!(ckpt.check_fingerprint(&mc, &relocated).is_ok());
        // Trajectory-shaping fields do.
        let mut different = cfg.clone();
        different.seed ^= 1;
        assert!(matches!(
            ckpt.check_fingerprint(&mc, &different),
            Err(CheckpointError::Mismatch(_))
        ));
    }
}
