//! The task-agnostic **inference engine**: the gradient-free forward
//! walk of the model — memory gather → folded GRU update → `L`-layer
//! temporal attention → decoder — extracted out of the trainers so
//! offline evaluation (`crate::evaluate` / `crate::replay_memory`) and
//! the online serving plane (`crate::serve`) run the **same
//! arithmetic** through one code path.
//!
//! # Scratch reuse
//!
//! An [`InferenceEngine`] owns the same per-part scratch arena the
//! trainer uses ([`crate::model`]'s `StepScratch`), so steady-state
//! inference allocates nothing for the memory-update stage: evaluation
//! walks a split with one engine, a serving session holds one engine
//! for its whole lifetime. [`TgnModel::infer_step`] remains as a
//! convenience that spins up a throwaway engine per call.
//!
//! # Bit-identity contracts
//!
//! * Per-row purity: every stage (GRU, static combine, Φ, attention
//!   over a root's own slots, decoder) is row-independent, so a root's
//!   embedding — and a candidate pair's score — does not depend on
//!   what else shares the micro-batch. Co-batching evaluation parts or
//!   serving requests re-orders the arithmetic, never changes it.
//! * [`InferenceEngine::memory_write`] is the memory-update half
//!   alone: the write-back reads nothing but the roots' `ŝ` rows, so
//!   skipping the attention stack (and the neighbor sampling feeding
//!   it) leaves the produced [`MemoryWrite`] bit-identical to a full
//!   [`InferenceEngine::infer_step`] over the same events —
//!   `replay_memory` and `ServeSession::ingest` advance node memory on
//!   this fast path. `tests/serve_equivalence.rs` pins both contracts.

use crate::batch::{edge_feature_rows, NegativePart, PositivePart, ReadoutIndex, ReadoutView};
use crate::model::{pos_roots, pos_times, Head, StepScratch, TgnModel};
use crate::static_mem::StaticMemory;
use crate::MemoryAccess;
use crate::StepOutput;
use disttgl_data::Dataset;
use disttgl_graph::{Event, NeighborBlock};
use disttgl_mem::MemoryWrite;
use disttgl_nn::loss;
use disttgl_tensor::Matrix;

/// Borrowed view of one embed input: a root set, its multi-hop
/// frontier, and the (possibly folded) memory readout covering the
/// union of all frontiers — exactly the per-part layout of
/// `core::batch`, without requiring a [`PositivePart`] wrapper (the
/// serving plane assembles these from raw requests).
#[derive(Clone, Copy)]
pub struct PartRef<'a> {
    /// Root nodes (`R` rows).
    pub roots: &'a [u32],
    /// Query time of each root.
    pub times: &'a [f32],
    /// Per-hop supporting-neighbor blocks (`hops.len() == n_layers`).
    pub hops: &'a [NeighborBlock],
    /// Memory/mail rows of the part (per-occurrence, or one row per
    /// unique node when `uniq` is set).
    pub readout: &'a ReadoutView,
    /// Unique-node index of the folded readout.
    pub uniq: Option<&'a ReadoutIndex>,
    /// Per-hop edge features of the neighbor slots.
    pub nbr_feats: &'a [Matrix],
}

impl<'a> PartRef<'a> {
    /// Views a prepared positive part.
    pub fn positive(pos: &'a PositivePart) -> Self {
        Self {
            roots: pos_roots(pos),
            times: pos_times(pos),
            hops: &pos.hops,
            readout: &pos.readout,
            uniq: pos.uniq.as_ref(),
            nbr_feats: &pos.nbr_feats,
        }
    }

    /// Views a prepared negative part.
    pub fn negative(neg: &'a NegativePart) -> Self {
        Self {
            roots: &neg.negs,
            times: &neg.times,
            hops: &neg.hops,
            readout: &neg.readout,
            uniq: neg.uniq.as_ref(),
            nbr_feats: &neg.nbr_feats,
        }
    }
}

/// One embedded root set: the attention-stack outputs plus the updated
/// memory rows the write-back consumes.
pub struct PartEmbedding {
    /// Root embeddings, `R × d_emb`.
    pub emb: Matrix,
    /// Updated memory `ŝ` of the roots, `R × d_mem`.
    pub s_hat_roots: Matrix,
    /// Effective memory-update timestamp of each root.
    pub root_ts: Vec<f32>,
}

/// Reusable gradient-free forward walker (see the module docs).
#[derive(Default)]
pub struct InferenceEngine {
    scratch: StepScratch,
}

impl InferenceEngine {
    /// A fresh engine (scratch grows to the working set on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Embeds one root set through the full stack (memory update +
    /// `L`-layer attention). Gradient-free; reuses the engine's
    /// positive-part scratch.
    pub fn embed_part(
        &mut self,
        model: &TgnModel,
        part: PartRef<'_>,
        static_mem: Option<&StaticMemory>,
    ) -> PartEmbedding {
        let (emb, s_hat_roots, root_ts, _) = model.embed(
            part.roots,
            part.times,
            part.hops,
            part.readout,
            part.uniq,
            part.nbr_feats,
            static_mem,
            &mut self.scratch.pos,
        );
        PartEmbedding {
            emb,
            s_hat_roots,
            root_ts,
        }
    }

    /// Scores pre-computed embedding pairs through the model's decoder
    /// head, row for row: the link predictor's logit (`n × 1`) or the
    /// classifier's per-class logits (`n × num_classes`).
    pub fn score_pairs(&self, model: &TgnModel, src_emb: &Matrix, dst_emb: &Matrix) -> Matrix {
        match model.head() {
            Head::Link(pred) => pred.infer(&model.params, src_emb, dst_emb),
            Head::Class(clf) => clf.infer(&model.params, src_emb, dst_emb),
        }
    }

    /// The **memory-update half** of a batch, without sampling or
    /// attention: reads one folded row per unique root from `mem`,
    /// runs the GRU update, and builds the delayed-update write-back
    /// for the events `(srcs[e], dsts[e], times[e])` with edge
    /// features `event_feats` — bit-identical to the `MemoryWrite` a
    /// full forward over the same events produces (see module docs).
    /// The caller decides when to apply the returned write.
    pub fn memory_write(
        &mut self,
        model: &TgnModel,
        srcs: &[u32],
        dsts: &[u32],
        times: &[f32],
        event_feats: &Matrix,
        mem: &mut dyn MemoryAccess,
    ) -> MemoryWrite {
        debug_assert_eq!(srcs.len(), dsts.len());
        debug_assert_eq!(srcs.len(), times.len());
        let mut roots = Vec::with_capacity(2 * srcs.len());
        roots.extend_from_slice(srcs);
        roots.extend_from_slice(dsts);
        let uniq = ReadoutIndex::build(&roots);
        let readout = ReadoutView::whole(mem.read(&uniq.unique_nodes));
        let (s_hat_roots, root_ts) =
            model.fold_memory_update(&readout, &uniq, roots.len(), &mut self.scratch.pos);
        model.build_write(srcs, dsts, times, event_feats, &s_hat_roots, &root_ts)
    }

    /// [`InferenceEngine::memory_write`] for a raw chronological event
    /// slab: decomposes the events, gathers their edge features from
    /// the dataset's table (by `eid`), and returns the write together
    /// with the number of unique memory rows the update gathered —
    /// the one code path behind both `replay_memory` and
    /// `ServeSession::ingest`.
    pub fn memory_write_events(
        &mut self,
        model: &TgnModel,
        dataset: &Dataset,
        events: &[Event],
        mem: &mut dyn MemoryAccess,
    ) -> (MemoryWrite, usize) {
        let srcs: Vec<u32> = events.iter().map(|e| e.src).collect();
        let dsts: Vec<u32> = events.iter().map(|e| e.dst).collect();
        let times: Vec<f32> = events.iter().map(|e| e.t).collect();
        let eids: Vec<u32> = events.iter().map(|e| e.eid).collect();
        let feats = edge_feature_rows(dataset, &eids);
        let mut roots = Vec::with_capacity(2 * srcs.len());
        roots.extend_from_slice(&srcs);
        roots.extend_from_slice(&dsts);
        let rows_read = ReadoutIndex::build(&roots).num_unique();
        let write = self.memory_write(model, &srcs, &dsts, &times, &feats, mem);
        (write, rows_read)
    }

    /// One gradient-free step over a prepared batch: embeddings,
    /// decoder scores, loss, and the batch's `MemoryWrite` (returned,
    /// not applied). This is the arithmetic of the historical
    /// `TgnModel::infer_step`, now scratch-reusing across calls.
    /// Link-prediction scoring needs `neg`; passing `None` on a link
    /// model yields the memory-maintenance pass (write only, no
    /// scores).
    pub fn infer_step(
        &mut self,
        model: &TgnModel,
        pos: &PositivePart,
        neg: Option<&NegativePart>,
        static_mem: Option<&StaticMemory>,
    ) -> StepOutput {
        let b = pos.len();
        let scratch = &mut self.scratch;
        let (pos_emb, s_hat_roots, root_ts, _) = model.embed(
            pos_roots(pos),
            pos_times(pos),
            &pos.hops,
            &pos.readout,
            pos.uniq.as_ref(),
            &pos.nbr_feats,
            static_mem,
            &mut scratch.pos,
        );
        let write = model.build_write(
            &pos.srcs,
            &pos.dsts,
            &pos.times,
            &pos.event_feats,
            &s_hat_roots,
            &root_ts,
        );
        let src_emb = pos_emb.slice_rows(0, b);
        let dst_emb = pos_emb.slice_rows(b, 2 * b);

        match (model.head(), neg) {
            (Head::Link(pred), Some(neg)) => {
                let kneg = neg.negs.len() / b;
                let (neg_emb, _, _, _) = model.embed(
                    &neg.negs,
                    &neg.times,
                    &neg.hops,
                    &neg.readout,
                    neg.uniq.as_ref(),
                    &neg.nbr_feats,
                    static_mem,
                    &mut scratch.neg,
                );
                let pos_logits = pred.infer(&model.params, &src_emb, &dst_emb);
                let src_rep = TgnModel::repeat_rows_for(&src_emb, kneg);
                let neg_logits = pred.infer(&model.params, &src_rep, &neg_emb);
                let ones = Matrix::full(b, 1, 1.0);
                let zeros = Matrix::zeros(neg_logits.rows(), 1);
                let (lp, _) = loss::bce_with_logits(&pos_logits, &ones);
                let (ln, _) = loss::bce_with_logits(&neg_logits, &zeros);
                StepOutput {
                    loss: 0.5 * (lp + ln),
                    pos_scores: pos_logits.into_vec(),
                    neg_scores: neg_logits.into_vec(),
                    write,
                }
            }
            (Head::Class(clf), _) => {
                let logits = clf.infer(&model.params, &src_emb, &dst_emb);
                let l = pos
                    .labels
                    .as_ref()
                    .map(|lab| loss::multi_label_bce(&logits, lab).0)
                    .unwrap_or(0.0);
                StepOutput {
                    loss: l,
                    pos_scores: logits.into_vec(),
                    neg_scores: Vec::new(),
                    write,
                }
            }
            (Head::Link(_), None) => {
                // Memory-maintenance pass (no scoring): used when
                // replaying a stream purely to advance node memory.
                StepOutput {
                    loss: 0.0,
                    pos_scores: Vec::new(),
                    neg_scores: Vec::new(),
                    write,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchPreparer;
    use crate::config::ModelConfig;
    use disttgl_data::{generators, NegativeStore};
    use disttgl_graph::TCsr;
    use disttgl_mem::MemoryState;
    use disttgl_tensor::seeded_rng;

    fn setup() -> (disttgl_data::Dataset, TCsr, ModelConfig) {
        let d = generators::wikipedia(0.005, 11);
        let csr = TCsr::build(&d.graph);
        let mut cfg = ModelConfig::compact(d.edge_features.cols());
        cfg.n_neighbors = 5;
        (d, csr, cfg)
    }

    /// A reused engine must match the throwaway-scratch path bit for
    /// bit across consecutive, differently-shaped batches.
    #[test]
    fn reused_scratch_matches_fresh_scratch() {
        let (d, csr, cfg) = setup();
        let mut rng = seeded_rng(1);
        let model = TgnModel::new(cfg.clone(), &mut rng);
        let prep = BatchPreparer::new(&d, &csr, &cfg);
        let store = NegativeStore::generate(&d.graph, 128, 1, 1, 3);
        let mut mem = MemoryState::new(d.graph.num_nodes(), cfg.d_mem, cfg.mail_dim());
        let mut engine = InferenceEngine::new();
        for range in [0..48usize, 48..64, 64..128] {
            let negs = store.slice(0, range.clone());
            let batch = prep.prepare(range, &[negs], 1, &mut mem);
            let reused = engine.infer_step(&model, &batch.pos, Some(&batch.negs[0]), None);
            let fresh = model.infer_step(&batch.pos, Some(&batch.negs[0]), None);
            assert_eq!(reused.loss, fresh.loss);
            assert_eq!(reused.pos_scores, fresh.pos_scores);
            assert_eq!(reused.neg_scores, fresh.neg_scores);
            assert_eq!(reused.write.mem, fresh.write.mem);
            assert_eq!(reused.write.mail, fresh.write.mail);
            mem.write(&reused.write);
        }
    }

    /// The sampling-free memory write must equal the full forward's
    /// write on every batch of a replayed stream.
    #[test]
    fn memory_write_matches_full_forward_write() {
        let (d, csr, cfg) = setup();
        let mut rng = seeded_rng(2);
        let model = TgnModel::new(cfg.clone(), &mut rng);
        let prep = BatchPreparer::new(&d, &csr, &cfg);
        let mut mem = MemoryState::new(d.graph.num_nodes(), cfg.d_mem, cfg.mail_dim());
        let mut engine = InferenceEngine::new();
        for range in [0..40usize, 40..80, 80..120] {
            let batch = prep.prepare(range.clone(), &[], 1, &mut mem);
            let full = model.infer_step(&batch.pos, None, None);
            let events = &d.graph.events()[range];
            let srcs: Vec<u32> = events.iter().map(|e| e.src).collect();
            let dsts: Vec<u32> = events.iter().map(|e| e.dst).collect();
            let times: Vec<f32> = events.iter().map(|e| e.t).collect();
            let fast = engine.memory_write(
                &model,
                &srcs,
                &dsts,
                &times,
                &batch.pos.event_feats,
                &mut mem,
            );
            assert_eq!(fast.nodes, full.write.nodes);
            assert_eq!(fast.mem, full.write.mem);
            assert_eq!(fast.mail, full.write.mail);
            assert_eq!(fast.mem_ts, full.write.mem_ts);
            assert_eq!(fast.mail_ts, full.write.mail_ts);
            mem.write(&fast);
        }
    }

    /// `embed_part` + `score_pairs` decompose `infer_step`'s link
    /// scoring exactly (the serving plane's query path).
    #[test]
    fn embed_and_score_match_infer_step() {
        let (d, csr, cfg) = setup();
        let mut rng = seeded_rng(3);
        let model = TgnModel::new(cfg.clone(), &mut rng);
        let prep = BatchPreparer::new(&d, &csr, &cfg);
        let mut mem = MemoryState::new(d.graph.num_nodes(), cfg.d_mem, cfg.mail_dim());
        let store = NegativeStore::generate(&d.graph, 32, 1, 1, 5);
        let batch = prep.prepare(0..32, &[store.slice(0, 0..32)], 1, &mut mem);
        let oracle = model.infer_step(&batch.pos, Some(&batch.negs[0]), None);

        let mut engine = InferenceEngine::new();
        let pe = engine.embed_part(&model, PartRef::positive(&batch.pos), None);
        let b = batch.pos.len();
        let scores = engine.score_pairs(
            &model,
            &pe.emb.slice_rows(0, b),
            &pe.emb.slice_rows(b, 2 * b),
        );
        assert_eq!(scores.into_vec(), oracle.pos_scores);
        let ne = engine.embed_part(&model, PartRef::negative(&batch.negs[0]), None);
        let src_rep = TgnModel::repeat_rows_for(&pe.emb.slice_rows(0, b), 1);
        let neg_scores = engine.score_pairs(&model, &src_rep, &ne.emb);
        assert_eq!(neg_scores.into_vec(), oracle.neg_scores);
    }
}
