//! Property-based tests: the memory daemon must be observationally
//! equivalent to a sequential replay of the same serialized request
//! order, for arbitrary write contents and (i, j) group shapes.

use disttgl_mem::{MemoryDaemon, MemoryState, MemoryWrite, VersionedReadout};
use disttgl_tensor::Matrix;
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Step {
    node: u32,
    value: f32,
    ts: f32,
}

fn steps(n: usize, nodes: u32) -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        (0..nodes, -10.0f32..10.0, 0.0f32..100.0).prop_map(|(node, value, ts)| Step {
            node,
            value,
            ts,
        }),
        n..=n,
    )
}

fn write_of(step: &Step, d_mem: usize, mail_dim: usize) -> MemoryWrite {
    MemoryWrite {
        nodes: vec![step.node],
        mem: Matrix::full(1, d_mem, step.value),
        mem_ts: vec![step.ts],
        mail: Matrix::full(1, mail_dim, step.value * 2.0),
        mail_ts: vec![step.ts],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Single-rank daemon ≡ plain MemoryState for any request stream.
    #[test]
    fn daemon_equals_sequential_replay(script in steps(8, 6)) {
        let (d_mem, mail_dim, nodes) = (3usize, 4usize, 6usize);
        let daemon = MemoryDaemon::spawn(
            MemoryState::new(nodes, d_mem, mail_dim), 1, 1, script.len(), 1,
        );
        let client = daemon.client(0);
        let mut reference = MemoryState::new(nodes, d_mem, mail_dim);
        for step in &script {
            let got = client.read(&[step.node]);
            let want = reference.read(&[step.node]);
            prop_assert_eq!(got.mem, want.mem);
            prop_assert_eq!(got.mail_ts, want.mail_ts);
            client.write(write_of(step, d_mem, mail_dim));
            reference.write(&write_of(step, d_mem, mail_dim));
        }
        let (state, stats) = daemon.join();
        let all: Vec<u32> = (0..nodes as u32).collect();
        prop_assert_eq!(state.read(&all).mem, reference.read(&all).mem);
        prop_assert_eq!(stats.writes_served as usize, script.len());
    }

    /// j-subgroup daemon with threads ≡ sequential replay in the
    /// serialized turn order, for arbitrary write contents.
    #[test]
    fn multi_subgroup_daemon_equals_turn_order_replay(script in steps(12, 8), j in 2usize..4) {
        let (d_mem, mail_dim, nodes) = (2usize, 3usize, 8usize);
        let turns = script.len();
        let daemon = MemoryDaemon::spawn(
            MemoryState::new(nodes, d_mem, mail_dim), 1, j, turns, 1,
        );
        // Rank r serves turns t ≡ r (mod j); thread per rank.
        let mut handles = Vec::new();
        for rank in 0..j {
            let client = daemon.client(rank);
            let mine: Vec<(usize, Step)> = script
                .iter()
                .cloned()
                .enumerate()
                .filter(|(t, _)| t % j == rank)
                .collect();
            handles.push(std::thread::spawn(move || {
                for (_, step) in mine {
                    let _ = client.read(&[step.node]);
                    client.write(write_of(&step, 2, 3));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (state, _) = daemon.join();

        let mut reference = MemoryState::new(nodes, d_mem, mail_dim);
        for step in &script {
            let _ = reference.read(&[step.node]);
            reference.write(&write_of(step, d_mem, mail_dim));
        }
        let all: Vec<u32> = (0..nodes as u32).collect();
        prop_assert_eq!(state.read(&all).mem, reference.read(&all).mem);
        prop_assert_eq!(state.read(&all).mail, reference.read(&all).mail);
    }

    /// Reads never tear: a read returns, for every node, a (mem, mail)
    /// pair written by one single write (here: value and 2·value).
    #[test]
    fn reads_are_atomic_pairs(script in steps(10, 4)) {
        let (d_mem, mail_dim, nodes) = (2usize, 2usize, 4usize);
        let daemon = MemoryDaemon::spawn(
            MemoryState::new(nodes, d_mem, mail_dim), 1, 1, script.len(), 1,
        );
        let client = daemon.client(0);
        for step in &script {
            let r = client.read(&[step.node]);
            let mem_v = r.mem.get(0, 0);
            let mail_v = r.mail.get(0, 0);
            prop_assert!((mail_v - 2.0 * mem_v).abs() < 1e-5,
                "torn read: mem {} mail {}", mem_v, mail_v);
            client.write(write_of(step, d_mem, mail_dim));
        }
        let _ = daemon.join();
    }

    /// Speculative read + delta + patch ≡ the serialized read it
    /// replaces, for arbitrary write scripts and read sets — the
    /// version-vector contract, exercised through the daemon protocol
    /// (speculations pinned pre-write for a maximal staleness window).
    #[test]
    fn speculation_plus_delta_equals_serialized_read(
        script in steps(10, 6),
        read_set in proptest::collection::vec(0u32..6, 1..5),
    ) {
        let (d_mem, mail_dim, nodes) = (2usize, 3usize, 6usize);
        let daemon = MemoryDaemon::spawn(
            MemoryState::new(nodes, d_mem, mail_dim), 1, 1, script.len(), 1,
        );
        let client = daemon.client(0);
        let mut reference = MemoryState::new(nodes, d_mem, mail_dim);
        reference.reset(); // mirror the daemon's epoch-start reset
        let mut tagged: Option<VersionedReadout> = None;
        for step in &script {
            match tagged.take() {
                None => { let _ = client.read(&read_set); }
                Some(tagged) => {
                    let d = client.read_delta(&read_set, &tagged.versions);
                    let mut patched = tagged.readout;
                    d.apply(&mut patched);
                    let want = reference.read(&read_set);
                    prop_assert_eq!(patched.mem, want.mem);
                    prop_assert_eq!(patched.mail, want.mail);
                    prop_assert_eq!(patched.mem_ts, want.mem_ts);
                    prop_assert_eq!(patched.mail_ts, want.mail_ts);
                }
            }
            // Speculate for the next turn, collected before this
            // turn's write posts (guaranteed stale window).
            client.speculate_read(&read_set, VersionedReadout::default());
            tagged = Some(client.take_speculation());
            client.write(write_of(step, d_mem, mail_dim));
            reference.write(&write_of(step, d_mem, mail_dim));
        }
        // The final collected speculation is simply dropped unused.
        let (state, stats) = daemon.join();
        let all: Vec<u32> = (0..nodes as u32).collect();
        prop_assert_eq!(state.read(&all).mem, reference.read(&all).mem);
        prop_assert_eq!(stats.delta_reads_served as usize, script.len() - 1);
    }

    /// Epoch resets zero the state between epochs for any script.
    #[test]
    fn epoch_resets_between_epochs(script in steps(4, 4)) {
        let (d_mem, mail_dim) = (2usize, 2usize);
        let daemon = MemoryDaemon::spawn(
            MemoryState::new(4, d_mem, mail_dim), 1, 1, script.len(), 2,
        );
        let client = daemon.client(0);
        for epoch in 0..2 {
            for (t, step) in script.iter().enumerate() {
                let r = client.read(&[step.node]);
                if t == 0 || script[..t].iter().all(|s| s.node != step.node) {
                    // First touch of the node this epoch must read zero.
                    prop_assert_eq!(r.mem.get(0, 0), 0.0, "epoch {} step {}", epoch, t);
                }
                client.write(write_of(step, d_mem, mail_dim));
            }
        }
        let _ = daemon.join();
    }
}
