//! # disttgl-mem
//!
//! The node-memory subsystem of DistTGL (paper §3.3).
//!
//! M-TGNN training keeps two per-node auxiliary stores that must be
//! read and written in strict chronological order:
//!
//! * **node memory** `s_v` — the GRU hidden state (plus its last-update
//!   timestamp, needed for Δt in the attention);
//! * **cached mails** `m_v` — the raw message of each node's most
//!   recent event, applied *one batch late* to avoid the information
//!   leak (the "reversed computation order" of §2.1).
//!
//! [`MemoryState`] is the plain synchronous store (what the TGN
//! baseline uses). [`MemoryDaemon`] reproduces the paper's Algorithm 1:
//! a dedicated thread owns the store and serves read/write requests
//! from an `i × j` trainer group through shared buffers guarded by
//! atomic status words, executing them in the serialized order
//! `(R₀..Rᵢ₋₁)(W₀..Wᵢ₋₁)(Rᵢ..)(Wᵢ..)…` — one sub-group of `i` trainers
//! at a time, cycling through the `j` epoch-parallel sub-groups. This
//! replaces an expensive cross-process lock with single-writer
//! polling, and lets mini-batch preparation overlap GPU (here: math)
//! compute.
//!
//! Note: the paper's Algorithm 1 pseudo-code iterates `r ∈ [rank,
//! rank+j)`; the worked access sequence in §3.3 groups requests by the
//! mini-batch-parallel sub-group of size `i`. We follow the access
//! sequence (sub-groups of `i`), which is the only reading consistent
//! with the `(R0R1)(W0W1)(R2R3)(W2W3)` example for `i×j = 2×2`.
//!
//! Both stores are **write-tracked**: every applied [`MemoryWrite`]
//! (and epoch reset) stamps a monotone version onto the touched nodes,
//! so a reader holding the version vector of an earlier gather can ask
//! for exactly the rows rewritten since ([`MemoryState::delta_since`],
//! [`MemoryClient::read_delta`]). The daemon uses this to serve
//! **speculative out-of-turn reads** while it would otherwise idle —
//! the speculative read → delta → patch lifecycle documented in the
//! `daemon` module docs — which lets distributed trainers overlap
//! the serialized phase-2 gather with compute without changing any
//! training result.

mod daemon;
mod state;

pub use daemon::{DaemonError, DaemonOptions, DaemonStats, MemoryClient, MemoryDaemon};
pub use state::{
    MemoryDelta, MemoryReadout, MemoryState, MemoryWrite, RepairOutcome, VersionedReadout,
};
