//! The memory daemon of Algorithm 1, grown into a **versioned memory
//! service**.
//!
//! One daemon thread owns the write-tracked [`MemoryState`] of an
//! `i × j` trainer group and serves all serialized reads/writes in the
//! order
//!
//! ```text
//! (R₀…Rᵢ₋₁)(W₀…Wᵢ₋₁)(Rᵢ…R₂ᵢ₋₁)(Wᵢ…W₂ᵢ₋₁) …
//! ```
//!
//! cycling through the `j` epoch-parallel sub-groups, `i` ranks at a
//! time. Requests travel through per-rank shared buffers guarded by an
//! atomic status word (the paper's `read_status` / `write_status`
//! arrays); the daemon and trainers spin on the status words instead of
//! taking a cross-process lock — "instead of implementing an expensive
//! cross-process lock mechanism, we launch an additional memory daemon
//! process" (§3.3).
//!
//! # The speculative read → delta → patch lifecycle
//!
//! The serialized order makes the node-memory gather the one stage a
//! trainer cannot pipeline by itself: its Acquire-turn read must
//! observe every write of every earlier turn. The versioned service
//! splits that read into an early, cheap-to-repair form:
//!
//! 1. **Speculative read** ([`MemoryClient::speculate_read`] /
//!    [`MemoryClient::take_speculation`]): the moment a lane knows its
//!    next batch's unique-node list (phase-1 prefetch), it posts an
//!    *out-of-turn* gather. The daemon serves it whenever it is
//!    otherwise spinning for the current turn's requests, so the bulk
//!    data movement overlaps trainer compute. The response is a
//!    [`VersionedReadout`]: rows plus the per-node write versions they
//!    were read at.
//! 2. **Delta** ([`MemoryClient::read_delta`]): at its Acquire turn the
//!    lane takes its serialized read slot with the tagged version
//!    vector instead of a full request. The daemon answers with the
//!    [`MemoryDelta`] — exactly the rows rewritten since the
//!    speculative gather (writes of intervening turns, or an epoch
//!    reset, which stamps every node).
//! 3. **Patch** ([`MemoryDelta::apply`]): the lane overwrites the
//!    stale rows in its gathered block. The result is bit-identical to
//!    a full serialized read in the same slot, because rows outside
//!    the delta were — by the version contract — not written between
//!    the two points in the daemon's single-threaded order.
//!
//! The contract is exact (not heuristic): the daemon applies all
//! mutations single-threaded, every mutation bumps the state's write
//! sequence and stamps the touched nodes, and both the speculative
//! gather and the delta are computed atomically with respect to that
//! order. Speculation therefore never changes training results — only
//! *when* the bytes move (`tests/daemon_overlap_equivalence.rs` pins
//! this end to end).
//!
//! Orderings: a requester fills the buffer under its mutex, then
//! publishes with a `Release` store; the daemon observes with an
//! `Acquire` load before locking the buffer (and vice versa for
//! responses), so buffer contents are always synchronized-with the
//! status transition that announces them.

use crate::state::{
    MemoryDelta, MemoryReadout, MemoryState, MemoryWrite, RepairOutcome, VersionedReadout,
};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

const IDLE: u8 = 0;
const REQUESTED: u8 = 1;
const READY: u8 = 2;

/// Typed failure of a daemon request — the structured form of what
/// used to be a client-side panic. `Shutdown` means the daemon
/// terminated (or was told to) before the request completed; `Timeout`
/// means the client's configured deadline elapsed first (a wedged
/// schedule — some other rank stopped taking its turns). Both poison
/// the issuing client: the request may still be parked in the shared
/// slot, so every later request on that client fails fast with the
/// same error instead of racing the slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DaemonError {
    /// The daemon shut down before answering.
    Shutdown,
    /// The client's deadline elapsed before the daemon answered.
    Timeout,
}

impl std::fmt::Display for DaemonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DaemonError::Shutdown => write!(f, "shut down"),
            DaemonError::Timeout => write!(f, "timed out"),
        }
    }
}

impl std::error::Error for DaemonError {}

/// Aggregate daemon counters (Fig 2(b)-style accounting and the
/// Table 1 synchronization-volume measurements).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DaemonStats {
    /// Logical node-memory + mail rows served to *serialized* read
    /// requests. A delta or bounded-staleness read counts its full
    /// request length here (it logically serves the same read), so
    /// this figure is invariant under speculation on/off *and* under
    /// the staleness bound; the bytes that actually moved at the turn
    /// are `delta_rows_sent`.
    pub rows_read: u64,
    /// Rows applied from write requests.
    pub rows_written: u64,
    /// Serialized read turns served (full, versioned, or delta).
    pub reads_served: u64,
    /// Write requests served.
    pub writes_served: u64,
    /// Out-of-turn speculative reads served.
    pub spec_reads_served: u64,
    /// Rows gathered by speculative reads (off the critical path).
    pub spec_rows_read: u64,
    /// Serialized delta reads served.
    pub delta_reads_served: u64,
    /// Rows actually shipped by delta reads — the stale rows the
    /// trainers patched. `delta_rows_sent / spec_rows_read` is the
    /// measured stale fraction of the speculative protocol.
    pub delta_rows_sent: u64,
    /// Nanoseconds the daemon spent actively serving (excludes waiting).
    pub serve_nanos: u64,
    /// Bounded-staleness repair turns served (the relaxed-mode
    /// counterpart of `delta_reads_served`; every bounded turn also
    /// counts there, since it serves the same serialized read slot).
    pub bounded_reads_served: u64,
    /// Stale rows *admitted* within the staleness bound — repairs
    /// skipped. `delta_rows_sent` remains the repairs actually paid.
    pub stale_rows_admitted: u64,
    /// Sum of version lags over admitted rows (mean lag =
    /// `stale_lag_sum / stale_rows_admitted`).
    pub stale_lag_sum: u64,
    /// Largest version lag ever admitted — the run's realized
    /// staleness, always ≤ the configured bound.
    pub stale_lag_max: u64,
    /// Modeled wire bytes of the row payloads that actually moved —
    /// rows shipped by full/versioned/speculative reads, rows patched
    /// by delta/repair turns, and rows applied from writes, each at
    /// the store's element width (2 bytes/elem quantized, 4 exact)
    /// plus the per-row timestamp pair. This is the Table 1 traffic
    /// figure the `quantized_memory` flag halves.
    pub payload_bytes: u64,
}

/// A serialized read-slot request.
enum ReadRequest {
    /// Plain gather of the nodes' rows.
    Full(Vec<u32>),
    /// Gather plus the version vector it was read at.
    Versioned(Vec<u32>),
    /// Only the rows rewritten since the tagged versions.
    Delta { nodes: Vec<u32>, versions: Vec<u64> },
    /// Repair the parked response readout in place: overwrite the
    /// rows rewritten since the tagged versions directly in the
    /// requester's buffer (the fused hot path — one copy per stale
    /// row, nothing materialized).
    Repair { nodes: Vec<u32>, versions: Vec<u64> },
    /// Bounded-staleness form of `Repair`: stale rows within `bound`
    /// pending writes keep their tagged value (repair skipped); rows
    /// beyond the bound, or tagged before the last reset, repair
    /// exactly. `bound = 0` is behaviorally identical to `Repair`.
    RepairBounded {
        nodes: Vec<u32>,
        versions: Vec<u64>,
        bound: u64,
    },
}

impl Default for ReadRequest {
    fn default() -> Self {
        Self::Full(Vec::new())
    }
}

/// The matching serialized read-slot response. The `Full` variant also
/// carries the caller's scratch buffer daemon-ward (posted before the
/// request), so steady-state turns never allocate.
enum ReadResponse {
    Full(MemoryReadout),
    Versioned(VersionedReadout),
    Delta(MemoryDelta),
    /// The repaired-in-place readout plus the patched row count.
    Repaired(MemoryReadout, u64),
    /// The bounded-repaired readout plus the admission accounting.
    RepairedBounded(MemoryReadout, RepairOutcome),
}

impl Default for ReadResponse {
    fn default() -> Self {
        Self::Full(MemoryReadout::default())
    }
}

struct Slot {
    read_status: AtomicU8,
    write_status: AtomicU8,
    /// Out-of-turn speculative gather channel.
    spec_status: AtomicU8,
    read_req: Mutex<ReadRequest>,
    read_resp: Mutex<ReadResponse>,
    write_req: Mutex<MemoryWrite>,
    spec_req: Mutex<Vec<u32>>,
    /// Response buffer; the requester parks its scratch here before
    /// posting so the daemon gathers into reused allocations.
    spec_resp: Mutex<VersionedReadout>,
}

impl Slot {
    fn new() -> Self {
        Self {
            read_status: AtomicU8::new(IDLE),
            write_status: AtomicU8::new(IDLE),
            spec_status: AtomicU8::new(IDLE),
            read_req: Mutex::new(ReadRequest::default()),
            read_resp: Mutex::new(ReadResponse::default()),
            write_req: Mutex::new(MemoryWrite::default()),
            spec_req: Mutex::new(Vec::new()),
            spec_resp: Mutex::new(VersionedReadout::default()),
        }
    }
}

struct Shared {
    slots: Vec<Slot>,
    shutdown: AtomicBool,
    rows_read: AtomicU64,
    rows_written: AtomicU64,
    reads_served: AtomicU64,
    writes_served: AtomicU64,
    spec_reads_served: AtomicU64,
    spec_rows_read: AtomicU64,
    delta_reads_served: AtomicU64,
    delta_rows_sent: AtomicU64,
    bounded_reads_served: AtomicU64,
    stale_rows_admitted: AtomicU64,
    stale_lag_sum: AtomicU64,
    stale_lag_max: AtomicU64,
    serve_nanos: AtomicU64,
    payload_bytes: AtomicU64,
    /// Epoch-end snapshot of the state, refreshed before each reset.
    /// The paper evaluates "using the node memory in the first memory
    /// process" after every epoch; the evaluating trainer takes this
    /// copy instead of injecting reads into the serialized schedule.
    snapshot: Mutex<Option<MemoryState>>,
    epochs_done: AtomicU64,
    /// On-demand mid-epoch capture (checkpointing): the requester
    /// parks a target turn count and flips `capture_status` to
    /// REQUESTED; once the daemon has fully served that many turns it
    /// publishes a clone of its live state and flips to READY. Because
    /// the daemon applies every mutation single-threaded in turn
    /// order, the capture is exact — it reflects all writes of all
    /// turns before the target and nothing after. The single status
    /// word (IDLE → REQUESTED → READY → IDLE) sequences both sides.
    capture_status: AtomicU8,
    capture_at_turn: AtomicU64,
    capture: Mutex<Option<MemoryState>>,
}

/// Spin-wait until `cond` is true; fails with [`DaemonError::Shutdown`]
/// if `shutdown` fires first, or [`DaemonError::Timeout`] if `deadline`
/// elapses first (no deadline = wait indefinitely).
fn spin_wait(
    cond: impl Fn() -> bool,
    shutdown: &AtomicBool,
    deadline: Option<std::time::Duration>,
) -> Result<(), DaemonError> {
    let start = deadline.map(|_| std::time::Instant::now());
    let mut spins = 0u32;
    loop {
        if cond() {
            return Ok(());
        }
        if shutdown.load(Ordering::Acquire) {
            return Err(DaemonError::Shutdown);
        }
        if let (Some(limit), Some(t0)) = (deadline, start) {
            if t0.elapsed() >= limit {
                return Err(DaemonError::Timeout);
            }
        }
        spins += 1;
        if spins < 64 {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

/// Handle for one trainer rank to issue memory requests.
///
/// Clone-free by design: exactly one client per rank, matching the
/// paper's one-buffer-per-trainer layout.
///
/// Every blocking method has a `try_` form returning
/// `Result<_, DaemonError>`; the plain forms panic on failure with the
/// historical messages (internal trainers treat a dead daemon as
/// fatal, the fault-injection harness and the serving plane use the
/// `try_` forms). An optional per-client **deadline**
/// ([`MemoryClient::set_deadline`]) bounds every wait, turning a
/// wedged schedule into [`DaemonError::Timeout`] instead of an
/// indefinite spin.
pub struct MemoryClient {
    shared: Arc<Shared>,
    rank: usize,
    deadline: Option<std::time::Duration>,
    /// Once a request fails, the slot may still hold it — fail every
    /// later request fast instead of racing the protocol state.
    poisoned: std::sync::atomic::AtomicU8,
}

const POISON_NONE: u8 = 0;
const POISON_SHUTDOWN: u8 = 1;
const POISON_TIMEOUT: u8 = 2;

impl MemoryClient {
    /// This client's trainer rank within the group.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Bounds every subsequent wait; `None` (the default) waits
    /// indefinitely. On expiry the pending request stays parked and
    /// the client is poisoned — all later requests fail fast.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Duration>) {
        self.deadline = deadline;
    }

    fn check_poison(&self) -> Result<(), DaemonError> {
        match self.poisoned.load(Ordering::Acquire) {
            POISON_SHUTDOWN => Err(DaemonError::Shutdown),
            POISON_TIMEOUT => Err(DaemonError::Timeout),
            _ => Ok(()),
        }
    }

    fn poison(&self, e: DaemonError) -> DaemonError {
        let code = match e {
            DaemonError::Shutdown => POISON_SHUTDOWN,
            DaemonError::Timeout => POISON_TIMEOUT,
        };
        self.poisoned.store(code, Ordering::Release);
        e
    }

    fn wait(&self, cond: impl Fn() -> bool) -> Result<(), DaemonError> {
        spin_wait(cond, &self.shared.shutdown, self.deadline).map_err(|e| self.poison(e))
    }

    /// Posts a serialized read-slot request and blocks for the
    /// response.
    fn try_read_turn(
        &self,
        req: ReadRequest,
        resp_buffer: Option<ReadResponse>,
    ) -> Result<ReadResponse, DaemonError> {
        self.check_poison()?;
        let slot = &self.shared.slots[self.rank];
        // Previous cycle must be fully consumed.
        assert_eq!(
            slot.read_status.load(Ordering::Acquire),
            IDLE,
            "rank {}: overlapping read requests",
            self.rank
        );
        if let Some(buffer) = resp_buffer {
            *slot.read_resp.lock() = buffer;
        }
        *slot.read_req.lock() = req;
        slot.read_status.store(REQUESTED, Ordering::Release);
        self.wait(|| slot.read_status.load(Ordering::Acquire) == READY)?;
        let resp = std::mem::take(&mut *slot.read_resp.lock());
        slot.read_status.store(IDLE, Ordering::Release);
        Ok(resp)
    }

    /// Issues a read for `nodes` and blocks until the daemon serves it
    /// (the paper's trainers overlap this wait with static-data
    /// prefetch; callers here do the same by issuing late).
    ///
    /// # Panics
    /// Panics if the daemon shut down mid-request.
    pub fn read(&self, nodes: &[u32]) -> MemoryReadout {
        let mut out = MemoryReadout::default();
        self.read_into(nodes, &mut out);
        out
    }

    /// Fallible form of [`MemoryClient::read`].
    pub fn try_read(&self, nodes: &[u32]) -> Result<MemoryReadout, DaemonError> {
        let mut out = MemoryReadout::default();
        self.try_read_into(nodes, &mut out)?;
        Ok(out)
    }

    /// [`MemoryClient::read`] gathering into a caller-owned readout:
    /// the scratch travels to the daemon with the request, the gather
    /// lands in its (resized) buffers, and the response hands it back —
    /// steady-state turns allocate nothing.
    pub fn read_into(&self, nodes: &[u32], out: &mut MemoryReadout) {
        self.try_read_into(nodes, out)
            .unwrap_or_else(|e| panic!("memory daemon {e} during read (rank {})", self.rank));
    }

    /// Fallible form of [`MemoryClient::read_into`].
    pub fn try_read_into(&self, nodes: &[u32], out: &mut MemoryReadout) -> Result<(), DaemonError> {
        let buffer = ReadResponse::Full(std::mem::take(out));
        match self.try_read_turn(ReadRequest::Full(nodes.to_vec()), Some(buffer))? {
            ReadResponse::Full(r) => {
                *out = r;
                Ok(())
            }
            _ => unreachable!("full read answered with non-full response"),
        }
    }

    /// Serialized read tagged with the version vector it was served at
    /// (see [`VersionedReadout`]).
    ///
    /// # Panics
    /// Panics if the daemon shut down mid-request.
    pub fn read_versioned(&self, nodes: &[u32]) -> VersionedReadout {
        self.try_read_versioned(nodes)
            .unwrap_or_else(|e| panic!("memory daemon {e} during read (rank {})", self.rank))
    }

    /// Fallible form of [`MemoryClient::read_versioned`].
    pub fn try_read_versioned(&self, nodes: &[u32]) -> Result<VersionedReadout, DaemonError> {
        match self.try_read_turn(ReadRequest::Versioned(nodes.to_vec()), None)? {
            ReadResponse::Versioned(r) => Ok(r),
            _ => unreachable!("versioned read answered with wrong response kind"),
        }
    }

    /// Takes the rank's serialized read slot with a *delta* request:
    /// returns only the rows of `nodes` rewritten since the tagged
    /// `versions` (from an earlier [`MemoryClient::take_speculation`]).
    /// Applying the delta onto the speculative readout reproduces the
    /// full serialized read of this turn bit for bit.
    ///
    /// # Panics
    /// Panics on length mismatch or daemon shutdown.
    pub fn read_delta(&self, nodes: &[u32], versions: &[u64]) -> MemoryDelta {
        self.try_read_delta(nodes, versions)
            .unwrap_or_else(|e| panic!("memory daemon {e} during read (rank {})", self.rank))
    }

    /// Fallible form of [`MemoryClient::read_delta`].
    pub fn try_read_delta(
        &self,
        nodes: &[u32],
        versions: &[u64],
    ) -> Result<MemoryDelta, DaemonError> {
        assert_eq!(nodes.len(), versions.len(), "read_delta: version vector");
        let req = ReadRequest::Delta {
            nodes: nodes.to_vec(),
            versions: versions.to_vec(),
        };
        match self.try_read_turn(req, None)? {
            ReadResponse::Delta(d) => Ok(d),
            _ => unreachable!("delta read answered with wrong response kind"),
        }
    }

    /// The fused hot-path form of [`MemoryClient::read_delta`]: ships
    /// the speculatively gathered `readout` back to the daemon, which
    /// repairs the rows rewritten since the tagged `versions` **in
    /// place** (one copy per stale row, no delta materialization) and
    /// hands the buffer back. Returns the patched row count; the
    /// readout then equals this turn's full serialized read bit for
    /// bit.
    ///
    /// # Panics
    /// Panics on length mismatch or daemon shutdown.
    pub fn read_delta_into(
        &self,
        nodes: &[u32],
        versions: &[u64],
        readout: &mut MemoryReadout,
    ) -> usize {
        self.try_read_delta_into(nodes, versions, readout)
            .unwrap_or_else(|e| panic!("memory daemon {e} during read (rank {})", self.rank))
    }

    /// Fallible form of [`MemoryClient::read_delta_into`].
    pub fn try_read_delta_into(
        &self,
        nodes: &[u32],
        versions: &[u64],
        readout: &mut MemoryReadout,
    ) -> Result<usize, DaemonError> {
        assert_eq!(nodes.len(), versions.len(), "read_delta_into: versions");
        let req = ReadRequest::Repair {
            nodes: nodes.to_vec(),
            versions: versions.to_vec(),
        };
        let buffer = ReadResponse::Repaired(std::mem::take(readout), 0);
        match self.try_read_turn(req, Some(buffer))? {
            ReadResponse::Repaired(r, patched) => {
                *readout = r;
                Ok(patched as usize)
            }
            _ => unreachable!("repair read answered with wrong response kind"),
        }
    }

    /// Bounded-staleness form of [`MemoryClient::try_read_delta_into`]
    /// (the `TrainConfig::staleness_bound` hot path): stale rows whose
    /// version lag is within `bound` **keep their speculative value**
    /// — the repair copy is skipped — while rows beyond the bound, or
    /// tagged before an epoch reset, are repaired exactly. The
    /// returned [`RepairOutcome`] names the admitted rows (for
    /// trainer-side staleness compensation) and their lag histogram.
    /// With `bound = 0` no row is ever admitted and the readout is
    /// bit-identical to [`MemoryClient::try_read_delta_into`]'s.
    pub fn try_read_delta_bounded_into(
        &self,
        nodes: &[u32],
        versions: &[u64],
        readout: &mut MemoryReadout,
        bound: u64,
    ) -> Result<RepairOutcome, DaemonError> {
        assert_eq!(nodes.len(), versions.len(), "read_delta_bounded: versions");
        let req = ReadRequest::RepairBounded {
            nodes: nodes.to_vec(),
            versions: versions.to_vec(),
            bound,
        };
        let buffer =
            ReadResponse::RepairedBounded(std::mem::take(readout), RepairOutcome::default());
        match self.try_read_turn(req, Some(buffer))? {
            ReadResponse::RepairedBounded(r, outcome) => {
                *readout = r;
                Ok(outcome)
            }
            _ => unreachable!("bounded repair answered with wrong response kind"),
        }
    }

    /// Posts an **out-of-turn** speculative gather for `nodes` and
    /// returns immediately. The daemon serves it while spinning between
    /// serialized turns, so the data movement overlaps trainer compute;
    /// collect with [`MemoryClient::take_speculation`]. `scratch` is a
    /// reusable response buffer (pass a previously returned
    /// [`VersionedReadout`], or default).
    ///
    /// # Panics
    /// Panics if a speculation is already outstanding.
    pub fn speculate_read(&self, nodes: &[u32], scratch: VersionedReadout) {
        let slot = &self.shared.slots[self.rank];
        assert_eq!(
            slot.spec_status.load(Ordering::Acquire),
            IDLE,
            "rank {}: overlapping speculative reads",
            self.rank
        );
        *slot.spec_resp.lock() = scratch;
        let mut req = slot.spec_req.lock();
        req.clear();
        req.extend_from_slice(nodes);
        drop(req);
        slot.spec_status.store(REQUESTED, Ordering::Release);
    }

    /// True while a speculative read is posted but not yet collected.
    pub fn speculation_pending(&self) -> bool {
        self.shared.slots[self.rank]
            .spec_status
            .load(Ordering::Acquire)
            != IDLE
    }

    /// Blocks for the outstanding speculative read's tagged readout.
    ///
    /// # Panics
    /// Panics if none is outstanding or the daemon shut down.
    pub fn take_speculation(&self) -> VersionedReadout {
        self.try_take_speculation().unwrap_or_else(|e| {
            panic!(
                "memory daemon {e} during speculative read (rank {})",
                self.rank
            )
        })
    }

    /// Fallible form of [`MemoryClient::take_speculation`].
    ///
    /// # Panics
    /// Still panics if no speculation is outstanding — that is caller
    /// protocol misuse, not a runtime fault.
    pub fn try_take_speculation(&self) -> Result<VersionedReadout, DaemonError> {
        self.check_poison()?;
        let slot = &self.shared.slots[self.rank];
        assert_ne!(
            slot.spec_status.load(Ordering::Acquire),
            IDLE,
            "rank {}: no speculative read outstanding",
            self.rank
        );
        self.wait(|| slot.spec_status.load(Ordering::Acquire) == READY)?;
        let resp = std::mem::take(&mut *slot.spec_resp.lock());
        slot.spec_status.store(IDLE, Ordering::Release);
        Ok(resp)
    }

    /// Posts a write and returns once the daemon has accepted the
    /// buffer hand-off (it is applied in serialized order; a subsequent
    /// `read` from any rank of a later turn observes it).
    ///
    /// # Panics
    /// Panics if the daemon shut down mid-request.
    pub fn write(&self, w: MemoryWrite) {
        self.try_write(w)
            .unwrap_or_else(|e| panic!("memory daemon {e} during write (rank {})", self.rank))
    }

    /// Fallible form of [`MemoryClient::write`].
    pub fn try_write(&self, w: MemoryWrite) -> Result<(), DaemonError> {
        self.check_poison()?;
        let slot = &self.shared.slots[self.rank];
        self.wait(|| slot.write_status.load(Ordering::Acquire) == IDLE)?;
        *slot.write_req.lock() = w;
        slot.write_status.store(REQUESTED, Ordering::Release);
        Ok(())
    }
}

/// Spawn-time options beyond the basic `i × j × epoch_lengths`
/// schedule: mid-schedule resume (checkpoint restore) and a
/// deterministic daemon-failure injection point.
#[derive(Clone, Debug, Default)]
pub struct DaemonOptions {
    /// Number of serialized turns already served before the spawned
    /// daemon takes over (checkpoint resume). The daemon skips the
    /// completed prefix of the epoch schedule — *without* resetting at
    /// the start of a partially completed epoch, since the restored
    /// state is already mid-epoch — and continues the global turn
    /// counter (sub-group ownership) from there.
    pub start_turn: usize,
    /// Fault injection: after fully serving this many turns (counted
    /// from the schedule start, including any skipped prefix), the
    /// daemon flags shutdown and exits, exactly as
    /// [`MemoryDaemon::shutdown`] mid-epoch would. Clients observe
    /// [`DaemonError::Shutdown`].
    pub fail_after_turns: Option<u64>,
}

/// The daemon: owns the state, serves an `i × j` group for a fixed
/// number of epochs of `steps_per_epoch` serialized turns each.
pub struct MemoryDaemon {
    shared: Arc<Shared>,
    handle: Option<JoinHandle<MemoryState>>,
    group_size: usize,
}

impl MemoryDaemon {
    /// Spawns the daemon.
    ///
    /// * `i` — mini-batch-parallel sub-group size;
    /// * `j` — number of epoch-parallel sub-groups;
    /// * `steps_per_epoch` — serialized (read, write) turns per epoch;
    ///   turn `s` serves sub-group `s % j`;
    /// * `num_epochs` — the state resets between epochs (node memory
    ///   restarts from zero each epoch, §2.1).
    pub fn spawn(
        state: MemoryState,
        i: usize,
        j: usize,
        steps_per_epoch: usize,
        num_epochs: usize,
    ) -> Self {
        Self::spawn_schedule(state, i, j, vec![steps_per_epoch; num_epochs])
    }

    /// Spawns the daemon with an explicit epoch-length schedule.
    ///
    /// Memory-parallel groups whose cyclic batch order starts mid-
    /// stream reset their replica when the order *wraps* (their true
    /// epoch boundary), making the first and last epochs partial —
    /// `epoch_lengths` encodes that. The sub-group turn owner is the
    /// **global** turn counter mod `j`, continuous across epochs.
    pub fn spawn_schedule(
        state: MemoryState,
        i: usize,
        j: usize,
        epoch_lengths: Vec<usize>,
    ) -> Self {
        Self::spawn_with(state, i, j, epoch_lengths, DaemonOptions::default())
    }

    /// [`MemoryDaemon::spawn_schedule`] with resume/fault options.
    pub fn spawn_with(
        mut state: MemoryState,
        i: usize,
        j: usize,
        epoch_lengths: Vec<usize>,
        opts: DaemonOptions,
    ) -> Self {
        assert!(i >= 1 && j >= 1, "daemon: need i, j >= 1");
        assert!(
            opts.start_turn <= epoch_lengths.iter().sum::<usize>(),
            "daemon: start_turn beyond the schedule"
        );
        let group_size = i * j;
        // Epochs fully served before the resume point count as done so
        // `epoch_snapshot` indexing stays continuous across a restore.
        let mut completed_epochs = 0u64;
        let mut remaining = opts.start_turn;
        for &len in &epoch_lengths {
            if remaining >= len {
                remaining -= len;
                completed_epochs += 1;
            } else {
                break;
            }
        }
        let shared = Arc::new(Shared {
            slots: (0..group_size).map(|_| Slot::new()).collect(),
            shutdown: AtomicBool::new(false),
            rows_read: AtomicU64::new(0),
            rows_written: AtomicU64::new(0),
            reads_served: AtomicU64::new(0),
            writes_served: AtomicU64::new(0),
            spec_reads_served: AtomicU64::new(0),
            spec_rows_read: AtomicU64::new(0),
            delta_reads_served: AtomicU64::new(0),
            delta_rows_sent: AtomicU64::new(0),
            bounded_reads_served: AtomicU64::new(0),
            stale_rows_admitted: AtomicU64::new(0),
            stale_lag_sum: AtomicU64::new(0),
            stale_lag_max: AtomicU64::new(0),
            serve_nanos: AtomicU64::new(0),
            payload_bytes: AtomicU64::new(0),
            snapshot: Mutex::new(None),
            epochs_done: AtomicU64::new(completed_epochs),
            capture_status: AtomicU8::new(IDLE),
            capture_at_turn: AtomicU64::new(0),
            capture: Mutex::new(None),
        });
        let shared2 = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("disttgl-mem-daemon".into())
            .spawn(move || {
                daemon_loop(&mut state, &shared2, i, j, &epoch_lengths, &opts);
                state
            })
            .expect("spawn memory daemon");
        Self {
            shared,
            handle: Some(handle),
            group_size,
        }
    }

    /// Creates the client for `rank` (call once per rank).
    pub fn client(&self, rank: usize) -> MemoryClient {
        assert!(
            rank < self.group_size,
            "rank {} out of group {}",
            rank,
            self.group_size
        );
        MemoryClient {
            shared: Arc::clone(&self.shared),
            rank,
            deadline: None,
            poisoned: std::sync::atomic::AtomicU8::new(POISON_NONE),
        }
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> DaemonStats {
        DaemonStats {
            rows_read: self.shared.rows_read.load(Ordering::Relaxed),
            rows_written: self.shared.rows_written.load(Ordering::Relaxed),
            reads_served: self.shared.reads_served.load(Ordering::Relaxed),
            writes_served: self.shared.writes_served.load(Ordering::Relaxed),
            spec_reads_served: self.shared.spec_reads_served.load(Ordering::Relaxed),
            spec_rows_read: self.shared.spec_rows_read.load(Ordering::Relaxed),
            delta_reads_served: self.shared.delta_reads_served.load(Ordering::Relaxed),
            delta_rows_sent: self.shared.delta_rows_sent.load(Ordering::Relaxed),
            bounded_reads_served: self.shared.bounded_reads_served.load(Ordering::Relaxed),
            stale_rows_admitted: self.shared.stale_rows_admitted.load(Ordering::Relaxed),
            stale_lag_sum: self.shared.stale_lag_sum.load(Ordering::Relaxed),
            stale_lag_max: self.shared.stale_lag_max.load(Ordering::Relaxed),
            serve_nanos: self.shared.serve_nanos.load(Ordering::Relaxed),
            payload_bytes: self.shared.payload_bytes.load(Ordering::Relaxed),
        }
    }

    /// Waits for the daemon to finish its schedule and returns the
    /// final state and counters.
    pub fn join(mut self) -> (MemoryState, DaemonStats) {
        let handle = self.handle.take().expect("already joined");
        let state = handle.join().expect("daemon thread panicked");
        (state, self.stats())
    }

    /// Requests early termination (failure paths / tests). Clients
    /// blocked in `read`/`write` will panic rather than hang.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
    }

    /// Whether the shutdown flag has fired — explicitly via
    /// [`MemoryDaemon::shutdown`] or through an injected
    /// `fail_after_turns` fault. Supervisors use this to tell a dead
    /// replica (must be respawned from a checkpoint capture) from an
    /// idle one.
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// Blocks until the daemon has finished at least `epoch + 1`
    /// epochs, then returns the state snapshot taken at that epoch's
    /// end (before the reset). Callers must not hold up their own
    /// memory schedule while waiting — take the snapshot from a rank
    /// whose group turn is over.
    pub fn epoch_snapshot(&self, epoch: u64) -> MemoryState {
        self.try_epoch_snapshot(epoch)
            .unwrap_or_else(|e| panic!("daemon {e} before epoch {epoch} snapshot"))
    }

    /// Fallible form of [`MemoryDaemon::epoch_snapshot`]; `deadline`
    /// bounds the wait (`None` waits until shutdown).
    pub fn try_epoch_snapshot(&self, epoch: u64) -> Result<MemoryState, DaemonError> {
        spin_wait(
            || self.shared.epochs_done.load(Ordering::Acquire) > epoch,
            &self.shared.shutdown,
            None,
        )?;
        Ok(self
            .shared
            .snapshot
            .lock()
            .clone()
            .expect("snapshot present after epoch end"))
    }

    /// Number of completed epochs.
    pub fn epochs_done(&self) -> u64 {
        self.shared.epochs_done.load(Ordering::Acquire)
    }

    /// Requests an exact state capture once the daemon has fully
    /// served `turn` serialized turns (checkpointing). The requester
    /// must guarantee the daemon *will* reach `turn` and that no turn
    /// beyond it is in flight while waiting — in training that holds
    /// at a step barrier: every rank has completed its turns up to the
    /// boundary and nobody posts the next read until released.
    /// Collect with [`MemoryDaemon::take_capture`]. One capture may be
    /// outstanding at a time.
    ///
    /// Capture semantics: the returned state is "after `turn` complete
    /// turns, *including* any epoch-start reset that immediately
    /// follows" — captures are served only while the daemon idles
    /// ahead of the next read, which for an epoch-boundary `turn` is
    /// already past the reset. This is exactly what resume wants: a
    /// daemon restored from the capture with `start_turn = turn`
    /// re-applies the reset (content-idempotent) and continues
    /// identically. Consequently `turn` must be strictly less than the
    /// schedule's total turns — after the final turn the daemon exits
    /// and the capture would only resolve as a shutdown error.
    pub fn capture_at(&self, turn: u64) {
        assert_eq!(
            self.shared.capture_status.load(Ordering::Acquire),
            IDLE,
            "capture already outstanding"
        );
        self.shared.capture_at_turn.store(turn, Ordering::Relaxed);
        self.shared
            .capture_status
            .store(REQUESTED, Ordering::Release);
    }

    /// Blocks for the capture requested by [`MemoryDaemon::capture_at`]
    /// (`deadline` bounds the wait; `None` waits until shutdown).
    pub fn take_capture(
        &self,
        deadline: Option<std::time::Duration>,
    ) -> Result<MemoryState, DaemonError> {
        spin_wait(
            || self.shared.capture_status.load(Ordering::Acquire) == READY,
            &self.shared.shutdown,
            deadline,
        )?;
        let state = self
            .shared
            .capture
            .lock()
            .take()
            .expect("capture present after ready status");
        self.shared.capture_status.store(IDLE, Ordering::Release);
        Ok(state)
    }
}

impl Drop for MemoryDaemon {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Charges `rows` row payloads to the wire-byte counter at the live
/// store's element width. Delta/repair turns charge only the rows
/// they actually shipped, so this figure (unlike `rows_read`) shrinks
/// under both speculation and quantization.
#[inline]
fn add_payload(shared: &Shared, state: &MemoryState, rows: usize) {
    shared.payload_bytes.fetch_add(
        rows as u64 * state.row_payload_bytes() as u64,
        Ordering::Relaxed,
    );
}

/// Serves every pending out-of-turn speculative read. Called from the
/// daemon's spin loops, so speculations are answered while the daemon
/// would otherwise idle-wait for the current turn's requests — the
/// overlap that hides the gather behind trainer compute. Returns true
/// if anything was served.
fn serve_speculative(state: &MemoryState, shared: &Shared) -> bool {
    let mut served = false;
    for slot in &shared.slots {
        if slot.spec_status.load(Ordering::Acquire) != REQUESTED {
            continue;
        }
        let t0 = std::time::Instant::now();
        let req = slot.spec_req.lock();
        let mut resp = slot.spec_resp.lock();
        state.read_versioned_into(&req, &mut resp);
        shared
            .spec_rows_read
            .fetch_add(req.len() as u64, Ordering::Relaxed);
        add_payload(shared, state, req.len());
        drop(req);
        drop(resp);
        shared.spec_reads_served.fetch_add(1, Ordering::Relaxed);
        shared
            .serve_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        slot.spec_status.store(READY, Ordering::Release);
        served = true;
    }
    served
}

/// Publishes the pending capture if the daemon has fully served the
/// requested number of turns. Must only be called at points where the
/// state holds exactly `served` complete turns — between turns, or
/// while waiting for the next turn's *reads* (never mid-write-batch,
/// when the state would contain a partially applied turn).
fn serve_capture(state: &MemoryState, shared: &Shared, served: u64) {
    if shared.capture_status.load(Ordering::Acquire) == REQUESTED
        && shared.capture_at_turn.load(Ordering::Relaxed) <= served
    {
        *shared.capture.lock() = Some(state.clone());
        shared.capture_status.store(READY, Ordering::Release);
    }
}

/// Daemon-side spin: wait for `cond`, serving speculative reads in the
/// idle gaps (and, when `capture_served` names a consistent turn
/// count, checkpoint captures). Returns false if `shutdown` fires
/// first.
fn spin_serving(
    cond: impl Fn() -> bool,
    state: &MemoryState,
    shared: &Shared,
    capture_served: Option<u64>,
) -> bool {
    let mut spins = 0u32;
    loop {
        if cond() {
            return true;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return false;
        }
        if serve_speculative(state, shared) {
            spins = 0;
            continue;
        }
        if let Some(served) = capture_served {
            serve_capture(state, shared, served);
        }
        spins += 1;
        if spins < 64 {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

fn daemon_loop(
    state: &mut MemoryState,
    shared: &Shared,
    i: usize,
    j: usize,
    epochs: &[usize],
    opts: &DaemonOptions,
) {
    let mut turn = 0usize; // global turn counter — owner is turn % j
    let mut skip = opts.start_turn; // resume: already-served prefix
    for &epoch_len in epochs {
        if skip >= epoch_len {
            // Epoch fully served before the resume point.
            skip -= epoch_len;
            turn += epoch_len;
            continue;
        }
        if skip == 0 {
            // "reset memory and mail" (Algorithm 1). The reset stamps
            // every node's version, so speculations taken across it
            // repair fully. A *partially* resumed epoch skips this —
            // the restored state is already mid-epoch.
            state.reset();
        }
        let todo = epoch_len - skip;
        turn += skip;
        skip = 0;
        for _ in 0..todo {
            let g = turn % j;
            turn += 1;
            let ranks = g * i..(g + 1) * i;
            // Serve the sub-group's reads.
            for r in ranks.clone() {
                let slot = &shared.slots[r];
                if !spin_serving(
                    || slot.read_status.load(Ordering::Acquire) == REQUESTED,
                    state,
                    shared,
                    Some(turn as u64 - 1),
                ) {
                    return;
                }
                let t0 = std::time::Instant::now();
                let req = std::mem::take(&mut *slot.read_req.lock());
                let mut resp = slot.read_resp.lock();
                match req {
                    ReadRequest::Full(nodes) => {
                        // Gather into the requester's parked scratch.
                        match &mut *resp {
                            ReadResponse::Full(buffer) => state.read_into(&nodes, buffer),
                            other => *other = ReadResponse::Full(state.read(&nodes)),
                        }
                        shared
                            .rows_read
                            .fetch_add(nodes.len() as u64, Ordering::Relaxed);
                        add_payload(shared, state, nodes.len());
                    }
                    ReadRequest::Versioned(nodes) => {
                        *resp = ReadResponse::Versioned(state.read_versioned(&nodes));
                        shared
                            .rows_read
                            .fetch_add(nodes.len() as u64, Ordering::Relaxed);
                        add_payload(shared, state, nodes.len());
                    }
                    ReadRequest::Delta { nodes, versions } => {
                        let d = state.delta_since(&nodes, &versions);
                        shared
                            .delta_rows_sent
                            .fetch_add(d.len() as u64, Ordering::Relaxed);
                        add_payload(shared, state, d.len());
                        shared.delta_reads_served.fetch_add(1, Ordering::Relaxed);
                        // Logical rows served — keeps the read-volume
                        // accounting invariant under speculation.
                        shared
                            .rows_read
                            .fetch_add(nodes.len() as u64, Ordering::Relaxed);
                        *resp = ReadResponse::Delta(d);
                    }
                    ReadRequest::Repair { nodes, versions } => {
                        let patched = match &mut *resp {
                            ReadResponse::Repaired(buffer, count) => {
                                let patched = state.repair_since(&nodes, &versions, buffer);
                                *count = patched as u64;
                                patched
                            }
                            _ => unreachable!("repair request without a parked readout"),
                        };
                        shared
                            .delta_rows_sent
                            .fetch_add(patched as u64, Ordering::Relaxed);
                        add_payload(shared, state, patched);
                        shared.delta_reads_served.fetch_add(1, Ordering::Relaxed);
                        shared
                            .rows_read
                            .fetch_add(nodes.len() as u64, Ordering::Relaxed);
                    }
                    ReadRequest::RepairBounded {
                        nodes,
                        versions,
                        bound,
                    } => {
                        let (repaired, admitted, lag_sum, max_lag) = match &mut *resp {
                            ReadResponse::RepairedBounded(buffer, parked) => {
                                *parked = state.repair_lagged(&nodes, &versions, buffer, bound);
                                (
                                    parked.repaired,
                                    parked.admitted_stale,
                                    parked.lag_sum,
                                    parked.max_lag,
                                )
                            }
                            _ => unreachable!("bounded repair without a parked readout"),
                        };
                        // Paid repairs move bytes exactly like Repair;
                        // admitted rows move nothing.
                        shared
                            .delta_rows_sent
                            .fetch_add(repaired as u64, Ordering::Relaxed);
                        add_payload(shared, state, repaired);
                        shared.delta_reads_served.fetch_add(1, Ordering::Relaxed);
                        shared.bounded_reads_served.fetch_add(1, Ordering::Relaxed);
                        shared
                            .stale_rows_admitted
                            .fetch_add(admitted as u64, Ordering::Relaxed);
                        shared.stale_lag_sum.fetch_add(lag_sum, Ordering::Relaxed);
                        shared.stale_lag_max.fetch_max(max_lag, Ordering::Relaxed);
                        // Logical rows served — the speculation/bound
                        // invariance of `rows_read`.
                        shared
                            .rows_read
                            .fetch_add(nodes.len() as u64, Ordering::Relaxed);
                    }
                }
                drop(resp);
                shared.reads_served.fetch_add(1, Ordering::Relaxed);
                shared
                    .serve_nanos
                    .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                slot.read_status.store(READY, Ordering::Release);
            }
            // Serve the sub-group's writes.
            for r in ranks {
                let slot = &shared.slots[r];
                if !spin_serving(
                    || slot.write_status.load(Ordering::Acquire) == REQUESTED,
                    state,
                    shared,
                    // Mid-write-batch the state holds a partial turn —
                    // captures must wait for the turn boundary below.
                    None,
                ) {
                    return;
                }
                let t0 = std::time::Instant::now();
                let w = std::mem::take(&mut *slot.write_req.lock());
                state.write(&w);
                shared
                    .rows_written
                    .fetch_add(w.nodes.len() as u64, Ordering::Relaxed);
                add_payload(shared, state, w.nodes.len());
                shared.writes_served.fetch_add(1, Ordering::Relaxed);
                shared
                    .serve_nanos
                    .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                slot.write_status.store(IDLE, Ordering::Release);
            }
            // NOTE: captures are deliberately NOT served here, even
            // though the state holds exactly `turn` complete turns.
            // Serving at the turn boundary would race the epoch-start
            // reset when `turn` is also an epoch boundary (offset-0
            // groups): the capture content would depend on whether the
            // request arrived before or after the reset. Restricting
            // service to the read-wait spins above makes the semantics
            // deterministic — see [`MemoryDaemon::capture_at`].
            if let Some(n) = opts.fail_after_turns {
                if turn as u64 >= n {
                    // Injected fault: die mid-schedule like a crashed
                    // daemon process. Announce shutdown so clients get
                    // DaemonError::Shutdown instead of hanging.
                    shared.shutdown.store(true, Ordering::Release);
                    return;
                }
            }
        }
        *shared.snapshot.lock() = Some(state.clone());
        shared.epochs_done.fetch_add(1, Ordering::Release);
    }
    // Defensive drain: answer any speculation still pending at schedule
    // end (the trainer protocol only speculates toward turns that
    // exist, but a protocol bug must fail loudly in the client, not
    // hang it here).
    serve_speculative(state, shared);
}

#[cfg(test)]
mod tests {
    use super::*;
    use disttgl_tensor::Matrix;

    fn write_of(nodes: Vec<u32>, d_mem: usize, mail_dim: usize, fill: f32, ts: f32) -> MemoryWrite {
        let n = nodes.len();
        MemoryWrite {
            nodes,
            mem: Matrix::full(n, d_mem, fill),
            mem_ts: vec![ts; n],
            mail: Matrix::full(n, mail_dim, fill),
            mail_ts: vec![ts; n],
        }
    }

    #[test]
    fn single_trainer_roundtrip_matches_plain_state() {
        let daemon = MemoryDaemon::spawn(MemoryState::new(8, 2, 3), 1, 1, 3, 1);
        let client = daemon.client(0);
        let mut reference = MemoryState::new(8, 2, 3);
        reference.reset(); // daemon resets at epoch start

        for step in 0..3u32 {
            let nodes = vec![step, step + 1];
            let got = client.read(&nodes);
            let want = reference.read(&nodes);
            assert_eq!(got.mem, want.mem, "step {}", step);
            assert_eq!(got.mail_ts, want.mail_ts);
            let w = write_of(nodes, 2, 3, step as f32 + 1.0, step as f32);
            reference.write(&w);
            client.write(w);
        }
        let (final_state, stats) = daemon.join();
        assert_eq!(
            final_state.read(&[0, 1, 2, 3]).mem,
            reference.read(&[0, 1, 2, 3]).mem
        );
        assert_eq!(stats.reads_served, 3);
        assert_eq!(stats.writes_served, 3);
        assert_eq!(stats.rows_read, 6);
        assert_eq!(stats.rows_written, 6);
        assert_eq!(stats.spec_reads_served, 0);
        assert_eq!(stats.delta_reads_served, 0);
    }

    #[test]
    fn later_subgroup_sees_earlier_subgroup_write() {
        // i = 1, j = 2: turn order R0 W0 R1 W1. Rank 1's read must
        // observe rank 0's write (serialized ordering).
        let daemon = MemoryDaemon::spawn(MemoryState::new(4, 1, 1), 1, 2, 2, 1);
        let c0 = daemon.client(0);
        let c1 = daemon.client(1);

        let t1 = std::thread::spawn(move || {
            let r = c1.read(&[0]);
            c1.write(write_of(vec![1], 1, 1, 7.0, 2.0));
            r
        });
        // Rank 0 goes first in the serialized order.
        let r0 = c0.read(&[0]);
        assert_eq!(r0.mem.get(0, 0), 0.0);
        c0.write(write_of(vec![0], 1, 1, 5.0, 1.0));

        let r1 = t1.join().unwrap();
        assert_eq!(r1.mem.get(0, 0), 5.0, "rank 1 must see rank 0's write");
        let (state, _) = daemon.join();
        assert_eq!(state.read(&[1]).mem.get(0, 0), 7.0);
    }

    #[test]
    fn two_by_two_group_matches_sequential_reference() {
        // Full i×j = 2×2 schedule over 4 steps, executed by 4 threads,
        // compared against a sequential replay of the same serialized
        // order.
        let (i, j, steps) = (2usize, 2usize, 4usize);
        let daemon = MemoryDaemon::spawn(MemoryState::new(16, 2, 2), i, j, steps, 1);

        let mut handles = Vec::new();
        for rank in 0..i * j {
            let client = daemon.client(rank);
            handles.push(std::thread::spawn(move || {
                let g = rank / i; // sub-group id
                let mut log = Vec::new();
                // Sub-group g owns steps s with s % j == g.
                for s in (g..steps).step_by(j) {
                    let node = (s * i + (rank % i)) as u32;
                    let r = client.read(&[node]);
                    log.push((node, r.mem.get(0, 0)));
                    client.write(write_of(vec![node], 2, 2, (s + 1) as f32, s as f32));
                }
                log
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (state, stats) = daemon.join();
        assert_eq!(stats.reads_served as usize, steps * i);
        assert_eq!(stats.writes_served as usize, steps * i);

        // Sequential reference: same serialized order.
        let mut reference = MemoryState::new(16, 2, 2);
        for s in 0..steps {
            let g = s % j;
            for r in g * i..(g + 1) * i {
                let node = (s * i + (r % i)) as u32;
                let _ = reference.read(&[node]);
                reference.write(&write_of(vec![node], 2, 2, (s + 1) as f32, s as f32));
            }
        }
        let all: Vec<u32> = (0..16).collect();
        assert_eq!(state.read(&all).mem, reference.read(&all).mem);
    }

    #[test]
    fn epoch_boundary_resets_memory() {
        let daemon = MemoryDaemon::spawn(MemoryState::new(4, 1, 1), 1, 1, 1, 2);
        let client = daemon.client(0);
        // Epoch 0.
        let r = client.read(&[0]);
        assert_eq!(r.mem.get(0, 0), 0.0);
        client.write(write_of(vec![0], 1, 1, 42.0, 1.0));
        // Epoch 1: daemon reset must have cleared node 0.
        let r = client.read(&[0]);
        assert_eq!(r.mem.get(0, 0), 0.0, "epoch reset failed");
        client.write(write_of(vec![0], 1, 1, 7.0, 1.0));
        let (state, _) = daemon.join();
        assert_eq!(state.read(&[0]).mem.get(0, 0), 7.0);
    }

    #[test]
    fn epoch_snapshot_captures_pre_reset_state() {
        let daemon = MemoryDaemon::spawn(MemoryState::new(4, 1, 1), 1, 1, 1, 2);
        let client = daemon.client(0);
        let _ = client.read(&[0]);
        client.write(write_of(vec![0], 1, 1, 42.0, 1.0));
        // Snapshot of epoch 0 must contain the write even though the
        // live state is reset for epoch 1.
        let snap = daemon.epoch_snapshot(0);
        assert_eq!(snap.read(&[0]).mem.get(0, 0), 42.0);
        let _ = client.read(&[0]);
        client.write(write_of(vec![0], 1, 1, 7.0, 1.0));
        let snap1 = daemon.epoch_snapshot(1);
        assert_eq!(snap1.read(&[0]).mem.get(0, 0), 7.0);
        let _ = daemon.join();
    }

    #[test]
    fn shutdown_unblocks_daemon() {
        let daemon = MemoryDaemon::spawn(MemoryState::new(4, 1, 1), 1, 1, 10, 1);
        // Never send any request; drop must not hang.
        daemon.shutdown();
        let (_, stats) = daemon.join();
        assert_eq!(stats.reads_served, 0);
    }

    #[test]
    fn serve_time_is_recorded() {
        let daemon = MemoryDaemon::spawn(MemoryState::new(64, 8, 8), 1, 1, 2, 1);
        let client = daemon.client(0);
        let nodes: Vec<u32> = (0..64).collect();
        for s in 0..2 {
            let _ = client.read(&nodes);
            client.write(write_of(nodes.clone(), 8, 8, 1.0, s as f32));
        }
        let (_, stats) = daemon.join();
        assert!(stats.serve_nanos > 0);
        assert_eq!(stats.rows_read, 128);
    }

    /// The full speculative lifecycle on one rank: speculate before the
    /// turn, collect, delta in the read slot, patch — bit-identical to
    /// what a full serialized read would have returned, across writes
    /// *and* an epoch reset.
    #[test]
    fn speculate_delta_patch_equals_serialized_read() {
        let daemon = MemoryDaemon::spawn(MemoryState::new(8, 2, 2), 1, 1, 4, 2);
        let client = daemon.client(0);
        let mut reference = MemoryState::new(8, 2, 2);
        let nodes: Vec<u32> = vec![0, 3, 5, 6];
        let mut tagged: Option<VersionedReadout> = None;

        for epoch in 0..2 {
            reference.reset();
            for s in 0..4u32 {
                match tagged.take() {
                    None => {
                        // Cold start: plain full read.
                        let got = client.read(&nodes);
                        assert_eq!(got.mem, reference.read(&nodes).mem);
                    }
                    Some(tagged) => {
                        // The speculation was collected before the
                        // previous write (and possibly across the epoch
                        // reset) — the delta must repair it to the
                        // serialized answer.
                        let d = client.read_delta(&nodes, &tagged.versions);
                        let mut patched = tagged.readout;
                        d.apply(&mut patched);
                        let want = reference.read(&nodes);
                        assert_eq!(patched.mem, want.mem, "epoch {epoch} step {s}");
                        assert_eq!(patched.mem_ts, want.mem_ts);
                        assert_eq!(patched.mail, want.mail);
                        assert_eq!(patched.mail_ts, want.mail_ts);
                    }
                }
                // Speculate for the next turn and *collect before this
                // turn's write is posted*, pinning a maximal staleness
                // window (the daemon serves the speculation while
                // spinning for our write request).
                if !(epoch == 1 && s == 3) {
                    client.speculate_read(&nodes, VersionedReadout::default());
                    tagged = Some(client.take_speculation());
                }
                let w = write_of(vec![s % 8, (s + 3) % 8], 2, 2, (s + 1) as f32, s as f32);
                reference.write(&w);
                client.write(w);
            }
        }
        let (state, stats) = daemon.join();
        let all: Vec<u32> = (0..8).collect();
        assert_eq!(state.read(&all).mem, reference.read(&all).mem);
        assert_eq!(stats.spec_reads_served, 7);
        assert_eq!(stats.delta_reads_served, 7);
        // Every write hits nodes {s, s+3}, intersecting the read set,
        // and the speculations were provably pre-write.
        assert!(stats.delta_rows_sent > 0, "writes intersected the reads");
        // Logical read volume: 8 turns × 4 rows.
        assert_eq!(stats.rows_read, 32);
    }

    /// The fused in-place repair (`read_delta_into`) must reproduce a
    /// serialized read exactly, like the delta-ship path does.
    #[test]
    fn read_delta_into_repairs_in_place() {
        let daemon = MemoryDaemon::spawn(MemoryState::new(8, 2, 2), 1, 1, 4, 1);
        let client = daemon.client(0);
        let mut reference = MemoryState::new(8, 2, 2);
        reference.reset();
        let nodes = [1u32, 4, 6];
        let mut tagged: Option<VersionedReadout> = None;

        for s in 0..4u32 {
            match tagged.take() {
                None => {
                    let _ = client.read(&nodes);
                }
                Some(mut tagged) => {
                    let patched =
                        client.read_delta_into(&nodes, &tagged.versions, &mut tagged.readout);
                    let want = reference.read(&nodes);
                    assert_eq!(tagged.readout.mem, want.mem, "step {s}");
                    assert_eq!(tagged.readout.mail, want.mail);
                    assert_eq!(tagged.readout.mem_ts, want.mem_ts);
                    assert_eq!(tagged.readout.mail_ts, want.mail_ts);
                    // Every write below hits a read-set node.
                    assert_eq!(patched, 1, "step {s}");
                }
            }
            if s < 3 {
                // Speculate and collect *before* this turn's write —
                // guaranteed one stale row next turn.
                client.speculate_read(&nodes, VersionedReadout::default());
                tagged = Some(client.take_speculation());
            }
            let w = write_of(
                vec![nodes[(s % 3) as usize]],
                2,
                2,
                s as f32 + 1.0,
                s as f32,
            );
            reference.write(&w);
            client.write(w);
        }
        let (state, stats) = daemon.join();
        let all: Vec<u32> = (0..8).collect();
        assert_eq!(state.read(&all).mem, reference.read(&all).mem);
        assert_eq!(stats.delta_reads_served, 3);
        assert_eq!(stats.delta_rows_sent, 3);
    }

    /// A speculation left uncollected must not wedge the daemon's
    /// shutdown path, and the client side must panic (not hang) if it
    /// tries to collect after shutdown.
    #[test]
    fn uncollected_speculation_drops_cleanly() {
        let daemon = MemoryDaemon::spawn(MemoryState::new(4, 1, 1), 1, 1, 10, 1);
        let client = daemon.client(0);
        client.speculate_read(&[0, 1], VersionedReadout::default());
        // Daemon serves it during its spin for the never-sent turn
        // read; we drop everything without collecting.
        daemon.shutdown();
        let (_, stats) = daemon.join();
        assert!(stats.spec_reads_served <= 1);
        drop(client);
    }

    #[test]
    fn read_into_roundtrips_scratch_buffer() {
        let daemon = MemoryDaemon::spawn(MemoryState::new(8, 2, 2), 1, 1, 2, 1);
        let client = daemon.client(0);
        let mut scratch = MemoryReadout::default();
        client.read_into(&[1, 2, 3], &mut scratch);
        assert_eq!(scratch.mem.shape(), (3, 2));
        client.write(write_of(vec![2], 2, 2, 5.0, 1.0));
        client.read_into(&[2], &mut scratch);
        assert_eq!(scratch.mem.shape(), (1, 2));
        assert_eq!(scratch.mem.get(0, 0), 5.0);
        client.write(write_of(vec![0], 2, 2, 1.0, 2.0));
        let _ = daemon.join();
    }

    #[test]
    fn versioned_read_tags_serialized_versions() {
        let daemon = MemoryDaemon::spawn(MemoryState::new(4, 1, 1), 1, 1, 2, 1);
        let client = daemon.client(0);
        let vr = client.read_versioned(&[0, 1]);
        // Turn 1 of epoch 0: only the reset (version 1) has happened.
        assert_eq!(vr.versions, vec![1, 1]);
        client.write(write_of(vec![1], 1, 1, 2.0, 1.0));
        let vr = client.read_versioned(&[0, 1]);
        assert_eq!(vr.versions, vec![1, 2]);
        assert_eq!(vr.readout.mem.get(1, 0), 2.0);
        client.write(write_of(vec![0], 1, 1, 3.0, 2.0));
        let _ = daemon.join();
    }

    /// Shutdown surfaces as a structured error on the fallible client
    /// paths — no panic, no hang — and stays sticky.
    #[test]
    fn try_read_after_shutdown_returns_error() {
        let daemon = MemoryDaemon::spawn(MemoryState::new(4, 1, 1), 1, 1, 10, 1);
        let client = daemon.client(0);
        daemon.shutdown();
        assert!(matches!(client.try_read(&[0]), Err(DaemonError::Shutdown)));
        assert_eq!(
            client.try_write(write_of(vec![0], 1, 1, 1.0, 1.0)),
            Err(DaemonError::Shutdown)
        );
        let _ = daemon.join();
    }

    /// A deadline on a turn that never comes yields `Timeout`, and the
    /// client is poisoned: later requests fail fast with the same
    /// error instead of racing the still-parked protocol slot.
    #[test]
    fn deadline_expiry_times_out_and_poisons_client() {
        // j = 2: rank 1's turn is gated on rank 0, which never acts.
        let daemon = MemoryDaemon::spawn(MemoryState::new(4, 1, 1), 1, 2, 2, 1);
        let mut c1 = daemon.client(1);
        c1.set_deadline(Some(std::time::Duration::from_millis(20)));
        assert!(matches!(c1.try_read(&[0]), Err(DaemonError::Timeout)));
        // Poisoned: instant failure, even with no deadline set.
        c1.set_deadline(None);
        assert!(matches!(c1.try_read(&[0]), Err(DaemonError::Timeout)));
        assert_eq!(
            c1.try_write(write_of(vec![0], 1, 1, 1.0, 1.0)),
            Err(DaemonError::Timeout)
        );
        daemon.shutdown();
        let _ = daemon.join();
    }

    /// `capture_at`/`take_capture` returns the exact serialized state
    /// after the requested number of turns, while the daemon keeps
    /// running — and the live schedule is unaffected.
    #[test]
    fn capture_mid_epoch_matches_reference() {
        let daemon = MemoryDaemon::spawn(MemoryState::new(8, 2, 2), 1, 1, 4, 1);
        let client = daemon.client(0);
        let mut reference = MemoryState::new(8, 2, 2);
        reference.reset();
        for s in 0..2u32 {
            let _ = client.read(&[s]);
            let w = write_of(vec![s], 2, 2, s as f32 + 1.0, s as f32);
            reference.write(&w);
            client.write(w);
        }
        // No turn-2 read is in flight — the capture condition holds.
        daemon.capture_at(2);
        let cap = daemon
            .take_capture(Some(std::time::Duration::from_secs(5)))
            .expect("capture served");
        assert_eq!(cap.checksum(), reference.checksum());
        assert_eq!(cap.node_versions(), reference.node_versions());
        // Schedule continues untouched.
        for s in 2..4u32 {
            let _ = client.read(&[s]);
            let w = write_of(vec![s], 2, 2, s as f32 + 1.0, s as f32);
            reference.write(&w);
            client.write(w);
        }
        let (state, _) = daemon.join();
        assert_eq!(state.checksum(), reference.checksum());
    }

    /// `take_capture` on a shut-down daemon errors instead of hanging.
    #[test]
    fn take_capture_after_shutdown_errors() {
        let daemon = MemoryDaemon::spawn(MemoryState::new(4, 1, 1), 1, 1, 4, 1);
        daemon.capture_at(3);
        daemon.shutdown();
        assert!(matches!(
            daemon.take_capture(None),
            Err(DaemonError::Shutdown)
        ));
        let _ = daemon.join();
    }

    /// Crash/restore round-trip: capture mid-schedule, spawn a fresh
    /// daemon from the captured state with `start_turn`, replay the
    /// remaining turns — final state bit-identical to the
    /// uninterrupted run, including across the skipped partial epoch's
    /// missing reset.
    #[test]
    fn resume_from_start_turn_matches_uninterrupted_run() {
        let lengths = vec![2usize, 3usize];
        let turn_write =
            |s: u32| write_of(vec![s % 4, (s + 1) % 4], 1, 1, s as f32 + 1.0, s as f32);

        // Oracle run, capturing at global turn 3 (mid epoch 1).
        let daemon = MemoryDaemon::spawn_schedule(MemoryState::new(4, 1, 1), 1, 1, lengths.clone());
        let client = daemon.client(0);
        for s in 0..3u32 {
            let _ = client.read(&[s % 4]);
            client.write(turn_write(s));
        }
        daemon.capture_at(3);
        let cap = daemon
            .take_capture(Some(std::time::Duration::from_secs(5)))
            .expect("capture served");
        for s in 3..5u32 {
            let _ = client.read(&[s % 4]);
            client.write(turn_write(s));
        }
        let (oracle, _) = daemon.join();

        // Resumed run: skip the served prefix, no reset mid-epoch.
        let resumed = MemoryDaemon::spawn_with(
            cap,
            1,
            1,
            lengths,
            DaemonOptions {
                start_turn: 3,
                ..DaemonOptions::default()
            },
        );
        assert_eq!(resumed.epochs_done(), 1, "epoch 0 counts as done");
        let client = resumed.client(0);
        for s in 3..5u32 {
            let _ = client.read(&[s % 4]);
            client.write(turn_write(s));
        }
        // Epoch indexing stays continuous: the resumed daemon's first
        // finished epoch is epoch 1.
        let snap = resumed.epoch_snapshot(1);
        let (state, _) = resumed.join();
        assert_eq!(state.checksum(), oracle.checksum());
        assert_eq!(state.node_versions(), oracle.node_versions());
        assert_eq!(snap.checksum(), oracle.checksum());
    }

    /// Capture at an *epoch boundary* is deterministic: the served
    /// state includes the next epoch's reset (captures resolve only in
    /// read-wait idle spins, which sit past the reset), so the capture
    /// content does not depend on request arrival timing relative to
    /// the boundary. Resume re-applies the reset, which is
    /// content-idempotent — final contents match the oracle. Version
    /// *values* drift by the extra reset stamp, which is fine: only
    /// intra-daemon version consistency matters for the delta
    /// protocol, so we assert content (checksum) here, not versions.
    #[test]
    fn capture_at_epoch_boundary_resumes_identically() {
        let lengths = vec![2usize, 2usize];
        let turn_write = |s: u32| write_of(vec![s % 4], 1, 1, s as f32 + 1.0, s as f32);

        let daemon = MemoryDaemon::spawn_schedule(MemoryState::new(4, 1, 1), 1, 1, lengths.clone());
        let client = daemon.client(0);
        for s in 0..2u32 {
            let _ = client.read(&[s % 4]);
            client.write(turn_write(s));
        }
        // Global turn 2 == end of epoch 0 == start of epoch 1: the
        // capture is served post-reset, deterministically.
        daemon.capture_at(2);
        let cap = daemon
            .take_capture(Some(std::time::Duration::from_secs(5)))
            .expect("capture served");
        let mut reset_reference = MemoryState::new(4, 1, 1);
        reset_reference.reset();
        assert_eq!(
            cap.checksum(),
            reset_reference.checksum(),
            "epoch-boundary capture holds the post-reset state"
        );
        for s in 2..4u32 {
            let _ = client.read(&[s % 4]);
            client.write(turn_write(s));
        }
        let (oracle, _) = daemon.join();

        let resumed = MemoryDaemon::spawn_with(
            cap,
            1,
            1,
            lengths,
            DaemonOptions {
                start_turn: 2,
                ..DaemonOptions::default()
            },
        );
        assert_eq!(resumed.epochs_done(), 1);
        let client = resumed.client(0);
        for s in 2..4u32 {
            let _ = client.read(&[s % 4]);
            client.write(turn_write(s));
        }
        let (state, _) = resumed.join();
        assert_eq!(state.checksum(), oracle.checksum());
    }

    /// `fail_after_turns` kills the daemon mid-schedule like a crashed
    /// process: later client calls see `Shutdown`, and the turns that
    /// completed before the fault were applied.
    #[test]
    fn fail_after_turns_crashes_daemon_cleanly() {
        let daemon = MemoryDaemon::spawn_with(
            MemoryState::new(4, 1, 1),
            1,
            1,
            vec![6],
            DaemonOptions {
                fail_after_turns: Some(2),
                ..DaemonOptions::default()
            },
        );
        let client = daemon.client(0);
        for s in 0..2u32 {
            let _ = client.try_read(&[s]).expect("pre-fault turn");
            client
                .try_write(write_of(vec![s], 1, 1, 9.0, s as f32))
                .expect("pre-fault write");
        }
        // The daemon announces shutdown after turn 2; the next request
        // fails structurally rather than hanging or panicking.
        let mut c = client;
        c.set_deadline(Some(std::time::Duration::from_secs(5)));
        assert!(matches!(c.try_read(&[0]), Err(DaemonError::Shutdown)));
        let (state, stats) = daemon.join();
        assert_eq!(stats.writes_served, 2);
        assert_eq!(state.read(&[0, 1]).mem.get(0, 0), 9.0);
        assert_eq!(state.read(&[0, 1]).mem.get(1, 0), 9.0);
    }

    /// The supervised-recovery contract at the daemon level: a replica
    /// killed by an injected fault is respawned from its last capture
    /// (with the fired fault stripped) and finishes the schedule
    /// bit-identically to an unfaulted oracle. `is_shutdown` is the
    /// liveness probe supervisors key the respawn on.
    #[test]
    fn restart_after_injected_shutdown_matches_oracle() {
        let lengths = vec![3usize, 3usize];
        let turn_write =
            |s: u32| write_of(vec![s % 4, (s + 1) % 4], 1, 1, s as f32 + 1.0, s as f32);

        // Fault-free oracle over all 6 turns.
        let oracle_d =
            MemoryDaemon::spawn_schedule(MemoryState::new(4, 1, 1), 1, 1, lengths.clone());
        let oc = oracle_d.client(0);
        for s in 0..6u32 {
            let _ = oc.read(&[s % 4]);
            oc.write(turn_write(s));
        }
        let (oracle, _) = oracle_d.join();

        // Faulted run: capture at turn 2, die after turn 4.
        let daemon = MemoryDaemon::spawn_with(
            MemoryState::new(4, 1, 1),
            1,
            1,
            lengths.clone(),
            DaemonOptions {
                fail_after_turns: Some(4),
                ..DaemonOptions::default()
            },
        );
        assert!(!daemon.is_shutdown(), "alive until the fault fires");
        let mut client = daemon.client(0);
        client.set_deadline(Some(std::time::Duration::from_secs(5)));
        for s in 0..2u32 {
            let _ = client.try_read(&[s % 4]).expect("pre-capture turn");
            client.try_write(turn_write(s)).expect("pre-capture write");
        }
        daemon.capture_at(2);
        let cap = daemon
            .take_capture(Some(std::time::Duration::from_secs(5)))
            .expect("capture served");
        for s in 2..4u32 {
            let _ = client.try_read(&[s % 4]).expect("pre-fault turn");
            client.try_write(turn_write(s)).expect("pre-fault write");
        }
        assert!(matches!(client.try_read(&[0]), Err(DaemonError::Shutdown)));
        assert!(daemon.is_shutdown(), "fault announces itself");
        drop(daemon);

        // Respawn from the capture with the fired fault stripped; the
        // lost turns 2..4 are replayed, then the tail runs to the end.
        let resumed = MemoryDaemon::spawn_with(
            cap,
            1,
            1,
            lengths,
            DaemonOptions {
                start_turn: 2,
                ..DaemonOptions::default()
            },
        );
        let rc = resumed.client(0);
        for s in 2..6u32 {
            let _ = rc.read(&[s % 4]);
            rc.write(turn_write(s));
        }
        let (state, _) = resumed.join();
        assert_eq!(state.checksum(), oracle.checksum());
        assert_eq!(state.node_versions(), oracle.node_versions());
    }
}
