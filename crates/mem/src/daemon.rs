//! The memory daemon of Algorithm 1.
//!
//! One daemon thread owns the [`MemoryState`] of an `i × j` trainer
//! group and serves all reads/writes in the serialized order
//!
//! ```text
//! (R₀…Rᵢ₋₁)(W₀…Wᵢ₋₁)(Rᵢ…R₂ᵢ₋₁)(Wᵢ…W₂ᵢ₋₁) …
//! ```
//!
//! cycling through the `j` epoch-parallel sub-groups, `i` ranks at a
//! time. Requests travel through per-rank shared buffers guarded by an
//! atomic status word (the paper's `read_status` / `write_status`
//! arrays); the daemon and trainers spin on the status words instead of
//! taking a cross-process lock — "instead of implementing an expensive
//! cross-process lock mechanism, we launch an additional memory daemon
//! process" (§3.3).
//!
//! Orderings: a requester fills the buffer under its mutex, then
//! publishes with a `Release` store; the daemon observes with an
//! `Acquire` load before locking the buffer (and vice versa for
//! responses), so buffer contents are always synchronized-with the
//! status transition that announces them.

use crate::state::{MemoryReadout, MemoryState, MemoryWrite};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

const IDLE: u8 = 0;
const REQUESTED: u8 = 1;
const READY: u8 = 2;

/// Aggregate daemon counters (Fig 2(b)-style accounting and the
/// Table 1 synchronization-volume measurements).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DaemonStats {
    /// Node-memory + mail rows served to read requests.
    pub rows_read: u64,
    /// Rows applied from write requests.
    pub rows_written: u64,
    /// Read requests served.
    pub reads_served: u64,
    /// Write requests served.
    pub writes_served: u64,
    /// Nanoseconds the daemon spent actively serving (excludes waiting).
    pub serve_nanos: u64,
}

struct Slot {
    read_status: AtomicU8,
    write_status: AtomicU8,
    read_req: Mutex<Vec<u32>>,
    read_resp: Mutex<MemoryReadout>,
    write_req: Mutex<MemoryWrite>,
}

impl Slot {
    fn new() -> Self {
        Self {
            read_status: AtomicU8::new(IDLE),
            write_status: AtomicU8::new(IDLE),
            read_req: Mutex::new(Vec::new()),
            read_resp: Mutex::new(MemoryReadout::default()),
            write_req: Mutex::new(MemoryWrite::default()),
        }
    }
}

struct Shared {
    slots: Vec<Slot>,
    shutdown: AtomicBool,
    rows_read: AtomicU64,
    rows_written: AtomicU64,
    reads_served: AtomicU64,
    writes_served: AtomicU64,
    serve_nanos: AtomicU64,
    /// Epoch-end snapshot of the state, refreshed before each reset.
    /// The paper evaluates "using the node memory in the first memory
    /// process" after every epoch; the evaluating trainer takes this
    /// copy instead of injecting reads into the serialized schedule.
    snapshot: Mutex<Option<MemoryState>>,
    epochs_done: AtomicU64,
}

/// Spin-wait until `cond` is true; returns false if `shutdown` fires
/// first.
fn spin_until(cond: impl Fn() -> bool, shutdown: &AtomicBool) -> bool {
    let mut spins = 0u32;
    loop {
        if cond() {
            return true;
        }
        if shutdown.load(Ordering::Acquire) {
            return false;
        }
        spins += 1;
        if spins < 64 {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

/// Handle for one trainer rank to issue memory requests.
///
/// Clone-free by design: exactly one client per rank, matching the
/// paper's one-buffer-per-trainer layout.
pub struct MemoryClient {
    shared: Arc<Shared>,
    rank: usize,
}

impl MemoryClient {
    /// This client's trainer rank within the group.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Issues a read for `nodes` and blocks until the daemon serves it
    /// (the paper's trainers overlap this wait with static-data
    /// prefetch; callers here do the same by issuing late).
    ///
    /// # Panics
    /// Panics if the daemon shut down mid-request.
    pub fn read(&self, nodes: &[u32]) -> MemoryReadout {
        let slot = &self.shared.slots[self.rank];
        // Previous cycle must be fully consumed.
        assert_eq!(
            slot.read_status.load(Ordering::Acquire),
            IDLE,
            "rank {}: overlapping read requests",
            self.rank
        );
        *slot.read_req.lock() = nodes.to_vec();
        slot.read_status.store(REQUESTED, Ordering::Release);
        let ok = spin_until(
            || slot.read_status.load(Ordering::Acquire) == READY,
            &self.shared.shutdown,
        );
        assert!(
            ok,
            "memory daemon shut down during read (rank {})",
            self.rank
        );
        let resp = std::mem::take(&mut *slot.read_resp.lock());
        slot.read_status.store(IDLE, Ordering::Release);
        resp
    }

    /// Posts a write and returns once the daemon has accepted the
    /// buffer hand-off (it is applied in serialized order; a subsequent
    /// `read` from any rank of a later turn observes it).
    ///
    /// # Panics
    /// Panics if the daemon shut down mid-request.
    pub fn write(&self, w: MemoryWrite) {
        let slot = &self.shared.slots[self.rank];
        let ok = spin_until(
            || slot.write_status.load(Ordering::Acquire) == IDLE,
            &self.shared.shutdown,
        );
        assert!(
            ok,
            "memory daemon shut down during write (rank {})",
            self.rank
        );
        *slot.write_req.lock() = w;
        slot.write_status.store(REQUESTED, Ordering::Release);
    }
}

/// The daemon: owns the state, serves an `i × j` group for a fixed
/// number of epochs of `steps_per_epoch` serialized turns each.
pub struct MemoryDaemon {
    shared: Arc<Shared>,
    handle: Option<JoinHandle<MemoryState>>,
    group_size: usize,
}

impl MemoryDaemon {
    /// Spawns the daemon.
    ///
    /// * `i` — mini-batch-parallel sub-group size;
    /// * `j` — number of epoch-parallel sub-groups;
    /// * `steps_per_epoch` — serialized (read, write) turns per epoch;
    ///   turn `s` serves sub-group `s % j`;
    /// * `num_epochs` — the state resets between epochs (node memory
    ///   restarts from zero each epoch, §2.1).
    pub fn spawn(
        state: MemoryState,
        i: usize,
        j: usize,
        steps_per_epoch: usize,
        num_epochs: usize,
    ) -> Self {
        Self::spawn_schedule(state, i, j, vec![steps_per_epoch; num_epochs])
    }

    /// Spawns the daemon with an explicit epoch-length schedule.
    ///
    /// Memory-parallel groups whose cyclic batch order starts mid-
    /// stream reset their replica when the order *wraps* (their true
    /// epoch boundary), making the first and last epochs partial —
    /// `epoch_lengths` encodes that. The sub-group turn owner is the
    /// **global** turn counter mod `j`, continuous across epochs.
    pub fn spawn_schedule(
        mut state: MemoryState,
        i: usize,
        j: usize,
        epoch_lengths: Vec<usize>,
    ) -> Self {
        assert!(i >= 1 && j >= 1, "daemon: need i, j >= 1");
        let group_size = i * j;
        let shared = Arc::new(Shared {
            slots: (0..group_size).map(|_| Slot::new()).collect(),
            shutdown: AtomicBool::new(false),
            rows_read: AtomicU64::new(0),
            rows_written: AtomicU64::new(0),
            reads_served: AtomicU64::new(0),
            writes_served: AtomicU64::new(0),
            serve_nanos: AtomicU64::new(0),
            snapshot: Mutex::new(None),
            epochs_done: AtomicU64::new(0),
        });
        let shared2 = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("disttgl-mem-daemon".into())
            .spawn(move || {
                daemon_loop(&mut state, &shared2, i, j, &epoch_lengths);
                state
            })
            .expect("spawn memory daemon");
        Self {
            shared,
            handle: Some(handle),
            group_size,
        }
    }

    /// Creates the client for `rank` (call once per rank).
    pub fn client(&self, rank: usize) -> MemoryClient {
        assert!(
            rank < self.group_size,
            "rank {} out of group {}",
            rank,
            self.group_size
        );
        MemoryClient {
            shared: Arc::clone(&self.shared),
            rank,
        }
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> DaemonStats {
        DaemonStats {
            rows_read: self.shared.rows_read.load(Ordering::Relaxed),
            rows_written: self.shared.rows_written.load(Ordering::Relaxed),
            reads_served: self.shared.reads_served.load(Ordering::Relaxed),
            writes_served: self.shared.writes_served.load(Ordering::Relaxed),
            serve_nanos: self.shared.serve_nanos.load(Ordering::Relaxed),
        }
    }

    /// Waits for the daemon to finish its schedule and returns the
    /// final state and counters.
    pub fn join(mut self) -> (MemoryState, DaemonStats) {
        let stats = self.stats();
        let handle = self.handle.take().expect("already joined");
        let state = handle.join().expect("daemon thread panicked");
        let stats = DaemonStats {
            rows_read: self.shared.rows_read.load(Ordering::Relaxed),
            rows_written: self.shared.rows_written.load(Ordering::Relaxed),
            reads_served: self.shared.reads_served.load(Ordering::Relaxed),
            writes_served: self.shared.writes_served.load(Ordering::Relaxed),
            serve_nanos: stats
                .serve_nanos
                .max(self.shared.serve_nanos.load(Ordering::Relaxed)),
        };
        (state, stats)
    }

    /// Requests early termination (failure paths / tests). Clients
    /// blocked in `read`/`write` will panic rather than hang.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
    }

    /// Blocks until the daemon has finished at least `epoch + 1`
    /// epochs, then returns the state snapshot taken at that epoch's
    /// end (before the reset). Callers must not hold up their own
    /// memory schedule while waiting — take the snapshot from a rank
    /// whose group turn is over.
    pub fn epoch_snapshot(&self, epoch: u64) -> MemoryState {
        let ok = spin_until(
            || self.shared.epochs_done.load(Ordering::Acquire) > epoch,
            &self.shared.shutdown,
        );
        assert!(ok, "daemon shut down before epoch {epoch} snapshot");
        self.shared
            .snapshot
            .lock()
            .clone()
            .expect("snapshot present after epoch end")
    }

    /// Number of completed epochs.
    pub fn epochs_done(&self) -> u64 {
        self.shared.epochs_done.load(Ordering::Acquire)
    }
}

impl Drop for MemoryDaemon {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn daemon_loop(state: &mut MemoryState, shared: &Shared, i: usize, j: usize, epochs: &[usize]) {
    let mut turn = 0usize; // global turn counter — owner is turn % j
    for &epoch_len in epochs {
        // "reset memory and mail" (Algorithm 1).
        state.reset();
        for _ in 0..epoch_len {
            let g = turn % j;
            turn += 1;
            let ranks = g * i..(g + 1) * i;
            // Serve the sub-group's reads.
            for r in ranks.clone() {
                let slot = &shared.slots[r];
                if !spin_until(
                    || slot.read_status.load(Ordering::Acquire) == REQUESTED,
                    &shared.shutdown,
                ) {
                    return;
                }
                let t0 = std::time::Instant::now();
                let req = slot.read_req.lock();
                let resp = state.read(&req);
                shared
                    .rows_read
                    .fetch_add(req.len() as u64, Ordering::Relaxed);
                drop(req);
                *slot.read_resp.lock() = resp;
                shared.reads_served.fetch_add(1, Ordering::Relaxed);
                shared
                    .serve_nanos
                    .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                slot.read_status.store(READY, Ordering::Release);
            }
            // Serve the sub-group's writes.
            for r in ranks {
                let slot = &shared.slots[r];
                if !spin_until(
                    || slot.write_status.load(Ordering::Acquire) == REQUESTED,
                    &shared.shutdown,
                ) {
                    return;
                }
                let t0 = std::time::Instant::now();
                let w = std::mem::take(&mut *slot.write_req.lock());
                state.write(&w);
                shared
                    .rows_written
                    .fetch_add(w.nodes.len() as u64, Ordering::Relaxed);
                shared.writes_served.fetch_add(1, Ordering::Relaxed);
                shared
                    .serve_nanos
                    .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                slot.write_status.store(IDLE, Ordering::Release);
            }
        }
        *shared.snapshot.lock() = Some(state.clone());
        shared.epochs_done.fetch_add(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disttgl_tensor::Matrix;

    fn write_of(nodes: Vec<u32>, d_mem: usize, mail_dim: usize, fill: f32, ts: f32) -> MemoryWrite {
        let n = nodes.len();
        MemoryWrite {
            nodes,
            mem: Matrix::full(n, d_mem, fill),
            mem_ts: vec![ts; n],
            mail: Matrix::full(n, mail_dim, fill),
            mail_ts: vec![ts; n],
        }
    }

    #[test]
    fn single_trainer_roundtrip_matches_plain_state() {
        let daemon = MemoryDaemon::spawn(MemoryState::new(8, 2, 3), 1, 1, 3, 1);
        let client = daemon.client(0);
        let mut reference = MemoryState::new(8, 2, 3);

        for step in 0..3u32 {
            let nodes = vec![step, step + 1];
            let got = client.read(&nodes);
            let want = reference.read(&nodes);
            assert_eq!(got.mem, want.mem, "step {}", step);
            assert_eq!(got.mail_ts, want.mail_ts);
            let w = write_of(nodes, 2, 3, step as f32 + 1.0, step as f32);
            reference.write(&w);
            client.write(w);
        }
        let (final_state, stats) = daemon.join();
        assert_eq!(
            final_state.read(&[0, 1, 2, 3]).mem,
            reference.read(&[0, 1, 2, 3]).mem
        );
        assert_eq!(stats.reads_served, 3);
        assert_eq!(stats.writes_served, 3);
        assert_eq!(stats.rows_read, 6);
        assert_eq!(stats.rows_written, 6);
    }

    #[test]
    fn later_subgroup_sees_earlier_subgroup_write() {
        // i = 1, j = 2: turn order R0 W0 R1 W1. Rank 1's read must
        // observe rank 0's write (serialized ordering).
        let daemon = MemoryDaemon::spawn(MemoryState::new(4, 1, 1), 1, 2, 2, 1);
        let c0 = daemon.client(0);
        let c1 = daemon.client(1);

        let t1 = std::thread::spawn(move || {
            let r = c1.read(&[0]);
            c1.write(write_of(vec![1], 1, 1, 7.0, 2.0));
            r
        });
        // Rank 0 goes first in the serialized order.
        let r0 = c0.read(&[0]);
        assert_eq!(r0.mem.get(0, 0), 0.0);
        c0.write(write_of(vec![0], 1, 1, 5.0, 1.0));

        let r1 = t1.join().unwrap();
        assert_eq!(r1.mem.get(0, 0), 5.0, "rank 1 must see rank 0's write");
        let (state, _) = daemon.join();
        assert_eq!(state.read(&[1]).mem.get(0, 0), 7.0);
    }

    #[test]
    fn two_by_two_group_matches_sequential_reference() {
        // Full i×j = 2×2 schedule over 4 steps, executed by 4 threads,
        // compared against a sequential replay of the same serialized
        // order.
        let (i, j, steps) = (2usize, 2usize, 4usize);
        let daemon = MemoryDaemon::spawn(MemoryState::new(16, 2, 2), i, j, steps, 1);

        let mut handles = Vec::new();
        for rank in 0..i * j {
            let client = daemon.client(rank);
            handles.push(std::thread::spawn(move || {
                let g = rank / i; // sub-group id
                let mut log = Vec::new();
                // Sub-group g owns steps s with s % j == g.
                for s in (g..steps).step_by(j) {
                    let node = (s * i + (rank % i)) as u32;
                    let r = client.read(&[node]);
                    log.push((node, r.mem.get(0, 0)));
                    client.write(write_of(vec![node], 2, 2, (s + 1) as f32, s as f32));
                }
                log
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (state, stats) = daemon.join();
        assert_eq!(stats.reads_served as usize, steps * i);
        assert_eq!(stats.writes_served as usize, steps * i);

        // Sequential reference: same serialized order.
        let mut reference = MemoryState::new(16, 2, 2);
        for s in 0..steps {
            let g = s % j;
            for r in g * i..(g + 1) * i {
                let node = (s * i + (r % i)) as u32;
                let _ = reference.read(&[node]);
                reference.write(&write_of(vec![node], 2, 2, (s + 1) as f32, s as f32));
            }
        }
        let all: Vec<u32> = (0..16).collect();
        assert_eq!(state.read(&all).mem, reference.read(&all).mem);
    }

    #[test]
    fn epoch_boundary_resets_memory() {
        let daemon = MemoryDaemon::spawn(MemoryState::new(4, 1, 1), 1, 1, 1, 2);
        let client = daemon.client(0);
        // Epoch 0.
        let r = client.read(&[0]);
        assert_eq!(r.mem.get(0, 0), 0.0);
        client.write(write_of(vec![0], 1, 1, 42.0, 1.0));
        // Epoch 1: daemon reset must have cleared node 0.
        let r = client.read(&[0]);
        assert_eq!(r.mem.get(0, 0), 0.0, "epoch reset failed");
        client.write(write_of(vec![0], 1, 1, 7.0, 1.0));
        let (state, _) = daemon.join();
        assert_eq!(state.read(&[0]).mem.get(0, 0), 7.0);
    }

    #[test]
    fn epoch_snapshot_captures_pre_reset_state() {
        let daemon = MemoryDaemon::spawn(MemoryState::new(4, 1, 1), 1, 1, 1, 2);
        let client = daemon.client(0);
        let _ = client.read(&[0]);
        client.write(write_of(vec![0], 1, 1, 42.0, 1.0));
        // Snapshot of epoch 0 must contain the write even though the
        // live state is reset for epoch 1.
        let snap = daemon.epoch_snapshot(0);
        assert_eq!(snap.read(&[0]).mem.get(0, 0), 42.0);
        let _ = client.read(&[0]);
        client.write(write_of(vec![0], 1, 1, 7.0, 1.0));
        let snap1 = daemon.epoch_snapshot(1);
        assert_eq!(snap1.read(&[0]).mem.get(0, 0), 7.0);
        let _ = daemon.join();
    }

    #[test]
    fn shutdown_unblocks_daemon() {
        let daemon = MemoryDaemon::spawn(MemoryState::new(4, 1, 1), 1, 1, 10, 1);
        // Never send any request; drop must not hang.
        daemon.shutdown();
        let (_, stats) = daemon.join();
        assert_eq!(stats.reads_served, 0);
    }

    #[test]
    fn serve_time_is_recorded() {
        let daemon = MemoryDaemon::spawn(MemoryState::new(64, 8, 8), 1, 1, 2, 1);
        let client = daemon.client(0);
        let nodes: Vec<u32> = (0..64).collect();
        for s in 0..2 {
            let _ = client.read(&nodes);
            client.write(write_of(nodes.clone(), 8, 8, 1.0, s as f32));
        }
        let (_, stats) = daemon.join();
        assert!(stats.serve_nanos > 0);
        assert_eq!(stats.rows_read, 128);
    }
}
