//! The write-tracked node-memory + mailbox store.
//!
//! Every mutation ([`MemoryState::write`] and the epoch
//! [`MemoryState::reset`]) bumps a monotone **write sequence** and
//! stamps it onto the touched nodes' per-node versions. A reader that
//! records the version vector of its gather
//! ([`MemoryState::read_versioned`]) can later ask for exactly the
//! rows rewritten since ([`MemoryState::delta_since`]) — the primitive
//! the memory daemon's speculative-read / delta-repair protocol is
//! built on.
//!
//! The store has two row representations: exact **f32** (the default,
//! part of the bit-reproducibility contract) and opt-in **bf16**
//! ([`MemoryState::new_quantized`]), which halves the resident bytes
//! of memory + mailbox rows and therefore every gather/daemon payload
//! sourced from them. Quantization is applied at *write* time
//! (round-to-nearest-even, ≤ 2⁻⁸ relative error); reads always decode
//! to f32, so all compute stays full-precision and a quantized store
//! consistently presents values on the bf16 grid — re-quantizing them
//! (e.g. on checkpoint restore via [`MemoryState::into_quantized`])
//! is lossless. Timestamps and versions are never quantized.

use disttgl_tensor::bf16::{bf16_decode, bf16_encode};
use disttgl_tensor::Matrix;
use std::borrow::Cow;

/// A read result for a batch of nodes: gathered memory rows, mail rows,
/// and their timestamps, in query order.
#[derive(Clone, Debug, Default)]
pub struct MemoryReadout {
    /// Node memory rows, `nodes × d_mem`.
    pub mem: Matrix,
    /// Last-update timestamp of each node's memory.
    pub mem_ts: Vec<f32>,
    /// Cached mail rows, `nodes × mail_dim`.
    pub mail: Matrix,
    /// Timestamp of each cached mail (0 when none has arrived yet).
    pub mail_ts: Vec<f32>,
}

/// A readout tagged with the version vector it was gathered at:
/// `versions[r]` is the write version of row `r`'s node at gather
/// time. Feed the vector back into [`MemoryState::delta_since`] (or
/// `MemoryClient::read_delta` on the daemon path) to learn exactly
/// which rows a later state has rewritten.
#[derive(Clone, Debug, Default)]
pub struct VersionedReadout {
    /// The gathered rows, in query order.
    pub readout: MemoryReadout,
    /// Per-row write version at gather time (`len == rows`).
    pub versions: Vec<u64>,
}

/// The rows of a tagged read that were rewritten since: row positions
/// refer to the *original query's node list*, so applying the delta is
/// a direct row scatter — no node lookup needed.
#[derive(Clone, Debug, Default)]
pub struct MemoryDelta {
    /// Positions within the tagged read's node list (ascending).
    pub rows: Vec<u32>,
    /// Fresh memory rows, `rows.len() × d_mem`.
    pub mem: Matrix,
    /// Fresh memory timestamps.
    pub mem_ts: Vec<f32>,
    /// Fresh mail rows, `rows.len() × mail_dim`.
    pub mail: Matrix,
    /// Fresh mail timestamps.
    pub mail_ts: Vec<f32>,
}

impl MemoryDelta {
    /// Number of rewritten rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when nothing was rewritten (the tagged read is exact).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Repairs a speculatively gathered readout in place: overwrites
    /// each rewritten row with its fresh contents. After this the
    /// readout is bit-identical to a serialized read performed at the
    /// delta's point in the write order. Returns the patched row count.
    ///
    /// # Panics
    /// Panics if a row position exceeds the readout.
    pub fn apply(&self, readout: &mut MemoryReadout) -> usize {
        for (i, &row) in self.rows.iter().enumerate() {
            let row = row as usize;
            readout.mem.row_mut(row).copy_from_slice(self.mem.row(i));
            readout.mail.row_mut(row).copy_from_slice(self.mail.row(i));
            readout.mem_ts[row] = self.mem_ts[i];
            readout.mail_ts[row] = self.mail_ts[i];
        }
        self.rows.len()
    }
}

/// A write request: new memory and mail rows for `nodes` (the batch's
/// root nodes only — supporting nodes are never written back, §3.2.1).
#[derive(Clone, Debug, Default)]
pub struct MemoryWrite {
    /// Target node ids.
    pub nodes: Vec<u32>,
    /// New memory rows, `nodes.len() × d_mem`.
    pub mem: Matrix,
    /// New memory timestamps.
    pub mem_ts: Vec<f32>,
    /// New mail rows, `nodes.len() × mail_dim`.
    pub mail: Matrix,
    /// New mail timestamps.
    pub mail_ts: Vec<f32>,
}

/// Row storage for one table (memory or mailbox): exact f32 rows or
/// the bf16-quantized representation at half the bytes. All public
/// traffic is f32 — `Bf16` decodes on read and encodes (RNE) on
/// write, so the representation is invisible to callers except
/// through [`MemoryState::bytes`] and the bounded rounding of stored
/// values.
#[derive(Clone, Debug)]
enum RowStore {
    F32(Matrix),
    Bf16 {
        data: Vec<u16>,
        rows: usize,
        cols: usize,
    },
}

impl RowStore {
    fn zeros(rows: usize, cols: usize, quantized: bool) -> Self {
        if quantized {
            // bf16 zero is the zero bit pattern.
            RowStore::Bf16 {
                data: vec![0u16; rows * cols],
                rows,
                cols,
            }
        } else {
            RowStore::F32(Matrix::zeros(rows, cols))
        }
    }

    fn is_quantized(&self) -> bool {
        matches!(self, RowStore::Bf16 { .. })
    }

    /// Bytes of one stored element (4 exact, 2 quantized).
    fn elem_bytes(&self) -> usize {
        match self {
            RowStore::F32(_) => std::mem::size_of::<f32>(),
            RowStore::Bf16 { .. } => std::mem::size_of::<u16>(),
        }
    }

    fn byte_len(&self) -> usize {
        match self {
            RowStore::F32(m) => m.len() * std::mem::size_of::<f32>(),
            RowStore::Bf16 { data, .. } => data.len() * std::mem::size_of::<u16>(),
        }
    }

    fn zero(&mut self) {
        match self {
            RowStore::F32(m) => m.zero(),
            RowStore::Bf16 { data, .. } => data.fill(0),
        }
    }

    /// Gathers `idx` rows into an f32 matrix (resized in place),
    /// decoding when quantized.
    fn gather_into(&self, idx: &[usize], out: &mut Matrix) {
        match self {
            RowStore::F32(m) => m.gather_rows_into(idx, out),
            RowStore::Bf16 { data, rows, cols } => {
                out.resize_for_overwrite(idx.len(), *cols);
                for (dst, &src) in idx.iter().enumerate() {
                    assert!(src < *rows, "gather: index {} out of {}", src, rows);
                    let enc = &data[src * cols..(src + 1) * cols];
                    for (o, &e) in out.row_mut(dst).iter_mut().zip(enc) {
                        *o = bf16_decode(e);
                    }
                }
            }
        }
    }

    /// Decodes row `i` into `out`.
    fn copy_row_into(&self, i: usize, out: &mut [f32]) {
        match self {
            RowStore::F32(m) => out.copy_from_slice(m.row(i)),
            RowStore::Bf16 { data, cols, .. } => {
                let enc = &data[i * cols..(i + 1) * cols];
                for (o, &e) in out.iter_mut().zip(enc) {
                    *o = bf16_decode(e);
                }
            }
        }
    }

    /// Overwrites rows `idx[r]` with row `r` of `src` (later
    /// duplicates win), encoding when quantized — the single lossy
    /// step of the quantized store.
    fn scatter_from(&mut self, idx: &[usize], src: &Matrix) {
        match self {
            RowStore::F32(m) => m.scatter_rows(idx, src),
            RowStore::Bf16 { data, rows, cols } => {
                assert_eq!(idx.len(), src.rows(), "scatter: count mismatch");
                assert_eq!(*cols, src.cols(), "scatter: width mismatch");
                for (r, &dst) in idx.iter().enumerate() {
                    assert!(dst < *rows, "scatter: index {} out of {}", dst, rows);
                    let enc = &mut data[dst * *cols..(dst + 1) * *cols];
                    for (e, &v) in enc.iter_mut().zip(src.row(r)) {
                        *e = bf16_encode(v);
                    }
                }
            }
        }
    }

    /// Folds the *presented* (decoded) bit patterns into a digest
    /// callback, so checksums compare what readers observe regardless
    /// of representation.
    fn fold_bits(&self, fold: &mut impl FnMut(u32)) {
        match self {
            RowStore::F32(m) => {
                for &v in m.as_slice() {
                    fold(v.to_bits());
                }
            }
            RowStore::Bf16 { data, .. } => {
                for &e in data {
                    fold(bf16_decode(e).to_bits());
                }
            }
        }
    }

    /// The full table as an f32 matrix: borrowed for the exact store,
    /// decoded into a fresh matrix for the quantized one.
    fn to_matrix(&self) -> Cow<'_, Matrix> {
        match self {
            RowStore::F32(m) => Cow::Borrowed(m),
            RowStore::Bf16 { data, rows, cols } => {
                let mut m = Matrix::zeros(*rows, *cols);
                for (o, &e) in m.as_mut_slice().iter_mut().zip(data) {
                    *o = bf16_decode(e);
                }
                Cow::Owned(m)
            }
        }
    }

    /// Converts to the bf16 representation (no-op if already there).
    /// Lossless exactly when every value is already on the bf16 grid
    /// — true for any matrix previously decoded from bf16, which is
    /// what makes checkpointing through the exact f32 format
    /// round-trip-faithful for quantized stores.
    fn into_quantized(self) -> Self {
        match self {
            RowStore::F32(m) => {
                let (rows, cols) = m.shape();
                let data = m.as_slice().iter().map(|&v| bf16_encode(v)).collect();
                RowStore::Bf16 { data, rows, cols }
            }
            q @ RowStore::Bf16 { .. } => q,
        }
    }
}

/// Accounting from a bounded-staleness repair
/// ([`MemoryState::repair_lagged`]): how many rows were repaired
/// exactly vs admitted stale, the lag distribution of the admitted
/// rows, and which readout rows they are (for trainer-side staleness
/// compensation).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RepairOutcome {
    /// Rows beyond the bound (or tagged pre-reset) that were repaired
    /// exactly — "repairs paid".
    pub repaired: usize,
    /// Stale rows within the bound that kept their tagged value —
    /// "repairs skipped".
    pub admitted_stale: usize,
    /// Largest version lag among admitted rows (0 when none admitted).
    pub max_lag: u64,
    /// Sum of version lags over admitted rows (mean = sum / admitted).
    pub lag_sum: u64,
    /// Readout row indices (not node ids) of the admitted-stale rows.
    pub admitted_rows: Vec<u32>,
}

/// Dense node-memory + mailbox store for one memory replica.
///
/// Memory-parallel training (`k > 1`) instantiates `k` of these; the
/// paper's Table 1 "Main memory requirement: k times single-GPU" is
/// exactly this replication.
#[derive(Clone, Debug)]
pub struct MemoryState {
    num_nodes: usize,
    d_mem: usize,
    mail_dim: usize,
    mem: RowStore,
    mem_ts: Vec<f32>,
    mail: RowStore,
    mail_ts: Vec<f32>,
    /// Monotone write sequence, bumped once per applied write/reset.
    write_seq: u64,
    /// Write version of each node's last mutation (0 = never written).
    node_version: Vec<u64>,
    /// Write sequence of the most recent [`MemoryState::reset`] (0 =
    /// never reset). Bounded-staleness admission refuses any row whose
    /// tagged version predates this: a reset rewrites *semantics* (a
    /// new epoch), not just values, so pre-reset rows always repair.
    last_reset_seq: u64,
}

impl MemoryState {
    /// Allocates a zeroed store (`s_v` initialized to zero vectors,
    /// §2.1) in the exact f32 representation.
    pub fn new(num_nodes: usize, d_mem: usize, mail_dim: usize) -> Self {
        Self::with_representation(num_nodes, d_mem, mail_dim, false)
    }

    /// Allocates a zeroed store with bf16-quantized memory and mailbox
    /// rows — half the resident bytes, writes rounded to nearest-even
    /// (≤ 2⁻⁸ relative). The `ModelConfig::quantized_memory` backing.
    pub fn new_quantized(num_nodes: usize, d_mem: usize, mail_dim: usize) -> Self {
        Self::with_representation(num_nodes, d_mem, mail_dim, true)
    }

    fn with_representation(
        num_nodes: usize,
        d_mem: usize,
        mail_dim: usize,
        quantized: bool,
    ) -> Self {
        Self {
            num_nodes,
            d_mem,
            mail_dim,
            mem: RowStore::zeros(num_nodes, d_mem, quantized),
            mem_ts: vec![0.0; num_nodes],
            mail: RowStore::zeros(num_nodes, mail_dim, quantized),
            mail_ts: vec![0.0; num_nodes],
            write_seq: 0,
            node_version: vec![0; num_nodes],
            last_reset_seq: 0,
        }
    }

    /// Converts the store to the bf16 representation in place
    /// (identity if already quantized). Values already on the bf16
    /// grid — in particular anything restored from a checkpoint of a
    /// quantized store — convert losslessly.
    pub fn into_quantized(mut self) -> Self {
        self.mem = self.mem.into_quantized();
        self.mail = self.mail.into_quantized();
        self
    }

    /// Whether rows are stored as bf16.
    pub fn quantized(&self) -> bool {
        self.mem.is_quantized()
    }

    /// Bytes of one stored row element (4 exact, 2 quantized) — the
    /// factor behind gather/daemon payload accounting.
    pub fn elem_bytes(&self) -> usize {
        self.mem.elem_bytes()
    }

    /// Modeled wire bytes of one full row payload as stored: memory +
    /// mail elements at the store's width plus the two f32 timestamps.
    /// The daemon multiplies this by rows served to report its
    /// payload traffic.
    pub fn row_payload_bytes(&self) -> usize {
        (self.d_mem + self.mail_dim) * self.elem_bytes() + 2 * std::mem::size_of::<f32>()
    }

    /// Node count.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Memory width.
    pub fn d_mem(&self) -> usize {
        self.d_mem
    }

    /// Mail width (`2·d_mem + d_time + d_edge`).
    pub fn mail_dim(&self) -> usize {
        self.mail_dim
    }

    /// Resets everything to zero (epoch boundary). The reset counts as
    /// a write of every node — a delta taken across it repairs every
    /// requested row, so tagged reads stay exact across epochs.
    pub fn reset(&mut self) {
        self.mem.zero();
        self.mem_ts.fill(0.0);
        self.mail.zero();
        self.mail_ts.fill(0.0);
        self.write_seq += 1;
        self.node_version.fill(self.write_seq);
        self.last_reset_seq = self.write_seq;
    }

    /// Current write sequence (bumped by every write and reset).
    pub fn version(&self) -> u64 {
        self.write_seq
    }

    /// Gathers rows for `nodes` in query order.
    pub fn read(&self, nodes: &[u32]) -> MemoryReadout {
        let mut out = MemoryReadout::default();
        self.read_into(nodes, &mut out);
        out
    }

    /// [`MemoryState::read`] into a caller-owned readout (matrices and
    /// timestamp vectors resized in place) — the scratch-arena variant
    /// for hot loops that would otherwise allocate a fresh readout per
    /// turn.
    pub fn read_into(&self, nodes: &[u32], out: &mut MemoryReadout) {
        let idx: Vec<usize> = nodes.iter().map(|&n| n as usize).collect();
        self.mem.gather_into(&idx, &mut out.mem);
        self.mail.gather_into(&idx, &mut out.mail);
        out.mem_ts.clear();
        out.mem_ts.extend(idx.iter().map(|&i| self.mem_ts[i]));
        out.mail_ts.clear();
        out.mail_ts.extend(idx.iter().map(|&i| self.mail_ts[i]));
    }

    /// Gathers rows for `nodes` together with the version vector they
    /// were read at (see [`VersionedReadout`]).
    pub fn read_versioned(&self, nodes: &[u32]) -> VersionedReadout {
        let mut out = VersionedReadout::default();
        self.read_versioned_into(nodes, &mut out);
        out
    }

    /// [`MemoryState::read_versioned`] into a caller-owned buffer.
    pub fn read_versioned_into(&self, nodes: &[u32], out: &mut VersionedReadout) {
        self.read_into(nodes, &mut out.readout);
        out.versions.clear();
        out.versions
            .extend(nodes.iter().map(|&n| self.node_version[n as usize]));
    }

    /// Returns the rows of a tagged read that have been rewritten
    /// since: row `r` is included iff `nodes[r]`'s current write
    /// version exceeds `versions[r]`. Applying the result onto the
    /// tagged readout ([`MemoryDelta::apply`]) reproduces a serialized
    /// read of `nodes` against the current state, bit for bit.
    ///
    /// # Panics
    /// Panics if `versions.len() != nodes.len()`.
    pub fn delta_since(&self, nodes: &[u32], versions: &[u64]) -> MemoryDelta {
        assert_eq!(
            nodes.len(),
            versions.len(),
            "delta_since: version vector length"
        );
        let mut rows = Vec::new();
        let mut idx = Vec::new();
        for (r, (&n, &v)) in nodes.iter().zip(versions).enumerate() {
            if self.node_version[n as usize] > v {
                rows.push(r as u32);
                idx.push(n as usize);
            }
        }
        let mut d = MemoryDelta {
            rows,
            ..MemoryDelta::default()
        };
        self.mem.gather_into(&idx, &mut d.mem);
        self.mail.gather_into(&idx, &mut d.mail);
        d.mem_ts.extend(idx.iter().map(|&i| self.mem_ts[i]));
        d.mail_ts.extend(idx.iter().map(|&i| self.mail_ts[i]));
        d
    }

    /// Fused [`MemoryState::delta_since`] + [`MemoryDelta::apply`]:
    /// overwrites the rows of `out` (a readout of `nodes` tagged with
    /// `versions`) that were rewritten since, directly from the store
    /// — one copy per stale row, no intermediate delta matrices. This
    /// is the hot-path form the daemon serves into the trainer's
    /// shared response buffer; returns the repaired row count.
    ///
    /// # Panics
    /// Panics on length mismatches between `nodes`, `versions`, and
    /// `out`.
    pub fn repair_since(&self, nodes: &[u32], versions: &[u64], out: &mut MemoryReadout) -> usize {
        assert_eq!(
            nodes.len(),
            versions.len(),
            "repair_since: version vector length"
        );
        assert_eq!(out.mem.rows(), nodes.len(), "repair_since: readout rows");
        let mut patched = 0usize;
        for (r, (&n, &v)) in nodes.iter().zip(versions).enumerate() {
            let i = n as usize;
            if self.node_version[i] > v {
                self.mem.copy_row_into(i, out.mem.row_mut(r));
                self.mail.copy_row_into(i, out.mail.row_mut(r));
                out.mem_ts[r] = self.mem_ts[i];
                out.mail_ts[r] = self.mail_ts[i];
                patched += 1;
            }
        }
        patched
    }

    /// Bounded-staleness variant of [`MemoryState::repair_since`]: a
    /// stale row whose version lag (`node_version − tagged version`) is
    /// at most `bound` is **admitted** — left at its tagged (stale)
    /// value and recorded in the outcome — while rows beyond the bound
    /// repair exactly as `repair_since` does. `bound = 0` admits
    /// nothing (a stale row has lag ≥ 1), so it is `repair_since` with
    /// extra bookkeeping — the k=0 ≡ exact bit-identity anchor.
    ///
    /// Rows tagged before the last [`MemoryState::reset`] are never
    /// admitted regardless of lag: a reset starts a new epoch, and
    /// pre-reset values are semantically unrelated, not merely stale.
    ///
    /// # Panics
    /// Panics on length mismatches between `nodes`, `versions`, and
    /// `out`.
    pub fn repair_lagged(
        &self,
        nodes: &[u32],
        versions: &[u64],
        out: &mut MemoryReadout,
        bound: u64,
    ) -> RepairOutcome {
        assert_eq!(
            nodes.len(),
            versions.len(),
            "repair_lagged: version vector length"
        );
        assert_eq!(out.mem.rows(), nodes.len(), "repair_lagged: readout rows");
        let mut outcome = RepairOutcome::default();
        for (r, (&n, &v)) in nodes.iter().zip(versions).enumerate() {
            let i = n as usize;
            let cur = self.node_version[i];
            if cur > v {
                let lag = cur - v;
                if lag <= bound && v >= self.last_reset_seq {
                    outcome.admitted_stale += 1;
                    outcome.lag_sum += lag;
                    outcome.max_lag = outcome.max_lag.max(lag);
                    outcome.admitted_rows.push(r as u32);
                } else {
                    self.mem.copy_row_into(i, out.mem.row_mut(r));
                    self.mail.copy_row_into(i, out.mail.row_mut(r));
                    out.mem_ts[r] = self.mem_ts[i];
                    out.mail_ts[r] = self.mail_ts[i];
                    outcome.repaired += 1;
                }
            }
        }
        outcome
    }

    /// Applies a write. Duplicate nodes resolve to the **last**
    /// occurrence (chronological order ⇒ most recent mail wins, the
    /// TGN-attn `COMB`).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn write(&mut self, w: &MemoryWrite) {
        assert_eq!(w.mem.rows(), w.nodes.len(), "write: mem rows");
        assert_eq!(w.mail.rows(), w.nodes.len(), "write: mail rows");
        assert_eq!(w.mem_ts.len(), w.nodes.len(), "write: mem_ts len");
        assert_eq!(w.mail_ts.len(), w.nodes.len(), "write: mail_ts len");
        assert_eq!(w.mem.cols(), self.d_mem, "write: d_mem");
        assert_eq!(w.mail.cols(), self.mail_dim, "write: mail_dim");
        let idx: Vec<usize> = w.nodes.iter().map(|&n| n as usize).collect();
        self.mem.scatter_from(&idx, &w.mem);
        self.mail.scatter_from(&idx, &w.mail);
        for (&i, (&mts, &lts)) in idx.iter().zip(w.mem_ts.iter().zip(&w.mail_ts)) {
            self.mem_ts[i] = mts;
            self.mail_ts[i] = lts;
        }
        self.write_seq += 1;
        for &i in &idx {
            self.node_version[i] = self.write_seq;
        }
    }

    /// Byte size of one full replica (for the Table 1 memory-footprint
    /// accounting and the planner's capacity constraint); includes the
    /// per-node write-version vector. Reflects the row representation:
    /// a quantized store reports half the row bytes.
    pub fn bytes(&self) -> usize {
        self.mem.byte_len()
            + self.mail.byte_len()
            + (self.mem_ts.len() + self.mail_ts.len()) * std::mem::size_of::<f32>()
            + self.node_version.len() * std::mem::size_of::<u64>()
    }

    /// Order-sensitive FNV-1a digest of the store's *contents* (memory,
    /// mails, timestamps — bit patterns, not float compares; versions
    /// excluded). Two states with equal checksums trained through the
    /// same f32 operations are bit-identical with overwhelming
    /// probability; the equivalence tests compare these across
    /// executor variants.
    pub fn checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |bits: u32| {
            for b in bits.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0100_0000_01b3);
            }
        };
        self.mem.fold_bits(&mut fold);
        for &v in &self.mem_ts {
            fold(v.to_bits());
        }
        self.mail.fold_bits(&mut fold);
        for &v in &self.mail_ts {
            fold(v.to_bits());
        }
        h
    }

    /// The full memory matrix as f32 (evaluation sweeps,
    /// checkpointing): borrowed from the exact store, decoded for the
    /// quantized one.
    pub fn mem_matrix(&self) -> Cow<'_, Matrix> {
        self.mem.to_matrix()
    }

    /// Direct access to all memory timestamps.
    pub fn mem_ts_all(&self) -> &[f32] {
        &self.mem_ts
    }

    /// The full mail matrix as f32 (checkpointing); see
    /// [`MemoryState::mem_matrix`].
    pub fn mail_matrix(&self) -> Cow<'_, Matrix> {
        self.mail.to_matrix()
    }

    /// Direct access to all mail timestamps (checkpointing).
    pub fn mail_ts_all(&self) -> &[f32] {
        &self.mail_ts
    }

    /// Per-node write versions (checkpointing; `0` = never written).
    pub fn node_versions(&self) -> &[u64] {
        &self.node_version
    }

    /// Reassembles a state from the exact parts a snapshot captured —
    /// the inverse of reading `mem_matrix`/`mail_matrix`/the timestamp
    /// slices/`node_versions`/`version`. Restored states answer every
    /// read (plain, versioned, delta) bit-identically to the original,
    /// which is what makes checkpoint restore transparent to the
    /// daemon's speculative-read protocol. Always restores the exact
    /// f32 representation; a quantized trainer chains
    /// [`MemoryState::into_quantized`], which is lossless on the
    /// bf16-grid values a quantized store checkpoints.
    ///
    /// # Panics
    /// Panics if the part shapes disagree with each other (callers
    /// deserializing external data validate shapes first).
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        mem: Matrix,
        mem_ts: Vec<f32>,
        mail: Matrix,
        mail_ts: Vec<f32>,
        write_seq: u64,
        node_version: Vec<u64>,
    ) -> Self {
        let num_nodes = mem.rows();
        assert_eq!(mail.rows(), num_nodes, "from_parts: mail rows");
        assert_eq!(mem_ts.len(), num_nodes, "from_parts: mem_ts len");
        assert_eq!(mail_ts.len(), num_nodes, "from_parts: mail_ts len");
        assert_eq!(
            node_version.len(),
            num_nodes,
            "from_parts: node_version len"
        );
        let d_mem = mem.cols();
        let mail_dim = mail.cols();
        Self {
            num_nodes,
            d_mem,
            mail_dim,
            mem: RowStore::F32(mem),
            mem_ts,
            mail: RowStore::F32(mail),
            mail_ts,
            write_seq,
            node_version,
            // Restored conservatively as "never reset". Safe: no
            // speculation spans a checkpoint restore, and the first
            // post-restore reset re-stamps it before any bounded
            // admission could consult it.
            last_reset_seq: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_of(nodes: Vec<u32>, d_mem: usize, mail_dim: usize, fill: f32, ts: f32) -> MemoryWrite {
        let n = nodes.len();
        MemoryWrite {
            nodes,
            mem: Matrix::full(n, d_mem, fill),
            mem_ts: vec![ts; n],
            mail: Matrix::full(n, mail_dim, fill * 2.0),
            mail_ts: vec![ts + 1.0; n],
        }
    }

    #[test]
    fn fresh_store_reads_zeros() {
        let s = MemoryState::new(5, 3, 7);
        let r = s.read(&[0, 4, 2]);
        assert_eq!(r.mem.shape(), (3, 3));
        assert_eq!(r.mail.shape(), (3, 7));
        assert!(r.mem.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(r.mem_ts, vec![0.0; 3]);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut s = MemoryState::new(5, 2, 4);
        s.write(&write_of(vec![1, 3], 2, 4, 0.5, 10.0));
        let r = s.read(&[3, 1, 0]);
        assert_eq!(r.mem.row(0), &[0.5, 0.5]);
        assert_eq!(r.mem.row(1), &[0.5, 0.5]);
        assert_eq!(r.mem.row(2), &[0.0, 0.0]);
        assert_eq!(r.mem_ts, vec![10.0, 10.0, 0.0]);
        assert_eq!(r.mail_ts, vec![11.0, 11.0, 0.0]);
    }

    #[test]
    fn duplicate_write_last_wins() {
        let mut s = MemoryState::new(3, 1, 1);
        let w = MemoryWrite {
            nodes: vec![2, 2],
            mem: Matrix::from_vec(2, 1, vec![1.0, 9.0]),
            mem_ts: vec![1.0, 2.0],
            mail: Matrix::from_vec(2, 1, vec![10.0, 90.0]),
            mail_ts: vec![1.0, 2.0],
        };
        s.write(&w);
        let r = s.read(&[2]);
        assert_eq!(r.mem.get(0, 0), 9.0);
        assert_eq!(r.mail.get(0, 0), 90.0);
        assert_eq!(r.mem_ts[0], 2.0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut s = MemoryState::new(4, 2, 2);
        s.write(&write_of(vec![0, 1, 2, 3], 2, 2, 1.0, 5.0));
        s.reset();
        let r = s.read(&[0, 1, 2, 3]);
        assert!(r.mem.as_slice().iter().all(|&v| v == 0.0));
        assert!(r.mail.as_slice().iter().all(|&v| v == 0.0));
        assert!(r.mem_ts.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn bytes_scales_with_nodes() {
        let a = MemoryState::new(100, 10, 20).bytes();
        let b = MemoryState::new(200, 10, 20).bytes();
        assert_eq!(b, a * 2);
    }

    #[test]
    #[should_panic(expected = "write: d_mem")]
    fn write_width_mismatch_panics() {
        let mut s = MemoryState::new(3, 2, 2);
        s.write(&write_of(vec![0], 3, 2, 1.0, 0.0));
    }

    #[test]
    fn versions_track_writes_per_node() {
        let mut s = MemoryState::new(4, 1, 1);
        assert_eq!(s.version(), 0);
        s.write(&write_of(vec![0, 2], 1, 1, 1.0, 1.0));
        s.write(&write_of(vec![2], 1, 1, 2.0, 2.0));
        let vr = s.read_versioned(&[0, 1, 2]);
        assert_eq!(vr.versions, vec![1, 0, 2]);
        assert_eq!(s.version(), 2);
        assert_eq!(vr.readout.mem.get(2, 0), 2.0);
    }

    #[test]
    fn delta_since_returns_exactly_rewritten_rows() {
        let mut s = MemoryState::new(6, 2, 2);
        s.write(&write_of(vec![0, 1, 2], 2, 2, 1.0, 1.0));
        let nodes = [0u32, 3, 1, 5];
        let tagged = s.read_versioned(&nodes);
        // Rewrite node 1 and (newly) node 5.
        s.write(&write_of(vec![1, 5], 2, 2, 9.0, 9.0));
        let d = s.delta_since(&nodes, &tagged.versions);
        assert_eq!(d.rows, vec![2, 3]);
        assert_eq!(d.mem.row(0), &[9.0, 9.0]);
        // Applying the delta reproduces a serialized read bit for bit.
        let mut patched = tagged.readout.clone();
        assert_eq!(d.apply(&mut patched), 2);
        let serialized = s.read(&nodes);
        assert_eq!(patched.mem, serialized.mem);
        assert_eq!(patched.mail, serialized.mail);
        assert_eq!(patched.mem_ts, serialized.mem_ts);
        assert_eq!(patched.mail_ts, serialized.mail_ts);
    }

    #[test]
    fn repair_since_matches_delta_apply() {
        let mut s = MemoryState::new(6, 2, 3);
        s.write(&write_of(vec![0, 1, 2, 4], 2, 3, 1.0, 1.0));
        let nodes = [4u32, 0, 5, 1];
        let tagged = s.read_versioned(&nodes);
        s.write(&write_of(vec![1, 5, 3], 2, 3, 8.0, 8.0));

        let mut via_delta = tagged.readout.clone();
        let d = s.delta_since(&nodes, &tagged.versions);
        let n_delta = d.apply(&mut via_delta);

        let mut via_repair = tagged.readout.clone();
        let n_repair = s.repair_since(&nodes, &tagged.versions, &mut via_repair);

        assert_eq!(n_delta, n_repair);
        assert_eq!(via_delta.mem, via_repair.mem);
        assert_eq!(via_delta.mail, via_repair.mail);
        assert_eq!(via_delta.mem_ts, via_repair.mem_ts);
        assert_eq!(via_delta.mail_ts, via_repair.mail_ts);
        assert_eq!(via_repair.mem, s.read(&nodes).mem);
    }

    #[test]
    fn repair_lagged_bound_zero_is_repair_since() {
        let mut s = MemoryState::new(6, 2, 3);
        s.write(&write_of(vec![0, 1, 2, 4], 2, 3, 1.0, 1.0));
        let nodes = [4u32, 0, 5, 1];
        let tagged = s.read_versioned(&nodes);
        s.write(&write_of(vec![1, 5, 3], 2, 3, 8.0, 8.0));

        let mut via_repair = tagged.readout.clone();
        let n_repair = s.repair_since(&nodes, &tagged.versions, &mut via_repair);

        let mut via_bounded = tagged.readout.clone();
        let outcome = s.repair_lagged(&nodes, &tagged.versions, &mut via_bounded, 0);

        assert_eq!(outcome.repaired, n_repair);
        assert_eq!(outcome.admitted_stale, 0);
        assert_eq!(outcome.max_lag, 0);
        assert!(outcome.admitted_rows.is_empty());
        assert_eq!(via_bounded.mem, via_repair.mem);
        assert_eq!(via_bounded.mail, via_repair.mail);
        assert_eq!(via_bounded.mem_ts, via_repair.mem_ts);
        assert_eq!(via_bounded.mail_ts, via_repair.mail_ts);
    }

    #[test]
    fn repair_lagged_admits_within_bound_repairs_beyond() {
        let mut s = MemoryState::new(6, 1, 1);
        s.write(&write_of(vec![0, 1, 2], 1, 1, 1.0, 1.0));
        let nodes = [0u32, 1, 2, 3];
        let tagged = s.read_versioned(&nodes);
        // Node 1 lags by 1 write, node 2 by 2, node 3 by 4 (tagged at
        // version 0, last written at sequence 4).
        s.write(&write_of(vec![1, 2], 1, 1, 5.0, 5.0));
        s.write(&write_of(vec![2, 3], 1, 1, 7.0, 7.0));
        s.write(&write_of(vec![3], 1, 1, 9.0, 9.0));

        let mut out = tagged.readout.clone();
        let outcome = s.repair_lagged(&nodes, &tagged.versions, &mut out, 2);
        // Rows 1 (lag 1) and 2 (lag 2) admitted; row 3 (lag 4)
        // exceeds the bound and repairs; row 0 is fresh.
        assert_eq!(outcome.admitted_rows, vec![1, 2]);
        assert_eq!(outcome.admitted_stale, 2);
        assert_eq!(outcome.repaired, 1);
        assert_eq!(outcome.max_lag, 2);
        assert_eq!(outcome.lag_sum, 3);
        // Admitted rows keep the stale tagged values...
        assert_eq!(out.mem.get(1, 0), 1.0);
        assert_eq!(out.mem.get(2, 0), 1.0);
        // ...while the out-of-bound row matches the serialized read.
        assert_eq!(out.mem.get(3, 0), 9.0);
        let serialized = s.read(&nodes);
        assert_eq!(out.mem.get(0, 0), serialized.mem.get(0, 0));
        assert_eq!(out.mem.get(3, 0), serialized.mem.get(3, 0));
    }

    #[test]
    fn repair_lagged_never_admits_across_reset() {
        let mut s = MemoryState::new(3, 1, 1);
        s.write(&write_of(vec![0, 1], 1, 1, 4.0, 1.0));
        let nodes = [0u32, 1];
        let tagged = s.read_versioned(&nodes);
        s.reset();
        // Post-reset lag is 1 for both rows — within any bound ≥ 1 —
        // but the reset barrier forces an exact repair anyway.
        let mut out = tagged.readout.clone();
        let outcome = s.repair_lagged(&nodes, &tagged.versions, &mut out, u64::MAX);
        assert_eq!(outcome.admitted_stale, 0);
        assert_eq!(outcome.repaired, 2);
        assert_eq!(out.mem.get(0, 0), 0.0);
        assert_eq!(out.mem.get(1, 0), 0.0);
    }

    #[test]
    fn reset_invalidates_all_tagged_rows() {
        let mut s = MemoryState::new(3, 1, 1);
        s.write(&write_of(vec![0], 1, 1, 4.0, 1.0));
        let nodes = [0u32, 1];
        let tagged = s.read_versioned(&nodes);
        s.reset();
        let d = s.delta_since(&nodes, &tagged.versions);
        assert_eq!(d.rows, vec![0, 1], "reset rewrites every node");
        let mut patched = tagged.readout.clone();
        d.apply(&mut patched);
        assert!(patched.mem.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn read_into_reuses_buffers_and_matches_read() {
        let mut s = MemoryState::new(8, 3, 2);
        s.write(&write_of(vec![1, 4, 6], 3, 2, 0.25, 2.0));
        let mut scratch = MemoryReadout::default();
        s.read_into(&[4, 0, 6, 6], &mut scratch);
        let fresh = s.read(&[4, 0, 6, 6]);
        assert_eq!(scratch.mem, fresh.mem);
        assert_eq!(scratch.mail_ts, fresh.mail_ts);
        // Reuse with a different shape: contents must still match.
        s.read_into(&[1], &mut scratch);
        assert_eq!(scratch.mem, s.read(&[1]).mem);
        assert_eq!(scratch.mem_ts.len(), 1);
    }

    #[test]
    fn from_parts_roundtrips_reads_and_versions() {
        let mut s = MemoryState::new(6, 2, 3);
        s.reset();
        s.write(&write_of(vec![0, 2, 5], 2, 3, 1.5, 3.0));
        s.write(&write_of(vec![2], 2, 3, -2.0, 4.0));
        let r = MemoryState::from_parts(
            s.mem_matrix().into_owned(),
            s.mem_ts_all().to_vec(),
            s.mail_matrix().into_owned(),
            s.mail_ts_all().to_vec(),
            s.version(),
            s.node_versions().to_vec(),
        );
        assert_eq!(r.checksum(), s.checksum());
        assert_eq!(r.version(), s.version());
        assert_eq!(r.node_versions(), s.node_versions());
        let nodes = [5u32, 2, 1];
        let a = s.read_versioned(&nodes);
        let b = r.read_versioned(&nodes);
        assert_eq!(a.versions, b.versions);
        assert_eq!(a.readout.mem, b.readout.mem);
        assert_eq!(a.readout.mail_ts, b.readout.mail_ts);
    }

    #[test]
    fn quantized_store_halves_row_bytes() {
        let exact = MemoryState::new(128, 100, 212);
        let quant = MemoryState::new_quantized(128, 100, 212);
        assert!(!exact.quantized());
        assert!(quant.quantized());
        let fixed = 128 * (2 * 4 + 8); // timestamps + versions
        let exact_rows = exact.bytes() - fixed;
        let quant_rows = quant.bytes() - fixed;
        assert_eq!(exact_rows, 2 * quant_rows);
        assert_eq!(quant.elem_bytes(), 2);
        assert_eq!(quant.row_payload_bytes(), (100 + 212) * 2 + 8);
        assert_eq!(exact.row_payload_bytes(), (100 + 212) * 4 + 8);
    }

    #[test]
    fn quantized_write_read_roundtrip_is_bounded() {
        let mut s = MemoryState::new_quantized(4, 3, 2);
        let w = MemoryWrite {
            nodes: vec![1, 3],
            mem: Matrix::from_vec(2, 3, vec![0.1017, -2.338, 7.77, 1.0, 0.5, -0.25]),
            mem_ts: vec![3.0, 4.0],
            mail: Matrix::from_vec(2, 2, vec![0.333, -0.777, 123.456, -9.87]),
            mail_ts: vec![3.5, 4.5],
        };
        s.write(&w);
        let r = s.read(&[1, 3]);
        for (got, want) in r.mem.as_slice().iter().zip(w.mem.as_slice()) {
            let rel = ((got - want) / want).abs();
            assert!(rel <= 2.0f32.powi(-8), "{want} -> {got}");
        }
        // Exactly representable values survive unchanged; timestamps
        // are never quantized.
        assert_eq!(r.mem.row(1), &[1.0, 0.5, -0.25]);
        assert_eq!(r.mem_ts, vec![3.0, 4.0]);
        assert_eq!(r.mail_ts, vec![3.5, 4.5]);
    }

    #[test]
    fn quantized_delta_and_repair_stay_consistent() {
        // The speculative-read → delta → repair protocol must hold
        // bit-for-bit on a quantized store too: reads present decoded
        // values, so a repaired readout equals a serialized read.
        let mut s = MemoryState::new_quantized(6, 2, 3);
        s.write(&MemoryWrite {
            nodes: vec![0, 1, 2, 4],
            mem: Matrix::from_fn(4, 2, |r, c| 0.317 * (r * 2 + c) as f32 - 0.5),
            mem_ts: vec![1.0; 4],
            mail: Matrix::from_fn(4, 3, |r, c| -0.123 * (r * 3 + c) as f32 + 0.25),
            mail_ts: vec![1.5; 4],
        });
        let nodes = [4u32, 0, 5, 1];
        let tagged = s.read_versioned(&nodes);
        s.write(&write_of(vec![1, 5, 3], 2, 3, 8.125, 8.0));

        let mut via_delta = tagged.readout.clone();
        let d = s.delta_since(&nodes, &tagged.versions);
        d.apply(&mut via_delta);
        let mut via_repair = tagged.readout.clone();
        s.repair_since(&nodes, &tagged.versions, &mut via_repair);

        let serialized = s.read(&nodes);
        assert_eq!(via_delta.mem, serialized.mem);
        assert_eq!(via_repair.mem, serialized.mem);
        assert_eq!(via_delta.mail, serialized.mail);
        assert_eq!(via_repair.mail, serialized.mail);
    }

    #[test]
    fn quantized_checkpoint_roundtrip_is_lossless() {
        // Quantized store -> f32 parts (decoded) -> from_parts ->
        // into_quantized must reproduce the store bit for bit: every
        // decoded value is on the bf16 grid, so re-encoding is exact.
        let mut s = MemoryState::new_quantized(5, 3, 2);
        s.write(&MemoryWrite {
            nodes: vec![0, 2, 4],
            mem: Matrix::from_fn(3, 3, |r, c| 0.7131 * (r + c) as f32 - 1.1),
            mem_ts: vec![2.0; 3],
            mail: Matrix::from_fn(3, 2, |r, c| 3.33 * (r as f32) - 0.01 * c as f32),
            mail_ts: vec![2.5; 3],
        });
        let restored = MemoryState::from_parts(
            s.mem_matrix().into_owned(),
            s.mem_ts_all().to_vec(),
            s.mail_matrix().into_owned(),
            s.mail_ts_all().to_vec(),
            s.version(),
            s.node_versions().to_vec(),
        )
        .into_quantized();
        assert!(restored.quantized());
        assert_eq!(restored.checksum(), s.checksum());
        assert_eq!(restored.bytes(), s.bytes());
        let a = s.read(&[0, 1, 2, 3, 4]);
        let b = restored.read(&[0, 1, 2, 3, 4]);
        assert_eq!(a.mem, b.mem);
        assert_eq!(a.mail, b.mail);
    }

    #[test]
    fn checksum_reflects_contents_not_versions() {
        let mut a = MemoryState::new(5, 2, 2);
        let mut b = MemoryState::new(5, 2, 2);
        assert_eq!(a.checksum(), b.checksum());
        a.write(&write_of(vec![1], 2, 2, 1.0, 1.0));
        assert_ne!(a.checksum(), b.checksum());
        // Same contents via a different write history (extra redundant
        // write bumps versions but not contents).
        b.write(&write_of(vec![1], 2, 2, 1.0, 1.0));
        b.write(&write_of(vec![1], 2, 2, 1.0, 1.0));
        assert_eq!(a.checksum(), b.checksum());
    }
}
