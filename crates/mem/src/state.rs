//! The plain node-memory + mailbox store.

use disttgl_tensor::Matrix;

/// A read result for a batch of nodes: gathered memory rows, mail rows,
/// and their timestamps, in query order.
#[derive(Clone, Debug, Default)]
pub struct MemoryReadout {
    /// Node memory rows, `nodes × d_mem`.
    pub mem: Matrix,
    /// Last-update timestamp of each node's memory.
    pub mem_ts: Vec<f32>,
    /// Cached mail rows, `nodes × mail_dim`.
    pub mail: Matrix,
    /// Timestamp of each cached mail (0 when none has arrived yet).
    pub mail_ts: Vec<f32>,
}

/// A write request: new memory and mail rows for `nodes` (the batch's
/// root nodes only — supporting nodes are never written back, §3.2.1).
#[derive(Clone, Debug, Default)]
pub struct MemoryWrite {
    /// Target node ids.
    pub nodes: Vec<u32>,
    /// New memory rows, `nodes.len() × d_mem`.
    pub mem: Matrix,
    /// New memory timestamps.
    pub mem_ts: Vec<f32>,
    /// New mail rows, `nodes.len() × mail_dim`.
    pub mail: Matrix,
    /// New mail timestamps.
    pub mail_ts: Vec<f32>,
}

/// Dense node-memory + mailbox store for one memory replica.
///
/// Memory-parallel training (`k > 1`) instantiates `k` of these; the
/// paper's Table 1 "Main memory requirement: k times single-GPU" is
/// exactly this replication.
#[derive(Clone, Debug)]
pub struct MemoryState {
    num_nodes: usize,
    d_mem: usize,
    mail_dim: usize,
    mem: Matrix,
    mem_ts: Vec<f32>,
    mail: Matrix,
    mail_ts: Vec<f32>,
}

impl MemoryState {
    /// Allocates a zeroed store (`s_v` initialized to zero vectors,
    /// §2.1).
    pub fn new(num_nodes: usize, d_mem: usize, mail_dim: usize) -> Self {
        Self {
            num_nodes,
            d_mem,
            mail_dim,
            mem: Matrix::zeros(num_nodes, d_mem),
            mem_ts: vec![0.0; num_nodes],
            mail: Matrix::zeros(num_nodes, mail_dim),
            mail_ts: vec![0.0; num_nodes],
        }
    }

    /// Node count.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Memory width.
    pub fn d_mem(&self) -> usize {
        self.d_mem
    }

    /// Mail width (`2·d_mem + d_time + d_edge`).
    pub fn mail_dim(&self) -> usize {
        self.mail_dim
    }

    /// Resets everything to zero (epoch boundary).
    pub fn reset(&mut self) {
        self.mem.zero();
        self.mem_ts.fill(0.0);
        self.mail.zero();
        self.mail_ts.fill(0.0);
    }

    /// Gathers rows for `nodes` in query order.
    pub fn read(&self, nodes: &[u32]) -> MemoryReadout {
        let idx: Vec<usize> = nodes.iter().map(|&n| n as usize).collect();
        MemoryReadout {
            mem: self.mem.gather_rows(&idx),
            mem_ts: idx.iter().map(|&i| self.mem_ts[i]).collect(),
            mail: self.mail.gather_rows(&idx),
            mail_ts: idx.iter().map(|&i| self.mail_ts[i]).collect(),
        }
    }

    /// Applies a write. Duplicate nodes resolve to the **last**
    /// occurrence (chronological order ⇒ most recent mail wins, the
    /// TGN-attn `COMB`).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn write(&mut self, w: &MemoryWrite) {
        assert_eq!(w.mem.rows(), w.nodes.len(), "write: mem rows");
        assert_eq!(w.mail.rows(), w.nodes.len(), "write: mail rows");
        assert_eq!(w.mem_ts.len(), w.nodes.len(), "write: mem_ts len");
        assert_eq!(w.mail_ts.len(), w.nodes.len(), "write: mail_ts len");
        assert_eq!(w.mem.cols(), self.d_mem, "write: d_mem");
        assert_eq!(w.mail.cols(), self.mail_dim, "write: mail_dim");
        let idx: Vec<usize> = w.nodes.iter().map(|&n| n as usize).collect();
        self.mem.scatter_rows(&idx, &w.mem);
        self.mail.scatter_rows(&idx, &w.mail);
        for (&i, (&mts, &lts)) in idx.iter().zip(w.mem_ts.iter().zip(&w.mail_ts)) {
            self.mem_ts[i] = mts;
            self.mail_ts[i] = lts;
        }
    }

    /// Byte size of one full replica (for the Table 1 memory-footprint
    /// accounting and the planner's capacity constraint).
    pub fn bytes(&self) -> usize {
        (self.mem.len() + self.mail.len()) * std::mem::size_of::<f32>()
            + (self.mem_ts.len() + self.mail_ts.len()) * std::mem::size_of::<f32>()
    }

    /// Direct access to the full memory matrix (evaluation sweeps).
    pub fn mem_matrix(&self) -> &Matrix {
        &self.mem
    }

    /// Direct access to all memory timestamps.
    pub fn mem_ts_all(&self) -> &[f32] {
        &self.mem_ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_of(nodes: Vec<u32>, d_mem: usize, mail_dim: usize, fill: f32, ts: f32) -> MemoryWrite {
        let n = nodes.len();
        MemoryWrite {
            nodes,
            mem: Matrix::full(n, d_mem, fill),
            mem_ts: vec![ts; n],
            mail: Matrix::full(n, mail_dim, fill * 2.0),
            mail_ts: vec![ts + 1.0; n],
        }
    }

    #[test]
    fn fresh_store_reads_zeros() {
        let s = MemoryState::new(5, 3, 7);
        let r = s.read(&[0, 4, 2]);
        assert_eq!(r.mem.shape(), (3, 3));
        assert_eq!(r.mail.shape(), (3, 7));
        assert!(r.mem.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(r.mem_ts, vec![0.0; 3]);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut s = MemoryState::new(5, 2, 4);
        s.write(&write_of(vec![1, 3], 2, 4, 0.5, 10.0));
        let r = s.read(&[3, 1, 0]);
        assert_eq!(r.mem.row(0), &[0.5, 0.5]);
        assert_eq!(r.mem.row(1), &[0.5, 0.5]);
        assert_eq!(r.mem.row(2), &[0.0, 0.0]);
        assert_eq!(r.mem_ts, vec![10.0, 10.0, 0.0]);
        assert_eq!(r.mail_ts, vec![11.0, 11.0, 0.0]);
    }

    #[test]
    fn duplicate_write_last_wins() {
        let mut s = MemoryState::new(3, 1, 1);
        let w = MemoryWrite {
            nodes: vec![2, 2],
            mem: Matrix::from_vec(2, 1, vec![1.0, 9.0]),
            mem_ts: vec![1.0, 2.0],
            mail: Matrix::from_vec(2, 1, vec![10.0, 90.0]),
            mail_ts: vec![1.0, 2.0],
        };
        s.write(&w);
        let r = s.read(&[2]);
        assert_eq!(r.mem.get(0, 0), 9.0);
        assert_eq!(r.mail.get(0, 0), 90.0);
        assert_eq!(r.mem_ts[0], 2.0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut s = MemoryState::new(4, 2, 2);
        s.write(&write_of(vec![0, 1, 2, 3], 2, 2, 1.0, 5.0));
        s.reset();
        let r = s.read(&[0, 1, 2, 3]);
        assert!(r.mem.as_slice().iter().all(|&v| v == 0.0));
        assert!(r.mail.as_slice().iter().all(|&v| v == 0.0));
        assert!(r.mem_ts.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn bytes_scales_with_nodes() {
        let a = MemoryState::new(100, 10, 20).bytes();
        let b = MemoryState::new(200, 10, 20).bytes();
        assert_eq!(b, a * 2);
    }

    #[test]
    #[should_panic(expected = "write: d_mem")]
    fn write_width_mismatch_panics() {
        let mut s = MemoryState::new(3, 2, 2);
        s.write(&write_of(vec![0], 3, 2, 1.0, 0.0));
    }
}
