//! The in-memory dataset bundle and its Table-2 statistics.

use disttgl_graph::TemporalGraph;
use disttgl_tensor::Matrix;

/// The downstream task a dataset is evaluated on (paper §4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Task {
    /// Temporal link prediction, reported as MRR over 49 sampled
    /// negatives (Wikipedia, Reddit, MOOC, Flights).
    LinkPrediction,
    /// Multi-label dynamic edge classification, reported as F1-micro
    /// (GDELT: 56-class, 6-label).
    EdgeClassification,
}

/// A complete dataset: the event log plus per-event features/labels.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Dataset name (`wikipedia`, `reddit`, `mooc`, `flights`, `gdelt`).
    pub name: String,
    /// The temporal graph (chronologically sorted event log).
    pub graph: TemporalGraph,
    /// Edge features, `num_events × d_e` (`d_e` may be 0 — MOOC and
    /// Flights carry none, matching Table 2).
    pub edge_features: Matrix,
    /// Multi-label 0/1 targets `num_events × num_classes` for
    /// edge-classification datasets; `None` for link prediction.
    pub labels: Option<Matrix>,
    /// The evaluation task.
    pub task: Task,
}

/// One row of the paper's Table 2.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Node count |V|.
    pub num_nodes: usize,
    /// Event count |E|.
    pub num_events: usize,
    /// Maximum edge timestamp.
    pub max_t: f32,
    /// Edge feature width |d_e|.
    pub d_e: usize,
    /// Whether the graph is bipartite.
    pub bipartite: bool,
}

impl Dataset {
    /// Edge feature width.
    pub fn edge_dim(&self) -> usize {
        self.edge_features.cols()
    }

    /// Number of label classes (0 for link-prediction datasets).
    pub fn num_classes(&self) -> usize {
        self.labels.as_ref().map_or(0, |l| l.cols())
    }

    /// Table-2 statistics row.
    pub fn stats(&self) -> DatasetStats {
        DatasetStats {
            name: self.name.clone(),
            num_nodes: self.graph.num_nodes(),
            num_events: self.graph.num_events(),
            max_t: self.graph.max_time(),
            d_e: self.edge_dim(),
            bipartite: self.graph.bipartite_boundary().is_some(),
        }
    }

    /// Consistency checks tying the bundle together; used by tests and
    /// debug assertions in the trainer.
    pub fn validate(&self) -> Result<(), String> {
        if self.edge_features.rows() != self.graph.num_events() && self.edge_dim() > 0 {
            return Err(format!(
                "edge feature rows {} != events {}",
                self.edge_features.rows(),
                self.graph.num_events()
            ));
        }
        if let Some(labels) = &self.labels {
            if labels.rows() != self.graph.num_events() {
                return Err(format!(
                    "label rows {} != events {}",
                    labels.rows(),
                    self.graph.num_events()
                ));
            }
            if labels.as_slice().iter().any(|&v| v != 0.0 && v != 1.0) {
                return Err("labels must be 0/1".into());
            }
        }
        if self.task == Task::EdgeClassification && self.labels.is_none() {
            return Err("edge classification requires labels".into());
        }
        if let Some(b) = self.graph.bipartite_boundary() {
            for e in self.graph.events() {
                if (e.src >= b) == (e.dst >= b) {
                    return Err(format!("bipartite violation: {:?}", e));
                }
            }
        }
        Ok(())
    }
}
