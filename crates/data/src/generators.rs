//! Synthetic dataset generators matching the paper's Table 2.
//!
//! The real datasets (JODIE's Wikipedia/Reddit/MOOC, the Flights
//! benchmark, and TGL's GDELT dump) are not redistributable here, so
//! each generator plants the structure that makes its real counterpart
//! learnable by a memory-based TGNN:
//!
//! * **recurrence** — users re-interact with a small personal set of
//!   items (Wikipedia editors revisit pages, Reddit users repost to
//!   the same subreddits, airlines re-fly routes);
//! * **popularity skew** — Zipf-distributed node activity producing
//!   the long-tail degree curves that Figures 5 and 8 sort by;
//! * **recency** — exponential inter-event gaps per user, so the time
//!   encoding carries signal;
//! * **community labels** (GDELT) — event classes determined by the
//!   actor communities, so edge classification is learnable from
//!   structure.
//!
//! Every generator takes a `scale` in `(0, 1]`: node and event counts
//! are the paper's Table 2 numbers multiplied by `scale` (with small
//! floors), keeping the events-per-node density — the property that
//! drives node-memory behaviour — approximately constant.

use crate::dataset::{Dataset, Task};
use disttgl_graph::{Event, TemporalGraph};
use disttgl_tensor::Matrix;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Zipf-like sampler over `n` ranks with exponent `alpha`
/// (cumulative-table + binary search; build O(n), sample O(log n)).
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Parameters for the shared bipartite interaction generator.
struct BipartiteSpec {
    name: &'static str,
    num_users: usize,
    num_items: usize,
    num_events: usize,
    max_t: f64,
    edge_dim: usize,
    /// Probability that a user's next event revisits its personal
    /// preference set rather than exploring a popular item.
    repeat_prob: f64,
    /// Personal preference-set size.
    pref_size: usize,
    /// Zipf exponent for user activity.
    user_alpha: f64,
    /// Zipf exponent for item popularity.
    item_alpha: f64,
}

/// Shared bipartite user–item interaction generator
/// (Wikipedia / Reddit / MOOC analogs).
fn bipartite(spec: &BipartiteSpec, seed: u64) -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let users = spec.num_users;
    let items = spec.num_items;
    let n = users + items;
    let user_zipf = Zipf::new(users, spec.user_alpha);
    let item_zipf = Zipf::new(items, spec.item_alpha);

    // Personal preference sets: popularity-biased, fixed per user.
    let prefs: Vec<Vec<u32>> = (0..users)
        .map(|_| {
            (0..spec.pref_size)
                .map(|_| (users + item_zipf.sample(&mut rng)) as u32)
                .collect()
        })
        .collect();

    // Low-rank item signatures drive the edge features so that
    // features correlate with the item (learnable structure).
    let sig_rank = 8.min(spec.edge_dim.max(1));
    let item_sig = if spec.edge_dim > 0 {
        Matrix::normal(items, sig_rank, 1.0, &mut rng)
    } else {
        Matrix::zeros(0, 0)
    };
    let projection = if spec.edge_dim > 0 {
        Matrix::normal(sig_rank, spec.edge_dim, 0.5, &mut rng)
    } else {
        Matrix::zeros(0, 0)
    };

    let mut events = Vec::with_capacity(spec.num_events);
    let mut edge_feat = Matrix::zeros(
        if spec.edge_dim > 0 {
            spec.num_events
        } else {
            0
        },
        spec.edge_dim,
    );
    // Homogeneous-rate arrivals over [0, max_t]: draw gaps ~ Exp and
    // rescale so max(t) lands on the Table-2 value.
    let mut gaps: Vec<f64> = (0..spec.num_events)
        .map(|_| -(1.0 - rng.gen::<f64>()).ln())
        .collect();
    let total: f64 = gaps.iter().sum();
    let rescale = spec.max_t / total;
    for g in &mut gaps {
        *g *= rescale;
    }
    let mut t = 0.0f64;
    for (eid, gap) in gaps.iter().enumerate() {
        t += gap;
        let user = user_zipf.sample(&mut rng);
        let item = if rng.gen_bool(spec.repeat_prob) {
            prefs[user][rng.gen_range(0..spec.pref_size)]
        } else {
            (users + item_zipf.sample(&mut rng)) as u32
        };
        events.push(Event {
            src: user as u32,
            dst: item,
            t: t as f32,
            eid: eid as u32,
        });
        if spec.edge_dim > 0 {
            let item_row = item_sig.row(item as usize - users);
            let feat_row = edge_feat.row_mut(eid);
            for (j, f) in feat_row.iter_mut().enumerate() {
                let mut dot = 0.0;
                for (r, &s) in item_row.iter().enumerate() {
                    dot += s * projection.get(r, j);
                }
                *f = dot + 0.1 * (rng.gen::<f32>() - 0.5);
            }
        }
    }

    let graph = TemporalGraph::new(n, events).with_bipartite_boundary(users as u32);
    Dataset {
        name: spec.name.to_string(),
        graph,
        edge_features: edge_feat,
        labels: None,
        task: Task::LinkPrediction,
    }
}

fn scaled(base: usize, scale: f64, floor: usize) -> usize {
    ((base as f64 * scale).round() as usize).max(floor)
}

/// Wikipedia analog: 9,227 nodes / 157,474 events / max_t 2.7e6 /
/// 172-d edge features; bipartite user–page graph with strong revisit
/// behaviour (editors repeatedly modify the same pages).
pub fn wikipedia(scale: f64, seed: u64) -> Dataset {
    let users = scaled(8_227, scale, 48);
    let items = scaled(1_000, scale, 16);
    bipartite(
        &BipartiteSpec {
            name: "wikipedia",
            num_users: users,
            num_items: items,
            num_events: scaled(157_474, scale, 512),
            max_t: 2.7e6 * scale,
            edge_dim: 172,
            repeat_prob: 0.8,
            pref_size: 3,
            user_alpha: 1.1,
            item_alpha: 1.1,
        },
        seed,
    )
}

/// Reddit analog: 10,984 nodes / 672,447 events / max_t 2.7e6 / 172-d
/// edge features; denser than Wikipedia (61 events/node vs 17), with
/// users posting into a few favourite subreddits.
pub fn reddit(scale: f64, seed: u64) -> Dataset {
    let users = scaled(10_000, scale, 48);
    let items = scaled(984, scale, 16);
    bipartite(
        &BipartiteSpec {
            name: "reddit",
            num_users: users,
            num_items: items,
            num_events: scaled(672_447, scale, 1024),
            max_t: 2.7e6 * scale,
            edge_dim: 172,
            repeat_prob: 0.85,
            pref_size: 2,
            user_alpha: 1.2,
            item_alpha: 1.3,
        },
        seed,
    )
}

/// MOOC analog: 7,144 nodes / 411,749 events / max_t 2.6e7 / no edge
/// features; students progressing through course items — moderate
/// repetition, sequential drift through the item set.
pub fn mooc(scale: f64, seed: u64) -> Dataset {
    let users = scaled(7_047, scale, 48);
    let items = scaled(97, scale, 12);
    bipartite(
        &BipartiteSpec {
            name: "mooc",
            num_users: users,
            num_items: items,
            num_events: scaled(411_749, scale, 1024),
            max_t: 2.6e7 * scale,
            edge_dim: 0,
            repeat_prob: 0.6,
            pref_size: 4,
            user_alpha: 0.9,
            item_alpha: 0.8,
        },
        seed,
    )
}

/// Flights analog: 13,169 nodes / 1,927,145 events / max_t 1.0e7 / no
/// edge features; a non-bipartite traffic graph whose edges repeat
/// heavily (scheduled routes between hub-skewed airports). Flights has
/// the most unique edges of the small datasets (§4.1), which the route
/// construction reflects.
pub fn flights(scale: f64, seed: u64) -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = scaled(13_169, scale, 64);
    let num_events = scaled(1_927_145, scale, 2048);
    let max_t = 1.0e7 * scale;
    // Route network: preferential-attachment style — each airport keeps
    // a handful of routes biased toward hub airports.
    let hub_zipf = Zipf::new(n, 1.0);
    let routes_per_airport = 6;
    let routes: Vec<Vec<u32>> = (0..n)
        .map(|a| {
            (0..routes_per_airport)
                .map(|_| {
                    let mut b = hub_zipf.sample(&mut rng);
                    if b == a {
                        b = (b + 1) % n;
                    }
                    b as u32
                })
                .collect()
        })
        .collect();

    let mut events = Vec::with_capacity(num_events);
    let mut t = 0.0f64;
    let mean_gap = max_t / num_events as f64;
    for eid in 0..num_events {
        t += -(1.0 - rng.gen::<f64>()).ln() * mean_gap;
        let src = hub_zipf.sample(&mut rng);
        // Mostly scheduled routes; occasional new city pair.
        let dst = if rng.gen_bool(0.75) {
            routes[src][rng.gen_range(0..routes_per_airport)]
        } else {
            let mut d = rng.gen_range(0..n);
            if d == src {
                d = (d + 1) % n;
            }
            d as u32
        };
        events.push(Event {
            src: src as u32,
            dst,
            t: t as f32,
            eid: eid as u32,
        });
    }
    let graph = TemporalGraph::new(n, events);
    Dataset {
        name: "flights".to_string(),
        graph,
        edge_features: Matrix::zeros(0, 0),
        labels: None,
        task: Task::LinkPrediction,
    }
}

/// GDELT analog: 16,682 actors / 191M events (scaled!) / max_t 1.6e8 /
/// 130-d CAMEO-style edge features / 56-class 6-label edge
/// classification. Actors belong to latent communities; the label set
/// of an event is a fixed 6-class signature of the (src community,
/// dst community) pair, and edge features are a noisy encoding of the
/// event type — both learnable from interaction structure.
///
/// `scale` here is applied to the *event* count directly; use values
/// around 1e-3–1e-2 to stay CPU-friendly.
pub fn gdelt(scale: f64, seed: u64) -> Dataset {
    const NUM_CLASSES: usize = 56;
    const LABELS_PER_EVENT: usize = 6;
    const NUM_COMMUNITIES: usize = 14;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = scaled(16_682, scale.sqrt().min(1.0), 96);
    let num_events = scaled(191_290_882, scale, 4096);
    let max_t = 1.6e8 * scale;

    // Community assignment, Zipf-skewed actor activity.
    let communities: Vec<usize> = (0..n).map(|_| rng.gen_range(0..NUM_COMMUNITIES)).collect();
    let actor_zipf = Zipf::new(n, 1.05);

    // Fixed 6-label signature per community pair.
    let mut signatures = vec![[0usize; LABELS_PER_EVENT]; NUM_COMMUNITIES * NUM_COMMUNITIES];
    for sig in &mut signatures {
        for (slot, s) in sig.iter_mut().enumerate() {
            *s = (rng.gen_range(0..NUM_CLASSES / LABELS_PER_EVENT)) * LABELS_PER_EVENT + slot;
        }
    }

    let mut events = Vec::with_capacity(num_events);
    let mut labels = Matrix::zeros(num_events, NUM_CLASSES);
    let mut edge_feat = Matrix::zeros(num_events, 130);
    let mut t = 0.0f64;
    let mean_gap = max_t / num_events as f64;
    for eid in 0..num_events {
        t += -(1.0 - rng.gen::<f64>()).ln() * mean_gap;
        let src = actor_zipf.sample(&mut rng);
        // Actors interact mostly within related communities.
        let dst = loop {
            let cand = if rng.gen_bool(0.7) {
                // Community-biased pick: rejection-sample a same-community actor.
                let mut d = actor_zipf.sample(&mut rng);
                let mut tries = 0;
                while communities[d] != communities[src] && tries < 8 {
                    d = actor_zipf.sample(&mut rng);
                    tries += 1;
                }
                d
            } else {
                actor_zipf.sample(&mut rng)
            };
            if cand != src {
                break cand;
            }
        };
        events.push(Event {
            src: src as u32,
            dst: dst as u32,
            t: t as f32,
            eid: eid as u32,
        });

        let pair = communities[src] * NUM_COMMUNITIES + communities[dst];
        for &class in &signatures[pair] {
            labels.set(eid, class, 1.0);
        }
        // CAMEO-ish features: noisy indicator of the signature classes
        // folded into 130 dims.
        let feat = edge_feat.row_mut(eid);
        for &class in &signatures[pair] {
            feat[class % 130] += 1.0;
        }
        for f in feat.iter_mut() {
            *f += 0.05 * (rng.gen::<f32>() - 0.5);
        }
    }

    let graph = TemporalGraph::new(n, events);
    Dataset {
        name: "gdelt".to_string(),
        graph,
        edge_features: edge_feat,
        labels: Some(labels),
        task: Task::EdgeClassification,
    }
}

/// Generates a dataset by name (bench-harness convenience).
///
/// # Panics
/// Panics on an unknown name.
pub fn by_name(name: &str, scale: f64, seed: u64) -> Dataset {
    match name {
        "wikipedia" => wikipedia(scale, seed),
        "reddit" => reddit(scale, seed),
        "mooc" => mooc(scale, seed),
        "flights" => flights(scale, seed),
        "gdelt" => gdelt(scale, seed),
        other => panic!("unknown dataset {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wikipedia_structure() {
        let d = wikipedia(0.02, 7);
        d.validate().unwrap();
        assert_eq!(d.task, Task::LinkPrediction);
        assert_eq!(d.edge_dim(), 172);
        assert!(d.graph.bipartite_boundary().is_some());
        let stats = d.stats();
        assert!(stats.num_events >= 512);
        // Chronologically sorted with non-negative times.
        let evs = d.graph.events();
        for w in evs.windows(2) {
            assert!(w[0].t <= w[1].t);
        }
        assert!(evs[0].t >= 0.0);
    }

    #[test]
    fn determinism_per_seed() {
        let a = wikipedia(0.01, 42);
        let b = wikipedia(0.01, 42);
        assert_eq!(a.graph.events(), b.graph.events());
        assert_eq!(a.edge_features, b.edge_features);
        let c = wikipedia(0.01, 43);
        assert_ne!(a.graph.events(), c.graph.events());
    }

    #[test]
    fn mooc_and_flights_have_no_edge_features() {
        assert_eq!(mooc(0.01, 1).edge_dim(), 0);
        assert_eq!(flights(0.005, 1).edge_dim(), 0);
    }

    #[test]
    fn flights_is_not_bipartite_and_repeats_routes() {
        let d = flights(0.01, 3);
        d.validate().unwrap();
        assert!(d.graph.bipartite_boundary().is_none());
        // Route repetition: unique (src,dst) pairs well below events.
        let mut pairs: Vec<(u32, u32)> = d.graph.events().iter().map(|e| (e.src, e.dst)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        assert!(
            pairs.len() < d.graph.num_events() * 9 / 10,
            "unique {} of {}",
            pairs.len(),
            d.graph.num_events()
        );
    }

    #[test]
    fn gdelt_labels_are_six_per_event() {
        let d = gdelt(2e-5, 5);
        d.validate().unwrap();
        assert_eq!(d.task, Task::EdgeClassification);
        assert_eq!(d.num_classes(), 56);
        assert_eq!(d.edge_dim(), 130);
        let labels = d.labels.as_ref().unwrap();
        for r in 0..labels.rows() {
            let count: f32 = labels.row(r).iter().sum();
            assert_eq!(count, 6.0, "event {} has {} labels", r, count);
        }
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let d = wikipedia(0.02, 9);
        let mut deg = d.graph.degrees();
        deg.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile: usize = (deg.len() / 10).max(1);
        let top_sum: u64 = deg[..top_decile].iter().map(|&d| d as u64).sum();
        let total: u64 = deg.iter().map(|&d| d as u64).sum();
        // Zipf activity: top 10% of nodes carry well over 10% of events.
        assert!(
            top_sum as f64 > 0.3 * total as f64,
            "top {} total {}",
            top_sum,
            total
        );
    }

    #[test]
    fn by_name_roundtrip() {
        for name in ["wikipedia", "reddit", "mooc", "flights", "gdelt"] {
            let scale = if name == "gdelt" { 2e-5 } else { 0.005 };
            let d = by_name(name, scale, 1);
            assert_eq!(d.name, name);
            d.validate().unwrap();
        }
    }

    #[test]
    fn max_t_tracks_scale() {
        let d = wikipedia(0.01, 2);
        let expected = 2.7e6 * 0.01;
        assert!((d.graph.max_time() as f64) < expected * 1.5);
        assert!((d.graph.max_time() as f64) > expected * 0.5);
    }
}
