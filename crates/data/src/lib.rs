//! # disttgl-data
//!
//! Synthetic temporal-graph datasets for the DistTGL reproduction.
//!
//! The paper evaluates on Wikipedia, Reddit, MOOC, Flights (temporal
//! link prediction) and GDELT (dynamic edge classification) — see its
//! Table 2. Those datasets are external downloads; this crate builds
//! **statistically matched synthetic analogs** with planted structure
//! (recurrence, popularity skew, recency, community labels) so that
//! every experiment exercises the same code paths and produces
//! meaningful learning curves. See `DESIGN.md` §1 for the substitution
//! rationale.
//!
//! * [`Dataset`] — event log + edge features + labels + task;
//! * [`generators`] — the five named generators, each with a `scale`
//!   knob that shrinks Table-2 sizes proportionally;
//! * [`NegativeStore`] / [`EvalNegatives`] — the paper's pre-sampled
//!   negative-group scheme and the 49-negative MRR evaluation draws.

mod dataset;
pub mod generators;
mod negative;
pub mod persist;

pub use dataset::{Dataset, DatasetStats, Task};
pub use negative::{negative_range, EvalNegatives, NegativeStore};
