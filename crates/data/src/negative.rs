//! Negative sampling for self-supervised temporal link prediction.
//!
//! Following the paper's §4 protocol:
//!
//! * training uses 1 sampled negative destination per positive event;
//! * evaluation ranks the true destination against **49** sampled
//!   negatives (MRR);
//! * on bipartite graphs, negatives are drawn only from the opposite
//!   partition;
//! * the paper pre-samples **10 groups** of negative edges and reuses
//!   them across the 100 epochs ("we prepare 10 groups of negative
//!   edges and randomly use them in the total 100 epochs", §4.0.2) —
//!   [`NegativeStore`] reproduces exactly that, and is also what epoch
//!   parallelism hands to the `j` trainers (same positives, *different*
//!   negative groups).

use disttgl_graph::TemporalGraph;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::ops::Range;

/// The node-id range negatives are drawn from: the destination
/// partition for bipartite graphs, all nodes otherwise.
pub fn negative_range(graph: &TemporalGraph) -> Range<u32> {
    match graph.bipartite_boundary() {
        Some(b) => b..graph.num_nodes() as u32,
        None => 0..graph.num_nodes() as u32,
    }
}

/// Pre-sampled negative destinations: `groups × events` matrix of node
/// ids (`negatives_per_event` ids per event, flattened).
#[derive(Clone, Debug)]
pub struct NegativeStore {
    groups: Vec<Vec<u32>>,
    negatives_per_event: usize,
    num_events: usize,
}

impl NegativeStore {
    /// Pre-samples `num_groups` independent negative sets covering
    /// `num_events` events with `negatives_per_event` each.
    pub fn generate(
        graph: &TemporalGraph,
        num_events: usize,
        num_groups: usize,
        negatives_per_event: usize,
        seed: u64,
    ) -> Self {
        assert!(num_groups > 0 && negatives_per_event > 0);
        let range = negative_range(graph);
        assert!(!range.is_empty(), "empty negative range");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let groups = (0..num_groups)
            .map(|_| {
                (0..num_events * negatives_per_event)
                    .map(|_| rng.gen_range(range.clone()))
                    .collect()
            })
            .collect();
        Self {
            groups,
            negatives_per_event,
            num_events,
        }
    }

    /// Number of pre-sampled groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Negatives per event.
    pub fn negatives_per_event(&self) -> usize {
        self.negatives_per_event
    }

    /// The negatives of `group` for events `range`: a flat slice of
    /// `range.len() * negatives_per_event` node ids.
    ///
    /// # Panics
    /// Panics if the group or range is out of bounds.
    pub fn slice(&self, group: usize, range: Range<usize>) -> &[u32] {
        assert!(range.end <= self.num_events, "event range out of bounds");
        let k = self.negatives_per_event;
        &self.groups[group][range.start * k..range.end * k]
    }

    /// Group picked for an epoch: epochs cycle through groups so that
    /// reuse matches the paper's 10-groups-over-100-epochs scheme.
    pub fn group_for_epoch(&self, epoch: usize) -> usize {
        epoch % self.groups.len()
    }
}

/// On-the-fly negative sampler for evaluation (49 negatives per event).
pub struct EvalNegatives {
    range: Range<u32>,
    rng: ChaCha8Rng,
}

impl EvalNegatives {
    /// Creates a sampler over the graph's negative range.
    pub fn new(graph: &TemporalGraph, seed: u64) -> Self {
        Self {
            range: negative_range(graph),
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Draws `k` negatives for one event.
    pub fn draw(&mut self, k: usize) -> Vec<u32> {
        (0..k)
            .map(|_| self.rng.gen_range(self.range.clone()))
            .collect()
    }

    /// Draws `k` negatives excluding the true destination.
    ///
    /// On the paper's full-size datasets collisions with the positive
    /// are negligible; at reproduction scale the destination partition
    /// can be small enough that colliding "negatives" would corrupt
    /// the MRR ranks, so evaluation excludes them explicitly.
    pub fn draw_excluding(&mut self, k: usize, exclude: u32) -> Vec<u32> {
        (0..k)
            .map(|_| {
                for _ in 0..64 {
                    let v = self.rng.gen_range(self.range.clone());
                    if v != exclude {
                        return v;
                    }
                }
                // Degenerate single-node range: fall back (documented).
                self.rng.gen_range(self.range.clone())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disttgl_graph::Event;

    fn bipartite_graph() -> TemporalGraph {
        let events = (0..20)
            .map(|i| Event {
                src: i % 4,
                dst: 4 + (i % 6),
                t: i as f32,
                eid: i,
            })
            .collect();
        TemporalGraph::new(10, events).with_bipartite_boundary(4)
    }

    #[test]
    fn bipartite_negatives_come_from_item_partition() {
        let g = bipartite_graph();
        assert_eq!(negative_range(&g), 4..10);
        let store = NegativeStore::generate(&g, 20, 3, 5, 1);
        for group in 0..3 {
            for &v in store.slice(group, 0..20) {
                assert!((4..10).contains(&v));
            }
        }
    }

    #[test]
    fn groups_are_distinct_but_deterministic() {
        let g = bipartite_graph();
        let a = NegativeStore::generate(&g, 20, 2, 5, 9);
        let b = NegativeStore::generate(&g, 20, 2, 5, 9);
        assert_eq!(a.slice(0, 0..20), b.slice(0, 0..20));
        assert_ne!(a.slice(0, 0..20), a.slice(1, 0..20));
    }

    #[test]
    fn epoch_group_cycles() {
        let g = bipartite_graph();
        let store = NegativeStore::generate(&g, 20, 10, 1, 0);
        assert_eq!(store.group_for_epoch(0), 0);
        assert_eq!(store.group_for_epoch(9), 9);
        assert_eq!(store.group_for_epoch(10), 0);
        assert_eq!(store.group_for_epoch(23), 3);
    }

    #[test]
    fn slice_is_range_aligned() {
        let g = bipartite_graph();
        let store = NegativeStore::generate(&g, 20, 1, 3, 2);
        let full = store.slice(0, 0..20);
        let part = store.slice(0, 5..8);
        assert_eq!(part, &full[15..24]);
    }

    #[test]
    fn eval_negatives_draws_requested_count() {
        let g = bipartite_graph();
        let mut s = EvalNegatives::new(&g, 4);
        let negs = s.draw(49);
        assert_eq!(negs.len(), 49);
        assert!(negs.iter().all(|&v| (4..10).contains(&v)));
    }

    #[test]
    fn non_bipartite_uses_all_nodes() {
        let g = TemporalGraph::new(
            6,
            vec![Event {
                src: 0,
                dst: 1,
                t: 0.0,
                eid: 0,
            }],
        );
        assert_eq!(negative_range(&g), 0..6);
    }
}
