//! Dataset persistence.
//!
//! The paper pre-samples mini-batches and stores them on NVMe so the
//! training critical path never touches the sampler ("we sample the
//! mini-batch in advance and store them on the two NVMe SSDs",
//! §4.0.2). The analogous capability here is snapshotting a generated
//! dataset — graph, features, labels — so that long experiment suites
//! regenerate bit-identical inputs without re-running the generators.
//!
//! Format: a one-line JSON header (name/task/shape metadata) followed
//! by little-endian `f32`/`u32` binary sections framed with `bytes` —
//! JSON alone would bloat feature matrices ~4×.

use crate::dataset::{Dataset, Task};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use disttgl_graph::{Event, TemporalGraph};
use disttgl_tensor::Matrix;
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};

#[derive(Serialize, Deserialize)]
struct Header {
    name: String,
    num_nodes: usize,
    num_events: usize,
    bipartite_boundary: Option<u32>,
    edge_dim: usize,
    num_classes: usize,
    task: String,
}

/// Frames a matrix as `rows:u64 cols:u64 data:[f32]` (little-endian).
///
/// Shared with `core::checkpoint`, which reuses this snapshot plumbing
/// for model/memory sections of the checkpoint format.
pub fn put_matrix(buf: &mut BytesMut, m: &Matrix) {
    buf.put_u64_le(m.rows() as u64);
    buf.put_u64_le(m.cols() as u64);
    for &v in m.as_slice() {
        buf.put_f32_le(v);
    }
}

/// Reads back a [`put_matrix`] frame, with context on truncation.
pub fn get_matrix(buf: &mut Bytes) -> io::Result<Matrix> {
    if buf.remaining() < 16 {
        return Err(truncated("matrix header"));
    }
    let rows = buf.get_u64_le() as usize;
    let cols = buf.get_u64_le() as usize;
    let n = rows
        .checked_mul(cols)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "matrix shape overflow"))?;
    if buf.remaining() < n * 4 {
        return Err(truncated("matrix body"));
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(buf.get_f32_le());
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

/// Frames a slice of `f32` as `len:u64 data:[f32]`.
pub fn put_f32s(buf: &mut BytesMut, vals: &[f32]) {
    buf.put_u64_le(vals.len() as u64);
    for &v in vals {
        buf.put_f32_le(v);
    }
}

/// Reads back a [`put_f32s`] frame.
pub fn get_f32s(buf: &mut Bytes, what: &str) -> io::Result<Vec<f32>> {
    let n = get_len(buf, what)?;
    if buf.remaining() < n * 4 {
        return Err(truncated(what));
    }
    Ok((0..n).map(|_| buf.get_f32_le()).collect())
}

/// Frames a slice of `u64` as `len:u64 data:[u64]`.
pub fn put_u64s(buf: &mut BytesMut, vals: &[u64]) {
    buf.put_u64_le(vals.len() as u64);
    for &v in vals {
        buf.put_u64_le(v);
    }
}

/// Reads back a [`put_u64s`] frame.
pub fn get_u64s(buf: &mut Bytes, what: &str) -> io::Result<Vec<u64>> {
    let n = get_len(buf, what)?;
    if buf.remaining() < n * 8 {
        return Err(truncated(what));
    }
    Ok((0..n).map(|_| buf.get_u64_le()).collect())
}

/// Frames a slice of `u32` as `len:u64 data:[u32]`.
pub fn put_u32s(buf: &mut BytesMut, vals: &[u32]) {
    buf.put_u64_le(vals.len() as u64);
    for &v in vals {
        buf.put_u32_le(v);
    }
}

/// Reads back a [`put_u32s`] frame.
pub fn get_u32s(buf: &mut Bytes, what: &str) -> io::Result<Vec<u32>> {
    let n = get_len(buf, what)?;
    if buf.remaining() < n * 4 {
        return Err(truncated(what));
    }
    Ok((0..n).map(|_| buf.get_u32_le()).collect())
}

/// Reads one length prefix, guarding against truncation and absurd
/// lengths that would make the follow-up allocation unbounded.
fn get_len(buf: &mut Bytes, what: &str) -> io::Result<usize> {
    if buf.remaining() < 8 {
        return Err(truncated(what));
    }
    let n = buf.get_u64_le();
    usize::try_from(n).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{what}: length overflow"),
        )
    })
}

/// `UnexpectedEof` with section context — every decode path names the
/// section it was reading so corruption reports are actionable.
pub fn truncated(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::UnexpectedEof, what.to_string())
}

impl Dataset {
    /// Serializes the dataset to `w`.
    pub fn save(&self, w: &mut impl Write) -> io::Result<()> {
        let header = Header {
            name: self.name.clone(),
            num_nodes: self.graph.num_nodes(),
            num_events: self.graph.num_events(),
            bipartite_boundary: self.graph.bipartite_boundary(),
            edge_dim: self.edge_features.cols(),
            num_classes: self.num_classes(),
            task: match self.task {
                Task::LinkPrediction => "link".into(),
                Task::EdgeClassification => "class".into(),
            },
        };
        let header_json = serde_json::to_string(&header)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        writeln!(w, "{header_json}")?;

        let mut buf = BytesMut::new();
        for e in self.graph.events() {
            buf.put_u32_le(e.src);
            buf.put_u32_le(e.dst);
            buf.put_f32_le(e.t);
            buf.put_u32_le(e.eid);
        }
        put_matrix(&mut buf, &self.edge_features);
        match &self.labels {
            Some(l) => {
                buf.put_u8(1);
                put_matrix(&mut buf, l);
            }
            None => buf.put_u8(0),
        }
        w.write_all(&buf)
    }

    /// Deserializes a dataset produced by [`Dataset::save`].
    pub fn load(r: &mut impl Read) -> io::Result<Dataset> {
        // Header line.
        let mut header_bytes = Vec::new();
        let mut byte = [0u8; 1];
        loop {
            r.read_exact(&mut byte)?;
            if byte[0] == b'\n' {
                break;
            }
            header_bytes.push(byte[0]);
        }
        let header: Header = serde_json::from_slice(&header_bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;

        let mut rest = Vec::new();
        r.read_to_end(&mut rest)?;
        let mut buf = Bytes::from(rest);

        if buf.remaining() < header.num_events * 16 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "event log"));
        }
        let mut events = Vec::with_capacity(header.num_events);
        for _ in 0..header.num_events {
            events.push(Event {
                src: buf.get_u32_le(),
                dst: buf.get_u32_le(),
                t: buf.get_f32_le(),
                eid: buf.get_u32_le(),
            });
        }
        let mut graph = TemporalGraph::new(header.num_nodes, events);
        if let Some(b) = header.bipartite_boundary {
            graph = graph.with_bipartite_boundary(b);
        }
        let edge_features = get_matrix(&mut buf)?;
        if buf.remaining() < 1 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "label flag"));
        }
        let labels = if buf.get_u8() == 1 {
            Some(get_matrix(&mut buf)?)
        } else {
            None
        };
        let task = match header.task.as_str() {
            "link" => Task::LinkPrediction,
            "class" => Task::EdgeClassification,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown task {other}"),
                ))
            }
        };
        let d = Dataset {
            name: header.name,
            graph,
            edge_features,
            labels,
            task,
        };
        d.validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        Ok(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip_link_dataset() -> io::Result<()> {
        let d = generators::wikipedia(0.005, 33);
        let mut buf = Vec::new();
        d.save(&mut buf)?;
        let loaded = Dataset::load(&mut buf.as_slice())?;
        assert_eq!(loaded.name, d.name);
        assert_eq!(loaded.graph.events(), d.graph.events());
        assert_eq!(loaded.edge_features, d.edge_features);
        assert_eq!(
            loaded.graph.bipartite_boundary(),
            d.graph.bipartite_boundary()
        );
        assert_eq!(loaded.task, d.task);
        assert!(loaded.labels.is_none());
        Ok(())
    }

    #[test]
    fn roundtrip_classification_dataset() -> io::Result<()> {
        let d = generators::gdelt(2e-5, 34);
        let mut buf = Vec::new();
        d.save(&mut buf)?;
        let loaded = Dataset::load(&mut buf.as_slice())?;
        assert_eq!(loaded.labels, d.labels);
        assert_eq!(loaded.task, Task::EdgeClassification);
        loaded
            .validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        Ok(())
    }

    #[test]
    fn roundtrip_zero_edge_dim() -> io::Result<()> {
        let d = generators::mooc(0.002, 35);
        let mut buf = Vec::new();
        d.save(&mut buf)?;
        let loaded = Dataset::load(&mut buf.as_slice())?;
        assert_eq!(loaded.edge_features.cols(), 0);
        assert_eq!(loaded.graph.num_events(), d.graph.num_events());
        Ok(())
    }

    #[test]
    fn truncated_input_is_rejected() -> io::Result<()> {
        let d = generators::mooc(0.002, 36);
        let mut buf = Vec::new();
        d.save(&mut buf)?;
        let truncated = &buf[..buf.len() / 2];
        assert!(Dataset::load(&mut &truncated[..]).is_err());
        Ok(())
    }

    #[test]
    fn scalar_frames_roundtrip_and_reject_truncation() -> io::Result<()> {
        let mut buf = BytesMut::new();
        put_f32s(&mut buf, &[1.5, -2.0]);
        put_u64s(&mut buf, &[7, u64::MAX]);
        put_u32s(&mut buf, &[3, 4, 5]);
        let full: Vec<u8> = buf.to_vec();
        let mut b = Bytes::from(full.clone());
        assert_eq!(get_f32s(&mut b, "f")?, vec![1.5, -2.0]);
        assert_eq!(get_u64s(&mut b, "u")?, vec![7, u64::MAX]);
        assert_eq!(get_u32s(&mut b, "v")?, vec![3, 4, 5]);
        assert_eq!(b.remaining(), 0);
        let mut cut = Bytes::from(full[..full.len() - 1].to_vec());
        assert!(get_f32s(&mut cut, "f")
            .and_then(|_| get_u64s(&mut cut, "u"))
            .and_then(|_| get_u32s(&mut cut, "v"))
            .is_err());
        Ok(())
    }

    #[test]
    fn garbage_header_is_rejected() {
        let garbage = b"not json\nrest";
        assert!(Dataset::load(&mut &garbage[..]).is_err());
    }
}
