//! Dataset persistence.
//!
//! The paper pre-samples mini-batches and stores them on NVMe so the
//! training critical path never touches the sampler ("we sample the
//! mini-batch in advance and store them on the two NVMe SSDs",
//! §4.0.2). The analogous capability here is snapshotting a generated
//! dataset — graph, features, labels — so that long experiment suites
//! regenerate bit-identical inputs without re-running the generators.
//!
//! Format: a one-line JSON header (name/task/shape metadata) followed
//! by little-endian `f32`/`u32` binary sections framed with `bytes` —
//! JSON alone would bloat feature matrices ~4×.

use crate::dataset::{Dataset, Task};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use disttgl_graph::{Event, TemporalGraph};
use disttgl_tensor::Matrix;
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};

#[derive(Serialize, Deserialize)]
struct Header {
    name: String,
    num_nodes: usize,
    num_events: usize,
    bipartite_boundary: Option<u32>,
    edge_dim: usize,
    num_classes: usize,
    task: String,
}

fn put_matrix(buf: &mut BytesMut, m: &Matrix) {
    buf.put_u64_le(m.rows() as u64);
    buf.put_u64_le(m.cols() as u64);
    for &v in m.as_slice() {
        buf.put_f32_le(v);
    }
}

fn get_matrix(buf: &mut Bytes) -> io::Result<Matrix> {
    if buf.remaining() < 16 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "matrix header",
        ));
    }
    let rows = buf.get_u64_le() as usize;
    let cols = buf.get_u64_le() as usize;
    let n = rows
        .checked_mul(cols)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "matrix shape overflow"))?;
    if buf.remaining() < n * 4 {
        return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "matrix body"));
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(buf.get_f32_le());
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

impl Dataset {
    /// Serializes the dataset to `w`.
    pub fn save(&self, w: &mut impl Write) -> io::Result<()> {
        let header = Header {
            name: self.name.clone(),
            num_nodes: self.graph.num_nodes(),
            num_events: self.graph.num_events(),
            bipartite_boundary: self.graph.bipartite_boundary(),
            edge_dim: self.edge_features.cols(),
            num_classes: self.num_classes(),
            task: match self.task {
                Task::LinkPrediction => "link".into(),
                Task::EdgeClassification => "class".into(),
            },
        };
        let header_json = serde_json::to_string(&header)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        writeln!(w, "{header_json}")?;

        let mut buf = BytesMut::new();
        for e in self.graph.events() {
            buf.put_u32_le(e.src);
            buf.put_u32_le(e.dst);
            buf.put_f32_le(e.t);
            buf.put_u32_le(e.eid);
        }
        put_matrix(&mut buf, &self.edge_features);
        match &self.labels {
            Some(l) => {
                buf.put_u8(1);
                put_matrix(&mut buf, l);
            }
            None => buf.put_u8(0),
        }
        w.write_all(&buf)
    }

    /// Deserializes a dataset produced by [`Dataset::save`].
    pub fn load(r: &mut impl Read) -> io::Result<Dataset> {
        // Header line.
        let mut header_bytes = Vec::new();
        let mut byte = [0u8; 1];
        loop {
            r.read_exact(&mut byte)?;
            if byte[0] == b'\n' {
                break;
            }
            header_bytes.push(byte[0]);
        }
        let header: Header = serde_json::from_slice(&header_bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;

        let mut rest = Vec::new();
        r.read_to_end(&mut rest)?;
        let mut buf = Bytes::from(rest);

        if buf.remaining() < header.num_events * 16 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "event log"));
        }
        let mut events = Vec::with_capacity(header.num_events);
        for _ in 0..header.num_events {
            events.push(Event {
                src: buf.get_u32_le(),
                dst: buf.get_u32_le(),
                t: buf.get_f32_le(),
                eid: buf.get_u32_le(),
            });
        }
        let mut graph = TemporalGraph::new(header.num_nodes, events);
        if let Some(b) = header.bipartite_boundary {
            graph = graph.with_bipartite_boundary(b);
        }
        let edge_features = get_matrix(&mut buf)?;
        if buf.remaining() < 1 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "label flag"));
        }
        let labels = if buf.get_u8() == 1 {
            Some(get_matrix(&mut buf)?)
        } else {
            None
        };
        let task = match header.task.as_str() {
            "link" => Task::LinkPrediction,
            "class" => Task::EdgeClassification,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown task {other}"),
                ))
            }
        };
        let d = Dataset {
            name: header.name,
            graph,
            edge_features,
            labels,
            task,
        };
        d.validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        Ok(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip_link_dataset() {
        let d = generators::wikipedia(0.005, 33);
        let mut buf = Vec::new();
        d.save(&mut buf).unwrap();
        let loaded = Dataset::load(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.name, d.name);
        assert_eq!(loaded.graph.events(), d.graph.events());
        assert_eq!(loaded.edge_features, d.edge_features);
        assert_eq!(
            loaded.graph.bipartite_boundary(),
            d.graph.bipartite_boundary()
        );
        assert_eq!(loaded.task, d.task);
        assert!(loaded.labels.is_none());
    }

    #[test]
    fn roundtrip_classification_dataset() {
        let d = generators::gdelt(2e-5, 34);
        let mut buf = Vec::new();
        d.save(&mut buf).unwrap();
        let loaded = Dataset::load(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.labels, d.labels);
        assert_eq!(loaded.task, Task::EdgeClassification);
        loaded.validate().unwrap();
    }

    #[test]
    fn roundtrip_zero_edge_dim() {
        let d = generators::mooc(0.002, 35);
        let mut buf = Vec::new();
        d.save(&mut buf).unwrap();
        let loaded = Dataset::load(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.edge_features.cols(), 0);
        assert_eq!(loaded.graph.num_events(), d.graph.num_events());
    }

    #[test]
    fn truncated_input_is_rejected() {
        let d = generators::mooc(0.002, 36);
        let mut buf = Vec::new();
        d.save(&mut buf).unwrap();
        let truncated = &buf[..buf.len() / 2];
        assert!(Dataset::load(&mut &truncated[..]).is_err());
    }

    #[test]
    fn garbage_header_is_rejected() {
        let garbage = b"not json\nrest";
        assert!(Dataset::load(&mut &garbage[..]).is_err());
    }
}
