//! Modeled-throughput derivation for the scaling figures.
//!
//! A trainer thread on this host is a *simulated* GPU. Convergence
//! figures use the iteration axis and need no modeling; throughput
//! figures (paper Fig 12) need the time axis of the simulated cluster,
//! which is reconstructed as:
//!
//! ```text
//! T(config) = iterations × t_iter                      (compute, measured)
//!           + iterations × t_allreduce(model, cluster) (network model)
//!           + serialized memory-op time                (measured/model)
//! throughput = traversed events / T
//! ```
//!
//! `t_iter` comes from a single-threaded calibration run, so the number
//! is independent of host core count; the *relative* shapes (who
//! scales, who saturates) are exactly the paper's quantities.

use disttgl_cluster::{ClusterSpec, NetworkModel};
use disttgl_core::{ModelConfig, ParallelConfig, TgnModel};
use disttgl_data::Dataset;
use disttgl_tensor::seeded_rng;
use std::time::{Duration, Instant};

/// Single-trainer calibration: seconds per training iteration at the
/// given local batch size, and per memory read+write pair.
#[derive(Clone, Copy, Debug)]
pub struct Calibration {
    /// Mean compute seconds per iteration (forward+backward+Adam).
    pub t_iter: f64,
    /// Mean seconds of one serialized memory read+write pair.
    pub t_mem_op: f64,
    /// Model size in bytes (all-reduce payload).
    pub model_bytes: usize,
}

/// Measures `Calibration` by running a few real iterations
/// single-threaded through the synchronous memory store.
pub fn calibrate(dataset: &Dataset, model_cfg: &ModelConfig, local_batch: usize) -> Calibration {
    use disttgl_core::{BatchPreparer, MemoryAccess};
    use disttgl_graph::TCsr;
    use disttgl_mem::MemoryState;

    let csr = TCsr::build(&dataset.graph);
    let mut rng = seeded_rng(7);
    let mut model = TgnModel::new(model_cfg.clone(), &mut rng);
    let mut adam = model.optimizer(1e-3);
    let prep = BatchPreparer::new(dataset, &csr, model_cfg);
    let mut mem = MemoryState::new(
        dataset.graph.num_nodes(),
        model_cfg.d_mem,
        model_cfg.mail_dim(),
    );
    let store =
        disttgl_data::NegativeStore::generate(&dataset.graph, dataset.graph.num_events(), 1, 1, 3);

    let iters = 6.min(dataset.graph.num_events() / local_batch).max(2);
    let mut compute = Duration::ZERO;
    let mut mem_ops = Duration::ZERO;
    for it in 0..iters {
        let range = it * local_batch..((it + 1) * local_batch).min(dataset.graph.num_events());
        let negs;
        let neg_slices: Vec<&[u32]> = if dataset.labels.is_none() {
            negs = store.slice(0, range.clone()).to_vec();
            vec![&negs]
        } else {
            Vec::new()
        };
        let t0 = Instant::now();
        let batch = prep.prepare(range, &neg_slices, 1, &mut mem);
        let t_read = t0.elapsed();

        let t1 = Instant::now();
        model.params.zero_grads();
        let out = model.train_step(&batch.pos, batch.negs.first(), None);
        model.params.clip_grad_norm(5.0);
        adam.step(&mut model.params);
        compute += t1.elapsed();

        let t2 = Instant::now();
        MemoryAccess::write(&mut mem, out.write);
        mem_ops += t_read + t2.elapsed();
    }
    Calibration {
        t_iter: compute.as_secs_f64() / iters as f64,
        t_mem_op: mem_ops.as_secs_f64() / iters as f64,
        model_bytes: model.params.num_scalars() * 4,
    }
}

/// Modeled DistTGL throughput (events/s) for `parallel` on `spec`.
///
/// Per sweep each trainer runs `B` iterations; memory ops are served
/// by the daemon concurrently with compute, so only the serialized
/// portion *within* a turn that exceeds compute shows up; weight
/// all-reduce is charged from the ring model every iteration.
pub fn disttgl_throughput(
    cal: &Calibration,
    spec: &ClusterSpec,
    parallel: &ParallelConfig,
    events_per_epoch: usize,
    local_batch: usize,
) -> f64 {
    let net = NetworkModel::t4_testbed();
    let _world = parallel.world();
    let global_batch = local_batch * parallel.i;
    let batches = (events_per_epoch + global_batch - 1) / global_batch.max(1);
    // One sweep: B steps per trainer; traversed events = j·|E| per
    // group, k groups.
    let steps = batches as f64;
    let t_allreduce = net.ring_allreduce(cal.model_bytes, spec).as_secs_f64();
    // Daemon overlap: each daemon serves i·j requests per j steps; the
    // exposed (non-overlapped) cost is the excess of serialized memory
    // service over the group's compute window.
    let serve_per_step = cal.t_mem_op * parallel.i as f64 / parallel.j.max(1) as f64;
    let exposed_mem = (serve_per_step - cal.t_iter).max(0.0);
    let t_sweep = steps * (cal.t_iter + t_allreduce + exposed_mem);
    let traversed = events_per_epoch as f64 * parallel.j as f64 * parallel.k as f64;
    traversed / t_sweep.max(1e-12)
}

/// Modeled TGL-style throughput: mini-batch parallelism with memory
/// ops **serialized across all n trainers** (lock-based store) and no
/// overlap — the contention that caps TGL at 2–3× on 8 GPUs.
pub fn tgl_throughput(
    cal: &Calibration,
    n_gpus: usize,
    events_per_epoch: usize,
    local_batch: usize,
) -> f64 {
    let spec = ClusterSpec::new(1, n_gpus);
    let net = NetworkModel::t4_testbed();
    let global_batch = local_batch * n_gpus;
    let batches = (events_per_epoch + global_batch - 1) / global_batch.max(1);
    let t_allreduce = net.ring_allreduce(cal.model_bytes, &spec).as_secs_f64();
    // All n trainers' memory phases serialize; none overlaps compute.
    let t_iter_total = cal.t_iter + n_gpus as f64 * cal.t_mem_op + t_allreduce;
    let t_epoch = batches as f64 * t_iter_total;
    events_per_epoch as f64 / t_epoch.max(1e-12)
}

/// Modeled original-TGN throughput: single GPU with the whole
/// iteration (data layer + compute) measured `naive_factor`× slower
/// than the optimized pipeline (calibrated by the caller from a real
/// `baseline::train_tgn` vs `train_single` pair).
pub fn tgn_throughput(cal: &Calibration, naive_factor: f64, local_batch: usize) -> f64 {
    let t_iter = (cal.t_iter + cal.t_mem_op) * naive_factor;
    local_batch as f64 / t_iter
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dataset, model_for, Scale};

    #[test]
    fn calibration_is_positive_and_sane() {
        let s = Scale {
            small: 0.004,
            ..Scale::quick()
        };
        let d = dataset(&s, "wikipedia");
        let mc = model_for(&d);
        let cal = calibrate(&d, &mc, 64);
        assert!(cal.t_iter > 0.0 && cal.t_iter < 10.0);
        assert!(cal.t_mem_op > 0.0);
        assert!(cal.model_bytes > 1000);
    }

    #[test]
    fn disttgl_scales_near_linear_while_tgl_saturates() {
        // The Figure 12 shape, from the model alone with a synthetic
        // calibration: memory ops comparable to compute.
        let cal = Calibration {
            t_iter: 1e-3,
            t_mem_op: 8e-4,
            model_bytes: 400_000,
        };
        let events = 100_000;
        let t1 = disttgl_throughput(
            &cal,
            &ClusterSpec::new(1, 1),
            &ParallelConfig::single(),
            events,
            600,
        );
        let t8 = disttgl_throughput(
            &cal,
            &ClusterSpec::new(1, 8),
            &ParallelConfig::new(1, 1, 8),
            events,
            600,
        );
        let disttgl_speedup = t8 / t1;
        let g1 = tgl_throughput(&cal, 1, events, 600);
        let g8 = tgl_throughput(&cal, 8, events, 600);
        let tgl_speedup = g8 / g1;
        assert!(
            disttgl_speedup > 6.0,
            "DistTGL speedup {disttgl_speedup} should be near-linear"
        );
        assert!(
            tgl_speedup < 4.0,
            "TGL speedup {tgl_speedup} should saturate"
        );
        assert!(disttgl_speedup > 2.0 * tgl_speedup);
    }

    #[test]
    fn multi_machine_allreduce_cost_is_visible_but_small() {
        let cal = Calibration {
            t_iter: 1e-3,
            t_mem_op: 4e-4,
            model_bytes: 400_000,
        };
        let events = 100_000;
        let single = disttgl_throughput(
            &cal,
            &ClusterSpec::new(1, 8),
            &ParallelConfig::new(1, 1, 8),
            events,
            600,
        );
        let multi = disttgl_throughput(
            &cal,
            &ClusterSpec::new(2, 8),
            &ParallelConfig::new(1, 1, 16),
            events,
            600,
        );
        // 16 GPUs on 2 machines still beat 8 on 1 (near-linear), just
        // shy of 2× because the ring crosses Ethernet.
        let ratio = multi / single;
        assert!(ratio > 1.5 && ratio < 2.05, "ratio {ratio}");
    }
}
