//! # disttgl-bench
//!
//! The experiment harness that regenerates **every table and figure**
//! of the DistTGL paper (see `DESIGN.md` §5 for the index and
//! `EXPERIMENTS.md` for paper-vs-measured results).
//!
//! Each experiment is a library function in [`figures`] so that it can
//! run three ways:
//! * as a standalone binary (`cargo run --release -p disttgl-bench
//!   --bin fig09a_epoch_parallel`),
//! * all together through the `figures` bench target
//!   (`cargo bench -p disttgl-bench --bench figures`),
//! * at a larger scale with `DISTTGL_SCALE=full`.
//!
//! ## Throughput modeling
//!
//! The paper's throughput figures ran on 8×T4 machines; this harness
//! runs trainers as threads, and the host may have fewer cores than
//! simulated GPUs. Convergence experiments are unaffected (their
//! x-axis is iterations), but wall-clock throughput would measure host
//! oversubscription instead of the simulated cluster. [`modeled`]
//! therefore derives throughput from a calibrated per-iteration
//! compute cost plus the cluster network model — the same
//! quantity the paper plots, on the simulated hardware.

pub mod figures;
pub mod modeled;

use disttgl_core::ModelConfig;
use disttgl_data::{generators, Dataset};

/// Experiment scale knobs, selected by the `DISTTGL_SCALE` env var
/// (`quick` default, `full` for longer runs).
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Dataset scale for the four small datasets.
    pub small: f64,
    /// Dataset scale for the GDELT analog (its full size is 191M).
    pub gdelt: f64,
    /// Single-GPU-equivalent epochs for convergence runs.
    pub epochs: usize,
    /// Local batch size for the small datasets.
    pub local_batch: usize,
    /// Negatives per event at evaluation.
    pub eval_negs: usize,
    /// Max events per evaluation pass.
    pub eval_max_events: usize,
    /// Largest trainer count exercised with real threads.
    pub max_world: usize,
}

impl Scale {
    /// Fast profile: every figure in minutes on a small host.
    pub fn quick() -> Self {
        Self {
            small: 0.01,
            gdelt: 3e-5,
            epochs: 12,
            local_batch: 100,
            eval_negs: 10,
            eval_max_events: 400,
            max_world: 8,
        }
    }

    /// Larger profile for overnight runs.
    pub fn full() -> Self {
        Self {
            small: 0.05,
            gdelt: 2e-4,
            epochs: 48,
            local_batch: 200,
            eval_negs: 49,
            eval_max_events: 4000,
            max_world: 8,
        }
    }

    /// Reads `DISTTGL_SCALE` (`quick`/`full`), defaulting to quick.
    pub fn from_env() -> Self {
        match std::env::var("DISTTGL_SCALE").as_deref() {
            Ok("full") => Self::full(),
            _ => Self::quick(),
        }
    }
}

/// Builds the named dataset at this scale (seeded for repeatability).
///
/// Flights is 12× Wikipedia at paper scale; the harness shrinks it a
/// further 3× so the per-dataset experiment runtimes stay balanced.
pub fn dataset(scale: &Scale, name: &str) -> Dataset {
    let s = match name {
        "gdelt" => scale.gdelt,
        "flights" => scale.small / 3.0,
        _ => scale.small,
    };
    generators::by_name(name, s, 0xD157)
}

/// The harness-standard compact model for a dataset.
pub fn model_for(d: &Dataset) -> ModelConfig {
    let mc = ModelConfig::compact(d.edge_features.cols());
    if d.num_classes() > 0 {
        mc.with_classes(d.num_classes())
    } else {
        mc
    }
}

/// Cores available to this process — stamped as `"host_cores"` into
/// every `BENCH_*.json` artifact so a reader can tell a genuine
/// scaling regression from a 1-core container (where thread sweeps
/// legitimately report ~1.0×), and used to gate multi-threaded sweep
/// widths honestly instead of oversubscribing.
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Prints a fixed-width table (markdown-ish) to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:>w$}", w = w))
        .collect();
    println!("| {} |", header_line.join(" | "));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("|-{}-|", sep.join("-|-"));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("| {} |", line.join(" | "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_env_defaults_quick() {
        std::env::remove_var("DISTTGL_SCALE");
        let s = Scale::from_env();
        assert_eq!(s.epochs, Scale::quick().epochs);
    }

    #[test]
    fn dataset_helper_builds_all_names() {
        let s = Scale {
            small: 0.003,
            gdelt: 2e-5,
            ..Scale::quick()
        };
        for name in ["wikipedia", "reddit", "mooc", "flights", "gdelt"] {
            let d = dataset(&s, name);
            assert_eq!(d.name, name);
            d.validate().unwrap();
            let mc = model_for(&d);
            assert_eq!(mc.d_edge, d.edge_features.cols());
        }
    }
}
