//! One function per paper table/figure. See `DESIGN.md` §5 for the
//! experiment index and `EXPERIMENTS.md` for recorded outcomes.

use crate::modeled;
use crate::{dataset, model_for, print_table, Scale};
use disttgl_cluster::{ClusterSpec, NetworkModel};
use disttgl_core::{
    baseline, replay_memory, train_distributed, train_single, ModelConfig, ParallelConfig,
    RunResult, StaticMemory, TgnModel, TrainConfig,
};
use disttgl_data::Dataset;
use disttgl_graph::{capture, TCsr};
use disttgl_mem::MemoryState;
use disttgl_tensor::seeded_rng;

fn train_cfg(scale: &Scale, parallel: ParallelConfig) -> TrainConfig {
    let mut cfg = TrainConfig::new(parallel);
    cfg.local_batch = scale.local_batch;
    cfg.epochs = scale.epochs;
    cfg.eval_negs = scale.eval_negs;
    cfg.eval_max_events = scale.eval_max_events;
    // Keep the effective LR near 2e-3 at the harness batch sizes (the
    // paper's linear scaling rule, re-anchored to the scaled batches).
    cfg.base_lr = 2e-3 * 600.0 / (scale.local_batch as f32 * parallel.i as f32);
    cfg.seed = 0xD157;
    cfg
}

fn run(d: &Dataset, mc: &ModelConfig, cfg: &TrainConfig) -> RunResult {
    let spec = ClusterSpec::new(1, cfg.parallel.world());
    if cfg.parallel.world() == 1 {
        train_single(d, mc, cfg)
    } else {
        train_distributed(d, mc, cfg, spec)
    }
}

/// Iterations to reach `frac` of the run's best validation metric
/// (the paper's convergence-speed readout).
fn iters_to_frac(res: &RunResult, frac: f64) -> usize {
    let target = res.best_val_metric * frac;
    res.convergence
        .iter()
        .find(|p| p.metric >= target)
        .map(|p| p.iteration)
        .unwrap_or(usize::MAX)
}

/// **Table 2** — dataset statistics (scaled synthetics vs paper).
pub fn table2(scale: &Scale) {
    let paper: &[(&str, usize, usize, f64, usize)] = &[
        ("wikipedia", 9_227, 157_474, 2.7e6, 172),
        ("reddit", 10_984, 672_447, 2.7e6, 172),
        ("mooc", 7_144, 411_749, 2.6e7, 0),
        ("flights", 13_169, 1_927_145, 1.0e7, 0),
        ("gdelt", 16_682, 191_290_882, 1.6e8, 130),
    ];
    let mut rows = Vec::new();
    for (name, pv, pe, pt, pde) in paper {
        let d = dataset(scale, name);
        let s = d.stats();
        rows.push(vec![
            name.to_string(),
            format!("{}/{}", s.num_nodes, pv),
            format!("{}/{}", s.num_events, pe),
            format!("{:.1e}/{:.1e}", s.max_t, pt),
            format!("{}/{}", s.d_e, pde),
            format!("{}", s.bipartite),
            format!("{:?}", d.task),
        ]);
    }
    print_table(
        "Table 2: dataset statistics (ours/paper)",
        &[
            "dataset",
            "|V|",
            "|E|",
            "max(t)",
            "|d_e|",
            "bipartite",
            "task",
        ],
        &rows,
    );
}

/// **Figure 1** — convergence of TGN, TGL-TGN, and DistTGL
/// (validation MRR against wall time and iterations).
pub fn fig01_convergence(scale: &Scale) {
    let d = dataset(scale, "wikipedia");
    let mc = model_for(&d);
    let mut rows = Vec::new();

    // TGN baseline (1 GPU, naive pipeline, no static memory).
    let mut cfg = train_cfg(scale, ParallelConfig::single());
    cfg.epochs = scale.epochs / 2; // TGN is slow; half budget suffices for the curve
    let tgn = baseline::train_tgn(&d, &mc.clone().without_static_memory(), &cfg);
    rows.push(vec![
        "TGN (1 GPU)".into(),
        format!("{}", tgn.loss_history.len()),
        format!("{:.1}", tgn.wall_secs),
        format!("{:.4}", tgn.best_val_metric),
        format!("{:.4}", tgn.test_metric),
    ]);

    // DistTGL single GPU.
    let cfg = train_cfg(scale, ParallelConfig::single());
    let single = run(&d, &mc, &cfg);
    rows.push(vec![
        "DistTGL 1x1x1".into(),
        format!("{}", single.loss_history.len()),
        format!("{:.1}", single.wall_secs),
        format!("{:.4}", single.best_val_metric),
        format!("{:.4}", single.test_metric),
    ]);

    // DistTGL memory parallelism on "8 GPUs" (threads).
    let world = scale.max_world.min(8);
    let cfg = train_cfg(scale, ParallelConfig::new(1, 1, world));
    let dist = run(&d, &mc, &cfg);
    rows.push(vec![
        format!("DistTGL 1x1x{world}"),
        format!("{}", dist.loss_history.len()),
        format!("{:.1}", dist.wall_secs),
        format!("{:.4}", dist.best_val_metric),
        format!("{:.4}", dist.test_metric),
    ]);

    print_table(
        "Figure 1: convergence comparison (wikipedia analog)",
        &["method", "iterations", "wall s", "best val MRR", "test MRR"],
        &rows,
    );
    println!("convergence series (iteration, val MRR):");
    for (name, res) in [("DistTGL 1x1x1", &single), ("DistTGL dist", &dist)] {
        let series: Vec<String> = res
            .convergence
            .iter()
            .map(|p| format!("({}, {:.4})", p.iteration, p.metric))
            .collect();
        println!("  {:<16} {}", name, series.join(" "));
    }
}

/// **Figure 2(a)** — test accuracy vs batch size (GDELT analog).
pub fn fig02a_batchsize(scale: &Scale) {
    let d = dataset(scale, "gdelt");
    let mc = model_for(&d);
    let mut rows = Vec::new();
    for bs in [100usize, 200, 400, 800, 1600] {
        let mut cfg = train_cfg(scale, ParallelConfig::single());
        cfg.local_batch = bs;
        cfg.epochs = (scale.epochs / 2).max(2);
        cfg.eval_every_epoch = false;
        let res = run(&d, &mc, &cfg);
        rows.push(vec![
            format!("{bs}"),
            format!("{}", res.loss_history.len()),
            format!("{:.4}", res.test_metric),
        ]);
    }
    print_table(
        "Figure 2(a): test F1 vs batch size (gdelt analog; paper: F1 decreases with batch size)",
        &["batch size", "iterations", "test F1"],
        &rows,
    );
}

/// **Figure 2(b)** — per-epoch node-memory read/write time when the
/// memory is partitioned across machines (the motivation figure).
pub fn fig02b_memsync(scale: &Scale) {
    let d = dataset(scale, "wikipedia");
    let mc = model_for(&d);
    let net = NetworkModel::t4_testbed();
    // Rows touched per epoch: every batch reads roots+negatives+slots
    // and writes roots — measured from one real single-GPU epoch.
    let csr = TCsr::build(&d.graph);
    let (train_end, _) = d.graph.chronological_split(0.70, 0.15);
    let bytes_per_row = (mc.d_mem + mc.mail_dim() + 2) * 4;
    // Per-batch read/write row counts from one real pass: reads cover
    // roots + supporting slots; writes cover the roots. Each batch is
    // two serialized rounds (read, then write) — the strict temporal
    // dependency of §1 prevents batching them across mini-batches.
    let mut round_bytes: Vec<(usize, usize)> = Vec::new();
    {
        // The figure reproduces the *baseline* (pre-DistTGL) traffic
        // that motivates the paper, so measure the per-occurrence
        // layout — the default deduplicated readout would undercount
        // the baseline's read volume ~38×.
        let mc_occ = mc.clone().without_dedup_readout();
        let prep = disttgl_core::BatchPreparer::new(&d, &csr, &mc_occ);
        let mut mem = MemoryState::new(d.graph.num_nodes(), mc.d_mem, mc.mail_dim());
        for range in disttgl_graph::batching::chronological_batches(0..train_end, scale.local_batch)
        {
            let b = prep.prepare(range.clone(), &[], 1, &mut mem);
            round_bytes.push((
                b.pos.readout.rows() * bytes_per_row,
                2 * range.len() * bytes_per_row,
            ));
        }
    }
    let volume: usize = round_bytes.iter().map(|(r, w)| r + w).sum();
    let mut rows = Vec::new();
    for machines in [1usize, 2, 4] {
        let t: f64 = round_bytes
            .iter()
            .map(|&(r, w)| {
                net.partitioned_round(r, machines).as_secs_f64()
                    + net.partitioned_round(w, machines).as_secs_f64()
            })
            .sum();
        rows.push(vec![
            format!("{machines} (partitioned)"),
            format!("{:.1}", volume as f64 / 1e6),
            format!("{:.3}", t),
        ]);
    }
    // DistTGL's answer: memory parallelism keeps every replica local,
    // so the rounds never leave the machine regardless of scale.
    let local: f64 = round_bytes
        .iter()
        .map(|&(r, w)| {
            net.partitioned_round(r, 1).as_secs_f64() + net.partitioned_round(w, 1).as_secs_f64()
        })
        .sum();
    rows.push(vec![
        "any (DistTGL k-replicas)".into(),
        format!("{:.1}", volume as f64 / 1e6),
        format!("{:.3}", local),
    ]);
    print_table(
        "Figure 2(b): per-epoch node-memory R/W time, partitioned memory (paper: grows with machines; DistTGL flat)",
        &["machines", "volume MB", "modeled time s"],
        &rows,
    );
}

/// **Figure 5** — per-node accuracy difference, static vs dynamic node
/// memory, grouped by degree decile (paper: no degree inclination).
pub fn fig05_static_vs_dynamic(scale: &Scale) {
    let d = dataset(scale, "wikipedia");
    let mc = model_for(&d).without_static_memory();
    let csr = TCsr::build(&d.graph);
    let (train_end, val_end) = d.graph.chronological_split(0.70, 0.15);

    // Train a dynamic-memory model (the probe needs the model itself,
    // so the loop lives here instead of going through `train_single`).
    let cfg = {
        let mut c = train_cfg(scale, ParallelConfig::single());
        c.eval_every_epoch = false;
        c.epochs = (scale.epochs / 2).max(4);
        c
    };
    let mut rng = seeded_rng(cfg.seed);
    let mut model = TgnModel::new(mc.clone(), &mut rng);
    {
        let mut adam = model.optimizer(cfg.scaled_lr());
        let prep = disttgl_core::BatchPreparer::new(&d, &csr, &mc);
        let store = disttgl_data::NegativeStore::generate(&d.graph, train_end, 10, 1, 77);
        let mut mem = MemoryState::new(d.graph.num_nodes(), mc.d_mem, mc.mail_dim());
        for epoch in 0..cfg.epochs {
            mem.reset();
            for range in
                disttgl_graph::batching::chronological_batches(0..train_end, cfg.local_batch)
            {
                let negs = store.slice(store.group_for_epoch(epoch), range.clone());
                let batch = prep.prepare(range, &[negs], 1, &mut mem);
                model.params.zero_grads();
                let out = model.train_step(&batch.pos, Some(&batch.negs[0]), None);
                model.params.clip_grad_norm(5.0);
                adam.step(&mut model.params);
                mem.write(&out.write);
            }
        }
    }

    // Static embeddings trained on the same split.
    let static_mem = StaticMemory::pretrain(&d, mc.d_mem, train_end, 20, 99);

    // Per-source-node MRR on validation events, dynamic vs static.
    let mut mem = MemoryState::new(d.graph.num_nodes(), mc.d_mem, mc.mail_dim());
    replay_memory(
        &model,
        &mc,
        &d,
        &csr,
        &mut mem,
        None,
        0..train_end,
        scale.local_batch,
    );
    let mut dyn_score = vec![(0.0f64, 0u32); d.graph.num_nodes()];
    let mut stat_score = vec![(0.0f64, 0u32); d.graph.num_nodes()];
    let mut sampler = disttgl_data::EvalNegatives::new(&d.graph, 5);
    let prep = disttgl_core::BatchPreparer::new(&d, &csr, &mc);
    let probe_end = val_end.min(train_end + scale.eval_max_events);
    for range in
        disttgl_graph::batching::chronological_batches(train_end..probe_end, scale.local_batch)
    {
        let events: Vec<_> = d.graph.events()[range.clone()].to_vec();
        let negs: Vec<u32> = events
            .iter()
            .flat_map(|e| sampler.draw_excluding(scale.eval_negs, e.dst))
            .collect();
        let batch = prep.prepare(range, &[&negs], scale.eval_negs, &mut mem);
        let out = model.infer_step(&batch.pos, Some(&batch.negs[0]), None);
        for (b, e) in events.iter().enumerate() {
            let pos = out.pos_scores[b];
            let block = &out.neg_scores[b * scale.eval_negs..(b + 1) * scale.eval_negs];
            let rank = 1 + block.iter().filter(|&&n| n >= pos).count();
            let entry = &mut dyn_score[e.src as usize];
            entry.0 += 1.0 / rank as f64;
            entry.1 += 1;
            // Static scorer: dot-product ranking with the same negatives.
            let eu = static_mem.rows(&[e.src]);
            let evv = static_mem.rows(&[e.dst]);
            let pos_s: f32 = eu.row(0).iter().zip(evv.row(0)).map(|(a, b)| a * b).sum();
            let neg_block = &negs[b * scale.eval_negs..(b + 1) * scale.eval_negs];
            let rank_s = 1 + neg_block
                .iter()
                .filter(|&&n| {
                    let en = static_mem.rows(&[n]);
                    let s: f32 = eu.row(0).iter().zip(en.row(0)).map(|(a, b)| a * b).sum();
                    s >= pos_s
                })
                .count();
            let entry = &mut stat_score[e.src as usize];
            entry.0 += 1.0 / rank_s as f64;
            entry.1 += 1;
        }
        mem.write(&out.write);
    }

    // Aggregate by degree decile.
    let degrees = d.graph.degrees();
    let mut nodes: Vec<usize> = (0..d.graph.num_nodes())
        .filter(|&v| dyn_score[v].1 > 0)
        .collect();
    nodes.sort_by_key(|&v| std::cmp::Reverse(degrees[v]));
    let deciles = 5usize;
    let mut rows = Vec::new();
    let chunk = (nodes.len() / deciles).max(1);
    for (di, group) in nodes.chunks(chunk).take(deciles).enumerate() {
        let (mut dsum, mut ssum, mut cnt) = (0.0, 0.0, 0u32);
        for &v in group {
            dsum += dyn_score[v].0;
            ssum += stat_score[v].0;
            cnt += dyn_score[v].1;
        }
        rows.push(vec![
            format!("{}", di + 1),
            format!("{}", group.len()),
            format!("{:.4}", dsum / cnt as f64),
            format!("{:.4}", ssum / cnt as f64),
            format!("{:+.4}", (dsum - ssum) / cnt as f64),
        ]);
    }
    print_table(
        "Figure 5: per-node MRR, dynamic vs static memory by degree group (paper: no degree inclination)",
        &["degree group (high→low)", "nodes", "dynamic MRR", "static MRR", "dyn − static"],
        &rows,
    );
}

/// **Figure 6** — convergence with and without pre-trained static node
/// memory (flights + mooc analogs).
pub fn fig06_static_memory(scale: &Scale) {
    let mut rows = Vec::new();
    for name in ["flights", "mooc"] {
        let d = dataset(scale, name);
        for static_on in [true, false] {
            let mc = if static_on {
                model_for(&d)
            } else {
                model_for(&d).without_static_memory()
            };
            let cfg = train_cfg(scale, ParallelConfig::single());
            let res = run(&d, &mc, &cfg);
            rows.push(vec![
                name.into(),
                if static_on {
                    "with static".into()
                } else {
                    "w/o static".to_string()
                },
                format!("{:.4}", res.best_val_metric),
                format!("{:.4}", res.test_metric),
                format!("{}", iters_to_frac(&res, 0.9)),
            ]);
        }
    }
    print_table(
        "Figure 6: static node memory ablation (paper: static memory improves accuracy & smoothness)",
        &["dataset", "model", "best val MRR", "test MRR", "iters to 90% best"],
        &rows,
    );
}

/// **Figure 8** — events captured in node memory vs batch size, by
/// node-degree group.
pub fn fig08_captured_events(scale: &Scale) {
    let d = dataset(scale, "wikipedia");
    let degrees = d.graph.degrees();
    let mut order: Vec<usize> = (0..d.graph.num_nodes()).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(degrees[v]));
    let batch_sizes = [75usize, 150, 300, 600, 1200];
    let groups = 5usize;
    let chunk = (order.len() / groups).max(1);

    let mut rows = Vec::new();
    let all: Vec<Vec<u32>> = batch_sizes
        .iter()
        .map(|&bs| capture::captured_events(&d.graph, bs))
        .collect();
    for (gi, group) in order.chunks(chunk).take(groups).enumerate() {
        let mut row = vec![format!("{}", gi + 1)];
        let deg_sum: u64 = group.iter().map(|&v| degrees[v] as u64).sum();
        row.push(format!("{}", deg_sum / group.len() as u64));
        for cap in &all {
            let cap_sum: u64 = group.iter().map(|&v| cap[v] as u64).sum();
            row.push(format!("{:.1}", cap_sum as f64 / group.len() as f64));
        }
        rows.push(row);
    }
    let mut headers = vec!["degree group (high→low)", "mean degree"];
    let labels: Vec<String> = batch_sizes.iter().map(|b| format!("bs={b}")).collect();
    headers.extend(labels.iter().map(|s| s.as_str()));
    print_table(
        "Figure 8: captured events per node vs batch size (paper: high-degree nodes lose most)",
        &headers,
        &rows,
    );
    for &bs in &batch_sizes {
        println!(
            "  bs={:>5}: overall missing information {:.3}",
            bs,
            capture::missing_information(&d.graph, bs)
        );
    }
}

/// **Figure 9(a)** — convergence with epoch parallelism j ∈ {1,2,4,8}.
pub fn fig09a_epoch_parallel(scale: &Scale) {
    let mut rows = Vec::new();
    for name in ["wikipedia", "mooc"] {
        let d = dataset(scale, name);
        let mc = model_for(&d);
        for j in [1usize, 2, 4, 8] {
            if j > scale.max_world {
                continue;
            }
            let cfg = train_cfg(scale, ParallelConfig::new(1, j, 1));
            let res = run(&d, &mc, &cfg);
            rows.push(vec![
                name.into(),
                format!("1x{j}x1"),
                format!("{}", res.loss_history.len()),
                format!("{}", iters_to_frac(&res, 0.9)),
                format!("{:.4}", res.best_val_metric),
                format!("{:.4}", res.test_metric),
            ]);
        }
    }
    print_table(
        "Figure 9(a): epoch parallelism (paper: near-linear to j=4, degrades at j=8)",
        &[
            "dataset",
            "config",
            "iterations",
            "iters to 90% best",
            "best val",
            "test MRR",
        ],
        &rows,
    );
}

/// **Figure 9(b)** — j×k combinations at j·k = 8.
pub fn fig09b_memory_parallel(scale: &Scale) {
    let mut rows = Vec::new();
    let world = scale.max_world.min(8);
    let combos: Vec<(usize, usize)> = match world {
        8 => vec![(8, 1), (4, 2), (2, 4), (1, 8)],
        4 => vec![(4, 1), (2, 2), (1, 4)],
        _ => vec![(world, 1), (1, world)],
    };
    for name in ["wikipedia", "mooc"] {
        let d = dataset(scale, name);
        let mc = model_for(&d);
        for &(j, k) in &combos {
            let cfg = train_cfg(scale, ParallelConfig::new(1, j, k));
            let res = run(&d, &mc, &cfg);
            rows.push(vec![
                name.into(),
                format!("1x{j}x{k}"),
                format!("{}", res.loss_history.len()),
                format!("{:.4}", res.best_val_metric),
                format!("{:.4}", res.test_metric),
                format!("{:.3e}", res.grad_variance),
            ]);
        }
    }
    print_table(
        "Figure 9(b): epoch×memory combos at fixed world (paper: larger k ⇒ better test MRR)",
        &[
            "dataset",
            "config",
            "iterations",
            "best val",
            "test MRR",
            "grad variance",
        ],
        &rows,
    );
}

/// **Figure 10** — test MRR and iterations-to-best over the j×k grid.
pub fn fig10_jk_grid(scale: &Scale) {
    let d = dataset(scale, "wikipedia");
    let mc = model_for(&d);
    let world_cap = scale.max_world.min(8);
    let js = [1usize, 2, 4, 8];
    let ks = [1usize, 2, 4, 8];
    let mut mrr_rows = Vec::new();
    let mut iter_rows = Vec::new();
    for &j in &js {
        let mut mrr_row = vec![format!("j={j}")];
        let mut iter_row = vec![format!("j={j}")];
        for &k in &ks {
            if j * k > world_cap {
                mrr_row.push("-".into());
                iter_row.push("-".into());
                continue;
            }
            let cfg = train_cfg(scale, ParallelConfig::new(1, j, k));
            let res = run(&d, &mc, &cfg);
            mrr_row.push(format!("{:.4}", res.test_metric));
            let it = iters_to_frac(&res, 0.95);
            iter_row.push(if it == usize::MAX {
                "-".into()
            } else {
                format!("{it}")
            });
        }
        mrr_rows.push(mrr_row);
        iter_rows.push(iter_row);
    }
    print_table(
        "Figure 10(a): test MRR over j×k (paper: larger k better at fixed j·k)",
        &["", "k=1", "k=2", "k=4", "k=8"],
        &mrr_rows,
    );
    print_table(
        "Figure 10(b): iterations to 95% of best val MRR",
        &["", "k=1", "k=2", "k=4", "k=8"],
        &iter_rows,
    );
}

/// **Figure 11** — GDELT convergence with mini-batch × memory combos.
pub fn fig11_gdelt(scale: &Scale) {
    let d = dataset(scale, "gdelt");
    let mc = model_for(&d);
    let world = scale.max_world.min(8);
    let configs = [
        ParallelConfig::new(1, 1, 1),
        ParallelConfig::new(world / 2, 1, 1),
        ParallelConfig::new(world / 2, 1, 2),
    ];
    let mut rows = Vec::new();
    for parallel in configs {
        let mut cfg = train_cfg(scale, parallel);
        cfg.epochs = (scale.epochs / 2).max(parallel.j * parallel.k);
        // The paper's protocol scales LR linearly with the global
        // batch ("We set the learning rate to be linear with the
        // global batch size") — essential for mini-batch parallelism,
        // which is the whole point of this figure.
        cfg.base_lr = 2e-3 * 600.0 / scale.local_batch as f32;
        let res = run(&d, &mc, &cfg);
        rows.push(vec![
            format!("{}x{}x{}", parallel.i, parallel.j, parallel.k),
            format!("{}", res.loss_history.len()),
            format!("{:.4}", res.best_val_metric),
            format!("{:.4}", res.test_metric),
        ]);
    }
    print_table(
        "Figure 11: GDELT analog (paper: mini-batch parallelism wins; memory parallelism extends it)",
        &["config", "iterations", "best val F1", "test F1"],
        &rows,
    );
}

/// **Figure 12(a)** — modeled training throughput, 1–32 GPUs, all five
/// datasets, using the calibration + cluster network model.
pub fn fig12a_throughput(scale: &Scale) {
    let mut rows = Vec::new();
    for name in ["wikipedia", "reddit", "mooc", "flights", "gdelt"] {
        let d = dataset(scale, name);
        let mc = model_for(&d);
        let local_batch = if name == "gdelt" {
            scale.local_batch * 2
        } else {
            scale.local_batch
        };
        let cal = modeled::calibrate(&d, &mc, local_batch);
        let events = d.graph.num_events() * 7 / 10;
        let mut row = vec![name.to_string()];
        let base = modeled::disttgl_throughput(
            &cal,
            &ClusterSpec::new(1, 1),
            &ParallelConfig::single(),
            events,
            local_batch,
        );
        for (machines, gpus) in [(1usize, 1usize), (1, 2), (1, 4), (1, 8), (2, 8), (4, 8)] {
            let world = machines * gpus;
            // Optimal strategy: memory parallelism for the small
            // datasets; mini-batch × memory for gdelt (§4.1).
            let parallel = if name == "gdelt" && world >= 4 {
                ParallelConfig::new(4.min(world), 1, world / 4.min(world))
            } else {
                ParallelConfig::new(1, 1, world)
            };
            let spec = ClusterSpec::new(machines, gpus);
            let t = modeled::disttgl_throughput(&cal, &spec, &parallel, events, local_batch);
            row.push(format!("{:.0} ({:.2}x)", t, t / base));
        }
        rows.push(row);
    }
    print_table(
        "Figure 12(a): modeled DistTGL throughput ev/s (speedup) — paper: ~7.3x at 8 GPUs, ~25x at 32",
        &["dataset", "1 GPU", "2 GPU", "4 GPU", "8 GPU", "2x8 GPU", "4x8 GPU"],
        &rows,
    );
}

/// **Figure 12(b)** — per-GPU throughput: TGN vs TGL-TGN vs DistTGL.
pub fn fig12b_per_gpu(scale: &Scale) {
    let d = dataset(scale, "wikipedia");
    let mc = model_for(&d);
    let cal = modeled::calibrate(&d, &mc, scale.local_batch);
    let events = d.graph.num_events() * 7 / 10;

    // Calibrate the naive-pipeline factor from real short runs
    // (training-only: per-root sampling/memory overhead vs batched).
    let mut cfg = train_cfg(scale, ParallelConfig::single());
    cfg.epochs = 2;
    cfg.eval_every_epoch = false;
    let tgn_real = baseline::train_tgn(&d, &mc.clone().without_static_memory(), &cfg);
    let fast_real = train_single(&d, &mc.clone().without_static_memory(), &cfg);
    // Compare pure per-iteration training time (prep + compute), not
    // wall time — final-test evaluation would otherwise dominate both.
    let tgn_iter = (tgn_real.timing.prep_secs + tgn_real.timing.compute_secs)
        / tgn_real.loss_history.len().max(1) as f64;
    let fast_iter = (fast_real.timing.prep_secs + fast_real.timing.compute_secs)
        / fast_real.loss_history.len().max(1) as f64;
    let naive_factor = (tgn_iter / fast_iter.max(1e-12)).max(1.0);

    let mut rows = Vec::new();
    rows.push(vec![
        "TGN (1 GPU)".into(),
        format!(
            "{:.0}",
            modeled::tgn_throughput(&cal, naive_factor, scale.local_batch)
        ),
    ]);
    for n in [1usize, 2, 4, 8] {
        let t = modeled::tgl_throughput(&cal, n, events, scale.local_batch);
        rows.push(vec![
            format!("TGL-TGN ({n} GPU)"),
            format!("{:.0}", t / n as f64),
        ]);
    }
    for (label, parallel, spec) in [
        (
            "DistTGL 1x1x1",
            ParallelConfig::new(1, 1, 1),
            ClusterSpec::new(1, 1),
        ),
        (
            "DistTGL 1x2x1",
            ParallelConfig::new(1, 2, 1),
            ClusterSpec::new(1, 2),
        ),
        (
            "DistTGL 1x1x8",
            ParallelConfig::new(1, 1, 8),
            ClusterSpec::new(1, 8),
        ),
        (
            "DistTGL 1x1x16 (2 nodes)",
            ParallelConfig::new(1, 1, 16),
            ClusterSpec::new(2, 8),
        ),
        (
            "DistTGL 1x1x32 (4 nodes)",
            ParallelConfig::new(1, 1, 32),
            ClusterSpec::new(4, 8),
        ),
    ] {
        let t = modeled::disttgl_throughput(&cal, &spec, &parallel, events, scale.local_batch);
        rows.push(vec![
            label.into(),
            format!("{:.0}", t / parallel.world() as f64),
        ]);
    }
    print_table(
        "Figure 12(b): modeled throughput per GPU, wikipedia analog (paper: DistTGL ≫ TGL ≫ TGN; per-GPU decays slowly)",
        &["method", "events/s per GPU"],
        &rows,
    );
    println!("  (naive-pipeline factor measured from real runs: {naive_factor:.2}x)");
}

/// **Table 1** — measured properties of the three strategies.
pub fn table1_properties(scale: &Scale) {
    let d = dataset(scale, "wikipedia");
    let mc = model_for(&d);
    let world = 4usize.min(scale.max_world);
    let strategies = [
        ("mini-batch", ParallelConfig::new(world, 1, 1)),
        ("epoch", ParallelConfig::new(1, world, 1)),
        ("memory", ParallelConfig::new(1, 1, world)),
    ];
    let single_cfg = train_cfg(scale, ParallelConfig::single());
    let single = run(&d, &mc, &single_cfg);
    let replica_bytes = MemoryState::new(d.graph.num_nodes(), mc.d_mem, mc.mail_dim()).bytes();

    let mut rows = vec![vec![
        "single GPU".into(),
        "1.000".into(),
        format!(
            "{:.3}",
            single.timing.prep_secs / single.loss_history.len().max(1) as f64
        ),
        format!("{:.1}", replica_bytes as f64 / 1e6),
        "-".into(),
        format!("{:.3e}", single.grad_variance),
    ]];
    for (name, parallel) in strategies {
        let cfg = train_cfg(scale, parallel);
        let res = run(&d, &mc, &cfg);
        // Captured dependency: events captured at the *effective* batch
        // size relative to the single-GPU local batch.
        let eff_batch = scale.local_batch * parallel.i;
        let captured: u64 = capture::captured_events(&d.graph, eff_batch)
            .iter()
            .map(|&c| c as u64)
            .sum();
        let captured_single: u64 = capture::captured_events(&d.graph, scale.local_batch)
            .iter()
            .map(|&c| c as u64)
            .sum();
        rows.push(vec![
            name.into(),
            format!("{:.3}", captured as f64 / captured_single as f64),
            format!(
                "{:.3}",
                res.timing.prep_secs / res.loss_history.len().max(1) as f64
            ),
            format!("{:.1}", (replica_bytes * parallel.k) as f64 / 1e6),
            format!("{:.1} MB weights", res.comm_bytes as f64 / 1e6),
            format!("{:.3e}", res.grad_variance),
        ]);
    }
    print_table(
        "Table 1: measured strategy properties (captured deps ↓ only for mini-batch; prep ↑ for epoch; memory ↑ for memory; variance ↑ for epoch)",
        &[
            "strategy",
            "captured deps (vs 1 GPU)",
            "prep s/iter",
            "node-mem MB",
            "cross-trainer sync",
            "grad variance",
        ],
        &rows,
    );
}
