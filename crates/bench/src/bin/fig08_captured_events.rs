//! Standalone runner for the `fig08_captured_events` experiment (see DESIGN.md §5).
fn main() {
    let scale = disttgl_bench::Scale::from_env();
    disttgl_bench::figures::fig08_captured_events(&scale);
}
