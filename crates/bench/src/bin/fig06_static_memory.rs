//! Standalone runner for the `fig06_static_memory` experiment (see DESIGN.md §5).
fn main() {
    let scale = disttgl_bench::Scale::from_env();
    disttgl_bench::figures::fig06_static_memory(&scale);
}
