//! Standalone runner for the `fig05_static_vs_dynamic` experiment (see DESIGN.md §5).
fn main() {
    let scale = disttgl_bench::Scale::from_env();
    disttgl_bench::figures::fig05_static_vs_dynamic(&scale);
}
