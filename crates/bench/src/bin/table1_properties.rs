//! Standalone runner for the `table1_properties` experiment (see DESIGN.md §5).
fn main() {
    let scale = disttgl_bench::Scale::from_env();
    disttgl_bench::figures::table1_properties(&scale);
}
