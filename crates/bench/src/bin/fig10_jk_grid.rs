//! Standalone runner for the `fig10_jk_grid` experiment (see DESIGN.md §5).
fn main() {
    let scale = disttgl_bench::Scale::from_env();
    disttgl_bench::figures::fig10_jk_grid(&scale);
}
