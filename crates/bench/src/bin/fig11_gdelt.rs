//! Standalone runner for the `fig11_gdelt` experiment (see DESIGN.md §5).
fn main() {
    let scale = disttgl_bench::Scale::from_env();
    disttgl_bench::figures::fig11_gdelt(&scale);
}
