//! Standalone runner for the `fig09b_memory_parallel` experiment (see DESIGN.md §5).
fn main() {
    let scale = disttgl_bench::Scale::from_env();
    disttgl_bench::figures::fig09b_memory_parallel(&scale);
}
