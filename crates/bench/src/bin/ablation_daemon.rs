//! Ablation: the memory daemon's overlap benefit (paper §3.3 / the
//! "DistTGL 1×1×1 faster than TGL 1 GPU" claim, Fig 12(b)).
//!
//! Runs the identical 1×1×1 training twice — once through the
//! synchronous store (reads/writes on the trainer's own thread, the
//! TGL pipeline) and once through the memory daemon (writes applied
//! asynchronously, reads served by a second thread) — and compares
//! measured wall time. Losses must match exactly; only the system
//! differs.
//!
//! Caveat: on hosts with fewer free cores than threads (trainer +
//! daemon), the spinning daemon *costs* wall time instead of hiding
//! it; the overlap benefit requires a spare core, as on the paper's
//! testbed (trainer = GPU, daemon = CPU). The semantic-equivalence
//! check holds either way.

use disttgl_bench::{dataset, model_for, print_table, Scale};
use disttgl_cluster::ClusterSpec;
use disttgl_core::{train_distributed, train_single, ParallelConfig, TrainConfig};

fn main() {
    let scale = Scale::from_env();
    let d = dataset(&scale, "wikipedia");
    let mc = model_for(&d).without_static_memory();
    let mut cfg = TrainConfig::new(ParallelConfig::single());
    cfg.local_batch = scale.local_batch;
    cfg.epochs = scale.epochs / 2;
    cfg.eval_every_epoch = false;
    cfg.base_lr = 2e-3 * 600.0 / scale.local_batch as f32;
    cfg.seed = 0xDAE;

    let sync = train_single(&d, &mc, &cfg);
    let daemon = train_distributed(&d, &mc, &cfg, ClusterSpec::new(1, 1));

    assert_eq!(
        sync.loss_history, daemon.loss_history,
        "pipelines must be semantically identical"
    );
    print_table(
        "Ablation: synchronous store vs memory daemon (identical training, 1x1x1)",
        &["pipeline", "wall s", "events/s", "final loss"],
        &[
            vec![
                "synchronous (TGL-style)".into(),
                format!("{:.2}", sync.wall_secs),
                format!("{:.0}", sync.throughput_events_per_sec),
                format!("{:.4}", sync.loss_history.last().copied().unwrap_or(0.0)),
            ],
            vec![
                "memory daemon (DistTGL)".into(),
                format!("{:.2}", daemon.wall_secs),
                format!("{:.0}", daemon.throughput_events_per_sec),
                format!("{:.4}", daemon.loss_history.last().copied().unwrap_or(0.0)),
            ],
        ],
    );
    println!("  (losses bit-identical: semantics unchanged, only overlap differs)");
}
