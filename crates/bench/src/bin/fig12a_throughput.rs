//! Standalone runner for the `fig12a_throughput` experiment (see DESIGN.md §5).
fn main() {
    let scale = disttgl_bench::Scale::from_env();
    disttgl_bench::figures::fig12a_throughput(&scale);
}
