//! Standalone runner for the `fig01_convergence` experiment (see DESIGN.md §5).
fn main() {
    let scale = disttgl_bench::Scale::from_env();
    disttgl_bench::figures::fig01_convergence(&scale);
}
