//! Standalone runner for the `fig09a_epoch_parallel` experiment (see DESIGN.md §5).
fn main() {
    let scale = disttgl_bench::Scale::from_env();
    disttgl_bench::figures::fig09a_epoch_parallel(&scale);
}
