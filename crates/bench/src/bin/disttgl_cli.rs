//! `disttgl_cli` — command-line front-end for training, planning, and
//! dataset analysis (hand-rolled flags; no extra dependencies).
//!
//! ```sh
//! cargo run --release -p disttgl-bench --bin disttgl_cli -- train \
//!     --dataset wikipedia --scale 0.02 --ijk 1,1,4 --epochs 16
//! cargo run --release -p disttgl-bench --bin disttgl_cli -- plan \
//!     --dataset reddit --scale 0.01 --machines 4 --gpus 8
//! cargo run --release -p disttgl-bench --bin disttgl_cli -- analyze \
//!     --dataset wikipedia --scale 0.02
//! ```

use disttgl_cluster::{ClusterSpec, FaultPlan};
use disttgl_core::{
    plan_from_graph, train_distributed, train_single, train_supervised, ModelConfig,
    ParallelConfig, RetryPolicy, StalenessCompensation, TrainConfig,
};
use disttgl_data::generators;
use disttgl_graph::capture;
use std::collections::HashMap;

fn usage() -> ! {
    eprintln!(
        "usage: disttgl_cli <train|plan|analyze|generate> [--dataset NAME] [--scale F] \
         [--ijk I,J,K] [--epochs N] [--batch N] [--seed N] [--machines P] [--gpus Q] \
         [--threshold F] [--saturation N] [--replicas N] [--no-static] \
         [--checkpoint-every N] [--checkpoint-dir DIR] [--resume-from FILE] [--retain K] \
         [--faults JSON] [--max-restarts N] [--retry-backoff-ms MS] \
         [--staleness-bound K] [--staleness-compensation none|blend] \
         [--out FILE] [--in FILE]

  --faults JSON        seeded fault plan, e.g.
                       '{{\"seed\":7,\"faults\":[{{\"kind\":\"lane_crash\",\"rank\":1,\"step\":40}}]}}'
  --max-restarts N     run under the recovery supervisor: on a fault,
                       roll back to the newest good checkpoint and
                       resume, at most N times (requires distributed
                       --checkpoint-every/--checkpoint-dir to make
                       progress across restarts)
  --retry-backoff-ms   pause between rollback and resume (default 0)
  --retain K           keep only the newest K checkpoints (the newest
                       *valid* one is never deleted)
  --staleness-bound K  bounded-staleness training: skip the Acquire-slot
                       delta repair for rows within K pending writes
                       (K=0 stays bit-identical to the exact oracle;
                       requires speculation, i.e. a distributed run)
  --staleness-compensation none|blend
                       mitigation for admitted-stale rows (blend =
                       MSPipe-style similarity blend toward the row's
                       own mailbox snapshot)"
    );
    std::process::exit(2);
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().unwrap().clone(),
                _ => "true".to_string(),
            };
            flags.insert(name.to_string(), value);
        } else {
            eprintln!("unexpected argument: {a}");
            usage();
        }
    }
    flags
}

fn get<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    flags
        .get(key)
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("bad --{key} value: {v}"))
        })
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage()
    };
    let flags = parse_flags(rest);
    let name = flags
        .get("dataset")
        .map(String::as_str)
        .unwrap_or("wikipedia");
    let scale: f64 = get(&flags, "scale", if name == "gdelt" { 5e-5 } else { 0.02 });
    let seed: u64 = get(&flags, "seed", 42);
    // --in loads a snapshot produced by `generate --out` instead of
    // regenerating (the pre-sampled-inputs workflow of §4.0.2).
    let dataset = match flags.get("in") {
        Some(path) => {
            let mut f = std::fs::File::open(path).expect("open --in file");
            disttgl_data::Dataset::load(&mut f).expect("load dataset snapshot")
        }
        None => generators::by_name(name, scale, seed),
    };
    println!("dataset: {:?}", dataset.stats());

    match cmd.as_str() {
        "train" => {
            let ijk = flags.get("ijk").cloned().unwrap_or_else(|| "1,1,1".into());
            let parts: Vec<usize> = ijk
                .split(',')
                .map(|p| p.trim().parse().expect("bad --ijk"))
                .collect();
            assert_eq!(parts.len(), 3, "--ijk needs I,J,K");
            let parallel = ParallelConfig::new(parts[0], parts[1], parts[2]);
            let mut mc = ModelConfig::compact(dataset.edge_features.cols());
            if dataset.num_classes() > 0 {
                mc = mc.with_classes(dataset.num_classes());
            }
            if flags.contains_key("no-static") {
                mc = mc.without_static_memory();
            }
            let mut cfg = TrainConfig::new(parallel);
            cfg.local_batch = get(&flags, "batch", 200);
            cfg.epochs = get(&flags, "epochs", 16);
            cfg.seed = seed;
            cfg.base_lr = 2e-3 * 600.0 / (cfg.local_batch as f32 * parallel.i as f32);
            cfg.eval_max_events = 2000;
            // Crash-safe runs: --checkpoint-every N units (sequential
            // epochs / distributed sweeps) into --checkpoint-dir, and
            // --resume-from picks a saved checkpoint back up.
            if let Some(n) = flags.get("checkpoint-every") {
                let n: usize = n.parse().expect("bad --checkpoint-every value");
                let dir = flags
                    .get("checkpoint-dir")
                    .cloned()
                    .unwrap_or_else(|| "checkpoints".into());
                cfg = cfg.checkpoint_every(n, &dir);
            }
            if let Some(path) = flags.get("resume-from") {
                cfg = cfg.resume_from(path);
            }
            if flags.contains_key("retain") {
                cfg = cfg.retain_checkpoints(get(&flags, "retain", 3usize));
            }
            // Fault injection (--faults) and the recovery supervisor
            // (--max-restarts): a supervised run rolls back to the
            // newest good checkpoint and resumes on its own — no
            // manual --resume-from needed.
            if let Some(json) = flags.get("faults") {
                let plan: FaultPlan =
                    serde_json::from_str(json).expect("bad --faults JSON (see usage)");
                cfg.faults = Some(plan);
            }
            // Bounded-staleness mode (--staleness-bound K): the typed
            // ConfigError from validate() rejects it when speculation
            // is off rather than silently training exactly.
            if let Some(k) = flags.get("staleness-bound") {
                let k: u64 = k.parse().expect("bad --staleness-bound value");
                cfg = cfg.staleness_bound(k);
            }
            if let Some(c) = flags.get("staleness-compensation") {
                cfg = cfg.with_staleness_compensation(match c.as_str() {
                    "none" => StalenessCompensation::None,
                    "blend" => StalenessCompensation::SimilarityBlend,
                    other => {
                        eprintln!("bad --staleness-compensation value: {other} (want none|blend)");
                        std::process::exit(2);
                    }
                });
            }
            if let Err(e) = cfg.validate() {
                eprintln!("invalid configuration: {e}");
                std::process::exit(2);
            }
            let spec = ClusterSpec::new(1, parallel.world());
            let res = if flags.contains_key("max-restarts") {
                assert!(
                    parallel.world() > 1,
                    "--max-restarts supervises the distributed trainer; use --ijk with world > 1"
                );
                let policy = RetryPolicy {
                    max_restarts: get(&flags, "max-restarts", 3usize),
                    backoff: std::time::Duration::from_millis(get(
                        &flags,
                        "retry-backoff-ms",
                        0u64,
                    )),
                };
                match train_supervised(&dataset, &mc, &cfg, spec, &policy) {
                    Ok(run) => {
                        for r in &run.incidents {
                            println!(
                                "incident {}: {:?} on rank {} -> rolled back to {} (lost {} steps, {:.3}s)",
                                r.restart,
                                r.cause,
                                r.rank.map_or("?".into(), |k| k.to_string()),
                                r.resumed_from_unit
                                    .map_or("fresh start".into(), |u| format!("unit {u}")),
                                r.steps_lost,
                                r.rollback_secs
                            );
                        }
                        println!(
                            "supervised run COMPLETED after {} recovery incident(s)",
                            run.incidents.len()
                        );
                        run.result
                    }
                    Err(e) => {
                        eprintln!("supervised run FAILED: {e}");
                        std::process::exit(1);
                    }
                }
            } else if parallel.world() == 1 && cfg.staleness_bound.is_none() {
                train_single(&dataset, &mc, &cfg)
            } else {
                // Staleness needs the speculative protocol, which only
                // the distributed trainer runs — a 1×1×1 layout still
                // speculates against its single daemon.
                train_distributed(&dataset, &mc, &cfg, spec)
            };
            if res.aborted {
                println!("\nrun ABORTED early on a fault; histories below are truncated");
            }
            println!("\nvalidation curve:");
            for p in &res.convergence {
                println!(
                    "  iter {:>6}  wall {:>7.1}s  metric {:.4}",
                    p.iteration, p.wall_secs, p.metric
                );
            }
            println!("\ntest metric      : {:.4}", res.test_metric);
            println!(
                "throughput       : {:.0} events/s",
                res.throughput_events_per_sec
            );
            println!("gradient variance: {:.3e}", res.grad_variance);
            println!(
                "daemon rows R/W  : {} / {}",
                res.daemon_rows_read, res.daemon_rows_written
            );
            if cfg.staleness_bound.is_some() {
                let mean_lag = res.daemon_stale_lag_sum as f64
                    / (res.daemon_stale_rows_admitted.max(1)) as f64;
                println!(
                    "staleness        : {} repairs skipped / {} paid, mean lag {:.2}, max lag {}",
                    res.daemon_stale_rows_admitted,
                    res.daemon_delta_rows,
                    mean_lag,
                    res.daemon_stale_lag_max
                );
            }
        }
        "plan" => {
            let machines = get(&flags, "machines", 1usize);
            let gpus = get(&flags, "gpus", 8usize);
            let threshold: f64 = get(&flags, "threshold", 0.10);
            let saturation = get(&flags, "saturation", 600usize);
            let replicas = get(&flags, "replicas", 8usize);
            let spec = ClusterSpec::new(machines, gpus);
            let (parallel, max_batch) =
                plan_from_graph(&dataset.graph, spec, threshold, saturation, replicas);
            println!("missing-information threshold: {threshold}");
            println!("largest admissible global batch: {max_batch}");
            println!(
                "recommended configuration: {}x{}x{} (mini-batch x epoch x memory) on {}x{} GPUs",
                parallel.i, parallel.j, parallel.k, machines, gpus
            );
        }
        "analyze" => {
            println!("\ncaptured-events / missing-information profile:");
            for shift in 0..6 {
                let bs = 100usize << shift;
                println!(
                    "  batch {:>5}: missing information {:.3}",
                    bs,
                    capture::missing_information(&dataset.graph, bs)
                );
            }
            let degrees = dataset.graph.degrees();
            let max_deg = degrees.iter().max().copied().unwrap_or(0);
            let mean_deg =
                degrees.iter().map(|&d| d as f64).sum::<f64>() / degrees.len().max(1) as f64;
            println!("\ndegree: max {max_deg}, mean {mean_deg:.1}");
        }
        "generate" => {
            let out = flags
                .get("out")
                .cloned()
                .unwrap_or_else(|| format!("{name}.dtgl"));
            let mut f = std::fs::File::create(&out).expect("create --out file");
            dataset.save(&mut f).expect("write dataset snapshot");
            println!("wrote snapshot to {out}");
        }
        _ => usage(),
    }
}
