//! Standalone runner for the `table2` experiment (see DESIGN.md §5).
fn main() {
    let scale = disttgl_bench::Scale::from_env();
    disttgl_bench::figures::table2(&scale);
}
