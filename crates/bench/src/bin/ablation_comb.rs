//! Ablation: the `COMB` mail-combination policy (Eq. 8).
//!
//! TGN-attn (and the paper) keep the most recent mail; the TGN paper
//! also evaluated mean pooling. This ablation quantifies the design
//! choice DESIGN.md calls out: how much accuracy each policy retains
//! as the batch size grows (mean pooling mixes mails instead of
//! dropping them, trading information loss for mail smearing).

use disttgl_bench::{dataset, model_for, print_table, Scale};
use disttgl_core::{train_single, CombPolicy, ParallelConfig, TrainConfig};

fn main() {
    let scale = Scale::from_env();
    let d = dataset(&scale, "wikipedia");
    let mut rows = Vec::new();
    for bs in [scale.local_batch, scale.local_batch * 4] {
        for comb in [CombPolicy::MostRecent, CombPolicy::Mean] {
            let mut mc = model_for(&d);
            mc.comb = comb;
            let mut cfg = TrainConfig::new(ParallelConfig::single());
            cfg.local_batch = bs;
            cfg.epochs = scale.epochs / 2;
            cfg.eval_negs = scale.eval_negs;
            cfg.eval_max_events = scale.eval_max_events;
            cfg.base_lr = 2e-3 * 600.0 / bs as f32;
            cfg.seed = 0xC0B;
            let res = train_single(&d, &mc, &cfg);
            rows.push(vec![
                format!("{bs}"),
                format!("{comb:?}"),
                format!("{:.4}", res.best_val_metric),
                format!("{:.4}", res.test_metric),
            ]);
        }
    }
    print_table(
        "Ablation: COMB policy vs batch size (wikipedia analog)",
        &["batch", "COMB", "best val MRR", "test MRR"],
        &rows,
    );
}
