//! Standalone runner for the `fig02b_memsync` experiment (see DESIGN.md §5).
fn main() {
    let scale = disttgl_bench::Scale::from_env();
    disttgl_bench::figures::fig02b_memsync(&scale);
}
