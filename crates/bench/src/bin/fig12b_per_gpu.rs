//! Standalone runner for the `fig12b_per_gpu` experiment (see DESIGN.md §5).
fn main() {
    let scale = disttgl_bench::Scale::from_env();
    disttgl_bench::figures::fig12b_per_gpu(&scale);
}
