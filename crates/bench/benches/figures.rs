//! `cargo bench --bench figures` — regenerates every table and figure
//! of the paper at the `quick` scale (override with
//! `DISTTGL_SCALE=full`). Not a criterion bench: the experiments print
//! their tables directly, which is the artifact EXPERIMENTS.md records.

use disttgl_bench::{figures, Scale};
use std::time::Instant;

fn main() {
    // cargo bench passes --bench; ignore filter args.
    let scale = Scale::from_env();
    println!("DistTGL paper reproduction — all tables and figures");
    println!("scale profile: {scale:?}\n");

    #[allow(clippy::type_complexity)]
    let experiments: &[(&str, fn(&Scale))] = &[
        ("Table 2", figures::table2),
        ("Figure 8", figures::fig08_captured_events),
        ("Figure 2(b)", figures::fig02b_memsync),
        ("Table 1", figures::table1_properties),
        ("Figure 1", figures::fig01_convergence),
        ("Figure 2(a)", figures::fig02a_batchsize),
        ("Figure 5", figures::fig05_static_vs_dynamic),
        ("Figure 6", figures::fig06_static_memory),
        ("Figure 9(a)", figures::fig09a_epoch_parallel),
        ("Figure 9(b)", figures::fig09b_memory_parallel),
        ("Figure 10", figures::fig10_jk_grid),
        ("Figure 11", figures::fig11_gdelt),
        ("Figure 12(a)", figures::fig12a_throughput),
        ("Figure 12(b)", figures::fig12b_per_gpu),
    ];
    for (name, f) in experiments {
        let t0 = Instant::now();
        f(&scale);
        println!("[{name} done in {:.1}s]\n", t0.elapsed().as_secs_f64());
    }
}
