//! Checkpoint-plane cost: what crash-safety actually costs at the
//! Wikipedia-analog scale used across the bench suite.
//!
//! Measurements landing in `BENCH_checkpoint.json`:
//!
//! 1. **Train checkpoint save/load** — wall latency of
//!    `TrainCheckpoint::save`/`load` on a state captured from a real
//!    sequential run (weights + Adam moments + loss history + node
//!    memory), plus the on-disk file size.
//! 2. **Serve checkpoint save/load/restore** — `ServeSession::
//!    checkpoint` snapshot latency, framed save/load latency, and
//!    `ServeSession::restore` rebuild latency after ingesting the
//!    train split, plus file size.
//! 3. **Inline bit-identity guard** — the restored serve session must
//!    answer a query slab bit-identically to the live one before any
//!    number is published.
//!
//! Run: `cargo bench -p disttgl-bench --bench checkpoint`

use disttgl_core::serve::{QueryRequest, ServeSession};
use disttgl_core::{
    train_single, ModelConfig, ParallelConfig, ServeCheckpoint, TgnModel, TrainCheckpoint,
    TrainConfig,
};
use disttgl_data::generators;
use disttgl_graph::batching;
use disttgl_tensor::seeded_rng;
use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

const SLAB: usize = 600;
const REPS: usize = 8;

fn bench_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("disttgl_bench_ckpt_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create bench checkpoint dir");
    dir
}

/// Best-of-`REPS` wall time for `f`, in seconds.
fn best_of<F: FnMut()>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let d = generators::wikipedia(0.02, 42);
    let mc = ModelConfig::compact(d.edge_features.cols());
    println!("dataset: {:?}", d.stats());
    let dir = bench_dir();

    // 1. Train checkpoint: run a short checkpointed sequential train so
    // the saved state is a real one, then time the framed round-trip.
    let mut cfg = TrainConfig::new(ParallelConfig::single());
    cfg.local_batch = SLAB;
    cfg.epochs = 2;
    cfg.seed = 42;
    cfg.eval_max_events = 1000;
    let dir_s = dir.to_str().unwrap().to_string();
    train_single(&d, &mc, &cfg.checkpoint_every(1, &dir_s));

    let train_path = dir.join("ckpt_0001.bin");
    let train_ckpt = TrainCheckpoint::load(&train_path).expect("epoch-1 checkpoint exists");
    let train_bytes = std::fs::metadata(&train_path)
        .expect("stat checkpoint")
        .len();
    let resave = dir.join("resave_train.bin");
    let train_save_secs = best_of(|| train_ckpt.save(&resave).expect("save train checkpoint"));
    let train_load_secs = best_of(|| {
        TrainCheckpoint::load(&resave).expect("load train checkpoint");
    });
    println!(
        "train checkpoint: {train_bytes} bytes, save {:.2} ms, load {:.2} ms",
        train_save_secs * 1e3,
        train_load_secs * 1e3
    );

    // 2. Serve checkpoint: ingest the train split, snapshot, round-trip
    // through disk, restore, and guard bit-identity on a query slab.
    let mut rng = seeded_rng(42);
    let model = TgnModel::new(mc.clone(), &mut rng);
    let (train_end, _) = d.graph.chronological_split(0.70, 0.15);
    let mut session = ServeSession::new(&model, &d, None);
    for r in batching::chronological_batches(0..train_end, SLAB) {
        session
            .ingest(&d.graph.events()[r])
            .expect("chronological warmup slab");
    }
    let snapshot_secs = best_of(|| {
        session.checkpoint();
    });
    let serve_ckpt = session.checkpoint();
    let serve_path = dir.join("serve.bin");
    let serve_save_secs = best_of(|| serve_ckpt.save(&serve_path).expect("save serve checkpoint"));
    let serve_load_secs = best_of(|| {
        ServeCheckpoint::load(&serve_path).expect("load serve checkpoint");
    });
    let serve_bytes = std::fs::metadata(&serve_path)
        .expect("stat serve checkpoint")
        .len();
    let loaded = ServeCheckpoint::load(&serve_path).expect("load serve checkpoint");
    let t0 = Instant::now();
    let mut restored =
        ServeSession::restore(&model, &d, None, loaded).expect("restore serve session");
    let restore_secs = t0.elapsed().as_secs_f64();
    println!(
        "serve checkpoint: {serve_bytes} bytes, snapshot {:.2} ms, save {:.2} ms, \
         load {:.2} ms, restore {:.2} ms",
        snapshot_secs * 1e3,
        serve_save_secs * 1e3,
        serve_load_secs * 1e3,
        restore_secs * 1e3
    );

    // 3. Inline guard: live and restored sessions must answer the same
    // query slab bit for bit.
    let t_query = d.graph.events()[train_end - 1].t + 1.0;
    let requests: Vec<QueryRequest> = d.graph.events()[..64]
        .iter()
        .map(|e| QueryRequest::LinkScore {
            src: e.src,
            dst: e.dst,
            t: t_query,
        })
        .collect();
    let live = session.query(&requests).expect("valid bench queries");
    let rest = restored.query(&requests).expect("valid bench queries");
    assert_eq!(live, rest, "restored session diverged from live session");
    println!(
        "restore bit-identity guard: OK ({} queries)",
        requests.len()
    );

    let host_cores = disttgl_bench::host_cores();
    let record = format!(
        "{{\"bench\":\"checkpoint\",\"host_cores\":{host_cores},\"dataset\":\"{}\",\"events\":{},\
         \"train\":{{\"file_bytes\":{train_bytes},\"save_ms\":{:.3},\"load_ms\":{:.3}}},\
         \"serve\":{{\"file_bytes\":{serve_bytes},\"snapshot_ms\":{:.3},\"save_ms\":{:.3},\
         \"load_ms\":{:.3},\"restore_ms\":{:.3}}},\
         \"restore_bit_identical\":true}}\n",
        d.name,
        d.graph.num_events(),
        train_save_secs * 1e3,
        train_load_secs * 1e3,
        snapshot_secs * 1e3,
        serve_save_secs * 1e3,
        serve_load_secs * 1e3,
        restore_secs * 1e3,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_checkpoint.json");
    match std::fs::File::create(path).and_then(|mut f| f.write_all(record.as_bytes())) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}
